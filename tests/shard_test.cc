// Tests for the execution subsystem (exec/thread_pool.h) and the sharded
// parallel PSR scan (rank/sharded_scan.h): ParallelFor/TaskGroup
// semantics, ExecOptions validation, and the load-bearing equivalence
// contract -- parallel scans, replays and pooled-session refreshes must
// match the sequential path to 1e-12 (bit-for-bit in practice: shard
// cuts sit on the count-refresh grid, so boundary states share the
// sequential arithmetic lineage) for every thread/shard count, on both
// saturating (unit-mass) and head-mass-stop (sub-unit-mass) workloads.
// Also covers the shard cut-point primitive directly: a scan restarted
// at EVERY checkpoint rank of a scanned database, including ranks past a
// shallow rung's Lemma-2 stop, reproduces the full scan.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "clean/session.h"
#include "clean/session_pool.h"
#include "common/rng.h"
#include "exec/thread_pool.h"
#include "model/database.h"
#include "quality/tp.h"
#include "rank/psr.h"
#include "test_util.h"
#include "rank/psr_engine.h"
#include "rank/psr_scan_core.h"
#include "workload/synthetic.h"

namespace uclean {
namespace {

constexpr double kTol = 1e-12;

KLadder MakeLadder(std::vector<size_t> ks) {
  Result<KLadder> ladder = KLadder::Of(std::move(ks));
  UCLEAN_CHECK(ladder.ok());
  return std::move(ladder).value();
}

ExecOptions Threads(size_t n) {
  ExecOptions exec;
  exec.num_threads = n;
  Result<ExecOptions> resolved = ResolveExec(std::move(exec));
  UCLEAN_CHECK(resolved.ok());
  return std::move(resolved).value();
}

/// A database whose deepest-rung scan crosses several count-refresh grid
/// intervals (kCountRefreshGridLive live tuples each), so the sharded
/// path genuinely cuts; sub-unit masses keep every x-tuple unsaturated
/// (head-mass stop rule, widest count vectors).
ProbabilisticDatabase MakeSubunitDb(size_t num_xtuples = 2000) {
  SyntheticOptions opts;
  opts.num_xtuples = num_xtuples;
  opts.real_mass_min = 0.2;
  opts.real_mass_max = 0.5;
  Result<ProbabilisticDatabase> db = GenerateSynthetic(opts);
  UCLEAN_CHECK(db.ok());
  return std::move(db).value();
}

ProbabilisticDatabase MakeUnitDb(size_t num_xtuples = 2000) {
  SyntheticOptions opts;
  opts.num_xtuples = num_xtuples;
  Result<ProbabilisticDatabase> db = GenerateSynthetic(opts);
  UCLEAN_CHECK(db.ok());
  return std::move(db).value();
}

/// Max abs elementwise difference, with the offending index in
/// *arg_max; one assert per array keeps million-entry comparisons cheap.
double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b,
                  size_t* arg_max) {
  UCLEAN_CHECK(a.size() == b.size());
  double max_diff = 0.0;
  *arg_max = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] < b[i] ? b[i] - a[i] : a[i] - b[i];
    if (diff > max_diff) {
      max_diff = diff;
      *arg_max = i;
    }
  }
  return max_diff;
}

void ExpectPsrEqual(const PsrOutput& seq, const PsrOutput& par,
                    const std::string& label) {
  ASSERT_EQ(seq.k, par.k) << label;
  EXPECT_EQ(seq.scan_end, par.scan_end) << label;
  EXPECT_EQ(seq.num_nonzero, par.num_nonzero) << label;
  size_t at = 0;
  ASSERT_LE(MaxAbsDiff(seq.topk_prob, par.topk_prob, &at), kTol)
      << label << " topk_prob at tuple " << at;
  ASSERT_LE(MaxAbsDiff(seq.best_rank_prob, par.best_rank_prob, &at), kTol)
      << label << " best_rank_prob at rank " << at + 1;
  for (size_t h = 0; h < seq.k; ++h) {
    EXPECT_EQ(seq.best_rank_index[h], par.best_rank_index[h])
        << label << " rank " << h + 1;
  }
  ASSERT_EQ(seq.has_rank_probabilities, par.has_rank_probabilities) << label;
  if (seq.has_rank_probabilities) {
    ASSERT_LE(MaxAbsDiff(seq.rank_prob, par.rank_prob, &at), kTol)
        << label << " rank_prob at entry " << at;
  }
}

void ExpectTpEqual(const TpOutput& seq, const TpOutput& par,
                   const std::string& label) {
  EXPECT_NEAR(seq.quality, par.quality, kTol) << label;
  EXPECT_EQ(seq.scan_end, par.scan_end) << label;
  size_t at = 0;
  ASSERT_LE(MaxAbsDiff(seq.xtuple_gain, par.xtuple_gain, &at), kTol)
      << label << " xtuple_gain at " << at;
  ASSERT_LE(MaxAbsDiff(seq.xtuple_topk_mass, par.xtuple_topk_mass, &at), kTol)
      << label << " xtuple_topk_mass at " << at;
}

// ---------------------------------------------------------------- pool

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&hits](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEdgeCases) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.ParallelFor(0, [&](size_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
  pool.ParallelFor(1, [&](size_t) { ++count; });
  EXPECT_EQ(count.load(), 1);
  // Fewer items than threads.
  count = 0;
  pool.ParallelFor(2, [&](size_t) { ++count; });
  EXPECT_EQ(count.load(), 2);
  // A single-thread pool runs inline.
  ThreadPool inline_pool(1);
  count = 0;
  inline_pool.ParallelFor(100, [&](size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, TaskGroupRunsAllTasksAndNestedWorkRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  {
    ThreadPool::TaskGroup group(&pool);
    for (int t = 0; t < 16; ++t) {
      group.Run([&] {
        ++outer;
        // Nested parallelism from a worker degrades to inline execution
        // instead of deadlocking the fixed-size pool.
        pool.ParallelFor(8, [&](size_t) { ++inner; });
      });
    }
    group.Wait();
  }
  EXPECT_EQ(outer.load(), 16);
  EXPECT_EQ(inner.load(), 16 * 8);
  // A null-pool group is the sequential path.
  ThreadPool::TaskGroup seq_group(nullptr);
  int calls = 0;
  seq_group.Run([&] { ++calls; });
  seq_group.Wait();
  EXPECT_EQ(calls, 1);
}

TEST(ExecOptionsTest, ResolveExecValidates) {
  ExecOptions zero;
  zero.num_threads = 0;
  EXPECT_FALSE(ResolveExec(zero).ok());
  ExecOptions too_many;
  too_many.num_threads = ThreadPool::kMaxThreads + 1;
  EXPECT_FALSE(ResolveExec(too_many).ok());

  Result<ExecOptions> one = ResolveExec(ExecOptions{});
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->pool, nullptr);  // sequential: no pool, no threads
  EXPECT_FALSE(one->parallel());

  ExecOptions four;
  four.num_threads = 4;
  Result<ExecOptions> resolved = ResolveExec(four);
  ASSERT_TRUE(resolved.ok());
  ASSERT_NE(resolved->pool, nullptr);
  EXPECT_EQ(resolved->pool->num_threads(), 4u);
  EXPECT_TRUE(resolved->parallel());

  // A pre-built pool is kept and num_threads aligned to it.
  ExecOptions preset;
  preset.num_threads = 99;
  preset.pool = resolved->pool;
  Result<ExecOptions> kept = ResolveExec(preset);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->pool, resolved->pool);
  EXPECT_EQ(kept->num_threads, 4u);
}

// ------------------------------------------------- sharded equivalence

TEST(ShardedScanTest, OneShotLadderMatchesSequentialAcrossThreadCounts) {
  const KLadder ladder = MakeLadder({16, 256, 512});
  for (const bool subunit : {true, false}) {
    const ProbabilisticDatabase db = subunit ? MakeSubunitDb() : MakeUnitDb();
    Result<std::vector<PsrOutput>> seq = ScanPsrLadder(db, ladder);
    ASSERT_TRUE(seq.ok()) << seq.status();
    // The deep rungs must cross the refresh grid or no cuts exist and
    // the test exercises nothing.
    ASSERT_GT(seq->back().scan_end, psr_internal::kCountRefreshGridLive);
    for (const size_t threads : {2u, 3u, 8u}) {
      Result<std::vector<PsrOutput>> par =
          ScanPsrLadder(db, ladder, {}, Threads(threads));
      ASSERT_TRUE(par.ok()) << par.status();
      for (size_t j = 0; j < ladder.size(); ++j) {
        ExpectPsrEqual(
            (*seq)[j], (*par)[j],
            (subunit ? "subunit" : "unit") + std::string(" threads=") +
                std::to_string(threads) + " k=" +
                std::to_string(ladder[j]));
      }
    }
  }
}

TEST(ShardedScanTest, MatrixAndArgmaxesMatchWithStoredProbabilities) {
  const ProbabilisticDatabase db = MakeSubunitDb(1200);
  const KLadder ladder = MakeLadder({8, 96});
  PsrOptions options;
  options.store_rank_probabilities = true;
  Result<std::vector<PsrOutput>> seq = ScanPsrLadder(db, ladder, options);
  ASSERT_TRUE(seq.ok()) << seq.status();
  ASSERT_GT(seq->back().scan_end, psr_internal::kCountRefreshGridLive);
  Result<std::vector<PsrOutput>> par =
      ScanPsrLadder(db, ladder, options, Threads(4));
  ASSERT_TRUE(par.ok()) << par.status();
  for (size_t j = 0; j < ladder.size(); ++j) {
    ExpectPsrEqual((*seq)[j], (*par)[j],
                   "matrix k=" + std::to_string(ladder[j]));
  }
}

/// Interleaves cleans and refreshes on a parallel-exec session and a
/// sequential one fed identical outcomes; every refresh must land both
/// sessions on the same maintained PSR + TP state at every rung.
TEST(ShardedScanTest, SessionReplaysMatchSequentialUnderCleans) {
  const ProbabilisticDatabase db = MakeSubunitDb();
  const KLadder ladder = MakeLadder({16, 384});

  CleaningSession::Options par_options;
  par_options.exec.num_threads = 8;
  Result<CleaningSession> seq =
      CleaningSession::Start(ProbabilisticDatabase(db), ladder);
  Result<CleaningSession> par = CleaningSession::Start(
      ProbabilisticDatabase(db), ladder, par_options);
  ASSERT_TRUE(seq.ok()) << seq.status();
  ASSERT_TRUE(par.ok()) << par.status();

  Rng rng(20260728);
  for (int round = 0; round < 4; ++round) {
    // A couple of cleans per round, drawn inside the scanned region so
    // the replay suffix is non-trivial; resolve by the existential
    // distribution (sometimes to absent). The scan depth is read once up
    // front -- psr() on a dirty session is a hard failure by contract.
    const size_t scan_end = seq->psr(ladder.size() - 1).scan_end;
    for (int c = 0; c < 2; ++c) {
      const size_t rank = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(scan_end - 1)));
      if (seq->db().is_tombstone(rank)) continue;
      const Tuple& t = seq->db().tuple(rank);
      const TupleId resolved = rng.Bernoulli(0.3) ? TupleId{-1} : t.id;
      Status s1 = seq->ApplyCleanOutcome(t.xtuple, resolved);
      Status s2 = par->ApplyCleanOutcome(t.xtuple, resolved);
      ASSERT_EQ(s1.ok(), s2.ok());
    }
    ASSERT_TRUE(seq->Refresh().ok());
    ASSERT_TRUE(par->Refresh().ok());
    for (size_t j = 0; j < ladder.size(); ++j) {
      const std::string label =
          "round " + std::to_string(round) + " k=" + std::to_string(ladder[j]);
      ExpectPsrEqual(seq->psr(j), par->psr(j), label);
      ExpectTpEqual(seq->tp(j), par->tp(j), label);
    }
  }
}

// ------------------------------------- checkpoint cut-point coverage

/// The shard primitive, exercised at every restore point the engine has:
/// a scan restarted from the checkpoint at rank p (ScanFrom(p) via
/// Replay with an unchanged database) must reproduce the full scan's
/// output at every rung -- including checkpoints ranked past the
/// shallow rung's Lemma-2 stop, where the restart must leave that
/// rung's latched output untouched.
TEST(ShardedScanTest, ScanFromEveryCheckpointRankMatchesFullScan) {
  const ProbabilisticDatabase db = MakeSubunitDb(800);
  const KLadder ladder = MakeLadder({4, 160});
  // With the matrix on, a restart also re-derives the per-rank argmaxes
  // (through the pool-fanned FinalizeAggregates), so the comparison
  // covers every aggregate; without it a replay resets them by contract.
  PsrOptions options;
  options.store_rank_probabilities = true;
  for (const size_t threads : {1u, 4u}) {
    ScanRequest request;
    request.ladder = ladder;
    request.psr = options;
    request.exec = Threads(threads);
    Result<PsrEngine> engine = PsrEngine::Create(db, request);
    ASSERT_TRUE(engine.ok()) << engine.status();
    const std::vector<size_t> positions = engine->checkpoint_positions();
    ASSERT_GT(positions.size(), 4u);
    // The shallow rung stops early; the deep rung keeps checkpointing
    // past it, so restarts beyond a latched rung are really covered.
    const size_t shallow_end = engine->output(0).scan_end;
    ASSERT_LT(shallow_end, engine->output(1).scan_end);
    ASSERT_GT(positions.back(), shallow_end);
    for (const size_t pos : positions) {
      PsrEngine restarted = *engine;  // fresh copy per restart rank
      ASSERT_TRUE(restarted.Replay(db, pos).ok()) << "restart at " << pos;
      for (size_t j = 0; j < ladder.size(); ++j) {
        ExpectPsrEqual(engine->output(j), restarted.output(j),
                       "threads=" + std::to_string(threads) + " restart at " +
                           std::to_string(pos) + " k=" +
                           std::to_string(ladder[j]));
      }
    }
  }
}

// --------------------------------------------- pooled refresh fan-out

TEST(SessionPoolParallelTest, RefreshAllMatchesIndividualAndDedicated) {
  const ProbabilisticDatabase db = MakeSubunitDb(1200);
  const KLadder ladder = MakeLadder({8, 192});
  constexpr size_t kSessions = 4;

  SessionPool::Options par_options;
  par_options.exec.num_threads = 4;
  Result<SessionPool> par =
      SessionPool::Create(ProbabilisticDatabase(db), ladder, par_options);
  Result<SessionPool> seq =
      SessionPool::Create(ProbabilisticDatabase(db), ladder);
  ASSERT_TRUE(par.ok()) << par.status();
  ASSERT_TRUE(seq.ok()) << seq.status();

  std::vector<SessionPool::SessionId> par_ids, seq_ids;
  std::vector<CleaningSession> dedicated;
  for (size_t s = 0; s < kSessions; ++s) {
    par_ids.push_back(par->OpenSession());
    seq_ids.push_back(seq->OpenSession());
    Result<CleaningSession> session =
        CleaningSession::Start(ProbabilisticDatabase(db), ladder);
    ASSERT_TRUE(session.ok()) << session.status();
    dedicated.push_back(std::move(session).value());
  }

  Rng rng(777);
  for (int round = 0; round < 3; ++round) {
    // Distinct per-session outcome streams; session kSessions - 1 stays
    // clean in round 1 so RefreshAll also covers the mixed dirty/clean
    // case.
    for (size_t s = 0; s < kSessions; ++s) {
      if (round == 1 && s == kSessions - 1) continue;
      const size_t scan_end = dedicated[s].psr(ladder.size() - 1).scan_end;
      const size_t rank = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(scan_end - 1)));
      const DatabaseOverlay& view = par->overlay(par_ids[s]);
      if (view.is_tombstone(rank)) continue;
      const Tuple& t = view.tuple(rank);
      // All three arms must agree on whether the outcome is applicable
      // (an x-tuple may already be certain from an earlier round).
      const bool par_ok =
          par->ApplyCleanOutcome(par_ids[s], t.xtuple, t.id).ok();
      const bool seq_ok =
          seq->ApplyCleanOutcome(seq_ids[s], t.xtuple, t.id).ok();
      const bool ded_ok = dedicated[s].ApplyCleanOutcome(t.xtuple, t.id).ok();
      ASSERT_EQ(par_ok, ded_ok);
      ASSERT_EQ(seq_ok, ded_ok);
    }
    // One concurrent fan-out vs per-session refreshes vs dedicated
    // sessions: all three must land on identical state.
    ASSERT_TRUE(par->RefreshAll().ok());
    for (size_t s = 0; s < kSessions; ++s) {
      ASSERT_TRUE(seq->Refresh(seq_ids[s]).ok());
      ASSERT_TRUE(dedicated[s].Refresh().ok());
    }
    for (size_t s = 0; s < kSessions; ++s) {
      for (size_t j = 0; j < ladder.size(); ++j) {
        const std::string label = "round " + std::to_string(round) +
                                  " session " + std::to_string(s) + " k=" +
                                  std::to_string(ladder[j]);
        ExpectPsrEqual(seq->psr(seq_ids[s], j), par->psr(par_ids[s], j),
                       label);
        ExpectTpEqual(dedicated[s].tp(j), par->tp(par_ids[s], j), label);
        EXPECT_NEAR(dedicated[s].quality(j), par->quality(par_ids[s], j),
                    kTol)
            << label;
      }
    }
  }
  // RefreshAll on an all-clean pool is a no-op.
  ASSERT_TRUE(par->RefreshAll().ok());
}

}  // namespace
}  // namespace uclean
