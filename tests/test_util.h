// Shared helpers for randomized/property tests: small random databases with
// controlled shape (so brute-force oracles stay tractable), plus
// ScanRequest-based one-line scan wrappers so every test drives the
// request API of rank/psr.h.

#ifndef UCLEAN_TESTS_TEST_UTIL_H_
#define UCLEAN_TESTS_TEST_UTIL_H_

#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "model/database.h"
#include "rank/psr.h"

namespace uclean {

/// Single-k scan through the request API (the shape most tests want).
inline Result<PsrOutput> ScanPsr(const ProbabilisticDatabase& db, size_t k,
                                 const PsrOptions& options = {}) {
  Result<ScanRequest> request = ScanRequest::ForK(k, options);
  if (!request.ok()) return request.status();
  Result<ScanResult> scan = ComputePsrLadder(db, *request);
  if (!scan.ok()) return scan.status();
  return std::move(scan->outputs[0]);
}

/// Ladder scan through the request API, unwrapped to the per-rung vector.
inline Result<std::vector<PsrOutput>> ScanPsrLadder(
    const ProbabilisticDatabase& db, const KLadder& ladder,
    const PsrOptions& options = {}, const ExecOptions& exec = {}) {
  ScanRequest request;
  request.ladder = ladder;
  request.psr = options;
  request.exec = exec;
  Result<ScanResult> scan = ComputePsrLadder(db, request);
  if (!scan.ok()) return scan.status();
  return std::move(scan->outputs);
}

struct RandomDbOptions {
  size_t num_xtuples = 4;
  size_t max_alternatives = 3;   // per x-tuple, uniform in [1, max]
  bool allow_subunit_mass = true;  // if true, ~half the x-tuples get mass < 1
  double score_min = 0.0;
  double score_max = 100.0;
};

/// Builds a random database; deterministic given the rng state.
inline ProbabilisticDatabase MakeRandomDatabase(Rng* rng,
                                                const RandomDbOptions& opts) {
  DatabaseBuilder builder;
  TupleId next_id = 0;
  for (size_t l = 0; l < opts.num_xtuples; ++l) {
    XTupleId x = builder.AddXTuple();
    const size_t alts = static_cast<size_t>(
        rng->UniformInt(1, static_cast<int64_t>(opts.max_alternatives)));
    // Random positive weights normalized to the target mass.
    std::vector<double> weights(alts);
    double total = 0.0;
    for (double& w : weights) {
      w = rng->Uniform(0.05, 1.0);
      total += w;
    }
    const double mass = (opts.allow_subunit_mass && rng->Bernoulli(0.5))
                            ? rng->Uniform(0.3, 0.95)
                            : 1.0;
    for (size_t a = 0; a < alts; ++a) {
      const double score = rng->Uniform(opts.score_min, opts.score_max);
      Status s = builder.AddAlternative(x, next_id++, score,
                                        mass * weights[a] / total);
      UCLEAN_CHECK(s.ok());
    }
  }
  Result<ProbabilisticDatabase> db = std::move(builder).Finish();
  UCLEAN_CHECK(db.ok());
  return std::move(db).value();
}

}  // namespace uclean

#endif  // UCLEAN_TESTS_TEST_UTIL_H_
