// Shared helpers for randomized/property tests: small random databases with
// controlled shape, so brute-force oracles stay tractable.

#ifndef UCLEAN_TESTS_TEST_UTIL_H_
#define UCLEAN_TESTS_TEST_UTIL_H_

#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "model/database.h"

namespace uclean {

struct RandomDbOptions {
  size_t num_xtuples = 4;
  size_t max_alternatives = 3;   // per x-tuple, uniform in [1, max]
  bool allow_subunit_mass = true;  // if true, ~half the x-tuples get mass < 1
  double score_min = 0.0;
  double score_max = 100.0;
};

/// Builds a random database; deterministic given the rng state.
inline ProbabilisticDatabase MakeRandomDatabase(Rng* rng,
                                                const RandomDbOptions& opts) {
  DatabaseBuilder builder;
  TupleId next_id = 0;
  for (size_t l = 0; l < opts.num_xtuples; ++l) {
    XTupleId x = builder.AddXTuple();
    const size_t alts = static_cast<size_t>(
        rng->UniformInt(1, static_cast<int64_t>(opts.max_alternatives)));
    // Random positive weights normalized to the target mass.
    std::vector<double> weights(alts);
    double total = 0.0;
    for (double& w : weights) {
      w = rng->Uniform(0.05, 1.0);
      total += w;
    }
    const double mass = (opts.allow_subunit_mass && rng->Bernoulli(0.5))
                            ? rng->Uniform(0.3, 0.95)
                            : 1.0;
    for (size_t a = 0; a < alts; ++a) {
      const double score = rng->Uniform(opts.score_min, opts.score_max);
      Status s = builder.AddAlternative(x, next_id++, score,
                                        mass * weights[a] / total);
      UCLEAN_CHECK(s.ok());
    }
  }
  Result<ProbabilisticDatabase> db = std::move(builder).Finish();
  UCLEAN_CHECK(db.ok());
  return std::move(db).value();
}

}  // namespace uclean

#endif  // UCLEAN_TESTS_TEST_UTIL_H_
