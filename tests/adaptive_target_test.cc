// Tests for the two beyond-the-paper extensions: adaptive re-planning
// (Section V-A future work) and the minimal-budget-for-target-quality
// search (Section VII future work).

#include <gtest/gtest.h>

#include "clean/adaptive.h"
#include "clean/target.h"
#include "common/rng.h"
#include "model/paper_example.h"
#include "quality/tp.h"
#include "tests/test_util.h"
#include "workload/cleaning_profile_gen.h"

namespace uclean {
namespace {

CleaningProfile UniformProfile(size_t m, int64_t cost, double sc) {
  CleaningProfile profile;
  profile.costs.assign(m, cost);
  profile.sc_probs.assign(m, sc);
  return profile;
}

TEST(Adaptive, StopsWhenNothingToClean) {
  // A fully certain database has quality 0; no plan should be attempted.
  DatabaseBuilder b;
  for (int l = 0; l < 3; ++l) {
    XTupleId x = b.AddXTuple();
    ASSERT_TRUE(b.AddAlternative(x, l, 10.0 - l, 1.0).ok());
  }
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());
  CleaningProfile profile = UniformProfile(3, 1, 0.9);
  AdaptiveOptions options;
  options.k = 2;
  Rng rng(1);
  Result<AdaptiveReport> report =
      RunAdaptiveCleaning(*db, profile, 100, options, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rounds.size(), 0u);
  EXPECT_EQ(report->total_spent, 0);
  EXPECT_DOUBLE_EQ(report->initial_quality, 0.0);
}

TEST(Adaptive, SpendsWithinBudgetAndImprovesQuality) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 2, 0.7);
  AdaptiveOptions options;
  options.k = 2;
  Rng rng(99);
  Result<AdaptiveReport> report =
      RunAdaptiveCleaning(db, profile, 20, options, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->total_spent, 20);
  EXPECT_GE(report->final_quality, report->initial_quality - 1e-12);
  // Final quality must match an independent evaluation of the final db.
  Result<TpOutput> check = ComputeTpQuality(report->final_db, options.k);
  ASSERT_TRUE(check.ok());
  EXPECT_NEAR(report->final_quality, check->quality, 1e-12);
}

TEST(Adaptive, CertainProbesFullyCleanGivenEnoughBudget) {
  // sc-probability 1 and ample budget: adaptive cleaning should drive the
  // database to quality 0 (every ambiguous x-tuple cleaned).
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 1, 1.0);
  AdaptiveOptions options;
  options.k = 2;
  Rng rng(5);
  Result<AdaptiveReport> report =
      RunAdaptiveCleaning(db, profile, 100, options, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->final_quality, 0.0, 1e-9);
}

TEST(Adaptive, ReinvestsLeftoverBudget) {
  // High sc-probability with multi-probe plans leaves budget unspent in
  // round one; the adaptive loop must run further rounds when ambiguity
  // remains.
  Rng maker(777);
  RandomDbOptions opts;
  opts.num_xtuples = 8;
  opts.max_alternatives = 3;
  ProbabilisticDatabase db = MakeRandomDatabase(&maker, opts);
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 1, 0.5);
  AdaptiveOptions options;
  options.k = 3;
  int multi_round_runs = 0;
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    Result<AdaptiveReport> report =
        RunAdaptiveCleaning(db, profile, 30, options, &rng);
    ASSERT_TRUE(report.ok());
    if (report->rounds.size() > 1) ++multi_round_runs;
    EXPECT_LE(report->total_spent, 30);
  }
  EXPECT_GT(multi_round_runs, 0);
}

TEST(Adaptive, BeatsOneShotOnAverage) {
  // With failures and early successes in play, re-planning should realize
  // at least as much quality as the paper's one-shot execution on average.
  Rng maker(31415);
  RandomDbOptions opts;
  opts.num_xtuples = 8;
  opts.max_alternatives = 3;
  ProbabilisticDatabase db = MakeRandomDatabase(&maker, opts);
  const size_t k = 3;
  CleaningProfile profile;
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    profile.costs.push_back(1);
    profile.sc_probs.push_back(maker.Uniform(0.4, 0.95));
  }
  const int64_t budget = 8;

  Result<CleaningProblem> problem = MakeCleaningProblem(db, k, profile, budget);
  ASSERT_TRUE(problem.ok());
  Result<CleaningPlan> oneshot_plan = PlanGreedy(*problem);
  ASSERT_TRUE(oneshot_plan.ok());
  Result<TpOutput> before = ComputeTpQuality(db, k);
  ASSERT_TRUE(before.ok());

  double oneshot_total = 0.0, adaptive_total = 0.0;
  const int trials = 120;
  AdaptiveOptions options;
  options.k = k;
  for (int t = 0; t < trials; ++t) {
    Rng rng_a(5000 + t), rng_b(5000 + t);
    Result<ExecutionReport> oneshot =
        ExecutePlan(db, profile, oneshot_plan->probes, &rng_a);
    ASSERT_TRUE(oneshot.ok());
    Result<TpOutput> after = ComputeTpQuality(oneshot->cleaned_db, k);
    ASSERT_TRUE(after.ok());
    oneshot_total += after->quality - before->quality;

    Result<AdaptiveReport> adaptive =
        RunAdaptiveCleaning(db, profile, budget, options, &rng_b);
    ASSERT_TRUE(adaptive.ok());
    adaptive_total += adaptive->final_quality - adaptive->initial_quality;
  }
  // Allow a small noise band: adaptive must not be materially worse.
  EXPECT_GE(adaptive_total / trials, oneshot_total / trials - 0.02);
}

TEST(MinimalBudget, ZeroWhenAlreadySatisfied) {
  ProbabilisticDatabase db = MakeUdb1();  // quality ~ -2.55 at k=2
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 1, 0.8);
  Result<BudgetSearchReport> report =
      MinimalBudgetForTarget(db, 2, profile, -3.0, 100);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->attainable);
  EXPECT_EQ(report->minimal_budget, 0);
  EXPECT_NEAR(report->expected_quality, report->current_quality, 1e-12);
}

TEST(MinimalBudget, FindsExactThreshold) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 1, 0.8);
  const double target = -1.0;
  Result<BudgetSearchReport> report =
      MinimalBudgetForTarget(db, 2, profile, target, 200);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->attainable);
  EXPECT_GE(report->expected_quality, target - 1e-9);
  ASSERT_GT(report->minimal_budget, 0);

  // Minimality: one unit less must miss the target.
  Result<CleaningProblem> problem = MakeCleaningProblem(
      db, 2, profile, report->minimal_budget - 1);
  ASSERT_TRUE(problem.ok());
  Result<CleaningPlan> smaller = PlanDp(*problem);
  ASSERT_TRUE(smaller.ok());
  EXPECT_LT(report->current_quality + smaller->expected_improvement, target);
}

TEST(MinimalBudget, ReportsUnattainableTargets) {
  ProbabilisticDatabase db = MakeUdb1();
  // sc-probability 0: no budget can ever help.
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 1, 0.0);
  Result<BudgetSearchReport> report =
      MinimalBudgetForTarget(db, 2, profile, -0.5, 1000);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->attainable);
  EXPECT_NEAR(report->expected_quality, report->current_quality, 1e-9);
}

TEST(MinimalBudget, ValidatesArguments) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 1, 0.5);
  EXPECT_FALSE(MinimalBudgetForTarget(db, 2, profile, 0.5, 100).ok());
  EXPECT_FALSE(MinimalBudgetForTarget(db, 2, profile, -1.0, -5).ok());
}

TEST(MinimalBudget, MonotoneInTarget) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 2, 0.6);
  Result<BudgetSearchReport> easy =
      MinimalBudgetForTarget(db, 2, profile, -2.0, 500);
  Result<BudgetSearchReport> hard =
      MinimalBudgetForTarget(db, 2, profile, -0.5, 500);
  ASSERT_TRUE(easy.ok() && hard.ok());
  ASSERT_TRUE(easy->attainable && hard->attainable);
  EXPECT_LE(easy->minimal_budget, hard->minimal_budget);
}

}  // namespace
}  // namespace uclean
