// Keystone tests of the snapshot store (store/snapshot.h): a saved pool
// reloads with ZERO scans into a pool whose behavior is BITWISE the
// original's --
//
//  * same PSR outputs, checkpoint positions, session overlays and
//    qualities, with re-serialization reproducing the exact file bytes
//    (the strongest round-trip statement: load == built, byte for byte);
//  * post-load serving behaves identically: the same cleans produce the
//    same refreshed state on the original and the reloaded pool;
//  * every corruption mode -- a bit flip inside each section, truncation
//    at every section boundary, unknown feature flags, future section
//    versions, missing sections -- fails with Status::DataLoss;
//  * a mid-campaign save (adaptive cleaning with faults, serial AND
//    pipelined) resumes in a fresh pool and finishes with qualities,
//    spend, probe logs, fault counters, Rng engines and FaultInjector
//    states bitwise equal to the uninterrupted campaign.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "clean/fault.h"
#include "clean/pipeline.h"
#include "clean/session_pool.h"
#include "common/rng.h"
#include "common/status.h"
#include "model/database.h"
#include "rank/psr.h"
#include "store/snapshot.h"
#include "workload/cleaning_profile_gen.h"
#include "workload/synthetic.h"

namespace uclean {
namespace {

constexpr uint64_t kRngBase = 4000;

KLadder MakeLadder(std::vector<size_t> ks) {
  Result<KLadder> ladder = KLadder::Of(std::move(ks));
  UCLEAN_CHECK(ladder.ok());
  return std::move(ladder).value();
}

ProbabilisticDatabase MakeDb(size_t xtuples = 400) {
  SyntheticOptions opts;
  opts.num_xtuples = xtuples;
  opts.tuples_per_xtuple = 4;
  opts.real_mass_min = 0.7;  // sub-unit masses: null outcomes occur too
  opts.real_mass_max = 1.0;
  opts.seed = 20260806;
  Result<ProbabilisticDatabase> db = GenerateSynthetic(opts);
  UCLEAN_CHECK(db.ok());
  return std::move(db).value();
}

CleaningProfile MakeProfile(size_t xtuples) {
  CleaningProfileOptions opts;
  opts.sc_pdf = ScPdf::Uniform(0.2, 0.9);
  opts.seed = 99;
  Result<CleaningProfile> profile = GenerateCleaningProfile(xtuples, opts);
  UCLEAN_CHECK(profile.ok());
  return std::move(profile).value();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Resolves x-tuple `l` to its best-ranked member's tuple id.
TupleId FirstMemberId(const ProbabilisticDatabase& db, XTupleId l) {
  return db.tuple(db.xtuple_members(l)[0]).id;
}

void ExpectPsrEq(const PsrOutput& a, const PsrOutput& b) {
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.topk_prob, b.topk_prob);
  EXPECT_EQ(a.num_nonzero, b.num_nonzero);
  EXPECT_EQ(a.scan_end, b.scan_end);
  EXPECT_EQ(a.best_rank_prob, b.best_rank_prob);
  EXPECT_EQ(a.best_rank_index, b.best_rank_index);
  EXPECT_EQ(a.rank_prob, b.rank_prob);
  EXPECT_EQ(a.has_rank_probabilities, b.has_rank_probabilities);
}

void ExpectInjectorStateEq(const FaultInjectorState& a,
                           const FaultInjectorState& b) {
  EXPECT_EQ(a.rng_state, b.rng_state);
  EXPECT_EQ(a.now_us, b.now_us);
  EXPECT_EQ(a.ever_opened, b.ever_opened);
  ASSERT_EQ(a.breakers.size(), b.breakers.size());
  for (size_t i = 0; i < a.breakers.size(); ++i) {
    EXPECT_EQ(a.breakers[i].source, b.breakers[i].source);
    EXPECT_EQ(a.breakers[i].state, b.breakers[i].state);
    EXPECT_EQ(a.breakers[i].consecutive_failures,
              b.breakers[i].consecutive_failures);
    EXPECT_EQ(a.breakers[i].open_until_us, b.breakers[i].open_until_us);
  }
  ASSERT_EQ(a.down.size(), b.down.size());
  for (size_t i = 0; i < a.down.size(); ++i) {
    EXPECT_EQ(a.down[i].source, b.down[i].source);
    EXPECT_EQ(a.down[i].down, b.down[i].down);
  }
}

/// A pool with three sessions: two carrying cleans (one real resolution,
/// one null outcome), one pristine -- the shape most round-trip tests use.
struct TestPool {
  SessionPool pool;
  std::vector<SessionPool::SessionId> ids;
};

TestPool MakeServingPool(const ProbabilisticDatabase& db,
                         const KLadder& ladder, size_t threads = 1) {
  SessionPool::Options options;
  options.exec.num_threads = threads;
  Result<SessionPool> pool =
      SessionPool::Create(ProbabilisticDatabase(db), ladder, options);
  UCLEAN_CHECK(pool.ok());
  TestPool tp{std::move(pool).value(), {}};
  for (size_t s = 0; s < 3; ++s) tp.ids.push_back(tp.pool.OpenSession());
  UCLEAN_CHECK(
      tp.pool.ApplyCleanOutcome(tp.ids[0], 3, FirstMemberId(db, 3)).ok());
  UCLEAN_CHECK(
      tp.pool.ApplyCleanOutcome(tp.ids[0], 11, FirstMemberId(db, 11)).ok());
  UCLEAN_CHECK(tp.pool.ApplyCleanOutcome(tp.ids[1], 7, -1).ok());  // null
  UCLEAN_CHECK(tp.pool.RefreshAll().ok());
  return tp;
}

std::string SerializedPool(const SessionPool& pool) {
  std::string bytes;
  UCLEAN_CHECK(SnapshotAccess::Serialize(pool, nullptr, &bytes).ok());
  return bytes;
}

// ------------------------------------------------------------- round trip

TEST(SnapshotRoundTripTest, LoadedPoolIsBitwiseIdentical) {
  const ProbabilisticDatabase db = MakeDb();
  const KLadder ladder = MakeLadder({5, 20});
  TestPool built = MakeServingPool(db, ladder);

  const std::string path = TempPath("roundtrip.snap");
  ASSERT_TRUE(store::WriteSnapshot(built.pool, path).ok());

  SessionPool::Options options;  // same exec mode as the writer
  Result<SessionPool> loaded = SessionPool::OpenFromSnapshot(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();

  // Database: shape and per-tuple content.
  ASSERT_EQ(loaded->base().num_tuples(), built.pool.base().num_tuples());
  ASSERT_EQ(loaded->base().num_xtuples(), built.pool.base().num_xtuples());
  for (size_t i = 0; i < built.pool.base().num_tuples(); ++i) {
    const Tuple& a = built.pool.base().tuple(i);
    const Tuple& b = loaded->base().tuple(i);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.xtuple, b.xtuple);
    EXPECT_EQ(a.score, b.score);
    EXPECT_EQ(a.prob, b.prob);
    EXPECT_EQ(a.is_null, b.is_null);
    EXPECT_EQ(a.label, b.label);
  }

  // Ladder, sessions, per-session PSR + TP state, overlays.
  EXPECT_EQ(loaded->ladder().ks, built.pool.ladder().ks);
  ASSERT_EQ(loaded->num_open(), built.pool.num_open());
  for (SessionPool::SessionId id : built.ids) {
    ASSERT_TRUE(loaded->is_open(id));
    EXPECT_EQ(loaded->overlay(id).outcomes(),
              built.pool.overlay(id).outcomes());
    for (size_t rung = 0; rung < built.pool.num_rungs(); ++rung) {
      ExpectPsrEq(loaded->psr(id, rung), built.pool.psr(id, rung));
      EXPECT_EQ(loaded->quality(id, rung), built.pool.quality(id, rung));
    }
  }

  // Checkpoint geometry: the shared scan's and each session's private
  // suffix checkpoints restore at the exact same ranks.
  EXPECT_EQ(SnapshotAccess::EngineCheckpointPositions(*loaded),
            SnapshotAccess::EngineCheckpointPositions(built.pool));
  for (SessionPool::SessionId id : built.ids) {
    EXPECT_EQ(SnapshotAccess::SessionCheckpointPositions(*loaded, id),
              SnapshotAccess::SessionCheckpointPositions(built.pool, id));
  }

  // The strongest statement: serializing the loaded pool reproduces the
  // file image byte for byte.
  EXPECT_EQ(SerializedPool(*loaded), SerializedPool(built.pool));
}

TEST(SnapshotRoundTripTest, LoadedPoolServesIdenticallyAfterMoreCleaning) {
  const ProbabilisticDatabase db = MakeDb();
  const KLadder ladder = MakeLadder({10});
  TestPool built = MakeServingPool(db, ladder);

  const std::string path = TempPath("serve.snap");
  ASSERT_TRUE(store::WriteSnapshot(built.pool, path).ok());
  Result<SessionPool> loaded = SessionPool::OpenFromSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();

  // Same mutations on both pools -> same refreshed state, and sessions
  // opened after the reload fork the same slots with the same state.
  const SessionPool::SessionId fresh_a = built.pool.OpenSession();
  const SessionPool::SessionId fresh_b = loaded->OpenSession();
  ASSERT_EQ(fresh_a, fresh_b);
  for (SessionPool* pool : {&built.pool, &*loaded}) {
    ASSERT_TRUE(
        pool->ApplyCleanOutcome(built.ids[1], 21, FirstMemberId(db, 21))
            .ok());
    ASSERT_TRUE(
        pool->ApplyCleanOutcome(fresh_a, 5, FirstMemberId(db, 5)).ok());
    ASSERT_TRUE(pool->RefreshAll().ok());
  }
  for (SessionPool::SessionId id : {built.ids[1], fresh_a}) {
    for (size_t rung = 0; rung < built.pool.num_rungs(); ++rung) {
      ExpectPsrEq(loaded->psr(id, rung), built.pool.psr(id, rung));
      EXPECT_EQ(loaded->quality(id, rung), built.pool.quality(id, rung));
    }
  }
}

TEST(SnapshotRoundTripTest, SurvivesClosedSlotsAndThreadedWriter) {
  const ProbabilisticDatabase db = MakeDb();
  const KLadder ladder = MakeLadder({5, 20});
  // A multi-threaded pool with a hole in the slot table: slot reuse
  // bookkeeping (free list, num_open) must survive the round trip.
  TestPool built = MakeServingPool(db, ladder, /*threads=*/4);
  ASSERT_TRUE(built.pool.Close(built.ids[1]).ok());

  const std::string path = TempPath("slots.snap");
  ASSERT_TRUE(store::WriteSnapshot(built.pool, path).ok());
  SessionPool::Options options;
  options.exec.num_threads = 4;
  Result<SessionPool> loaded = SessionPool::OpenFromSnapshot(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->num_open(), built.pool.num_open());
  EXPECT_FALSE(loaded->is_open(built.ids[1]));
  // The freed slot is reused in the same order.
  EXPECT_EQ(loaded->OpenSession(), built.pool.OpenSession());
  EXPECT_EQ(SerializedPool(*loaded), SerializedPool(built.pool));
}

TEST(SnapshotWriteTest, DirtySessionIsRejected) {
  const ProbabilisticDatabase db = MakeDb(120);
  TestPool built = MakeServingPool(db, MakeLadder({5}));
  ASSERT_TRUE(
      built.pool.ApplyCleanOutcome(built.ids[2], 9, FirstMemberId(db, 9))
          .ok());  // applied but NOT refreshed: the session is dirty
  const std::string path = TempPath("dirty.snap");
  Status status = store::WriteSnapshot(built.pool, path);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotReadTest, MissingFileIsIOError) {
  Result<SessionPool> loaded =
      SessionPool::OpenFromSnapshot(TempPath("does_not_exist.snap"));
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

// ------------------------------------------------------------- corruption

TEST(SnapshotCorruptionTest, BitFlipInEverySectionIsDataLoss) {
  const ProbabilisticDatabase db = MakeDb(120);
  TestPool built = MakeServingPool(db, MakeLadder({5}));
  const std::string good = SerializedPool(built.pool);
  Result<store::SnapshotFile> file = store::SnapshotFile::Parse(good);
  ASSERT_TRUE(file.ok());
  ASSERT_EQ(file->sections().size(), 4u);

  for (const store::SectionEntry& entry : file->sections()) {
    for (uint64_t at : {entry.offset, entry.offset + entry.size / 2,
                        entry.offset + entry.size - 1}) {
      std::string bad = good;
      bad[at] = static_cast<char>(bad[at] ^ 0x01);
      Result<store::LoadedSnapshot> loaded =
          SnapshotAccess::Deserialize(std::move(bad), SessionPool::Options());
      EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
          << store::SectionName(entry.id) << " byte " << at;
    }
  }
}

TEST(SnapshotCorruptionTest, TruncationAtEverySectionBoundaryIsDataLoss) {
  const ProbabilisticDatabase db = MakeDb(120);
  TestPool built = MakeServingPool(db, MakeLadder({5}));
  const std::string good = SerializedPool(built.pool);
  Result<store::SnapshotFile> file = store::SnapshotFile::Parse(good);
  ASSERT_TRUE(file.ok());

  std::vector<size_t> cuts = {0, store::kSnapshotHeaderSize - 1,
                              store::kSnapshotHeaderSize, good.size() - 1};
  for (const store::SectionEntry& entry : file->sections()) {
    cuts.push_back(entry.offset);
    cuts.push_back(entry.offset + entry.size);
  }
  for (size_t cut : cuts) {
    ASSERT_LE(cut, good.size());
    // In memory...
    Result<store::LoadedSnapshot> loaded = SnapshotAccess::Deserialize(
        good.substr(0, cut), SessionPool::Options());
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss) << cut;
    // ...and through the file path the CLI takes.
    const std::string path = TempPath("truncated.snap");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(good.data(), static_cast<std::streamsize>(cut));
    out.close();
    EXPECT_EQ(SessionPool::OpenFromSnapshot(path).status().code(),
              StatusCode::kDataLoss)
        << cut;
  }
}

/// Rebuilds the container of `good` through a mutator over its parsed
/// sections -- how the tests synthesize future/foreign files that are
/// checksum-valid but semantically out of range.
template <typename Fn>
std::string RebuildContainer(const std::string& good, Fn mutate) {
  Result<store::SnapshotFile> file = store::SnapshotFile::Parse(good);
  UCLEAN_CHECK(file.ok());
  store::SnapshotFileBuilder builder;
  builder.set_feature_flags(file->feature_flags());
  for (const store::SectionEntry& entry : file->sections()) {
    builder.AddSection(entry.id, entry.version,
                       std::string(file->payload(entry)));
  }
  mutate(&builder, *file);
  return builder.Finish();
}

TEST(SnapshotCorruptionTest, UnknownFeatureFlagIsDataLoss) {
  TestPool built = MakeServingPool(MakeDb(120), MakeLadder({5}));
  const std::string bad = RebuildContainer(
      SerializedPool(built.pool),
      [](store::SnapshotFileBuilder* builder, const store::SnapshotFile&) {
        builder->set_feature_flags(0x40000000u);
      });
  Result<store::LoadedSnapshot> loaded =
      SnapshotAccess::Deserialize(bad, SessionPool::Options());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(SnapshotCorruptionTest, FutureSectionVersionIsDataLoss) {
  TestPool built = MakeServingPool(MakeDb(120), MakeLadder({5}));
  const std::string good = SerializedPool(built.pool);
  Result<store::SnapshotFile> file = store::SnapshotFile::Parse(good);
  ASSERT_TRUE(file.ok());
  for (const store::SectionEntry& bump : file->sections()) {
    store::SnapshotFileBuilder builder;
    for (const store::SectionEntry& entry : file->sections()) {
      const uint32_t version = entry.id == bump.id
                                   ? store::kSectionVersion + 1
                                   : entry.version;
      builder.AddSection(entry.id, version,
                         std::string(file->payload(entry)));
    }
    Result<store::LoadedSnapshot> loaded =
        SnapshotAccess::Deserialize(builder.Finish(), SessionPool::Options());
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
        << store::SectionName(bump.id);
  }
}

TEST(SnapshotCorruptionTest, MissingRequiredSectionIsDataLoss) {
  TestPool built = MakeServingPool(MakeDb(120), MakeLadder({5}));
  const std::string good = SerializedPool(built.pool);
  Result<store::SnapshotFile> file = store::SnapshotFile::Parse(good);
  ASSERT_TRUE(file.ok());
  for (const store::SectionEntry& drop : file->sections()) {
    store::SnapshotFileBuilder builder;
    for (const store::SectionEntry& entry : file->sections()) {
      if (entry.id == drop.id) continue;
      builder.AddSection(entry.id, entry.version,
                         std::string(file->payload(entry)));
    }
    Result<store::LoadedSnapshot> loaded =
        SnapshotAccess::Deserialize(builder.Finish(), SessionPool::Options());
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
        << store::SectionName(drop.id);
  }
}

TEST(SnapshotCompatTest, UnknownSectionIsSkipped) {
  TestPool built = MakeServingPool(MakeDb(120), MakeLadder({5}));
  const std::string good = SerializedPool(built.pool);
  const std::string extended = RebuildContainer(
      good,
      [](store::SnapshotFileBuilder* builder, const store::SnapshotFile&) {
        builder->AddSection(/*id=*/42, /*version=*/9, "bytes from the future");
      });
  Result<store::LoadedSnapshot> loaded =
      SnapshotAccess::Deserialize(extended, SessionPool::Options());
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  // The reconstructed pool is the one the un-extended file describes.
  EXPECT_EQ(SerializedPool(loaded->pool), good);
}

// ---------------------------------------------------------------- inspect

TEST(SnapshotInspectTest, ReportsSectionsAndMeta) {
  const ProbabilisticDatabase db = MakeDb(120);
  TestPool built = MakeServingPool(db, MakeLadder({5, 20}));
  const std::string path = TempPath("inspect.snap");
  ASSERT_TRUE(store::WriteSnapshot(built.pool, path).ok());

  Result<store::SnapshotInfo> info = store::InspectSnapshot(path);
  ASSERT_TRUE(info.ok()) << info.status().message();
  EXPECT_EQ(info->format_version, store::kSnapshotFormatVersion);
  ASSERT_EQ(info->sections.size(), 4u);
  EXPECT_EQ(info->sections[0].name, "meta");
  EXPECT_EQ(info->sections[1].name, "database");
  EXPECT_EQ(info->sections[2].name, "engine");
  EXPECT_EQ(info->sections[3].name, "sessions");
  ASSERT_TRUE(info->has_meta);
  EXPECT_EQ(info->meta.tool, "uclean");
  // The recorded kernel is the writer's RESOLVED one, never "auto".
  EXPECT_TRUE(info->meta.kernel == "scalar" || info->meta.kernel == "avx2")
      << info->meta.kernel;
  EXPECT_GE(info->meta.threads, 1u);
  EXPECT_EQ(info->meta.num_xtuples, db.num_xtuples());
  EXPECT_EQ(info->meta.num_sessions, 3u);
  EXPECT_EQ(info->meta.ladder, (std::vector<size_t>{5, 20}));

  // Corrupt file: inspect fails with DataLoss like the full reader.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  const std::string bad_path = TempPath("inspect_bad.snap");
  std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  EXPECT_EQ(store::InspectSnapshot(bad_path).status().code(),
            StatusCode::kDataLoss);
}

// ------------------------------------------------- resumed determinism

struct CampaignArm {
  PipelineReport report;
  std::vector<std::vector<double>> quality;  // [session][rung], from the pool
  std::vector<std::mt19937_64> engines;      // final Rng engine states
  std::vector<FaultInjectorState> injectors; // final injector states
};

FaultOptions CampaignFaults() {
  FaultOptions fault;
  fault.enabled = true;
  fault.profile.fail_rate = 0.25;
  fault.profile.down_rate = 0.05;
  fault.seed = 71;
  return fault;
}

std::vector<FaultInjector> MakeInjectors(const FaultOptions& fault,
                                         size_t n) {
  std::vector<FaultInjector> injectors;
  injectors.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    FaultOptions session_fault = fault;
    session_fault.seed = fault.seed + s;
    injectors.emplace_back(session_fault);
  }
  return injectors;
}

/// Runs the uninterrupted reference campaign: `rounds` rounds of adaptive
/// cleaning with faults on a fresh pool.
CampaignArm RunUninterrupted(const ProbabilisticDatabase& db,
                             const KLadder& ladder,
                             const CleaningProfile& profile, size_t sessions,
                             int64_t budget, size_t rounds, bool overlap,
                             size_t threads) {
  SessionPool::Options pool_options;
  pool_options.exec.num_threads = threads;
  Result<SessionPool> pool =
      SessionPool::Create(ProbabilisticDatabase(db), ladder, pool_options);
  UCLEAN_CHECK(pool.ok());
  std::vector<SessionPool::SessionId> ids;
  std::vector<Rng> rngs;
  for (size_t s = 0; s < sessions; ++s) {
    ids.push_back(pool->OpenSession());
    rngs.emplace_back(kRngBase + s);
  }
  const FaultOptions fault = CampaignFaults();
  std::vector<FaultInjector> injectors = MakeInjectors(fault, sessions);

  PipelineOptions options;
  options.overlap = overlap;
  options.max_rounds = rounds;
  options.fault = fault;
  options.injectors = &injectors;
  Result<PipelineReport> report =
      RunPipelinedCleaning(&*pool, ids, profile, budget, &rngs, options);
  UCLEAN_CHECK(report.ok());

  CampaignArm arm;
  arm.report = std::move(report).value();
  for (size_t s = 0; s < sessions; ++s) {
    std::vector<double> quality;
    for (size_t rung = 0; rung < pool->num_rungs(); ++rung) {
      quality.push_back(pool->quality(ids[s], rung));
    }
    arm.quality.push_back(std::move(quality));
    arm.engines.push_back(rngs[s].engine());
    arm.injectors.push_back(injectors[s].SaveState());
  }
  return arm;
}

/// Runs `split` rounds, snapshots pool + campaign to disk, reloads into a
/// FRESH pool and finishes the remaining rounds from the file's state.
CampaignArm RunSplitThroughSnapshot(const ProbabilisticDatabase& db,
                                    const KLadder& ladder,
                                    const CleaningProfile& profile,
                                    size_t sessions, int64_t budget,
                                    size_t rounds, size_t split, bool overlap,
                                    size_t threads, const std::string& path) {
  SessionPool::Options pool_options;
  pool_options.exec.num_threads = threads;
  const FaultOptions fault = CampaignFaults();

  // ---- part 1: rounds [0, split) on the original pool.
  store::CampaignSnapshot saved;
  {
    Result<SessionPool> pool =
        SessionPool::Create(ProbabilisticDatabase(db), ladder, pool_options);
    UCLEAN_CHECK(pool.ok());
    std::vector<SessionPool::SessionId> ids;
    std::vector<Rng> rngs;
    for (size_t s = 0; s < sessions; ++s) {
      ids.push_back(pool->OpenSession());
      rngs.emplace_back(kRngBase + s);
    }
    std::vector<FaultInjector> injectors = MakeInjectors(fault, sessions);
    PipelineOptions options;
    options.overlap = overlap;
    options.max_rounds = split;
    options.fault = fault;
    options.injectors = &injectors;
    Result<PipelineReport> part1 =
        RunPipelinedCleaning(&*pool, ids, profile, budget, &rngs, options);
    UCLEAN_CHECK(part1.ok());

    saved.budget = budget;
    for (size_t s = 0; s < sessions; ++s) {
      store::CampaignSessionSnapshot cs;
      cs.session_id = ids[s];
      cs.spent = part1->sessions[s].spent;
      cs.leftover = part1->sessions[s].leftover;
      cs.successes = part1->sessions[s].successes;
      cs.rounds = part1->sessions[s].rounds;
      cs.log = part1->sessions[s].log;
      cs.faults = part1->sessions[s].faults;
      cs.rng_state = rngs[s].SaveState();
      cs.has_injector = true;
      cs.injector = injectors[s].SaveState();
      saved.sessions.push_back(std::move(cs));
    }
    UCLEAN_CHECK(store::WriteSnapshot(*pool, path, &saved).ok());
    // The writer's pool dies here: the resumed arm starts from the file.
  }

  // ---- part 2: reload and finish rounds [split, rounds).
  Result<store::LoadedSnapshot> loaded = store::ReadSnapshot(path, [&] {
    SessionPool::Options o;
    o.exec.num_threads = threads;
    return o;
  }());
  UCLEAN_CHECK(loaded.ok());
  UCLEAN_CHECK(loaded->has_campaign);
  SessionPool pool = std::move(loaded->pool);

  std::vector<SessionPool::SessionId> ids;
  std::vector<Rng> rngs;
  std::vector<FaultInjector> injectors = MakeInjectors(fault, sessions);
  std::vector<int64_t> spent_so_far;
  for (size_t s = 0; s < sessions; ++s) {
    const store::CampaignSessionSnapshot& cs = loaded->campaign.sessions[s];
    ids.push_back(static_cast<SessionPool::SessionId>(cs.session_id));
    rngs.emplace_back(0);
    UCLEAN_CHECK(rngs.back().RestoreState(cs.rng_state).ok());
    UCLEAN_CHECK(cs.has_injector);
    UCLEAN_CHECK(injectors[s].RestoreState(cs.injector).ok());
    spent_so_far.push_back(cs.spent);
  }
  PipelineOptions options;
  options.overlap = overlap;
  options.max_rounds = rounds - split;
  options.fault = fault;
  options.injectors = &injectors;
  options.spent_so_far = spent_so_far;
  Result<PipelineReport> part2 =
      RunPipelinedCleaning(&pool, ids, profile, budget, &rngs, options);
  UCLEAN_CHECK(part2.ok());

  // Merge the saved progress with part 2's report -- what a resuming
  // caller does.
  CampaignArm arm;
  arm.report = std::move(part2).value();
  for (size_t s = 0; s < sessions; ++s) {
    const store::CampaignSessionSnapshot& cs = loaded->campaign.sessions[s];
    PipelineSessionReport& session = arm.report.sessions[s];
    session.spent += cs.spent;
    session.leftover += cs.leftover;
    session.successes += cs.successes;
    session.rounds += cs.rounds;
    session.log.insert(session.log.begin(), cs.log.begin(), cs.log.end());
    session.faults += cs.faults;
    std::vector<double> quality;
    for (size_t rung = 0; rung < pool.num_rungs(); ++rung) {
      quality.push_back(pool.quality(ids[s], rung));
    }
    arm.quality.push_back(std::move(quality));
    arm.engines.push_back(rngs[s].engine());
    arm.injectors.push_back(injectors[s].SaveState());
  }
  return arm;
}

void ExpectCampaignsBitwiseEqual(const CampaignArm& a, const CampaignArm& b) {
  ASSERT_EQ(a.report.sessions.size(), b.report.sessions.size());
  for (size_t s = 0; s < a.report.sessions.size(); ++s) {
    const PipelineSessionReport& x = a.report.sessions[s];
    const PipelineSessionReport& y = b.report.sessions[s];
    EXPECT_EQ(x.spent, y.spent) << s;
    EXPECT_EQ(x.leftover, y.leftover) << s;
    EXPECT_EQ(x.successes, y.successes) << s;
    EXPECT_EQ(x.rounds, y.rounds) << s;
    EXPECT_EQ(x.log, y.log) << s;
    EXPECT_TRUE(x.faults == y.faults) << s;
    EXPECT_EQ(x.final_quality, y.final_quality) << s;
    EXPECT_EQ(a.quality[s], b.quality[s]) << s;
    EXPECT_EQ(a.engines[s], b.engines[s]) << s;
    ExpectInjectorStateEq(a.injectors[s], b.injectors[s]);
  }
}

TEST(SnapshotResumeTest, MidCampaignSaveResumesBitwiseSerial) {
  const ProbabilisticDatabase db = MakeDb();
  const KLadder ladder = MakeLadder({10});
  const CleaningProfile profile = MakeProfile(db.num_xtuples());
  const size_t kSessions = 3;
  const int64_t kBudget = 60;
  const size_t kRounds = 4;

  CampaignArm whole = RunUninterrupted(db, ladder, profile, kSessions,
                                       kBudget, kRounds, /*overlap=*/false,
                                       /*threads=*/1);
  CampaignArm resumed = RunSplitThroughSnapshot(
      db, ladder, profile, kSessions, kBudget, kRounds, /*split=*/1,
      /*overlap=*/false, /*threads=*/1, TempPath("resume_serial.snap"));

  // The split must be a genuine mid-campaign save: both halves probed.
  ASSERT_GT(resumed.report.sessions[0].spent, 0);
  ExpectCampaignsBitwiseEqual(whole, resumed);
}

TEST(SnapshotResumeTest, MidCampaignSaveResumesBitwisePipelined) {
  const ProbabilisticDatabase db = MakeDb();
  const KLadder ladder = MakeLadder({10});
  const CleaningProfile profile = MakeProfile(db.num_xtuples());
  const size_t kSessions = 3;
  const int64_t kBudget = 60;
  const size_t kRounds = 4;

  CampaignArm whole = RunUninterrupted(db, ladder, profile, kSessions,
                                       kBudget, kRounds, /*overlap=*/true,
                                       /*threads=*/4);
  CampaignArm resumed = RunSplitThroughSnapshot(
      db, ladder, profile, kSessions, kBudget, kRounds, /*split=*/2,
      /*overlap=*/true, /*threads=*/4, TempPath("resume_pipelined.snap"));

  ASSERT_GT(resumed.report.sessions[0].spent, 0);
  ExpectCampaignsBitwiseEqual(whole, resumed);
}

TEST(SnapshotResumeTest, CampaignSectionRoundTripsVerbatim) {
  const ProbabilisticDatabase db = MakeDb(120);
  TestPool built = MakeServingPool(db, MakeLadder({5}));

  store::CampaignSnapshot campaign;
  campaign.budget = 77;
  store::CampaignSessionSnapshot cs;
  cs.session_id = built.ids[0];
  cs.spent = 13;
  cs.leftover = 2;
  cs.successes = 4;
  cs.rounds = 2;
  ProbeRecord record;
  record.xtuple = 3;
  record.attempts = 2;
  record.spent = 6;
  record.success = true;
  record.resolved_id = FirstMemberId(db, 3);
  record.retries = 1;
  record.last_error = StatusCode::kUnavailable;
  cs.log.push_back(record);
  cs.faults.transient = 5;
  cs.faults.budget_unspent = 3;
  Rng rng(123);
  (void)rng.UniformUnit();
  cs.rng_state = rng.SaveState();
  cs.has_injector = false;
  campaign.sessions.push_back(cs);

  const std::string path = TempPath("campaign.snap");
  ASSERT_TRUE(store::WriteSnapshot(built.pool, path, &campaign).ok());
  Result<store::LoadedSnapshot> loaded = store::ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_TRUE(loaded->has_campaign);
  EXPECT_EQ(loaded->campaign.budget, 77);
  ASSERT_EQ(loaded->campaign.sessions.size(), 1u);
  const store::CampaignSessionSnapshot& got = loaded->campaign.sessions[0];
  EXPECT_EQ(got.session_id, cs.session_id);
  EXPECT_EQ(got.spent, cs.spent);
  EXPECT_EQ(got.leftover, cs.leftover);
  EXPECT_EQ(got.successes, cs.successes);
  EXPECT_EQ(got.rounds, cs.rounds);
  EXPECT_EQ(got.log, cs.log);
  EXPECT_TRUE(got.faults == cs.faults);
  EXPECT_EQ(got.rng_state, cs.rng_state);
  EXPECT_FALSE(got.has_injector);

  // A campaign referencing a closed session must not load.
  store::CampaignSnapshot stale = campaign;
  stale.sessions[0].session_id = 99;
  const std::string stale_path = TempPath("campaign_stale.snap");
  ASSERT_TRUE(store::WriteSnapshot(built.pool, stale_path, &stale).ok());
  EXPECT_EQ(store::ReadSnapshot(stale_path).status().code(),
            StatusCode::kDataLoss);
}

}  // namespace
}  // namespace uclean
