// Unit tests for the probabilistic database model: builder validation,
// null completion, rank ordering and tie-breaking, and the cleaned-database
// derivation helpers.

#include "model/database.h"

#include <gtest/gtest.h>

#include "model/paper_example.h"

namespace uclean {
namespace {

TEST(DatabaseBuilder, RejectsUnknownXTuple) {
  DatabaseBuilder b;
  EXPECT_EQ(b.AddAlternative(0, 1, 1.0, 0.5).code(), StatusCode::kOutOfRange);
  b.AddXTuple();
  EXPECT_TRUE(b.AddAlternative(0, 1, 1.0, 0.5).ok());
  EXPECT_EQ(b.AddAlternative(1, 2, 1.0, 0.5).code(), StatusCode::kOutOfRange);
}

TEST(DatabaseBuilder, RejectsBadProbabilities) {
  DatabaseBuilder b;
  XTupleId x = b.AddXTuple();
  EXPECT_FALSE(b.AddAlternative(x, 1, 1.0, 0.0).ok());
  EXPECT_FALSE(b.AddAlternative(x, 2, 1.0, -0.1).ok());
  EXPECT_FALSE(b.AddAlternative(x, 3, 1.0, 1.1).ok());
  EXPECT_TRUE(b.AddAlternative(x, 4, 1.0, 1.0).ok());
}

TEST(DatabaseBuilder, RejectsNegativeIdsAndBadScores) {
  DatabaseBuilder b;
  XTupleId x = b.AddXTuple();
  EXPECT_FALSE(b.AddAlternative(x, -1, 1.0, 0.5).ok());
  EXPECT_FALSE(
      b.AddAlternative(x, 1, std::numeric_limits<double>::infinity(), 0.5)
          .ok());
  EXPECT_FALSE(
      b.AddAlternative(x, 2, std::numeric_limits<double>::quiet_NaN(), 0.5)
          .ok());
}

TEST(DatabaseBuilder, RejectsOverfullXTuple) {
  DatabaseBuilder b;
  XTupleId x = b.AddXTuple();
  ASSERT_TRUE(b.AddAlternative(x, 1, 1.0, 0.7).ok());
  ASSERT_TRUE(b.AddAlternative(x, 2, 2.0, 0.7).ok());
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseBuilder, RejectsDuplicateTupleIds) {
  DatabaseBuilder b;
  XTupleId x0 = b.AddXTuple();
  XTupleId x1 = b.AddXTuple();
  ASSERT_TRUE(b.AddAlternative(x0, 7, 1.0, 0.5).ok());
  ASSERT_TRUE(b.AddAlternative(x1, 7, 2.0, 0.5).ok());
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  EXPECT_FALSE(db.ok());
}

TEST(DatabaseBuilder, MaterializesNullForSubUnitMass) {
  DatabaseBuilder b;
  XTupleId x = b.AddXTuple("entity");
  ASSERT_TRUE(b.AddAlternative(x, 1, 5.0, 0.3).ok());
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_real_tuples(), 1u);
  ASSERT_EQ(db->num_tuples(), 2u);
  const Tuple& null_tuple = db->tuple(1);  // nulls sort last
  EXPECT_TRUE(null_tuple.is_null);
  EXPECT_LT(null_tuple.id, 0);
  EXPECT_NEAR(null_tuple.prob, 0.7, 1e-12);
  EXPECT_EQ(null_tuple.label, "entity");
  EXPECT_NEAR(db->xtuple_real_mass(x), 0.3, 1e-12);
}

TEST(DatabaseBuilder, NoNullForUnitMass) {
  DatabaseBuilder b;
  XTupleId x = b.AddXTuple();
  ASSERT_TRUE(b.AddAlternative(x, 1, 5.0, 0.4).ok());
  ASSERT_TRUE(b.AddAlternative(x, 2, 6.0, 0.6).ok());
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_tuples(), 2u);
  EXPECT_EQ(db->num_real_tuples(), 2u);
}

TEST(DatabaseBuilder, EmptyXTupleBecomesCertainNull) {
  DatabaseBuilder b;
  b.AddXTuple();
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->num_tuples(), 1u);
  EXPECT_TRUE(db->tuple(0).is_null);
  EXPECT_DOUBLE_EQ(db->tuple(0).prob, 1.0);
}

TEST(Database, RankOrderIsScoreDescending) {
  DatabaseBuilder b;
  XTupleId x0 = b.AddXTuple();
  XTupleId x1 = b.AddXTuple();
  ASSERT_TRUE(b.AddAlternative(x0, 0, 10.0, 0.5).ok());
  ASSERT_TRUE(b.AddAlternative(x0, 1, 30.0, 0.5).ok());
  ASSERT_TRUE(b.AddAlternative(x1, 2, 20.0, 1.0).ok());
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->tuple(0).id, 1);
  EXPECT_EQ(db->tuple(1).id, 2);
  EXPECT_EQ(db->tuple(2).id, 0);
}

TEST(Database, ScoreTiesBreakTowardSmallerId) {
  DatabaseBuilder b;
  XTupleId x0 = b.AddXTuple();
  XTupleId x1 = b.AddXTuple();
  ASSERT_TRUE(b.AddAlternative(x1, 9, 50.0, 1.0).ok());
  ASSERT_TRUE(b.AddAlternative(x0, 3, 50.0, 1.0).ok());
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->tuple(0).id, 3);
  EXPECT_EQ(db->tuple(1).id, 9);
}

TEST(Database, NullsSortAfterRealsByXTupleId) {
  DatabaseBuilder b;
  XTupleId x0 = b.AddXTuple();
  XTupleId x1 = b.AddXTuple();
  ASSERT_TRUE(b.AddAlternative(x0, 0, 1.0, 0.5).ok());   // lowest real score
  ASSERT_TRUE(b.AddAlternative(x1, 1, 99.0, 0.5).ok());
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->num_tuples(), 4u);
  EXPECT_FALSE(db->tuple(0).is_null);
  EXPECT_FALSE(db->tuple(1).is_null);
  EXPECT_TRUE(db->tuple(2).is_null);
  EXPECT_TRUE(db->tuple(3).is_null);
  EXPECT_EQ(db->tuple(2).xtuple, x0);
  EXPECT_EQ(db->tuple(3).xtuple, x1);
}

TEST(Database, XTupleMembersAreRankSorted) {
  ProbabilisticDatabase db = MakeUdb1();
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    const auto& members = db.xtuple_members(static_cast<XTupleId>(l));
    ASSERT_FALSE(members.empty());
    for (size_t j = 0; j + 1 < members.size(); ++j) {
      EXPECT_LT(members[j], members[j + 1]);
    }
    for (int32_t idx : members) {
      EXPECT_EQ(db.tuple(idx).xtuple, static_cast<XTupleId>(l));
    }
  }
}

TEST(Database, RankIndexOfTupleId) {
  ProbabilisticDatabase db = MakeUdb1();
  Result<size_t> idx = db.RankIndexOfTupleId(6);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(db.tuple(*idx).id, 6);
  EXPECT_EQ(db.RankIndexOfTupleId(999).status().code(), StatusCode::kNotFound);
}

TEST(Database, DebugStringMentionsShape) {
  ProbabilisticDatabase db = MakeUdb1();
  const std::string s = db.DebugString();
  EXPECT_NE(s.find("4 x-tuples"), std::string::npos);
  EXPECT_NE(s.find("7 real tuples"), std::string::npos);
}

TEST(Database, DebugStringTruncates) {
  ProbabilisticDatabase db = MakeUdb1();
  const std::string s = db.DebugString(2);
  EXPECT_NE(s.find("more)"), std::string::npos);
}

TEST(DatabaseBuilder, FromDatabaseRoundTrips) {
  ProbabilisticDatabase original = MakeUdb1();
  DatabaseBuilder b = DatabaseBuilder::FromDatabase(original);
  Result<ProbabilisticDatabase> copy = std::move(b).Finish();
  ASSERT_TRUE(copy.ok());
  ASSERT_EQ(copy->num_tuples(), original.num_tuples());
  for (size_t i = 0; i < original.num_tuples(); ++i) {
    EXPECT_EQ(copy->tuple(i).id, original.tuple(i).id);
    EXPECT_DOUBLE_EQ(copy->tuple(i).prob, original.tuple(i).prob);
    EXPECT_DOUBLE_EQ(copy->tuple(i).score, original.tuple(i).score);
  }
}

TEST(DatabaseBuilder, ReplaceWithCertainCollapsesXTuple) {
  ProbabilisticDatabase db = MakeUdb1();
  DatabaseBuilder b = DatabaseBuilder::FromDatabase(db);
  const Tuple& t5 = db.tuple(*db.RankIndexOfTupleId(5));
  ASSERT_TRUE(b.ReplaceWithCertain(2, &t5).ok());
  Result<ProbabilisticDatabase> cleaned = std::move(b).Finish();
  ASSERT_TRUE(cleaned.ok());
  const auto& members = cleaned->xtuple_members(2);
  ASSERT_EQ(members.size(), 1u);
  EXPECT_EQ(cleaned->tuple(members[0]).id, 5);
  EXPECT_DOUBLE_EQ(cleaned->tuple(members[0]).prob, 1.0);
}

TEST(DatabaseBuilder, ReplaceWithCertainNullOutcome) {
  ProbabilisticDatabase db = MakeUdb1();
  DatabaseBuilder b = DatabaseBuilder::FromDatabase(db);
  ASSERT_TRUE(b.ReplaceWithCertain(2, nullptr).ok());
  Result<ProbabilisticDatabase> cleaned = std::move(b).Finish();
  ASSERT_TRUE(cleaned.ok());
  const auto& members = cleaned->xtuple_members(2);
  ASSERT_EQ(members.size(), 1u);
  EXPECT_TRUE(cleaned->tuple(members[0]).is_null);
  EXPECT_DOUBLE_EQ(cleaned->tuple(members[0]).prob, 1.0);
}

TEST(DatabaseBuilder, ReplaceWithCertainRejectsBadXTuple) {
  DatabaseBuilder b;
  EXPECT_EQ(b.ReplaceWithCertain(0, nullptr).code(), StatusCode::kOutOfRange);
}

TEST(Database, NumPossibleWorldsCountsNullAlternatives) {
  DatabaseBuilder b;
  XTupleId x0 = b.AddXTuple();
  XTupleId x1 = b.AddXTuple();
  ASSERT_TRUE(b.AddAlternative(x0, 0, 1.0, 0.5).ok());  // + null = 2 choices
  ASSERT_TRUE(b.AddAlternative(x1, 1, 2.0, 0.5).ok());
  ASSERT_TRUE(b.AddAlternative(x1, 2, 3.0, 0.5).ok());  // mass 1: 2 choices
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());
  EXPECT_DOUBLE_EQ(db->NumPossibleWorlds(), 4.0);
}

}  // namespace
}  // namespace uclean
