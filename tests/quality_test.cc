// Cross-validation of the three quality algorithms (PW, PWR, TP) and unit
// tests of their guards. The randomized agreement sweep mirrors the paper's
// own verification: "the absolute difference between the quality scores
// calculated by different methods is always smaller than 1e-8".

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "model/paper_example.h"
#include "pworld/pw_quality.h"
#include "quality/evaluation.h"
#include "quality/pwr.h"
#include "quality/tp.h"
#include "tests/test_util.h"

namespace uclean {
namespace {

class QualityAgreementSweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool, int>> {};

TEST_P(QualityAgreementSweep, PwPwrTpAgree) {
  const auto [num_xtuples, max_alts, subunit, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  RandomDbOptions opts;
  opts.num_xtuples = static_cast<size_t>(num_xtuples);
  opts.max_alternatives = static_cast<size_t>(max_alts);
  opts.allow_subunit_mass = subunit;
  for (int trial = 0; trial < 5; ++trial) {
    ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
    for (size_t k : {1u, 2u, 3u, 5u}) {
      Result<PwOutput> pw = ComputePwQuality(db, k);
      Result<PwrOutput> pwr = ComputePwrQuality(db, k);
      Result<TpOutput> tp = ComputeTpQuality(db, k);
      ASSERT_TRUE(pw.ok() && pwr.ok() && tp.ok());
      EXPECT_NEAR(pw->quality, pwr->quality, 1e-8)
          << "trial " << trial << " k " << k;
      EXPECT_NEAR(pw->quality, tp->quality, 1e-8)
          << "trial " << trial << " k " << k;
      EXPECT_EQ(pw->results.size(), pwr->num_results);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QualityAgreementSweep,
    ::testing::Combine(::testing::Values(3, 5, 7),   // x-tuples
                       ::testing::Values(2, 4),      // max alternatives
                       ::testing::Bool(),            // sub-unit mass
                       ::testing::Values(17, 91)),   // seeds
    [](const auto& suite_info) {
      return "m" + std::to_string(std::get<0>(suite_info.param)) + "a" +
             std::to_string(std::get<1>(suite_info.param)) +
             (std::get<2>(suite_info.param) ? "sub" : "full") + "s" +
             std::to_string(std::get<3>(suite_info.param));
    });

TEST(Pwr, EntropyOnlyModeMatchesCollectingMode) {
  Rng rng(64);
  RandomDbOptions opts;
  opts.num_xtuples = 6;
  for (int trial = 0; trial < 10; ++trial) {
    ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
    PwrOptions collecting, streaming;
    collecting.collect_results = true;
    streaming.collect_results = false;
    Result<PwrOutput> a = ComputePwrQuality(db, 3, collecting);
    Result<PwrOutput> c = ComputePwrQuality(db, 3, streaming);
    ASSERT_TRUE(a.ok() && c.ok());
    EXPECT_NEAR(a->quality, c->quality, 1e-10);
    EXPECT_EQ(a->num_results, c->num_results);
    EXPECT_TRUE(c->results.empty());
  }
}

TEST(Pwr, MaxResultsGuard) {
  ProbabilisticDatabase db = MakeUdb1();
  PwrOptions options;
  options.max_results = 3;  // udb1 has 7 pw-results at k=2
  Result<PwrOutput> out = ComputePwrQuality(db, 2, options);
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST(Pwr, RejectsZeroK) {
  EXPECT_FALSE(ComputePwrQuality(MakeUdb1(), 0).ok());
}

TEST(Pwr, HandlesShortResultsWhenKExceedsEntities) {
  ProbabilisticDatabase db = MakeUdb1();
  Result<PwOutput> pw = ComputePwQuality(db, 10);
  Result<PwrOutput> pwr = ComputePwrQuality(db, 10);
  ASSERT_TRUE(pw.ok() && pwr.ok());
  EXPECT_NEAR(pw->quality, pwr->quality, 1e-10);
  EXPECT_EQ(pw->results.size(), pwr->results.size());
}

TEST(Tp, RejectsMismatchedPsr) {
  ProbabilisticDatabase db1 = MakeUdb1();
  ProbabilisticDatabase db2 = MakeUdb2();
  Result<PsrOutput> psr = ScanPsr(db1, 2);
  ASSERT_TRUE(psr.ok());
  EXPECT_FALSE(ComputeTpQuality(db2, *psr).ok());
}

TEST(Tp, GainsSumToQuality) {
  Rng rng(12);
  RandomDbOptions opts;
  opts.num_xtuples = 8;
  for (int trial = 0; trial < 10; ++trial) {
    ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
    Result<TpOutput> tp = ComputeTpQuality(db, 3);
    ASSERT_TRUE(tp.ok());
    double sum = 0.0;
    for (double g : tp->xtuple_gain) sum += g;
    EXPECT_NEAR(sum, tp->quality, 1e-9);
  }
}

TEST(Tp, CertainTupleHasZeroWeight) {
  // omega of a certain tuple (e = 1) is 0, so a fully certain x-tuple
  // contributes no ambiguity regardless of its top-k probability.
  ProbabilisticDatabase db = MakeUdb2();  // S3 and S4 are certain
  Result<PsrOutput> psr = ScanPsr(db, 2);
  ASSERT_TRUE(psr.ok());
  Result<TpOutput> tp = ComputeTpQuality(db, *psr);
  ASSERT_TRUE(tp.ok());
  const size_t r_t5 = *db.RankIndexOfTupleId(5);
  const size_t r_t6 = *db.RankIndexOfTupleId(6);
  EXPECT_NEAR(tp->omega[r_t5], 0.0, 1e-12);
  EXPECT_NEAR(tp->omega[r_t6], 0.0, 1e-12);
  EXPECT_NEAR(tp->xtuple_gain[2], 0.0, 1e-12);
  EXPECT_NEAR(tp->xtuple_gain[3], 0.0, 1e-12);
}

TEST(Tp, TopkMassMatchesPsr) {
  ProbabilisticDatabase db = MakeUdb1();
  Result<PsrOutput> psr = ScanPsr(db, 2);
  ASSERT_TRUE(psr.ok());
  Result<TpOutput> tp = ComputeTpQuality(db, *psr);
  ASSERT_TRUE(tp.ok());
  std::vector<double> expected(db.num_xtuples(), 0.0);
  for (size_t i = 0; i < db.num_tuples(); ++i) {
    expected[db.tuple(i).xtuple] += psr->topk_prob[i];
  }
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    EXPECT_NEAR(tp->xtuple_topk_mass[l], expected[l], 1e-12);
  }
}

TEST(Quality, MoreUncertaintyLowersQuality) {
  // Adding alternatives to an entity can only blur the top-k distribution.
  DatabaseBuilder sharp;
  XTupleId x = sharp.AddXTuple();
  ASSERT_TRUE(sharp.AddAlternative(x, 0, 10.0, 1.0).ok());
  XTupleId y = sharp.AddXTuple();
  ASSERT_TRUE(sharp.AddAlternative(y, 1, 5.0, 1.0).ok());
  Result<ProbabilisticDatabase> certain = std::move(sharp).Finish();
  ASSERT_TRUE(certain.ok());

  DatabaseBuilder blurred;
  x = blurred.AddXTuple();
  ASSERT_TRUE(blurred.AddAlternative(x, 0, 10.0, 0.5).ok());
  ASSERT_TRUE(blurred.AddAlternative(x, 2, 4.0, 0.5).ok());
  y = blurred.AddXTuple();
  ASSERT_TRUE(blurred.AddAlternative(y, 1, 5.0, 1.0).ok());
  Result<ProbabilisticDatabase> uncertain = std::move(blurred).Finish();
  ASSERT_TRUE(uncertain.ok());

  Result<TpOutput> q_certain = ComputeTpQuality(*certain, 1);
  Result<TpOutput> q_uncertain = ComputeTpQuality(*uncertain, 1);
  ASSERT_TRUE(q_certain.ok() && q_uncertain.ok());
  EXPECT_NEAR(q_certain->quality, 0.0, 1e-12);
  EXPECT_LT(q_uncertain->quality, q_certain->quality);
}

TEST(Quality, BoundedBelowByLogResultCount) {
  // S >= -log2 |R(D,Q)| (uniform distribution minimizes the score).
  Rng rng(7777);
  RandomDbOptions opts;
  opts.num_xtuples = 5;
  for (int trial = 0; trial < 10; ++trial) {
    ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
    Result<PwOutput> pw = ComputePwQuality(db, 2);
    ASSERT_TRUE(pw.ok());
    EXPECT_GE(pw->quality,
              -std::log2(static_cast<double>(pw->results.size())) - 1e-9);
    EXPECT_LE(pw->quality, 1e-12);
  }
}

TEST(Evaluation, SharedPipelineProducesEverything) {
  ProbabilisticDatabase db = MakeUdb1();
  EvaluationOptions options;
  options.k = 2;
  options.ptk_threshold = 0.4;
  Result<EvaluationReport> report = EvaluateTopk(db, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ukranks.per_rank.size(), 2u);
  EXPECT_EQ(report->ptk.tuples.size(), 3u);
  EXPECT_EQ(report->global_topk.tuples.size(), 2u);
  EXPECT_NEAR(report->quality.quality, -2.55, 0.005);
  EXPECT_GE(report->psr_seconds, 0.0);
}

TEST(Evaluation, SelectiveArtifacts) {
  ProbabilisticDatabase db = MakeUdb1();
  EvaluationOptions options;
  options.k = 2;
  options.ukranks = false;
  options.global_topk = false;
  options.quality = false;
  Result<EvaluationReport> report = EvaluateTopk(db, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ukranks.per_rank.empty());
  EXPECT_TRUE(report->global_topk.tuples.empty());
  EXPECT_EQ(report->quality.quality, 0.0);
  EXPECT_FALSE(report->ptk.tuples.empty());
}

}  // namespace
}  // namespace uclean
