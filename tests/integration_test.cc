// Cross-module integration tests: the full pipeline from workload
// generation through query evaluation, quality computation, cleaning
// planning, and agent execution -- the paper's Figure 1 flow end to end.

#include <gtest/gtest.h>

#include <sstream>

#include "clean/adaptive.h"
#include "clean/agent.h"
#include "clean/planners.h"
#include "common/rng.h"
#include "model/csv_io.h"
#include "quality/evaluation.h"
#include "quality/pwr.h"
#include "quality/tp.h"
#include "workload/cleaning_profile_gen.h"
#include "workload/mov.h"
#include "workload/synthetic.h"

namespace uclean {
namespace {

SyntheticOptions SmallSynthetic() {
  SyntheticOptions opts;
  opts.num_xtuples = 300;
  opts.tuples_per_xtuple = 10;
  return opts;
}

TEST(Integration, SyntheticQualityDecreasesWithK) {
  // Figure 4(a)'s monotonic trend on a scaled-down default dataset.
  Result<ProbabilisticDatabase> db = GenerateSynthetic(SmallSynthetic());
  ASSERT_TRUE(db.ok());
  double previous = 1.0;
  for (size_t k : {1u, 5u, 10u, 20u}) {
    Result<TpOutput> tp = ComputeTpQuality(*db, k);
    ASSERT_TRUE(tp.ok());
    EXPECT_LT(tp->quality, previous);
    previous = tp->quality;
  }
}

TEST(Integration, GaussianVarianceOrdersQuality) {
  // Figure 4(b): smaller sigma -> higher quality; uniform is the worst.
  SyntheticOptions opts = SmallSynthetic();
  std::vector<double> qualities;
  for (double sigma : {10.0, 100.0}) {
    opts.pdf = UncertaintyPdf::kGaussian;
    opts.sigma = sigma;
    Result<ProbabilisticDatabase> db = GenerateSynthetic(opts);
    ASSERT_TRUE(db.ok());
    Result<TpOutput> tp = ComputeTpQuality(*db, 15);
    ASSERT_TRUE(tp.ok());
    qualities.push_back(tp->quality);
  }
  opts.pdf = UncertaintyPdf::kUniform;
  Result<ProbabilisticDatabase> uniform_db = GenerateSynthetic(opts);
  ASSERT_TRUE(uniform_db.ok());
  Result<TpOutput> uniform_tp = ComputeTpQuality(*uniform_db, 15);
  ASSERT_TRUE(uniform_tp.ok());

  EXPECT_GT(qualities[0], qualities[1]);          // G10 > G100
  EXPECT_GE(qualities[1], uniform_tp->quality);   // G100 >= Uniform
}

TEST(Integration, MovIsLessAmbiguousThanSynthetic) {
  // Figure 4(c): MOV (2 alternatives/x-tuple) scores higher than the
  // synthetic data (10 alternatives/x-tuple) at equal x-tuple counts.
  SyntheticOptions sopts = SmallSynthetic();
  MovOptions mopts;
  mopts.num_xtuples = sopts.num_xtuples;
  Result<ProbabilisticDatabase> syn = GenerateSynthetic(sopts);
  Result<ProbabilisticDatabase> mov = GenerateMov(mopts);
  ASSERT_TRUE(syn.ok() && mov.ok());
  Result<TpOutput> q_syn = ComputeTpQuality(*syn, 15);
  Result<TpOutput> q_mov = ComputeTpQuality(*mov, 15);
  ASSERT_TRUE(q_syn.ok() && q_mov.ok());
  EXPECT_GT(q_mov->quality, q_syn->quality);
}

TEST(Integration, PwrAgreesWithTpOnGeneratedData) {
  // The cross-validation the paper reports (difference < 1e-8), on real
  // generator output rather than hand-built examples.
  SyntheticOptions opts = SmallSynthetic();
  opts.num_xtuples = 40;
  Result<ProbabilisticDatabase> db = GenerateSynthetic(opts);
  ASSERT_TRUE(db.ok());
  for (size_t k : {1u, 2u, 3u}) {
    Result<PwrOutput> pwr = ComputePwrQuality(*db, k);
    Result<TpOutput> tp = ComputeTpQuality(*db, k);
    ASSERT_TRUE(pwr.ok() && tp.ok());
    EXPECT_NEAR(pwr->quality, tp->quality, 1e-8) << "k=" << k;
  }
}

TEST(Integration, MovPwrAgreesWithTp) {
  MovOptions opts;
  opts.num_xtuples = 60;
  Result<ProbabilisticDatabase> db = GenerateMov(opts);
  ASSERT_TRUE(db.ok());
  for (size_t k : {1u, 2u, 3u}) {
    Result<PwrOutput> pwr = ComputePwrQuality(*db, k);
    Result<TpOutput> tp = ComputeTpQuality(*db, k);
    ASSERT_TRUE(pwr.ok() && tp.ok());
    EXPECT_NEAR(pwr->quality, tp->quality, 1e-8) << "k=" << k;
  }
}

TEST(Integration, CsvRoundTripPreservesQualityAndAnswers) {
  Result<ProbabilisticDatabase> db = GenerateMov(MovOptions{.num_xtuples = 80});
  ASSERT_TRUE(db.ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteDatabaseCsv(*db, &out).ok());
  std::istringstream in(out.str());
  Result<ProbabilisticDatabase> loaded = ReadDatabaseCsv(&in);
  ASSERT_TRUE(loaded.ok());

  EvaluationOptions eval;
  eval.k = 5;
  Result<EvaluationReport> a = EvaluateTopk(*db, eval);
  Result<EvaluationReport> b = EvaluateTopk(*loaded, eval);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(a->quality.quality, b->quality.quality, 1e-10);
  ASSERT_EQ(a->ptk.tuples.size(), b->ptk.tuples.size());
  for (size_t i = 0; i < a->ptk.tuples.size(); ++i) {
    EXPECT_EQ(a->ptk.tuples[i].tuple_id, b->ptk.tuples[i].tuple_id);
  }
}

TEST(Integration, FullCleaningSessionImprovesExpectedQuality) {
  // Generate -> evaluate -> plan with every planner -> execute the DP plan
  // -> verify the realized database is better on average than before.
  Result<ProbabilisticDatabase> db = GenerateSynthetic(SmallSynthetic());
  ASSERT_TRUE(db.ok());
  const size_t k = 10;
  Result<CleaningProfile> profile =
      GenerateCleaningProfile(db->num_xtuples());
  ASSERT_TRUE(profile.ok());
  Result<CleaningProblem> problem =
      MakeCleaningProblem(*db, k, *profile, /*budget=*/100);
  ASSERT_TRUE(problem.ok());

  Rng rng(31);
  Result<CleaningPlan> dp = PlanDp(*problem);
  Result<CleaningPlan> greedy = PlanGreedy(*problem);
  Result<CleaningPlan> randp = PlanRandP(*problem, &rng);
  Result<CleaningPlan> randu = PlanRandU(*problem, &rng);
  ASSERT_TRUE(dp.ok() && greedy.ok() && randp.ok() && randu.ok());

  // Paper ordering on expected improvement.
  EXPECT_GE(dp->expected_improvement, greedy->expected_improvement - 1e-9);
  EXPECT_GE(greedy->expected_improvement, randp->expected_improvement - 1e-9);

  Result<TpOutput> before = ComputeTpQuality(*db, k);
  ASSERT_TRUE(before.ok());
  double realized = 0.0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    Rng exec_rng(100 + t);
    Result<ExecutionReport> report =
        ExecutePlan(*db, *profile, dp->probes, &exec_rng);
    ASSERT_TRUE(report.ok());
    Result<TpOutput> after = ComputeTpQuality(report->cleaned_db, k);
    ASSERT_TRUE(after.ok());
    realized += after->quality - before->quality;
  }
  EXPECT_GT(realized / trials, 0.0);
}

TEST(Integration, QualityComputationSharesPsrWork) {
  // Section IV-C: with sharing, quality adds only a small pass on top of
  // query evaluation -- structurally verified by the report's breakdown.
  Result<ProbabilisticDatabase> db = GenerateSynthetic(SmallSynthetic());
  ASSERT_TRUE(db.ok());
  EvaluationOptions opts;
  opts.k = 50;
  Result<EvaluationReport> report = EvaluateTopk(*db, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->psr_seconds, 0.0);
  // The quality pass must not dwarf the PSR pass (it is O(n) vs O(kn)).
  EXPECT_LT(report->quality_seconds, report->psr_seconds + 0.05);
}

TEST(Integration, AdaptiveSessionOnMovData) {
  MovOptions mopts;
  mopts.num_xtuples = 150;
  Result<ProbabilisticDatabase> db = GenerateMov(mopts);
  ASSERT_TRUE(db.ok());
  Result<CleaningProfile> profile =
      GenerateCleaningProfile(db->num_xtuples());
  ASSERT_TRUE(profile.ok());
  AdaptiveOptions options;
  options.k = 10;
  Rng rng(64);
  Result<AdaptiveReport> report =
      RunAdaptiveCleaning(*db, *profile, 60, options, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->total_spent, 60);
  EXPECT_GE(report->final_quality, report->initial_quality - 1e-9);
}

}  // namespace
}  // namespace uclean
