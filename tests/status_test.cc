// Unit tests for the Status / Result<T> error-handling kernel.

#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace uclean {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryFunctionsCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::OutOfRange("c"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::FailedPrecondition("d"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::ResourceExhausted("e"), StatusCode::kResourceExhausted,
       "ResourceExhausted"},
      {Status::Internal("f"), StatusCode::kInternal, "Internal"},
      {Status::IOError("g"), StatusCode::kIOError, "IOError"},
      {Status::Unavailable("h"), StatusCode::kUnavailable, "Unavailable"},
      {Status::DeadlineExceeded("i"), StatusCode::kDeadlineExceeded,
       "DeadlineExceeded"},
      {Status::DataLoss("j"), StatusCode::kDataLoss, "DataLoss"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeName(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
    EXPECT_NE(c.status.ToString().find(c.status.message()),
              std::string::npos);
  }
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(Status, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    UCLEAN_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);

  auto succeeds = []() -> Status { return Status::OK(); };
  auto wrapper2 = [&]() -> Status {
    UCLEAN_RETURN_IF_ERROR(succeeds());
    return Status::InvalidArgument("reached");
  };
  EXPECT_EQ(wrapper2().code(), StatusCode::kInvalidArgument);
}

TEST(Result, HoldsValue) {
  Result<int> r(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 41);
  EXPECT_EQ(*r, 41);
  EXPECT_EQ(r.value_or(7), 41);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MovesValueOut) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(r.ok());
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(Result, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

TEST(Result, MutableAccess) {
  Result<std::string> r(std::string("a"));
  r.value() += "b";
  EXPECT_EQ(*r, "ab");
}

}  // namespace
}  // namespace uclean
