// Unit and property tests for the four cleaning planners: DP optimality
// against exhaustive search, agreement of the two exact DP engines, greedy
// near-optimality, budget feasibility everywhere, and the behaviour of the
// randomized heuristics.

#include "clean/planners.h"

#include <gtest/gtest.h>

#include <tuple>

#include "clean/brute_force.h"
#include "common/rng.h"

namespace uclean {
namespace {

/// A random small problem whose exhaustive optimum is computable.
CleaningProblem RandomProblem(Rng* rng, size_t m, int64_t budget,
                              int64_t max_cost = 3) {
  CleaningProblem problem;
  problem.budget = budget;
  for (size_t l = 0; l < m; ++l) {
    problem.gain.push_back(rng->Bernoulli(0.2) ? 0.0
                                               : -rng->Uniform(0.05, 5.0));
    problem.topk_mass.push_back(-problem.gain.back());
    problem.cost.push_back(rng->UniformInt(1, max_cost));
    problem.sc_prob.push_back(rng->Uniform(0.05, 1.0));
  }
  return problem;
}

class DpOptimalitySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DpOptimalitySweep, DpMatchesExhaustiveOptimum) {
  const auto [m, budget] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 1000 + budget));
  for (int trial = 0; trial < 8; ++trial) {
    CleaningProblem problem = RandomProblem(&rng, m, budget);
    Result<CleaningPlan> exhaustive = PlanExhaustive(problem);
    ASSERT_TRUE(exhaustive.ok()) << exhaustive.status();
    for (DpMode mode : {DpMode::kItems, DpMode::kConcave}) {
      DpOptions options;
      options.mode = mode;
      Result<CleaningPlan> dp = PlanDp(problem, options);
      ASSERT_TRUE(dp.ok());
      EXPECT_NEAR(dp->expected_improvement, exhaustive->expected_improvement,
                  1e-9)
          << "mode " << static_cast<int>(mode) << " trial " << trial;
      EXPECT_LE(dp->total_cost, problem.budget);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallInstances, DpOptimalitySweep,
                         ::testing::Combine(::testing::Values(2, 3, 4),
                                            ::testing::Values(3, 5, 8)),
                         [](const auto& suite_info) {
                           const auto& p = suite_info.param;
                           return "m" + std::to_string(std::get<0>(p)) +
                                  "C" + std::to_string(std::get<1>(p));
                         });

TEST(PlanDp, EnginesAgreeOnLargerInstances) {
  Rng rng(2468);
  for (int trial = 0; trial < 10; ++trial) {
    CleaningProblem problem = RandomProblem(&rng, 40, 200, /*max_cost=*/10);
    DpOptions items, concave;
    items.mode = DpMode::kItems;
    concave.mode = DpMode::kConcave;
    Result<CleaningPlan> a = PlanDp(problem, items);
    Result<CleaningPlan> b = PlanDp(problem, concave);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_NEAR(a->expected_improvement, b->expected_improvement, 1e-8)
        << "trial " << trial;
    EXPECT_LE(a->total_cost, problem.budget);
    EXPECT_LE(b->total_cost, problem.budget);
  }
}

TEST(PlanDp, ReportedImprovementMatchesReportedProbes) {
  Rng rng(1357);
  CleaningProblem problem = RandomProblem(&rng, 20, 100, 5);
  Result<CleaningPlan> plan = PlanDp(problem);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->expected_improvement,
              ExpectedImprovement(problem, plan->probes), 1e-12);
  EXPECT_EQ(plan->total_cost, PlanCost(problem, plan->probes));
}

TEST(PlanDp, ValueEpsilonTruncationStaysNearExact) {
  Rng rng(8080);
  for (int trial = 0; trial < 5; ++trial) {
    CleaningProblem problem = RandomProblem(&rng, 30, 500, 10);
    Result<CleaningPlan> exact = PlanDp(problem);
    DpOptions truncated;
    truncated.value_epsilon = 1e-9;
    Result<CleaningPlan> approx = PlanDp(problem, truncated);
    ASSERT_TRUE(exact.ok() && approx.ok());
    EXPECT_LE(approx->expected_improvement,
              exact->expected_improvement + 1e-12);
    EXPECT_NEAR(approx->expected_improvement, exact->expected_improvement,
                1e-5);
  }
}

TEST(PlanDp, ZeroBudgetMeansEmptyPlan) {
  Rng rng(1);
  CleaningProblem problem = RandomProblem(&rng, 5, 0);
  Result<CleaningPlan> plan = PlanDp(problem);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->total_cost, 0);
  EXPECT_EQ(plan->expected_improvement, 0.0);
  EXPECT_EQ(plan->num_selected(), 0u);
}

TEST(PlanDp, RefusesAbsurdBudgets) {
  Rng rng(2);
  CleaningProblem problem = RandomProblem(&rng, 2, 5);
  problem.budget = 100'000'000;
  EXPECT_EQ(PlanDp(problem).status().code(), StatusCode::kResourceExhausted);
}

TEST(PlanDp, CertainCleaningProbesEachXTupleAtMostOnce) {
  // With P_l = 1 a second probe of the same x-tuple is worthless.
  CleaningProblem problem;
  problem.gain = {-5.0, -3.0};
  problem.topk_mass = {1.0, 1.0};
  problem.cost = {1, 1};
  problem.sc_prob = {1.0, 1.0};
  problem.budget = 10;
  Result<CleaningPlan> plan = PlanDp(problem);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->probes[0], 1);
  EXPECT_EQ(plan->probes[1], 1);
  EXPECT_NEAR(plan->expected_improvement, 8.0, 1e-12);
}

TEST(PlanGreedy, CloseToOptimalOnRandomInstances) {
  Rng rng(97531);
  for (int trial = 0; trial < 20; ++trial) {
    CleaningProblem problem = RandomProblem(&rng, 15, 60, 5);
    Result<CleaningPlan> dp = PlanDp(problem);
    Result<CleaningPlan> greedy = PlanGreedy(problem);
    ASSERT_TRUE(dp.ok() && greedy.ok());
    EXPECT_LE(greedy->expected_improvement,
              dp->expected_improvement + 1e-9);
    // The knapsack greedy is not exact, but it must capture the lion's
    // share (paper: "close to optimal").
    EXPECT_GE(greedy->expected_improvement,
              0.8 * dp->expected_improvement - 1e-9)
        << "trial " << trial;
    EXPECT_LE(greedy->total_cost, problem.budget);
  }
}

TEST(PlanGreedy, TakesHighestRatioFirst) {
  // Two x-tuples, same gain; the cheaper one must be probed first when the
  // budget only fits one probe.
  CleaningProblem problem;
  problem.gain = {-2.0, -2.0};
  problem.topk_mass = {1.0, 1.0};
  problem.cost = {5, 1};
  problem.sc_prob = {0.5, 0.5};
  problem.budget = 1;
  Result<CleaningPlan> plan = PlanGreedy(problem);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->probes[0], 0);
  EXPECT_EQ(plan->probes[1], 1);
}

TEST(PlanGreedy, ProbeCountsAreContiguous) {
  // Greedy takes probe j of an x-tuple only after probes 1..j-1.
  Rng rng(8642);
  CleaningProblem problem = RandomProblem(&rng, 10, 40, 4);
  Result<CleaningPlan> plan = PlanGreedy(problem);
  ASSERT_TRUE(plan.ok());
  // The plan stores totals, so contiguity is implicit; check feasibility
  // and that improvement matches the closed form on those totals.
  EXPECT_LE(plan->total_cost, problem.budget);
  EXPECT_NEAR(plan->expected_improvement,
              ExpectedImprovement(problem, plan->probes), 1e-12);
}

TEST(RandomPlanners, RespectBudgetAndDeterminism) {
  Rng maker(11);
  CleaningProblem problem = RandomProblem(&maker, 12, 50, 4);
  for (auto plan_fn : {PlanRandU, PlanRandP}) {
    Rng rng1(42), rng2(42), rng3(43);
    Result<CleaningPlan> a = plan_fn(problem, &rng1);
    Result<CleaningPlan> b = plan_fn(problem, &rng2);
    Result<CleaningPlan> c = plan_fn(problem, &rng3);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_EQ(a->probes, b->probes);  // same seed, same plan
    EXPECT_LE(a->total_cost, problem.budget);
    EXPECT_LE(c->total_cost, problem.budget);
    // The budget is exhausted down to less than the cheapest cost.
    int64_t cheapest = *std::min_element(problem.cost.begin(),
                                         problem.cost.end());
    EXPECT_GT(a->total_cost, problem.budget - cheapest);
  }
}

TEST(RandomPlanners, RequireRng) {
  Rng maker(12);
  CleaningProblem problem = RandomProblem(&maker, 3, 5);
  EXPECT_FALSE(PlanRandU(problem, nullptr).ok());
  EXPECT_FALSE(PlanRandP(problem, nullptr).ok());
}

TEST(PlanRandP, NeverSelectsZeroMassXTuples) {
  CleaningProblem problem;
  problem.gain = {-1.0, 0.0, -1.0};
  problem.topk_mass = {0.8, 0.0, 0.4};
  problem.cost = {1, 1, 1};
  problem.sc_prob = {0.5, 0.5, 0.5};
  problem.budget = 50;
  Rng rng(3);
  Result<CleaningPlan> plan = PlanRandP(problem, &rng);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->probes[1], 0);
  EXPECT_EQ(plan->probes[0] + plan->probes[2], 50);
}

TEST(PlanRandP, FavoursHeavierXTuples) {
  CleaningProblem problem;
  problem.gain = {-1.0, -1.0};
  problem.topk_mass = {0.9, 0.1};
  problem.cost = {1, 1};
  problem.sc_prob = {0.5, 0.5};
  problem.budget = 2000;
  Rng rng(77);
  Result<CleaningPlan> plan = PlanRandP(problem, &rng);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(static_cast<double>(plan->probes[0]) / 2000.0, 0.9, 0.05);
}

TEST(PlanRandU, UniformOverCandidateSetZ) {
  // RandU draws uniformly over Z = {x-tuples with nonzero gain}
  // (Section V-C); within Z it ignores gain magnitude and top-k mass.
  CleaningProblem problem;
  problem.gain = {0.0, -5.0, 0.0, -0.01};
  problem.topk_mass = {0.0, 1.0, 0.0, 0.01};
  problem.cost = {1, 1, 1, 1};
  problem.sc_prob = {0.5, 0.5, 0.5, 0.5};
  problem.budget = 4000;
  Rng rng(5);
  Result<CleaningPlan> plan = PlanRandU(problem, &rng);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->probes[0], 0);  // outside Z: never drawn
  EXPECT_EQ(plan->probes[2], 0);
  // Members of Z split the probes evenly regardless of gain size.
  EXPECT_NEAR(static_cast<double>(plan->probes[1]) / 4000.0, 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(plan->probes[3]) / 4000.0, 0.5, 0.05);
}

TEST(Planners, OrderingDpGreedyRandOnTypicalInstance) {
  // The paper's headline ordering: DP >= Greedy >= RandP >= RandU
  // (in expectation; we use a seed-averaged comparison).
  Rng maker(314159);
  CleaningProblem problem = RandomProblem(&maker, 30, 80, 5);
  Result<CleaningPlan> dp = PlanDp(problem);
  Result<CleaningPlan> greedy = PlanGreedy(problem);
  ASSERT_TRUE(dp.ok() && greedy.ok());

  double randp_sum = 0.0, randu_sum = 0.0;
  const int seeds = 20;
  for (int s = 0; s < seeds; ++s) {
    Rng r1(1000 + s), r2(2000 + s);
    randp_sum += PlanRandP(problem, &r1)->expected_improvement;
    randu_sum += PlanRandU(problem, &r2)->expected_improvement;
  }
  const double randp = randp_sum / seeds;
  const double randu = randu_sum / seeds;

  EXPECT_GE(dp->expected_improvement, greedy->expected_improvement - 1e-9);
  EXPECT_GE(greedy->expected_improvement, randp);
  EXPECT_GE(randp, randu);
}

TEST(RunPlanner, DispatchesAllKinds) {
  Rng maker(999);
  CleaningProblem problem = RandomProblem(&maker, 8, 20, 3);
  Rng rng(1);
  for (PlannerKind kind : {PlannerKind::kDp, PlannerKind::kGreedy,
                           PlannerKind::kRandP, PlannerKind::kRandU}) {
    Result<CleaningPlan> plan = RunPlanner(kind, problem, &rng);
    ASSERT_TRUE(plan.ok()) << PlannerKindName(kind);
    EXPECT_LE(plan->total_cost, problem.budget);
  }
  EXPECT_STREQ(PlannerKindName(PlannerKind::kDp), "DP");
  EXPECT_STREQ(PlannerKindName(PlannerKind::kGreedy), "Greedy");
  EXPECT_STREQ(PlannerKindName(PlannerKind::kRandP), "RandP");
  EXPECT_STREQ(PlannerKindName(PlannerKind::kRandU), "RandU");
}

TEST(Planners, Lemma5ZeroGainXTuplesNeverPlanned) {
  CleaningProblem problem;
  problem.gain = {0.0, -2.0, 0.0};
  problem.topk_mass = {0.0, 1.0, 0.0};
  problem.cost = {1, 3, 1};
  problem.sc_prob = {0.9, 0.9, 0.9};
  problem.budget = 9;
  Result<CleaningPlan> dp = PlanDp(problem);
  Result<CleaningPlan> greedy = PlanGreedy(problem);
  ASSERT_TRUE(dp.ok() && greedy.ok());
  EXPECT_EQ(dp->probes[0], 0);
  EXPECT_EQ(dp->probes[2], 0);
  EXPECT_GT(dp->probes[1], 0);
  EXPECT_EQ(greedy->probes[0], 0);
  EXPECT_EQ(greedy->probes[2], 0);
}

TEST(Planners, ImprovementNeverExceedsTotalAmbiguity) {
  // I <= |S| = -sum(gain): cleaning cannot make quality positive.
  Rng maker(13579);
  for (int trial = 0; trial < 10; ++trial) {
    CleaningProblem problem = RandomProblem(&maker, 10, 500, 2);
    double total = 0.0;
    for (double g : problem.gain) total -= g;
    Result<CleaningPlan> dp = PlanDp(problem);
    ASSERT_TRUE(dp.ok());
    EXPECT_LE(dp->expected_improvement, total + 1e-9);
  }
}

}  // namespace
}  // namespace uclean
