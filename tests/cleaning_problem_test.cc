// Unit tests for the cleaning problem: the Theorem-2 closed form against
// the brute-force definition, marginal-value structure (Lemma 4), and
// problem construction from a database.

#include "clean/problem.h"

#include <gtest/gtest.h>

#include <cmath>

#include "clean/brute_force.h"
#include "common/rng.h"
#include "model/paper_example.h"
#include "quality/tp.h"
#include "tests/test_util.h"
#include "workload/cleaning_profile_gen.h"

namespace uclean {
namespace {

CleaningProfile UniformProfile(size_t m, int64_t cost, double sc) {
  CleaningProfile profile;
  profile.costs.assign(m, cost);
  profile.sc_probs.assign(m, sc);
  return profile;
}

TEST(CleaningProfile, Validation) {
  CleaningProfile p = UniformProfile(3, 2, 0.5);
  EXPECT_TRUE(p.Validate(3).ok());
  EXPECT_FALSE(p.Validate(4).ok());
  p.costs[1] = 0;
  EXPECT_FALSE(p.Validate(3).ok());
  p.costs[1] = 2;
  p.sc_probs[2] = 1.5;
  EXPECT_FALSE(p.Validate(3).ok());
  p.sc_probs[2] = -0.1;
  EXPECT_FALSE(p.Validate(3).ok());
}

TEST(CleaningProblem, ValidationCatchesBadVectors) {
  CleaningProblem problem;
  problem.gain = {-1.0, -2.0};
  problem.topk_mass = {0.5, 0.5};
  problem.cost = {1, 1};
  problem.sc_prob = {0.5, 0.5};
  problem.budget = 10;
  EXPECT_TRUE(problem.Validate().ok());

  CleaningProblem bad = problem;
  bad.budget = -1;
  EXPECT_FALSE(bad.Validate().ok());
  bad = problem;
  bad.gain[0] = 0.5;  // positive gain is impossible
  EXPECT_FALSE(bad.Validate().ok());
  bad = problem;
  bad.cost.pop_back();
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(CleaningProblem, MarginalValuesFollowEq21) {
  CleaningProblem problem;
  problem.gain = {-4.0};
  problem.topk_mass = {1.0};
  problem.cost = {1};
  problem.sc_prob = {0.25};
  problem.budget = 100;
  // b(l,j) = (1-P)^{j-1} * P * (-g)
  EXPECT_DOUBLE_EQ(problem.MarginalValue(0, 1), 0.25 * 4.0);
  EXPECT_DOUBLE_EQ(problem.MarginalValue(0, 2), 0.75 * 0.25 * 4.0);
  EXPECT_DOUBLE_EQ(problem.MarginalValue(0, 3), 0.75 * 0.75 * 0.25 * 4.0);
  EXPECT_EQ(problem.MarginalValue(0, 0), 0.0);
}

TEST(CleaningProblem, MarginalValuesMonotoneDecreasing) {
  // Lemma 4: b(l,j) decreases in j.
  Rng rng(5150);
  for (int trial = 0; trial < 20; ++trial) {
    CleaningProblem problem;
    problem.gain = {-rng.Uniform(0.1, 10.0)};
    problem.topk_mass = {1.0};
    problem.cost = {1};
    problem.sc_prob = {rng.UniformUnit()};
    problem.budget = 50;
    for (int64_t j = 1; j < 30; ++j) {
      EXPECT_GE(problem.MarginalValue(0, j),
                problem.MarginalValue(0, j + 1) - 1e-15);
    }
  }
}

TEST(CleaningProblem, ImprovementIsPrefixSumOfMarginals) {
  // Eq. 22: I = sum of the first M marginal values.
  CleaningProblem problem;
  problem.gain = {-3.0};
  problem.topk_mass = {1.0};
  problem.cost = {1};
  problem.sc_prob = {0.4};
  problem.budget = 100;
  double prefix = 0.0;
  for (int64_t j = 1; j <= 20; ++j) {
    prefix += problem.MarginalValue(0, j);
    EXPECT_NEAR(problem.XTupleImprovement(0, j), prefix, 1e-12);
  }
}

TEST(CleaningProblem, ImprovementSaturatesAtNegatedGain) {
  CleaningProblem problem;
  problem.gain = {-7.5};
  problem.topk_mass = {1.0};
  problem.cost = {1};
  problem.sc_prob = {0.9};
  problem.budget = 1000;
  EXPECT_LE(problem.XTupleImprovement(0, 500), 7.5);
  EXPECT_NEAR(problem.XTupleImprovement(0, 500), 7.5, 1e-9);
}

TEST(Theorem2, MatchesBruteForceOnUdb1) {
  ProbabilisticDatabase db = MakeUdb1();
  const size_t k = 2;
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 1, 0.6);
  Result<CleaningProblem> problem = MakeCleaningProblem(db, k, profile, 10);
  ASSERT_TRUE(problem.ok());

  // Try several probe assignments, including multi-x-tuple ones.
  const std::vector<std::vector<int64_t>> assignments = {
      {1, 0, 0, 0}, {0, 0, 1, 0}, {2, 0, 0, 0},
      {1, 1, 0, 0}, {1, 0, 2, 1}, {3, 2, 1, 0},
  };
  for (const auto& probes : assignments) {
    const double closed = ExpectedImprovement(*problem, probes);
    Result<double> brute =
        ExpectedImprovementBruteForce(db, k, profile, probes);
    ASSERT_TRUE(brute.ok()) << brute.status();
    EXPECT_NEAR(closed, *brute, 1e-8);
  }
}

TEST(Theorem2, MatchesBruteForceOnRandomDatabases) {
  Rng rng(333);
  RandomDbOptions opts;
  opts.num_xtuples = 4;
  opts.max_alternatives = 3;
  for (int trial = 0; trial < 10; ++trial) {
    ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
    CleaningProfile profile;
    for (size_t l = 0; l < db.num_xtuples(); ++l) {
      profile.costs.push_back(rng.UniformInt(1, 3));
      profile.sc_probs.push_back(rng.Uniform(0.1, 1.0));
    }
    Result<CleaningProblem> problem = MakeCleaningProblem(db, 2, profile, 10);
    ASSERT_TRUE(problem.ok());

    std::vector<int64_t> probes(db.num_xtuples(), 0);
    probes[0] = rng.UniformInt(0, 2);
    probes[db.num_xtuples() - 1] = rng.UniformInt(1, 2);
    const double closed = ExpectedImprovement(*problem, probes);
    Result<double> brute =
        ExpectedImprovementBruteForce(db, 2, profile, probes);
    ASSERT_TRUE(brute.ok()) << brute.status();
    EXPECT_NEAR(closed, *brute, 1e-8) << "trial " << trial;
  }
}

TEST(Theorem2, ZeroProbesMeansZeroImprovement) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 1, 0.5);
  Result<CleaningProblem> problem = MakeCleaningProblem(db, 2, profile, 10);
  ASSERT_TRUE(problem.ok());
  std::vector<int64_t> none(db.num_xtuples(), 0);
  EXPECT_EQ(ExpectedImprovement(*problem, none), 0.0);
  Result<double> brute = ExpectedImprovementBruteForce(db, 2, profile, none);
  ASSERT_TRUE(brute.ok());
  EXPECT_EQ(*brute, 0.0);
}

TEST(MakeCleaningProblem, GainsComeFromTp) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 2, 0.5);
  Result<CleaningProblem> problem = MakeCleaningProblem(db, 2, profile, 100);
  ASSERT_TRUE(problem.ok());
  Result<TpOutput> tp = ComputeTpQuality(db, 2);
  ASSERT_TRUE(tp.ok());
  double total_gain = 0.0;
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    EXPECT_NEAR(problem->gain[l], tp->xtuple_gain[l], 1e-12);
    total_gain += problem->gain[l];
  }
  EXPECT_NEAR(total_gain, tp->quality, 1e-9);
  EXPECT_EQ(problem->budget, 100);
}

TEST(MakeCleaningProblem, RejectsMismatchedProfile) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(2, 1, 0.5);  // wrong size
  EXPECT_FALSE(MakeCleaningProblem(db, 2, profile, 10).ok());
}

TEST(CleaningPlan, ToStringAndSelection) {
  CleaningPlan plan;
  plan.probes = {0, 3, 0, 1};
  plan.expected_improvement = 1.5;
  plan.total_cost = 7;
  EXPECT_EQ(plan.num_selected(), 2u);
  const std::string s = plan.ToString();
  EXPECT_NE(s.find("x1:3"), std::string::npos);
  EXPECT_NE(s.find("x3:1"), std::string::npos);
  EXPECT_EQ(s.find("x0"), std::string::npos);
}

TEST(BruteForce, RefusesHugeOutcomeSpaces) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 1, 0.5);
  std::vector<int64_t> probes(db.num_xtuples(), 1);
  Result<double> r =
      ExpectedImprovementBruteForce(db, 2, profile, probes, /*max=*/10);
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace uclean
