// Unit layer of the snapshot store (store/binstream.h, store/crc32.h and
// the container half of store/snapshot.h):
//
//  * the wire primitives round-trip and their EXACT bytes are pinned --
//    little-endian fixed-width integers, LEB128 varints, zigzag signed
//    values, IEEE-754 doubles -- so the format is host-endianness
//    independent by construction, not by luck;
//  * every malformed input (truncation, overlong varints, out-of-range
//    bool bytes, trailing bytes) fails with Status::DataLoss;
//  * CRC32 matches the IEEE reference vector and chains like zlib;
//  * the section-table arithmetic survives >4 GiB offsets (u64
//    round-trip on synthetic entries -- no file that size is built);
//  * SnapshotFileBuilder/SnapshotFile round-trip whole containers,
//    carry unknown sections, and reject unknown format versions plus
//    every truncation point and every single-byte corruption.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/binstream.h"
#include "store/crc32.h"
#include "store/snapshot.h"

namespace uclean {
namespace store {
namespace {

// ---------------------------------------------------------------- binstream

TEST(BinStreamTest, VarintRoundTripEdgeValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ull << 32) - 1,
                             1ull << 32,
                             (1ull << 63) - 1,
                             1ull << 63,
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) {
    BinWriter w;
    w.PutVarint(v);
    BinReader r(w.bytes());
    uint64_t got = 0;
    ASSERT_TRUE(r.GetVarint(&got).ok()) << v;
    EXPECT_EQ(got, v);
    EXPECT_TRUE(r.ExpectEnd("varint").ok());
  }
}

TEST(BinStreamTest, VarintWireLengths) {
  const struct {
    uint64_t value;
    size_t bytes;
  } cases[] = {{0, 1},           {127, 1},
               {128, 2},         {16383, 2},
               {16384, 3},       {(1ull << 63) - 1, 9},
               {1ull << 63, 10}, {std::numeric_limits<uint64_t>::max(), 10}};
  for (const auto& c : cases) {
    BinWriter w;
    w.PutVarint(c.value);
    EXPECT_EQ(w.size(), c.bytes) << c.value;
  }
}

TEST(BinStreamTest, VarintRejectsOverflowAndTruncation) {
  // 10 continuation bytes: longer than any u64 varint.
  std::string eleven(10, '\x80');
  eleven.push_back('\x01');
  uint64_t out = 0;
  EXPECT_EQ(BinReader(eleven).GetVarint(&out).code(), StatusCode::kDataLoss);

  // The 10th byte may only carry the top single bit.
  std::string overflow(9, '\x80');
  overflow.push_back('\x02');
  EXPECT_EQ(BinReader(overflow).GetVarint(&out).code(),
            StatusCode::kDataLoss);

  // Continuation bit set but the stream ends.
  EXPECT_EQ(BinReader(std::string("\x80", 1)).GetVarint(&out).code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(BinReader(std::string_view()).GetVarint(&out).code(),
            StatusCode::kDataLoss);
}

TEST(BinStreamTest, ZigzagRoundTripAndShortSmallMagnitudes) {
  const int64_t values[] = {0,
                            -1,
                            1,
                            -64,
                            63,
                            -65,
                            64,
                            std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  for (int64_t v : values) {
    BinWriter w;
    w.PutZigzag(v);
    BinReader r(w.bytes());
    int64_t got = 0;
    ASSERT_TRUE(r.GetZigzag(&got).ok()) << v;
    EXPECT_EQ(got, v);
  }
  // Small magnitudes of either sign stay one byte -- the point of zigzag.
  for (int64_t v : {-64, -1, 0, 1, 63}) {
    BinWriter w;
    w.PutZigzag(v);
    EXPECT_EQ(w.size(), 1u) << v;
  }
}

TEST(BinStreamTest, FixedWidthBytesAreLittleEndian) {
  // The encoded bytes are pinned, so a host producing different bytes (a
  // big-endian port taking a shortcut) fails here -- the
  // endianness-independence contract.
  BinWriter w;
  w.PutU32(0x01020304u);
  w.PutU64(0x0102030405060708ull);
  const std::string& b = w.bytes();
  ASSERT_EQ(b.size(), 12u);
  const unsigned char expect[12] = {0x04, 0x03, 0x02, 0x01, 0x08, 0x07,
                                    0x06, 0x05, 0x04, 0x03, 0x02, 0x01};
  for (size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(b[i]), expect[i]) << i;
  }
  BinReader r(b);
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  EXPECT_EQ(u32, 0x01020304u);
  EXPECT_EQ(u64, 0x0102030405060708ull);
}

TEST(BinStreamTest, DoubleIsIeeeBitPattern) {
  BinWriter w;
  w.PutF64(1.0);
  const std::string& b = w.bytes();
  ASSERT_EQ(b.size(), 8u);
  // 1.0 = 0x3FF0000000000000, little-endian on the wire.
  const unsigned char expect[8] = {0, 0, 0, 0, 0, 0, 0xF0, 0x3F};
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(b[i]), expect[i]) << i;
  }
  double got = 0.0;
  BinReader r(b);
  ASSERT_TRUE(r.GetF64(&got).ok());
  EXPECT_EQ(got, 1.0);
}

TEST(BinStreamTest, BoolRejectsOutOfRangeByte) {
  bool out = false;
  EXPECT_EQ(BinReader(std::string("\x02", 1)).GetBool(&out).code(),
            StatusCode::kDataLoss);
  BinWriter w;
  w.PutBool(true);
  w.PutBool(false);
  BinReader r(w.bytes());
  ASSERT_TRUE(r.GetBool(&out).ok());
  EXPECT_TRUE(out);
  ASSERT_TRUE(r.GetBool(&out).ok());
  EXPECT_FALSE(out);
}

TEST(BinStreamTest, StringRoundTripAndTruncation) {
  BinWriter w;
  w.PutString("");
  w.PutString(std::string("a\0b", 3));  // embedded NUL survives
  BinReader r(w.bytes());
  std::string got;
  ASSERT_TRUE(r.GetString(&got).ok());
  EXPECT_EQ(got, "");
  ASSERT_TRUE(r.GetString(&got).ok());
  EXPECT_EQ(got, std::string("a\0b", 3));
  EXPECT_TRUE(r.ExpectEnd("strings").ok());

  // Length says 5, body holds 2.
  BinWriter bad;
  bad.PutVarint(5);
  bad.PutU8('x');
  bad.PutU8('y');
  EXPECT_EQ(BinReader(bad.bytes()).GetString(&got).code(),
            StatusCode::kDataLoss);
}

TEST(BinStreamTest, F64ArrayRoundTripAndCountGuard) {
  std::vector<double> values = {0.0, -1.5, 3.25e300, -0.0, 1e-300};
  BinWriter w;
  w.PutF64Array(values);
  w.PutF64Array({});
  BinReader r(w.bytes());
  std::vector<double> got;
  ASSERT_TRUE(r.GetF64Array(&got).ok());
  EXPECT_EQ(got, values);
  ASSERT_TRUE(r.GetF64Array(&got).ok());
  EXPECT_TRUE(got.empty());
  EXPECT_TRUE(r.ExpectEnd("double arrays").ok());

  // A count larger than the remaining bytes could hold must fail before
  // any attacker-sized resize.
  BinWriter bad;
  bad.PutVarint(std::numeric_limits<uint64_t>::max() / 8);
  EXPECT_EQ(BinReader(bad.bytes()).GetF64Array(&got).code(),
            StatusCode::kDataLoss);
}

TEST(BinStreamTest, VarintArrayRoundTrip) {
  std::vector<size_t> values = {0, 1, 127, 128, 1u << 20};
  BinWriter w;
  w.PutVarintArray(values);
  BinReader r(w.bytes());
  std::vector<size_t> got;
  ASSERT_TRUE(r.GetVarintArray(&got).ok());
  EXPECT_EQ(got, values);
}

TEST(BinStreamTest, ExpectEndReportsTrailingBytes) {
  BinWriter w;
  w.PutU8(1);
  w.PutU8(2);
  BinReader r(w.bytes());
  uint8_t v = 0;
  ASSERT_TRUE(r.GetU8(&v).ok());
  Status tail = r.ExpectEnd("payload");
  EXPECT_EQ(tail.code(), StatusCode::kDataLoss);
  EXPECT_NE(tail.message().find("payload"), std::string::npos);
}

// ---------------------------------------------------------------- crc32

TEST(Crc32Test, IeeeReferenceVector) {
  const char check[] = "123456789";
  EXPECT_EQ(Crc32(check, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, UpdateChainsLikeOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32(data.data(), data.size());
  for (size_t split : {size_t(0), size_t(1), size_t(7), data.size()}) {
    uint32_t crc = Crc32Update(0, data.data(), split);
    crc = Crc32Update(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << split;
  }
}

// ------------------------------------------------------------- section table

TEST(SectionTableTest, EntryRoundTripsPast4GiB) {
  // No multi-GiB file is built; the synthetic entry proves the table
  // arithmetic is u64 end to end (a u32 offset would wrap here).
  SectionEntry entry;
  entry.id = kSectionEngine;
  entry.version = 3;
  entry.offset = (5ull << 30) + 17;  // > 4 GiB
  entry.size = (6ull << 30) + 4095;  // > 4 GiB
  entry.crc = 0xDEADBEEFu;
  BinWriter w;
  AppendSectionEntry(&w, entry);
  EXPECT_EQ(w.size(), kSectionEntrySize);
  BinReader r(w.bytes());
  SectionEntry got;
  ASSERT_TRUE(ParseSectionEntry(&r, &got).ok());
  EXPECT_EQ(got.id, entry.id);
  EXPECT_EQ(got.version, entry.version);
  EXPECT_EQ(got.offset, entry.offset);
  EXPECT_EQ(got.size, entry.size);
  EXPECT_EQ(got.crc, entry.crc);
  EXPECT_TRUE(r.ExpectEnd("entry").ok());
}

TEST(SectionTableTest, ParseEntryRejectsTruncation) {
  SectionEntry entry;
  BinWriter w;
  AppendSectionEntry(&w, entry);
  std::string bytes = w.bytes();
  bytes.resize(bytes.size() - 1);
  BinReader r(bytes);
  SectionEntry got;
  EXPECT_EQ(ParseSectionEntry(&r, &got).code(), StatusCode::kDataLoss);
}

TEST(SectionTableTest, SectionNames) {
  EXPECT_STREQ(SectionName(kSectionMeta), "meta");
  EXPECT_STREQ(SectionName(kSectionDatabase), "database");
  EXPECT_STREQ(SectionName(kSectionEngine), "engine");
  EXPECT_STREQ(SectionName(kSectionSessions), "sessions");
  EXPECT_STREQ(SectionName(kSectionCampaign), "campaign");
  EXPECT_STREQ(SectionName(999), "unknown");
}

// ---------------------------------------------------------------- container

std::string BuildTwoSectionFile() {
  SnapshotFileBuilder builder;
  builder.AddSection(kSectionMeta, 1, "meta-payload");
  builder.AddSection(kSectionDatabase, 1, std::string("db\0payload", 10));
  return builder.Finish();
}

TEST(SnapshotFileTest, BuildParseRoundTrip) {
  const std::string bytes = BuildTwoSectionFile();
  Result<SnapshotFile> file = SnapshotFile::Parse(bytes);
  ASSERT_TRUE(file.ok()) << file.status().message();
  EXPECT_EQ(file->format_version(), kSnapshotFormatVersion);
  EXPECT_EQ(file->feature_flags(), 0u);
  EXPECT_EQ(file->file_size(), bytes.size());
  ASSERT_EQ(file->sections().size(), 2u);
  const SectionEntry* meta = file->Find(kSectionMeta);
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(file->payload(*meta), "meta-payload");
  const SectionEntry* db = file->Find(kSectionDatabase);
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(file->payload(*db), std::string_view("db\0payload", 10));
  // Payloads are packed back to back from the header.
  EXPECT_EQ(meta->offset, kSnapshotHeaderSize);
  EXPECT_EQ(db->offset, meta->offset + meta->size);
  EXPECT_EQ(file->Find(kSectionCampaign), nullptr);
}

TEST(SnapshotFileTest, EmptySectionsRoundTrip) {
  SnapshotFileBuilder builder;
  builder.AddSection(kSectionMeta, 1, "");
  builder.AddSection(kSectionEngine, 1, "");
  Result<SnapshotFile> file = SnapshotFile::Parse(builder.Finish());
  ASSERT_TRUE(file.ok()) << file.status().message();
  ASSERT_EQ(file->sections().size(), 2u);
  for (const SectionEntry& entry : file->sections()) {
    EXPECT_EQ(entry.size, 0u);
    EXPECT_EQ(file->payload(entry), "");
  }
}

TEST(SnapshotFileTest, UnknownSectionIdIsCarried) {
  SnapshotFileBuilder builder;
  builder.AddSection(kSectionMeta, 1, "m");
  builder.AddSection(999, 7, "future bytes");
  Result<SnapshotFile> file = SnapshotFile::Parse(builder.Finish());
  ASSERT_TRUE(file.ok()) << file.status().message();
  const SectionEntry* unknown = file->Find(999);
  ASSERT_NE(unknown, nullptr);
  EXPECT_EQ(unknown->version, 7u);
  EXPECT_EQ(file->payload(*unknown), "future bytes");
}

TEST(SnapshotFileTest, RejectsUnknownFormatVersion) {
  SnapshotFileBuilder builder;
  builder.set_format_version(kSnapshotFormatVersion + 1);
  builder.AddSection(kSectionMeta, 1, "m");
  Result<SnapshotFile> file = SnapshotFile::Parse(builder.Finish());
  EXPECT_EQ(file.status().code(), StatusCode::kDataLoss);
}

TEST(SnapshotFileTest, RejectsBadMagic) {
  std::string bytes = BuildTwoSectionFile();
  bytes[0] = 'X';
  EXPECT_EQ(SnapshotFile::Parse(bytes).status().code(),
            StatusCode::kDataLoss);
}

TEST(SnapshotFileTest, RejectsEveryTruncationPoint) {
  const std::string bytes = BuildTwoSectionFile();
  // Every prefix of the file is a truncation the parser must reject; the
  // full sweep covers every section boundary by construction.
  for (size_t len = 0; len < bytes.size(); ++len) {
    Result<SnapshotFile> file = SnapshotFile::Parse(bytes.substr(0, len));
    EXPECT_EQ(file.status().code(), StatusCode::kDataLoss) << len;
  }
  EXPECT_TRUE(SnapshotFile::Parse(bytes).ok());
}

TEST(SnapshotFileTest, RejectsTrailingGarbage) {
  std::string bytes = BuildTwoSectionFile();
  bytes.push_back('\0');
  EXPECT_EQ(SnapshotFile::Parse(bytes).status().code(),
            StatusCode::kDataLoss);
}

TEST(SnapshotFileTest, RejectsEverySingleByteCorruption) {
  const std::string good = BuildTwoSectionFile();
  // Flip one bit in every byte: header, payloads, table and CRCs. Each
  // variant must fail -- there is no byte the checksums do not cover.
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    Result<SnapshotFile> file = SnapshotFile::Parse(bad);
    EXPECT_EQ(file.status().code(), StatusCode::kDataLoss) << "byte " << i;
  }
}

}  // namespace
}  // namespace store
}  // namespace uclean
