// Property tests for multi-k PSR sharing: a single ladder scan
// (ComputePsrLadder, the ladder PsrEngine, the ladder CleaningSession)
// must match independent single-k runs to 1e-12 at every rung -- at
// creation, after random clean sequences, and across tombstone compaction
// -- and the aggregated planning problem must reduce to the single-k one.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "clean/agent.h"
#include "clean/problem.h"
#include "clean/session.h"
#include "common/rng.h"
#include "model/database.h"
#include "quality/tp.h"
#include "rank/psr.h"
#include "rank/psr_engine.h"
#include "tests/test_util.h"

namespace uclean {
namespace {

constexpr double kTol = 1e-12;

KLadder MakeLadder(std::vector<size_t> ks) {
  Result<KLadder> ladder = KLadder::Of(std::move(ks));
  UCLEAN_CHECK(ladder.ok());
  return std::move(ladder).value();
}

/// Per-rung comparison of a ladder output against an independent single-k
/// PSR run over the same database.
void ExpectRungMatchesSingleK(const ProbabilisticDatabase& db,
                              const PsrOutput& rung_out, size_t k,
                              const PsrOptions& options) {
  ASSERT_EQ(rung_out.k, k);
  Result<PsrOutput> single = ScanPsr(db, k, options);
  ASSERT_TRUE(single.ok()) << single.status();
  EXPECT_EQ(rung_out.scan_end, single->scan_end) << "k=" << k;
  EXPECT_EQ(rung_out.num_nonzero, single->num_nonzero) << "k=" << k;
  ASSERT_EQ(rung_out.topk_prob.size(), single->topk_prob.size());
  for (size_t i = 0; i < single->topk_prob.size(); ++i) {
    EXPECT_NEAR(rung_out.topk_prob[i], single->topk_prob[i], kTol)
        << "k=" << k << " tuple " << i;
  }
  ASSERT_EQ(rung_out.has_rank_probabilities, single->has_rank_probabilities);
  if (single->has_rank_probabilities) {
    for (size_t i = 0; i < single->topk_prob.size(); ++i) {
      for (size_t h = 1; h <= k; ++h) {
        EXPECT_NEAR(rung_out.rank_probability(i, h),
                    single->rank_probability(i, h), kTol)
            << "k=" << k << " tuple " << i << " rank " << h;
      }
    }
  }
  for (size_t h = 0; h < k; ++h) {
    EXPECT_NEAR(rung_out.best_rank_prob[h], single->best_rank_prob[h], kTol)
        << "k=" << k << " rank " << h + 1;
    EXPECT_EQ(rung_out.best_rank_index[h], single->best_rank_index[h])
        << "k=" << k << " rank " << h + 1;
  }
}

/// Per-rung comparison of a ladder TP state against an independent
/// single-k PSR + TP recomputation (with matching scan options).
void ExpectTpMatchesSingleK(const ProbabilisticDatabase& db,
                            const TpOutput& rung_tp, size_t k,
                            const PsrOptions& options = {}) {
  Result<PsrOutput> psr = ScanPsr(db, k, options);
  ASSERT_TRUE(psr.ok()) << psr.status();
  Result<TpOutput> single = ComputeTpQuality(db, *psr);
  ASSERT_TRUE(single.ok()) << single.status();
  EXPECT_NEAR(rung_tp.quality, single->quality, kTol) << "k=" << k;
  ASSERT_EQ(rung_tp.omega.size(), single->omega.size());
  for (size_t i = 0; i < single->omega.size(); ++i) {
    EXPECT_NEAR(rung_tp.omega[i], single->omega[i], kTol)
        << "k=" << k << " tuple " << i;
  }
  ASSERT_EQ(rung_tp.xtuple_gain.size(), single->xtuple_gain.size());
  for (size_t l = 0; l < single->xtuple_gain.size(); ++l) {
    EXPECT_NEAR(rung_tp.xtuple_gain[l], single->xtuple_gain[l], kTol)
        << "k=" << k << " x-tuple " << l;
    EXPECT_NEAR(rung_tp.xtuple_topk_mass[l], single->xtuple_topk_mass[l],
                kTol)
        << "k=" << k << " x-tuple " << l;
  }
}

TEST(KLadder, OfValidatesSortsAndDedups) {
  EXPECT_FALSE(KLadder::Of({}).ok());
  EXPECT_FALSE(KLadder::Of({0}).ok());
  EXPECT_FALSE(KLadder::Of({3, 0, 5}).ok());
  Result<KLadder> ladder = KLadder::Of({25, 5, 10, 25, 5, 50});
  ASSERT_TRUE(ladder.ok());
  EXPECT_EQ(ladder->ks, (std::vector<size_t>{5, 10, 25, 50}));
  EXPECT_EQ(ladder->max_k(), 50u);
  EXPECT_EQ(ladder->IndexOf(10), 1u);
  EXPECT_EQ(ladder->IndexOf(11), KLadder::npos);
  EXPECT_EQ(ladder->ToString(), "{5, 10, 25, 50}");
}

TEST(ComputePsrLadder, RejectsUnsortedOrZeroLadders) {
  Rng maker(5);
  ProbabilisticDatabase db = MakeRandomDatabase(&maker, {});
  KLadder bad;
  bad.ks = {5, 3};
  EXPECT_FALSE(ScanPsrLadder(db, bad).ok());
  bad.ks = {};
  EXPECT_FALSE(ScanPsrLadder(db, bad).ok());
  bad.ks = {0, 3};
  EXPECT_FALSE(ScanPsrLadder(db, bad).ok());
  bad.ks = {3, 3};
  EXPECT_FALSE(ScanPsrLadder(db, bad).ok());
  ScanRequest bad_request;
  bad_request.ladder = bad;
  EXPECT_FALSE(PsrEngine::Create(db, bad_request).ok());
}

TEST(ComputePsrLadder, MatchesSingleKRuns) {
  Rng maker(1234);
  RandomDbOptions opts;
  opts.num_xtuples = 40;
  opts.max_alternatives = 4;
  for (int trial = 0; trial < 4; ++trial) {
    ProbabilisticDatabase db = MakeRandomDatabase(&maker, opts);
    const KLadder ladder = MakeLadder({1, 3, 7, 12, 20});
    for (const bool store_matrix : {false, true}) {
      for (const bool early_termination : {true, false}) {
        PsrOptions options;
        options.store_rank_probabilities = store_matrix;
        options.early_termination = early_termination;
        Result<std::vector<PsrOutput>> outs =
            ScanPsrLadder(db, ladder, options);
        ASSERT_TRUE(outs.ok()) << outs.status();
        ASSERT_EQ(outs->size(), ladder.size());
        for (size_t rung = 0; rung < ladder.size(); ++rung) {
          ExpectRungMatchesSingleK(db, (*outs)[rung], ladder[rung], options);
        }
      }
    }
  }
}

TEST(ComputePsrLadder, SingleRungMatchesComputePsr) {
  Rng maker(77);
  RandomDbOptions opts;
  opts.num_xtuples = 20;
  ProbabilisticDatabase db = MakeRandomDatabase(&maker, opts);
  PsrOptions options;
  options.store_rank_probabilities = true;
  Result<std::vector<PsrOutput>> outs =
      ScanPsrLadder(db, MakeLadder({6}), options);
  ASSERT_TRUE(outs.ok());
  ExpectRungMatchesSingleK(db, (*outs)[0], 6, options);
}

TEST(ComputeTpQualityLadder, MatchesSingleKRuns) {
  Rng maker(4321);
  RandomDbOptions opts;
  opts.num_xtuples = 30;
  opts.max_alternatives = 4;
  for (int trial = 0; trial < 4; ++trial) {
    ProbabilisticDatabase db = MakeRandomDatabase(&maker, opts);
    const KLadder ladder = MakeLadder({2, 5, 9, 14});
    Result<std::vector<PsrOutput>> psrs = ScanPsrLadder(db, ladder);
    ASSERT_TRUE(psrs.ok());
    Result<std::vector<TpOutput>> tps = ComputeTpQualityLadder(db, *psrs);
    ASSERT_TRUE(tps.ok()) << tps.status();
    ASSERT_EQ(tps->size(), ladder.size());
    for (size_t rung = 0; rung < ladder.size(); ++rung) {
      ExpectTpMatchesSingleK(db, (*tps)[rung], ladder[rung]);
    }
  }
}

/// Draws a random clean outcome for a random still-uncertain x-tuple;
/// returns false when the database is fully certain.
bool ApplyRandomOutcome(CleaningSession* session, Rng* rng) {
  const ProbabilisticDatabase& db = session->db();
  std::vector<XTupleId> uncertain;
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    const auto& members = db.xtuple_members(static_cast<XTupleId>(l));
    if (members.size() > 1 || db.tuple(members[0]).prob < 1.0) {
      uncertain.push_back(static_cast<XTupleId>(l));
    }
  }
  if (uncertain.empty()) return false;
  const XTupleId l = uncertain[static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(uncertain.size()) - 1))];
  const auto& members = db.xtuple_members(l);
  std::vector<double> weights;
  for (int32_t idx : members) weights.push_back(db.tuple(idx).prob);
  const Tuple& revealed = db.tuple(members[rng->Discrete(weights)]);
  Status s = session->ApplyCleanOutcome(l, revealed.id);
  EXPECT_TRUE(s.ok()) << s;
  return true;
}

struct LadderSweepParam {
  int seed;
  std::vector<size_t> ks;
  bool store_matrix;
  size_t compact_min;  // 1 = compact every refresh, SIZE_MAX = never
};

class LadderSweep : public ::testing::TestWithParam<LadderSweepParam> {};

/// The core equivalence property: a ladder session under a random clean
/// sequence (batched like adaptive rounds, with the parameterized
/// compaction policy) matches a from-scratch single-k PSR + TP
/// recomputation at EVERY rung after EVERY refresh.
TEST_P(LadderSweep, MatchesSingleKFromScratchAtEveryStep) {
  const LadderSweepParam param = GetParam();
  Rng maker(static_cast<uint64_t>(param.seed));
  RandomDbOptions opts;
  opts.num_xtuples = 24;
  opts.max_alternatives = 4;
  ProbabilisticDatabase db = MakeRandomDatabase(&maker, opts);

  CleaningSession::Options options;
  options.psr.store_rank_probabilities = param.store_matrix;
  options.compact_min_tombstones = param.compact_min;
  options.compact_min_fraction = 0.0;
  const KLadder ladder = MakeLadder(param.ks);
  Result<CleaningSession> session =
      CleaningSession::Start(std::move(db), ladder, options);
  ASSERT_TRUE(session.ok()) << session.status();
  ASSERT_EQ(session->num_rungs(), ladder.size());
  EXPECT_EQ(session->k(), ladder.max_k());

  Rng rng(static_cast<uint64_t>(param.seed) + 1000);
  for (int step = 0; step < 30; ++step) {
    for (size_t rung = 0; rung < ladder.size(); ++rung) {
      PsrOptions psr_options;
      psr_options.store_rank_probabilities = param.store_matrix;
      ExpectRungMatchesSingleK(session->db(), session->psr(rung),
                               ladder[rung], psr_options);
      ExpectTpMatchesSingleK(session->db(), session->tp(rung), ladder[rung]);
      EXPECT_NEAR(session->quality(rung), session->tp(rung).quality, 0.0);
    }
    // Batch one to three outcomes per refresh, like an adaptive round.
    const int batch = static_cast<int>(rng.UniformInt(1, 3));
    bool any = false;
    for (int b = 0; b < batch; ++b) any |= ApplyRandomOutcome(&*session, &rng);
    ASSERT_TRUE(session->Refresh().ok());
    if (!any) break;  // fully certain: nothing left to clean
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, LadderSweep,
    ::testing::Values(
        LadderSweepParam{101, {2, 5, 9}, true, 1},
        LadderSweepParam{101, {2, 5, 9}, false, static_cast<size_t>(-1)},
        LadderSweepParam{202, {1, 4}, false, 1},
        LadderSweepParam{303, {3, 6, 10, 15}, false, 4},
        LadderSweepParam{404, {1, 2, 3, 4, 5}, true, 4},
        LadderSweepParam{505, {7}, false, static_cast<size_t>(-1)}),
    [](const auto& info) {
      const LadderSweepParam& p = info.param;
      std::string name = "s" + std::to_string(p.seed) + "L";
      for (size_t k : p.ks) name += std::to_string(k) + "_";
      name += p.store_matrix ? "mat" : "nomat";
      name += p.compact_min == 1
                  ? "eager"
                  : (p.compact_min == static_cast<size_t>(-1) ? "never"
                                                              : "lazy");
      return name;
    });

TEST(PsrEngineThinning, Rank0CheckpointSurvivesThinningAndFullReplay) {
  // Checkpoint interval 1 over a full (no early termination) scan of ~500
  // live tuples overflows kMaxCheckpoints and forces thinning, which must
  // leave the always-retained rank-0 snapshot intact: a clean at the very
  // top of the ranking then replays the WHOLE scan from it. (Regression:
  // the thinning loop used to self-move-assign checkpoint 0, emptying its
  // count vector and corrupting every full replay after thinning.)
  Rng maker(1357);
  RandomDbOptions opts;
  opts.num_xtuples = 200;
  opts.max_alternatives = 4;
  ProbabilisticDatabase db = MakeRandomDatabase(&maker, opts);

  CleaningSession::Options options;
  options.checkpoint_interval = 1;
  options.psr.early_termination = false;
  const KLadder ladder = MakeLadder({3, 8});
  Result<CleaningSession> session =
      CleaningSession::Start(std::move(db), ladder, options);
  ASSERT_TRUE(session.ok()) << session.status();

  const Tuple top = session->db().tuple(0);
  ASSERT_TRUE(
      session->ApplyCleanOutcome(top.xtuple, top.is_null ? -1 : top.id).ok());
  ASSERT_TRUE(session->Refresh().ok());
  for (size_t rung = 0; rung < ladder.size(); ++rung) {
    PsrOptions psr_options;
    psr_options.early_termination = false;
    ExpectRungMatchesSingleK(session->db(), session->psr(rung), ladder[rung],
                             psr_options);
    ExpectTpMatchesSingleK(session->db(), session->tp(rung), ladder[rung],
                           psr_options);
  }
}

TEST(LadderSession, MatchesPerKSessionsUnderSharedOutcomeStream) {
  // One ladder session and one single-k session per rung consume the SAME
  // outcome stream; after every round each rung must agree with its
  // dedicated session bitwise-to-1e-12.
  Rng maker(90210);
  RandomDbOptions opts;
  opts.num_xtuples = 18;
  opts.max_alternatives = 3;
  ProbabilisticDatabase base = MakeRandomDatabase(&maker, opts);
  const KLadder ladder = MakeLadder({2, 4, 8});

  Result<CleaningSession> shared =
      CleaningSession::Start(ProbabilisticDatabase(base), ladder);
  ASSERT_TRUE(shared.ok());
  std::vector<CleaningSession> per_k;
  for (size_t rung = 0; rung < ladder.size(); ++rung) {
    Result<CleaningSession> single =
        CleaningSession::Start(ProbabilisticDatabase(base), ladder[rung]);
    ASSERT_TRUE(single.ok());
    per_k.push_back(std::move(single).value());
  }

  Rng outcome_rng(777);
  for (int round = 0; round < 12; ++round) {
    // Draw the round's outcomes once, against the shared session's db.
    std::vector<std::pair<XTupleId, TupleId>> outcomes;
    const ProbabilisticDatabase& db = shared->db();
    for (int draw = 0; draw < 2; ++draw) {
      std::vector<XTupleId> uncertain;
      for (size_t l = 0; l < db.num_xtuples(); ++l) {
        const auto& members = db.xtuple_members(static_cast<XTupleId>(l));
        if (members.size() > 1 || db.tuple(members[0]).prob < 1.0) {
          uncertain.push_back(static_cast<XTupleId>(l));
        }
      }
      if (uncertain.empty()) break;
      const XTupleId l = uncertain[static_cast<size_t>(outcome_rng.UniformInt(
          0, static_cast<int64_t>(uncertain.size()) - 1))];
      bool already_drawn = false;
      for (const auto& outcome : outcomes) {
        already_drawn |= outcome.first == l;
      }
      if (already_drawn) continue;  // one resolution per x-tuple per round
      const auto& members = db.xtuple_members(l);
      std::vector<double> weights;
      for (int32_t idx : members) weights.push_back(db.tuple(idx).prob);
      outcomes.emplace_back(
          l, db.tuple(members[outcome_rng.Discrete(weights)]).id);
    }
    if (outcomes.empty()) break;
    for (const auto& [xtuple, resolved] : outcomes) {
      ASSERT_TRUE(shared->ApplyCleanOutcome(xtuple, resolved).ok());
      for (CleaningSession& single : per_k) {
        ASSERT_TRUE(single.ApplyCleanOutcome(xtuple, resolved).ok());
      }
    }
    ASSERT_TRUE(shared->Refresh().ok());
    for (size_t rung = 0; rung < ladder.size(); ++rung) {
      ASSERT_TRUE(per_k[rung].Refresh().ok());
      EXPECT_NEAR(shared->quality(rung), per_k[rung].quality(), kTol)
          << "round " << round << " k=" << ladder[rung];
      const TpOutput& a = shared->tp(rung);
      const TpOutput& b = per_k[rung].tp();
      for (size_t l = 0; l < a.xtuple_gain.size(); ++l) {
        EXPECT_NEAR(a.xtuple_gain[l], b.xtuple_gain[l], kTol);
      }
    }
  }
}

TEST(LadderSession, ShrinkingScanEndLeavesNoStaleOmega) {
  // Regression for the delta-TP shrink case: a clean that resolves an
  // x-tuple to a top-ranked certain tuple adds a saturated contributor
  // early, so the Lemma-2 stop fires sooner and the replayed scan_end
  // moves BACKWARD. UpdateTpQualityLadder must wipe omega to the deeper
  // of the old and new ends, or the entries in [new_end, old_end) would
  // survive as stale state that a later pass (whose wipe is bounded by
  // the new, shallower scan_end) silently resurrects once the scan grows
  // again. The test forces the shrink, asserts omega is identically zero
  // at and past every rung's new stop point, and then pushes another
  // clean through to prove later passes stay exact.
  Rng maker(987);
  RandomDbOptions opts;
  opts.num_xtuples = 40;
  opts.max_alternatives = 4;
  opts.allow_subunit_mass = false;  // unit mass: saturation drives the stop
  const ProbabilisticDatabase base = MakeRandomDatabase(&maker, opts);
  const KLadder ladder = MakeLadder({2, 6});

  CleaningSession::Options options;
  options.compact_min_tombstones = static_cast<size_t>(-1);  // keep indices
  bool shrunk = false;
  for (size_t l = 0; l < base.num_xtuples() && !shrunk; ++l) {
    const auto& members = base.xtuple_members(static_cast<XTupleId>(l));
    if (members.size() < 2 || base.tuple(members.front()).is_null) continue;
    Result<CleaningSession> session = CleaningSession::Start(
        ProbabilisticDatabase(base), ladder, options);
    ASSERT_TRUE(session.ok()) << session.status();
    std::vector<size_t> old_ends;
    for (size_t rung = 0; rung < ladder.size(); ++rung) {
      old_ends.push_back(session->psr(rung).scan_end);
    }
    ASSERT_TRUE(session
                    ->ApplyCleanOutcome(static_cast<XTupleId>(l),
                                        base.tuple(members.front()).id)
                    .ok());
    ASSERT_TRUE(session->Refresh().ok());
    for (size_t rung = 0; rung < ladder.size(); ++rung) {
      shrunk |= session->psr(rung).scan_end < old_ends[rung];
    }
    if (!shrunk) continue;

    for (size_t rung = 0; rung < ladder.size(); ++rung) {
      const TpOutput& tp = session->tp(rung);
      EXPECT_EQ(tp.scan_end, session->psr(rung).scan_end);
      for (size_t i = tp.scan_end; i < tp.omega.size(); ++i) {
        EXPECT_EQ(tp.omega[i], 0.0)
            << "stale omega at rank " << i << " (scan_end " << tp.scan_end
            << ", pre-clean scan_end " << old_ends[rung] << ")";
      }
      ExpectTpMatchesSingleK(session->db(), tp, ladder[rung]);
    }
    // A second clean (and replay) over the shrunken state must stay
    // exact: this is the pass a stale omega suffix would poison.
    ASSERT_TRUE(ApplyRandomOutcome(&*session, &maker));
    ASSERT_TRUE(session->Refresh().ok());
    for (size_t rung = 0; rung < ladder.size(); ++rung) {
      ExpectTpMatchesSingleK(session->db(), session->tp(rung), ladder[rung]);
    }
  }
  ASSERT_TRUE(shrunk) << "no clean shrank any rung's scan_end; the "
                         "regression scenario was not exercised";
}

TEST(AggregatedProblem, SingleRungReducesToSingleK) {
  Rng maker(31);
  RandomDbOptions opts;
  opts.num_xtuples = 12;
  ProbabilisticDatabase db = MakeRandomDatabase(&maker, opts);
  CleaningProfile profile;
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    profile.costs.push_back(1 + static_cast<int64_t>(l % 4));
    profile.sc_probs.push_back(0.5);
  }
  Result<TpOutput> tp = ComputeTpQuality(db, 5);
  ASSERT_TRUE(tp.ok());
  Result<CleaningProblem> single = MakeCleaningProblem(*tp, profile, 100);
  ASSERT_TRUE(single.ok());
  std::vector<TpOutput> tps{*tp};
  Result<CleaningProblem> ladder = MakeCleaningProblem(tps, {}, profile, 100);
  ASSERT_TRUE(ladder.ok()) << ladder.status();
  ASSERT_EQ(ladder->gain.size(), single->gain.size());
  for (size_t l = 0; l < single->gain.size(); ++l) {
    EXPECT_NEAR(ladder->gain[l], single->gain[l], 0.0) << "x-tuple " << l;
    EXPECT_NEAR(ladder->topk_mass[l], single->topk_mass[l], 0.0);
  }
}

TEST(AggregatedProblem, UniformWeightsAverageTheRungs) {
  Rng maker(32);
  RandomDbOptions opts;
  opts.num_xtuples = 12;
  ProbabilisticDatabase db = MakeRandomDatabase(&maker, opts);
  CleaningProfile profile;
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    profile.costs.push_back(1);
    profile.sc_probs.push_back(0.5);
  }
  const KLadder ladder = MakeLadder({2, 6});
  Result<std::vector<PsrOutput>> psrs = ScanPsrLadder(db, ladder);
  ASSERT_TRUE(psrs.ok());
  Result<std::vector<TpOutput>> tps = ComputeTpQualityLadder(db, *psrs);
  ASSERT_TRUE(tps.ok());
  Result<CleaningProblem> uniform = MakeCleaningProblem(*tps, {}, profile, 10);
  ASSERT_TRUE(uniform.ok());
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    const double mean =
        0.5 * ((*tps)[0].xtuple_gain[l] + (*tps)[1].xtuple_gain[l]);
    EXPECT_NEAR(uniform->gain[l], mean > 0.0 ? 0.0 : mean, kTol);
  }
  // Weighting one rung fully reproduces that rung's problem.
  Result<CleaningProblem> only_deep =
      MakeCleaningProblem(*tps, {0.0, 1.0}, profile, 10);
  ASSERT_TRUE(only_deep.ok());
  Result<CleaningProblem> deep =
      MakeCleaningProblem((*tps)[1], profile, 10);
  ASSERT_TRUE(deep.ok());
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    EXPECT_NEAR(only_deep->gain[l], deep->gain[l], kTol);
  }
}

TEST(AggregatedProblem, ValidatesWeights) {
  CleaningProfile profile;
  profile.costs = {1};
  profile.sc_probs = {0.5};
  TpOutput tp;
  tp.xtuple_gain = {-1.0};
  tp.xtuple_topk_mass = {0.5};
  std::vector<TpOutput> tps{tp};
  EXPECT_FALSE(MakeCleaningProblem({}, {}, profile, 10).ok());
  EXPECT_FALSE(MakeCleaningProblem(tps, {0.5, 0.5}, profile, 10).ok());
  EXPECT_FALSE(MakeCleaningProblem(tps, {-1.0}, profile, 10).ok());
  EXPECT_FALSE(MakeCleaningProblem(tps, {0.0}, profile, 10).ok());
  EXPECT_TRUE(MakeCleaningProblem(tps, {2.0}, profile, 10).ok());
}

}  // namespace
}  // namespace uclean
