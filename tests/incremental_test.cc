// Property tests for the incremental cleaning engine: random sequences of
// clean outcomes applied through ProbabilisticDatabase::ApplyCleanOutcome +
// PsrEngine + delta TP must match a from-scratch ComputePsr /
// ComputeTpQuality of the same database to 1e-12 at every step, under
// every compaction policy, and agree with the historical builder
// round-trip.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "clean/agent.h"
#include "clean/session.h"
#include "common/rng.h"
#include "model/database.h"
#include "quality/tp.h"
#include "rank/psr.h"
#include "rank/psr_engine.h"
#include "tests/test_util.h"

namespace uclean {
namespace {

constexpr double kTol = 1e-12;

/// Checks the session's maintained PSR + TP state against a from-scratch
/// recomputation over the session's own database.
void ExpectMatchesFromScratch(const CleaningSession& session) {
  const ProbabilisticDatabase& db = session.db();
  PsrOptions options;
  options.store_rank_probabilities = session.psr().has_rank_probabilities;
  Result<PsrOutput> psr = ScanPsr(db, session.k(), options);
  ASSERT_TRUE(psr.ok()) << psr.status();

  const PsrOutput& inc = session.psr();
  ASSERT_EQ(inc.topk_prob.size(), psr->topk_prob.size());
  EXPECT_EQ(inc.scan_end, psr->scan_end);
  EXPECT_EQ(inc.num_nonzero, psr->num_nonzero);
  for (size_t i = 0; i < psr->topk_prob.size(); ++i) {
    EXPECT_NEAR(inc.topk_prob[i], psr->topk_prob[i], kTol) << "tuple " << i;
  }
  if (options.store_rank_probabilities) {
    for (size_t i = 0; i < psr->topk_prob.size(); ++i) {
      for (size_t h = 1; h <= session.k(); ++h) {
        EXPECT_NEAR(inc.rank_probability(i, h), psr->rank_probability(i, h),
                    kTol)
            << "tuple " << i << " rank " << h;
      }
    }
    for (size_t h = 0; h < session.k(); ++h) {
      EXPECT_NEAR(inc.best_rank_prob[h], psr->best_rank_prob[h], kTol);
      EXPECT_EQ(inc.best_rank_index[h], psr->best_rank_index[h]);
    }
  }

  Result<TpOutput> tp = ComputeTpQuality(db, *psr);
  ASSERT_TRUE(tp.ok()) << tp.status();
  EXPECT_NEAR(session.tp().quality, tp->quality, kTol);
  ASSERT_EQ(session.tp().xtuple_gain.size(), tp->xtuple_gain.size());
  for (size_t l = 0; l < tp->xtuple_gain.size(); ++l) {
    EXPECT_NEAR(session.tp().xtuple_gain[l], tp->xtuple_gain[l], kTol)
        << "x-tuple " << l;
    EXPECT_NEAR(session.tp().xtuple_topk_mass[l], tp->xtuple_topk_mass[l],
                kTol)
        << "x-tuple " << l;
  }
  for (size_t i = 0; i < tp->omega.size(); ++i) {
    EXPECT_NEAR(session.tp().omega[i], tp->omega[i], kTol) << "tuple " << i;
  }

  // The historical path: rebuild through the validating builder and
  // recompute. The rebuilt database has its own (compacted) indexing, so
  // compare the order-independent aggregates.
  Result<ProbabilisticDatabase> rebuilt =
      std::move(DatabaseBuilder::FromDatabase(db)).Finish();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  Result<TpOutput> rebuilt_tp = ComputeTpQuality(*rebuilt, session.k());
  ASSERT_TRUE(rebuilt_tp.ok()) << rebuilt_tp.status();
  EXPECT_NEAR(session.tp().quality, rebuilt_tp->quality, kTol);
  for (size_t l = 0; l < tp->xtuple_gain.size(); ++l) {
    EXPECT_NEAR(session.tp().xtuple_gain[l], rebuilt_tp->xtuple_gain[l], kTol);
  }
}

/// Draws a random clean outcome for a random still-uncertain x-tuple;
/// returns false when the database is fully certain.
bool ApplyRandomOutcome(CleaningSession* session, Rng* rng) {
  const ProbabilisticDatabase& db = session->db();
  std::vector<XTupleId> uncertain;
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    const auto& members = db.xtuple_members(static_cast<XTupleId>(l));
    if (members.size() > 1 || db.tuple(members[0]).prob < 1.0) {
      uncertain.push_back(static_cast<XTupleId>(l));
    }
  }
  if (uncertain.empty()) return false;
  const XTupleId l = uncertain[static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(uncertain.size()) - 1))];
  const auto& members = db.xtuple_members(l);
  std::vector<double> weights;
  for (int32_t idx : members) weights.push_back(db.tuple(idx).prob);
  const Tuple& revealed = db.tuple(members[rng->Discrete(weights)]);
  Status s = session->ApplyCleanOutcome(l, revealed.id);
  EXPECT_TRUE(s.ok()) << s;
  return true;
}

struct SweepParam {
  int seed;
  size_t k;
  bool store_matrix;
  size_t compact_min;  // 1 = compact every refresh, SIZE_MAX = never
};

TEST(IncrementalDense, MidScanCheckpointRestoreAndThinning) {
  // A database large enough (and sub-unit enough, so the Lemma-2 stop
  // stays away) that the scan spans many checkpoints; interval 1 forces
  // the thinning path (capacity kMaxCheckpoints) and cleans restore
  // mid-scan snapshots rather than replaying from rank 0.
  Rng maker(271828);
  RandomDbOptions opts;
  opts.num_xtuples = 150;
  opts.max_alternatives = 4;
  opts.allow_subunit_mass = true;
  ProbabilisticDatabase db = MakeRandomDatabase(&maker, opts);

  CleaningSession::Options options;
  options.checkpoint_interval = 1;
  options.compact_min_tombstones = 16;
  options.compact_min_fraction = 0.05;
  Result<CleaningSession> session =
      CleaningSession::Start(std::move(db), /*k=*/9, options);
  ASSERT_TRUE(session.ok()) << session.status();
  ExpectMatchesFromScratch(*session);

  Rng rng(314159);
  for (int step = 0; step < 25; ++step) {
    const int batch = static_cast<int>(rng.UniformInt(1, 2));
    bool any = false;
    for (int b = 0; b < batch; ++b) any |= ApplyRandomOutcome(&*session, &rng);
    ASSERT_TRUE(session->Refresh().ok());
    ExpectMatchesFromScratch(*session);
    if (!any) break;
  }
}

class IncrementalSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(IncrementalSweep, MatchesFromScratchAtEveryStep) {
  const SweepParam param = GetParam();
  Rng maker(static_cast<uint64_t>(param.seed));
  RandomDbOptions opts;
  opts.num_xtuples = 24;
  opts.max_alternatives = 4;
  ProbabilisticDatabase db = MakeRandomDatabase(&maker, opts);

  CleaningSession::Options options;
  options.psr.store_rank_probabilities = param.store_matrix;
  options.compact_min_tombstones = param.compact_min;
  options.compact_min_fraction = 0.0;
  Result<CleaningSession> session =
      CleaningSession::Start(std::move(db), param.k, options);
  ASSERT_TRUE(session.ok()) << session.status();
  ExpectMatchesFromScratch(*session);

  Rng rng(static_cast<uint64_t>(param.seed) + 1000);
  for (int step = 0; step < 40; ++step) {
    // Batch one to three outcomes per refresh, like an adaptive round.
    const int batch = static_cast<int>(rng.UniformInt(1, 3));
    bool any = false;
    for (int b = 0; b < batch; ++b) any |= ApplyRandomOutcome(&*session, &rng);
    ASSERT_TRUE(session->Refresh().ok());
    ExpectMatchesFromScratch(*session);
    if (!any) break;  // fully certain: nothing left to clean
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, IncrementalSweep,
    ::testing::Values(SweepParam{11, 3, true, 1},
                      SweepParam{11, 3, true, static_cast<size_t>(-1)},
                      SweepParam{22, 1, false, 1},
                      SweepParam{22, 7, false, 4},
                      SweepParam{33, 5, true, 4},
                      SweepParam{44, 2, false, static_cast<size_t>(-1)}),
    [](const auto& info) {
      const SweepParam& p = info.param;
      return "s" + std::to_string(p.seed) + "k" + std::to_string(p.k) +
             (p.store_matrix ? "mat" : "nomat") +
             (p.compact_min == 1
                  ? std::string("eager")
                  : (p.compact_min == static_cast<size_t>(-1)
                         ? std::string("never")
                         : "lazy" + std::to_string(p.compact_min)));
    });

TEST(Database, ApplyCleanOutcomeCollapsesInPlace) {
  Rng maker(7);
  RandomDbOptions opts;
  opts.num_xtuples = 6;
  opts.max_alternatives = 3;
  ProbabilisticDatabase db = MakeRandomDatabase(&maker, opts);

  // Find an x-tuple with several alternatives and collapse it to its
  // best-ranked real alternative.
  XTupleId target = -1;
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    if (db.xtuple_members(static_cast<XTupleId>(l)).size() > 1) {
      target = static_cast<XTupleId>(l);
      break;
    }
  }
  ASSERT_GE(target, 0);
  const auto members_before = db.xtuple_members(target);
  const size_t n_before = db.num_tuples();
  const Tuple resolved = db.tuple(members_before.front());
  ASSERT_FALSE(resolved.is_null);

  Result<ProbabilisticDatabase::CleanOutcomeDelta> delta =
      db.ApplyCleanOutcome(target, resolved.id);
  ASSERT_TRUE(delta.ok()) << delta.status();
  EXPECT_FALSE(delta->resolved_null);
  EXPECT_EQ(delta->first_changed_rank,
            static_cast<size_t>(members_before.front()));
  EXPECT_EQ(delta->resolved_rank, static_cast<size_t>(members_before.front()));
  EXPECT_TRUE(db.has_tombstones());
  EXPECT_EQ(db.num_tombstones(), members_before.size() - 1);
  ASSERT_EQ(db.xtuple_members(target).size(), 1u);
  EXPECT_DOUBLE_EQ(db.tuple(db.xtuple_members(target)[0]).prob, 1.0);
  EXPECT_DOUBLE_EQ(db.xtuple_real_mass(target), 1.0);

  // Rank indices are stable until compaction.
  EXPECT_EQ(db.num_tuples(), n_before);

  // Collapsing the same x-tuple to the same outcome again is a no-op.
  Result<ProbabilisticDatabase::CleanOutcomeDelta> again =
      db.ApplyCleanOutcome(target, resolved.id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->first_changed_rank, db.num_tuples());

  // Compaction drops exactly the tombstones and renumbers monotonically.
  std::vector<int32_t> map = db.CompactTombstones();
  ASSERT_EQ(map.size(), n_before);
  EXPECT_FALSE(db.has_tombstones());
  EXPECT_EQ(db.num_tuples(), n_before - (members_before.size() - 1));
  int32_t prev = -1;
  for (int32_t m : map) {
    if (m < 0) continue;
    EXPECT_GT(m, prev);
    prev = m;
  }
}

TEST(Database, ApplyCleanOutcomeValidates) {
  Rng maker(8);
  RandomDbOptions opts;
  opts.num_xtuples = 3;
  opts.allow_subunit_mass = false;  // unit mass: no null alternatives
  ProbabilisticDatabase db = MakeRandomDatabase(&maker, opts);
  EXPECT_FALSE(db.ApplyCleanOutcome(-1, 0).ok());
  EXPECT_FALSE(db.ApplyCleanOutcome(99, 0).ok());
  EXPECT_FALSE(db.ApplyCleanOutcome(0, 123456).ok());
  // Null outcome on a full-mass x-tuple is impossible (probability zero).
  EXPECT_FALSE(db.ApplyCleanOutcome(0, -1).ok());
}

TEST(Database, NullOutcomeCollapsesToCertainNull) {
  DatabaseBuilder b;
  XTupleId x = b.AddXTuple("E");
  ASSERT_TRUE(b.AddAlternative(x, 0, 9.0, 0.3).ok());
  ASSERT_TRUE(b.AddAlternative(x, 1, 4.0, 0.3).ok());  // null mass 0.4
  XTupleId y = b.AddXTuple("F");
  ASSERT_TRUE(b.AddAlternative(y, 2, 6.0, 1.0).ok());
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());

  Result<ProbabilisticDatabase::CleanOutcomeDelta> delta =
      db->ApplyCleanOutcome(x, -1);
  ASSERT_TRUE(delta.ok()) << delta.status();
  EXPECT_TRUE(delta->resolved_null);
  ASSERT_EQ(db->xtuple_members(x).size(), 1u);
  const Tuple& survivor = db->tuple(db->xtuple_members(x)[0]);
  EXPECT_TRUE(survivor.is_null);
  EXPECT_DOUBLE_EQ(survivor.prob, 1.0);
  EXPECT_DOUBLE_EQ(db->xtuple_real_mass(x), 0.0);
  EXPECT_EQ(db->num_real_tuples(), 1u);  // only F's alternative remains

  // PSR on the collapsed database: F's tuple is now certain rank 1.
  Result<PsrOutput> psr = ScanPsr(*db, 1);
  ASSERT_TRUE(psr.ok());
  const size_t f_rank = *db->RankIndexOfTupleId(2);
  EXPECT_NEAR(psr->topk_prob[f_rank], 1.0, kTol);
}

TEST(PsrEngine, CreateMatchesComputePsr) {
  Rng maker(55);
  RandomDbOptions opts;
  opts.num_xtuples = 16;
  opts.max_alternatives = 4;
  for (int trial = 0; trial < 5; ++trial) {
    ProbabilisticDatabase db = MakeRandomDatabase(&maker, opts);
    for (size_t k : {1u, 4u, 9u}) {
      PsrOptions options;
      options.store_rank_probabilities = true;
      Result<ScanRequest> request = ScanRequest::ForK(k, options);
      ASSERT_TRUE(request.ok());
      Result<PsrEngine> engine = PsrEngine::Create(db, *request);
      ASSERT_TRUE(engine.ok()) << engine.status();
      Result<PsrOutput> scratch = ScanPsr(db, k, options);
      ASSERT_TRUE(scratch.ok());
      EXPECT_EQ(engine->output().scan_end, scratch->scan_end);
      EXPECT_EQ(engine->output().num_nonzero, scratch->num_nonzero);
      for (size_t i = 0; i < db.num_tuples(); ++i) {
        EXPECT_NEAR(engine->output().topk_prob[i], scratch->topk_prob[i],
                    kTol);
      }
      for (size_t h = 0; h < k; ++h) {
        EXPECT_EQ(engine->output().best_rank_index[h],
                  scratch->best_rank_index[h]);
      }
    }
  }
}

TEST(PsrEngine, RejectsZeroK) {
  Rng maker(56);
  ProbabilisticDatabase db = MakeRandomDatabase(&maker, {});
  EXPECT_FALSE(ScanRequest::ForK(0).ok());
  // A hand-assembled zero-k request must be caught by Create itself.
  ScanRequest request;
  request.ladder.ks = {0};
  EXPECT_FALSE(PsrEngine::Create(db, request).ok());
}

TEST(Session, TakeDatabaseOnDirtySessionReflectsOutcomes) {
  // TakeDatabase must hand back every applied outcome even when the
  // session is still dirty (outcomes applied, no Refresh): the database
  // mutations are eager, only the PSR/TP state refresh is deferred, and
  // ending a session is a legitimate reason never to pay for one.
  Rng maker(4242);
  RandomDbOptions opts;
  opts.num_xtuples = 12;
  opts.max_alternatives = 3;
  ProbabilisticDatabase base = MakeRandomDatabase(&maker, opts);

  // Reference: the same outcomes collapsed directly on a copy.
  ProbabilisticDatabase reference = base;

  Result<CleaningSession> session =
      CleaningSession::Start(ProbabilisticDatabase(base), /*k=*/3);
  ASSERT_TRUE(session.ok());
  Rng rng(17);
  size_t applied = 0;
  for (int draw = 0; draw < 4; ++draw) {
    if (!ApplyRandomOutcome(&*session, &rng)) break;
    ++applied;
  }
  ASSERT_GT(applied, 0u);
  ASSERT_TRUE(session->dirty());
  for (size_t l = 0; l < reference.num_xtuples(); ++l) {
    // Mirror the session's collapses onto the reference via its db view.
    const auto& members =
        session->db().xtuple_members(static_cast<XTupleId>(l));
    if (members.size() != 1) continue;
    const Tuple& survivor = session->db().tuple(members[0]);
    if (survivor.prob < 1.0) continue;
    ASSERT_TRUE(reference
                    .ApplyCleanOutcome(static_cast<XTupleId>(l),
                                       survivor.is_null ? -1 : survivor.id)
                    .ok());
  }
  reference.CompactTombstones();

  const ProbabilisticDatabase taken = std::move(*session).TakeDatabase();
  EXPECT_FALSE(taken.has_tombstones());  // compacted on the way out
  ASSERT_EQ(taken.num_tuples(), reference.num_tuples());
  for (size_t i = 0; i < reference.num_tuples(); ++i) {
    EXPECT_EQ(taken.tuple(i).id, reference.tuple(i).id) << "rank " << i;
    EXPECT_DOUBLE_EQ(taken.tuple(i).prob, reference.tuple(i).prob)
        << "rank " << i;
  }
}

TEST(Session, ExecutePlanOverloadsAgree) {
  // The session overload of ExecutePlan must consume the same random
  // stream and land on the same cleaned state as the database overload.
  Rng maker(91);
  RandomDbOptions opts;
  opts.num_xtuples = 10;
  opts.max_alternatives = 3;
  ProbabilisticDatabase db = MakeRandomDatabase(&maker, opts);
  CleaningProfile profile;
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    profile.costs.push_back(1 + static_cast<int64_t>(l % 3));
    profile.sc_probs.push_back(maker.Uniform(0.2, 0.9));
  }
  std::vector<int64_t> probes(db.num_xtuples(), 0);
  for (size_t l = 0; l < probes.size(); l += 2) probes[l] = 2;

  const size_t k = 3;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng_a(seed), rng_b(seed);
    Result<ExecutionReport> scratch = ExecutePlan(db, profile, probes, &rng_a);
    ASSERT_TRUE(scratch.ok());

    Result<CleaningSession> session =
        CleaningSession::Start(ProbabilisticDatabase(db), k);
    ASSERT_TRUE(session.ok());
    Result<SessionExecutionReport> incremental =
        ExecutePlan(&*session, profile, probes, &rng_b);
    ASSERT_TRUE(incremental.ok());
    ASSERT_TRUE(session->Refresh().ok());

    EXPECT_EQ(scratch->spent, incremental->spent);
    EXPECT_EQ(scratch->leftover, incremental->leftover);
    EXPECT_EQ(scratch->successes, incremental->successes);
    ASSERT_EQ(scratch->log.size(), incremental->log.size());
    for (size_t j = 0; j < scratch->log.size(); ++j) {
      EXPECT_EQ(scratch->log[j].resolved_id, incremental->log[j].resolved_id);
    }
    Result<TpOutput> scratch_tp = ComputeTpQuality(scratch->cleaned_db, k);
    ASSERT_TRUE(scratch_tp.ok());
    EXPECT_NEAR(scratch_tp->quality, session->quality(), kTol);
  }
}

}  // namespace
}  // namespace uclean
