// Unit tests for cleaning-profile CSV serialization.

#include "clean/profile_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "workload/cleaning_profile_gen.h"

namespace uclean {
namespace {

TEST(ProfileIo, RoundTrips) {
  Result<CleaningProfile> profile = GenerateCleaningProfile(50);
  ASSERT_TRUE(profile.ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteProfileCsv(*profile, &out).ok());
  std::istringstream in(out.str());
  Result<CleaningProfile> loaded = ReadProfileCsv(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->costs, profile->costs);
  ASSERT_EQ(loaded->sc_probs.size(), profile->sc_probs.size());
  for (size_t l = 0; l < profile->sc_probs.size(); ++l) {
    EXPECT_DOUBLE_EQ(loaded->sc_probs[l], profile->sc_probs[l]);
  }
}

TEST(ProfileIo, AcceptsShuffledRowsAndComments) {
  std::istringstream in(
      "# campaign config\n"
      "xtuple,cost,sc_prob\n"
      "1,5,0.25\n"
      "0,2,0.75\n");
  Result<CleaningProfile> profile = ReadProfileCsv(&in);
  ASSERT_TRUE(profile.ok()) << profile.status();
  EXPECT_EQ(profile->costs, (std::vector<int64_t>{2, 5}));
  EXPECT_DOUBLE_EQ(profile->sc_probs[0], 0.75);
  EXPECT_DOUBLE_EQ(profile->sc_probs[1], 0.25);
}

TEST(ProfileIo, RejectsDuplicateRows) {
  std::istringstream in(
      "xtuple,cost,sc_prob\n"
      "0,2,0.75\n"
      "0,3,0.5\n");
  EXPECT_FALSE(ReadProfileCsv(&in).ok());
}

TEST(ProfileIo, RejectsGaps) {
  std::istringstream in(
      "xtuple,cost,sc_prob\n"
      "0,2,0.75\n"
      "2,3,0.5\n");
  EXPECT_FALSE(ReadProfileCsv(&in).ok());
}

TEST(ProfileIo, RejectsInvalidValues) {
  std::istringstream in(
      "xtuple,cost,sc_prob\n"
      "0,0,0.75\n");  // cost must be >= 1
  EXPECT_FALSE(ReadProfileCsv(&in).ok());
  std::istringstream in2(
      "xtuple,cost,sc_prob\n"
      "0,1,1.75\n");  // sc-prob must be <= 1
  EXPECT_FALSE(ReadProfileCsv(&in2).ok());
  std::istringstream in3(
      "xtuple,cost,sc_prob\n"
      "-1,1,0.5\n");
  EXPECT_FALSE(ReadProfileCsv(&in3).ok());
}

TEST(ProfileIo, RejectsMissingHeaderAndBadShape) {
  std::istringstream in("0,2,0.75\n");
  EXPECT_FALSE(ReadProfileCsv(&in).ok());
  std::istringstream in2(
      "xtuple,cost,sc_prob\n"
      "0,2\n");
  EXPECT_FALSE(ReadProfileCsv(&in2).ok());
}

TEST(ProfileIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/uclean_profile_test.csv";
  Result<CleaningProfile> profile = GenerateCleaningProfile(10);
  ASSERT_TRUE(WriteProfileCsvFile(*profile, path).ok());
  Result<CleaningProfile> loaded = ReadProfileCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->costs, profile->costs);
  std::remove(path.c_str());
  EXPECT_EQ(ReadProfileCsvFile(path).status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace uclean
