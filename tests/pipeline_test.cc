// Pipelined-vs-serial equivalence for the async probe pipeline
// (clean/pipeline.h + the draw/commit split in clean/agent.h):
//
//  * a full pipelined campaign (probe batches on workers, overlapped with
//    planning) must leave every session's quality, probe log, overlay
//    outcomes and Rng ENGINE STATE bitwise equal to the serial loop,
//  * under seeded shuffles of batch COMPLETION order (per-session latency
//    jitter permutes which batch finishes first -- the schedule the
//    determinism claim must be independent of),
//  * and the draw/commit split itself must consume exactly the random
//    stream the inline ExecutePlan forms consume.
//
// The pipelined arms run on a real multi-thread executor, so this test is
// also the TSan workload for the async probe path (CI runs it under
// -fsanitize=thread).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "clean/agent.h"
#include "clean/pipeline.h"
#include "clean/session_pool.h"
#include "common/rng.h"
#include "model/database.h"
#include "rank/psr.h"
#include "workload/cleaning_profile_gen.h"
#include "workload/synthetic.h"

namespace uclean {
namespace {

using std::chrono::microseconds;

constexpr uint64_t kRngBase = 1000;

KLadder MakeLadder(std::vector<size_t> ks) {
  Result<KLadder> ladder = KLadder::Of(std::move(ks));
  UCLEAN_CHECK(ladder.ok());
  return std::move(ladder).value();
}

ProbabilisticDatabase MakeDb(size_t xtuples = 600) {
  SyntheticOptions opts;
  opts.num_xtuples = xtuples;
  opts.tuples_per_xtuple = 5;
  opts.real_mass_min = 0.7;  // sub-unit masses: null outcomes occur too
  opts.real_mass_max = 1.0;
  opts.seed = 20260728;
  Result<ProbabilisticDatabase> db = GenerateSynthetic(opts);
  UCLEAN_CHECK(db.ok());
  return std::move(db).value();
}

CleaningProfile MakeProfile(size_t xtuples) {
  CleaningProfileOptions opts;
  opts.sc_pdf = ScPdf::Uniform(0.2, 0.9);  // several attempts per success
  opts.seed = 77;
  Result<CleaningProfile> profile = GenerateCleaningProfile(xtuples, opts);
  UCLEAN_CHECK(profile.ok());
  return std::move(profile).value();
}

/// Everything a campaign leaves behind that the equivalence claim covers.
struct CampaignResult {
  PipelineReport report;
  /// quality[s][rung] read back from the pool after the run.
  std::vector<std::vector<double>> quality;
  /// Each session's overlay outcome record (xtuple, resolved id), order
  /// included.
  std::vector<std::vector<std::pair<XTupleId, TupleId>>> outcomes;
  /// Final Rng engine states -- the strictest stream fingerprint: equal
  /// engines mean the two runs drew EXACTLY the same randomness.
  std::vector<std::mt19937_64> engines;
};

CampaignResult RunCampaign(const ProbabilisticDatabase& db,
                           const KLadder& ladder,
                           const CleaningProfile& profile, size_t sessions,
                           int64_t budget, size_t threads, bool overlap,
                           std::vector<microseconds> jitter = {},
                           FaultOptions fault = {}) {
  SessionPool::Options pool_options;
  pool_options.exec.num_threads = threads;
  Result<SessionPool> pool =
      SessionPool::Create(ProbabilisticDatabase(db), ladder, pool_options);
  UCLEAN_CHECK(pool.ok());

  std::vector<SessionPool::SessionId> ids;
  std::vector<Rng> rngs;
  for (size_t s = 0; s < sessions; ++s) {
    ids.push_back(pool->OpenSession());
    rngs.emplace_back(kRngBase + s);
  }

  PipelineOptions options;
  options.overlap = overlap;
  options.max_rounds = 4;
  options.session_latency_jitter = std::move(jitter);
  options.fault = fault;
  Result<PipelineReport> report =
      RunPipelinedCleaning(&*pool, ids, profile, budget, &rngs, options);
  UCLEAN_CHECK(report.ok());

  CampaignResult result;
  result.report = std::move(report).value();
  for (size_t s = 0; s < sessions; ++s) {
    std::vector<double> quality;
    for (size_t rung = 0; rung < pool->num_rungs(); ++rung) {
      quality.push_back(pool->quality(ids[s], rung));
    }
    result.quality.push_back(std::move(quality));
    result.outcomes.push_back(pool->overlay(ids[s]).outcomes());
    result.engines.push_back(rngs[s].engine());
  }
  return result;
}

/// The equivalence oracle: every observable of `a` and `b` must be
/// BITWISE equal (exact ==, not a tolerance -- both runs must execute the
/// same arithmetic on the same operands in the same order).
void ExpectCampaignsIdentical(const CampaignResult& a,
                              const CampaignResult& b) {
  EXPECT_EQ(a.report.rounds, b.report.rounds);
  ASSERT_EQ(a.report.sessions.size(), b.report.sessions.size());
  for (size_t s = 0; s < a.report.sessions.size(); ++s) {
    SCOPED_TRACE("session " + std::to_string(s));
    const PipelineSessionReport& sa = a.report.sessions[s];
    const PipelineSessionReport& sb = b.report.sessions[s];
    EXPECT_EQ(sa.spent, sb.spent);
    EXPECT_EQ(sa.leftover, sb.leftover);
    EXPECT_EQ(sa.successes, sb.successes);
    EXPECT_EQ(sa.rounds, sb.rounds);
    EXPECT_EQ(sa.log, sb.log);
    EXPECT_TRUE(sa.faults == sb.faults)
        << "session " << s << " recorded different fault counters";
    ASSERT_EQ(sa.final_quality.size(), sb.final_quality.size());
    for (size_t rung = 0; rung < sa.final_quality.size(); ++rung) {
      EXPECT_EQ(sa.final_quality[rung], sb.final_quality[rung]);
    }
    EXPECT_EQ(a.quality[s], b.quality[s]);
    EXPECT_EQ(a.outcomes[s], b.outcomes[s]);
    EXPECT_TRUE(a.engines[s] == b.engines[s])
        << "session " << s << " drew a different random stream";
  }
}

TEST(PipelineTest, PipelinedMatchesSerialSameExecutor) {
  const ProbabilisticDatabase db = MakeDb();
  const KLadder ladder = MakeLadder({5, 20});
  const CleaningProfile profile = MakeProfile(db.num_xtuples());
  // Same 4-thread executor both arms: the only difference is WHERE the
  // probe loops run, so every observable must be bitwise equal.
  CampaignResult serial =
      RunCampaign(db, ladder, profile, 6, 60, 4, /*overlap=*/false);
  CampaignResult pipelined =
      RunCampaign(db, ladder, profile, 6, 60, 4, /*overlap=*/true);
  ExpectCampaignsIdentical(serial, pipelined);
  // The campaign must have actually cleaned something, or the test
  // compares two no-ops.
  EXPECT_GT(pipelined.report.rounds, 0u);
  EXPECT_GT(pipelined.report.sessions[0].spent, 0);
}

TEST(PipelineTest, PipelinedMatchesSequentialReference) {
  const ProbabilisticDatabase db = MakeDb();
  const KLadder ladder = MakeLadder({5, 20});
  const CleaningProfile profile = MakeProfile(db.num_xtuples());
  // Strictly sequential reference (1 thread, inline draws) vs the full
  // pipelined path: the sharded-scan grid keeps even cross-thread-count
  // state bitwise equal.
  CampaignResult reference =
      RunCampaign(db, ladder, profile, 6, 60, 1, /*overlap=*/false);
  CampaignResult pipelined =
      RunCampaign(db, ladder, profile, 6, 60, 4, /*overlap=*/true);
  ExpectCampaignsIdentical(reference, pipelined);
}

TEST(PipelineTest, CompletionOrderShufflesAreInvisible) {
  const ProbabilisticDatabase db = MakeDb(300);
  const KLadder ladder = MakeLadder({10});
  const CleaningProfile profile = MakeProfile(db.num_xtuples());
  const size_t sessions = 5;
  const CampaignResult reference =
      RunCampaign(db, ladder, profile, sessions, 40, 4, /*overlap=*/false);

  // Seeded shuffles of per-session latency permute which batch COMPLETES
  // first (the last-submitted batch can finish long before the first);
  // no schedule may leak into any session's state.
  std::vector<microseconds> jitter;
  for (size_t s = 0; s < sessions; ++s) {
    jitter.push_back(microseconds(150 * s));
  }
  for (uint32_t trial = 0; trial < 4; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    std::mt19937 shuffle_rng(trial);
    std::shuffle(jitter.begin(), jitter.end(), shuffle_rng);
    CampaignResult shuffled = RunCampaign(db, ladder, profile, sessions, 40,
                                          4, /*overlap=*/true, jitter);
    ExpectCampaignsIdentical(reference, shuffled);
  }
}

FaultOptions TransientFaults(double fail_rate) {
  FaultOptions fault;
  fault.enabled = true;
  fault.profile.fail_rate = fail_rate;
  fault.seed = 4242;
  return fault;
}

TEST(PipelineTest, FaultedPipelinedMatchesSerial) {
  // The determinism keystone under load: at a 20% transient-failure rate
  // the per-session injectors (seeded fault.seed + s) draw, retry and
  // trip breakers identically whether probe batches run inline or
  // overlapped on workers -- fault counters included.
  const ProbabilisticDatabase db = MakeDb();
  const KLadder ladder = MakeLadder({5, 20});
  const CleaningProfile profile = MakeProfile(db.num_xtuples());
  CampaignResult serial = RunCampaign(db, ladder, profile, 6, 60, 4,
                                      /*overlap=*/false, {},
                                      TransientFaults(0.2));
  CampaignResult pipelined = RunCampaign(db, ladder, profile, 6, 60, 4,
                                         /*overlap=*/true, {},
                                         TransientFaults(0.2));
  ExpectCampaignsIdentical(serial, pipelined);
  // The faulted regime must actually have faulted (and recovered), or
  // this is the fault-free test again.
  FaultStats total;
  for (const PipelineSessionReport& session : pipelined.report.sessions) {
    total += session.faults;
  }
  EXPECT_GT(total.FaultedAttempts(), 0);
  EXPECT_GT(pipelined.report.sessions[0].spent, 0);
}

TEST(PipelineTest, FaultedCompletionOrderShufflesAreInvisible) {
  // Faults + completion-order shuffles together: latency jitter permutes
  // which batch finishes first, but each session's fault stream is its
  // own (consumed in plan order), so no schedule can leak in.
  const ProbabilisticDatabase db = MakeDb(300);
  const KLadder ladder = MakeLadder({10});
  const CleaningProfile profile = MakeProfile(db.num_xtuples());
  const size_t sessions = 5;
  const CampaignResult reference =
      RunCampaign(db, ladder, profile, sessions, 40, 4, /*overlap=*/false,
                  {}, TransientFaults(0.2));

  std::vector<microseconds> jitter;
  for (size_t s = 0; s < sessions; ++s) {
    jitter.push_back(microseconds(150 * s));
  }
  for (uint32_t trial = 0; trial < 3; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    std::mt19937 shuffle_rng(trial);
    std::shuffle(jitter.begin(), jitter.end(), shuffle_rng);
    CampaignResult shuffled =
        RunCampaign(db, ladder, profile, sessions, 40, 4, /*overlap=*/true,
                    jitter, TransientFaults(0.2));
    ExpectCampaignsIdentical(reference, shuffled);
  }
}

TEST(PipelineTest, FaultRate0MatchesFaultFree) {
  // Enabling the fault layer at rate 0 must not change one bit of the
  // campaign: zero-probability draws never consume the fault engine.
  const ProbabilisticDatabase db = MakeDb(300);
  const KLadder ladder = MakeLadder({10});
  const CleaningProfile profile = MakeProfile(db.num_xtuples());
  CampaignResult off =
      RunCampaign(db, ladder, profile, 4, 40, 4, /*overlap=*/true);
  CampaignResult rate0 = RunCampaign(db, ladder, profile, 4, 40, 4,
                                     /*overlap=*/true, {},
                                     TransientFaults(0.0));
  ExpectCampaignsIdentical(off, rate0);
  for (const PipelineSessionReport& session : rate0.report.sessions) {
    EXPECT_TRUE(session.faults == FaultStats());
  }
}

TEST(PipelineTest, DrawCommitMatchesInlineExecutePlan) {
  const ProbabilisticDatabase db = MakeDb(200);
  const KLadder ladder = MakeLadder({8});
  const CleaningProfile profile = MakeProfile(db.num_xtuples());
  Result<SessionPool> pool =
      SessionPool::Create(ProbabilisticDatabase(db), ladder);
  ASSERT_TRUE(pool.ok());
  const SessionPool::SessionId inline_id = pool->OpenSession();
  const SessionPool::SessionId split_id = pool->OpenSession();

  // A plan probing a spread of x-tuples a few times each.
  std::vector<int64_t> probes(db.num_xtuples(), 0);
  for (size_t l = 0; l < probes.size(); l += 7) probes[l] = 2;

  Rng inline_rng(42), split_rng(42);
  Result<SessionExecutionReport> executed =
      ExecutePlan(&*pool, inline_id, profile, probes, &inline_rng);
  ASSERT_TRUE(executed.ok());

  Result<ProbeDraws> draws =
      DrawProbes(pool->overlay(split_id), profile, probes, &split_rng);
  ASSERT_TRUE(draws.ok());
  // The draw phase is pure: nothing applied yet, session still clean.
  EXPECT_EQ(pool->overlay(split_id).num_outcomes(), 0u);
  EXPECT_FALSE(pool->dirty(split_id));
  ASSERT_TRUE(CommitProbeDraws(&*pool, split_id, *draws).ok());

  EXPECT_EQ(executed->spent, draws->report.spent);
  EXPECT_EQ(executed->leftover, draws->report.leftover);
  EXPECT_EQ(executed->successes, draws->report.successes);
  EXPECT_EQ(executed->log, draws->report.log);
  EXPECT_TRUE(inline_rng.engine() == split_rng.engine());
  EXPECT_EQ(pool->overlay(inline_id).outcomes(),
            pool->overlay(split_id).outcomes());
}

TEST(PipelineTest, ProbeBatchFutureSemantics) {
  const ProbabilisticDatabase db = MakeDb(150);
  const KLadder ladder = MakeLadder({5});
  const CleaningProfile profile = MakeProfile(db.num_xtuples());
  SessionPool::Options pool_options;
  pool_options.exec.num_threads = 2;
  Result<SessionPool> pool =
      SessionPool::Create(ProbabilisticDatabase(db), ladder, pool_options);
  ASSERT_TRUE(pool.ok());
  const SessionPool::SessionId id = pool->OpenSession();

  std::vector<int64_t> probes(db.num_xtuples(), 0);
  probes[0] = probes[3] = 3;
  Rng rng(7);
  ProbeOptions slow;
  slow.latency = microseconds(200);
  Result<ProbeBatch> batch = SubmitProbes(*pool, id, profile, probes, &rng,
                                          slow, pool->exec().pool.get());
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(batch->valid());

  // Wait() is idempotent and returns the same draws.
  const Result<ProbeDraws>& first = batch->Wait();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(batch->done());
  EXPECT_GT(first->report.spent, 0);
  const Result<ProbeDraws>& second = batch->Wait();
  EXPECT_EQ(&first, &second);

  // Take() hands the draws out and invalidates the batch.
  Result<ProbeDraws> taken = batch->Take();
  ASSERT_TRUE(taken.ok());
  EXPECT_FALSE(batch->valid());
  ASSERT_TRUE(CommitProbeDraws(&*pool, id, *taken).ok());
  EXPECT_TRUE(pool->dirty(id));
  ASSERT_TRUE(pool->Refresh(id).ok());

  // A default-constructed batch is invalid.
  ProbeBatch empty;
  EXPECT_FALSE(empty.valid());
}

TEST(PipelineTest, ValidationErrors) {
  const ProbabilisticDatabase db = MakeDb(100);
  const KLadder ladder = MakeLadder({5});
  const CleaningProfile profile = MakeProfile(db.num_xtuples());
  Result<SessionPool> pool =
      SessionPool::Create(ProbabilisticDatabase(db), ladder);
  ASSERT_TRUE(pool.ok());
  const SessionPool::SessionId id = pool->OpenSession();
  std::vector<SessionPool::SessionId> ids = {id};
  std::vector<int64_t> probes(db.num_xtuples(), 0);
  Rng rng(1);

  // SubmitProbes: closed session / size mismatch / null rng.
  EXPECT_FALSE(
      SubmitProbes(*pool, id + 17, profile, probes, &rng, {}, nullptr).ok());
  EXPECT_FALSE(SubmitProbes(*pool, id, profile, {1, 2, 3}, &rng, {}, nullptr)
                   .ok());
  EXPECT_FALSE(SubmitProbes(*pool, id, profile, probes, nullptr, {}, nullptr)
                   .ok());

  // RunPipelinedCleaning: null pool, rng arity, dirty session.
  std::vector<Rng> rngs;
  rngs.emplace_back(1);
  PipelineOptions options;
  EXPECT_FALSE(
      RunPipelinedCleaning(nullptr, ids, profile, 10, &rngs, options).ok());
  std::vector<Rng> wrong_arity;
  EXPECT_FALSE(
      RunPipelinedCleaning(&*pool, ids, profile, 10, &wrong_arity, options)
          .ok());
  const auto& members = pool->overlay(id).base().xtuple_members(0);
  ASSERT_TRUE(
      pool->ApplyCleanOutcome(id, 0, pool->base().tuple(members[0]).id)
          .ok());
  Result<PipelineReport> dirty_run =
      RunPipelinedCleaning(&*pool, ids, profile, 10, &rngs, options);
  EXPECT_FALSE(dirty_run.ok());
  EXPECT_EQ(dirty_run.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace uclean
