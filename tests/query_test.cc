// Unit tests for the three probabilistic top-k query semantics, validated
// against brute-force possible-world evaluation.

#include "query/topk_queries.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "model/paper_example.h"
#include "pworld/world_iterator.h"
#include "rank/psr.h"
#include "tests/test_util.h"

namespace uclean {
namespace {

struct BruteForceInfo {
  std::vector<std::vector<double>> rho;  // [tuple][h-1]
  std::vector<double> topk;              // [tuple]
};

BruteForceInfo BruteForce(const ProbabilisticDatabase& db, size_t k) {
  BruteForceInfo info;
  info.rho.assign(db.num_tuples(), std::vector<double>(k, 0.0));
  info.topk.assign(db.num_tuples(), 0.0);
  for (PossibleWorldIterator it(db); !it.Done(); it.Next()) {
    const auto topk = DeterministicTopK(it.chosen_rank_indices(), k);
    for (size_t h = 0; h < topk.size(); ++h) {
      info.rho[topk[h]][h] += it.probability();
      info.topk[topk[h]] += it.probability();
    }
  }
  return info;
}

TEST(UkRanks, MatchesBruteForceOnUdb1) {
  ProbabilisticDatabase db = MakeUdb1();
  const size_t k = 3;
  Result<PsrOutput> psr = ScanPsr(db, k);
  ASSERT_TRUE(psr.ok());
  UkRanksAnswer answer = EvaluateUkRanks(db, *psr);
  const BruteForceInfo truth = BruteForce(db, k);

  ASSERT_EQ(answer.per_rank.size(), k);
  for (size_t h = 1; h <= k; ++h) {
    // Find the real tuple with the highest brute-force rank-h probability.
    double best = -1.0;
    for (size_t i = 0; i < db.num_tuples(); ++i) {
      if (!db.tuple(i).is_null) best = std::max(best, truth.rho[i][h - 1]);
    }
    EXPECT_NEAR(answer.per_rank[h - 1].probability, best, 1e-10);
    ASSERT_GE(answer.per_rank[h - 1].rank_index, 0);
    EXPECT_NEAR(truth.rho[answer.per_rank[h - 1].rank_index][h - 1], best,
                1e-10);
  }
}

TEST(Ptk, MatchesBruteForceThresholding) {
  Rng rng(9001);
  RandomDbOptions opts;
  opts.num_xtuples = 5;
  opts.max_alternatives = 3;
  for (int trial = 0; trial < 10; ++trial) {
    ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
    const size_t k = 2;
    Result<PsrOutput> psr = ScanPsr(db, k);
    ASSERT_TRUE(psr.ok());
    const BruteForceInfo truth = BruteForce(db, k);
    for (double threshold : {0.05, 0.3, 0.7}) {
      Result<PtkAnswer> answer = EvaluatePtk(db, *psr, threshold);
      ASSERT_TRUE(answer.ok());
      std::vector<TupleId> got;
      for (const AnswerEntry& e : answer->tuples) got.push_back(e.tuple_id);
      std::vector<TupleId> expected;
      for (size_t i = 0; i < db.num_tuples(); ++i) {
        // Mirror the implementation's >= comparison; random probabilities
        // never tie the threshold exactly.
        if (!db.tuple(i).is_null && truth.topk[i] >= threshold) {
          expected.push_back(db.tuple(i).id);
        }
      }
      std::sort(got.begin(), got.end());
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(got, expected) << "threshold " << threshold;
    }
  }
}

TEST(Ptk, RejectsBadThreshold) {
  ProbabilisticDatabase db = MakeUdb1();
  Result<PsrOutput> psr = ScanPsr(db, 2);
  ASSERT_TRUE(psr.ok());
  EXPECT_FALSE(EvaluatePtk(db, *psr, 0.0).ok());
  EXPECT_FALSE(EvaluatePtk(db, *psr, -0.5).ok());
  EXPECT_FALSE(EvaluatePtk(db, *psr, 1.5).ok());
  EXPECT_TRUE(EvaluatePtk(db, *psr, 1.0).ok());
}

TEST(Ptk, AnswersAreRankOrdered) {
  ProbabilisticDatabase db = MakeUdb1();
  Result<PsrOutput> psr = ScanPsr(db, 2);
  ASSERT_TRUE(psr.ok());
  Result<PtkAnswer> answer = EvaluatePtk(db, *psr, 0.1);
  ASSERT_TRUE(answer.ok());
  for (size_t j = 0; j + 1 < answer->tuples.size(); ++j) {
    EXPECT_LT(answer->tuples[j].rank_index, answer->tuples[j + 1].rank_index);
  }
}

TEST(GlobalTopk, ReturnsKHighestTopkProbabilities) {
  Rng rng(4242);
  RandomDbOptions opts;
  opts.num_xtuples = 6;
  opts.max_alternatives = 3;
  for (int trial = 0; trial < 10; ++trial) {
    ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
    const size_t k = 3;
    Result<PsrOutput> psr = ScanPsr(db, k);
    ASSERT_TRUE(psr.ok());
    GlobalTopkAnswer answer = EvaluateGlobalTopk(db, *psr);
    const BruteForceInfo truth = BruteForce(db, k);

    ASSERT_LE(answer.tuples.size(), k);
    // Answers are sorted by descending top-k probability...
    for (size_t j = 0; j + 1 < answer.tuples.size(); ++j) {
      EXPECT_GE(answer.tuples[j].probability,
                answer.tuples[j + 1].probability - 1e-12);
    }
    // ... and no excluded real tuple beats the weakest answer.
    if (!answer.tuples.empty()) {
      const double weakest = answer.tuples.back().probability;
      std::vector<bool> included(db.num_tuples(), false);
      for (const AnswerEntry& e : answer.tuples) included[e.rank_index] = true;
      for (size_t i = 0; i < db.num_tuples(); ++i) {
        if (!db.tuple(i).is_null && !included[i]) {
          EXPECT_LE(truth.topk[i], weakest + 1e-9);
        }
      }
    }
  }
}

TEST(GlobalTopk, TieBreaksTowardHigherRank) {
  // Two certain tuples have identical top-k probability 1 for k = 2; the
  // higher-ranked one must come first.
  DatabaseBuilder b;
  XTupleId x0 = b.AddXTuple();
  XTupleId x1 = b.AddXTuple();
  ASSERT_TRUE(b.AddAlternative(x0, 0, 10.0, 1.0).ok());
  ASSERT_TRUE(b.AddAlternative(x1, 1, 20.0, 1.0).ok());
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());
  Result<PsrOutput> psr = ScanPsr(*db, 2);
  ASSERT_TRUE(psr.ok());
  GlobalTopkAnswer answer = EvaluateGlobalTopk(*db, *psr);
  ASSERT_EQ(answer.tuples.size(), 2u);
  EXPECT_EQ(answer.tuples[0].tuple_id, 1);  // score 20 ranks first
  EXPECT_EQ(answer.tuples[1].tuple_id, 0);
}

TEST(Queries, NullTuplesNeverAppearInAnswers) {
  // An x-tuple with tiny mass: its null alternative has a huge top-k
  // probability but must never be returned.
  DatabaseBuilder b;
  XTupleId x0 = b.AddXTuple();
  ASSERT_TRUE(b.AddAlternative(x0, 0, 10.0, 0.05).ok());
  XTupleId x1 = b.AddXTuple();
  ASSERT_TRUE(b.AddAlternative(x1, 1, 5.0, 0.5).ok());
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());
  Result<PsrOutput> psr = ScanPsr(*db, 2);
  ASSERT_TRUE(psr.ok());

  UkRanksAnswer uk = EvaluateUkRanks(*db, *psr);
  for (const AnswerEntry& e : uk.per_rank) {
    if (e.rank_index >= 0) {
      EXPECT_FALSE(db->tuple(e.rank_index).is_null);
    }
  }
  Result<PtkAnswer> ptk = EvaluatePtk(*db, *psr, 0.01);
  ASSERT_TRUE(ptk.ok());
  for (const AnswerEntry& e : ptk->tuples) {
    EXPECT_FALSE(db->tuple(e.rank_index).is_null);
  }
  GlobalTopkAnswer gt = EvaluateGlobalTopk(*db, *psr);
  for (const AnswerEntry& e : gt.tuples) {
    EXPECT_FALSE(db->tuple(e.rank_index).is_null);
  }
}

TEST(AnswerToString, FormatsSetNotation) {
  ProbabilisticDatabase db = MakeUdb1();
  Result<PsrOutput> psr = ScanPsr(db, 2);
  ASSERT_TRUE(psr.ok());
  Result<PtkAnswer> answer = EvaluatePtk(db, *psr, 0.4);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(AnswerToString(db, answer->tuples), "{t1, t2, t5}");
}

}  // namespace
}  // namespace uclean
