// Tests for the extension module: U-Topk, expected ranks, the Monte-Carlo
// quality estimator, and range/max-query quality -- each validated against
// a brute-force possible-world oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/entropy_math.h"
#include "common/rng.h"
#include "extend/expected_rank.h"
#include "extend/monte_carlo.h"
#include "extend/range_max_quality.h"
#include "extend/utopk.h"
#include "model/paper_example.h"
#include "pworld/pw_quality.h"
#include "pworld/world_iterator.h"
#include "quality/tp.h"
#include "tests/test_util.h"

namespace uclean {
namespace {

TEST(UTopk, FindsMostProbableSequenceOnUdb1) {
  ProbabilisticDatabase db = MakeUdb1();
  Result<UTopkAnswer> answer = EvaluateUTopk(db, 2, /*top_results=*/7);
  ASSERT_TRUE(answer.ok());
  // Figure 2: (t1, t2) has the highest probability, 0.28.
  EXPECT_NEAR(answer->best.probability, 0.28, 1e-12);
  EXPECT_EQ(PwResultToString(db, answer->best.result), "(t1, t2)");
  EXPECT_EQ(answer->num_results, 7u);
  ASSERT_EQ(answer->top.size(), 7u);
  // The list is sorted by descending probability.
  for (size_t j = 0; j + 1 < answer->top.size(); ++j) {
    EXPECT_GE(answer->top[j].probability,
              answer->top[j + 1].probability - 1e-15);
  }
  // Quality equals the PWS-quality of the same query.
  EXPECT_NEAR(answer->quality, -2.551326, 1e-5);
}

TEST(UTopk, MatchesBruteForceArgmax) {
  Rng rng(321);
  RandomDbOptions opts;
  opts.num_xtuples = 5;
  opts.max_alternatives = 3;
  for (int trial = 0; trial < 10; ++trial) {
    ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
    for (size_t k : {1u, 2u, 3u}) {
      Result<UTopkAnswer> answer = EvaluateUTopk(db, k);
      Result<PwOutput> pw = ComputePwQuality(db, k);
      ASSERT_TRUE(answer.ok() && pw.ok());
      double best = 0.0;
      for (const auto& [result, prob] : pw->results) {
        best = std::max(best, prob);
      }
      EXPECT_NEAR(answer->best.probability, best, 1e-10);
    }
  }
}

TEST(UTopk, TopResultsClampedToDistinctCount) {
  ProbabilisticDatabase db = MakeUdb2();  // 4 pw-results at k=2
  Result<UTopkAnswer> answer = EvaluateUTopk(db, 2, /*top_results=*/100);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->top.size(), 4u);
}

TEST(UTopk, InheritsPwrGuards) {
  ProbabilisticDatabase db = MakeUdb1();
  PwrOptions options;
  options.max_results = 2;
  EXPECT_EQ(EvaluateUTopk(db, 2, 1, options).status().code(),
            StatusCode::kResourceExhausted);
}

/// Brute-force expected rank per Cormode et al. (0-based rank; absent
/// tuples take the bottom rank = number of real tuples in the world).
std::vector<double> BruteForceExpectedRanks(const ProbabilisticDatabase& db) {
  std::vector<double> er(db.num_tuples(), 0.0);
  for (PossibleWorldIterator it(db); !it.Done(); it.Next()) {
    const double pr = it.probability();
    const auto& chosen = it.chosen_rank_indices();
    std::set<int32_t> present(chosen.begin(), chosen.end());
    size_t real_count = 0;
    for (int32_t idx : chosen) {
      if (!db.tuple(idx).is_null) ++real_count;
    }
    for (size_t i = 0; i < db.num_tuples(); ++i) {
      if (present.count(static_cast<int32_t>(i))) {
        size_t above = 0;
        for (int32_t idx : chosen) {
          if (idx < static_cast<int32_t>(i) && !db.tuple(idx).is_null) {
            ++above;
          }
        }
        er[i] += pr * static_cast<double>(above);
      } else {
        er[i] += pr * static_cast<double>(real_count);
      }
    }
  }
  return er;
}

TEST(ExpectedRank, MatchesBruteForceOnUdb1) {
  ProbabilisticDatabase db = MakeUdb1();
  Result<ExpectedRankOutput> out = ComputeExpectedRanks(db, 3);
  ASSERT_TRUE(out.ok());
  const std::vector<double> truth = BruteForceExpectedRanks(db);
  for (size_t i = 0; i < db.num_tuples(); ++i) {
    EXPECT_NEAR(out->expected_rank[i], truth[i], 1e-10) << "tuple " << i;
  }
}

TEST(ExpectedRank, MatchesBruteForceOnRandomDatabases) {
  Rng rng(654);
  RandomDbOptions opts;
  opts.num_xtuples = 5;
  opts.max_alternatives = 3;
  for (int trial = 0; trial < 10; ++trial) {
    ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
    Result<ExpectedRankOutput> out = ComputeExpectedRanks(db, 2);
    ASSERT_TRUE(out.ok());
    const std::vector<double> truth = BruteForceExpectedRanks(db);
    for (size_t i = 0; i < db.num_tuples(); ++i) {
      if (db.tuple(i).is_null) continue;  // nulls carry no query meaning
      ASSERT_NEAR(out->expected_rank[i], truth[i], 1e-9)
          << "trial " << trial << " tuple " << i;
    }
  }
}

TEST(ExpectedRank, TopkIsSortedAndReal) {
  ProbabilisticDatabase db = MakeUdb1();
  Result<ExpectedRankOutput> out = ComputeExpectedRanks(db, 3);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->topk.size(), 3u);
  for (size_t j = 0; j + 1 < out->topk.size(); ++j) {
    EXPECT_LE(out->topk[j].probability, out->topk[j + 1].probability + 1e-12);
  }
  for (const AnswerEntry& e : out->topk) {
    EXPECT_FALSE(db.tuple(e.rank_index).is_null);
  }
}

TEST(ExpectedRank, CertainChainIsIdentity) {
  // All-certain tuples: expected rank of the i-th best is exactly i-1.
  DatabaseBuilder b;
  for (int l = 0; l < 5; ++l) {
    XTupleId x = b.AddXTuple();
    ASSERT_TRUE(b.AddAlternative(x, l, 100.0 - l, 1.0).ok());
  }
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());
  Result<ExpectedRankOutput> out = ComputeExpectedRanks(*db, 2);
  ASSERT_TRUE(out.ok());
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(out->expected_rank[i], static_cast<double>(i), 1e-12);
  }
}

TEST(ExpectedRank, RejectsZeroK) {
  EXPECT_FALSE(ComputeExpectedRanks(MakeUdb1(), 0).ok());
}

TEST(MonteCarlo, ConvergesToExactQuality) {
  ProbabilisticDatabase db = MakeUdb1();
  Result<TpOutput> exact = ComputeTpQuality(db, 2);
  ASSERT_TRUE(exact.ok());
  MonteCarloOptions options;
  options.samples = 200000;
  options.seed = 5;
  Result<MonteCarloOutput> mc = EstimateQualityMonteCarlo(db, 2, options);
  ASSERT_TRUE(mc.ok());
  EXPECT_NEAR(mc->quality_estimate, exact->quality, 0.02);
  EXPECT_EQ(mc->distinct_results, 7u);  // enough samples to see all 7
}

TEST(MonteCarlo, MoreSamplesReduceError) {
  ProbabilisticDatabase db = MakeUdb1();
  Result<TpOutput> exact = ComputeTpQuality(db, 2);
  ASSERT_TRUE(exact.ok());
  double coarse_err = 0.0, fine_err = 0.0;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    MonteCarloOptions coarse{.samples = 500, .seed = seed};
    MonteCarloOptions fine{.samples = 50000, .seed = seed};
    coarse_err += std::fabs(
        EstimateQualityMonteCarlo(db, 2, coarse)->quality_estimate -
        exact->quality);
    fine_err += std::fabs(
        EstimateQualityMonteCarlo(db, 2, fine)->quality_estimate -
        exact->quality);
  }
  EXPECT_LT(fine_err, coarse_err);
}

TEST(MonteCarlo, DeterministicGivenSeed) {
  ProbabilisticDatabase db = MakeUdb2();
  MonteCarloOptions options{.samples = 1000, .seed = 77};
  Result<MonteCarloOutput> a = EstimateQualityMonteCarlo(db, 2, options);
  Result<MonteCarloOutput> b = EstimateQualityMonteCarlo(db, 2, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->quality_estimate, b->quality_estimate);
}

TEST(MonteCarlo, CollectsEmpiricalDistribution) {
  ProbabilisticDatabase db = MakeUdb2();
  MonteCarloOptions options{.samples = 20000, .seed = 3,
                            .collect_results = true};
  Result<MonteCarloOutput> mc = EstimateQualityMonteCarlo(db, 2, options);
  ASSERT_TRUE(mc.ok());
  Result<PwOutput> pw = ComputePwQuality(db, 2);
  ASSERT_TRUE(pw.ok());
  double total = 0.0;
  for (const auto& [result, freq] : mc->results) {
    ASSERT_TRUE(pw->results.count(result));  // never invents results
    EXPECT_NEAR(freq, pw->results.at(result), 0.02);
    total += freq;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MonteCarlo, ValidatesInputs) {
  ProbabilisticDatabase db = MakeUdb1();
  EXPECT_FALSE(EstimateQualityMonteCarlo(db, 0).ok());
  MonteCarloOptions options;
  options.samples = 0;
  EXPECT_FALSE(EstimateQualityMonteCarlo(db, 2, options).ok());
}

/// Brute-force range quality: entropy of the distribution of in-range
/// answer sets over all possible worlds.
double BruteForceRangeQuality(const ProbabilisticDatabase& db, double lo,
                              double hi) {
  std::map<std::vector<int32_t>, double> answers;
  for (PossibleWorldIterator it(db); !it.Done(); it.Next()) {
    std::vector<int32_t> answer;
    for (int32_t idx : it.chosen_rank_indices()) {
      const Tuple& t = db.tuple(idx);
      if (!t.is_null && t.score >= lo && t.score <= hi) {
        answer.push_back(idx);
      }
    }
    std::sort(answer.begin(), answer.end());
    answers[answer] += it.probability();
  }
  double quality = 0.0;
  for (const auto& [answer, prob] : answers) quality += YLog2(prob);
  return quality;
}

TEST(RangeQuality, MatchesBruteForceOnUdb1) {
  ProbabilisticDatabase db = MakeUdb1();
  for (auto [lo, hi] : std::vector<std::pair<double, double>>{
           {20.0, 26.0}, {25.0, 35.0}, {0.0, 100.0}, {90.0, 95.0}}) {
    Result<RangeQualityOutput> out = ComputeRangeQuality(db, lo, hi);
    ASSERT_TRUE(out.ok());
    EXPECT_NEAR(out->quality, BruteForceRangeQuality(db, lo, hi), 1e-10)
        << "[" << lo << ", " << hi << "]";
  }
}

TEST(RangeQuality, MatchesBruteForceOnRandomDatabases) {
  Rng rng(987);
  RandomDbOptions opts;
  opts.num_xtuples = 5;
  opts.max_alternatives = 3;
  for (int trial = 0; trial < 10; ++trial) {
    ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
    const double lo = rng.Uniform(0.0, 50.0);
    const double hi = lo + rng.Uniform(0.0, 60.0);
    Result<RangeQualityOutput> out = ComputeRangeQuality(db, lo, hi);
    ASSERT_TRUE(out.ok());
    ASSERT_NEAR(out->quality, BruteForceRangeQuality(db, lo, hi), 1e-9)
        << "trial " << trial;
  }
}

TEST(RangeQuality, EmptyRangeIsCertain) {
  ProbabilisticDatabase db = MakeUdb1();
  Result<RangeQualityOutput> out = ComputeRangeQuality(db, 500.0, 600.0);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->quality, 0.0);
  EXPECT_EQ(out->tuples_in_range, 0u);
}

TEST(RangeQuality, RejectsInvertedRange) {
  EXPECT_FALSE(ComputeRangeQuality(MakeUdb1(), 5.0, 1.0).ok());
}

TEST(RangeQuality, PerXTupleEntropiesSumToQuality) {
  ProbabilisticDatabase db = MakeUdb1();
  Result<RangeQualityOutput> out = ComputeRangeQuality(db, 20.0, 30.0);
  ASSERT_TRUE(out.ok());
  double total = 0.0;
  for (double h : out->xtuple_entropy) total -= h;
  EXPECT_NEAR(total, out->quality, 1e-12);
}

TEST(MaxQuality, MatchesTopOneBruteForce) {
  Rng rng(246);
  RandomDbOptions opts;
  opts.num_xtuples = 5;
  for (int trial = 0; trial < 10; ++trial) {
    ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
    Result<double> max_quality = ComputeMaxQuality(db);
    Result<PwOutput> pw = ComputePwQuality(db, 1);
    ASSERT_TRUE(max_quality.ok() && pw.ok());
    EXPECT_NEAR(*max_quality, pw->quality, 1e-9);
  }
}

}  // namespace
}  // namespace uclean
