// End-to-end integration test of the uclean_cli binary: drives every
// subcommand through a scratch directory and checks exit codes, output
// artifacts, and that the artifacts round-trip through the library.
//
// The binary path is injected by CMake as UCLEAN_CLI_PATH.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "clean/profile_io.h"
#include "model/csv_io.h"

namespace uclean {
namespace {

#ifndef UCLEAN_CLI_PATH
#define UCLEAN_CLI_PATH ""
#endif

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cli_ = UCLEAN_CLI_PATH;
    ASSERT_FALSE(cli_.empty()) << "UCLEAN_CLI_PATH not configured";
    dir_ = ::testing::TempDir() + "/uclean_cli_test";
    std::string mkdir = "mkdir -p " + dir_;
    ASSERT_EQ(std::system(mkdir.c_str()), 0);
  }

  /// Runs the CLI with `args`, returns its exit code; stdout goes to
  /// `capture` when non-null.
  int Run(const std::string& args, std::string* capture = nullptr) {
    const std::string out_file = dir_ + "/stdout.txt";
    const std::string command =
        cli_ + " " + args + " > " + out_file + " 2>&1";
    const int raw = std::system(command.c_str());
    if (capture != nullptr) {
      std::ifstream in(out_file);
      capture->assign(std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>());
    }
    return WEXITSTATUS(raw);
  }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string cli_;
  std::string dir_;
};

TEST_F(CliTest, HelpAndUnknownCommand) {
  std::string out;
  EXPECT_EQ(Run("help", &out), 0);
  EXPECT_NE(out.find("usage:"), std::string::npos);
  EXPECT_NE(Run("frobnicate"), 0);
  EXPECT_NE(Run(""), 0);
}

TEST_F(CliTest, FullWorkflow) {
  std::string out;

  // generate
  ASSERT_EQ(Run("generate --type synthetic --xtuples 120 --out " +
                    Path("db.csv") + " --seed 5",
                &out),
            0)
      << out;
  Result<ProbabilisticDatabase> db = ReadDatabaseCsvFile(Path("db.csv"));
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_xtuples(), 120u);

  // profile
  ASSERT_EQ(Run("profile --xtuples 120 --out " + Path("profile.csv"), &out),
            0)
      << out;
  Result<CleaningProfile> profile = ReadProfileCsvFile(Path("profile.csv"));
  ASSERT_TRUE(profile.ok());
  EXPECT_TRUE(profile->Validate(120).ok());

  // inspect
  ASSERT_EQ(Run("inspect --db " + Path("db.csv") + " --rows 3", &out), 0);
  EXPECT_NE(out.find("120 x-tuples"), std::string::npos);

  // query
  ASSERT_EQ(Run("query --db " + Path("db.csv") + " --k 5 --semantics all",
                &out),
            0);
  EXPECT_NE(out.find("PT-5"), std::string::npos);
  EXPECT_NE(out.find("U-kRanks"), std::string::npos);
  EXPECT_NE(out.find("Global-topk"), std::string::npos);

  // quality, all four algorithms (pw is feasible: guard on world count
  // would reject, so use mc/tp/pwr only at this size plus pw on a smaller
  // database below)
  for (const char* algo : {"tp", "pwr", "mc"}) {
    ASSERT_EQ(Run("quality --db " + Path("db.csv") +
                      " --k 3 --algo " + algo + " --samples 2000",
                  &out),
              0)
        << algo << ": " << out;
    EXPECT_NE(out.find("PWS-quality"), std::string::npos);
  }

  // plan
  ASSERT_EQ(Run("plan --db " + Path("db.csv") + " --profile " +
                    Path("profile.csv") + " --k 5 --budget 20",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("DP plan"), std::string::npos);

  // clean (one-shot + adaptive)
  ASSERT_EQ(Run("clean --db " + Path("db.csv") + " --profile " +
                    Path("profile.csv") +
                    " --k 5 --budget 20 --out " + Path("cleaned.csv") +
                    " --seed 3",
                &out),
            0)
      << out;
  Result<ProbabilisticDatabase> cleaned =
      ReadDatabaseCsvFile(Path("cleaned.csv"));
  ASSERT_TRUE(cleaned.ok());
  EXPECT_EQ(cleaned->num_xtuples(), 120u);

  ASSERT_EQ(Run("clean --db " + Path("db.csv") + " --profile " +
                    Path("profile.csv") +
                    " --k 5 --budget 20 --adaptive --out " +
                    Path("cleaned2.csv"),
                &out),
            0)
      << out;
  EXPECT_NE(out.find("adaptive cleaning"), std::string::npos);

  // target
  ASSERT_EQ(Run("target --db " + Path("db.csv") + " --profile " +
                    Path("profile.csv") + " --k 5 --target -1.0",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("minimal budget"), std::string::npos);

  // clean --adaptive --sessions N: pooled sessions over one shared scan.
  ASSERT_EQ(Run("clean --db " + Path("db.csv") + " --profile " +
                    Path("profile.csv") +
                    " --k 5 --budget 20 --adaptive --sessions 3 --out " +
                    Path("cleaned3.csv") + " --seed 3",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("session pool: 3 adaptive sessions"),
            std::string::npos);
  EXPECT_NE(out.find("session 2:"), std::string::npos);
  Result<ProbabilisticDatabase> pooled =
      ReadDatabaseCsvFile(Path("cleaned3.csv"));
  ASSERT_TRUE(pooled.ok());
  EXPECT_EQ(pooled->num_xtuples(), 120u);

  // --pipeline overlaps probe batches with planning; the per-session
  // lines and the merged database must be identical to the serial pool
  // run above (same seed, bitwise-equal state).
  ASSERT_EQ(Run("clean --db " + Path("db.csv") + " --profile " +
                    Path("profile.csv") +
                    " --k 5 --budget 20 --adaptive --sessions 3 "
                    "--pipeline --threads 2 --probe-latency-us 100 --out " +
                    Path("cleaned4.csv") + " --seed 3",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("--pipeline overlaps probe batches"),
            std::string::npos);
  EXPECT_NE(out.find("session pool: 3 adaptive sessions"),
            std::string::npos);
  Result<ProbabilisticDatabase> piped =
      ReadDatabaseCsvFile(Path("cleaned4.csv"));
  ASSERT_TRUE(piped.ok());
  ASSERT_EQ(piped->num_tuples(), pooled->num_tuples());
  for (size_t i = 0; i < piped->num_tuples(); ++i) {
    EXPECT_EQ(piped->tuple(i).id, pooled->tuple(i).id);
    EXPECT_EQ(piped->tuple(i).prob, pooled->tuple(i).prob);
  }
}

TEST_F(CliTest, FaultFlagsValidationAndFaultedRun) {
  std::string out;
  ASSERT_EQ(Run("generate --type synthetic --xtuples 60 --out " +
                    Path("fault_db.csv") + " --seed 9",
                &out),
            0)
      << out;
  ASSERT_EQ(Run("profile --xtuples 60 --out " + Path("fault_profile.csv"),
                &out),
            0)
      << out;
  const std::string base = "clean --db " + Path("fault_db.csv") +
                           " --profile " + Path("fault_profile.csv") +
                           " --k 5 --budget 20 --seed 3";

  // Every fault flag requires the adaptive loop...
  EXPECT_NE(Run(base + " --probe-fail-rate 0.2 --out " + Path("f.csv"),
                &out),
            0);
  EXPECT_NE(out.find("--adaptive"), std::string::npos) << out;
  // ...and each one validates its range.
  EXPECT_NE(Run(base + " --adaptive --probe-fail-rate 1.5 --out " +
                    Path("f.csv"),
                &out),
            0);
  EXPECT_NE(out.find("--probe-fail-rate"), std::string::npos) << out;
  EXPECT_NE(Run(base + " --adaptive --probe-timeout-us -1 --out " +
                    Path("f.csv"),
                &out),
            0);
  EXPECT_NE(out.find("--probe-timeout-us"), std::string::npos) << out;
  EXPECT_NE(Run(base + " --adaptive --retry-max 0 --out " + Path("f.csv"),
                &out),
            0);
  EXPECT_NE(out.find("--retry-max"), std::string::npos) << out;
  EXPECT_NE(Run(base + " --adaptive --retry-backoff-us -7 --out " +
                    Path("f.csv"),
                &out),
            0);
  EXPECT_NE(out.find("--retry-backoff-us"), std::string::npos) << out;
  EXPECT_NE(Run(base + " --adaptive --breaker-threshold 0 --out " +
                    Path("f.csv"),
                &out),
            0);
  EXPECT_NE(out.find("--breaker-threshold"), std::string::npos) << out;

  // A faulted adaptive run completes, reports its fault counters, and
  // still writes the cleaned database.
  ASSERT_EQ(Run(base + " --adaptive --probe-fail-rate 0.2 --retry-max 4 "
                    "--out " + Path("faulted.csv"),
                &out),
            0)
      << out;
  EXPECT_NE(out.find("faults:"), std::string::npos) << out;
  Result<ProbabilisticDatabase> faulted =
      ReadDatabaseCsvFile(Path("faulted.csv"));
  ASSERT_TRUE(faulted.ok());
  EXPECT_EQ(faulted->num_xtuples(), 60u);

  // Rate 0 commits the exact database the fault-free run commits: the
  // injector never draws, so the probe stream is untouched.
  ASSERT_EQ(Run(base + " --adaptive --out " + Path("plain.csv"), &out), 0)
      << out;
  ASSERT_EQ(Run(base + " --adaptive --probe-fail-rate 0 --out " +
                    Path("rate0.csv"),
                &out),
            0)
      << out;
  Result<ProbabilisticDatabase> plain = ReadDatabaseCsvFile(Path("plain.csv"));
  Result<ProbabilisticDatabase> rate0 = ReadDatabaseCsvFile(Path("rate0.csv"));
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(rate0.ok());
  ASSERT_EQ(plain->num_tuples(), rate0->num_tuples());
  for (size_t i = 0; i < plain->num_tuples(); ++i) {
    EXPECT_EQ(plain->tuple(i).id, rate0->tuple(i).id);
    EXPECT_EQ(plain->tuple(i).prob, rate0->tuple(i).prob);
  }
}

TEST_F(CliTest, KLadderParsingAndNormalization) {
  std::string out;
  ASSERT_EQ(Run("generate --type synthetic --xtuples 40 --out " +
                    Path("ladder_db.csv") + " --seed 6",
                &out),
            0);

  // Reordered/duplicated input is served normalized WITH a printed note
  // (the per-k output order would otherwise silently misattribute lines).
  ASSERT_EQ(Run("query --db " + Path("ladder_db.csv") +
                    " --k-ladder 10,5,10 --semantics ptk",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("normalized to {5, 10}"), std::string::npos);
  EXPECT_NE(out.find("k-ladder {5, 10}"), std::string::npos);
  // Already-normalized input gets no note.
  ASSERT_EQ(Run("quality --db " + Path("ladder_db.csv") + " --k-ladder 5,10",
                &out),
            0);
  EXPECT_EQ(out.find("normalized"), std::string::npos) << out;

  // Hardened parsing: trailing/doubled commas, negatives, zero and
  // values past int64 all fail with a clean error (no stoul wrapping).
  for (const char* bad : {"5,10,", "5,,10", ",5", "-3,5", "0,5",
                          "99999999999999999999999", "5,abc"}) {
    EXPECT_NE(Run("query --db " + Path("ladder_db.csv") + " --k-ladder " +
                      std::string(bad),
                  &out),
              0)
        << "accepted bad ladder '" << bad << "'";
    EXPECT_NE(out.find("k-ladder"), std::string::npos) << out;
  }

  // --sessions guards.
  ASSERT_EQ(
      Run("profile --xtuples 40 --out " + Path("ladder_profile.csv"), &out),
      0);
  EXPECT_NE(Run("clean --db " + Path("ladder_db.csv") + " --profile " +
                    Path("ladder_profile.csv") +
                    " --k 5 --budget 10 --sessions 0 --adaptive --out " +
                    Path("x.csv"),
                &out),
            0);
  EXPECT_NE(out.find("--sessions"), std::string::npos) << out;
  EXPECT_NE(Run("clean --db " + Path("ladder_db.csv") + " --profile " +
                    Path("ladder_profile.csv") +
                    " --k 5 --budget 10 --sessions 2 --out " + Path("x.csv"),
                &out),
            0);
  EXPECT_NE(out.find("--adaptive"), std::string::npos) << out;

  // --pipeline / --probe-latency-us guards: both need the adaptive
  // pooled loop, and the latency must be sane microseconds.
  EXPECT_NE(Run("clean --db " + Path("ladder_db.csv") + " --profile " +
                    Path("ladder_profile.csv") +
                    " --k 5 --budget 10 --pipeline --out " + Path("x.csv"),
                &out),
            0);
  EXPECT_NE(out.find("--adaptive"), std::string::npos) << out;
  EXPECT_NE(Run("clean --db " + Path("ladder_db.csv") + " --profile " +
                    Path("ladder_profile.csv") +
                    " --k 5 --budget 10 --adaptive --probe-latency-us 10 "
                    "--out " + Path("x.csv"),
                &out),
            0);
  EXPECT_NE(out.find("--probe-latency-us"), std::string::npos) << out;
  EXPECT_NE(Run("clean --db " + Path("ladder_db.csv") + " --profile " +
                    Path("ladder_profile.csv") +
                    " --k 5 --budget 10 --adaptive --pipeline "
                    "--probe-latency-us -5 --out " + Path("x.csv"),
                &out),
            0);
  EXPECT_NE(out.find("--probe-latency-us"), std::string::npos) << out;
}

TEST_F(CliTest, ThreadsFlagValidationAndAnnouncement) {
  std::string out;
  ASSERT_EQ(Run("generate --type synthetic --xtuples 60 --out " +
                    Path("threads_db.csv") + " --seed 9",
                &out),
            0);

  // The resolved count is always announced (like the --k-ladder
  // normalization note): `auto` picks a machine-dependent value the
  // user never typed.
  ASSERT_EQ(Run("query --db " + Path("threads_db.csv") +
                    " --k 5 --threads 2 --semantics ptk",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("--threads 2 resolved to 2 threads"), std::string::npos)
      << out;
  ASSERT_EQ(Run("quality --db " + Path("threads_db.csv") +
                    " --k 5 --threads auto",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("--threads auto resolved to"), std::string::npos) << out;

  // Parallel and sequential runs print the same quality line.
  std::string seq_out;
  ASSERT_EQ(
      Run("quality --db " + Path("threads_db.csv") + " --k 5", &seq_out), 0);
  ASSERT_EQ(Run("quality --db " + Path("threads_db.csv") +
                    " --k 5 --threads 3",
                &out),
            0);
  EXPECT_NE(out.find(seq_out), std::string::npos)
      << "parallel quality output diverged:\n" << out << "\nvs\n" << seq_out;

  // Hardened parsing: zero, negatives, garbage, and values past the
  // pool's hard cap (including int64 overflow) all fail with a pointed
  // message instead of spawning nonsense thread counts.
  for (const char* bad :
       {"0", "-3", "abc", "2.5", "1000", "99999999999999999999"}) {
    EXPECT_NE(Run("query --db " + Path("threads_db.csv") + " --k 5 " +
                      "--threads " + std::string(bad),
                  &out),
              0)
        << "accepted bad --threads '" << bad << "'";
    EXPECT_NE(out.find("--threads"), std::string::npos) << out;
  }

  // Non-TP quality algorithms have no shared-scan pipeline to shard.
  EXPECT_NE(Run("quality --db " + Path("threads_db.csv") +
                    " --k 3 --algo mc --samples 1000 --threads 2",
                &out),
            0);
  EXPECT_NE(out.find("--algo tp"), std::string::npos) << out;
}

TEST_F(CliTest, KernelFlagValidationAndAnnouncement) {
  std::string out;
  ASSERT_EQ(Run("generate --type synthetic --xtuples 60 --out " +
                    Path("kernel_db.csv") + " --seed 11",
                &out),
            0);

  // An explicit choice is announced with the concrete kernel it resolved
  // to (like --threads): `auto` picks a machine-dependent kernel the
  // user never typed.
  ASSERT_EQ(Run("query --db " + Path("kernel_db.csv") +
                    " --k 5 --kernel scalar --semantics ptk",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("--kernel scalar resolved to the scalar scan kernel"),
            std::string::npos)
      << out;
  ASSERT_EQ(Run("query --db " + Path("kernel_db.csv") +
                    " --k 5 --kernel auto --semantics ptk",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("--kernel auto resolved to the"), std::string::npos)
      << out;
  // Without the flag there is nothing to announce.
  ASSERT_EQ(Run("query --db " + Path("kernel_db.csv") +
                    " --k 5 --semantics ptk",
                &out),
            0);
  EXPECT_EQ(out.find("--kernel"), std::string::npos) << out;

  // Every kernel is bitwise equal to every other, so apart from the
  // resolution note the scalar and auto runs print identical rankings.
  std::string scalar_out;
  std::string auto_out;
  ASSERT_EQ(Run("query --db " + Path("kernel_db.csv") +
                    " --k 5 --kernel scalar --semantics all",
                &scalar_out),
            0);
  ASSERT_EQ(Run("query --db " + Path("kernel_db.csv") +
                    " --k 5 --kernel auto --semantics all",
                &auto_out),
            0);
  auto strip_note = [](std::string text) {
    const size_t pos = text.find("note: --kernel");
    if (pos == std::string::npos) return text;
    return text.erase(pos, text.find('\n', pos) + 1 - pos);
  };
  EXPECT_EQ(strip_note(scalar_out), strip_note(auto_out));

  // Bad values fail with a pointed message naming the accepted set.
  for (const char* bad : {"sse", "AVX2", "fast", ""}) {
    EXPECT_NE(Run("query --db " + Path("kernel_db.csv") + " --k 5 " +
                      "--kernel " + std::string(bad),
                  &out),
              0)
        << "accepted bad --kernel '" << bad << "'";
    EXPECT_NE(out.find("--kernel"), std::string::npos) << out;
  }

  // UCLEAN_DISABLE_AVX2 demotes `auto` to the scalar kernel (the CI
  // forced-scalar leg relies on this), but never breaks the run.
  ::setenv("UCLEAN_DISABLE_AVX2", "1", 1);
  const int forced = Run("query --db " + Path("kernel_db.csv") +
                             " --k 5 --kernel auto --semantics ptk",
                         &out);
  ::unsetenv("UCLEAN_DISABLE_AVX2");
  ASSERT_EQ(forced, 0) << out;
  EXPECT_NE(out.find("--kernel auto resolved to the scalar scan kernel"),
            std::string::npos)
      << out;

  // Non-TP quality algorithms never reach the scan pipeline, so an
  // explicit kernel choice there is a user error, not a silent no-op.
  EXPECT_NE(Run("quality --db " + Path("kernel_db.csv") +
                    " --k 3 --algo mc --samples 1000 --kernel scalar",
                &out),
            0);
  EXPECT_NE(out.find("--algo tp"), std::string::npos) << out;
  // With --algo tp the kernel choice flows into the shared scan.
  ASSERT_EQ(Run("quality --db " + Path("kernel_db.csv") +
                    " --k 3 --kernel scalar",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("--kernel scalar resolved to the scalar scan kernel"),
            std::string::npos)
      << out;
}

TEST_F(CliTest, PwQualityOnTinyDatabase) {
  std::string out;
  ASSERT_EQ(Run("generate --type synthetic --xtuples 6 --bars 3 --out " +
                    Path("tiny.csv"),
                &out),
            0);
  ASSERT_EQ(Run("quality --db " + Path("tiny.csv") + " --k 2 --algo pw",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("worlds"), std::string::npos);
}

TEST_F(CliTest, MovGeneration) {
  std::string out;
  ASSERT_EQ(
      Run("generate --type mov --xtuples 200 --out " + Path("mov.csv"),
          &out),
      0);
  Result<ProbabilisticDatabase> db = ReadDatabaseCsvFile(Path("mov.csv"));
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_xtuples(), 200u);
}

TEST_F(CliTest, SnapshotWorkflow) {
  std::string out;
  ASSERT_EQ(Run("generate --type synthetic --xtuples 80 --out " +
                    Path("snap_db.csv") + " --seed 21",
                &out),
            0)
      << out;
  ASSERT_EQ(Run("profile --xtuples 80 --out " + Path("snap_profile.csv"),
                &out),
            0)
      << out;

  // save: one shared scan, persisted with two pristine sessions.
  ASSERT_EQ(Run("snapshot save --db " + Path("snap_db.csv") + " --out " +
                    Path("pool.snap") + " --k-ladder 3,6 --sessions 2",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("wrote snapshot"), std::string::npos) << out;
  EXPECT_NE(out.find("k-ladder {3, 6}"), std::string::npos) << out;

  // inspect: section table + meta, every checksum verified.
  ASSERT_EQ(Run("snapshot inspect --snapshot " + Path("pool.snap"), &out), 0)
      << out;
  EXPECT_NE(out.find("format v1"), std::string::npos) << out;
  EXPECT_NE(out.find("all checksums verified"), std::string::npos) << out;
  for (const char* section : {"meta", "database", "engine", "sessions"}) {
    EXPECT_NE(out.find(section), std::string::npos)
        << "missing section row '" << section << "':\n" << out;
  }
  EXPECT_NE(out.find("k-ladder {3, 6}"), std::string::npos) << out;

  // load: full reconstruction summary.
  ASSERT_EQ(Run("snapshot load --snapshot " + Path("pool.snap"), &out), 0)
      << out;
  EXPECT_NE(out.find("zero scans"), std::string::npos) << out;
  EXPECT_NE(out.find("2 open sessions"), std::string::npos) << out;
  EXPECT_NE(out.find("k = 6: base quality"), std::string::npos) << out;

  // query/quality serve warm from the snapshot; the ladder is the
  // file's, so --k/--k-ladder there is a user error.
  ASSERT_EQ(Run("query --snapshot " + Path("pool.snap") +
                    " --semantics ptk",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("PT-3"), std::string::npos) << out;
  EXPECT_NE(out.find("PT-6"), std::string::npos) << out;
  ASSERT_EQ(Run("quality --snapshot " + Path("pool.snap"), &out), 0) << out;
  EXPECT_NE(out.find("k = 3:"), std::string::npos) << out;
  EXPECT_NE(Run("query --snapshot " + Path("pool.snap") + " --k 5", &out),
            0);
  EXPECT_NE(out.find("k-ladder"), std::string::npos) << out;
  EXPECT_NE(Run("quality --snapshot " + Path("pool.snap") +
                    " --algo mc --samples 1000",
                &out),
            0);
  EXPECT_NE(out.find("--algo tp"), std::string::npos) << out;

  // The warm quality numbers must be the ones a cold run computes.
  std::string cold;
  ASSERT_EQ(Run("quality --db " + Path("snap_db.csv") + " --k-ladder 3,6",
                &cold),
            0)
      << cold;
  ASSERT_EQ(Run("quality --snapshot " + Path("pool.snap"), &out), 0) << out;
  const size_t k3 = cold.find("k = 3:");
  ASSERT_NE(k3, std::string::npos) << cold;
  EXPECT_NE(out.find(cold.substr(k3, cold.find('\n', k3) - k3)),
            std::string::npos)
      << "warm quality diverged from cold:\n" << out << "\nvs\n" << cold;

  // clean --snapshot: warm-started pooled adaptive campaign.
  EXPECT_NE(Run("clean --snapshot " + Path("pool.snap") + " --profile " +
                    Path("snap_profile.csv") + " --budget 10 --out " +
                    Path("snap_clean.csv"),
                &out),
            0);
  EXPECT_NE(out.find("--adaptive"), std::string::npos) << out;
  ASSERT_EQ(Run("clean --snapshot " + Path("pool.snap") + " --profile " +
                    Path("snap_profile.csv") +
                    " --budget 10 --adaptive --sessions 2 --out " +
                    Path("snap_clean.csv") + " --seed 3",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("warm start: pool reconstructed"), std::string::npos)
      << out;
  EXPECT_NE(out.find("session pool: 2 adaptive sessions"), std::string::npos)
      << out;
  Result<ProbabilisticDatabase> cleaned =
      ReadDatabaseCsvFile(Path("snap_clean.csv"));
  ASSERT_TRUE(cleaned.ok());
  EXPECT_EQ(cleaned->num_xtuples(), 80u);
}

TEST_F(CliTest, SnapshotCorruptionExitsWithDataLossCode) {
  std::string out;
  ASSERT_EQ(Run("generate --type synthetic --xtuples 30 --out " +
                    Path("corrupt_db.csv") + " --seed 8",
                &out),
            0)
      << out;
  ASSERT_EQ(Run("snapshot save --db " + Path("corrupt_db.csv") + " --out " +
                    Path("good.snap") + " --k 4",
                &out),
            0)
      << out;

  std::string bytes;
  {
    std::ifstream in(Path("good.snap"), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);

  // A flipped bit in the middle of a payload: exit code 3, not 1 --
  // scripts must be able to tell "bad file" from "bad flags".
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x40;
  {
    std::ofstream f(Path("flipped.snap"), std::ios::binary);
    f.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
  }
  EXPECT_EQ(Run("snapshot inspect --snapshot " + Path("flipped.snap"), &out),
            3)
      << out;
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
  EXPECT_EQ(Run("snapshot load --snapshot " + Path("flipped.snap"), &out), 3)
      << out;
  EXPECT_EQ(Run("query --snapshot " + Path("flipped.snap"), &out), 3) << out;

  // Truncation is data loss too.
  {
    std::ofstream f(Path("truncated.snap"), std::ios::binary);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 3));
  }
  EXPECT_EQ(Run("snapshot inspect --snapshot " + Path("truncated.snap"),
                &out),
            3)
      << out;

  // A missing file is an I/O error (generic 1), NOT data loss: nothing
  // was lost, the path is just wrong.
  EXPECT_EQ(Run("snapshot inspect --snapshot " + Path("nope.snap"), &out), 1)
      << out;
  // Bad action word and missing flags are plain usage errors.
  EXPECT_EQ(Run("snapshot frobnicate --snapshot " + Path("good.snap"), &out),
            1)
      << out;
  EXPECT_EQ(Run("snapshot", &out), 1) << out;

  // The pristine file still loads after all of the above.
  EXPECT_EQ(Run("snapshot load --snapshot " + Path("good.snap"), &out), 0)
      << out;
}

TEST_F(CliTest, ErrorPaths) {
  std::string out;
  // Missing required flag.
  EXPECT_NE(Run("generate --type synthetic", &out), 0);
  EXPECT_NE(out.find("error"), std::string::npos);
  // Unknown type / planner / algo.
  EXPECT_NE(Run("generate --type bogus --out " + Path("x.csv")), 0);
  EXPECT_NE(Run("quality --db /nonexistent.csv --k 5"), 0);
  // Flag without value.
  EXPECT_NE(Run("inspect --db"), 0);
  // Non-flag argument.
  EXPECT_NE(Run("inspect stray"), 0);
}

}  // namespace
}  // namespace uclean
