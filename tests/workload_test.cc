// Tests for the workload generators: paper-mandated statistics, seed
// determinism, and option validation.

#include <gtest/gtest.h>

#include <cmath>

#include "workload/cleaning_profile_gen.h"
#include "workload/mov.h"
#include "workload/synthetic.h"

namespace uclean {
namespace {

TEST(Synthetic, DefaultShapeMatchesPaper) {
  SyntheticOptions opts;
  opts.num_xtuples = 200;  // scaled-down default shape
  Result<ProbabilisticDatabase> db = GenerateSynthetic(opts);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->num_xtuples(), 200u);
  EXPECT_EQ(db->num_real_tuples(), 2000u);  // 10 bars per x-tuple
  // Histogram masses are normalized: no null tuples materialize.
  EXPECT_EQ(db->num_tuples(), db->num_real_tuples());
}

TEST(Synthetic, XTupleMassesAreExactlyOne) {
  SyntheticOptions opts;
  opts.num_xtuples = 100;
  Result<ProbabilisticDatabase> db = GenerateSynthetic(opts);
  ASSERT_TRUE(db.ok());
  for (size_t l = 0; l < db->num_xtuples(); ++l) {
    EXPECT_NEAR(db->xtuple_real_mass(static_cast<XTupleId>(l)), 1.0, 1e-9);
  }
}

TEST(Synthetic, UniformPdfGivesEqualBars) {
  SyntheticOptions opts;
  opts.num_xtuples = 50;
  opts.pdf = UncertaintyPdf::kUniform;
  Result<ProbabilisticDatabase> db = GenerateSynthetic(opts);
  ASSERT_TRUE(db.ok());
  for (const Tuple& t : db->tuples()) {
    EXPECT_NEAR(t.prob, 0.1, 1e-12);
  }
}

TEST(Synthetic, SmallSigmaConcentratesMass) {
  // With sigma = 10 and interval width ~80, the central bars hold almost
  // all the mass; with sigma = 100 the bars are nearly uniform.
  SyntheticOptions narrow, wide;
  narrow.num_xtuples = wide.num_xtuples = 50;
  narrow.sigma = 10.0;
  wide.sigma = 100.0;
  Result<ProbabilisticDatabase> db_narrow = GenerateSynthetic(narrow);
  Result<ProbabilisticDatabase> db_wide = GenerateSynthetic(wide);
  ASSERT_TRUE(db_narrow.ok() && db_wide.ok());
  auto max_prob = [](const ProbabilisticDatabase& db) {
    double best = 0.0;
    for (const Tuple& t : db.tuples()) best = std::max(best, t.prob);
    return best;
  };
  EXPECT_GT(max_prob(*db_narrow), 0.25);
  EXPECT_LT(max_prob(*db_wide), 0.15);
}

TEST(Synthetic, ValuesStayNearDomain) {
  SyntheticOptions opts;
  opts.num_xtuples = 100;
  Result<ProbabilisticDatabase> db = GenerateSynthetic(opts);
  ASSERT_TRUE(db.ok());
  // Bar midpoints can exceed the domain by at most half an interval width.
  for (const Tuple& t : db->tuples()) {
    EXPECT_GE(t.score, opts.domain_min - 50.0);
    EXPECT_LE(t.score, opts.domain_max + 50.0);
  }
}

TEST(Synthetic, SeedDeterminism) {
  SyntheticOptions opts;
  opts.num_xtuples = 30;
  Result<ProbabilisticDatabase> a = GenerateSynthetic(opts);
  Result<ProbabilisticDatabase> b = GenerateSynthetic(opts);
  opts.seed = 43;
  Result<ProbabilisticDatabase> c = GenerateSynthetic(opts);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_EQ(a->num_tuples(), b->num_tuples());
  bool any_difference = false;
  for (size_t i = 0; i < a->num_tuples(); ++i) {
    EXPECT_DOUBLE_EQ(a->tuple(i).score, b->tuple(i).score);
    EXPECT_DOUBLE_EQ(a->tuple(i).prob, b->tuple(i).prob);
    if (i < c->num_tuples() && a->tuple(i).score != c->tuple(i).score) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Synthetic, ValidatesOptions) {
  SyntheticOptions opts;
  opts.num_xtuples = 0;
  EXPECT_FALSE(GenerateSynthetic(opts).ok());
  opts = SyntheticOptions{};
  opts.sigma = 0.0;
  EXPECT_FALSE(GenerateSynthetic(opts).ok());
  opts = SyntheticOptions{};
  opts.domain_max = opts.domain_min;
  EXPECT_FALSE(GenerateSynthetic(opts).ok());
  opts = SyntheticOptions{};
  opts.interval_width_max = 10.0;
  opts.interval_width_min = 20.0;
  EXPECT_FALSE(GenerateSynthetic(opts).ok());
}

TEST(Mov, ShapeMatchesPaperDescription) {
  MovOptions opts;
  opts.num_xtuples = 2000;
  Result<ProbabilisticDatabase> db = GenerateMov(opts);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_xtuples(), 2000u);
  // "2 tuples in average": the capped geometric keeps the mean near 2.
  const double mean_alts =
      static_cast<double>(db->num_real_tuples()) / 2000.0;
  EXPECT_NEAR(mean_alts, 2.0, 0.15);
}

TEST(Mov, ScoresInDatePlusRatingRange) {
  MovOptions opts;
  opts.num_xtuples = 500;
  Result<ProbabilisticDatabase> db = GenerateMov(opts);
  ASSERT_TRUE(db.ok());
  for (const Tuple& t : db->tuples()) {
    if (t.is_null) continue;
    EXPECT_GE(t.score, 0.0);
    EXPECT_LE(t.score, 2.0);  // normalized date + normalized rating
  }
}

TEST(Mov, ConfidenceMassIsSubUnit) {
  MovOptions opts;
  opts.num_xtuples = 500;
  Result<ProbabilisticDatabase> db = GenerateMov(opts);
  ASSERT_TRUE(db.ok());
  size_t with_null = 0;
  for (size_t l = 0; l < db->num_xtuples(); ++l) {
    const double mass = db->xtuple_real_mass(static_cast<XTupleId>(l));
    EXPECT_GE(mass, opts.mass_min - 1e-9);
    EXPECT_LE(mass, opts.mass_max + 1e-9);
    if (mass < 1.0 - 1e-9) ++with_null;
  }
  EXPECT_GT(with_null, 400u);  // almost every x-tuple keeps a null slot
}

TEST(Mov, SeedDeterminism) {
  MovOptions opts;
  opts.num_xtuples = 100;
  Result<ProbabilisticDatabase> a = GenerateMov(opts);
  Result<ProbabilisticDatabase> b = GenerateMov(opts);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->num_tuples(), b->num_tuples());
  for (size_t i = 0; i < a->num_tuples(); ++i) {
    EXPECT_DOUBLE_EQ(a->tuple(i).prob, b->tuple(i).prob);
  }
}

TEST(Mov, ValidatesOptions) {
  MovOptions opts;
  opts.num_xtuples = 0;
  EXPECT_FALSE(GenerateMov(opts).ok());
  opts = MovOptions{};
  opts.mass_min = 0.0;
  EXPECT_FALSE(GenerateMov(opts).ok());
  opts = MovOptions{};
  opts.mass_max = 1.2;
  EXPECT_FALSE(GenerateMov(opts).ok());
}

TEST(ProfileGen, DefaultMatchesPaperSetup) {
  Result<CleaningProfile> profile = GenerateCleaningProfile(5000);
  ASSERT_TRUE(profile.ok());
  ASSERT_TRUE(profile->Validate(5000).ok());
  double cost_sum = 0.0, sc_sum = 0.0;
  for (size_t l = 0; l < 5000; ++l) {
    EXPECT_GE(profile->costs[l], 1);
    EXPECT_LE(profile->costs[l], 10);
    cost_sum += static_cast<double>(profile->costs[l]);
    sc_sum += profile->sc_probs[l];
  }
  EXPECT_NEAR(cost_sum / 5000.0, 5.5, 0.2);  // uniform {1..10}
  EXPECT_NEAR(sc_sum / 5000.0, 0.5, 0.02);   // uniform [0,1]
}

TEST(ProfileGen, UniformRangeShiftsAverage) {
  CleaningProfileOptions opts;
  opts.sc_pdf = ScPdf::Uniform(0.8, 1.0);
  Result<CleaningProfile> profile = GenerateCleaningProfile(3000, opts);
  ASSERT_TRUE(profile.ok());
  double sum = 0.0;
  for (double p : profile->sc_probs) sum += p;
  EXPECT_NEAR(sum / 3000.0, 0.9, 0.02);
}

TEST(ProfileGen, TruncatedNormalStaysInUnitInterval) {
  CleaningProfileOptions opts;
  opts.sc_pdf = ScPdf::TruncatedNormal(0.5, 0.3);
  Result<CleaningProfile> profile = GenerateCleaningProfile(3000, opts);
  ASSERT_TRUE(profile.ok());
  double sum = 0.0;
  for (double p : profile->sc_probs) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    sum += p;
  }
  EXPECT_NEAR(sum / 3000.0, 0.5, 0.02);
}

TEST(ProfileGen, ValidatesOptions) {
  CleaningProfileOptions opts;
  opts.cost_min = 0;
  EXPECT_FALSE(GenerateCleaningProfile(10, opts).ok());
  opts = CleaningProfileOptions{};
  opts.cost_max = 0;
  EXPECT_FALSE(GenerateCleaningProfile(10, opts).ok());
  opts = CleaningProfileOptions{};
  opts.sc_pdf.hi = 1.5;
  EXPECT_FALSE(GenerateCleaningProfile(10, opts).ok());
  opts = CleaningProfileOptions{};
  opts.sc_pdf = ScPdf::TruncatedNormal(0.5, 0.0);
  EXPECT_FALSE(GenerateCleaningProfile(10, opts).ok());
}

TEST(ProfileGen, SeedDeterminism) {
  Result<CleaningProfile> a = GenerateCleaningProfile(100);
  Result<CleaningProfile> b = GenerateCleaningProfile(100);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->costs, b->costs);
  EXPECT_EQ(a->sc_probs, b->sc_probs);
}

}  // namespace
}  // namespace uclean
