// Determinism keystone of the serving front-end (src/serve/): any
// interleaving of admitted requests -- across thread counts, batching
// on/off and the socketpair transport -- is bitwise equal to running
// each client's stream alone through the existing entry points
// (ScanRequest scans, ComputeTpQuality, DrawProbes/CommitProbeDraws on
// a dedicated SessionPool).

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "clean/agent.h"
#include "clean/session_pool.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "model/database.h"
#include "model/database_overlay.h"
#include "quality/tp.h"
#include "rank/psr.h"
#include "serve/frontend.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "workload/cleaning_profile_gen.h"
#include "workload/synthetic.h"

namespace uclean {
namespace serve {
namespace {

constexpr size_t kNumXTuples = 80;
constexpr uint64_t kFrontendSeed = 424242;

ProbabilisticDatabase MakeDb() {
  SyntheticOptions opts;
  opts.num_xtuples = kNumXTuples;
  opts.tuples_per_xtuple = 4;
  opts.real_mass_min = 0.6;  // uncertain entities, so cleans change state
  opts.real_mass_max = 1.0;
  opts.seed = 11;
  Result<ProbabilisticDatabase> db = GenerateSynthetic(opts);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(*db);
}

CleaningProfile MakeProfile() {
  Result<CleaningProfile> profile =
      GenerateCleaningProfile(kNumXTuples, CleaningProfileOptions());
  EXPECT_TRUE(profile.ok()) << profile.status().ToString();
  return std::move(*profile);
}

SessionPool MakePool(const ProbabilisticDatabase& db,
                     const std::vector<size_t>& ks, size_t threads) {
  Result<KLadder> ladder = KLadder::Of(ks);
  EXPECT_TRUE(ladder.ok());
  SessionPool::Options options;
  options.exec.num_threads = threads;
  Result<SessionPool> pool =
      SessionPool::Create(ProbabilisticDatabase(db), *ladder, options);
  EXPECT_TRUE(pool.ok()) << pool.status().ToString();
  return std::move(*pool);
}

// ---------------------------------------------------------------------------
// The batcher's load-bearing fact: a rung of a merged-ladder scan is
// bitwise the output of a dedicated single-k scan, so merging strangers'
// distinct ks into one on-the-fly KLadder never changes an answer.

TEST(ServeBatching, MergedLadderRungsMatchSoloScansBitwise) {
  const ProbabilisticDatabase db = MakeDb();
  const std::vector<size_t> ks = {7, 23, 55};
  Result<ScanRequest> merged_request = ScanRequest::ForLadder(ks);
  ASSERT_TRUE(merged_request.ok());
  Result<ScanResult> merged = ComputePsrLadder(db, *merged_request);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  for (size_t rung = 0; rung < ks.size(); ++rung) {
    Result<ScanRequest> solo_request = ScanRequest::ForK(ks[rung]);
    ASSERT_TRUE(solo_request.ok());
    Result<ScanResult> solo = ComputePsrLadder(db, *solo_request);
    ASSERT_TRUE(solo.ok());
    const PsrOutput& m = merged->output(rung);
    const PsrOutput& s = solo->output();
    EXPECT_EQ(m.num_nonzero, s.num_nonzero) << "k=" << ks[rung];
    EXPECT_EQ(m.scan_end, s.scan_end) << "k=" << ks[rung];
    ASSERT_EQ(m.topk_prob.size(), s.topk_prob.size());
    EXPECT_EQ(std::memcmp(m.topk_prob.data(), s.topk_prob.data(),
                          m.topk_prob.size() * sizeof(double)),
              0)
        << "rung " << rung << " (k=" << ks[rung]
        << ") of the merged scan is not bitwise the solo scan";
    EXPECT_EQ(HashDoubles(m.topk_prob), HashDoubles(s.topk_prob));
  }
}

// ---------------------------------------------------------------------------
// Randomized request-mix property test: N clients x shuffled
// topk/quality/clean streams through the front-end, against a serial
// oracle that runs each client's stream alone through the existing
// one-shot APIs. Outputs and per-session RNG fingerprints must be
// bitwise equal for every (seed, thread count, batching) configuration.

std::vector<std::vector<Request>> MakeStreams(uint64_t seed, size_t clients,
                                              size_t steps) {
  const std::vector<size_t> ks = {3, 5, 8, 20, 33};
  Rng rng(seed * 977 + 13);
  std::vector<std::vector<Request>> streams(clients);
  for (std::vector<Request>& stream : streams) {
    for (size_t r = 0; r < steps; ++r) {
      Request request;
      const int64_t kind = rng.UniformInt(0, 9);
      if (kind < 5) {
        request.verb = Verb::kTopk;
      } else if (kind < 8) {
        request.verb = Verb::kQuality;
      } else {
        request.verb = Verb::kClean;
      }
      if (request.verb == Verb::kClean) {
        request.xtuple = static_cast<XTupleId>(
            rng.UniformInt(0, static_cast<int64_t>(kNumXTuples) - 1));
      } else {
        request.k = ks[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(ks.size()) - 1))];
        if (rng.Bernoulli(0.1)) request.plan = PlanKind::kSequential;
      }
      stream.push_back(request);
    }
  }
  return streams;
}

/// One client's serial oracle: a dedicated pool (its own scan), its own
/// overlay and its own Rng seeded exactly like the front-end's client.
struct OracleClient {
  SessionPool pool;
  SessionPool::SessionId sid;
  Rng rng;

  OracleClient(SessionPool p, uint64_t seed)
      : pool(std::move(p)), sid(pool.OpenSession()), rng(seed) {}
};

Reply OracleExecute(OracleClient* c, const Request& request,
                    const CleaningProfile& profile) {
  Reply reply;
  reply.verb = request.verb;
  reply.k = request.k;
  const DatabaseOverlay& view = c->pool.overlay(c->sid);
  if (request.verb == Verb::kClean) {
    reply.xtuple = request.xtuple;
    std::vector<int64_t> probes(kNumXTuples, 0);
    probes[static_cast<size_t>(request.xtuple)] = 1;
    Result<ProbeDraws> draws = DrawProbes(view, profile, probes, &c->rng);
    if (!draws.ok()) {
      reply.status = draws.status();
      return reply;
    }
    if (!draws->outcomes.empty()) {
      Status commit = CommitProbeDraws(&c->pool, c->sid, *draws);
      EXPECT_TRUE(commit.ok()) << commit.ToString();
      Status refresh = c->pool.Refresh(c->sid);
      EXPECT_TRUE(refresh.ok()) << refresh.ToString();
    }
    if (!draws->report.log.empty()) {
      const ProbeRecord& record = draws->report.log.front();
      reply.success = record.success;
      reply.resolved_id = record.resolved_id;
      reply.spent = record.spent;
    }
    reply.quality = c->pool.quality(c->sid, c->pool.num_rungs() - 1);
    const std::string state = c->rng.SaveState();
    reply.rng_fingerprint = Fnv1a64(state.data(), state.size());
    return reply;
  }
  Result<ScanRequest> scan_request = ScanRequest::ForK(request.k);
  EXPECT_TRUE(scan_request.ok());
  const bool dirty = view.num_outcomes() > 0;
  if (dirty) scan_request->overlay = &view;
  Result<ScanResult> scan = ComputePsrLadder(c->pool.base(), *scan_request);
  EXPECT_TRUE(scan.ok()) << scan.status().ToString();
  if (request.verb == Verb::kTopk) {
    const PsrOutput& psr = scan->output();
    reply.num_nonzero = psr.num_nonzero;
    reply.scan_end = psr.scan_end;
    reply.fingerprint = HashDoubles(psr.topk_prob);
  } else {
    Result<TpOutput> tp =
        dirty ? ComputeTpQuality(view, scan->output())
              : ComputeTpQuality(c->pool.base(), scan->output());
    EXPECT_TRUE(tp.ok()) << tp.status().ToString();
    reply.quality = tp->quality;
  }
  return reply;
}

/// Bitwise comparison of the result-bearing fields (plan fields are
/// explicitly NOT compared: the plan may differ across configurations,
/// the answer may not).
void ExpectSameAnswer(const Reply& got, const Reply& want,
                      const std::string& label) {
  ASSERT_EQ(got.status.code(), want.status.code()) << label;
  if (!got.status.ok()) return;
  ASSERT_EQ(got.verb, want.verb) << label;
  switch (got.verb) {
    case Verb::kTopk:
      EXPECT_EQ(got.fingerprint, want.fingerprint) << label;
      EXPECT_EQ(got.num_nonzero, want.num_nonzero) << label;
      EXPECT_EQ(got.scan_end, want.scan_end) << label;
      break;
    case Verb::kQuality:
      EXPECT_EQ(got.quality, want.quality) << label;  // exact, not approx
      break;
    case Verb::kClean:
      EXPECT_EQ(got.success, want.success) << label;
      EXPECT_EQ(got.resolved_id, want.resolved_id) << label;
      EXPECT_EQ(got.spent, want.spent) << label;
      EXPECT_EQ(got.quality, want.quality) << label;
      EXPECT_EQ(got.rng_fingerprint, want.rng_fingerprint) << label;
      break;
    case Verb::kStats:
      break;
  }
}

TEST(ServeProperty, RequestMixMatchesSerialOracleAcrossConfigs) {
  const ProbabilisticDatabase db = MakeDb();
  const CleaningProfile profile = MakeProfile();
  const std::vector<size_t> ladder_ks = {5, 20};
  constexpr size_t kClients = 5;
  constexpr size_t kSteps = 8;

  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const std::vector<std::vector<Request>> streams =
        MakeStreams(seed, kClients, kSteps);

    // Serial oracle: each client's stream alone, in stream order.
    std::vector<std::vector<Reply>> expected(kClients);
    {
      std::vector<OracleClient> oracle;
      oracle.reserve(kClients);
      for (size_t i = 0; i < kClients; ++i) {
        oracle.emplace_back(MakePool(db, ladder_ks, 1),
                            Frontend::ClientSeed(kFrontendSeed, i));
      }
      for (size_t i = 0; i < kClients; ++i) {
        for (const Request& request : streams[i]) {
          expected[i].push_back(OracleExecute(&oracle[i], request, profile));
        }
      }
    }

    // Every configuration must reproduce the oracle bitwise.
    const struct {
      bool batching;
      size_t threads;
    } configs[] = {{true, 1}, {false, 1}, {true, 4}, {false, 4}};
    for (const auto& config : configs) {
      FrontendOptions options;
      options.batching = config.batching;
      options.seed = kFrontendSeed;
      Result<Frontend> frontend = Frontend::Create(
          MakePool(db, ladder_ks, config.threads), profile, options);
      ASSERT_TRUE(frontend.ok()) << frontend.status().ToString();
      std::vector<Frontend::ClientId> ids;
      for (size_t i = 0; i < kClients; ++i) ids.push_back(frontend->Connect());

      for (size_t r = 0; r < kSteps; ++r) {
        std::vector<std::pair<Frontend::ClientId, Request>> round;
        for (size_t i = 0; i < kClients; ++i) {
          round.emplace_back(ids[i], streams[i][r]);
        }
        const std::vector<Reply> replies = frontend->ExecuteRound(round);
        ASSERT_EQ(replies.size(), round.size());
        for (size_t i = 0; i < kClients; ++i) {
          ExpectSameAnswer(
              replies[i], expected[i][r],
              "seed=" + std::to_string(seed) + " client=" + std::to_string(i) +
                  " round=" + std::to_string(r) +
                  " batching=" + std::to_string(config.batching) +
                  " threads=" + std::to_string(config.threads));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Transport equivalence: concurrent socketpair clients through the
// LineServer produce, per client, exactly the reply lines of driving the
// front-end directly with the same admission rounds -- modulo the plan
// fields, which record latency decisions, never answers.

std::string RenderRequest(const Request& request) {
  switch (request.verb) {
    case Verb::kTopk:
    case Verb::kQuality: {
      std::string line = std::string(VerbName(request.verb)) + " " +
                         std::to_string(request.k);
      if (request.plan.has_value()) {
        line += std::string(" plan=") + PlanKindName(*request.plan);
      }
      return line;
    }
    case Verb::kClean:
      return "clean " + std::to_string(request.xtuple);
    case Verb::kStats:
      return "stats";
  }
  return "";
}

/// Drops the plan-record tokens from a reply line.
std::string StripPlanTokens(const std::string& line) {
  std::string out;
  size_t begin = 0;
  while (begin <= line.size()) {
    size_t end = line.find(' ', begin);
    if (end == std::string::npos) end = line.size();
    const std::string token = line.substr(begin, end - begin);
    const bool plan_token =
        token.rfind("plan=", 0) == 0 || token.rfind("exec=", 0) == 0 ||
        token.rfind("forced=", 0) == 0 || token.rfind("batch=", 0) == 0 ||
        token.rfind("threads=", 0) == 0;
    if (!plan_token && !token.empty()) {
      if (!out.empty()) out += ' ';
      out += token;
    }
    begin = end + 1;
  }
  return out;
}

TEST(ServeServer, ConcurrentSocketpairClientsMatchDirectRounds) {
  const ProbabilisticDatabase db = MakeDb();
  const CleaningProfile profile = MakeProfile();
  const std::vector<size_t> ladder_ks = {5, 20};
  constexpr size_t kClients = 3;
  constexpr size_t kSteps = 6;
  const std::vector<std::vector<Request>> streams =
      MakeStreams(29, kClients, kSteps);

  // Server side: one socketpair per client, writer threads racing.
  FrontendOptions options;
  options.seed = kFrontendSeed;
  Result<Frontend> served =
      Frontend::Create(MakePool(db, ladder_ks, 1), profile, options);
  ASSERT_TRUE(served.ok());
  LineServer server(&*served, ServerOptions());
  int client_fd[kClients];
  for (size_t i = 0; i < kClients; ++i) {
    int sv[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    client_fd[i] = sv[0];
    Result<size_t> added = server.AddClient(sv[1], sv[1]);
    ASSERT_TRUE(added.ok());
  }
  std::vector<std::thread> writers;
  for (size_t i = 0; i < kClients; ++i) {
    writers.emplace_back([&streams, &client_fd, i] {
      std::string payload;
      for (const Request& request : streams[i]) {
        payload += RenderRequest(request) + "\n";
      }
      size_t written = 0;
      while (written < payload.size()) {
        const ssize_t n = write(client_fd[i], payload.data() + written,
                                payload.size() - written);
        if (n <= 0) break;
        written += static_cast<size_t>(n);
      }
      EXPECT_EQ(written, payload.size());
      shutdown(client_fd[i], SHUT_WR);
    });
  }
  const Status run = server.Run();
  EXPECT_TRUE(run.ok()) << run.ToString();
  for (std::thread& t : writers) t.join();

  std::vector<std::vector<std::string>> served_lines(kClients);
  for (size_t i = 0; i < kClients; ++i) {
    std::string all;
    char chunk[4096];
    while (true) {
      const ssize_t n = read(client_fd[i], chunk, sizeof(chunk));
      if (n <= 0) break;
      all.append(chunk, static_cast<size_t>(n));
    }
    close(client_fd[i]);
    size_t begin = 0;
    while (true) {
      const size_t nl = all.find('\n', begin);
      if (nl == std::string::npos) break;
      served_lines[i].push_back(StripPlanTokens(all.substr(begin, nl - begin)));
      begin = nl + 1;
    }
  }

  // Direct side: the same zip of streams as admission rounds.
  Result<Frontend> direct =
      Frontend::Create(MakePool(db, ladder_ks, 1), profile, options);
  ASSERT_TRUE(direct.ok());
  std::vector<Frontend::ClientId> ids;
  for (size_t i = 0; i < kClients; ++i) ids.push_back(direct->Connect());
  std::vector<std::vector<std::string>> direct_lines(kClients);
  for (size_t r = 0; r < kSteps; ++r) {
    std::vector<std::pair<Frontend::ClientId, Request>> round;
    for (size_t i = 0; i < kClients; ++i) {
      round.emplace_back(ids[i], streams[i][r]);
    }
    const std::vector<Reply> replies = direct->ExecuteRound(round);
    for (size_t i = 0; i < kClients; ++i) {
      direct_lines[i].push_back(StripPlanTokens(FormatReply(replies[i])));
    }
  }

  for (size_t i = 0; i < kClients; ++i) {
    ASSERT_EQ(served_lines[i].size(), direct_lines[i].size()) << "client " << i;
    for (size_t r = 0; r < direct_lines[i].size(); ++r) {
      EXPECT_EQ(served_lines[i][r], direct_lines[i][r])
          << "client " << i << " reply " << r;
    }
  }
}

}  // namespace
}  // namespace serve
}  // namespace uclean
