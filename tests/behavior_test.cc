// Cross-cutting behavioral properties that span modules: query-answer
// monotonicity, cleaning's effect on expected quality, planner edge cases,
// and end-to-end consistency facts the paper states in passing.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "clean/agent.h"
#include "clean/brute_force.h"
#include "clean/planners.h"
#include "common/rng.h"
#include "model/paper_example.h"
#include "pworld/pw_quality.h"
#include "quality/evaluation.h"
#include "quality/tp.h"
#include "rank/psr.h"
#include "tests/test_util.h"

namespace uclean {
namespace {

TEST(Behavior, PtkAnswerShrinksAsThresholdGrows) {
  Rng rng(71);
  RandomDbOptions opts;
  opts.num_xtuples = 8;
  for (int trial = 0; trial < 10; ++trial) {
    ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
    Result<PsrOutput> psr = ScanPsr(db, 3);
    ASSERT_TRUE(psr.ok());
    size_t previous = SIZE_MAX;
    for (double threshold : {0.01, 0.1, 0.3, 0.6, 0.9}) {
      Result<PtkAnswer> answer = EvaluatePtk(db, *psr, threshold);
      ASSERT_TRUE(answer.ok());
      EXPECT_LE(answer->tuples.size(), previous);
      previous = answer->tuples.size();
    }
  }
}

TEST(Behavior, PtkAtMinimalThresholdEqualsNonzeroSet) {
  ProbabilisticDatabase db = MakeUdb1();
  Result<PsrOutput> psr = ScanPsr(db, 2);
  ASSERT_TRUE(psr.ok());
  Result<PtkAnswer> answer = EvaluatePtk(db, *psr, 1e-12);
  ASSERT_TRUE(answer.ok());
  size_t nonzero_real = 0;
  for (size_t i = 0; i < db.num_tuples(); ++i) {
    if (!db.tuple(i).is_null && psr->topk_prob[i] >= 1e-12) ++nonzero_real;
  }
  EXPECT_EQ(answer->tuples.size(), nonzero_real);
}

TEST(Behavior, CleaningAnyXTupleNeverLowersExpectedQuality) {
  // Theorem-2 corollary: I({tau_l}, {1}) = -(P_l) * g(l,D) >= 0, verified
  // against the brute-force expectation over cleaned outcomes.
  Rng rng(83);
  RandomDbOptions opts;
  opts.num_xtuples = 4;
  opts.max_alternatives = 3;
  for (int trial = 0; trial < 8; ++trial) {
    ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
    CleaningProfile profile;
    profile.costs.assign(db.num_xtuples(), 1);
    profile.sc_probs.assign(db.num_xtuples(), 0.8);
    for (size_t l = 0; l < db.num_xtuples(); ++l) {
      std::vector<int64_t> probes(db.num_xtuples(), 0);
      probes[l] = 1;
      Result<double> improvement =
          ExpectedImprovementBruteForce(db, 2, profile, probes);
      ASSERT_TRUE(improvement.ok());
      EXPECT_GE(*improvement, -1e-10)
          << "trial " << trial << " x-tuple " << l;
    }
  }
}

TEST(Behavior, FullyCleanedDatabaseHasZeroQuality) {
  Rng rng(97);
  RandomDbOptions opts;
  opts.num_xtuples = 5;
  ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
  // Collapse every x-tuple to its most likely alternative.
  DatabaseBuilder b = DatabaseBuilder::FromDatabase(db);
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    const auto& members = db.xtuple_members(static_cast<XTupleId>(l));
    int32_t best = members[0];
    for (int32_t idx : members) {
      if (db.tuple(idx).prob > db.tuple(best).prob) best = idx;
    }
    const Tuple& chosen = db.tuple(best);
    ASSERT_TRUE(b.ReplaceWithCertain(static_cast<XTupleId>(l),
                                     chosen.is_null ? nullptr : &chosen)
                    .ok());
  }
  Result<ProbabilisticDatabase> certain = std::move(b).Finish();
  ASSERT_TRUE(certain.ok());
  Result<TpOutput> tp = ComputeTpQuality(*certain, 3);
  Result<PwOutput> pw = ComputePwQuality(*certain, 3);
  ASSERT_TRUE(tp.ok() && pw.ok());
  EXPECT_NEAR(tp->quality, 0.0, 1e-12);
  EXPECT_EQ(pw->results.size(), 1u);
}

TEST(Behavior, AllPlannersReturnEmptyWhenNothingAffordable) {
  CleaningProblem problem;
  problem.gain = {-3.0, -1.0};
  problem.topk_mass = {1.0, 0.5};
  problem.cost = {50, 80};
  problem.sc_prob = {0.9, 0.9};
  problem.budget = 10;  // below every cost
  Rng rng(3);
  for (PlannerKind kind : {PlannerKind::kDp, PlannerKind::kGreedy,
                           PlannerKind::kRandP, PlannerKind::kRandU}) {
    Result<CleaningPlan> plan = RunPlanner(kind, problem, &rng);
    ASSERT_TRUE(plan.ok()) << PlannerKindName(kind);
    EXPECT_EQ(plan->total_cost, 0) << PlannerKindName(kind);
    EXPECT_EQ(plan->expected_improvement, 0.0) << PlannerKindName(kind);
  }
}

TEST(Behavior, SingleXTupleDpSpendsWholeBudgetOnIt) {
  CleaningProblem problem;
  problem.gain = {-4.0};
  problem.topk_mass = {1.0};
  problem.cost = {3};
  problem.sc_prob = {0.35};
  problem.budget = 17;
  Result<CleaningPlan> plan = PlanDp(problem);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->probes[0], 17 / 3);  // every affordable probe has b > 0
  EXPECT_NEAR(plan->expected_improvement,
              problem.XTupleImprovement(0, 17 / 3), 1e-12);
}

TEST(Behavior, ConcaveEngineHandlesManyCostClasses) {
  // Costs spread over {1..50}: dozens of residue classes per group.
  Rng rng(111);
  CleaningProblem problem;
  for (int l = 0; l < 30; ++l) {
    problem.gain.push_back(-rng.Uniform(0.1, 4.0));
    problem.topk_mass.push_back(-problem.gain.back());
    problem.cost.push_back(rng.UniformInt(1, 50));
    problem.sc_prob.push_back(rng.Uniform(0.05, 0.95));
  }
  problem.budget = 400;
  DpOptions items, concave;
  items.mode = DpMode::kItems;
  concave.mode = DpMode::kConcave;
  Result<CleaningPlan> a = PlanDp(problem, items);
  Result<CleaningPlan> b = PlanDp(problem, concave);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(a->expected_improvement, b->expected_improvement, 1e-8);
}

TEST(Behavior, AgentOnZeroGainXTupleChangesNothingInExpectation) {
  // Probing an x-tuple outside Z succeeds and collapses it, but the
  // quality stays identical (omega * p was already zero).
  ProbabilisticDatabase db = MakeUdb1();
  const size_t k = 2;
  Result<TpOutput> before = ComputeTpQuality(db, k);
  ASSERT_TRUE(before.ok());
  // S1's t0 (21 C) ranks below every achievable top-2 position? Not quite;
  // instead use a fresh x-tuple added far below the top-2 region.
  DatabaseBuilder b = DatabaseBuilder::FromDatabase(db);
  XTupleId low = b.AddXTuple("low");
  ASSERT_TRUE(b.AddAlternative(low, 100, 1.0, 0.5).ok());
  ASSERT_TRUE(b.AddAlternative(low, 101, 2.0, 0.5).ok());
  Result<ProbabilisticDatabase> extended = std::move(b).Finish();
  ASSERT_TRUE(extended.ok());
  Result<TpOutput> base = ComputeTpQuality(*extended, k);
  ASSERT_TRUE(base.ok());
  EXPECT_NEAR(base->xtuple_gain[low], 0.0, 1e-12);

  CleaningProfile profile;
  profile.costs.assign(extended->num_xtuples(), 1);
  profile.sc_probs.assign(extended->num_xtuples(), 1.0);
  std::vector<int64_t> probes(extended->num_xtuples(), 0);
  probes[low] = 1;
  Rng rng(9);
  Result<ExecutionReport> report =
      ExecutePlan(*extended, profile, probes, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->successes, 1u);
  Result<TpOutput> after = ComputeTpQuality(report->cleaned_db, k);
  ASSERT_TRUE(after.ok());
  EXPECT_NEAR(after->quality, base->quality, 1e-10);
}

TEST(Behavior, QualityInvariantUnderScoreShift) {
  // PWS-quality depends on the rank ORDER only, not on score values:
  // shifting every score by a constant must not change anything.
  Rng rng(131);
  RandomDbOptions opts;
  opts.num_xtuples = 6;
  ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
  DatabaseBuilder b;
  for (size_t l = 0; l < db.num_xtuples(); ++l) b.AddXTuple();
  for (const Tuple& t : db.tuples()) {
    if (!t.is_null) {
      ASSERT_TRUE(
          b.AddAlternative(t.xtuple, t.id, t.score + 1000.0, t.prob).ok());
    }
  }
  Result<ProbabilisticDatabase> shifted = std::move(b).Finish();
  ASSERT_TRUE(shifted.ok());
  for (size_t k : {1u, 3u}) {
    Result<TpOutput> a = ComputeTpQuality(db, k);
    Result<TpOutput> c = ComputeTpQuality(*shifted, k);
    ASSERT_TRUE(a.ok() && c.ok());
    EXPECT_NEAR(a->quality, c->quality, 1e-12);
  }
}

TEST(Behavior, EvaluationRejectsInvalidOptions) {
  ProbabilisticDatabase db = MakeUdb1();
  EvaluationOptions options;
  options.k = 0;
  EXPECT_FALSE(EvaluateTopk(db, options).ok());
  options.k = 2;
  options.ptk_threshold = 0.0;
  EXPECT_FALSE(EvaluateTopk(db, options).ok());
}

TEST(Behavior, UkRanksEntriesCanRepeatTuples) {
  // The same tuple may be the most probable occupant of several ranks
  // (a well-known U-kRanks quirk); the evaluator must allow it.
  DatabaseBuilder b;
  XTupleId x0 = b.AddXTuple();
  ASSERT_TRUE(b.AddAlternative(x0, 0, 100.0, 0.9).ok());
  XTupleId x1 = b.AddXTuple();
  ASSERT_TRUE(b.AddAlternative(x1, 1, 90.0, 0.1).ok());
  XTupleId x2 = b.AddXTuple();
  ASSERT_TRUE(b.AddAlternative(x2, 2, 80.0, 0.1).ok());
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());
  Result<PsrOutput> psr = ScanPsr(*db, 2);
  ASSERT_TRUE(psr.ok());
  UkRanksAnswer answer = EvaluateUkRanks(*db, *psr);
  // Tuple 0 dominates rank 1; rank 2 goes to whoever is most likely second,
  // which may well be tuple 1 or 2 -- but tuple 0 can never be (it exists
  // with 0.9 and is always first when present).
  EXPECT_EQ(answer.per_rank[0].tuple_id, 0);
  EXPECT_NE(answer.per_rank[1].tuple_id, -1);
}

TEST(Behavior, PlanCostAccountsMultiProbeCosts) {
  CleaningProblem problem;
  problem.gain = {-2.0, -3.0};
  problem.topk_mass = {1.0, 1.0};
  problem.cost = {3, 5};
  problem.sc_prob = {0.4, 0.6};
  problem.budget = 100;
  std::vector<int64_t> probes = {4, 2};
  EXPECT_EQ(PlanCost(problem, probes), 4 * 3 + 2 * 5);
}

TEST(Behavior, SharedEvaluationMatchesStandaloneCalls) {
  ProbabilisticDatabase db = MakeUdb1();
  EvaluationOptions options;
  options.k = 2;
  options.ptk_threshold = 0.4;
  Result<EvaluationReport> report = EvaluateTopk(db, options);
  ASSERT_TRUE(report.ok());

  Result<PsrOutput> psr = ScanPsr(db, 2);
  ASSERT_TRUE(psr.ok());
  Result<PtkAnswer> ptk = EvaluatePtk(db, *psr, 0.4);
  GlobalTopkAnswer gtopk = EvaluateGlobalTopk(db, *psr);
  Result<TpOutput> tp = ComputeTpQuality(db, *psr);
  ASSERT_TRUE(ptk.ok() && tp.ok());

  ASSERT_EQ(report->ptk.tuples.size(), ptk->tuples.size());
  for (size_t j = 0; j < ptk->tuples.size(); ++j) {
    EXPECT_EQ(report->ptk.tuples[j].tuple_id, ptk->tuples[j].tuple_id);
  }
  ASSERT_EQ(report->global_topk.tuples.size(), gtopk.tuples.size());
  EXPECT_NEAR(report->quality.quality, tp->quality, 1e-12);
}

}  // namespace
}  // namespace uclean
