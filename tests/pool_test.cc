// Property tests for the SessionPool: every pooled session -- a
// copy-on-write DatabaseOverlay plus a forked PsrEngine::SessionState over
// ONE shared base scan -- must match a dedicated CleaningSession fed the
// same outcomes to 1e-12 at every rung after every refresh, under
// interleaved cleans across sessions, dedicated-side compaction, and
// open/close churn; close-and-merge must materialize exactly the
// dedicated session's cleaned database; and dirty-state reads must be a
// hard failure in EVERY build type (the Release-mode stale-read
// regression).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "clean/agent.h"
#include "clean/session.h"
#include "clean/session_pool.h"
#include "common/rng.h"
#include "model/database.h"
#include "model/database_overlay.h"
#include "quality/tp.h"
#include "rank/psr.h"
#include "tests/test_util.h"
#include "workload/synthetic.h"

namespace uclean {
namespace {

constexpr double kTol = 1e-12;

KLadder MakeLadder(std::vector<size_t> ks) {
  Result<KLadder> ladder = KLadder::Of(std::move(ks));
  UCLEAN_CHECK(ladder.ok());
  return std::move(ladder).value();
}

/// Eager-compaction options for the dedicated arm: the pooled arm never
/// compacts (overlays keep base rank indices), so agreement across
/// compaction proves the comparison is representation-independent.
CleaningSession::Options EagerCompaction() {
  CleaningSession::Options options;
  options.compact_min_tombstones = 1;
  options.compact_min_fraction = 0.0;
  return options;
}

/// Top-k probabilities keyed by tuple id (stable across compaction and
/// overlay representation), live tuples only.
std::map<TupleId, double> TopkById(const ProbabilisticDatabase& db,
                                   const PsrOutput& psr) {
  std::map<TupleId, double> out;
  for (size_t i = 0; i < db.num_tuples(); ++i) {
    if (db.is_tombstone(i)) continue;
    out[db.tuple(i).id] = psr.topk_prob[i];
  }
  return out;
}

std::map<TupleId, double> TopkById(const DatabaseOverlay& view,
                                   const PsrOutput& psr) {
  std::map<TupleId, double> out;
  for (size_t i = 0; i < view.num_tuples(); ++i) {
    if (view.is_tombstone(i)) continue;
    out[view.tuple(i).id] = psr.topk_prob[i];
  }
  return out;
}

/// The acceptance property: pooled session `id` agrees with `dedicated`
/// (same outcome stream) at every rung -- qualities, per-x-tuple gain and
/// mass tables, and per-tuple top-k probabilities -- to 1e-12.
void ExpectMatchesDedicated(const SessionPool& pool, SessionPool::SessionId id,
                            const CleaningSession& dedicated) {
  ASSERT_EQ(pool.num_rungs(), dedicated.num_rungs());
  for (size_t rung = 0; rung < pool.num_rungs(); ++rung) {
    EXPECT_NEAR(pool.quality(id, rung), dedicated.quality(rung), kTol)
        << "rung " << rung;

    const TpOutput& pool_tp = pool.tp(id, rung);
    const TpOutput& ded_tp = dedicated.tp(rung);
    ASSERT_EQ(pool_tp.xtuple_gain.size(), ded_tp.xtuple_gain.size());
    for (size_t l = 0; l < ded_tp.xtuple_gain.size(); ++l) {
      EXPECT_NEAR(pool_tp.xtuple_gain[l], ded_tp.xtuple_gain[l], kTol)
          << "rung " << rung << " x-tuple " << l;
      EXPECT_NEAR(pool_tp.xtuple_topk_mass[l], ded_tp.xtuple_topk_mass[l],
                  kTol)
          << "rung " << rung << " x-tuple " << l;
    }

    const PsrOutput& pool_psr = pool.psr(id, rung);
    const PsrOutput& ded_psr = dedicated.psr(rung);
    EXPECT_EQ(pool_psr.num_nonzero, ded_psr.num_nonzero) << "rung " << rung;
    const std::map<TupleId, double> pool_topk =
        TopkById(pool.overlay(id), pool_psr);
    const std::map<TupleId, double> ded_topk =
        TopkById(dedicated.db(), ded_psr);
    ASSERT_EQ(pool_topk.size(), ded_topk.size()) << "rung " << rung;
    for (const auto& [tuple_id, prob] : ded_topk) {
      const auto it = pool_topk.find(tuple_id);
      ASSERT_NE(it, pool_topk.end()) << "tuple " << tuple_id;
      EXPECT_NEAR(it->second, prob, kTol)
          << "rung " << rung << " tuple " << tuple_id;
    }
  }
}

/// Draws up to `count` random clean outcomes against the dedicated
/// session's database (ids are stable, so they apply verbatim to the
/// pooled twin); empty when the database is fully certain.
std::vector<std::pair<XTupleId, TupleId>> DrawOutcomes(
    const ProbabilisticDatabase& db, int count, Rng* rng) {
  std::vector<std::pair<XTupleId, TupleId>> outcomes;
  for (int draw = 0; draw < count; ++draw) {
    std::vector<XTupleId> uncertain;
    for (size_t l = 0; l < db.num_xtuples(); ++l) {
      const auto& members = db.xtuple_members(static_cast<XTupleId>(l));
      if (members.size() > 1 || db.tuple(members[0]).prob < 1.0) {
        uncertain.push_back(static_cast<XTupleId>(l));
      }
    }
    if (uncertain.empty()) break;
    const XTupleId l = uncertain[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(uncertain.size()) - 1))];
    bool already = false;
    for (const auto& outcome : outcomes) already |= outcome.first == l;
    if (already) continue;  // one resolution per x-tuple per round
    const auto& members = db.xtuple_members(l);
    std::vector<double> weights;
    for (int32_t idx : members) weights.push_back(db.tuple(idx).prob);
    outcomes.emplace_back(l, db.tuple(members[rng->Discrete(weights)]).id);
  }
  return outcomes;
}

TEST(SessionPool, SessionsMatchDedicatedUnderInterleavedCleans) {
  Rng maker(424242);
  RandomDbOptions opts;
  opts.num_xtuples = 24;
  opts.max_alternatives = 4;
  ProbabilisticDatabase base = MakeRandomDatabase(&maker, opts);
  const KLadder ladder = MakeLadder({2, 5, 9});
  constexpr size_t kSessions = 3;

  Result<SessionPool> pool =
      SessionPool::Create(ProbabilisticDatabase(base), ladder);
  ASSERT_TRUE(pool.ok()) << pool.status();
  EXPECT_EQ(pool->ladder().ks, ladder.ks);

  std::vector<SessionPool::SessionId> ids;
  std::vector<CleaningSession> dedicated;
  for (size_t s = 0; s < kSessions; ++s) {
    ids.push_back(pool->OpenSession());
    Result<CleaningSession> single = CleaningSession::Start(
        ProbabilisticDatabase(base), ladder, EagerCompaction());
    ASSERT_TRUE(single.ok()) << single.status();
    dedicated.push_back(std::move(single).value());
  }
  EXPECT_EQ(pool->num_open(), kSessions);
  for (size_t s = 0; s < kSessions; ++s) {
    ExpectMatchesDedicated(*pool, ids[s], dedicated[s]);
  }

  Rng rng(99999);
  for (int step = 0; step < 10; ++step) {
    // Sessions advance on their own cadences (session s only cleans every
    // s+1 steps), so refreshes interleave with other sessions' applies.
    for (size_t s = 0; s < kSessions; ++s) {
      if (step % static_cast<int>(s + 1) != 0) continue;
      const auto outcomes =
          DrawOutcomes(dedicated[s].db(), 1 + static_cast<int>(s % 2), &rng);
      for (const auto& [xtuple, resolved] : outcomes) {
        ASSERT_TRUE(pool->ApplyCleanOutcome(ids[s], xtuple, resolved).ok());
        ASSERT_TRUE(dedicated[s].ApplyCleanOutcome(xtuple, resolved).ok());
      }
    }
    // Refresh pooled sessions in reverse order, dedicated in forward
    // order: agreement despite the asymmetry shows refreshes are
    // order-independent across sessions.
    for (size_t s = kSessions; s-- > 0;) {
      ASSERT_TRUE(pool->Refresh(ids[s]).ok());
    }
    for (size_t s = 0; s < kSessions; ++s) {
      ASSERT_TRUE(dedicated[s].Refresh().ok());
      ExpectMatchesDedicated(*pool, ids[s], dedicated[s]);
    }
  }
  // The shared base never absorbed anyone's cleans.
  EXPECT_FALSE(pool->base().has_tombstones());
  EXPECT_EQ(pool->base().num_tuples(), base.num_tuples());
}

TEST(SessionPool, ChurnReopensCleanSlots) {
  Rng maker(777);
  RandomDbOptions opts;
  opts.num_xtuples = 16;
  opts.max_alternatives = 3;
  ProbabilisticDatabase base = MakeRandomDatabase(&maker, opts);
  const KLadder ladder = MakeLadder({3, 7});

  Result<SessionPool> pool =
      SessionPool::Create(ProbabilisticDatabase(base), ladder);
  ASSERT_TRUE(pool.ok());

  // Dirty a session, close it, and reopen: the recycled slot must serve
  // the pristine base state, not the previous tenant's leftovers.
  const SessionPool::SessionId first = pool->OpenSession();
  Rng rng(31337);
  for (const auto& [xtuple, resolved] : DrawOutcomes(pool->base(), 4, &rng)) {
    ASSERT_TRUE(pool->ApplyCleanOutcome(first, xtuple, resolved).ok());
  }
  ASSERT_TRUE(pool->Refresh(first).ok());
  ASSERT_GT(pool->overlay(first).num_outcomes(), 0u);
  ASSERT_TRUE(pool->Close(first).ok());
  EXPECT_EQ(pool->num_open(), 0u);

  const SessionPool::SessionId reused = pool->OpenSession();
  EXPECT_EQ(reused, first);  // slot recycled
  EXPECT_EQ(pool->overlay(reused).num_outcomes(), 0u);
  for (size_t rung = 0; rung < pool->num_rungs(); ++rung) {
    EXPECT_NEAR(pool->quality(reused, rung), pool->base_tp(rung).quality,
                0.0);
  }

  // A session opened mid-stream behaves exactly like a dedicated session
  // started from the base now.
  Result<CleaningSession> dedicated = CleaningSession::Start(
      ProbabilisticDatabase(base), ladder, EagerCompaction());
  ASSERT_TRUE(dedicated.ok());
  for (int round = 0; round < 4; ++round) {
    for (const auto& [xtuple, resolved] :
         DrawOutcomes(dedicated->db(), 2, &rng)) {
      ASSERT_TRUE(pool->ApplyCleanOutcome(reused, xtuple, resolved).ok());
      ASSERT_TRUE(dedicated->ApplyCleanOutcome(xtuple, resolved).ok());
    }
    ASSERT_TRUE(pool->Refresh(reused).ok());
    ASSERT_TRUE(dedicated->Refresh().ok());
    ExpectMatchesDedicated(*pool, reused, *dedicated);
  }
}

TEST(SessionPool, CloseAndMergeMaterializesTheDedicatedDatabase) {
  Rng maker(2024);
  RandomDbOptions opts;
  opts.num_xtuples = 14;
  opts.max_alternatives = 3;
  ProbabilisticDatabase base = MakeRandomDatabase(&maker, opts);

  Result<SessionPool> pool =
      SessionPool::Create(ProbabilisticDatabase(base), /*k=*/4);
  ASSERT_TRUE(pool.ok());
  const SessionPool::SessionId id = pool->OpenSession();
  Result<CleaningSession> dedicated =
      CleaningSession::Start(ProbabilisticDatabase(base), /*k=*/4);
  ASSERT_TRUE(dedicated.ok());

  Rng rng(55);
  for (const auto& [xtuple, resolved] : DrawOutcomes(base, 5, &rng)) {
    ASSERT_TRUE(pool->ApplyCleanOutcome(id, xtuple, resolved).ok());
    ASSERT_TRUE(dedicated->ApplyCleanOutcome(xtuple, resolved).ok());
  }
  // Merge the still-dirty session: materialization consumes the recorded
  // outcomes, not the (deliberately stale) scan state.
  ASSERT_TRUE(pool->dirty(id));
  Result<ProbabilisticDatabase> merged = pool->CloseAndMerge(id);
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(pool->num_open(), 0u);

  const ProbabilisticDatabase reference = std::move(*dedicated).TakeDatabase();
  ASSERT_EQ(merged->num_tuples(), reference.num_tuples());
  EXPECT_FALSE(merged->has_tombstones());
  for (size_t i = 0; i < reference.num_tuples(); ++i) {
    const Tuple& a = merged->tuple(i);
    const Tuple& b = reference.tuple(i);
    EXPECT_EQ(a.id, b.id) << "rank " << i;
    EXPECT_EQ(a.xtuple, b.xtuple) << "rank " << i;
    EXPECT_EQ(a.is_null, b.is_null) << "rank " << i;
    EXPECT_DOUBLE_EQ(a.prob, b.prob) << "rank " << i;
    EXPECT_DOUBLE_EQ(a.score, b.score) << "rank " << i;
  }
}

TEST(SessionPool, ExecutePlanOverloadMatchesDedicatedSession) {
  Rng maker(91);
  RandomDbOptions opts;
  opts.num_xtuples = 10;
  opts.max_alternatives = 3;
  ProbabilisticDatabase base = MakeRandomDatabase(&maker, opts);
  CleaningProfile profile;
  for (size_t l = 0; l < base.num_xtuples(); ++l) {
    profile.costs.push_back(1 + static_cast<int64_t>(l % 3));
    profile.sc_probs.push_back(maker.Uniform(0.2, 0.9));
  }
  std::vector<int64_t> probes(base.num_xtuples(), 0);
  for (size_t l = 0; l < probes.size(); l += 2) probes[l] = 2;

  const size_t k = 3;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Result<SessionPool> pool =
        SessionPool::Create(ProbabilisticDatabase(base), k);
    ASSERT_TRUE(pool.ok());
    const SessionPool::SessionId id = pool->OpenSession();
    Result<CleaningSession> session =
        CleaningSession::Start(ProbabilisticDatabase(base), k);
    ASSERT_TRUE(session.ok());

    Rng rng_a(seed), rng_b(seed);
    Result<SessionExecutionReport> pooled =
        ExecutePlan(&*pool, id, profile, probes, &rng_a);
    ASSERT_TRUE(pooled.ok()) << pooled.status();
    Result<SessionExecutionReport> single =
        ExecutePlan(&*session, profile, probes, &rng_b);
    ASSERT_TRUE(single.ok());

    EXPECT_EQ(pooled->spent, single->spent);
    EXPECT_EQ(pooled->leftover, single->leftover);
    EXPECT_EQ(pooled->successes, single->successes);
    ASSERT_EQ(pooled->log.size(), single->log.size());
    for (size_t j = 0; j < single->log.size(); ++j) {
      EXPECT_EQ(pooled->log[j].resolved_id, single->log[j].resolved_id);
    }
    ASSERT_TRUE(pool->Refresh(id).ok());
    ASSERT_TRUE(session->Refresh().ok());
    ExpectMatchesDedicated(*pool, id, *session);
  }
}

TEST(SessionPool, ValidatesArguments) {
  Rng maker(5);
  ProbabilisticDatabase base = MakeRandomDatabase(&maker, {});

  EXPECT_FALSE(SessionPool::Create(ProbabilisticDatabase(base), 0).ok());
  KLadder bad;
  bad.ks = {5, 3};
  EXPECT_FALSE(SessionPool::Create(ProbabilisticDatabase(base), bad).ok());

  Result<SessionPool> pool =
      SessionPool::Create(ProbabilisticDatabase(base), 2);
  ASSERT_TRUE(pool.ok());
  EXPECT_FALSE(pool->ApplyCleanOutcome(0, 0, 0).ok());  // never opened
  EXPECT_FALSE(pool->Refresh(99).ok());
  EXPECT_FALSE(pool->Close(0).ok());
  EXPECT_FALSE(pool->is_open(0));

  const SessionPool::SessionId id = pool->OpenSession();
  EXPECT_TRUE(pool->is_open(id));
  EXPECT_FALSE(pool->ApplyCleanOutcome(id, -1, 0).ok());    // bad x-tuple
  EXPECT_FALSE(pool->ApplyCleanOutcome(id, 0, 9999).ok());  // bad outcome
  ASSERT_TRUE(pool->Close(id).ok());
  EXPECT_FALSE(pool->Close(id).ok());  // double close
  CleaningProfile profile;
  profile.costs.assign(base.num_xtuples(), 1);
  profile.sc_probs.assign(base.num_xtuples(), 0.5);
  std::vector<int64_t> probes(base.num_xtuples(), 1);
  Rng rng(1);
  EXPECT_FALSE(ExecutePlan(&*pool, id, profile, probes, &rng).ok());
}

TEST(DatabaseOverlay, RecordsOutcomesWithoutTouchingTheBase) {
  Rng maker(66);
  RandomDbOptions opts;
  opts.num_xtuples = 8;
  opts.max_alternatives = 3;
  const ProbabilisticDatabase base = MakeRandomDatabase(&maker, opts);
  DatabaseOverlay overlay(&base);
  EXPECT_EQ(overlay.divergence_rank(), base.num_tuples());

  // Find an x-tuple with several alternatives; collapse to its best real
  // one.
  XTupleId target = -1;
  for (size_t l = 0; l < base.num_xtuples(); ++l) {
    if (base.xtuple_members(static_cast<XTupleId>(l)).size() > 1) {
      target = static_cast<XTupleId>(l);
      break;
    }
  }
  ASSERT_GE(target, 0);
  const auto members = base.xtuple_members(target);
  const Tuple resolved = base.tuple(members.front());
  ASSERT_FALSE(resolved.is_null);

  Result<ProbabilisticDatabase::CleanOutcomeDelta> delta =
      overlay.ApplyCleanOutcome(target, resolved.id);
  ASSERT_TRUE(delta.ok()) << delta.status();
  EXPECT_EQ(delta->first_changed_rank, static_cast<size_t>(members.front()));
  EXPECT_EQ(overlay.divergence_rank(), static_cast<size_t>(members.front()));
  EXPECT_EQ(overlay.num_outcomes(), 1u);
  EXPECT_EQ(overlay.num_tombstones(), members.size() - 1);

  // The overlay view reflects the collapse...
  ASSERT_EQ(overlay.xtuple_members(target).size(), 1u);
  EXPECT_DOUBLE_EQ(overlay.tuple(static_cast<size_t>(members.front())).prob,
                   1.0);
  EXPECT_DOUBLE_EQ(overlay.xtuple_real_mass(target), 1.0);
  for (int32_t idx : members) {
    if (idx == members.front()) continue;
    EXPECT_TRUE(overlay.is_tombstone(static_cast<size_t>(idx)));
  }
  // ...while the base is untouched.
  EXPECT_FALSE(base.has_tombstones());
  EXPECT_EQ(base.xtuple_members(target).size(), members.size());
  EXPECT_LT(base.tuple(members.front()).prob, 1.0);

  // Re-cleaning: same outcome is a no-op, a dropped sibling is NotFound.
  Result<ProbabilisticDatabase::CleanOutcomeDelta> again =
      overlay.ApplyCleanOutcome(target, resolved.id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->first_changed_rank, base.num_tuples());
  EXPECT_EQ(overlay.num_outcomes(), 1u);
  if (members.size() > 1) {
    EXPECT_FALSE(
        overlay.ApplyCleanOutcome(target, base.tuple(members[1]).id).ok());
  }

  // Validation mirrors the in-place path.
  EXPECT_FALSE(overlay.ApplyCleanOutcome(-1, 0).ok());
  EXPECT_FALSE(overlay.ApplyCleanOutcome(999, 0).ok());
  EXPECT_FALSE(overlay.ApplyCleanOutcome(target, 123456).ok());

  // Materialization equals replaying the outcome on a copy.
  ProbabilisticDatabase reference = base;
  ASSERT_TRUE(reference.ApplyCleanOutcome(target, resolved.id).ok());
  reference.CompactTombstones();
  const ProbabilisticDatabase merged = overlay.MaterializeCleaned();
  ASSERT_EQ(merged.num_tuples(), reference.num_tuples());
  for (size_t i = 0; i < reference.num_tuples(); ++i) {
    EXPECT_EQ(merged.tuple(i).id, reference.tuple(i).id);
    EXPECT_DOUBLE_EQ(merged.tuple(i).prob, reference.tuple(i).prob);
  }
}

TEST(SessionPoolDeathTest, DirtyReadsAreAHardFailureInEveryBuildType) {
  // The Release-mode stale-read regression: these guards used to be
  // UCLEAN_DCHECKs, which compile out under NDEBUG -- a dirty session
  // then silently served its pre-clean state. They are UCLEAN_CHECKs now,
  // so this death test must pass in Debug AND Release CI legs alike.
  Rng maker(12);
  RandomDbOptions opts;
  opts.num_xtuples = 8;
  opts.max_alternatives = 3;
  ProbabilisticDatabase base = MakeRandomDatabase(&maker, opts);

  Result<SessionPool> pool =
      SessionPool::Create(ProbabilisticDatabase(base), 3);
  ASSERT_TRUE(pool.ok());
  const SessionPool::SessionId id = pool->OpenSession();
  Rng rng(7);
  const auto outcomes = DrawOutcomes(pool->base(), 1, &rng);
  ASSERT_FALSE(outcomes.empty());
  ASSERT_TRUE(
      pool->ApplyCleanOutcome(id, outcomes[0].first, outcomes[0].second)
          .ok());
  ASSERT_TRUE(pool->dirty(id));
  EXPECT_DEATH(pool->quality(id), "UCLEAN_CHECK failed");
  EXPECT_DEATH(pool->tp(id), "UCLEAN_CHECK failed");
  EXPECT_DEATH(pool->psr(id), "UCLEAN_CHECK failed");
  EXPECT_DEATH(pool->tps(id), "UCLEAN_CHECK failed");

  Result<CleaningSession> session = CleaningSession::Start(std::move(base), 3);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(
      session->ApplyCleanOutcome(outcomes[0].first, outcomes[0].second).ok());
  ASSERT_TRUE(session->dirty());
  EXPECT_DEATH(session->quality(), "UCLEAN_CHECK failed");
  EXPECT_DEATH(session->tp(), "UCLEAN_CHECK failed");
  EXPECT_DEATH(session->psr(), "UCLEAN_CHECK failed");
  EXPECT_DEATH(session->tps(), "UCLEAN_CHECK failed");
}

#ifndef NDEBUG
/// Two threads hammering a pool's mutating entry points from outside any
/// serialization: the header's "callers serialize access" contract in
/// violated form. The debug-build reentrancy guard must turn the overlap
/// into a hard UCLEAN_CHECK failure (instead of the silent slot-table
/// corruption a release build would risk). Nearly all of each thread's
/// time is spent inside guarded calls (apply + replay-carrying refresh),
/// so an overlap -- and the abort -- is certain within a few scheduler
/// slices even on one core.
TEST(SessionPoolDeathTest, ConcurrentUseTripsTheSerializedCallerGuard) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SyntheticOptions opts;
        opts.num_xtuples = 500;
        opts.real_mass_min = 0.4;
        opts.real_mass_max = 0.9;
        Result<ProbabilisticDatabase> base = GenerateSynthetic(opts);
        UCLEAN_CHECK(base.ok());
        Result<SessionPool> pool =
            SessionPool::Create(std::move(base).value(), 8);
        UCLEAN_CHECK(pool.ok());
        const auto hammer = [&pool](uint64_t seed) {
          Rng rng(seed);
          const SessionPool::SessionId id = pool->OpenSession();
          for (int iter = 0; iter < 4000; ++iter) {
            const DatabaseOverlay& view = pool->overlay(id);
            const size_t rank = static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(view.num_tuples() - 1)));
            if (view.is_tombstone(rank)) continue;
            const Tuple& t = view.tuple(rank);
            (void)pool->ApplyCleanOutcome(id, t.xtuple, t.id);
            (void)pool->Refresh(id);
          }
        };
        std::thread other([&hammer] { hammer(2); });
        hammer(1);
        other.join();
      },
      "serialized");
}

/// Same violated contract against a dedicated CleaningSession: its
/// serialized-caller guard was promoted from documentation to a
/// SerialGate capability alongside the pool's, so two threads driving
/// one session must abort the same way.
TEST(SessionPoolDeathTest, ConcurrentSessionUseTripsTheSerializedGuard) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SyntheticOptions opts;
        opts.num_xtuples = 500;
        opts.real_mass_min = 0.4;
        opts.real_mass_max = 0.9;
        Result<ProbabilisticDatabase> base = GenerateSynthetic(opts);
        UCLEAN_CHECK(base.ok());
        Result<CleaningSession> session =
            CleaningSession::Start(std::move(base).value(), 8);
        UCLEAN_CHECK(session.ok());
        const auto hammer = [&session](uint64_t seed) {
          Rng rng(seed);
          for (int iter = 0; iter < 4000; ++iter) {
            const ProbabilisticDatabase& view = session->db();
            const size_t rank = static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(view.num_tuples() - 1)));
            if (view.is_tombstone(rank)) continue;
            const Tuple& t = view.tuple(rank);
            (void)session->ApplyCleanOutcome(t.xtuple, t.id);
            (void)session->Refresh();
          }
        };
        std::thread other([&hammer] { hammer(2); });
        hammer(1);
        other.join();
      },
      "serialized");
}
#endif  // NDEBUG

}  // namespace
}  // namespace uclean
