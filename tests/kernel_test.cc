// Tests for the retargetable scan kernels (rank/kernel.h) and their
// BITWISE contract: the scalar and AVX2 kernels must produce bit-for-bit
// identical results -- not merely close -- for every element op and for
// every scan driver built on them (one-shot ladders, engine
// checkpoints/replays, pooled-session overlays, sharded cuts at any
// thread count). The contract holds everywhere, but the count-refresh
// grid (kCountRefreshGridLive live ordinals) is where it is load-bearing:
// the workloads here cross the grid so RebuildCounts runs under both
// kernels, and the engine comparisons restart scans at every checkpoint.
// Also covers the runtime dispatch: kAuto honors UCLEAN_DISABLE_AVX2
// (the forced-scalar CI leg's switch), an explicit kAvx2 ignores it, and
// impossible asks fail fast.
//
// Every scalar-vs-AVX2 comparison is skipped (never silently passed)
// when the AVX2 kernel cannot run on this host.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "clean/session_pool.h"
#include "common/rng.h"
#include "exec/thread_pool.h"
#include "model/database.h"
#include "rank/kernel.h"
#include "rank/psr.h"
#include "rank/psr_engine.h"
#include "rank/psr_scan_core.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace uclean {
namespace {

using psr_internal::AlignedBuf;
using psr_internal::ScanKernel;

/// RAII setter for UCLEAN_DISABLE_AVX2 (read per call, never cached).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_.assign(old);
    had_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

KLadder MakeLadder(std::vector<size_t> ks) {
  Result<KLadder> ladder = KLadder::Of(std::move(ks));
  UCLEAN_CHECK(ladder.ok());
  return std::move(ladder).value();
}

ExecOptions ExecWith(KernelKind kernel, size_t threads = 1) {
  ExecOptions exec;
  exec.kernel = kernel;
  exec.num_threads = threads;
  Result<ExecOptions> resolved = ResolveExec(std::move(exec));
  UCLEAN_CHECK(resolved.ok());
  return std::move(resolved).value();
}

/// Sub-unit existence masses: nothing saturates, the count vector stays
/// wide, and deep rungs cross the refresh grid (RebuildCounts under both
/// kernels). Unit masses saturate instead and exercise the Lemma-2 path.
ProbabilisticDatabase MakeDb(bool subunit, size_t num_xtuples = 2000) {
  SyntheticOptions opts;
  opts.num_xtuples = num_xtuples;
  if (subunit) {
    opts.real_mass_min = 0.2;
    opts.real_mass_max = 0.5;
  }
  Result<ProbabilisticDatabase> db = GenerateSynthetic(opts);
  UCLEAN_CHECK(db.ok());
  return std::move(db).value();
}

/// Exact equality, element for element: EXPECT_EQ on doubles compares
/// bit patterns for every value the scan can produce (no NaNs).
void ExpectBitwiseEqual(const std::vector<double>& scalar,
                        const std::vector<double>& avx2,
                        const std::string& label) {
  ASSERT_EQ(scalar.size(), avx2.size()) << label;
  for (size_t i = 0; i < scalar.size(); ++i) {
    ASSERT_EQ(scalar[i], avx2[i]) << label << " at index " << i;
  }
}

void ExpectPsrBitwiseEqual(const PsrOutput& scalar, const PsrOutput& avx2,
                           const std::string& label) {
  ASSERT_EQ(scalar.k, avx2.k) << label;
  EXPECT_EQ(scalar.scan_end, avx2.scan_end) << label;
  EXPECT_EQ(scalar.num_nonzero, avx2.num_nonzero) << label;
  ExpectBitwiseEqual(scalar.topk_prob, avx2.topk_prob, label + " topk_prob");
  ExpectBitwiseEqual(scalar.best_rank_prob, avx2.best_rank_prob,
                     label + " best_rank_prob");
  for (size_t h = 0; h < scalar.k; ++h) {
    EXPECT_EQ(scalar.best_rank_index[h], avx2.best_rank_index[h])
        << label << " rank " << h + 1;
  }
  ASSERT_EQ(scalar.has_rank_probabilities, avx2.has_rank_probabilities)
      << label;
  if (scalar.has_rank_probabilities) {
    ExpectBitwiseEqual(scalar.rank_prob, avx2.rank_prob,
                       label + " rank_prob");
  }
}

/// True when this host can run the AVX2 kernel; comparisons skip (never
/// silently pass) otherwise. kAvx2 ignores UCLEAN_DISABLE_AVX2 by
/// design, so these comparisons run even on the forced-scalar CI leg.
bool Avx2Available() {
  return psr_internal::Avx2ScanKernelOrNull() != nullptr;
}

#define SKIP_WITHOUT_AVX2()                                   \
  if (!Avx2Available()) {                                     \
    GTEST_SKIP() << "AVX2 kernel unavailable on this host";   \
  }

// -------------------------------------------------------------- dispatch

TEST(KernelDispatch, ScalarAlwaysAvailable) {
  Result<const ScanKernel*> scalar = SelectScanKernel(KernelKind::kScalar);
  ASSERT_TRUE(scalar.ok()) << scalar.status();
  EXPECT_EQ((*scalar)->kind, KernelKind::kScalar);
  EXPECT_STREQ((*scalar)->name, "scalar");
}

TEST(KernelDispatch, AutoResolvesToConcreteKernel) {
  Result<const ScanKernel*> kernel = SelectScanKernel(KernelKind::kAuto);
  ASSERT_TRUE(kernel.ok()) << kernel.status();
  EXPECT_NE((*kernel)->kind, KernelKind::kAuto);
  if (Avx2Supported() && !Avx2Disabled()) {
    EXPECT_EQ((*kernel)->kind, KernelKind::kAvx2);
  } else {
    EXPECT_EQ((*kernel)->kind, KernelKind::kScalar);
  }
}

TEST(KernelDispatch, ExplicitAvx2FailsFastWhenUnavailable) {
  Result<const ScanKernel*> avx2 = SelectScanKernel(KernelKind::kAvx2);
  if (Avx2Supported()) {
    ASSERT_TRUE(avx2.ok()) << avx2.status();
    EXPECT_EQ((*avx2)->kind, KernelKind::kAvx2);
    EXPECT_STREQ((*avx2)->name, "avx2");
  } else {
    EXPECT_FALSE(avx2.ok());
  }
}

TEST(KernelDispatch, EnvironmentSwitchForcesScalarForAutoOnly) {
  // kAuto honors the switch: on AVX2 hardware the forced-scalar leg
  // demotes the default kernel; an explicit kAvx2 still resolves so
  // equivalence tests can pit both kernels under that environment.
  ScopedEnv disable("UCLEAN_DISABLE_AVX2", "1");
  EXPECT_TRUE(Avx2Disabled());
  Result<const ScanKernel*> auto_kernel = SelectScanKernel(KernelKind::kAuto);
  ASSERT_TRUE(auto_kernel.ok()) << auto_kernel.status();
  EXPECT_EQ((*auto_kernel)->kind, KernelKind::kScalar);
  EXPECT_EQ(psr_internal::DefaultScanKernel().kind, KernelKind::kScalar);
  if (Avx2Supported()) {
    Result<const ScanKernel*> forced = SelectScanKernel(KernelKind::kAvx2);
    ASSERT_TRUE(forced.ok()) << forced.status();
    EXPECT_EQ((*forced)->kind, KernelKind::kAvx2);
  }
}

TEST(KernelDispatch, EnvironmentSwitchFalsyValuesDoNotDisable) {
  for (const char* falsy : {"", "0", "off", "OFF", "false"}) {
    ScopedEnv env("UCLEAN_DISABLE_AVX2", falsy);
    EXPECT_FALSE(Avx2Disabled()) << "value '" << falsy << "'";
  }
  for (const char* truthy : {"1", "on", "yes"}) {
    ScopedEnv env("UCLEAN_DISABLE_AVX2", truthy);
    EXPECT_TRUE(Avx2Disabled()) << "value '" << truthy << "'";
  }
}

TEST(KernelDispatch, KindNames) {
  EXPECT_STREQ(KernelKindName(KernelKind::kAuto), "auto");
  EXPECT_STREQ(KernelKindName(KernelKind::kScalar), "scalar");
  EXPECT_STREQ(KernelKindName(KernelKind::kAvx2), "avx2");
}

TEST(KernelDispatch, ScanResultRecordsResolvedKernel) {
  const ProbabilisticDatabase db = MakeDb(/*subunit=*/false, 50);
  Result<ScanRequest> request = ScanRequest::ForK(5);
  ASSERT_TRUE(request.ok());
  request->exec.kernel = KernelKind::kScalar;
  Result<ScanResult> scalar = ComputePsrLadder(db, *request);
  ASSERT_TRUE(scalar.ok()) << scalar.status();
  EXPECT_EQ(scalar->kernel, KernelKind::kScalar);

  // Under the forced-scalar environment an auto request resolves (and
  // reports) scalar even on AVX2 hardware.
  ScopedEnv disable("UCLEAN_DISABLE_AVX2", "1");
  request->exec.kernel = KernelKind::kAuto;
  Result<ScanResult> forced = ComputePsrLadder(db, *request);
  ASSERT_TRUE(forced.ok()) << forced.status();
  EXPECT_EQ(forced->kernel, KernelKind::kScalar);
}

// ---------------------------------------------------- element-op parity

/// Random but reproducible operand buffers, including the remainder
/// lanes (sizes straddle multiples of the 4-wide AVX2 vectors).
constexpr size_t kOpSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 67};

TEST(KernelOps, FoldScaleArgmaxBitwiseEqual) {
  SKIP_WITHOUT_AVX2();
  const ScanKernel* avx2 = psr_internal::Avx2ScanKernelOrNull();
  const ScanKernel& scalar = psr_internal::ScalarScanKernel();
  Rng rng(20260808);
  for (const size_t n : kOpSizes) {
    std::vector<double> base(n + 1), src(n);
    for (double& v : base) v = rng.Uniform(0.0, 1.0);
    for (double& v : src) v = rng.Uniform(0.0, 1.0);
    const double q = rng.Uniform(0.01, 0.99);
    const std::string label = "n=" + std::to_string(n);

    if (n >= 1) {
      // fold_factor, distinct buffers then the aliased in-place form
      // RebuildCounts uses (c == base).
      std::vector<double> c_s(n + 1), c_v(n + 1);
      scalar.fold_factor(c_s.data(), base.data(), n, q);
      avx2->fold_factor(c_v.data(), base.data(), n, q);
      ExpectBitwiseEqual(c_s, c_v, "fold " + label);
      std::vector<double> alias_s(base), alias_v(base);
      scalar.fold_factor(alias_s.data(), alias_s.data(), n, q);
      avx2->fold_factor(alias_v.data(), alias_v.data(), n, q);
      ExpectBitwiseEqual(alias_s, alias_v, "fold-alias " + label);

      // The divide-out pair points at the same scalar code in both
      // tables (sequential recurrences; see rank/kernel.h).
      EXPECT_EQ(scalar.divide_out_fwd, avx2->divide_out_fwd);
      EXPECT_EQ(scalar.divide_out_bwd, avx2->divide_out_bwd);
    }

    // scale
    std::vector<double> dst_s(n), dst_v(n);
    const double e = rng.Uniform(0.0, 1.0);
    scalar.scale(dst_s.data(), src.data(), n, e);
    avx2->scale(dst_v.data(), src.data(), n, e);
    ExpectBitwiseEqual(dst_s, dst_v, "scale " + label);

    // update_argmax, including ties (strict compare: ties keep the
    // incumbent in both kernels).
    std::vector<double> best_s(n), best_v(n);
    std::vector<int32_t> idx_s(n, -1), idx_v(n, -1);
    for (size_t i = 0; i < n; ++i) {
      best_s[i] = best_v[i] = (i % 3 == 0) ? src[i] : rng.Uniform(0.0, 1.0);
    }
    scalar.update_argmax(best_s.data(), idx_s.data(), src.data(), n, 42);
    avx2->update_argmax(best_v.data(), idx_v.data(), src.data(), n, 42);
    ExpectBitwiseEqual(best_s, best_v, "argmax-prob " + label);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(idx_s[i], idx_v[i]) << "argmax-index " << label << " at " << i;
    }

    // emit_segment without trackers: dst and the returned prefix must
    // match the unfused scale + sequential-sum composition bitwise in
    // both kernels (the prefix is loop-carried, so this checks that
    // neither kernel re-associates the accumulation).
    const double p0 = rng.Uniform(0.0, 2.0);
    std::vector<double> ref(n);
    scalar.scale(ref.data(), src.data(), n, e);
    double p_ref = p0;
    for (size_t i = 0; i < n; ++i) p_ref += ref[i];
    std::vector<double> emit_s(n), emit_v(n);
    const double p_s = scalar.emit_segment(emit_s.data(), src.data(), n, e, p0,
                                           nullptr, nullptr, 7);
    const double p_v = avx2->emit_segment(emit_v.data(), src.data(), n, e, p0,
                                          nullptr, nullptr, 7);
    ExpectBitwiseEqual(emit_s, ref, "emit-dst-vs-unfused " + label);
    ExpectBitwiseEqual(emit_s, emit_v, "emit-dst " + label);
    ASSERT_EQ(p_s, p_ref) << "emit-prefix-vs-unfused " << label;
    ASSERT_EQ(p_s, p_v) << "emit-prefix " << label;

    // emit_segment with trackers folded in: the fused argmax must agree
    // with the standalone update_argmax over the same window.
    std::vector<double> eb_ref(best_s), eb_s(best_s), eb_v(best_s);
    std::vector<int32_t> ei_ref(idx_s), ei_s(idx_s), ei_v(idx_s);
    scalar.update_argmax(eb_ref.data(), ei_ref.data(), emit_s.data(), n, 99);
    const double tp_s = scalar.emit_segment(emit_s.data(), src.data(), n, e,
                                            p0, eb_s.data(), ei_s.data(), 99);
    const double tp_v = avx2->emit_segment(emit_v.data(), src.data(), n, e, p0,
                                           eb_v.data(), ei_v.data(), 99);
    ASSERT_EQ(tp_s, p_ref) << "emit-tracked-prefix " << label;
    ASSERT_EQ(tp_v, p_ref) << "emit-tracked-prefix-avx2 " << label;
    ExpectBitwiseEqual(eb_s, eb_ref, "emit-argmax-prob-vs-unfused " + label);
    ExpectBitwiseEqual(eb_s, eb_v, "emit-argmax-prob " + label);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(ei_s[i], ei_ref[i]) << "emit-argmax-index " << label;
      ASSERT_EQ(ei_s[i], ei_v[i]) << "emit-argmax-index-avx2 " << label;
    }
  }
}

// ------------------------------------------------- scan-level equality

TEST(KernelScan, LadderScanBitwiseEqualAcrossKernelsAndThreads) {
  const KLadder ladder = MakeLadder({8, 256});
  PsrOptions options;
  options.store_rank_probabilities = true;
  SKIP_WITHOUT_AVX2();
  for (const bool subunit : {true, false}) {
    const ProbabilisticDatabase db = MakeDb(subunit);
    Result<std::vector<PsrOutput>> scalar =
        ScanPsrLadder(db, ladder, options, ExecWith(KernelKind::kScalar));
    ASSERT_TRUE(scalar.ok()) << scalar.status();
    if (subunit) {
      // The deep rung must cross the refresh grid, or RebuildCounts
      // never runs and the grid anchor goes untested.
      ASSERT_GT(scalar->back().scan_end,
                psr_internal::kCountRefreshGridLive);
    }
    // Sharded cuts at several thread counts: every (kernel, threads)
    // combination must be bitwise equal to the sequential scalar scan.
    for (const size_t threads : {1u, 2u, 3u}) {
      Result<std::vector<PsrOutput>> avx2 = ScanPsrLadder(
          db, ladder, options, ExecWith(KernelKind::kAvx2, threads));
      ASSERT_TRUE(avx2.ok()) << avx2.status();
      for (size_t j = 0; j < ladder.size(); ++j) {
        ExpectPsrBitwiseEqual(
            (*scalar)[j], (*avx2)[j],
            (subunit ? "subunit" : "unit") + std::string(" threads=") +
                std::to_string(threads) + " k=" + std::to_string(ladder[j]));
      }
    }
  }
}

TEST(KernelScan, EngineReplayFromEveryCheckpointBitwiseEqual) {
  SKIP_WITHOUT_AVX2();
  const ProbabilisticDatabase db = MakeDb(/*subunit=*/true, 800);
  const KLadder ladder = MakeLadder({4, 160});
  PsrOptions options;
  options.store_rank_probabilities = true;

  const auto make_engine = [&](KernelKind kernel) {
    ScanRequest request;
    request.ladder = ladder;
    request.psr = options;
    request.exec = ExecWith(kernel);
    return PsrEngine::Create(db, request);
  };
  Result<PsrEngine> scalar = make_engine(KernelKind::kScalar);
  Result<PsrEngine> avx2 = make_engine(KernelKind::kAvx2);
  ASSERT_TRUE(scalar.ok()) << scalar.status();
  ASSERT_TRUE(avx2.ok()) << avx2.status();

  // Identical checkpoint placement (same live ordinals, same cadence)
  // and bitwise-identical outputs from the initial scans.
  ASSERT_EQ(scalar->checkpoint_positions(), avx2->checkpoint_positions());
  for (size_t j = 0; j < ladder.size(); ++j) {
    ExpectPsrBitwiseEqual(scalar->output(j), avx2->output(j),
                          "create k=" + std::to_string(ladder[j]));
  }

  // Replays restarted at EVERY checkpoint rank: the restored snapshot
  // plus the replayed suffix must agree bitwise between kernels, and
  // with the uninterrupted scan of either.
  const std::vector<size_t> positions = scalar->checkpoint_positions();
  ASSERT_GT(positions.size(), 4u);
  for (const size_t pos : positions) {
    PsrEngine scalar_restart = *scalar;
    PsrEngine avx2_restart = *avx2;
    ASSERT_TRUE(scalar_restart.Replay(db, pos).ok()) << "restart at " << pos;
    ASSERT_TRUE(avx2_restart.Replay(db, pos).ok()) << "restart at " << pos;
    for (size_t j = 0; j < ladder.size(); ++j) {
      const std::string label = "restart at " + std::to_string(pos) +
                                " k=" + std::to_string(ladder[j]);
      ExpectPsrBitwiseEqual(scalar_restart.output(j), avx2_restart.output(j),
                            label);
      ExpectPsrBitwiseEqual(scalar->output(j), scalar_restart.output(j),
                            label + " vs full scan");
    }
  }
}

TEST(KernelScan, PooledSessionOverlaysBitwiseEqualUnderCleans) {
  SKIP_WITHOUT_AVX2();
  const ProbabilisticDatabase db = MakeDb(/*subunit=*/true, 1200);
  const KLadder ladder = MakeLadder({8, 192});
  constexpr size_t kSessions = 3;

  const auto make_pool = [&](KernelKind kernel) {
    SessionPool::Options options;
    options.exec = ExecWith(kernel);
    return SessionPool::Create(ProbabilisticDatabase(db), ladder, options);
  };
  Result<SessionPool> scalar = make_pool(KernelKind::kScalar);
  Result<SessionPool> avx2 = make_pool(KernelKind::kAvx2);
  ASSERT_TRUE(scalar.ok()) << scalar.status();
  ASSERT_TRUE(avx2.ok()) << avx2.status();

  std::vector<SessionPool::SessionId> scalar_ids, avx2_ids;
  for (size_t s = 0; s < kSessions; ++s) {
    scalar_ids.push_back(scalar->OpenSession());
    avx2_ids.push_back(avx2->OpenSession());
  }

  // Identical per-session outcome streams through both pools; every
  // refresh replays each session's overlay through its pool's kernel,
  // and the maintained per-rung state must stay bitwise equal.
  Rng rng(20260808);
  for (int round = 0; round < 3; ++round) {
    for (size_t s = 0; s < kSessions; ++s) {
      const size_t scan_end =
          scalar->psr(scalar_ids[s], ladder.size() - 1).scan_end;
      const size_t rank = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(scan_end - 1)));
      const DatabaseOverlay& view = scalar->overlay(scalar_ids[s]);
      if (view.is_tombstone(rank)) continue;
      const Tuple& t = view.tuple(rank);
      const TupleId resolved = rng.Bernoulli(0.3) ? TupleId{-1} : t.id;
      const bool s_ok =
          scalar->ApplyCleanOutcome(scalar_ids[s], t.xtuple, resolved).ok();
      const bool v_ok =
          avx2->ApplyCleanOutcome(avx2_ids[s], t.xtuple, resolved).ok();
      ASSERT_EQ(s_ok, v_ok);
    }
    ASSERT_TRUE(scalar->RefreshAll().ok());
    ASSERT_TRUE(avx2->RefreshAll().ok());
    for (size_t s = 0; s < kSessions; ++s) {
      for (size_t j = 0; j < ladder.size(); ++j) {
        const std::string label = "round " + std::to_string(round) +
                                  " session " + std::to_string(s) +
                                  " k=" + std::to_string(ladder[j]);
        ExpectPsrBitwiseEqual(scalar->psr(scalar_ids[s], j),
                              avx2->psr(avx2_ids[s], j), label);
        ASSERT_EQ(scalar->quality(scalar_ids[s], j),
                  avx2->quality(avx2_ids[s], j))
            << label;
      }
    }
  }
}

}  // namespace
}  // namespace uclean
