// Unit tests for possible-world enumeration, deterministic top-k, the
// Lemma-1 closed form, and the PW quality baseline.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "model/paper_example.h"
#include "pworld/mass_index.h"
#include "pworld/pw_quality.h"
#include "pworld/pw_result.h"
#include "pworld/world_iterator.h"
#include "tests/test_util.h"

namespace uclean {
namespace {

TEST(PossibleWorldIterator, VisitsExactlyAllWorlds) {
  ProbabilisticDatabase db = MakeUdb1();
  size_t count = 0;
  for (PossibleWorldIterator it(db); !it.Done(); it.Next()) ++count;
  EXPECT_EQ(static_cast<double>(count), db.NumPossibleWorlds());
}

TEST(PossibleWorldIterator, ProbabilitiesSumToOne) {
  ProbabilisticDatabase db = MakeUdb1();
  double total = 0.0;
  for (PossibleWorldIterator it(db); !it.Done(); it.Next()) {
    total += it.probability();
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PossibleWorldIterator, SubUnitMassStillSumsToOne) {
  // Null completion makes the world space a true probability space even
  // when x-tuple masses are below 1.
  Rng rng(404);
  RandomDbOptions opts;
  opts.num_xtuples = 5;
  opts.max_alternatives = 3;
  opts.allow_subunit_mass = true;
  for (int trial = 0; trial < 10; ++trial) {
    ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
    double total = 0.0;
    for (PossibleWorldIterator it(db); !it.Done(); it.Next()) {
      total += it.probability();
    }
    EXPECT_NEAR(total, 1.0, 1e-10);
  }
}

TEST(PossibleWorldIterator, EachWorldDrawsOnePerXTuple) {
  ProbabilisticDatabase db = MakeUdb1();
  for (PossibleWorldIterator it(db); !it.Done(); it.Next()) {
    const auto& chosen = it.chosen_rank_indices();
    ASSERT_EQ(chosen.size(), db.num_xtuples());
    for (size_t l = 0; l < chosen.size(); ++l) {
      EXPECT_EQ(db.tuple(chosen[l]).xtuple, static_cast<XTupleId>(l));
    }
  }
}

TEST(DeterministicTopK, PicksBestRanked) {
  const std::vector<int32_t> chosen = {9, 4, 7, 1};
  EXPECT_EQ(DeterministicTopK(chosen, 2), (std::vector<int32_t>{1, 4}));
  EXPECT_EQ(DeterministicTopK(chosen, 1), (std::vector<int32_t>{1}));
}

TEST(DeterministicTopK, ShortWorldReturnsEverything) {
  const std::vector<int32_t> chosen = {5, 2};
  EXPECT_EQ(DeterministicTopK(chosen, 10), (std::vector<int32_t>{2, 5}));
}

TEST(XTupleMassIndex, MatchesDirectSums) {
  Rng rng(77);
  RandomDbOptions opts;
  opts.num_xtuples = 6;
  opts.max_alternatives = 4;
  ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
  XTupleMassIndex index(db);
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    for (int32_t boundary = 0;
         boundary <= static_cast<int32_t>(db.num_tuples()); ++boundary) {
      double expected_above = 0.0, expected_at_or_above = 0.0;
      for (int32_t idx : db.xtuple_members(static_cast<XTupleId>(l))) {
        if (idx < boundary) expected_above += db.tuple(idx).prob;
        if (idx <= boundary) expected_at_or_above += db.tuple(idx).prob;
      }
      EXPECT_NEAR(index.MassRankedAbove(static_cast<XTupleId>(l), boundary),
                  expected_above, 1e-12);
      EXPECT_NEAR(
          index.MassRankedAtOrAbove(static_cast<XTupleId>(l), boundary),
          expected_at_or_above, 1e-12);
    }
  }
}

TEST(PwQuality, ResultProbabilitiesSumToOne) {
  ProbabilisticDatabase db = MakeUdb1();
  Result<PwOutput> pw = ComputePwQuality(db, 3);
  ASSERT_TRUE(pw.ok());
  double total = 0.0;
  for (const auto& [result, prob] : pw->results) total += prob;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PwQuality, Lemma1MatchesWorldAggregation) {
  Rng rng(2024);
  RandomDbOptions opts;
  opts.num_xtuples = 5;
  opts.max_alternatives = 3;
  for (int trial = 0; trial < 20; ++trial) {
    ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
    XTupleMassIndex index(db);
    for (size_t k = 1; k <= 4; ++k) {
      Result<PwOutput> pw = ComputePwQuality(db, k);
      ASSERT_TRUE(pw.ok());
      for (const auto& [result, prob] : pw->results) {
        EXPECT_NEAR(PwResultProbability(db, index, result), prob, 1e-10)
            << "trial " << trial << " k " << k << " result "
            << PwResultToString(db, result);
      }
    }
  }
}

TEST(PwQuality, RejectsZeroK) {
  EXPECT_FALSE(ComputePwQuality(MakeUdb1(), 0).ok());
}

TEST(PwQuality, WorldLimitGuard) {
  ProbabilisticDatabase db = MakeUdb1();
  PwOptions options;
  options.max_worlds = 4;  // udb1 has 8 worlds
  Result<PwOutput> pw = ComputePwQuality(db, 2, options);
  EXPECT_EQ(pw.status().code(), StatusCode::kResourceExhausted);
  options.max_worlds = 0;  // guard disabled
  EXPECT_TRUE(ComputePwQuality(db, 2, options).ok());
}

TEST(PwQuality, KLargerThanEntitiesYieldsFullWorldResults) {
  ProbabilisticDatabase db = MakeUdb1();
  Result<PwOutput> pw = ComputePwQuality(db, 10);
  ASSERT_TRUE(pw.ok());
  // Every pw-result is the whole world (4 tuples), so the distribution is
  // over worlds directly: 8 worlds, but distinct tuple sets -- S2/S3 pairs
  // differ, S4 is fixed. 2*2*2 = 8 distinct results.
  EXPECT_EQ(pw->results.size(), 8u);
  for (const auto& [result, prob] : pw->results) {
    EXPECT_EQ(result.size(), 4u);
  }
}

TEST(PwQuality, QualityIsNonPositive) {
  Rng rng(1);
  RandomDbOptions opts;
  opts.num_xtuples = 4;
  for (int trial = 0; trial < 10; ++trial) {
    ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
    Result<PwOutput> pw = ComputePwQuality(db, 2);
    ASSERT_TRUE(pw.ok());
    EXPECT_LE(pw->quality, 1e-12);
  }
}

TEST(PwQuality, CertainDatabaseHasZeroQuality) {
  DatabaseBuilder b;
  for (int l = 0; l < 3; ++l) {
    XTupleId x = b.AddXTuple();
    ASSERT_TRUE(b.AddAlternative(x, l, 10.0 - l, 1.0).ok());
  }
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());
  Result<PwOutput> pw = ComputePwQuality(*db, 2);
  ASSERT_TRUE(pw.ok());
  EXPECT_EQ(pw->results.size(), 1u);
  EXPECT_DOUBLE_EQ(pw->quality, 0.0);
}

TEST(PwResultToString, UsesLabelsAndNullMarkers) {
  DatabaseBuilder b;
  XTupleId x = b.AddXTuple("S");
  ASSERT_TRUE(b.AddAlternative(x, 0, 1.0, 0.5, "t0").ok());
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(PwResultToString(*db, {0}), "(t0)");
  EXPECT_EQ(PwResultToString(*db, {1}), "(null[0])");
}

}  // namespace
}  // namespace uclean
