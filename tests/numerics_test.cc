// Numerical-robustness regression suite.
//
// The PSR divide-out recurrence is the one place where naive implementations
// silently produce garbage: the forward exclusion amplifies rounding error
// by (q/(1-q)) per rank index, which detonates on skewed alternative masses
// (this repository's original implementation produced sum(p) = 14105
// instead of 15 on the sigma=10 synthetic workload). These tests pin the
// stable-direction implementation against exact invariants and against the
// enumeration algorithms on adversarially skewed inputs.

#include <gtest/gtest.h>

#include <cmath>

#include "clean/planners.h"
#include "common/check.h"
#include "quality/pwr.h"
#include "quality/tp.h"
#include "rank/psr.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace uclean {
namespace {

double SumTopkProbs(const PsrOutput& psr) {
  double total = 0.0;
  for (double p : psr.topk_prob) total += p;
  return total;
}

TEST(Numerics, Sigma10RegressionSumOfTopkProbs) {
  // The exact workload that exposed the instability: tight Gaussians give
  // per-bar masses down to ~1e-5.
  SyntheticOptions opts;
  opts.num_xtuples = 300;
  opts.sigma = 10.0;
  Result<ProbabilisticDatabase> db = GenerateSynthetic(opts);
  ASSERT_TRUE(db.ok());
  for (size_t k : {5u, 15u, 50u}) {
    Result<PsrOutput> psr = ScanPsr(*db, k);
    ASSERT_TRUE(psr.ok());
    EXPECT_NEAR(SumTopkProbs(*psr), static_cast<double>(k), 1e-8)
        << "k=" << k;
    for (size_t i = 0; i < db->num_tuples(); ++i) {
      ASSERT_LE(psr->topk_prob[i], db->tuple(i).prob + 1e-12);
      ASSERT_GE(psr->topk_prob[i], -1e-12);
    }
  }
}

TEST(Numerics, Sigma10TpMatchesPwrOnSmallInstance) {
  SyntheticOptions opts;
  opts.num_xtuples = 25;
  opts.sigma = 10.0;
  Result<ProbabilisticDatabase> db = GenerateSynthetic(opts);
  ASSERT_TRUE(db.ok());
  for (size_t k : {1u, 2u, 3u}) {
    Result<PwrOutput> pwr = ComputePwrQuality(*db, k);
    Result<TpOutput> tp = ComputeTpQuality(*db, k);
    ASSERT_TRUE(pwr.ok() && tp.ok());
    EXPECT_NEAR(pwr->quality, tp->quality, 1e-8) << "k=" << k;
  }
}

/// An x-tuple ladder with geometrically collapsing masses: the scan's
/// headroom shrinks to ~1e-12 while alternatives interleave globally.
ProbabilisticDatabase MakeGeometricLadder(size_t num_xtuples,
                                          size_t alts_per_xtuple) {
  DatabaseBuilder b;
  TupleId next_id = 0;
  for (size_t l = 0; l < num_xtuples; ++l) {
    XTupleId x = b.AddXTuple();
    double remaining = 1.0;
    for (size_t a = 0; a < alts_per_xtuple; ++a) {
      const bool last = a + 1 == alts_per_xtuple;
      const double e = last ? remaining : remaining * (1.0 - 1e-3);
      // Interleave scores so consecutive scan positions hop x-tuples.
      const double score =
          1e6 - (static_cast<double>(a) * num_xtuples + l) * 10.0;
      UCLEAN_CHECK(b.AddAlternative(x, next_id++, score, e).ok());
      remaining -= e;
      if (remaining <= 0.0) break;
    }
  }
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  UCLEAN_CHECK(db.ok());
  return std::move(db).value();
}

TEST(Numerics, GeometricLadderInvariants) {
  // Masses decay by 1e-3 per level: headroom hits ~1e-12 at depth 4.
  ProbabilisticDatabase db = MakeGeometricLadder(20, 4);
  for (size_t k : {1u, 5u, 10u, 20u}) {
    Result<PsrOutput> psr = ScanPsr(db, k);
    ASSERT_TRUE(psr.ok());
    EXPECT_NEAR(SumTopkProbs(*psr), static_cast<double>(k), 1e-8);
    for (size_t i = 0; i < db.num_tuples(); ++i) {
      ASSERT_LE(psr->topk_prob[i], db.tuple(i).prob + 1e-12);
    }
  }
}

TEST(Numerics, GeometricLadderQualityAgreement) {
  ProbabilisticDatabase db = MakeGeometricLadder(8, 3);
  for (size_t k : {1u, 2u, 4u}) {
    Result<PwrOutput> pwr = ComputePwrQuality(db, k);
    Result<TpOutput> tp = ComputeTpQuality(db, k);
    ASSERT_TRUE(pwr.ok() && tp.ok());
    EXPECT_NEAR(pwr->quality, tp->quality, 1e-8) << "k=" << k;
  }
}

TEST(Numerics, HalfHalfMassesStressForwardBackwardBoundary) {
  // q crosses exactly 0.5 at every second alternative: exercises both
  // divide-out directions and the switch between them.
  DatabaseBuilder b;
  TupleId next_id = 0;
  for (size_t l = 0; l < 40; ++l) {
    XTupleId x = b.AddXTuple();
    ASSERT_TRUE(
        b.AddAlternative(x, next_id++, 1000.0 - l, 0.5).ok());
    ASSERT_TRUE(
        b.AddAlternative(x, next_id++, 500.0 - l, 0.5).ok());
  }
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());
  for (size_t k : {1u, 7u, 40u}) {
    Result<PsrOutput> psr = ScanPsr(*db, k);
    ASSERT_TRUE(psr.ok());
    EXPECT_NEAR(SumTopkProbs(*psr), static_cast<double>(k), 1e-9);
  }
}

TEST(Numerics, LargeKDeepVectorStaysExact) {
  // k = 200 over 100 interleaved x-tuples: the old truncated-forward
  // recurrence would accumulate (q/(1-q))^200-style error here.
  SyntheticOptions opts;
  opts.num_xtuples = 100;
  opts.sigma = 30.0;
  Result<ProbabilisticDatabase> db = GenerateSynthetic(opts);
  ASSERT_TRUE(db.ok());
  Result<PsrOutput> psr = ScanPsr(*db, 200);
  ASSERT_TRUE(psr.ok());
  EXPECT_NEAR(SumTopkProbs(*psr), 100.0, 1e-8);  // k > m: sum = m
}

TEST(Numerics, TinyAlternativeMassesNearOne) {
  // One alternative at 1 - 1e-11, the rest sharing 1e-11: the x-tuple
  // saturates within the 1e-12 tolerance right after its first tuple.
  DatabaseBuilder b;
  XTupleId x0 = b.AddXTuple();
  ASSERT_TRUE(b.AddAlternative(x0, 0, 100.0, 1.0 - 1e-11).ok());
  ASSERT_TRUE(b.AddAlternative(x0, 1, 50.0, 0.5e-11).ok());
  ASSERT_TRUE(b.AddAlternative(x0, 2, 25.0, 0.5e-11).ok());
  XTupleId x1 = b.AddXTuple();
  ASSERT_TRUE(b.AddAlternative(x1, 3, 75.0, 0.6).ok());
  ASSERT_TRUE(b.AddAlternative(x1, 4, 10.0, 0.4).ok());
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());
  for (size_t k : {1u, 2u}) {
    Result<PsrOutput> psr = ScanPsr(*db, k);
    ASSERT_TRUE(psr.ok());
    EXPECT_NEAR(SumTopkProbs(*psr), static_cast<double>(k), 1e-9);
    Result<PwrOutput> pwr = ComputePwrQuality(*db, k);
    Result<TpOutput> tp = ComputeTpQuality(*db, *psr);
    ASSERT_TRUE(pwr.ok() && tp.ok());
    EXPECT_NEAR(pwr->quality, tp->quality, 1e-7);
  }
}

TEST(Numerics, ProbabilisticEarlyStopErrorIsBounded) {
  // MOV-like data (sub-unit masses, nulls at the tail) never triggers
  // Lemma 2 proper; the probabilistic stop must agree with the full scan
  // to ~1e-10 while touching a fraction of the tuples.
  SyntheticOptions opts;
  opts.num_xtuples = 500;
  Result<ProbabilisticDatabase> base = GenerateSynthetic(opts);
  ASSERT_TRUE(base.ok());
  // Rebuild with masses scaled to 0.8 so every x-tuple keeps a null.
  DatabaseBuilder b;
  for (size_t l = 0; l < base->num_xtuples(); ++l) b.AddXTuple();
  for (const Tuple& t : base->tuples()) {
    if (!t.is_null) {
      ASSERT_TRUE(
          b.AddAlternative(t.xtuple, t.id, t.score, t.prob * 0.8).ok());
    }
  }
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());

  PsrOptions on, off;
  on.early_termination = true;
  off.early_termination = false;
  Result<PsrOutput> fast = ScanPsr(*db, 10, on);
  Result<PsrOutput> full = ScanPsr(*db, 10, off);
  ASSERT_TRUE(fast.ok() && full.ok());
  EXPECT_LT(fast->scan_end, db->num_tuples() / 2);  // actually stopped early
  Result<TpOutput> q_fast = ComputeTpQuality(*db, *fast);
  Result<TpOutput> q_full = ComputeTpQuality(*db, *full);
  ASSERT_TRUE(q_fast.ok() && q_full.ok());
  EXPECT_NEAR(q_fast->quality, q_full->quality, 1e-9);
}

TEST(Numerics, CleaningObjectiveStableUnderTinyGains) {
  // Gains at rounding scale must not produce negative marginal values or
  // destabilize the planners.
  CleaningProblem problem;
  problem.gain = {-1e-300, -5e-16, 0.0, -2.0};
  problem.topk_mass = {1e-300, 5e-16, 0.0, 1.0};
  problem.cost = {1, 1, 1, 1};
  problem.sc_prob = {0.5, 0.5, 0.5, 0.5};
  problem.budget = 10;
  Result<CleaningPlan> dp = PlanDp(problem);
  Result<CleaningPlan> greedy = PlanGreedy(problem);
  ASSERT_TRUE(dp.ok() && greedy.ok());
  EXPECT_GE(dp->expected_improvement, 0.0);
  EXPECT_NEAR(dp->expected_improvement, greedy->expected_improvement, 1e-9);
  EXPECT_GT(dp->probes[3], 0);  // the only material x-tuple gets the budget
}

}  // namespace
}  // namespace uclean
