// Unit tests for the string/CSV helpers.

#include "common/strings.h"

#include <gtest/gtest.h>

namespace uclean {
namespace {

TEST(SplitString, BasicFields) {
  EXPECT_EQ(SplitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitString, PreservesEmptyFields) {
  EXPECT_EQ(SplitString(",x,", ','), (std::vector<std::string>{"", "x", ""}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(JoinStrings, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"1", "two", "", "3.5"};
  EXPECT_EQ(SplitString(JoinStrings(parts, ","), ','), parts);
}

TEST(StripWhitespace, AllSides) {
  EXPECT_EQ(StripWhitespace("  x y\t\r\n"), "x y");
  EXPECT_EQ(StripWhitespace("\t\n "), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(ParseDouble, Valid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -1e-3 "), -1e-3);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("1.5 2.5").ok());
}

TEST(ParseInt, Valid) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt(" -7 "), -7);
  EXPECT_EQ(*ParseInt("0"), 0);
}

TEST(ParseInt, RejectsGarbage) {
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("12.5").ok());
  EXPECT_FALSE(ParseInt("x12").ok());
  EXPECT_FALSE(ParseInt("99999999999999999999999").ok());
}

TEST(FormatDouble, RoundTrips) {
  for (double v : {0.1, 1.0 / 3.0, 1e-300, 123456.789, -0.0, 2.5e17}) {
    EXPECT_DOUBLE_EQ(*ParseDouble(FormatDouble(v)), v);
  }
}

}  // namespace
}  // namespace uclean
