// Tests for the cleaning agent: execution semantics (stop on success,
// budget accounting, outcome sampling) and the Monte-Carlo integration test
// that the realized quality improvement matches the Theorem-2 prediction.

#include "clean/agent.h"

#include <gtest/gtest.h>

#include "clean/planners.h"
#include "common/rng.h"
#include "model/paper_example.h"
#include "quality/tp.h"
#include "tests/test_util.h"

namespace uclean {
namespace {

CleaningProfile UniformProfile(size_t m, int64_t cost, double sc) {
  CleaningProfile profile;
  profile.costs.assign(m, cost);
  profile.sc_probs.assign(m, sc);
  return profile;
}

TEST(Agent, ValidatesInputs) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 1, 0.5);
  std::vector<int64_t> probes(db.num_xtuples(), 0);
  Rng rng(1);
  EXPECT_FALSE(ExecutePlan(db, profile, probes, nullptr).ok());
  std::vector<int64_t> short_probes(2, 0);
  EXPECT_FALSE(ExecutePlan(db, profile, short_probes, &rng).ok());
  CleaningProfile bad = UniformProfile(2, 1, 0.5);
  EXPECT_FALSE(ExecutePlan(db, bad, probes, &rng).ok());
}

TEST(Agent, NoProbesNoChange) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 1, 0.5);
  std::vector<int64_t> probes(db.num_xtuples(), 0);
  Rng rng(2);
  Result<ExecutionReport> report = ExecutePlan(db, profile, probes, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->spent, 0);
  EXPECT_EQ(report->successes, 0u);
  EXPECT_EQ(report->cleaned_db.num_tuples(), db.num_tuples());
}

TEST(Agent, CertainSuccessCollapsesXTuple) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 3, 1.0);
  std::vector<int64_t> probes(db.num_xtuples(), 0);
  probes[2] = 5;  // S3, sc-probability 1: first probe must succeed
  Rng rng(3);
  Result<ExecutionReport> report = ExecutePlan(db, profile, probes, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->successes, 1u);
  EXPECT_EQ(report->spent, 3);          // one probe, cost 3
  EXPECT_EQ(report->leftover, 4 * 3);   // four skipped probes
  ASSERT_EQ(report->log.size(), 1u);
  EXPECT_TRUE(report->log[0].success);
  EXPECT_EQ(report->log[0].attempts, 1);
  EXPECT_EQ(report->cleaned_db.xtuple_members(2).size(), 1u);
}

TEST(Agent, ZeroScProbabilityNeverSucceeds) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 2, 0.0);
  std::vector<int64_t> probes(db.num_xtuples(), 0);
  probes[0] = 4;
  Rng rng(4);
  Result<ExecutionReport> report = ExecutePlan(db, profile, probes, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->successes, 0u);
  EXPECT_EQ(report->spent, 8);  // all four probes paid, all failed
  EXPECT_EQ(report->leftover, 0);
  EXPECT_EQ(report->cleaned_db.xtuple_members(0).size(),
            db.xtuple_members(0).size());
}

TEST(Agent, SuccessRateMatchesScProbability) {
  ProbabilisticDatabase db = MakeUdb1();
  const double sc = 0.3;
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 1, sc);
  std::vector<int64_t> probes(db.num_xtuples(), 0);
  probes[1] = 1;  // single probe of S2
  int successes = 0;
  const int trials = 5000;
  Rng rng(5);
  for (int t = 0; t < trials; ++t) {
    Result<ExecutionReport> report = ExecutePlan(db, profile, probes, &rng);
    ASSERT_TRUE(report.ok());
    successes += static_cast<int>(report->successes);
  }
  EXPECT_NEAR(static_cast<double>(successes) / trials, sc, 0.02);
}

TEST(Agent, RevealedValueFollowsExistentialDistribution) {
  // S1 = {t0: 0.6, t1: 0.4}; over many successful cleans, t0 should be
  // revealed ~60% of the time.
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 1, 1.0);
  std::vector<int64_t> probes(db.num_xtuples(), 0);
  probes[0] = 1;
  int t0_revealed = 0;
  const int trials = 5000;
  Rng rng(6);
  for (int t = 0; t < trials; ++t) {
    Result<ExecutionReport> report = ExecutePlan(db, profile, probes, &rng);
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->log.size(), 1u);
    if (report->log[0].resolved_id == 0) ++t0_revealed;
  }
  EXPECT_NEAR(static_cast<double>(t0_revealed) / trials, 0.6, 0.02);
}

TEST(Agent, NullOutcomePossibleForSubUnitMass) {
  DatabaseBuilder b;
  XTupleId x = b.AddXTuple();
  ASSERT_TRUE(b.AddAlternative(x, 0, 5.0, 0.2).ok());  // null mass 0.8
  XTupleId y = b.AddXTuple();
  ASSERT_TRUE(b.AddAlternative(y, 1, 3.0, 1.0).ok());
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());
  CleaningProfile profile = UniformProfile(2, 1, 1.0);
  std::vector<int64_t> probes = {1, 0};
  int null_outcomes = 0;
  const int trials = 3000;
  Rng rng(7);
  for (int t = 0; t < trials; ++t) {
    Result<ExecutionReport> report = ExecutePlan(*db, profile, probes, &rng);
    ASSERT_TRUE(report.ok());
    if (report->log[0].resolved_id < 0) ++null_outcomes;
  }
  EXPECT_NEAR(static_cast<double>(null_outcomes) / trials, 0.8, 0.03);
}

// ---------------------------------------------------------------- faults
// The fault layer's two contracts (clean/fault.h): at rate 0 it is
// bitwise invisible, and at any rate it is deterministic -- equal seeds
// replay the exact same faults, retries and outcomes on every overload.

FaultOptions TransientFaults(double fail_rate) {
  FaultOptions fault;
  fault.enabled = true;
  fault.profile.fail_rate = fail_rate;
  fault.profile.timeout_share = 0.0;
  fault.seed = 99;
  return fault;
}

TEST(AgentFaults, Rate0IsBitwiseInvisibleAndDrawsNothing) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 2, 0.5);
  std::vector<int64_t> probes(db.num_xtuples(), 3);

  Rng plain_rng(11);
  Result<ExecutionReport> plain = ExecutePlan(db, profile, probes, &plain_rng);
  ASSERT_TRUE(plain.ok());

  FaultInjector injector(TransientFaults(0.0));
  const FaultInjector fresh(TransientFaults(0.0));
  ProbeOptions options;
  options.fault = &injector;
  Rng faulted_rng(11);
  Result<ExecutionReport> faulted =
      ExecutePlan(db, profile, probes, &faulted_rng, options);
  ASSERT_TRUE(faulted.ok());

  EXPECT_EQ(plain->spent, faulted->spent);
  EXPECT_EQ(plain->leftover, faulted->leftover);
  EXPECT_EQ(plain->successes, faulted->successes);
  EXPECT_TRUE(plain->log == faulted->log);
  EXPECT_TRUE(faulted->faults == FaultStats());
  // The probe streams stayed in lockstep...
  EXPECT_TRUE(plain_rng.engine() == faulted_rng.engine());
  // ...and the fault stream was never consulted: zero-probability draws
  // never consume the engine.
  EXPECT_TRUE(injector.engine() == fresh.engine());
}

TEST(AgentFaults, EqualSeedsReplayIdenticalFaultsAcrossOverloads) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 1, 0.4);
  std::vector<int64_t> probes(db.num_xtuples(), 4);

  ExecutionReport runs[2];
  for (int r = 0; r < 2; ++r) {
    FaultInjector injector(TransientFaults(0.3));
    ProbeOptions options;
    options.fault = &injector;
    Rng rng(17);
    Result<ExecutionReport> report =
        ExecutePlan(db, profile, probes, &rng, options);
    ASSERT_TRUE(report.ok());
    runs[r] = std::move(report).value();
  }
  EXPECT_TRUE(runs[0].log == runs[1].log);
  EXPECT_TRUE(runs[0].faults == runs[1].faults);
  EXPECT_EQ(runs[0].spent, runs[1].spent);

  // Pooled-session overload: same seeds, same faults, same outcomes.
  Result<SessionPool> pool = SessionPool::Create(db, /*k=*/2);
  ASSERT_TRUE(pool.ok());
  SessionPool::SessionId id = pool->OpenSession();
  FaultInjector injector(TransientFaults(0.3));
  ProbeOptions options;
  options.fault = &injector;
  Rng rng(17);
  Result<SessionExecutionReport> pooled =
      ExecutePlan(&*pool, id, profile, probes, &rng, options);
  ASSERT_TRUE(pooled.ok());
  EXPECT_TRUE(pooled->log == runs[0].log);
  EXPECT_TRUE(pooled->faults == runs[0].faults);
  EXPECT_EQ(pooled->spent, runs[0].spent);
}

TEST(AgentFaults, ExhaustedRetriesSpendNothing) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 2, 1.0);
  std::vector<int64_t> probes(db.num_xtuples(), 0);
  probes[1] = 3;

  FaultOptions fault = TransientFaults(1.0);  // every attempt faults
  fault.retry.max_attempts = 2;
  fault.breaker.threshold = 100;  // keep the breaker out of this test
  FaultInjector injector(fault);
  ProbeOptions options;
  options.fault = &injector;
  Rng rng(23);
  Result<ExecutionReport> report =
      ExecutePlan(db, profile, probes, &rng, options);
  ASSERT_TRUE(report.ok());

  EXPECT_EQ(report->spent, 0);
  EXPECT_EQ(report->leftover, 3 * 2);  // the whole plan cost, reinvestable
  EXPECT_EQ(report->successes, 0u);
  ASSERT_EQ(report->log.size(), 1u);
  EXPECT_EQ(report->log[0].failures, 3);
  EXPECT_EQ(report->log[0].retries, 3);  // one retry per planned probe
  EXPECT_EQ(report->log[0].last_error, StatusCode::kUnavailable);
  EXPECT_EQ(report->faults.transient, 6);
  EXPECT_EQ(report->faults.failed_probes, 3);
  EXPECT_EQ(report->faults.budget_unspent, 3 * 2);
}

TEST(AgentFaults, BreakerTripsAndSkipsTheRemainder) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 1, 1.0);
  std::vector<int64_t> probes(db.num_xtuples(), 0);
  probes[0] = 5;

  FaultOptions fault = TransientFaults(1.0);
  fault.retry.max_attempts = 1;
  fault.breaker.threshold = 2;
  FaultInjector injector(fault);
  ProbeOptions options;
  options.fault = &injector;
  Rng rng(29);
  Result<ExecutionReport> report =
      ExecutePlan(db, profile, probes, &rng, options);
  ASSERT_TRUE(report.ok());

  // Two failed probes trip the breaker; the remaining three are skipped.
  EXPECT_EQ(report->faults.failed_probes, 2);
  EXPECT_EQ(report->faults.breaker_skips, 3);
  EXPECT_EQ(report->faults.budget_unspent, 5);
  EXPECT_EQ(report->log[0].last_error, StatusCode::kUnavailable);
  EXPECT_EQ(injector.breaker_state(0), BreakerState::kOpen);
  EXPECT_EQ(injector.num_open_sources(), 1u);
  EXPECT_TRUE(injector.ever_opened());
}

TEST(AgentFaults, BreakerHalfOpenTrialClosesOnSuccessReopensOnFailure) {
  FaultOptions fault = TransientFaults(0.0);
  fault.breaker.threshold = 2;
  fault.breaker.cooldown_us = 100;
  FaultInjector injector(fault);

  injector.RecordProbeOutcome(7, false);
  EXPECT_EQ(injector.breaker_state(7), BreakerState::kClosed);
  injector.RecordProbeOutcome(7, false);
  EXPECT_EQ(injector.breaker_state(7), BreakerState::kOpen);
  EXPECT_FALSE(injector.AdmitProbe(7));
  EXPECT_FALSE(injector.SourceAvailable(7));

  // Cooldown elapses: the next admission is the half-open trial.
  injector.AdvanceClock(100);
  EXPECT_TRUE(injector.SourceAvailable(7));
  EXPECT_TRUE(injector.AdmitProbe(7));
  EXPECT_EQ(injector.breaker_state(7), BreakerState::kHalfOpen);

  // A failed trial reopens immediately (no threshold accumulation)...
  injector.RecordProbeOutcome(7, false);
  EXPECT_EQ(injector.breaker_state(7), BreakerState::kOpen);

  // ...and a successful one closes for good.
  injector.AdvanceClock(100);
  EXPECT_TRUE(injector.AdmitProbe(7));
  injector.RecordProbeOutcome(7, true);
  EXPECT_EQ(injector.breaker_state(7), BreakerState::kClosed);
  EXPECT_EQ(injector.num_open_sources(), 0u);
}

TEST(AgentFaults, PlanDeadlineAbandonsRemainingProbes) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 1, 1.0);
  std::vector<int64_t> probes(db.num_xtuples(), 0);
  probes[2] = 4;

  FaultOptions fault = TransientFaults(1.0);
  fault.profile.timeout_share = 1.0;  // every fault burns the deadline
  fault.retry.max_attempts = 1;
  fault.retry.probe_deadline_us = 50;
  fault.retry.plan_deadline_us = 100;
  fault.breaker.threshold = 100;
  FaultInjector injector(fault);
  ProbeOptions options;
  options.fault = &injector;
  Rng rng(31);
  Result<ExecutionReport> report =
      ExecutePlan(db, profile, probes, &rng, options);
  ASSERT_TRUE(report.ok());

  // Two timeouts burn 50us each; at 100us the plan deadline abandons the
  // last two planned probes.
  EXPECT_EQ(report->faults.timeouts, 2);
  EXPECT_EQ(report->faults.failed_probes, 2);
  EXPECT_EQ(report->faults.deadline_skips, 2);
  EXPECT_EQ(report->faults.budget_unspent, 4);
  EXPECT_EQ(report->log[0].last_error, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(injector.now_us(), 100);
}

TEST(AgentFaults, DownSourceFailsWithoutRetrying) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 1, 1.0);
  std::vector<int64_t> probes(db.num_xtuples(), 0);
  probes[3] = 2;

  FaultOptions fault = TransientFaults(0.0);
  fault.profile.down_rate = 1.0;  // every source is down
  fault.retry.max_attempts = 5;
  fault.breaker.threshold = 100;
  FaultInjector injector(fault);
  ProbeOptions options;
  options.fault = &injector;
  Rng rng(37);
  Result<ExecutionReport> report =
      ExecutePlan(db, profile, probes, &rng, options);
  ASSERT_TRUE(report.ok());

  // Retrying a down source is pointless: one attempt per planned probe.
  EXPECT_EQ(report->faults.source_down, 2);
  EXPECT_EQ(report->faults.retries, 0);
  EXPECT_EQ(report->faults.failed_probes, 2);
  EXPECT_EQ(report->log[0].failures, 2);
  EXPECT_EQ(report->spent, 0);
}

TEST(Agent, MonteCarloRealizedImprovementMatchesTheorem2) {
  // The heart of the cleaning model: executing a plan many times and
  // measuring the realized quality improvement must reproduce the
  // Theorem-2 expectation.
  Rng maker(1010);
  RandomDbOptions opts;
  opts.num_xtuples = 5;
  opts.max_alternatives = 3;
  ProbabilisticDatabase db = MakeRandomDatabase(&maker, opts);
  const size_t k = 2;

  CleaningProfile profile;
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    profile.costs.push_back(1);
    profile.sc_probs.push_back(maker.Uniform(0.3, 0.9));
  }
  Result<CleaningProblem> problem = MakeCleaningProblem(db, k, profile, 6);
  ASSERT_TRUE(problem.ok());
  Result<CleaningPlan> plan = PlanDp(*problem);
  ASSERT_TRUE(plan.ok());
  ASSERT_GT(plan->expected_improvement, 0.0);

  Result<TpOutput> before = ComputeTpQuality(db, k);
  ASSERT_TRUE(before.ok());

  double total_improvement = 0.0;
  const int trials = 3000;
  Rng rng(2020);
  for (int t = 0; t < trials; ++t) {
    Result<ExecutionReport> report =
        ExecutePlan(db, profile, plan->probes, &rng);
    ASSERT_TRUE(report.ok());
    Result<TpOutput> after = ComputeTpQuality(report->cleaned_db, k);
    ASSERT_TRUE(after.ok());
    total_improvement += after->quality - before->quality;
  }
  const double realized = total_improvement / trials;
  // Monte-Carlo noise: the per-trial improvement is bounded by |S|; with
  // 3000 trials a 5% relative / 0.05 absolute band is comfortable.
  EXPECT_NEAR(realized, plan->expected_improvement,
              std::max(0.05, 0.08 * plan->expected_improvement));
}

}  // namespace
}  // namespace uclean
