// Tests for the cleaning agent: execution semantics (stop on success,
// budget accounting, outcome sampling) and the Monte-Carlo integration test
// that the realized quality improvement matches the Theorem-2 prediction.

#include "clean/agent.h"

#include <gtest/gtest.h>

#include "clean/planners.h"
#include "common/rng.h"
#include "model/paper_example.h"
#include "quality/tp.h"
#include "tests/test_util.h"

namespace uclean {
namespace {

CleaningProfile UniformProfile(size_t m, int64_t cost, double sc) {
  CleaningProfile profile;
  profile.costs.assign(m, cost);
  profile.sc_probs.assign(m, sc);
  return profile;
}

TEST(Agent, ValidatesInputs) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 1, 0.5);
  std::vector<int64_t> probes(db.num_xtuples(), 0);
  Rng rng(1);
  EXPECT_FALSE(ExecutePlan(db, profile, probes, nullptr).ok());
  std::vector<int64_t> short_probes(2, 0);
  EXPECT_FALSE(ExecutePlan(db, profile, short_probes, &rng).ok());
  CleaningProfile bad = UniformProfile(2, 1, 0.5);
  EXPECT_FALSE(ExecutePlan(db, bad, probes, &rng).ok());
}

TEST(Agent, NoProbesNoChange) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 1, 0.5);
  std::vector<int64_t> probes(db.num_xtuples(), 0);
  Rng rng(2);
  Result<ExecutionReport> report = ExecutePlan(db, profile, probes, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->spent, 0);
  EXPECT_EQ(report->successes, 0u);
  EXPECT_EQ(report->cleaned_db.num_tuples(), db.num_tuples());
}

TEST(Agent, CertainSuccessCollapsesXTuple) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 3, 1.0);
  std::vector<int64_t> probes(db.num_xtuples(), 0);
  probes[2] = 5;  // S3, sc-probability 1: first probe must succeed
  Rng rng(3);
  Result<ExecutionReport> report = ExecutePlan(db, profile, probes, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->successes, 1u);
  EXPECT_EQ(report->spent, 3);          // one probe, cost 3
  EXPECT_EQ(report->leftover, 4 * 3);   // four skipped probes
  ASSERT_EQ(report->log.size(), 1u);
  EXPECT_TRUE(report->log[0].success);
  EXPECT_EQ(report->log[0].attempts, 1);
  EXPECT_EQ(report->cleaned_db.xtuple_members(2).size(), 1u);
}

TEST(Agent, ZeroScProbabilityNeverSucceeds) {
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 2, 0.0);
  std::vector<int64_t> probes(db.num_xtuples(), 0);
  probes[0] = 4;
  Rng rng(4);
  Result<ExecutionReport> report = ExecutePlan(db, profile, probes, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->successes, 0u);
  EXPECT_EQ(report->spent, 8);  // all four probes paid, all failed
  EXPECT_EQ(report->leftover, 0);
  EXPECT_EQ(report->cleaned_db.xtuple_members(0).size(),
            db.xtuple_members(0).size());
}

TEST(Agent, SuccessRateMatchesScProbability) {
  ProbabilisticDatabase db = MakeUdb1();
  const double sc = 0.3;
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 1, sc);
  std::vector<int64_t> probes(db.num_xtuples(), 0);
  probes[1] = 1;  // single probe of S2
  int successes = 0;
  const int trials = 5000;
  Rng rng(5);
  for (int t = 0; t < trials; ++t) {
    Result<ExecutionReport> report = ExecutePlan(db, profile, probes, &rng);
    ASSERT_TRUE(report.ok());
    successes += static_cast<int>(report->successes);
  }
  EXPECT_NEAR(static_cast<double>(successes) / trials, sc, 0.02);
}

TEST(Agent, RevealedValueFollowsExistentialDistribution) {
  // S1 = {t0: 0.6, t1: 0.4}; over many successful cleans, t0 should be
  // revealed ~60% of the time.
  ProbabilisticDatabase db = MakeUdb1();
  CleaningProfile profile = UniformProfile(db.num_xtuples(), 1, 1.0);
  std::vector<int64_t> probes(db.num_xtuples(), 0);
  probes[0] = 1;
  int t0_revealed = 0;
  const int trials = 5000;
  Rng rng(6);
  for (int t = 0; t < trials; ++t) {
    Result<ExecutionReport> report = ExecutePlan(db, profile, probes, &rng);
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->log.size(), 1u);
    if (report->log[0].resolved_id == 0) ++t0_revealed;
  }
  EXPECT_NEAR(static_cast<double>(t0_revealed) / trials, 0.6, 0.02);
}

TEST(Agent, NullOutcomePossibleForSubUnitMass) {
  DatabaseBuilder b;
  XTupleId x = b.AddXTuple();
  ASSERT_TRUE(b.AddAlternative(x, 0, 5.0, 0.2).ok());  // null mass 0.8
  XTupleId y = b.AddXTuple();
  ASSERT_TRUE(b.AddAlternative(y, 1, 3.0, 1.0).ok());
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());
  CleaningProfile profile = UniformProfile(2, 1, 1.0);
  std::vector<int64_t> probes = {1, 0};
  int null_outcomes = 0;
  const int trials = 3000;
  Rng rng(7);
  for (int t = 0; t < trials; ++t) {
    Result<ExecutionReport> report = ExecutePlan(*db, profile, probes, &rng);
    ASSERT_TRUE(report.ok());
    if (report->log[0].resolved_id < 0) ++null_outcomes;
  }
  EXPECT_NEAR(static_cast<double>(null_outcomes) / trials, 0.8, 0.03);
}

TEST(Agent, MonteCarloRealizedImprovementMatchesTheorem2) {
  // The heart of the cleaning model: executing a plan many times and
  // measuring the realized quality improvement must reproduce the
  // Theorem-2 expectation.
  Rng maker(1010);
  RandomDbOptions opts;
  opts.num_xtuples = 5;
  opts.max_alternatives = 3;
  ProbabilisticDatabase db = MakeRandomDatabase(&maker, opts);
  const size_t k = 2;

  CleaningProfile profile;
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    profile.costs.push_back(1);
    profile.sc_probs.push_back(maker.Uniform(0.3, 0.9));
  }
  Result<CleaningProblem> problem = MakeCleaningProblem(db, k, profile, 6);
  ASSERT_TRUE(problem.ok());
  Result<CleaningPlan> plan = PlanDp(*problem);
  ASSERT_TRUE(plan.ok());
  ASSERT_GT(plan->expected_improvement, 0.0);

  Result<TpOutput> before = ComputeTpQuality(db, k);
  ASSERT_TRUE(before.ok());

  double total_improvement = 0.0;
  const int trials = 3000;
  Rng rng(2020);
  for (int t = 0; t < trials; ++t) {
    Result<ExecutionReport> report =
        ExecutePlan(db, profile, plan->probes, &rng);
    ASSERT_TRUE(report.ok());
    Result<TpOutput> after = ComputeTpQuality(report->cleaned_db, k);
    ASSERT_TRUE(after.ok());
    total_improvement += after->quality - before->quality;
  }
  const double realized = total_improvement / trials;
  // Monte-Carlo noise: the per-trial improvement is bounded by |S|; with
  // 3000 trials a 5% relative / 0.05 absolute band is comfortable.
  EXPECT_NEAR(realized, plan->expected_improvement,
              std::max(0.05, 0.08 * plan->expected_improvement));
}

}  // namespace
}  // namespace uclean
