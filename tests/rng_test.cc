// Unit tests for the deterministic RNG wrapper.

#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace uclean {
namespace {

TEST(Rng, EqualSeedsYieldEqualStreams) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.UniformUnit(), b.UniformUnit());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.UniformUnit() != b.UniformUnit()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(1, 10);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 10);
    saw_lo |= v == 1;
    saw_hi |= v == 10;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, TruncatedNormalRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    double x = rng.TruncatedNormal(0.5, 0.3, 0.0, 1.0);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Rng, TruncatedNormalMean) {
  Rng rng(17);
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    sum += rng.TruncatedNormal(0.5, 0.1, 0.0, 1.0);
  }
  // Symmetric truncation keeps the mean at 0.5.
  EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(Rng, DiscreteFollowsWeights) {
  Rng rng(23);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_EQ(counts[2], 0);  // zero weight never drawn
  EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.1, 0.015);
  EXPECT_NEAR(counts[1] / static_cast<double>(trials), 0.3, 0.015);
  EXPECT_NEAR(counts[3] / static_cast<double>(trials), 0.6, 0.015);
}

TEST(Rng, DiscreteAllZeroFallsBackToUniform) {
  Rng rng(29);
  const std::vector<double> weights = {0.0, 0.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) ++counts[rng.Discrete(weights)];
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(Rng, NormalMoments) {
  Rng rng(31);
  double sum = 0.0, sq = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    double x = rng.Normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / trials;
  const double var = sq / trials - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, SaveRestoreResumesExactStream) {
  // The snapshot store persists Rng streams as SaveState strings; a
  // restored generator must continue the EXACT engine state, mid-stream.
  Rng rng(47);
  for (int i = 0; i < 17; ++i) (void)rng.UniformUnit();
  const std::string state = rng.SaveState();

  Rng restored(0);  // seed is irrelevant once restored
  ASSERT_TRUE(restored.RestoreState(state).ok());
  EXPECT_EQ(restored.engine(), rng.engine());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(restored.UniformUnit(), rng.UniformUnit()) << i;
  }
  // Restoring the same state again rewinds to the capture point.
  Rng rewound(1);
  ASSERT_TRUE(rewound.RestoreState(state).ok());
  EXPECT_NE(rewound.engine(), rng.engine());  // rng has advanced since
}

TEST(Rng, RestoreRejectsGarbage) {
  Rng rng(1);
  EXPECT_EQ(rng.RestoreState("not an engine state").code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(rng.RestoreState("").code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace uclean
