// Unit tests for the PSR rank-probability dynamic program, validated
// against brute-force possible-world enumeration.

#include "rank/psr.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.h"
#include "model/paper_example.h"
#include "pworld/world_iterator.h"
#include "rank/psr_engine.h"
#include "tests/test_util.h"

namespace uclean {
namespace {

/// Ground truth: rank-h probabilities by enumerating every possible world.
std::vector<std::vector<double>> BruteForceRankProbs(
    const ProbabilisticDatabase& db, size_t k) {
  std::vector<std::vector<double>> rho(db.num_tuples(),
                                       std::vector<double>(k, 0.0));
  for (PossibleWorldIterator it(db); !it.Done(); it.Next()) {
    const std::vector<int32_t> topk =
        DeterministicTopK(it.chosen_rank_indices(), k);
    for (size_t h = 0; h < topk.size(); ++h) {
      rho[topk[h]][h] += it.probability();
    }
  }
  return rho;
}

TEST(Psr, RejectsZeroK) { EXPECT_FALSE(ScanPsr(MakeUdb1(), 0).ok()); }

TEST(Psr, MatchesBruteForceOnUdb1) {
  ProbabilisticDatabase db = MakeUdb1();
  for (size_t k = 1; k <= 5; ++k) {
    PsrOptions options;
    options.store_rank_probabilities = true;
    Result<PsrOutput> psr = ScanPsr(db, k, options);
    ASSERT_TRUE(psr.ok());
    const auto truth = BruteForceRankProbs(db, k);
    for (size_t i = 0; i < db.num_tuples(); ++i) {
      double p = 0.0;
      for (size_t h = 1; h <= k; ++h) {
        EXPECT_NEAR(psr->rank_probability(i, h), truth[i][h - 1], 1e-10)
            << "k=" << k << " tuple " << i << " rank " << h;
        p += truth[i][h - 1];
      }
      EXPECT_NEAR(psr->topk_prob[i], p, 1e-10);
    }
  }
}

// Parameterized sweep: random databases of varying shape, each checked
// against the brute-force oracle for several k.
class PsrRandomSweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool, int>> {};

TEST_P(PsrRandomSweep, MatchesBruteForce) {
  const auto [num_xtuples, max_alts, subunit, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  RandomDbOptions opts;
  opts.num_xtuples = static_cast<size_t>(num_xtuples);
  opts.max_alternatives = static_cast<size_t>(max_alts);
  opts.allow_subunit_mass = subunit;
  ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);

  for (size_t k : {1u, 2u, 3u, 7u}) {
    PsrOptions options;
    options.store_rank_probabilities = true;
    Result<PsrOutput> psr = ScanPsr(db, k, options);
    ASSERT_TRUE(psr.ok());
    const auto truth = BruteForceRankProbs(db, k);
    for (size_t i = 0; i < db.num_tuples(); ++i) {
      for (size_t h = 1; h <= k; ++h) {
        ASSERT_NEAR(psr->rank_probability(i, h), truth[i][h - 1], 1e-9)
            << "k=" << k << " tuple " << i << " rank " << h;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PsrRandomSweep,
    ::testing::Combine(::testing::Values(2, 4, 6),   // x-tuples
                       ::testing::Values(1, 3, 4),   // max alternatives
                       ::testing::Bool(),            // sub-unit mass
                       ::testing::Values(101, 202)), // seeds
    [](const auto& suite_info) {
      return "m" + std::to_string(std::get<0>(suite_info.param)) + "a" +
             std::to_string(std::get<1>(suite_info.param)) +
             (std::get<2>(suite_info.param) ? "sub" : "full") + "s" +
             std::to_string(std::get<3>(suite_info.param));
    });

TEST(Psr, TopkProbsSumToKWithNullCompletion) {
  // With nulls materialized, every world has exactly m tuples, so when
  // m >= k the top-k result always holds k tuples: sum_i p_i = k.
  Rng rng(555);
  RandomDbOptions opts;
  opts.num_xtuples = 8;
  opts.max_alternatives = 3;
  for (int trial = 0; trial < 10; ++trial) {
    ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
    for (size_t k : {1u, 3u, 8u}) {
      Result<PsrOutput> psr = ScanPsr(db, k);
      ASSERT_TRUE(psr.ok());
      double total = 0.0;
      for (double p : psr->topk_prob) total += p;
      EXPECT_NEAR(total, static_cast<double>(k), 1e-9);
    }
  }
}

TEST(Psr, TopkProbBoundedByExistence) {
  Rng rng(31337);
  RandomDbOptions opts;
  opts.num_xtuples = 6;
  ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
  Result<PsrOutput> psr = ScanPsr(db, 3);
  ASSERT_TRUE(psr.ok());
  for (size_t i = 0; i < db.num_tuples(); ++i) {
    EXPECT_LE(psr->topk_prob[i], db.tuple(i).prob + 1e-12);
    EXPECT_GE(psr->topk_prob[i], -1e-12);
  }
}

TEST(Psr, EarlyTerminationDoesNotChangeResults) {
  Rng rng(808);
  RandomDbOptions opts;
  opts.num_xtuples = 10;
  opts.max_alternatives = 4;
  opts.allow_subunit_mass = false;  // unit masses saturate x-tuples quickly
  for (int trial = 0; trial < 10; ++trial) {
    ProbabilisticDatabase db = MakeRandomDatabase(&rng, opts);
    PsrOptions with, without;
    with.early_termination = true;
    without.early_termination = false;
    for (size_t k : {1u, 2u, 4u}) {
      Result<PsrOutput> a = ScanPsr(db, k, with);
      Result<PsrOutput> b = ScanPsr(db, k, without);
      ASSERT_TRUE(a.ok() && b.ok());
      for (size_t i = 0; i < db.num_tuples(); ++i) {
        EXPECT_NEAR(a->topk_prob[i], b->topk_prob[i], 1e-10);
      }
    }
  }
}

TEST(Psr, EarlyTerminationActuallyStopsEarly) {
  // A long chain of certain tuples: after k of them every later tuple has
  // zero probability and the scan must stop.
  DatabaseBuilder b;
  const size_t n = 100;
  for (size_t l = 0; l < n; ++l) {
    XTupleId x = b.AddXTuple();
    ASSERT_TRUE(
        b.AddAlternative(x, static_cast<TupleId>(l),
                         static_cast<double>(n - l), 1.0)
            .ok());
  }
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());
  Result<PsrOutput> psr = ScanPsr(*db, 5);
  ASSERT_TRUE(psr.ok());
  EXPECT_EQ(psr->scan_end, 5u);
  EXPECT_EQ(psr->num_nonzero, 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_NEAR(psr->topk_prob[i], 1.0, 1e-12);
  for (size_t i = 5; i < n; ++i) EXPECT_EQ(psr->topk_prob[i], 0.0);
}

TEST(Psr, BestRankTracksUkRanksArgmax) {
  ProbabilisticDatabase db = MakeUdb1();
  PsrOptions options;
  options.store_rank_probabilities = true;
  Result<PsrOutput> psr = ScanPsr(db, 3, options);
  ASSERT_TRUE(psr.ok());
  for (size_t h = 1; h <= 3; ++h) {
    double best = 0.0;
    for (size_t i = 0; i < db.num_tuples(); ++i) {
      if (db.tuple(i).is_null) continue;
      best = std::max(best, psr->rank_probability(i, h));
    }
    EXPECT_NEAR(psr->best_rank_prob[h - 1], best, 1e-12);
    ASSERT_GE(psr->best_rank_index[h - 1], 0);
    EXPECT_NEAR(psr->rank_probability(psr->best_rank_index[h - 1], h), best,
                1e-12);
  }
}

TEST(Psr, KBeyondDatabaseSizeGivesExistenceProbabilities) {
  // With k >= m every existing tuple is in the top-k: p_i = e_i.
  ProbabilisticDatabase db = MakeUdb1();
  Result<PsrOutput> psr = ScanPsr(db, 20);
  ASSERT_TRUE(psr.ok());
  for (size_t i = 0; i < db.num_tuples(); ++i) {
    EXPECT_NEAR(psr->topk_prob[i], db.tuple(i).prob, 1e-10);
  }
}

TEST(Psr, TinyProbabilitiesStayStable) {
  // Near-saturated x-tuples exercise the ill-conditioned divide-out path.
  DatabaseBuilder b;
  XTupleId x0 = b.AddXTuple();
  ASSERT_TRUE(b.AddAlternative(x0, 0, 10.0, 1.0 - 1e-12).ok());
  ASSERT_TRUE(b.AddAlternative(x0, 1, 1.0, 1e-12).ok());
  XTupleId x1 = b.AddXTuple();
  ASSERT_TRUE(b.AddAlternative(x1, 2, 5.0, 0.5).ok());
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());
  Result<PsrOutput> psr = ScanPsr(*db, 1);
  ASSERT_TRUE(psr.ok());
  // Tuple 0 wins rank 1 unless it does not exist: p = 1 - 1e-12.
  const size_t i0 = *db->RankIndexOfTupleId(0);
  EXPECT_NEAR(psr->topk_prob[i0], 1.0, 1e-9);
  for (double p : psr->topk_prob) {
    EXPECT_GE(p, -1e-12);
    EXPECT_LE(p, 1.0 + 1e-12);
  }
}

TEST(Psr, NumNonzeroCountsPositiveProbabilities) {
  ProbabilisticDatabase db = MakeUdb1();
  Result<PsrOutput> psr = ScanPsr(db, 2);
  ASSERT_TRUE(psr.ok());
  size_t count = 0;
  for (double p : psr->topk_prob) count += p > 0.0 ? 1 : 0;
  EXPECT_EQ(psr->num_nonzero, count);
}

TEST(ScanRequest, FactoriesValidate) {
  EXPECT_FALSE(ScanRequest::ForK(0).ok());
  EXPECT_FALSE(ScanRequest::ForLadder({}).ok());
  EXPECT_FALSE(ScanRequest::ForLadder({3, 0}).ok());
  Result<ScanRequest> request = ScanRequest::ForLadder({10, 5, 5});
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->ladder.ks, (std::vector<size_t>{5, 10}));
  EXPECT_TRUE(request->Validate().ok());
  request->checkpoint_interval = 0;
  EXPECT_FALSE(request->Validate().ok());
  ProbabilisticDatabase db = MakeUdb1();
  request->checkpoint_interval = ScanRequest::kDefaultCheckpointInterval;
  Result<ScanResult> scan = ComputePsrLadder(db, *request);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->num_rungs(), 2u);
  EXPECT_EQ(scan->output(0).k, 5u);
  EXPECT_EQ(scan->output(1).k, 10u);
  // kAuto always resolves to a concrete kernel.
  EXPECT_NE(scan->kernel, KernelKind::kAuto);
}

}  // namespace
}  // namespace uclean
