// Property-based invariant tests over randomized databases. Each property
// is an algebraic fact the paper relies on; the parameterized sweep stress-
// tests it across database shapes (x-tuple counts, alternative counts,
// sub-unit masses) and k values.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "clean/planners.h"
#include "common/rng.h"
#include "pworld/pw_quality.h"
#include "quality/pwr.h"
#include "quality/tp.h"
#include "rank/psr.h"
#include "tests/test_util.h"

namespace uclean {
namespace {

using ShapeParam = std::tuple<int, int, bool>;

class PropertySweep : public ::testing::TestWithParam<ShapeParam> {
 protected:
  ProbabilisticDatabase MakeDb(uint64_t seed) {
    const auto [m, alts, subunit] = GetParam();
    Rng rng(seed);
    RandomDbOptions opts;
    opts.num_xtuples = static_cast<size_t>(m);
    opts.max_alternatives = static_cast<size_t>(alts);
    opts.allow_subunit_mass = subunit;
    return MakeRandomDatabase(&rng, opts);
  }
};

TEST_P(PropertySweep, PwResultProbabilitiesFormDistribution) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    ProbabilisticDatabase db = MakeDb(seed);
    for (size_t k : {1u, 2u, 4u}) {
      Result<PwrOutput> pwr = ComputePwrQuality(db, k);
      ASSERT_TRUE(pwr.ok());
      double total = 0.0;
      for (const auto& [result, prob] : pwr->results) {
        EXPECT_GE(prob, -1e-12);
        EXPECT_LE(prob, 1.0 + 1e-12);
        total += prob;
      }
      EXPECT_NEAR(total, 1.0, 1e-9) << "seed " << seed << " k " << k;
    }
  }
}

TEST_P(PropertySweep, QualityIsNonPositiveAndBounded) {
  for (uint64_t seed : {4u, 5u}) {
    ProbabilisticDatabase db = MakeDb(seed);
    for (size_t k : {1u, 3u}) {
      Result<PwrOutput> pwr = ComputePwrQuality(db, k);
      ASSERT_TRUE(pwr.ok());
      EXPECT_LE(pwr->quality, 1e-12);
      EXPECT_GE(pwr->quality,
                -std::log2(static_cast<double>(pwr->num_results)) - 1e-9);
    }
  }
}

TEST_P(PropertySweep, TopkProbabilitiesSumToK) {
  // With nulls materialized every world holds m tuples, so for k <= m the
  // result always has exactly k entries.
  for (uint64_t seed : {6u, 7u}) {
    ProbabilisticDatabase db = MakeDb(seed);
    const size_t m = db.num_xtuples();
    for (size_t k = 1; k <= m; k += 2) {
      Result<PsrOutput> psr = ScanPsr(db, k);
      ASSERT_TRUE(psr.ok());
      double total = 0.0;
      for (double p : psr->topk_prob) total += p;
      EXPECT_NEAR(total, static_cast<double>(k), 1e-9);
    }
  }
}

TEST_P(PropertySweep, RankProbabilitiesAreColumnDistributions) {
  // For each rank h <= m: exactly one tuple occupies rank h in every
  // world, so rho(., h) sums to 1 across tuples.
  for (uint64_t seed : {8u}) {
    ProbabilisticDatabase db = MakeDb(seed);
    const size_t k = std::min<size_t>(db.num_xtuples(), 4);
    PsrOptions options;
    options.store_rank_probabilities = true;
    Result<PsrOutput> psr = ScanPsr(db, k, options);
    ASSERT_TRUE(psr.ok());
    for (size_t h = 1; h <= k; ++h) {
      double column = 0.0;
      for (size_t i = 0; i < db.num_tuples(); ++i) {
        column += psr->rank_probability(i, h);
      }
      EXPECT_NEAR(column, 1.0, 1e-9) << "rank " << h;
    }
  }
}

TEST_P(PropertySweep, QualityAlgorithmsAgree) {
  for (uint64_t seed : {9u, 10u}) {
    ProbabilisticDatabase db = MakeDb(seed);
    for (size_t k : {2u, 3u}) {
      Result<PwrOutput> pwr = ComputePwrQuality(db, k);
      Result<TpOutput> tp = ComputeTpQuality(db, k);
      ASSERT_TRUE(pwr.ok() && tp.ok());
      EXPECT_NEAR(pwr->quality, tp->quality, 1e-8);
    }
  }
}

TEST_P(PropertySweep, CleaningEveryXTupleRemovesAllAmbiguity) {
  // Collapsing every x-tuple to a certain outcome yields quality 0, i.e.
  // sum of all achievable improvements equals |S|.
  for (uint64_t seed : {11u}) {
    ProbabilisticDatabase db = MakeDb(seed);
    const size_t k = 2;
    Result<TpOutput> tp = ComputeTpQuality(db, k);
    ASSERT_TRUE(tp.ok());
    CleaningProblem problem;
    problem.gain = tp->xtuple_gain;
    for (double& g : problem.gain) g = std::min(g, 0.0);
    problem.topk_mass = tp->xtuple_topk_mass;
    problem.cost.assign(db.num_xtuples(), 1);
    problem.sc_prob.assign(db.num_xtuples(), 1.0);
    problem.budget = static_cast<int64_t>(db.num_xtuples());
    Result<CleaningPlan> plan = PlanDp(problem);
    ASSERT_TRUE(plan.ok());
    EXPECT_NEAR(plan->expected_improvement, -tp->quality, 1e-8);
  }
}

TEST_P(PropertySweep, DpDominatesEveryOtherPlanner) {
  for (uint64_t seed : {12u, 13u}) {
    ProbabilisticDatabase db = MakeDb(seed);
    const size_t k = 2;
    Rng rng(seed * 17);
    Result<TpOutput> tp = ComputeTpQuality(db, k);
    ASSERT_TRUE(tp.ok());
    CleaningProblem problem;
    problem.gain = tp->xtuple_gain;
    for (double& g : problem.gain) g = std::min(g, 0.0);
    problem.topk_mass = tp->xtuple_topk_mass;
    problem.cost.clear();
    problem.sc_prob.clear();
    for (size_t l = 0; l < db.num_xtuples(); ++l) {
      problem.cost.push_back(rng.UniformInt(1, 4));
      problem.sc_prob.push_back(rng.Uniform(0.1, 1.0));
    }
    problem.budget = 6;
    Result<CleaningPlan> dp = PlanDp(problem);
    Result<CleaningPlan> greedy = PlanGreedy(problem);
    Result<CleaningPlan> randp = PlanRandP(problem, &rng);
    Result<CleaningPlan> randu = PlanRandU(problem, &rng);
    ASSERT_TRUE(dp.ok() && greedy.ok() && randp.ok() && randu.ok());
    EXPECT_GE(dp->expected_improvement,
              greedy->expected_improvement - 1e-9);
    EXPECT_GE(dp->expected_improvement, randp->expected_improvement - 1e-9);
    EXPECT_GE(dp->expected_improvement, randu->expected_improvement - 1e-9);
  }
}

TEST_P(PropertySweep, BudgetMonotonicityOfOptimalImprovement) {
  for (uint64_t seed : {14u}) {
    ProbabilisticDatabase db = MakeDb(seed);
    Result<TpOutput> tp = ComputeTpQuality(db, 2);
    ASSERT_TRUE(tp.ok());
    CleaningProblem problem;
    problem.gain = tp->xtuple_gain;
    for (double& g : problem.gain) g = std::min(g, 0.0);
    problem.topk_mass = tp->xtuple_topk_mass;
    problem.cost.assign(db.num_xtuples(), 2);
    problem.sc_prob.assign(db.num_xtuples(), 0.4);
    double previous = -1.0;
    for (int64_t budget : {0, 2, 4, 8, 16}) {
      problem.budget = budget;
      Result<CleaningPlan> plan = PlanDp(problem);
      ASSERT_TRUE(plan.ok());
      EXPECT_GE(plan->expected_improvement, previous - 1e-12);
      previous = plan->expected_improvement;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PropertySweep,
    ::testing::Combine(::testing::Values(3, 5, 8),  // x-tuples
                       ::testing::Values(2, 4),     // max alternatives
                       ::testing::Bool()),          // sub-unit mass
    [](const auto& suite_info) {
      return "m" + std::to_string(std::get<0>(suite_info.param)) + "a" +
             std::to_string(std::get<1>(suite_info.param)) +
             (std::get<2>(suite_info.param) ? "sub" : "full");
    });

}  // namespace
}  // namespace uclean
