// Unit tests for CSV (de)serialization of probabilistic databases.

#include "model/csv_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "model/paper_example.h"

namespace uclean {
namespace {

TEST(CsvIo, RoundTripsUdb1) {
  ProbabilisticDatabase original = MakeUdb1();
  std::ostringstream out;
  ASSERT_TRUE(WriteDatabaseCsv(original, &out).ok());

  std::istringstream in(out.str());
  Result<ProbabilisticDatabase> loaded = ReadDatabaseCsv(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->num_tuples(), original.num_tuples());
  ASSERT_EQ(loaded->num_xtuples(), original.num_xtuples());
  for (size_t i = 0; i < original.num_tuples(); ++i) {
    EXPECT_EQ(loaded->tuple(i).id, original.tuple(i).id);
    EXPECT_EQ(loaded->tuple(i).xtuple, original.tuple(i).xtuple);
    EXPECT_DOUBLE_EQ(loaded->tuple(i).score, original.tuple(i).score);
    EXPECT_DOUBLE_EQ(loaded->tuple(i).prob, original.tuple(i).prob);
    EXPECT_EQ(loaded->tuple(i).label, original.tuple(i).label);
  }
}

TEST(CsvIo, NullTuplesAreNotSerializedButRederived) {
  DatabaseBuilder b;
  XTupleId x = b.AddXTuple("sensor");
  ASSERT_TRUE(b.AddAlternative(x, 1, 5.0, 0.25).ok());
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->num_tuples(), 2u);  // real + null

  std::ostringstream out;
  ASSERT_TRUE(WriteDatabaseCsv(*db, &out).ok());
  // Exactly header + one data line.
  int lines = 0;
  for (char c : out.str()) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 2);

  std::istringstream in(out.str());
  Result<ProbabilisticDatabase> loaded = ReadDatabaseCsv(&in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_tuples(), 2u);
  EXPECT_TRUE(loaded->tuple(1).is_null);
  EXPECT_NEAR(loaded->tuple(1).prob, 0.75, 1e-12);
}

TEST(CsvIo, AcceptsCommentsAndBlankLines) {
  std::istringstream in(
      "# a comment\n"
      "\n"
      "xtuple,tuple_id,score,prob,label\n"
      "# another\n"
      "0,1,3.5,0.5,foo\n"
      "0,2,4.5,0.5,bar\n");
  Result<ProbabilisticDatabase> db = ReadDatabaseCsv(&in);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->num_real_tuples(), 2u);
  EXPECT_EQ(db->tuple(0).label, "bar");
}

TEST(CsvIo, RemapsSparseXTupleKeys) {
  std::istringstream in(
      "xtuple,tuple_id,score,prob,label\n"
      "17,1,3.5,1,a\n"
      "42,2,4.5,1,b\n");
  Result<ProbabilisticDatabase> db = ReadDatabaseCsv(&in);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_xtuples(), 2u);
}

TEST(CsvIo, RejectsMissingHeader) {
  std::istringstream in("0,1,3.5,0.5,foo\n");
  EXPECT_FALSE(ReadDatabaseCsv(&in).ok());
}

TEST(CsvIo, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_FALSE(ReadDatabaseCsv(&in).ok());
}

TEST(CsvIo, RejectsWrongFieldCount) {
  std::istringstream in(
      "xtuple,tuple_id,score,prob,label\n"
      "0,1,3.5\n");
  Result<ProbabilisticDatabase> db = ReadDatabaseCsv(&in);
  EXPECT_FALSE(db.ok());
  EXPECT_NE(db.status().message().find("line 2"), std::string::npos);
}

TEST(CsvIo, RejectsNonNumericFields) {
  std::istringstream in(
      "xtuple,tuple_id,score,prob,label\n"
      "0,1,abc,0.5,foo\n");
  EXPECT_FALSE(ReadDatabaseCsv(&in).ok());
}

TEST(CsvIo, RejectsInvalidModelData) {
  // Probability 1.5 passes parsing but fails model validation.
  std::istringstream in(
      "xtuple,tuple_id,score,prob,label\n"
      "0,1,3.5,1.5,foo\n");
  EXPECT_FALSE(ReadDatabaseCsv(&in).ok());
}

TEST(CsvIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/uclean_csv_test.csv";
  ProbabilisticDatabase original = MakeUdb2();
  ASSERT_TRUE(WriteDatabaseCsvFile(original, path).ok());
  Result<ProbabilisticDatabase> loaded = ReadDatabaseCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_tuples(), original.num_tuples());
  std::remove(path.c_str());
}

TEST(CsvIo, MissingFileIsIOError) {
  Result<ProbabilisticDatabase> r =
      ReadDatabaseCsvFile("/nonexistent/uclean.csv");
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace uclean
