// Malformed-input hardening of the serving protocol and LineServer:
// truncated lines, oversized payloads, unknown verbs and bad arguments
// must never crash or wedge the loop -- each becomes one structured
// kInvalidArgument reply in order, and the server keeps serving.

#include <sys/socket.h>
#include <unistd.h>

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "clean/session_pool.h"
#include "gtest/gtest.h"
#include "model/database.h"
#include "serve/cost_model.h"
#include "serve/frontend.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "workload/synthetic.h"

namespace uclean {
namespace serve {
namespace {

ProbabilisticDatabase MakeDb() {
  SyntheticOptions opts;
  opts.num_xtuples = 30;
  opts.tuples_per_xtuple = 3;
  opts.real_mass_min = 0.7;
  opts.real_mass_max = 1.0;
  opts.seed = 5;
  Result<ProbabilisticDatabase> db = GenerateSynthetic(opts);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(*db);
}

Result<Frontend> MakeFrontend() {
  Result<KLadder> ladder = KLadder::Of({5, 10});
  EXPECT_TRUE(ladder.ok());
  Result<SessionPool> pool =
      SessionPool::Create(MakeDb(), *ladder, SessionPool::Options());
  EXPECT_TRUE(pool.ok()) << pool.status().ToString();
  // No cleaning profile on purpose: clean requests must degrade to a
  // kFailedPrecondition reply, not a crash.
  return Frontend::Create(std::move(*pool), std::nullopt, FrontendOptions());
}

// ---------------------------------------------------------------- parsing

TEST(ParseRequestTest, AcceptsEveryVerbShape) {
  Result<Request> topk = ParseRequest("topk 25");
  ASSERT_TRUE(topk.ok());
  EXPECT_EQ(topk->verb, Verb::kTopk);
  EXPECT_EQ(topk->k, 25u);
  EXPECT_FALSE(topk->plan.has_value());

  Result<Request> pinned = ParseRequest("quality 7 plan=replay");
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned->verb, Verb::kQuality);
  EXPECT_EQ(pinned->k, 7u);
  ASSERT_TRUE(pinned->plan.has_value());
  EXPECT_EQ(*pinned->plan, PlanKind::kReplay);

  Result<Request> clean = ParseRequest("clean 12");
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->verb, Verb::kClean);
  EXPECT_EQ(clean->xtuple, 12);

  Result<Request> stats = ParseRequest("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->verb, Verb::kStats);

  // Token separation tolerates tabs and runs of spaces.
  EXPECT_TRUE(ParseRequest("topk\t3").ok());
  EXPECT_TRUE(ParseRequest("  topk   3  ").ok());
}

TEST(ParseRequestTest, RejectsMalformedLinesWithInvalidArgument) {
  const char* kBad[] = {
      "",                           // empty line
      "bogus 5",                    // unknown verb
      "TOPK 5",                     // verbs are case-sensitive
      "topk",                       // missing k
      "topk abc",                   // non-numeric k
      "topk 0",                     // k below range
      "topk -3",                    // negative k
      "topk 99999999999999999999",  // k past int64
      "topk 10000001",              // k past kMaxK
      "topk 5 6",                   // trailing junk
      "topk 5 plan=warp",           // unknown plan name
      "topk 5 plan=",               // empty plan name
      "topk 5 plan=seq extra",      // junk after the plan token
      "quality",                    // missing k
      "clean",                      // missing xtuple
      "clean x",                    // non-numeric xtuple
      "clean -1",                   // negative xtuple
      "clean 1 2",                  // trailing junk
      "clean 5 plan=seq",           // plan token on a non-query verb
      "stats 1",                    // stats takes no arguments
  };
  for (const char* line : kBad) {
    Result<Request> request = ParseRequest(line);
    EXPECT_FALSE(request.ok()) << "'" << line << "' should not parse";
    if (!request.ok()) {
      EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument)
          << "'" << line << "': " << request.status().ToString();
    }
  }
}

TEST(ParseRequestTest, PlanNamesRoundTrip) {
  const PlanKind kinds[] = {PlanKind::kSequential, PlanKind::kSharded,
                            PlanKind::kLadderShared, PlanKind::kReplay};
  for (PlanKind kind : kinds) {
    Result<PlanKind> parsed = ParsePlanKind(PlanKindName(kind));
    ASSERT_TRUE(parsed.ok()) << PlanKindName(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParsePlanKind("auto").ok());  // "auto" means no forced plan
  EXPECT_FALSE(ParsePlanKind("").ok());
  EXPECT_FALSE(ParsePlanKind("SEQ").ok());
}

TEST(FormatReplyTest, ErrorRepliesAreOneSanitizedLine) {
  Reply reply;
  reply.status = Status::InvalidArgument("bad \"quoted\"\r\nmultiline");
  const std::string line = FormatReply(reply);
  EXPECT_EQ(line.rfind("error code=InvalidArgument msg=", 0), 0u) << line;
  EXPECT_EQ(line.find('\n'), std::string::npos) << line;
  EXPECT_EQ(line.find('\r'), std::string::npos) << line;
  // Only the two delimiting quotes survive sanitization.
  size_t quotes = 0;
  for (char c : line) quotes += c == '"';
  EXPECT_EQ(quotes, 2u) << line;
}

// ------------------------------------------------------------- the server

/// Runs one socketpair connection through a fresh LineServer: writes
/// `input`, half-closes, serves to completion, returns the reply lines.
std::vector<std::string> ServeOneConnection(
    Frontend* frontend, const std::string& input,
    const ServerOptions& options = ServerOptions()) {
  LineServer server(frontend, options);
  int sv[2];
  EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  Result<size_t> added = server.AddClient(sv[1], sv[1]);
  EXPECT_TRUE(added.ok());
  size_t written = 0;
  while (written < input.size()) {
    const ssize_t n =
        write(sv[0], input.data() + written, input.size() - written);
    if (n <= 0) break;
    written += static_cast<size_t>(n);
  }
  EXPECT_EQ(written, input.size());
  shutdown(sv[0], SHUT_WR);
  const Status run = server.Run();
  EXPECT_TRUE(run.ok()) << run.ToString();
  std::string all;
  char chunk[4096];
  while (true) {
    const ssize_t n = read(sv[0], chunk, sizeof(chunk));
    if (n <= 0) break;
    all.append(chunk, static_cast<size_t>(n));
  }
  close(sv[0]);
  std::vector<std::string> lines;
  size_t begin = 0;
  while (true) {
    const size_t newline = all.find('\n', begin);
    if (newline == std::string::npos) break;
    lines.push_back(all.substr(begin, newline - begin));
    begin = newline + 1;
  }
  EXPECT_EQ(begin, all.size()) << "partial reply line: " << all.substr(begin);
  return lines;
}

TEST(LineServerTest, MalformedLinesYieldErrorsInOrderAndServingContinues) {
  Result<Frontend> frontend = MakeFrontend();
  ASSERT_TRUE(frontend.ok());
  const std::vector<std::string> lines = ServeOneConnection(
      &*frontend,
      "topk 5\n"
      "bogus verb\n"
      "topk 0\n"
      "quality 10\n"
      "topk 5 plan=warp\n"
      "stats\n");
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_EQ(lines[0].rfind("ok verb=topk k=5 ", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1].rfind("error code=InvalidArgument ", 0), 0u) << lines[1];
  EXPECT_EQ(lines[2].rfind("error code=InvalidArgument ", 0), 0u) << lines[2];
  EXPECT_EQ(lines[3].rfind("ok verb=quality k=10 ", 0), 0u) << lines[3];
  EXPECT_EQ(lines[4].rfind("error code=InvalidArgument ", 0), 0u) << lines[4];
  EXPECT_EQ(lines[5].rfind("ok verb=stats ", 0), 0u) << lines[5];
}

TEST(LineServerTest, OversizedLineGetsOneErrorAndResynchronizes) {
  Result<Frontend> frontend = MakeFrontend();
  ASSERT_TRUE(frontend.ok());
  ServerOptions options;
  options.max_line_bytes = 64;
  const std::string oversized(1000, 'x');
  const std::vector<std::string> lines = ServeOneConnection(
      &*frontend, "topk 5\n" + oversized + "\ntopk 10\n", options);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].rfind("ok verb=topk k=5 ", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1].rfind("error code=InvalidArgument ", 0), 0u) << lines[1];
  EXPECT_NE(lines[1].find("exceeds"), std::string::npos) << lines[1];
  EXPECT_EQ(lines[2].rfind("ok verb=topk k=10 ", 0), 0u) << lines[2];
}

TEST(LineServerTest, OversizedFinalLineWithoutNewlineErrorsOnce) {
  Result<Frontend> frontend = MakeFrontend();
  ASSERT_TRUE(frontend.ok());
  ServerOptions options;
  options.max_line_bytes = 64;
  const std::vector<std::string> lines =
      ServeOneConnection(&*frontend, std::string(500, 'y'), options);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("error code=InvalidArgument ", 0), 0u) << lines[0];
}

TEST(LineServerTest, TruncatedFinalLineIsServedAtEof) {
  Result<Frontend> frontend = MakeFrontend();
  ASSERT_TRUE(frontend.ok());
  // No trailing newline before EOF: the line still counts as a request.
  const std::vector<std::string> lines =
      ServeOneConnection(&*frontend, "topk 5\ntopk 10");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("ok verb=topk k=5 ", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1].rfind("ok verb=topk k=10 ", 0), 0u) << lines[1];
}

TEST(LineServerTest, CrlfAndBlankLinesAreTolerated) {
  Result<Frontend> frontend = MakeFrontend();
  ASSERT_TRUE(frontend.ok());
  const std::vector<std::string> lines =
      ServeOneConnection(&*frontend, "topk 5\r\n\r\n   \nquality 10\r\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("ok verb=topk k=5 ", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1].rfind("ok verb=quality k=10 ", 0), 0u) << lines[1];
}

TEST(LineServerTest, CleanWithoutProfileIsFailedPreconditionNotDeath) {
  Result<Frontend> frontend = MakeFrontend();
  ASSERT_TRUE(frontend.ok());
  const std::vector<std::string> lines =
      ServeOneConnection(&*frontend, "clean 3\ntopk 5\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("error code=FailedPrecondition ", 0), 0u)
      << lines[0];
  EXPECT_EQ(lines[1].rfind("ok verb=topk k=5 ", 0), 0u) << lines[1];
}

TEST(LineServerTest, InfeasibleForcedPlansAreStructuredErrors) {
  // Single-threaded pool: plan=shard cannot run; k=33 is off the warm
  // ladder {5, 10}: plan=replay cannot serve it. Both must reply with
  // kFailedPrecondition, then the connection keeps working.
  Result<Frontend> frontend = MakeFrontend();
  ASSERT_TRUE(frontend.ok());
  const std::vector<std::string> lines = ServeOneConnection(
      &*frontend, "topk 5 plan=shard\ntopk 33 plan=replay\ntopk 5\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].rfind("error code=FailedPrecondition ", 0), 0u)
      << lines[0];
  EXPECT_EQ(lines[1].rfind("error code=FailedPrecondition ", 0), 0u)
      << lines[1];
  EXPECT_EQ(lines[2].rfind("ok verb=topk k=5 ", 0), 0u) << lines[2];
}

TEST(LineServerTest, ClientGoneWithoutReadingRepliesDoesNotKillTheServer) {
  // Client A sends requests and closes its socket outright, replies
  // unread: the server's write() must come back EPIPE (not a fatal
  // SIGPIPE) and its read() may come back ECONNRESET (not a poll spin).
  // Either way only A's connection dies; client B is served in full.
  Result<Frontend> frontend = MakeFrontend();
  ASSERT_TRUE(frontend.ok());
  LineServer server(&*frontend, ServerOptions());
  int a[2];
  int b[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, a), 0);
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, b), 0);
  ASSERT_TRUE(server.AddClient(a[1], a[1]).ok());
  ASSERT_TRUE(server.AddClient(b[1], b[1]).ok());
  const std::string burst = "topk 5\ntopk 10\nstats\n";
  ASSERT_EQ(write(a[0], burst.data(), burst.size()),
            static_cast<ssize_t>(burst.size()));
  close(a[0]);  // gone entirely: no shutdown(SHUT_WR), no draining
  const std::string polite = "topk 5\nquality 10\n";
  ASSERT_EQ(write(b[0], polite.data(), polite.size()),
            static_cast<ssize_t>(polite.size()));
  shutdown(b[0], SHUT_WR);
  const Status run = server.Run();
  EXPECT_TRUE(run.ok()) << run.ToString();
  std::string all;
  char chunk[4096];
  while (true) {
    const ssize_t n = read(b[0], chunk, sizeof(chunk));
    if (n <= 0) break;
    all.append(chunk, static_cast<size_t>(n));
  }
  close(b[0]);
  EXPECT_NE(all.find("ok verb=topk k=5 "), std::string::npos) << all;
  EXPECT_NE(all.find("ok verb=quality k=10 "), std::string::npos) << all;
}

TEST(LineServerTest, RejectsNegativeFds) {
  Result<Frontend> frontend = MakeFrontend();
  ASSERT_TRUE(frontend.ok());
  LineServer server(&*frontend, ServerOptions());
  EXPECT_FALSE(server.AddClient(-1, 1).ok());
  EXPECT_FALSE(server.AddClient(1, -1).ok());
  EXPECT_EQ(server.num_connections(), 0u);
}

// ------------------------------------------------------------ death tests

TEST(ServeDeathTest, NullFrontendIsAHardCheck) {
  EXPECT_DEATH(LineServer(nullptr, ServerOptions()), "UCLEAN_CHECK failed");
}

TEST(ServeDeathTest, FingerprintOfClosedClientIsAHardCheck) {
  Result<Frontend> frontend = MakeFrontend();
  ASSERT_TRUE(frontend.ok());
  const Frontend::ClientId id = frontend->Connect();
  ASSERT_TRUE(frontend->Disconnect(id).ok());
  EXPECT_DEATH(frontend->RngFingerprint(id), "UCLEAN_CHECK failed");
}

}  // namespace
}  // namespace serve
}  // namespace uclean
