// Locks in every number the paper derives from its running example
// (Tables I-II, Figures 2-3, and the Section I PT-2 answer): the pw-result
// distributions of udb1/udb2, the PWS-quality scores -2.55 and -1.85, and
// the PT-2 answer {t1, t2, t5} at threshold 0.4. All three quality
// algorithms must agree with each other and with the published values.

#include <gtest/gtest.h>

#include <algorithm>

#include "model/paper_example.h"
#include "pworld/pw_quality.h"
#include "quality/pwr.h"
#include "quality/tp.h"
#include "query/topk_queries.h"
#include "rank/psr.h"
#include "test_util.h"

namespace uclean {
namespace {

constexpr size_t kTop2 = 2;

TEST(PaperExample, Udb1Layout) {
  ProbabilisticDatabase db = MakeUdb1();
  EXPECT_EQ(db.num_xtuples(), 4u);
  EXPECT_EQ(db.num_real_tuples(), 7u);
  // Every sensor's mass is exactly 1: no null completion.
  EXPECT_EQ(db.num_tuples(), 7u);
  // Descending temperature: t1(32) t2(30) t5(27) t6(26) t4(25) t3(22) t0(21).
  const TupleId expected[] = {1, 2, 5, 6, 4, 3, 0};
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(db.tuple(i).id, expected[i]) << "rank " << i + 1;
  }
}

TEST(PaperExample, Udb1WorldCount) {
  ProbabilisticDatabase db = MakeUdb1();
  EXPECT_DOUBLE_EQ(db.NumPossibleWorlds(), 2.0 * 2.0 * 2.0 * 1.0);
}

TEST(PaperExample, SectionIWorldProbability) {
  // Section I: world W = {t0, t3, t4, t6} has probability
  // 0.6 * 0.3 * 0.4 * 1 = 0.072.
  ProbabilisticDatabase db = MakeUdb1();
  Result<PwOutput> pw = ComputePwQuality(db, kTop2);
  ASSERT_TRUE(pw.ok()) << pw.status();
  // That world's top-2 is (t6, t4): rank indices of t6 and t4.
  const size_t r_t6 = *db.RankIndexOfTupleId(6);
  const size_t r_t4 = *db.RankIndexOfTupleId(4);
  PwResult result = {static_cast<int32_t>(std::min(r_t6, r_t4)),
                     static_cast<int32_t>(std::max(r_t6, r_t4))};
  // (t6, t4) also arises from worlds with t0 vs nothing else: enumerate by
  // hand -- t1 absent (0.6), t2 absent (0.3), S3 must produce t4 (0.4):
  // the only free choice is S1 in {t0}: probability 0.6*0.3*0.4 = 0.072.
  ASSERT_TRUE(pw->results.count(result));
  EXPECT_NEAR(pw->results.at(result), 0.072, 1e-12);
}

TEST(PaperExample, SectionIIIPwResultProbability) {
  // Section III-B: r = (t1, t2) has probability 0.112 + 0.168 = 0.28.
  ProbabilisticDatabase db = MakeUdb1();
  Result<PwOutput> pw = ComputePwQuality(db, kTop2);
  ASSERT_TRUE(pw.ok()) << pw.status();
  const size_t r_t1 = *db.RankIndexOfTupleId(1);
  const size_t r_t2 = *db.RankIndexOfTupleId(2);
  PwResult result = {static_cast<int32_t>(r_t1), static_cast<int32_t>(r_t2)};
  ASSERT_TRUE(pw->results.count(result));
  EXPECT_NEAR(pw->results.at(result), 0.28, 1e-12);
}

TEST(PaperExample, Udb1HasSevenPwResults) {
  // Figure 2 plots seven pw-results for udb1.
  ProbabilisticDatabase db = MakeUdb1();
  Result<PwOutput> pw = ComputePwQuality(db, kTop2);
  ASSERT_TRUE(pw.ok()) << pw.status();
  EXPECT_EQ(pw->results.size(), 7u);
}

TEST(PaperExample, Udb2HasFourPwResults) {
  // Figure 3 plots four pw-results for udb2.
  ProbabilisticDatabase db = MakeUdb2();
  Result<PwOutput> pw = ComputePwQuality(db, kTop2);
  ASSERT_TRUE(pw.ok()) << pw.status();
  EXPECT_EQ(pw->results.size(), 4u);
}

TEST(PaperExample, Udb1QualityMatchesPaper) {
  // The paper reports quality -2.55 for udb1 (2 decimal places).
  ProbabilisticDatabase db = MakeUdb1();
  Result<PwOutput> pw = ComputePwQuality(db, kTop2);
  ASSERT_TRUE(pw.ok()) << pw.status();
  EXPECT_NEAR(pw->quality, -2.55, 0.005);
}

TEST(PaperExample, Udb2QualityMatchesPaper) {
  // The paper reports quality -1.85 for udb2, and |S|(udb2) > |S|(udb1)...
  // i.e. udb2 is less ambiguous: higher (less negative) quality.
  ProbabilisticDatabase db = MakeUdb2();
  Result<PwOutput> pw = ComputePwQuality(db, kTop2);
  ASSERT_TRUE(pw.ok()) << pw.status();
  EXPECT_NEAR(pw->quality, -1.85, 0.005);

  Result<PwOutput> pw1 = ComputePwQuality(MakeUdb1(), kTop2);
  ASSERT_TRUE(pw1.ok());
  EXPECT_GT(pw->quality, pw1->quality);
}

TEST(PaperExample, AllThreeAlgorithmsAgreeOnUdb1) {
  ProbabilisticDatabase db = MakeUdb1();
  Result<PwOutput> pw = ComputePwQuality(db, kTop2);
  Result<PwrOutput> pwr = ComputePwrQuality(db, kTop2);
  Result<TpOutput> tp = ComputeTpQuality(db, kTop2);
  ASSERT_TRUE(pw.ok() && pwr.ok() && tp.ok());
  EXPECT_NEAR(pw->quality, pwr->quality, 1e-10);
  EXPECT_NEAR(pw->quality, tp->quality, 1e-10);
}

TEST(PaperExample, AllThreeAlgorithmsAgreeOnUdb2) {
  ProbabilisticDatabase db = MakeUdb2();
  Result<PwOutput> pw = ComputePwQuality(db, kTop2);
  Result<PwrOutput> pwr = ComputePwrQuality(db, kTop2);
  Result<TpOutput> tp = ComputeTpQuality(db, kTop2);
  ASSERT_TRUE(pw.ok() && pwr.ok() && tp.ok());
  EXPECT_NEAR(pw->quality, pwr->quality, 1e-10);
  EXPECT_NEAR(pw->quality, tp->quality, 1e-10);
}

TEST(PaperExample, PwrReproducesPwDistribution) {
  ProbabilisticDatabase db = MakeUdb1();
  Result<PwOutput> pw = ComputePwQuality(db, kTop2);
  Result<PwrOutput> pwr = ComputePwrQuality(db, kTop2);
  ASSERT_TRUE(pw.ok() && pwr.ok());
  ASSERT_EQ(pw->results.size(), pwr->results.size());
  for (const auto& [result, prob] : pw->results) {
    ASSERT_TRUE(pwr->results.count(result))
        << "missing " << PwResultToString(db, result);
    EXPECT_NEAR(pwr->results.at(result), prob, 1e-12);
  }
}

TEST(PaperExample, Pt2AnswerMatchesSectionI) {
  // Section I: PT-2 with T = 0.4 returns {t1, t2, t5} on udb1.
  ProbabilisticDatabase db = MakeUdb1();
  Result<PsrOutput> psr = ScanPsr(db, kTop2);
  ASSERT_TRUE(psr.ok());
  Result<PtkAnswer> answer = EvaluatePtk(db, *psr, 0.4);
  ASSERT_TRUE(answer.ok());
  std::vector<TupleId> ids;
  for (const AnswerEntry& e : answer->tuples) ids.push_back(e.tuple_id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<TupleId>{1, 2, 5}));
}

TEST(PaperExample, CleaningS3YieldsUdb2Quality) {
  // Cleaning S3 successfully (outcome t5) turns udb1 into udb2 exactly.
  ProbabilisticDatabase udb1 = MakeUdb1();
  DatabaseBuilder builder = DatabaseBuilder::FromDatabase(udb1);
  const size_t r_t5 = *udb1.RankIndexOfTupleId(5);
  ASSERT_TRUE(builder.ReplaceWithCertain(2, &udb1.tuple(r_t5)).ok());
  Result<ProbabilisticDatabase> cleaned = std::move(builder).Finish();
  ASSERT_TRUE(cleaned.ok());

  Result<TpOutput> tp_cleaned = ComputeTpQuality(*cleaned, kTop2);
  Result<TpOutput> tp_udb2 = ComputeTpQuality(MakeUdb2(), kTop2);
  ASSERT_TRUE(tp_cleaned.ok() && tp_udb2.ok());
  EXPECT_NEAR(tp_cleaned->quality, tp_udb2->quality, 1e-12);
}

}  // namespace
}  // namespace uclean
