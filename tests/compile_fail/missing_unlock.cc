// MUST NOT COMPILE under -Werror=thread-safety: a Lock() with no
// matching Unlock() on some path. Registered WILL_FAIL in ctest.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Leaky {
 public:
  void LockAndForget(bool bail) {
    mu_.Lock();
    if (bail) return;  // error: mu_ still held at function exit
    ++value_;
    mu_.Unlock();
  }

 private:
  uclean::Mutex mu_;
  int value_ UCLEAN_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Leaky leaky;
  leaky.LockAndForget(true);
  return 0;
}
