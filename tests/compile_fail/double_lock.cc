// MUST NOT COMPILE under -Werror=thread-safety: acquiring a mutex the
// caller already holds (self-deadlock on std::mutex). Registered
// WILL_FAIL in ctest.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Reentrant {
 public:
  void Outer() UCLEAN_EXCLUDES(mu_) {
    uclean::MutexLock lock(mu_);
    Inner();  // error: Inner acquires mu_, which is already held
  }

  void Inner() UCLEAN_EXCLUDES(mu_) {
    uclean::MutexLock lock(mu_);
    ++value_;
  }

 private:
  uclean::Mutex mu_;
  int value_ UCLEAN_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Reentrant reentrant;
  reentrant.Outer();
  return 0;
}
