// Positive control for the negative-compile suite: idiomatic use of the
// annotated primitives must compile CLEAN under -Werror=thread-safety.
// If this file fails, the toolchain or the annotations are broken and
// the WILL_FAIL results of the sibling cases mean nothing.
//
// Driven by ctest (Clang only): see the compile_fail block in
// CMakeLists.txt -- each case is a bare `clang++ -fsyntax-only
// -Werror=thread-safety` invocation, no linking.

#include "common/mutex.h"
#include "common/serial_gate.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() UCLEAN_EXCLUDES(mu_) {
    uclean::MutexLock lock(mu_);
    ++value_;
  }

  int Read() UCLEAN_EXCLUDES(mu_) {
    uclean::MutexLock lock(mu_);
    return value_;
  }

 private:
  uclean::Mutex mu_;
  int value_ UCLEAN_GUARDED_BY(mu_) = 0;
};

class Serialized {
 public:
  void Mutate() UCLEAN_EXCLUDES(gate_) {
    uclean::ScopedSerialCall guard(gate_);
    MutateLocked();
  }

 private:
  void MutateLocked() UCLEAN_REQUIRES(gate_) { ++state_; }

  uclean::SerialGate gate_;
  int state_ = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  Serialized serialized;
  serialized.Mutate();
  return counter.Read();
}
