// MUST NOT COMPILE under -Werror=thread-safety: reads a GUARDED_BY
// member without holding its mutex. Registered WILL_FAIL in ctest --
// if this ever compiles, the guarded-member contract has gone dark.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  int ReadWithoutLock() {
    return value_;  // error: reading value_ requires holding mu_
  }

 private:
  uclean::Mutex mu_;
  int value_ UCLEAN_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  return counter.ReadWithoutLock();
}
