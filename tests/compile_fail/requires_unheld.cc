// MUST NOT COMPILE under -Werror=thread-safety: calling a
// REQUIRES(gate) internal helper without opening the serialized-call
// window first -- the exact future bug the SerialGate annotations exist
// to catch (a new entry point that forgets its guard). Registered
// WILL_FAIL in ctest.

#include "common/serial_gate.h"
#include "common/thread_annotations.h"

namespace {

class Serialized {
 public:
  void ForgotTheGuard() {
    MutateLocked();  // error: requires holding gate_
  }

 private:
  void MutateLocked() UCLEAN_REQUIRES(gate_) { ++state_; }

  uclean::SerialGate gate_;
  int state_ = 0;
};

}  // namespace

int main() {
  Serialized serialized;
  serialized.ForgotTheGuard();
  return 0;
}
