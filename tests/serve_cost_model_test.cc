// Cost-based plan selection (serve/cost_model.h): each of the four
// strategies is pinned by crafted inputs, the forced-plan seam routes
// every strategy through the front-end, all four return bitwise-equal
// answers, and the recorded PlanRecord matches what actually ran.

#include <string>
#include <utility>
#include <vector>

#include "clean/session_pool.h"
#include "gtest/gtest.h"
#include "model/database.h"
#include "serve/cost_model.h"
#include "serve/frontend.h"
#include "serve/protocol.h"
#include "workload/synthetic.h"

namespace uclean {
namespace serve {
namespace {

ProbabilisticDatabase MakeDb() {
  SyntheticOptions opts;
  opts.num_xtuples = 60;
  opts.tuples_per_xtuple = 4;
  opts.real_mass_min = 0.6;
  opts.real_mass_max = 1.0;
  opts.seed = 17;
  Result<ProbabilisticDatabase> db = GenerateSynthetic(opts);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(*db);
}

/// Warm pool over ladder {5, 20} with `threads` exec width: k=5 keeps
/// replay feasible, two threads keep sharding feasible.
Result<Frontend> MakeFrontend(size_t threads,
                              FrontendOptions options = FrontendOptions()) {
  Result<KLadder> ladder = KLadder::Of({5, 20});
  EXPECT_TRUE(ladder.ok());
  SessionPool::Options pool_options;
  pool_options.exec.num_threads = threads;
  Result<SessionPool> pool =
      SessionPool::Create(MakeDb(), *ladder, pool_options);
  EXPECT_TRUE(pool.ok()) << pool.status().ToString();
  return Frontend::Create(std::move(*pool), std::nullopt, options);
}

Request TopkRequest(size_t k, std::optional<PlanKind> plan = std::nullopt) {
  Request request;
  request.verb = Verb::kTopk;
  request.k = k;
  request.plan = plan;
  return request;
}

// ------------------------------------------------------------- Estimate

TEST(CostModelTest, FeasibilityGates) {
  const CostModel model;
  CostInputs inputs;
  inputs.num_tuples = 1000;
  inputs.scan_depth = 500;

  // Sequential is always feasible.
  EXPECT_LT(model.Estimate(PlanKind::kSequential, inputs),
            CostModel::kInfeasible);
  // Sharding needs more than one thread.
  inputs.num_threads = 1;
  EXPECT_EQ(model.Estimate(PlanKind::kSharded, inputs),
            CostModel::kInfeasible);
  inputs.num_threads = 2;
  EXPECT_LT(model.Estimate(PlanKind::kSharded, inputs),
            CostModel::kInfeasible);
  // Ladder sharing needs a batch of at least two distinct rungs.
  inputs.rung_count = 1;
  EXPECT_EQ(model.Estimate(PlanKind::kLadderShared, inputs),
            CostModel::kInfeasible);
  inputs.rung_count = 2;
  EXPECT_LT(model.Estimate(PlanKind::kLadderShared, inputs),
            CostModel::kInfeasible);
  // Replay needs current maintained state for this k.
  inputs.replay_available = false;
  EXPECT_EQ(model.Estimate(PlanKind::kReplay, inputs), CostModel::kInfeasible);
  inputs.replay_available = true;
  EXPECT_LT(model.Estimate(PlanKind::kReplay, inputs), CostModel::kInfeasible);
}

TEST(CostModelTest, AdmissionCostScalesWithPoolOccupancy) {
  const CostModel model;
  CostInputs a;
  a.scan_depth = 100;
  CostInputs b = a;
  b.pool_occupancy = 10;
  EXPECT_DOUBLE_EQ(model.Estimate(PlanKind::kSequential, b) -
                       model.Estimate(PlanKind::kSequential, a),
                   model.session_ns * 10);
}

// --------------------------------------------------------------- Choose

TEST(CostModelTest, ChoosesSequentialForShallowSoloScans) {
  const CostModel model;
  CostInputs inputs;
  inputs.scan_depth = 100;  // 4us of scan: overheads dwarf it
  inputs.num_threads = 8;
  EXPECT_EQ(model.Choose(inputs), PlanKind::kSequential);
}

TEST(CostModelTest, ChoosesShardedForDeepSoloScansWithThreads) {
  const CostModel model;
  CostInputs inputs;
  inputs.scan_depth = 10'000'000;  // 400ms sequential
  inputs.num_threads = 8;
  EXPECT_EQ(model.Choose(inputs), PlanKind::kSharded);
}

TEST(CostModelTest, ChoosesLadderSharingForBatchedDeepScans) {
  const CostModel model;
  CostInputs inputs;
  inputs.scan_depth = 1'000'000;
  inputs.num_threads = 1;  // sharding off the table
  inputs.rung_count = 4;   // amortize the scan four ways
  EXPECT_EQ(model.Choose(inputs), PlanKind::kLadderShared);
}

TEST(CostModelTest, ChoosesReplayWhenWarmStateServes) {
  const CostModel model;
  CostInputs inputs;
  inputs.scan_depth = 1'000'000;
  inputs.num_threads = 8;
  inputs.rung_count = 4;
  inputs.replay_available = true;  // 1.5us beats every scan
  EXPECT_EQ(model.Choose(inputs), PlanKind::kReplay);
}

TEST(CostModelTest, TiesBreakTowardTheSmallerEnumValue) {
  CostModel model;
  model.tuple_ns = 1500.0;  // seq cost at depth 1 == replay_read_ns
  model.replay_read_ns = 1500.0;
  CostInputs inputs;
  inputs.scan_depth = 1;
  inputs.replay_available = true;
  EXPECT_DOUBLE_EQ(model.Estimate(PlanKind::kSequential, inputs),
                   model.Estimate(PlanKind::kReplay, inputs));
  EXPECT_EQ(model.Choose(inputs), PlanKind::kSequential);
}

TEST(CostModelTest, MeasureClampsIntoSaneRange) {
  const ProbabilisticDatabase db = MakeDb();
  const CostModel measured = CostModel::Measure(db);
  EXPECT_GE(measured.tuple_ns, 1.0);
  EXPECT_LE(measured.tuple_ns, 100000.0);
  // Only the per-position constant is recalibrated.
  const CostModel defaults;
  EXPECT_DOUBLE_EQ(measured.shard_setup_ns, defaults.shard_setup_ns);
  EXPECT_DOUBLE_EQ(measured.rung_emit_ns, defaults.rung_emit_ns);
  EXPECT_DOUBLE_EQ(measured.replay_read_ns, defaults.replay_read_ns);
}

TEST(PlanRecordTest, ToStringIsTheWireForm) {
  PlanRecord record;
  record.chosen = PlanKind::kLadderShared;
  record.executed = PlanKind::kSequential;
  record.forced = true;
  record.batch_size = 1;
  record.threads = 2;
  EXPECT_EQ(record.ToString(),
            "plan=ladder exec=seq forced=1 batch=1 threads=2");
}

// ------------------------------------------- the forced seam, end to end

TEST(ForcedPlanTest, EveryStrategyReturnsBitwiseEqualAnswers) {
  Result<Frontend> frontend = MakeFrontend(/*threads=*/2);
  ASSERT_TRUE(frontend.ok()) << frontend.status().ToString();
  const Frontend::ClientId a = frontend->Connect();
  const Frontend::ClientId b = frontend->Connect();

  // seq / shard / replay pin directly (k=5 is on the warm ladder, the
  // pool has two threads). The ladder arm needs a real batch: two
  // clients forcing plan=ladder with distinct ks in one round.
  const Reply seq = frontend->Execute(a, TopkRequest(5, PlanKind::kSequential));
  const Reply shard = frontend->Execute(a, TopkRequest(5, PlanKind::kSharded));
  const Reply replay = frontend->Execute(a, TopkRequest(5, PlanKind::kReplay));
  const std::vector<Reply> batched = frontend->ExecuteRound(
      {{a, TopkRequest(5, PlanKind::kLadderShared)},
       {b, TopkRequest(20, PlanKind::kLadderShared)}});
  ASSERT_EQ(batched.size(), 2u);
  const Reply& ladder = batched[0];

  for (const Reply* reply : {&seq, &shard, &replay, &ladder}) {
    ASSERT_TRUE(reply->status.ok()) << reply->status.ToString();
    EXPECT_TRUE(reply->plan.forced);
  }
  EXPECT_EQ(seq.plan.executed, PlanKind::kSequential);
  EXPECT_EQ(shard.plan.executed, PlanKind::kSharded);
  EXPECT_EQ(shard.plan.threads, 2u);
  EXPECT_EQ(replay.plan.executed, PlanKind::kReplay);
  EXPECT_EQ(ladder.plan.executed, PlanKind::kLadderShared);
  EXPECT_EQ(ladder.plan.batch_size, 2u);

  // The whole point of the cost model: plan choice can never change an
  // answer. All four strategies agree bitwise on k=5.
  for (const Reply* reply : {&shard, &replay, &ladder}) {
    EXPECT_EQ(reply->fingerprint, seq.fingerprint);
    EXPECT_EQ(reply->num_nonzero, seq.num_nonzero);
    EXPECT_EQ(reply->top_id, seq.top_id);
    EXPECT_EQ(reply->top_index, seq.top_index);
    EXPECT_EQ(reply->top_prob, seq.top_prob);
  }
  // Replay serves from maintained state, scans report their Lemma-2
  // stop; both seq and shard and ladder agree on where that is.
  EXPECT_EQ(shard.scan_end, seq.scan_end);
  EXPECT_EQ(ladder.scan_end, seq.scan_end);
}

TEST(ForcedPlanTest, QualityAgreesAcrossStrategies) {
  Result<Frontend> frontend = MakeFrontend(/*threads=*/2);
  ASSERT_TRUE(frontend.ok());
  const Frontend::ClientId a = frontend->Connect();
  Request request = TopkRequest(5, PlanKind::kSequential);
  request.verb = Verb::kQuality;
  const Reply seq = frontend->Execute(a, request);
  request.plan = PlanKind::kSharded;
  const Reply shard = frontend->Execute(a, request);
  request.plan = PlanKind::kReplay;
  const Reply replay = frontend->Execute(a, request);
  ASSERT_TRUE(seq.status.ok());
  ASSERT_TRUE(shard.status.ok());
  ASSERT_TRUE(replay.status.ok());
  EXPECT_EQ(seq.quality, shard.quality);  // exact: bitwise-equal paths
  EXPECT_EQ(seq.quality, replay.quality);
}

TEST(ForcedPlanTest, BatchOfOneDegradesExecutedButKeepsChosen) {
  Result<Frontend> frontend = MakeFrontend(/*threads=*/1);
  ASSERT_TRUE(frontend.ok());
  const Frontend::ClientId a = frontend->Connect();
  // Forced ladder, but the round has nobody to share with: the record
  // keeps chosen=ladder (forced), executed degrades to a solo scan.
  const Reply reply =
      frontend->Execute(a, TopkRequest(5, PlanKind::kLadderShared));
  ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
  EXPECT_EQ(reply.plan.chosen, PlanKind::kLadderShared);
  EXPECT_TRUE(reply.plan.forced);
  EXPECT_EQ(reply.plan.batch_size, 1u);
  EXPECT_NE(reply.plan.executed, PlanKind::kLadderShared);
}

TEST(ForcedPlanTest, InfeasibleForcedPlansFailPrecondition) {
  Result<Frontend> frontend = MakeFrontend(/*threads=*/1);
  ASSERT_TRUE(frontend.ok());
  const Frontend::ClientId a = frontend->Connect();
  // One thread: sharding cannot run.
  const Reply shard = frontend->Execute(a, TopkRequest(5, PlanKind::kSharded));
  EXPECT_EQ(shard.status.code(), StatusCode::kFailedPrecondition);
  // k=7 is off the warm ladder {5, 20}: replay cannot serve it.
  const Reply replay = frontend->Execute(a, TopkRequest(7, PlanKind::kReplay));
  EXPECT_EQ(replay.status.code(), StatusCode::kFailedPrecondition);
  // The client survives both and keeps serving.
  const Reply ok = frontend->Execute(a, TopkRequest(5));
  EXPECT_TRUE(ok.status.ok());
}

TEST(ForcedPlanTest, RecordedPlanMatchesExecutionWhenAuto) {
  // Regression: with no forced plan the record must be internally
  // consistent -- executed is the chosen strategy unless a chosen
  // ladder degraded to a solo scan, and forced stays false.
  Result<Frontend> frontend = MakeFrontend(/*threads=*/2);
  ASSERT_TRUE(frontend.ok());
  const Frontend::ClientId a = frontend->Connect();
  const Frontend::ClientId b = frontend->Connect();
  const std::vector<std::vector<std::pair<Frontend::ClientId, Request>>>
      rounds = {
          {{a, TopkRequest(5)}},
          {{a, TopkRequest(20)}, {b, TopkRequest(5)}},
          {{a, TopkRequest(7)}, {b, TopkRequest(13)}},
      };
  for (const auto& round : rounds) {
    for (const Reply& reply : frontend->ExecuteRound(round)) {
      ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
      EXPECT_FALSE(reply.plan.forced);
      if (reply.plan.chosen != reply.plan.executed) {
        EXPECT_EQ(reply.plan.chosen, PlanKind::kLadderShared);
        EXPECT_EQ(reply.plan.batch_size, 1u);
      }
      if (reply.plan.executed == PlanKind::kLadderShared) {
        EXPECT_GE(reply.plan.batch_size, 2u);
      }
    }
  }
}

}  // namespace
}  // namespace serve
}  // namespace uclean
