// Unit tests for the entropy helpers underpinning the PWS-quality metric.

#include "common/entropy_math.h"

#include <gtest/gtest.h>

#include <cmath>

namespace uclean {
namespace {

TEST(YLog2, ZeroConvention) {
  EXPECT_EQ(YLog2(0.0), 0.0);
  EXPECT_EQ(YLog2(-0.0), 0.0);
  EXPECT_EQ(YLog2(-1e-9), 0.0);  // cancellation residue clamps to 0
}

TEST(YLog2, One) { EXPECT_EQ(YLog2(1.0), 0.0); }

TEST(YLog2, Half) { EXPECT_DOUBLE_EQ(YLog2(0.5), -0.5); }

TEST(YLog2, MatchesDefinition) {
  for (double x : {0.1, 0.25, 0.37, 0.75, 0.99, 2.0}) {
    EXPECT_DOUBLE_EQ(YLog2(x), x * std::log2(x));
  }
}

TEST(YLog2, ContinuousNearZero) {
  // x log2 x -> 0 as x -> 0+: tiny inputs give tiny outputs.
  EXPECT_NEAR(YLog2(1e-12), 0.0, 1e-10);
}

TEST(Log2Safe, GuardsZero) {
  EXPECT_EQ(Log2Safe(0.0), 0.0);
  EXPECT_DOUBLE_EQ(Log2Safe(8.0), 3.0);
  EXPECT_DOUBLE_EQ(Log2Safe(0.5), -1.0);
}

TEST(EntropyTerm, UniformDistributionEntropy) {
  // Four equally likely outcomes: entropy = 2 bits.
  double h = 0.0;
  for (int i = 0; i < 4; ++i) h += EntropyTerm(0.25);
  EXPECT_DOUBLE_EQ(h, 2.0);
}

TEST(EntropyTerm, PointMassHasZeroEntropy) {
  EXPECT_EQ(EntropyTerm(1.0), 0.0);
}

TEST(ApproxEqual, DefaultTolerance) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 5e-9));
  EXPECT_FALSE(ApproxEqual(1.0, 1.0 + 5e-8));
  EXPECT_TRUE(ApproxEqual(-2.0, -2.0));
}

TEST(ApproxEqual, CustomTolerance) {
  EXPECT_TRUE(ApproxEqual(10.0, 10.4, 0.5));
  EXPECT_FALSE(ApproxEqual(10.0, 10.6, 0.5));
}

}  // namespace
}  // namespace uclean
