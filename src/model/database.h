// ProbabilisticDatabase: rank-sorted x-tuple database, and
// DatabaseBuilder, its validating constructor.
//
// The database is immutable under queries, with one carefully scoped
// exception used by the incremental cleaning engine: ApplyCleanOutcome
// collapses an x-tuple in place after a successful pclean (Definition 5).
// Because the ranking function depends only on (is_null, score, id) -- never
// on probabilities -- collapsing an x-tuple leaves every surviving tuple's
// rank index unchanged, so the operation tombstones the dropped siblings
// instead of rebuilding and re-sorting the whole database. Tombstones are
// reclaimed lazily via CompactTombstones (the cleaning session triggers it
// once enough garbage accumulates), which renumbers rank indices by a
// monotone map that incremental consumers (PsrEngine) can replay.
//
// Model recap (Section III-A): a database D holds m x-tuples; each x-tuple
// is a set of mutually exclusive tuples whose existential probabilities sum
// to at most 1. When the sum s_l of x-tuple tau_l is below 1 we materialize
// the paper's conceptual "null" tuple with probability 1 - s_l. Null tuples
// are ranked below every real tuple and, among themselves, by ascending
// x-tuple id, so the ranking function assigns a unique rank to every tuple
// (the paper's standing uniqueness assumption). A possible world then draws
// exactly one alternative per x-tuple, which makes all quality algorithms
// (PW, PWR, TP) agree on one well-defined pw-result space.

#ifndef UCLEAN_MODEL_DATABASE_H_
#define UCLEAN_MODEL_DATABASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/tuple.h"

namespace uclean {

/// An immutable probabilistic database with tuples pre-sorted in descending
/// rank order (the paper's standing assumption before any algorithm runs).
///
/// Tuples are addressed by *rank index*: tuple(0) is the highest-ranked
/// tuple, tuple(num_tuples()-1) the lowest. Rank indices include the
/// materialized null tuples, which occupy the tail of the order.
class ProbabilisticDatabase {
 public:
  ProbabilisticDatabase() = default;

  /// Total number of tuple slots, including materialized null tuples and
  /// (in a cleaning session) tombstoned entries awaiting compaction.
  size_t num_tuples() const { return tuples_.size(); }

  /// Number of live user-supplied (non-null, non-tombstoned) tuples.
  size_t num_real_tuples() const { return num_real_; }

  /// Number of x-tuples (the paper's m).
  size_t num_xtuples() const { return members_.size(); }

  /// The tuple at the given rank index (0 = highest rank).
  const Tuple& tuple(size_t rank_index) const { return tuples_[rank_index]; }

  /// All tuples in descending rank order.
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Rank indices of the alternatives of x-tuple `l`, best rank first.
  /// Includes the null alternative if one was materialized. Never empty.
  const std::vector<int32_t>& xtuple_members(XTupleId l) const {
    return members_[l];
  }

  /// Total existential mass of the real tuples of x-tuple `l` (the paper's
  /// s_l); 1 - mass is the probability of the null alternative.
  double xtuple_real_mass(XTupleId l) const { return real_mass_[l]; }

  /// Number of possible worlds, as a double because it overflows 64 bits
  /// for realistic databases (product over x-tuples of alternative counts).
  double NumPossibleWorlds() const;

  /// Rank index of the (live) tuple with the given user id, or NotFound.
  Result<size_t> RankIndexOfTupleId(TupleId id) const;

  /// Human-readable table of the first `max_rows` tuples in rank order.
  std::string DebugString(size_t max_rows = 32) const;

  // ----- in-place cleaning support (incremental session engine) -----

  /// True when `rank_index` holds a tuple dropped by ApplyCleanOutcome and
  /// not yet compacted away. Tombstoned slots must be skipped by scans.
  bool is_tombstone(size_t rank_index) const {
    return !tombstones_.empty() && tombstones_[rank_index] != 0;
  }

  /// Number of tombstoned slots awaiting compaction.
  size_t num_tombstones() const { return num_tombstones_; }

  /// True when at least one slot is tombstoned.
  bool has_tombstones() const { return num_tombstones_ > 0; }

  /// What a successful ApplyCleanOutcome changed; consumed by incremental
  /// state maintainers (PsrEngine / delta TP).
  struct CleanOutcomeDelta {
    /// First rank index whose tuple (existence or probability) changed;
    /// every tuple ranked strictly above is untouched, so rank-probability
    /// state is valid up to (excluding) this position. Equals num_tuples()
    /// when the outcome was already materialized (no-op).
    size_t first_changed_rank = 0;

    /// Rank index of the surviving certain tuple (the resolved alternative,
    /// or the x-tuple's null slot for an "entity absent" outcome).
    size_t resolved_rank = 0;

    /// True when the entity resolved to the null outcome.
    bool resolved_null = false;
  };

  /// Collapses x-tuple `xtuple` to the certain outcome `resolved_id`
  /// in place, mirroring a successful pclean (Definition 5): the resolved
  /// alternative's probability becomes 1 and every sibling is tombstoned.
  /// A negative `resolved_id` selects the null outcome (entity absent),
  /// which requires a materialized null alternative. Surviving rank
  /// indices are unchanged; call CompactTombstones to reclaim slots.
  ///
  /// Fails with OutOfRange/NotFound when `xtuple` or `resolved_id` does not
  /// name a live alternative of the x-tuple.
  Result<CleanOutcomeDelta> ApplyCleanOutcome(XTupleId xtuple,
                                              TupleId resolved_id);

  /// Erases tombstoned slots and renumbers rank indices. Returns the
  /// old-to-new rank-index map (-1 for erased slots); the map is monotone
  /// on surviving indices. No-op (identity-free empty vector) when there
  /// are no tombstones.
  std::vector<int32_t> CompactTombstones();

 private:
  friend class DatabaseBuilder;
  // The snapshot store (store/snapshot.h) persists and reconstitutes the
  // exact private representation -- including tombstone state -- so a
  // reloaded database is bitwise the saved one without re-validating or
  // re-sorting through the builder.
  friend class SnapshotAccess;

  std::vector<Tuple> tuples_;                 // descending rank order
  std::vector<std::vector<int32_t>> members_; // per-x-tuple rank indices
  std::vector<double> real_mass_;             // per-x-tuple s_l
  std::vector<uint8_t> tombstones_;           // empty until first clean
  size_t num_tombstones_ = 0;
  size_t num_real_ = 0;
};

/// Accumulates tuples, validates the model invariants and produces an
/// immutable ProbabilisticDatabase.
///
/// Usage:
///
///     DatabaseBuilder b;
///     XTupleId s1 = b.AddXTuple("S1");
///     b.AddAlternative(s1, /*id=*/0, /*score=*/21.0, /*prob=*/0.6);
///     b.AddAlternative(s1, /*id=*/1, /*score=*/32.0, /*prob=*/0.4);
///     Result<ProbabilisticDatabase> db = std::move(b).Finish();
///
/// Finish() rejects: non-positive or >1 probabilities, per-x-tuple mass
/// above 1 (beyond rounding slack), duplicate tuple ids, and negative ids
/// (reserved for null tuples). An x-tuple with no alternatives is legal and
/// becomes a certain null (used to represent entities cleaned to "absent").
class DatabaseBuilder {
 public:
  DatabaseBuilder() = default;

  /// Registers a new x-tuple and returns its id. `label` is carried into
  /// the null tuple's label and reports.
  XTupleId AddXTuple(std::string label = "");

  /// Adds one alternative to an existing x-tuple.
  Status AddAlternative(XTupleId xtuple, TupleId id, double score, double prob,
                        std::string label = "");

  /// Number of x-tuples added so far.
  size_t num_xtuples() const { return xtuple_labels_.size(); }

  /// Validates and builds the database. Consumes the builder.
  Result<ProbabilisticDatabase> Finish() &&;

  /// Builds a new builder pre-loaded with the contents of `db` (real tuples
  /// only; null completion is re-derived by Finish). Used by the cleaning
  /// engine to derive cleaned databases.
  static DatabaseBuilder FromDatabase(const ProbabilisticDatabase& db);

  /// Drops every alternative of `xtuple` and replaces it with the single
  /// certain tuple `certain` (prob forced to 1), or with nothing if
  /// `certain` is nullptr (entity known absent -> certain null). Mirrors a
  /// successful pclean (Definition 5).
  Status ReplaceWithCertain(XTupleId xtuple, const Tuple* certain);

 private:
  /// Mass slack tolerated before an x-tuple is declared over-full, and
  /// below which a residual is not materialized as a null tuple.
  static constexpr double kMassEpsilon = 1e-9;

  std::vector<std::string> xtuple_labels_;
  std::vector<std::vector<Tuple>> pending_;  // per-x-tuple alternatives
};

}  // namespace uclean

#endif  // UCLEAN_MODEL_DATABASE_H_
