// DatabaseOverlay: one session's copy-on-write view of a shared base
// ProbabilisticDatabase.
//
// The session pool (src/clean/session_pool.h) serves many concurrent
// cleaning sessions from ONE base database and ONE checkpointed PSR scan.
// Each session's clean outcomes must not leak into the base (another
// analyst's view) -- so instead of mutating the base the way
// ProbabilisticDatabase::ApplyCleanOutcome does inside a dedicated
// CleaningSession, an overlay records the session's outcomes on the side:
//
//  * dropped siblings become overlay tombstones (a lazily allocated byte
//    per rank index, never touching the base's tombstone state);
//  * the resolved alternative's certainty is a patched Tuple (prob = 1)
//    shadowing the base tuple at its rank index;
//  * the collapsed x-tuple's member list and real mass are shadowed the
//    same way.
//
// The overlay exposes the exact read interface the PSR scan core, the TP
// delta pass and the probe agent consume (num_tuples / tuple /
// is_tombstone / xtuple_members / xtuple_real_mass), so every templated
// consumer runs the SAME per-tuple arithmetic over an overlay as over a
// plain database -- which is what makes a pooled session's replayed state
// bitwise identical to a dedicated session's. Rank indices never move
// (overlays never compact; the base is shared), so the shared engine's
// checkpoints stay valid for every session above its own first change.
//
// Overlays hold a pointer to the base; the owner (SessionPool) must keep
// the base alive and unmutated for the overlay's lifetime.

#ifndef UCLEAN_MODEL_DATABASE_OVERLAY_H_
#define UCLEAN_MODEL_DATABASE_OVERLAY_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "model/database.h"
#include "model/tuple.h"

namespace uclean {

/// A read view of `base` plus one session's recorded clean outcomes.
class DatabaseOverlay {
 public:
  /// An empty overlay over nothing; assign from a real one before use.
  DatabaseOverlay() = default;

  /// A pristine overlay over `base`, which must outlive the overlay and
  /// stay unmutated. Prefer a compacted base (SessionPool::Create
  /// compacts on intake): base tombstones are visible through
  /// is_tombstone but are not counted by num_tombstones().
  explicit DatabaseOverlay(const ProbabilisticDatabase* base) : base_(base) {}

  const ProbabilisticDatabase& base() const { return *base_; }

  // ----- the read interface shared with ProbabilisticDatabase -----

  size_t num_tuples() const { return base_->num_tuples(); }
  size_t num_xtuples() const { return base_->num_xtuples(); }

  /// The tuple at `rank_index`: the session's resolved (certain) copy when
  /// one of its cleans patched this slot, the base tuple otherwise.
  const Tuple& tuple(size_t rank_index) const {
    if (!patched_.empty() && patched_[rank_index] != 0) {
      return patches_.find(rank_index)->second;
    }
    return base_->tuple(rank_index);
  }

  /// True when the slot is dead in this session's view (dropped by one of
  /// its cleans, or already a tombstone in the base).
  bool is_tombstone(size_t rank_index) const {
    if (!tombstones_.empty() && tombstones_[rank_index] != 0) return true;
    return base_->is_tombstone(rank_index);
  }

  /// Overlay-only tombstones (the base is pristine under a SessionPool).
  size_t num_tombstones() const { return num_tombstones_; }

  const std::vector<int32_t>& xtuple_members(XTupleId l) const {
    const auto it = member_overrides_.find(l);
    return it == member_overrides_.end() ? base_->xtuple_members(l)
                                         : it->second;
  }

  double xtuple_real_mass(XTupleId l) const {
    const auto it = mass_overrides_.find(l);
    return it == mass_overrides_.end() ? base_->xtuple_real_mass(l)
                                       : it->second;
  }

  // ----- session-side mutation -----

  /// Records the collapse of `xtuple` to the certain outcome `resolved_id`
  /// (negative = entity absent) in this overlay only; same validation,
  /// delta semantics and view-level effect as ProbabilisticDatabase::
  /// ApplyCleanOutcome, with the base untouched.
  Result<ProbabilisticDatabase::CleanOutcomeDelta> ApplyCleanOutcome(
      XTupleId xtuple, TupleId resolved_id);

  /// Number of recorded (non-no-op) outcomes.
  size_t num_outcomes() const { return outcomes_.size(); }

  /// The recorded outcomes in application order (resolved id, negative for
  /// the null outcome).
  const std::vector<std::pair<XTupleId, TupleId>>& outcomes() const {
    return outcomes_;
  }

  /// Shallowest rank this overlay diverges from the base at (the minimum
  /// first_changed_rank over every recorded outcome); num_tuples() while
  /// pristine. Base-scan state above this rank is valid for the overlay.
  size_t divergence_rank() const {
    return divergence_ < base_->num_tuples() ? divergence_
                                             : base_->num_tuples();
  }

  /// Materializes base + outcomes into a standalone compacted database
  /// (the close-and-merge product of a pooled session).
  ProbabilisticDatabase MaterializeCleaned() const;

 private:
  const ProbabilisticDatabase* base_ = nullptr;
  std::vector<uint8_t> tombstones_;  // lazily sized to num_tuples()
  std::vector<uint8_t> patched_;     // lazily sized; 1 = entry in patches_
  std::unordered_map<size_t, Tuple> patches_;
  std::unordered_map<XTupleId, std::vector<int32_t>> member_overrides_;
  std::unordered_map<XTupleId, double> mass_overrides_;
  std::vector<std::pair<XTupleId, TupleId>> outcomes_;
  size_t num_tombstones_ = 0;
  size_t divergence_ = static_cast<size_t>(-1);
};

}  // namespace uclean

#endif  // UCLEAN_MODEL_DATABASE_OVERLAY_H_
