#include "model/csv_io.h"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/strings.h"

namespace uclean {

namespace {
constexpr char kHeader[] = "xtuple,tuple_id,score,prob,label";
}  // namespace

Status WriteDatabaseCsv(const ProbabilisticDatabase& db, std::ostream* os) {
  *os << kHeader << "\n";
  // Emit grouped by x-tuple for human readability; rank order within.
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    for (int32_t idx : db.xtuple_members(static_cast<XTupleId>(l))) {
      const Tuple& t = db.tuple(static_cast<size_t>(idx));
      if (t.is_null) continue;
      *os << t.xtuple << ',' << t.id << ',' << FormatDouble(t.score) << ','
          << FormatDouble(t.prob) << ',' << t.label << "\n";
    }
  }
  if (!*os) return Status::IOError("write failed");
  return Status::OK();
}

Status WriteDatabaseCsvFile(const ProbabilisticDatabase& db,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  return WriteDatabaseCsv(db, &out);
}

Result<ProbabilisticDatabase> ReadDatabaseCsv(std::istream* is) {
  std::string line;
  bool saw_header = false;
  // x-tuple keys in the file may be sparse/unordered; remap densely in
  // order of first appearance.
  std::map<int64_t, XTupleId> xtuple_remap;
  DatabaseBuilder builder;
  size_t line_no = 0;
  while (std::getline(*is, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    if (!saw_header) {
      if (stripped != kHeader) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) +
            ": expected header '" + kHeader + "'");
      }
      saw_header = true;
      continue;
    }
    std::vector<std::string> fields = SplitString(stripped, ',');
    if (fields.size() != 5) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected 5 fields, got " +
                                     std::to_string(fields.size()));
    }
    Result<int64_t> xkey = ParseInt(fields[0]);
    Result<int64_t> id = ParseInt(fields[1]);
    Result<double> score = ParseDouble(fields[2]);
    Result<double> prob = ParseDouble(fields[3]);
    for (const Status& s :
         {xkey.status(), id.status(), score.status(), prob.status()}) {
      if (!s.ok()) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": " + s.message());
      }
    }
    auto [it, inserted] = xtuple_remap.try_emplace(*xkey, XTupleId{0});
    if (inserted) it->second = builder.AddXTuple();
    Status s =
        builder.AddAlternative(it->second, *id, *score, *prob, fields[4]);
    if (!s.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                     s.message());
    }
  }
  if (!saw_header) return Status::InvalidArgument("empty CSV: no header");
  return std::move(builder).Finish();
}

Result<ProbabilisticDatabase> ReadDatabaseCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  return ReadDatabaseCsv(&in);
}

}  // namespace uclean
