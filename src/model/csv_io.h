// CSV (de)serialization of probabilistic databases.
//
// Format (header required, comments with '#' allowed):
//
//     xtuple,tuple_id,score,prob,label
//     0,0,21,0.6,S1-reading-a
//
// Null-completion tuples are never written; they are re-derived on load.

#ifndef UCLEAN_MODEL_CSV_IO_H_
#define UCLEAN_MODEL_CSV_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "model/database.h"

namespace uclean {

/// Writes `db`'s real tuples as CSV to `os`.
Status WriteDatabaseCsv(const ProbabilisticDatabase& db, std::ostream* os);

/// Writes `db` to the file at `path`.
Status WriteDatabaseCsvFile(const ProbabilisticDatabase& db,
                            const std::string& path);

/// Parses a database from CSV text on `is`.
Result<ProbabilisticDatabase> ReadDatabaseCsv(std::istream* is);

/// Reads a database from the file at `path`.
Result<ProbabilisticDatabase> ReadDatabaseCsvFile(const std::string& path);

}  // namespace uclean

#endif  // UCLEAN_MODEL_CSV_IO_H_
