#include "model/database_overlay.h"

#include <utility>

#include "common/check.h"

namespace uclean {

Result<ProbabilisticDatabase::CleanOutcomeDelta>
DatabaseOverlay::ApplyCleanOutcome(XTupleId xtuple, TupleId resolved_id) {
  if (base_ == nullptr) {
    return Status::FailedPrecondition("overlay has no base database");
  }
  if (xtuple < 0 || static_cast<size_t>(xtuple) >= base_->num_xtuples()) {
    return Status::OutOfRange("x-tuple id " + std::to_string(xtuple) +
                              " does not exist");
  }
  const bool resolved_null = resolved_id < 0;

  // Locate the surviving alternative among the x-tuple's live members, as
  // this overlay sees them (a previously collapsed x-tuple has a single
  // certain member, so re-cleaning is a no-op or a NotFound, exactly like
  // the in-place path).
  const std::vector<int32_t>& members = xtuple_members(xtuple);
  int32_t resolved_rank = -1;
  for (int32_t idx : members) {
    const Tuple& t = tuple(static_cast<size_t>(idx));
    if (resolved_null ? t.is_null : (!t.is_null && t.id == resolved_id)) {
      resolved_rank = idx;
      break;
    }
  }
  if (resolved_rank < 0) {
    return Status::NotFound(
        resolved_null
            ? "x-tuple " + std::to_string(xtuple) +
                  " has no null alternative (its null outcome has "
                  "probability zero)"
            : "tuple id " + std::to_string(resolved_id) +
                  " is not a live alternative of x-tuple " +
                  std::to_string(xtuple));
  }

  ProbabilisticDatabase::CleanOutcomeDelta delta;
  delta.resolved_rank = static_cast<size_t>(resolved_rank);
  delta.resolved_null = resolved_null;

  const bool already_certain =
      members.size() == 1 &&
      tuple(static_cast<size_t>(resolved_rank)).prob == 1.0;
  if (already_certain) {
    delta.first_changed_rank = num_tuples();  // nothing changed
    return delta;
  }

  // Copy what we need out of `members` before touching the override maps
  // (the reference may alias a map entry).
  delta.first_changed_rank = static_cast<size_t>(members.front());
  const std::vector<int32_t> old_members = members;

  if (tombstones_.empty()) tombstones_.assign(num_tuples(), 0);
  if (patched_.empty()) patched_.assign(num_tuples(), 0);
  for (int32_t idx : old_members) {
    if (idx == resolved_rank) continue;
    tombstones_[idx] = 1;
    ++num_tombstones_;
  }
  Tuple resolved = tuple(static_cast<size_t>(resolved_rank));
  resolved.prob = 1.0;
  patches_[static_cast<size_t>(resolved_rank)] = std::move(resolved);
  patched_[resolved_rank] = 1;
  member_overrides_[xtuple] = {resolved_rank};
  mass_overrides_[xtuple] = resolved_null ? 0.0 : 1.0;
  outcomes_.emplace_back(xtuple, resolved_null ? TupleId{-1} : resolved_id);
  if (delta.first_changed_rank < divergence_) {
    divergence_ = delta.first_changed_rank;
  }
  return delta;
}

ProbabilisticDatabase DatabaseOverlay::MaterializeCleaned() const {
  UCLEAN_CHECK(base_ != nullptr);
  ProbabilisticDatabase out = *base_;
  for (const auto& [xtuple, resolved_id] : outcomes_) {
    Result<ProbabilisticDatabase::CleanOutcomeDelta> delta =
        out.ApplyCleanOutcome(xtuple, resolved_id);
    // Outcomes were validated when recorded, and replaying them in order
    // reproduces the exact view the overlay served.
    UCLEAN_CHECK(delta.ok());
  }
  out.CompactTombstones();
  return out;
}

}  // namespace uclean
