// Core value types of the x-tuple probabilistic data model (Section III-A of
// the paper): tuples with existential probabilities, grouped into mutually
// exclusive x-tuples.

#ifndef UCLEAN_MODEL_TUPLE_H_
#define UCLEAN_MODEL_TUPLE_H_

#include <cstdint>
#include <string>

namespace uclean {

/// User-assigned unique tuple key (the paper's ID_i). Null-completion tuples
/// receive synthetic negative ids.
using TupleId = int64_t;

/// Dense 0-based index of an x-tuple within a database (the paper's l for
/// x-tuple tau_l).
using XTupleId = int32_t;

/// One probabilistic alternative of an entity.
///
/// A tuple t_i = (ID_i, x_i, v_i, e_i): key, owning x-tuple, ranking value
/// and existential probability. Tuples in the same x-tuple are mutually
/// exclusive; tuples across x-tuples are independent.
struct Tuple {
  /// Unique key. Negative for materialized null-completion tuples.
  TupleId id = 0;

  /// Owning x-tuple.
  XTupleId xtuple = 0;

  /// Ranking attribute value v_i; the ranking function prefers larger
  /// scores, breaking ties toward smaller ids (Section VI convention).
  double score = 0.0;

  /// Existential probability e_i in (0, 1].
  double prob = 0.0;

  /// True for the conceptual null tuple inserted when an x-tuple's
  /// existential mass is below 1 (Section III-A). Null tuples rank below
  /// every real tuple and never appear in query answers.
  bool is_null = false;

  /// Optional human-readable label carried through reports and examples.
  std::string label;
};

}  // namespace uclean

#endif  // UCLEAN_MODEL_TUPLE_H_
