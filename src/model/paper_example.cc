#include "model/paper_example.h"

#include "common/check.h"

namespace uclean {

namespace {

ProbabilisticDatabase BuildUdb(bool cleaned_s3) {
  DatabaseBuilder b;
  XTupleId s1 = b.AddXTuple("S1");
  XTupleId s2 = b.AddXTuple("S2");
  XTupleId s3 = b.AddXTuple("S3");
  XTupleId s4 = b.AddXTuple("S4");
  UCLEAN_CHECK(b.AddAlternative(s1, 0, 21.0, 0.6, "t0").ok());
  UCLEAN_CHECK(b.AddAlternative(s1, 1, 32.0, 0.4, "t1").ok());
  UCLEAN_CHECK(b.AddAlternative(s2, 2, 30.0, 0.7, "t2").ok());
  UCLEAN_CHECK(b.AddAlternative(s2, 3, 22.0, 0.3, "t3").ok());
  if (cleaned_s3) {
    UCLEAN_CHECK(b.AddAlternative(s3, 5, 27.0, 1.0, "t5").ok());
  } else {
    UCLEAN_CHECK(b.AddAlternative(s3, 4, 25.0, 0.4, "t4").ok());
    UCLEAN_CHECK(b.AddAlternative(s3, 5, 27.0, 0.6, "t5").ok());
  }
  UCLEAN_CHECK(b.AddAlternative(s4, 6, 26.0, 1.0, "t6").ok());
  Result<ProbabilisticDatabase> db = std::move(b).Finish();
  UCLEAN_CHECK(db.ok());
  return std::move(db).value();
}

}  // namespace

ProbabilisticDatabase MakeUdb1() { return BuildUdb(/*cleaned_s3=*/false); }

ProbabilisticDatabase MakeUdb2() { return BuildUdb(/*cleaned_s3=*/true); }

}  // namespace uclean
