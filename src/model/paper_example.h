// The paper's running example: databases udb1 (Table I) and udb2 (Table II).
//
// udb1 holds four sensor x-tuples; udb2 is udb1 after a successful
// pclean(S3) fixed the reading at 27 degrees (tuple t5). The paper reports
// PWS-quality(udb1, top-2) = -2.55 and PWS-quality(udb2, top-2) = -1.85, and
// the PT-2 answer {t1, t2, t5} at threshold 0.4; tests and the Table-I bench
// lock these values in.

#ifndef UCLEAN_MODEL_PAPER_EXAMPLE_H_
#define UCLEAN_MODEL_PAPER_EXAMPLE_H_

#include "model/database.h"

namespace uclean {

/// Table I: S1{t0:21@0.6, t1:32@0.4}, S2{t2:30@0.7, t3:22@0.3},
/// S3{t4:25@0.4, t5:27@0.6}, S4{t6:26@1}.
ProbabilisticDatabase MakeUdb1();

/// Table II: udb1 with S3 collapsed to the certain tuple t5 (27, prob 1).
ProbabilisticDatabase MakeUdb2();

}  // namespace uclean

#endif  // UCLEAN_MODEL_PAPER_EXAMPLE_H_
