#include "model/database.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace uclean {

double ProbabilisticDatabase::NumPossibleWorlds() const {
  double worlds = 1.0;
  for (const auto& members : members_) {
    worlds *= static_cast<double>(members.size());
  }
  return worlds;
}

Result<size_t> ProbabilisticDatabase::RankIndexOfTupleId(TupleId id) const {
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (tuples_[i].id == id && !is_tombstone(i)) return i;
  }
  return Status::NotFound("no tuple with id " + std::to_string(id));
}

Result<ProbabilisticDatabase::CleanOutcomeDelta>
ProbabilisticDatabase::ApplyCleanOutcome(XTupleId xtuple, TupleId resolved_id) {
  if (xtuple < 0 || static_cast<size_t>(xtuple) >= members_.size()) {
    return Status::OutOfRange("x-tuple id " + std::to_string(xtuple) +
                              " does not exist");
  }
  const bool resolved_null = resolved_id < 0;
  std::vector<int32_t>& members = members_[xtuple];

  // Locate the surviving alternative among the x-tuple's live members.
  int32_t resolved_rank = -1;
  for (int32_t idx : members) {
    const Tuple& t = tuples_[idx];
    if (resolved_null ? t.is_null : (!t.is_null && t.id == resolved_id)) {
      resolved_rank = idx;
      break;
    }
  }
  if (resolved_rank < 0) {
    return Status::NotFound(
        resolved_null
            ? "x-tuple " + std::to_string(xtuple) +
                  " has no null alternative (its null outcome has "
                  "probability zero)"
            : "tuple id " + std::to_string(resolved_id) +
                  " is not a live alternative of x-tuple " +
                  std::to_string(xtuple));
  }

  CleanOutcomeDelta delta;
  delta.resolved_rank = static_cast<size_t>(resolved_rank);
  delta.resolved_null = resolved_null;

  const bool already_certain =
      members.size() == 1 && tuples_[resolved_rank].prob == 1.0;
  if (already_certain) {
    delta.first_changed_rank = tuples_.size();  // nothing changed
    return delta;
  }

  // Tombstone every sibling; the resolved tuple becomes certain in place.
  // Rank order depends only on (is_null, score, id), so surviving rank
  // indices do not move.
  if (tombstones_.empty()) tombstones_.assign(tuples_.size(), 0);
  delta.first_changed_rank = static_cast<size_t>(members.front());
  for (int32_t idx : members) {
    if (idx == resolved_rank) continue;
    tombstones_[idx] = 1;
    ++num_tombstones_;
    if (!tuples_[idx].is_null) --num_real_;
  }
  tuples_[resolved_rank].prob = 1.0;
  members.assign(1, resolved_rank);
  real_mass_[xtuple] = resolved_null ? 0.0 : 1.0;
  return delta;
}

std::vector<int32_t> ProbabilisticDatabase::CompactTombstones() {
  if (num_tombstones_ == 0) return {};
  std::vector<int32_t> old_to_new(tuples_.size(), -1);
  size_t next = 0;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (tombstones_[i] != 0) continue;
    old_to_new[i] = static_cast<int32_t>(next);
    if (next != i) tuples_[next] = std::move(tuples_[i]);
    ++next;
  }
  tuples_.resize(next);
  tombstones_.clear();
  num_tombstones_ = 0;
  for (std::vector<int32_t>& members : members_) {
    for (int32_t& idx : members) {
      idx = old_to_new[idx];
      UCLEAN_DCHECK(idx >= 0);  // live members are never tombstoned
    }
  }
  return old_to_new;
}

std::string ProbabilisticDatabase::DebugString(size_t max_rows) const {
  std::ostringstream os;
  os << "ProbabilisticDatabase: " << num_xtuples() << " x-tuples, "
     << num_real_tuples() << " real tuples (" << num_tuples()
     << " with nulls)\n";
  os << "rank  id        xtuple  score        prob     label\n";
  size_t rows = std::min(max_rows, tuples_.size());
  for (size_t i = 0; i < rows; ++i) {
    const Tuple& t = tuples_[i];
    os << i + 1 << "\t" << t.id << "\t" << t.xtuple << "\t" << t.score << "\t"
       << t.prob << "\t"
       << (is_tombstone(i) ? "<tombstone>" : (t.is_null ? "<null>" : t.label))
       << "\n";
  }
  if (rows < tuples_.size()) {
    os << "... (" << tuples_.size() - rows << " more)\n";
  }
  return os.str();
}

XTupleId DatabaseBuilder::AddXTuple(std::string label) {
  xtuple_labels_.push_back(std::move(label));
  pending_.emplace_back();
  return static_cast<XTupleId>(xtuple_labels_.size() - 1);
}

Status DatabaseBuilder::AddAlternative(XTupleId xtuple, TupleId id,
                                       double score, double prob,
                                       std::string label) {
  if (xtuple < 0 || static_cast<size_t>(xtuple) >= pending_.size()) {
    return Status::OutOfRange("x-tuple id " + std::to_string(xtuple) +
                              " does not exist");
  }
  if (id < 0) {
    return Status::InvalidArgument(
        "negative tuple ids are reserved for null tuples (got " +
        std::to_string(id) + ")");
  }
  if (!(prob > 0.0) || prob > 1.0 + kMassEpsilon) {
    return Status::InvalidArgument("existential probability of tuple " +
                                   std::to_string(id) + " must be in (0,1]");
  }
  if (!std::isfinite(score)) {
    return Status::InvalidArgument("score of tuple " + std::to_string(id) +
                                   " must be finite");
  }
  Tuple t;
  t.id = id;
  t.xtuple = xtuple;
  t.score = score;
  t.prob = std::min(prob, 1.0);
  t.is_null = false;
  t.label = std::move(label);
  pending_[xtuple].push_back(std::move(t));
  return Status::OK();
}

Result<ProbabilisticDatabase> DatabaseBuilder::Finish() && {
  ProbabilisticDatabase db;
  size_t num_real = 0;
  std::unordered_set<TupleId> seen_ids;
  for (size_t l = 0; l < pending_.size(); ++l) {
    double mass = 0.0;
    for (const Tuple& t : pending_[l]) {
      mass += t.prob;
      if (!seen_ids.insert(t.id).second) {
        return Status::InvalidArgument("duplicate tuple id " +
                                       std::to_string(t.id));
      }
    }
    if (mass > 1.0 + kMassEpsilon) {
      return Status::InvalidArgument(
          "existential mass of x-tuple " + std::to_string(l) + " is " +
          std::to_string(mass) + " > 1");
    }
    num_real += pending_[l].size();
  }

  db.tuples_.reserve(num_real + pending_.size());
  db.real_mass_.resize(pending_.size(), 0.0);
  for (size_t l = 0; l < pending_.size(); ++l) {
    double mass = 0.0;
    for (Tuple& t : pending_[l]) {
      mass += t.prob;
      db.tuples_.push_back(std::move(t));
    }
    db.real_mass_[l] = std::min(mass, 1.0);
    if (mass < 1.0 - kMassEpsilon) {
      // Materialize the conceptual null tuple (Section III-A).
      Tuple null_tuple;
      null_tuple.id = -static_cast<TupleId>(l) - 1;
      null_tuple.xtuple = static_cast<XTupleId>(l);
      null_tuple.score = 0.0;  // ignored: nulls sort below all real tuples
      null_tuple.prob = 1.0 - mass;
      null_tuple.is_null = true;
      null_tuple.label = xtuple_labels_[l];
      db.tuples_.push_back(std::move(null_tuple));
    }
  }

  // Descending rank order: real tuples by (score desc, id asc); null tuples
  // after all real tuples, by ascending x-tuple id. This realizes the
  // paper's unique-rank requirement with its Section VI tie-breaking rule.
  std::sort(db.tuples_.begin(), db.tuples_.end(),
            [](const Tuple& a, const Tuple& b) {
              if (a.is_null != b.is_null) return b.is_null;
              if (a.is_null) return a.xtuple < b.xtuple;
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });

  db.members_.assign(pending_.size(), {});
  for (size_t i = 0; i < db.tuples_.size(); ++i) {
    db.members_[db.tuples_[i].xtuple].push_back(static_cast<int32_t>(i));
  }
  db.num_real_ = num_real;
  return db;
}

DatabaseBuilder DatabaseBuilder::FromDatabase(const ProbabilisticDatabase& db) {
  DatabaseBuilder b;
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    b.AddXTuple();
  }
  for (size_t i = 0; i < db.num_tuples(); ++i) {
    const Tuple& t = db.tuple(i);
    if (t.is_null || db.is_tombstone(i)) continue;
    Status s = b.AddAlternative(t.xtuple, t.id, t.score, t.prob, t.label);
    UCLEAN_CHECK(s.ok());  // db was validated at construction
  }
  return b;
}

Status DatabaseBuilder::ReplaceWithCertain(XTupleId xtuple,
                                           const Tuple* certain) {
  if (xtuple < 0 || static_cast<size_t>(xtuple) >= pending_.size()) {
    return Status::OutOfRange("x-tuple id " + std::to_string(xtuple) +
                              " does not exist");
  }
  pending_[xtuple].clear();
  if (certain == nullptr) return Status::OK();  // entity certainly absent
  if (certain->is_null) return Status::OK();    // same: certain null
  Tuple t = *certain;
  t.xtuple = xtuple;
  t.prob = 1.0;
  pending_[xtuple].push_back(std::move(t));
  return Status::OK();
}

}  // namespace uclean
