// Execution subsystem: a small fixed-size worker pool shared by every
// parallel path in the library (sharded PSR scans and replays, per-rung
// TP fan-out, concurrent pooled-session refreshes).
//
// Design constraints, in order:
//  * DETERMINISM. Every parallel consumer in this codebase writes results
//    into caller-owned slots addressed by index (shard ranges, rung
//    indices, session slots), so the only scheduling guarantee the pool
//    needs to give -- and the one it does give -- is that ParallelFor
//    runs fn(i) exactly once for every i and TaskGroup::Wait returns only
//    after every Run() task finished. Which thread runs which index is
//    unspecified; results must not depend on it (all current consumers
//    satisfy this by construction, which is what keeps parallel output
//    bitwise equal to sequential output).
//  * NO SURPRISE THREADS. The pool is fixed-size, created explicitly at
//    the top of the stack (CLI --threads, SessionPool/CleaningSession
//    options, bench harnesses) and handed down as a shared_ptr inside
//    ExecOptions. A null pool -- the default everywhere -- means strictly
//    sequential execution on the caller thread; the library never spawns
//    a thread the caller did not ask for.
//  * GRACEFUL NESTING. Work submitted from inside a pool worker runs
//    inline on that worker instead of deadlocking or oversubscribing:
//    when SessionPool::RefreshAll fans sessions onto the pool, each
//    session's own sharded replay degrades to its sequential path on the
//    worker thread.
//
// The caller thread always participates in ParallelFor and helps drain
// the queue in TaskGroup::Wait, so a pool built for N threads applies N
// threads of compute (N - 1 workers + the caller), and ParallelFor with a
// single-thread pool is exactly the inline loop.

// Threading: the pool is fully thread-safe (it IS the concurrency
// primitive); TaskGroup::Finished may be polled from any thread.
// Locking here is statically checked: mu_ is an annotated
// common/mutex.h Mutex and the queue/stop/pending state is GUARDED_BY
// it, so a Clang -Wthread-safety build rejects any new code path that
// touches pool state outside the lock (the CI thread-safety leg holds
// this at -Werror; see common/thread_annotations.h).

#ifndef UCLEAN_EXEC_THREAD_POOL_H_
#define UCLEAN_EXEC_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace uclean {

class ThreadPool {
 public:
  /// Hard cap on pool size; protects against misparsed thread counts
  /// turning into thousands of spawned threads.
  static constexpr size_t kMaxThreads = 256;

  /// A pool applying `num_threads` threads of compute: `num_threads - 1`
  /// workers plus the submitting caller. Requires 1 <= num_threads <=
  /// kMaxThreads (hard UCLEAN_CHECK; validate user input with
  /// ResolveExec). A 1-thread pool spawns no workers and runs everything
  /// inline.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// A set of tasks whose completion can be awaited together. Run() from
  /// a pool worker (nested parallelism) executes inline; Wait() lets the
  /// caller help drain the pool's queue instead of idling.
  class TaskGroup {
   public:
    /// `pool` may be null: every Run() then executes inline and Wait()
    /// is a no-op, which is the sequential path.
    explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
    ~TaskGroup() { Wait(); }

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    void Run(std::function<void()> fn) UCLEAN_EXCLUDES(mu_);
    void Wait() UCLEAN_EXCLUDES(mu_);

    /// True when every Run() task has finished (trivially true before the
    /// first Run and on the null-pool path). Non-blocking: the completion
    /// poll that lets async consumers (clean/agent.h's ProbeBatch) check
    /// a batch without parking the caller. Safe to call from any thread.
    bool Finished() UCLEAN_EXCLUDES(mu_);

   private:
    friend class ThreadPool;
    void TaskDone() UCLEAN_EXCLUDES(mu_);

    ThreadPool* pool_ = nullptr;
    Mutex mu_;
    CondVar done_cv_;
    size_t pending_ UCLEAN_GUARDED_BY(mu_) = 0;
  };

  /// Runs fn(i) exactly once for every i in [0, n), distributing indices
  /// over the pool; blocks until all are done. The caller participates.
  /// Deterministic in the sense documented above: output placement is
  /// the callee's (indexed) responsibility, not the scheduler's.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// True when the calling thread is one of this process's pool workers
  /// (any pool). Nested submissions run inline.
  static bool InWorker();

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  void Enqueue(Task task) UCLEAN_EXCLUDES(mu_);

  /// Pops and runs one queued task on the calling thread; false when the
  /// queue was empty.
  bool RunOneQueued() UCLEAN_EXCLUDES(mu_);

  void WorkerLoop() UCLEAN_EXCLUDES(mu_);

  const size_t num_threads_;
  Mutex mu_;
  CondVar work_cv_;
  std::deque<Task> queue_ UCLEAN_GUARDED_BY(mu_);
  bool stop_ UCLEAN_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  // written by the ctor only
};

/// Instruction-set preference for the PSR scan's compute kernels
/// (rank/kernel.h). Like the thread count, this selects HOW the scan
/// runs, never WHAT it computes: every kernel is held bitwise equal to
/// every other (see the equivalence notes in rank/kernel.h), so mixing
/// kernels across drivers, replays and shards is always safe.
enum class KernelKind : uint8_t {
  /// AVX2 when it is compiled in, the CPU reports it, and
  /// UCLEAN_DISABLE_AVX2 is not set in the environment; scalar otherwise.
  kAuto = 0,
  /// The portable scalar path, unconditionally.
  kScalar,
  /// Require the AVX2 path; selection fails with InvalidArgument when it
  /// is unavailable (not compiled in, or the CPU lacks it).
  kAvx2,
};

/// The parallelism knob threaded through the stack (PsrEngine,
/// ComputePsrLadder, TP, CleaningSession, SessionPool, CLI --threads).
struct ExecOptions {
  /// Threads of compute to apply; 1 (the default) is the strictly
  /// sequential path with no pool involvement at all.
  size_t num_threads = 1;

  /// Never split a scan range into shards smaller than this many rank
  /// positions: below it, the per-shard boundary-state rebuild and merge
  /// overhead outweighs the parallelism (and the sequential path is
  /// already sub-millisecond).
  size_t min_tuples_per_shard = 2048;

  /// The shared pool. Normally left null and filled by ResolveExec; set
  /// it explicitly to make several components share one pool (the CLI
  /// and SessionPool do).
  std::shared_ptr<ThreadPool> pool;

  /// Compute-kernel preference for every scan run under these options
  /// (CLI --kernel). Resolved once per scan by rank/kernel.h's
  /// SelectScanKernel; kAuto picks the fastest kernel the hardware
  /// supports.
  KernelKind kernel = KernelKind::kAuto;

  /// True when this options value asks for an actual parallel path.
  bool parallel() const { return pool != nullptr && pool->num_threads() > 1; }
};

/// Validates `exec` and returns it with `pool` filled in: num_threads
/// must be in [1, ThreadPool::kMaxThreads]; a pool is created when
/// num_threads > 1 and none was provided (num_threads == 1 keeps pool
/// null -- the sequential path). A pre-set pool is kept as-is and
/// num_threads is aligned to it.
Result<ExecOptions> ResolveExec(ExecOptions exec);

/// ParallelFor over `exec`'s pool, or the plain inline loop when there is
/// none (the sequential path compiles down to exactly the old code).
inline void ExecParallelFor(const ExecOptions& exec, size_t n,
                            const std::function<void(size_t)>& fn) {
  if (exec.pool != nullptr) {
    exec.pool->ParallelFor(n, fn);
  } else {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace uclean

#endif  // UCLEAN_EXEC_THREAD_POOL_H_
