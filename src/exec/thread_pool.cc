#include "exec/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>

#include "common/check.h"

namespace uclean {

namespace {
// Set while a thread is executing inside WorkerLoop; nested submissions
// observe it and run inline instead of re-entering the queue (which
// could deadlock a fully busy pool on Wait).
thread_local bool tl_in_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) : num_threads_(num_threads) {
  UCLEAN_CHECK(num_threads >= 1 && num_threads <= kMaxThreads);
  workers_.reserve(num_threads - 1);
  for (size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    // Tasks are always awaited by a TaskGroup before their captures die,
    // so an honest shutdown can only ever see an empty queue.
    UCLEAN_CHECK(queue_.empty());
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::InWorker() { return tl_in_pool_worker; }

void ThreadPool::Enqueue(Task task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
}

bool ThreadPool::RunOneQueued() {
  Task task;
  {
    MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task.fn();
  task.group->TaskDone();
  return true;
}

void ThreadPool::WorkerLoop() {
  tl_in_pool_worker = true;
  for (;;) {
    Task task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) work_cv_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task.fn();
    task.group->TaskDone();
  }
}

void ThreadPool::TaskGroup::Run(std::function<void()> fn) {
  if (pool_ == nullptr || pool_->num_threads() == 1 || InWorker()) {
    fn();  // sequential / nested path
    return;
  }
  {
    MutexLock lock(mu_);
    ++pending_;
  }
  pool_->Enqueue(Task{std::move(fn), this});
}

void ThreadPool::TaskGroup::TaskDone() {
  MutexLock lock(mu_);
  UCLEAN_DCHECK(pending_ > 0);
  if (--pending_ == 0) done_cv_.NotifyAll();
}

bool ThreadPool::TaskGroup::Finished() {
  MutexLock lock(mu_);
  return pending_ == 0;
}

void ThreadPool::TaskGroup::Wait() {
  if (pool_ == nullptr) return;
  // Help drain the pool while our tasks are outstanding. The popped task
  // may belong to another group; running it still makes global progress
  // and that group's Wait observes its own counter.
  for (;;) {
    {
      MutexLock lock(mu_);
      if (pending_ == 0) return;
    }
    if (!pool_->RunOneQueued()) {
      // The queue was empty, so our remaining tasks are in flight on
      // workers; re-check under the lock, then block until TaskDone
      // wakes us.
      MutexLock lock(mu_);
      while (pending_ != 0) done_cv_.Wait(mu_);
      return;
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads_ == 1 || n == 1 || InWorker()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // One shared claim counter gives dynamic load balance; determinism is
  // unaffected because every consumer writes into slots addressed by i.
  std::atomic<size_t> next{0};
  const auto drain = [&next, n, &fn] {
    for (size_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) < n;) {
      fn(i);
    }
  };
  TaskGroup group(this);
  const size_t helpers = std::min(num_threads_ - 1, n - 1);
  for (size_t h = 0; h < helpers; ++h) group.Run(drain);
  drain();  // the caller is one of the num_threads
  group.Wait();
}

Result<ExecOptions> ResolveExec(ExecOptions exec) {
  if (exec.pool != nullptr) {
    exec.num_threads = exec.pool->num_threads();
    return exec;
  }
  if (exec.num_threads == 0 || exec.num_threads > ThreadPool::kMaxThreads) {
    return Status::InvalidArgument(
        "num_threads must be in [1, " +
        std::to_string(ThreadPool::kMaxThreads) + "], got " +
        std::to_string(exec.num_threads));
  }
  if (exec.num_threads > 1) {
    exec.pool = std::make_shared<ThreadPool>(exec.num_threads);
  }
  return exec;
}

}  // namespace uclean
