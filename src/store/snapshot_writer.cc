// Writer half of the snapshot store: section payload encoders, the
// container builder, and WriteSnapshot. See store/snapshot.h for the
// format contract; the byte-level encodings here are mirrored by
// snapshot_reader.cc and must only ever change together with a section
// version bump.

#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "clean/agent.h"
#include "clean/fault.h"
#include "clean/session_pool.h"
#include "common/status.h"
#include "model/database.h"
#include "quality/tp.h"
#include "rank/psr.h"
#include "rank/psr_engine.h"
#include "store/binstream.h"
#include "store/crc32.h"
#include "store/snapshot.h"

namespace uclean {
namespace store {

const char* SectionName(uint32_t id) {
  switch (id) {
    case kSectionMeta:
      return "meta";
    case kSectionDatabase:
      return "database";
    case kSectionEngine:
      return "engine";
    case kSectionSessions:
      return "sessions";
    case kSectionCampaign:
      return "campaign";
    default:
      return "unknown";
  }
}

void AppendSectionEntry(BinWriter* w, const SectionEntry& entry) {
  w->PutU32(entry.id);
  w->PutU32(entry.version);
  w->PutU64(entry.offset);
  w->PutU64(entry.size);
  w->PutU32(entry.crc);
}

Status ParseSectionEntry(BinReader* r, SectionEntry* entry) {
  UCLEAN_RETURN_IF_ERROR(r->GetU32(&entry->id));
  UCLEAN_RETURN_IF_ERROR(r->GetU32(&entry->version));
  UCLEAN_RETURN_IF_ERROR(r->GetU64(&entry->offset));
  UCLEAN_RETURN_IF_ERROR(r->GetU64(&entry->size));
  UCLEAN_RETURN_IF_ERROR(r->GetU32(&entry->crc));
  return Status::OK();
}

void SnapshotFileBuilder::AddSection(uint32_t id, uint32_t version,
                                     std::string payload) {
  sections_.push_back({id, version, std::move(payload)});
}

std::string SnapshotFileBuilder::Finish() const {
  // Payloads sit back to back after the header; the table trails them so
  // the writer streams in one pass.
  uint64_t offset = kSnapshotHeaderSize;
  std::vector<SectionEntry> entries;
  entries.reserve(sections_.size());
  for (const PendingSection& section : sections_) {
    SectionEntry entry;
    entry.id = section.id;
    entry.version = section.version;
    entry.offset = offset;
    entry.size = section.payload.size();
    entry.crc = Crc32(section.payload.data(), section.payload.size());
    entries.push_back(entry);
    offset += entry.size;
  }
  const uint64_t table_offset = offset;

  BinWriter file;
  file.PutU8(static_cast<uint8_t>(kSnapshotMagic[0]));
  for (size_t i = 1; i < sizeof(kSnapshotMagic); ++i) {
    file.PutU8(static_cast<uint8_t>(kSnapshotMagic[i]));
  }
  file.PutU32(format_version_);
  file.PutU32(feature_flags_);
  file.PutU32(static_cast<uint32_t>(sections_.size()));
  file.PutU64(table_offset);
  file.PutU32(Crc32(file.bytes().data(), file.bytes().size()));

  std::string bytes = file.Take();
  for (const PendingSection& section : sections_) {
    bytes.append(section.payload);
  }

  BinWriter table;
  for (const SectionEntry& entry : entries) {
    AppendSectionEntry(&table, entry);
  }
  table.PutU32(Crc32(table.bytes().data(), table.bytes().size()));
  bytes.append(table.bytes());
  return bytes;
}

namespace {

void EncodePsrOutput(const PsrOutput& out, BinWriter* w) {
  w->PutVarint(out.k);
  w->PutF64Array(out.topk_prob);
  w->PutVarint(out.num_nonzero);
  w->PutVarint(out.scan_end);
  w->PutF64Array(out.best_rank_prob);
  w->PutVarint(out.best_rank_index.size());
  for (int32_t index : out.best_rank_index) w->PutZigzag(index);
  w->PutF64Array(out.rank_prob);
  w->PutBool(out.has_rank_probabilities);
}

void EncodeTpOutput(const TpOutput& tp, BinWriter* w) {
  w->PutF64(tp.quality);
  w->PutF64Array(tp.omega);
  w->PutVarint(tp.scan_end);
  w->PutF64Array(tp.xtuple_gain);
  w->PutF64Array(tp.xtuple_topk_mass);
}

void EncodeProbeRecord(const ProbeRecord& record, BinWriter* w) {
  w->PutZigzag(record.xtuple);
  w->PutZigzag(record.attempts);
  w->PutZigzag(record.spent);
  w->PutBool(record.success);
  w->PutZigzag(record.resolved_id);
  w->PutZigzag(record.failures);
  w->PutZigzag(record.retries);
  w->PutVarint(static_cast<uint64_t>(record.last_error));
}

void EncodeFaultStats(const FaultStats& stats, BinWriter* w) {
  w->PutZigzag(stats.transient);
  w->PutZigzag(stats.timeouts);
  w->PutZigzag(stats.source_down);
  w->PutZigzag(stats.retries);
  w->PutZigzag(stats.failed_probes);
  w->PutZigzag(stats.breaker_skips);
  w->PutZigzag(stats.deadline_skips);
  w->PutZigzag(stats.budget_unspent);
}

void EncodeInjectorState(const FaultInjectorState& state, BinWriter* w) {
  w->PutString(state.rng_state);
  w->PutZigzag(state.now_us);
  w->PutBool(state.ever_opened);
  w->PutVarint(state.breakers.size());
  for (const FaultInjectorState::BreakerEntry& breaker : state.breakers) {
    w->PutZigzag(breaker.source);
    w->PutU8(breaker.state);
    w->PutZigzag(breaker.consecutive_failures);
    w->PutZigzag(breaker.open_until_us);
  }
  w->PutVarint(state.down.size());
  for (const FaultInjectorState::DownEntry& entry : state.down) {
    w->PutZigzag(entry.source);
    w->PutBool(entry.down);
  }
}

}  // namespace

Status WriteSnapshot(const SessionPool& pool, const std::string& path,
                     const CampaignSnapshot* campaign) {
  std::string bytes;
  UCLEAN_RETURN_IF_ERROR(SnapshotAccess::Serialize(pool, campaign, &bytes));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return Status::IOError("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace store

// ---------------------------------------------------------------------------
// SnapshotAccess: writer half.
// ---------------------------------------------------------------------------

void SnapshotAccess::EncodeMeta(const SessionPool& pool,
                                const store::CampaignSnapshot* campaign,
                                store::BinWriter* w) {
  (void)campaign;
  w->PutString("uclean");
  // The RESOLVED kernel the pool's scans actually ran on (never "auto"):
  // the satellite provenance bench_* JSON and `snapshot inspect` report.
  w->PutString(pool.engine_.core_.kernel->name);
  w->PutVarint(pool.exec().num_threads);
  w->PutVarint(pool.base().num_xtuples());
  w->PutVarint(pool.base().num_tuples());
  w->PutVarint(pool.num_open());
  w->PutVarintArray(pool.ladder().ks);
}

void SnapshotAccess::EncodeDatabase(const ProbabilisticDatabase& db,
                                    store::BinWriter* w) {
  w->PutVarint(db.tuples_.size());
  for (const Tuple& t : db.tuples_) {
    w->PutZigzag(t.id);
    w->PutVarint(static_cast<uint64_t>(t.xtuple));
    w->PutF64(t.score);
    w->PutF64(t.prob);
    w->PutBool(t.is_null);
    w->PutString(t.label);
  }
  w->PutVarint(db.members_.size());
  for (size_t l = 0; l < db.members_.size(); ++l) {
    const std::vector<int32_t>& members = db.members_[l];
    w->PutVarint(members.size());
    for (int32_t rank : members) w->PutVarint(static_cast<uint64_t>(rank));
    w->PutF64(db.real_mass_[l]);
  }
  w->PutString(std::string_view(
      reinterpret_cast<const char*>(db.tombstones_.data()),
      db.tombstones_.size()));
  w->PutVarint(db.num_tombstones_);
  w->PutVarint(db.num_real_);
}

void SnapshotAccess::EncodeCheckpoint(const PsrEngine::Checkpoint& cp,
                                      store::BinWriter* w) {
  w->PutVarint(cp.pos);
  w->PutVarint(cp.live);
  w->PutF64Array(cp.c);
  w->PutVarint(cp.active);
  w->PutVarint(cp.saturated);
  w->PutVarint(cp.xs.size());
  for (const PsrEngine::Checkpoint::XEntry& x : cp.xs) {
    w->PutZigzag(x.xtuple);
    w->PutU8(static_cast<uint8_t>(x.state));
    w->PutF64(x.q);
  }
}

void SnapshotAccess::EncodeEngine(const PsrEngine& engine,
                                  store::BinWriter* w) {
  w->PutBool(engine.options_.early_termination);
  w->PutBool(engine.options_.store_rank_probabilities);
  w->PutVarintArray(engine.ladder_.ks);
  w->PutVarint(engine.outputs_.size());
  for (const PsrOutput& out : engine.outputs_) {
    store::EncodePsrOutput(out, w);
  }
  w->PutVarint(engine.checkpoints_.size());
  for (const PsrEngine::Checkpoint& cp : engine.checkpoints_) {
    EncodeCheckpoint(cp, w);
  }
  w->PutVarint(engine.checkpoint_interval_);
}

void SnapshotAccess::EncodeSessions(const SessionPool& pool,
                                    store::BinWriter* w) {
  w->PutVarint(pool.base_tps_.size());
  for (const TpOutput& tp : pool.base_tps_) {
    store::EncodeTpOutput(tp, w);
  }
  w->PutVarint(pool.sessions_.size());
  for (const SessionPool::Session& session : pool.sessions_) {
    w->PutBool(session.open);
    if (!session.open) continue;
    const auto& outcomes = session.overlay.outcomes();
    w->PutVarint(outcomes.size());
    for (const auto& [xtuple, resolved_id] : outcomes) {
      w->PutZigzag(xtuple);
      w->PutZigzag(resolved_id);
    }
    // Pristine sessions (no outcomes) carry no state: their fork of the
    // base scan is bit-reproducible from the engine on load, so storing
    // it would only bloat the file -- the dominant cost for big pools.
    const bool has_state = !outcomes.empty();
    w->PutBool(has_state);
    if (!has_state) continue;
    const PsrEngine::SessionState& scan = session.scan;
    w->PutVarint(scan.outputs_.size());
    for (const PsrOutput& out : scan.outputs_) {
      store::EncodePsrOutput(out, w);
    }
    w->PutVarint(scan.checkpoints_.size());
    for (const PsrEngine::Checkpoint& cp : scan.checkpoints_) {
      EncodeCheckpoint(cp, w);
    }
    w->PutVarint(scan.checkpoint_interval_);
    w->PutVarint(session.tps.size());
    for (const TpOutput& tp : session.tps) {
      store::EncodeTpOutput(tp, w);
    }
  }
  w->PutVarintArray(pool.free_slots_);
  w->PutVarint(pool.num_open_);
}

void SnapshotAccess::EncodeCampaign(const store::CampaignSnapshot& campaign,
                                    store::BinWriter* w) {
  w->PutZigzag(campaign.budget);
  w->PutVarint(campaign.sessions.size());
  for (const store::CampaignSessionSnapshot& session : campaign.sessions) {
    w->PutVarint(session.session_id);
    w->PutZigzag(session.spent);
    w->PutZigzag(session.leftover);
    w->PutVarint(session.successes);
    w->PutVarint(session.rounds);
    w->PutVarint(session.log.size());
    for (const ProbeRecord& record : session.log) {
      store::EncodeProbeRecord(record, w);
    }
    store::EncodeFaultStats(session.faults, w);
    w->PutString(session.rng_state);
    w->PutBool(session.has_injector);
    if (session.has_injector) {
      store::EncodeInjectorState(session.injector, w);
    }
  }
}

Status SnapshotAccess::Serialize(const SessionPool& pool,
                                 const store::CampaignSnapshot* campaign,
                                 std::string* bytes) {
  for (size_t id = 0; id < pool.sessions_.size(); ++id) {
    const SessionPool::Session& session = pool.sessions_[id];
    if (session.open &&
        session.pending_replay_begin != SessionPool::kNoPending) {
      return Status::FailedPrecondition(
          "session " + std::to_string(id) +
          " is dirty; Refresh before WriteSnapshot (a snapshot must not "
          "freeze stale maintained state)");
    }
  }

  store::SnapshotFileBuilder builder;
  builder.set_feature_flags(campaign != nullptr ? store::kFeatureCampaign
                                                : 0);
  {
    store::BinWriter w;
    EncodeMeta(pool, campaign, &w);
    builder.AddSection(store::kSectionMeta, store::kSectionVersion, w.Take());
  }
  {
    store::BinWriter w;
    EncodeDatabase(pool.base(), &w);
    builder.AddSection(store::kSectionDatabase, store::kSectionVersion,
                       w.Take());
  }
  {
    store::BinWriter w;
    EncodeEngine(pool.engine_, &w);
    builder.AddSection(store::kSectionEngine, store::kSectionVersion,
                       w.Take());
  }
  {
    store::BinWriter w;
    EncodeSessions(pool, &w);
    builder.AddSection(store::kSectionSessions, store::kSectionVersion,
                       w.Take());
  }
  if (campaign != nullptr) {
    store::BinWriter w;
    EncodeCampaign(*campaign, &w);
    builder.AddSection(store::kSectionCampaign, store::kSectionVersion,
                       w.Take());
  }
  *bytes = builder.Finish();
  return Status::OK();
}

std::vector<size_t> SnapshotAccess::EngineCheckpointPositions(
    const SessionPool& pool) {
  return pool.engine_.checkpoint_positions();
}

std::vector<size_t> SnapshotAccess::SessionCheckpointPositions(
    const SessionPool& pool, SessionPool::SessionId id) {
  const SessionPool::Session& session = pool.Slot(id);
  std::vector<size_t> positions;
  positions.reserve(session.scan.checkpoints_.size());
  for (const PsrEngine::Checkpoint& cp : session.scan.checkpoints_) {
    positions.push_back(cp.pos);
  }
  return positions;
}

}  // namespace uclean
