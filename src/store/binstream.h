// binstream: the little-endian binary primitives every on-disk byte of
// the snapshot store goes through.
//
// FORMAT SPEC (the contract tests/store_test.cc pins byte-for-byte):
//  * fixed-width integers are little-endian, assembled with byte shifts
//    -- the encoded bytes are identical on any host endianness;
//  * unsigned varints are LEB128 (7 data bits per byte, high bit =
//    continuation, at most 10 bytes for a u64);
//  * signed integers are zigzag-mapped ((v << 1) ^ (v >> 63)) then
//    varint-encoded, so small magnitudes of either sign stay short;
//  * doubles are their IEEE-754 bit pattern as a fixed u64 (via memcpy,
//    never a reinterpret_cast);
//  * strings and arrays are a varint element count followed by the
//    elements.
//
// BinWriter appends to an owned byte buffer; BinReader walks a borrowed
// one with every read bounds-checked, returning Status::DataLoss on
// overrun or malformed varints (a truncated or bit-flipped snapshot must
// fail loudly, never read garbage). Double arrays take a single-memcpy
// fast path on little-endian hosts -- warm-start load time is dominated
// by exactly these bulk copies -- and fall back to per-element encoding
// elsewhere, producing identical bytes.
//
// tools/check_contracts.py enforces that raw serialization (fwrite/fread,
// reinterpret_cast byte punning) appears nowhere outside src/store/: this
// header IS the sanctioned byte boundary.

#ifndef UCLEAN_STORE_BINSTREAM_H_
#define UCLEAN_STORE_BINSTREAM_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace uclean {
namespace store {

/// True on little-endian hosts (the fast path for bulk double arrays).
inline bool IsLittleEndianHost() {
  const uint32_t probe = 1;
  unsigned char first = 0;
  std::memcpy(&first, &probe, 1);
  return first == 1;
}

/// Appends primitives to an owned byte buffer (see the format spec above).
class BinWriter {
 public:
  const std::string& bytes() const { return bytes_; }
  std::string Take() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

  void PutU8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutU32(uint32_t v) {
    char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    bytes_.append(b, 4);
  }

  void PutU64(uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    bytes_.append(b, 8);
  }

  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      bytes_.push_back(static_cast<char>((v & 0x7F) | 0x80));
      v >>= 7;
    }
    bytes_.push_back(static_cast<char>(v));
  }

  void PutZigzag(int64_t v) {
    PutVarint((static_cast<uint64_t>(v) << 1) ^
              static_cast<uint64_t>(v >> 63));
  }

  void PutF64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, 8);
    PutU64(bits);
  }

  void PutString(std::string_view s) {
    PutVarint(s.size());
    bytes_.append(s.data(), s.size());
  }

  /// varint count + the doubles; one memcpy on little-endian hosts (the
  /// IEEE bit pattern already lies in wire order there).
  void PutF64Array(const std::vector<double>& values) {
    PutVarint(values.size());
    if (values.empty()) return;
    if (IsLittleEndianHost()) {
      const size_t old = bytes_.size();
      bytes_.resize(old + values.size() * 8);
      std::memcpy(&bytes_[old], values.data(), values.size() * 8);
    } else {
      for (double v : values) PutF64(v);
    }
  }

  void PutVarintArray(const std::vector<size_t>& values) {
    PutVarint(values.size());
    for (size_t v : values) PutVarint(v);
  }

 private:
  std::string bytes_;
};

/// Walks a borrowed byte buffer; every accessor is bounds-checked and
/// fails with Status::DataLoss instead of reading past the end.
class BinReader {
 public:
  explicit BinReader(std::string_view bytes) : bytes_(bytes) {}

  size_t offset() const { return offset_; }
  size_t remaining() const { return bytes_.size() - offset_; }

  Status GetU8(uint8_t* out) {
    if (remaining() < 1) return Truncated("u8");
    *out = static_cast<uint8_t>(bytes_[offset_++]);
    return Status::OK();
  }

  Status GetBool(bool* out) {
    uint8_t v = 0;
    UCLEAN_RETURN_IF_ERROR(GetU8(&v));
    if (v > 1) return Status::DataLoss("bool byte out of range");
    *out = v != 0;
    return Status::OK();
  }

  Status GetU32(uint32_t* out) {
    if (remaining() < 4) return Truncated("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(
               static_cast<unsigned char>(bytes_[offset_ + i]))
           << (8 * i);
    }
    offset_ += 4;
    *out = v;
    return Status::OK();
  }

  Status GetU64(uint64_t* out) {
    if (remaining() < 8) return Truncated("u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(bytes_[offset_ + i]))
           << (8 * i);
    }
    offset_ += 8;
    *out = v;
    return Status::OK();
  }

  Status GetVarint(uint64_t* out) {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (remaining() < 1) return Truncated("varint");
      const uint8_t byte = static_cast<uint8_t>(bytes_[offset_++]);
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        // The 10th byte carries the top single bit; anything above it
        // would have been dropped by the shift -- reject instead.
        if (shift == 63 && byte > 1) {
          return Status::DataLoss("varint overflows 64 bits");
        }
        *out = v;
        return Status::OK();
      }
    }
    return Status::DataLoss("varint longer than 10 bytes");
  }

  Status GetZigzag(int64_t* out) {
    uint64_t v = 0;
    UCLEAN_RETURN_IF_ERROR(GetVarint(&v));
    *out = static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
    return Status::OK();
  }

  Status GetF64(double* out) {
    uint64_t bits = 0;
    UCLEAN_RETURN_IF_ERROR(GetU64(&bits));
    std::memcpy(out, &bits, 8);
    return Status::OK();
  }

  Status GetString(std::string* out) {
    uint64_t size = 0;
    UCLEAN_RETURN_IF_ERROR(GetVarint(&size));
    if (size > remaining()) return Truncated("string body");
    out->assign(bytes_.data() + offset_, size);
    offset_ += size;
    return Status::OK();
  }

  Status GetF64Array(std::vector<double>* out) {
    uint64_t count = 0;
    UCLEAN_RETURN_IF_ERROR(GetVarint(&count));
    if (count > remaining() / 8) return Truncated("double array");
    out->resize(count);
    if (count == 0) return Status::OK();
    if (IsLittleEndianHost()) {
      std::memcpy(out->data(), bytes_.data() + offset_, count * 8);
      offset_ += count * 8;
    } else {
      for (uint64_t i = 0; i < count; ++i) {
        UCLEAN_RETURN_IF_ERROR(GetF64(&(*out)[i]));
      }
    }
    return Status::OK();
  }

  Status GetVarintArray(std::vector<size_t>* out) {
    uint64_t count = 0;
    UCLEAN_RETURN_IF_ERROR(GetVarint(&count));
    if (count > remaining()) return Truncated("varint array");
    out->clear();
    out->reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t v = 0;
      UCLEAN_RETURN_IF_ERROR(GetVarint(&v));
      out->push_back(static_cast<size_t>(v));
    }
    return Status::OK();
  }

  /// A decoder's final word: leftover bytes mean the payload and the
  /// decoder disagree about the format -- corruption, not slack.
  Status ExpectEnd(const char* what) const {
    if (offset_ != bytes_.size()) {
      return Status::DataLoss(std::string(what) + ": " +
                              std::to_string(bytes_.size() - offset_) +
                              " trailing bytes");
    }
    return Status::OK();
  }

 private:
  Status Truncated(const char* what) const {
    return Status::DataLoss(std::string("truncated ") + what + " at offset " +
                            std::to_string(offset_));
  }

  std::string_view bytes_;
  size_t offset_ = 0;
};

}  // namespace store
}  // namespace uclean

#endif  // UCLEAN_STORE_BINSTREAM_H_
