// Snapshot store: versioned, checksummed binary persistence for a whole
// serving pool -- the warm-start tier.
//
// A SessionPool's startup cost is one full O(m * n) PSR scan plus a TP
// pass (SessionPool::Create). This store serializes everything that scan
// produced -- the base database, the engine's checkpointed scan state,
// the base TP ladder and every open session's private state -- so
// SessionPool::OpenFromSnapshot reconstructs a serving pool with ZERO
// scans and bitwise-identical behavior: same PSR outputs, same checkpoint
// positions, same per-session qualities, and (through the campaign
// section's Rng/FaultInjector states) the same randomness streams for a
// resumed cleaning campaign.
//
// FILE LAYOUT (all integers little-endian; store/binstream.h primitives):
//
//   offset 0   +----------------------------------------------+
//              | magic "UCLNSNAP"                     8 bytes |
//              | format_version                    u32        |
//              | feature_flags                     u32        |
//              | section_count                     u32        |
//              | table_offset                      u64        |
//              | header_crc (over the 28 bytes above)  u32    |
//   offset 32  +----------------------------------------------+
//              | section payloads, back to back               |
//              |   (order matches the section table)          |
//              +----------------------------------------------+
// table_offset | section table: section_count entries of      |
//              |   { id u32, version u32, offset u64,         |
//              |     size u64, crc u32 }            28 bytes  |
//              | table_crc (over all entry bytes)  u32        |
//              +----------------------------------------------+
//
// VERSIONING AND COMPATIBILITY RULES:
//  * format_version guards the CONTAINER (header/table shape). A reader
//    rejects any version it does not implement with Status::DataLoss --
//    never guesses.
//  * Each section carries its own version; a reader rejects section
//    versions above the one it implements (DataLoss), so sections evolve
//    independently of the container.
//  * UNKNOWN SECTION IDS ARE SKIPPED (their CRC is still verified): a
//    newer writer may append sections an older reader ignores.
//  * UNKNOWN FEATURE FLAGS ARE FATAL (DataLoss): a flag marks a semantic
//    the reader must understand to interpret the sections it does know.
//    Known flags: kFeatureCampaign (a campaign section is present).
//  * Every corruption -- bit flip (section, table or header CRC
//    mismatch), truncation at any boundary, malformed payload -- is
//    Status::DataLoss, which the CLI maps to its own exit code.
//
// WHAT IS CAPTURED: the base ProbabilisticDatabase (tuples, members,
// masses, tombstone/compaction state), the PsrEngine's logical state
// (ladder, PSR options, outputs, checkpoint list, cadence), the base TP
// ladder, each session slot (overlay outcomes + SessionState + TP state;
// pristine sessions are re-forked on load instead of stored), the free
// list, and optionally a CampaignSnapshot (budgets, progress, probe
// logs, Rng + FaultInjector states). WHAT IS NOT: runtime execution
// knobs -- thread count, shared pool, kernel choice are the LOADER's
// (SessionPool::Options::exec), because the machine opening a snapshot
// need not be the machine that wrote it; the writer's resolved kernel
// and thread count are recorded in the meta section for provenance only.
//
// Writers require every open session to be refreshed (not dirty):
// a dirty session's maintained state is stale by contract, and
// persisting it would freeze the staleness. WriteSnapshot fails with
// FailedPrecondition instead.

#ifndef UCLEAN_STORE_SNAPSHOT_H_
#define UCLEAN_STORE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "clean/agent.h"
#include "clean/fault.h"
#include "clean/session_pool.h"
#include "common/status.h"
#include "store/binstream.h"

namespace uclean {
namespace store {

// ---------------------------------------------------------------------------
// Container layer: header, section table, whole-file assembly/verification.
// ---------------------------------------------------------------------------

inline constexpr char kSnapshotMagic[8] = {'U', 'C', 'L', 'N',
                                           'S', 'N', 'A', 'P'};
inline constexpr uint32_t kSnapshotFormatVersion = 1;
inline constexpr size_t kSnapshotHeaderSize = 32;
inline constexpr size_t kSectionEntrySize = 28;

/// Feature flags (header): semantics a reader MUST understand. Unknown
/// bits are fatal, unlike unknown sections.
inline constexpr uint32_t kFeatureCampaign = 0x1;
inline constexpr uint32_t kKnownFeatureFlags = kFeatureCampaign;

/// Section ids. Meta, database, engine and sessions are required in
/// every pool snapshot; campaign is optional (kFeatureCampaign).
inline constexpr uint32_t kSectionMeta = 1;
inline constexpr uint32_t kSectionDatabase = 2;
inline constexpr uint32_t kSectionEngine = 3;
inline constexpr uint32_t kSectionSessions = 4;
inline constexpr uint32_t kSectionCampaign = 5;

/// Per-section versions this reader implements.
inline constexpr uint32_t kSectionVersion = 1;

/// "meta" / "database" / ... / "unknown" for display (inspect CLI).
const char* SectionName(uint32_t id);

/// One section-table entry: where a section's payload lives and its CRC.
/// Offsets/sizes are u64 by design -- snapshots of large pools can pass
/// 4 GiB, and the table arithmetic must not wrap (store_test exercises
/// >4 GiB offsets on synthetic tables).
struct SectionEntry {
  uint32_t id = 0;
  uint32_t version = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t crc = 0;
};

/// Appends the 28-byte wire form of `entry` (fixed-width, little-endian
/// -- the table must be seekable, so no varints here).
void AppendSectionEntry(BinWriter* w, const SectionEntry& entry);

/// Parses one 28-byte entry; DataLoss on truncation.
Status ParseSectionEntry(BinReader* r, SectionEntry* entry);

/// Assembles a snapshot container from raw section payloads. The
/// production writer uses it for real sections; tests use it to craft
/// files with unknown sections, future versions or arbitrary payloads.
class SnapshotFileBuilder {
 public:
  void set_format_version(uint32_t version) { format_version_ = version; }
  void set_feature_flags(uint32_t flags) { feature_flags_ = flags; }

  /// Appends a section; payload order in the file follows call order.
  void AddSection(uint32_t id, uint32_t version, std::string payload);

  /// The complete file image (header + payloads + table, all CRCs
  /// computed).
  std::string Finish() const;

 private:
  struct PendingSection {
    uint32_t id = 0;
    uint32_t version = 0;
    std::string payload;
  };

  uint32_t format_version_ = kSnapshotFormatVersion;
  uint32_t feature_flags_ = 0;
  std::vector<PendingSection> sections_;
};

/// A parsed-and-verified snapshot container: Parse checks the magic,
/// format version, header CRC, table CRC and EVERY section's CRC and
/// bounds (including unknown sections -- skipping is a format decision,
/// integrity is not). Section payloads are views into the owned file
/// image.
class SnapshotFile {
 public:
  static Result<SnapshotFile> Parse(std::string bytes);

  uint32_t format_version() const { return format_version_; }
  uint32_t feature_flags() const { return feature_flags_; }
  size_t file_size() const { return bytes_.size(); }

  /// Entries in file order (unknown ids included).
  const std::vector<SectionEntry>& sections() const { return sections_; }

  /// The first entry with the given id, or null.
  const SectionEntry* Find(uint32_t id) const;

  /// The payload bytes of `entry` (must be one of sections()).
  std::string_view payload(const SectionEntry& entry) const {
    return std::string_view(bytes_).substr(entry.offset, entry.size);
  }

 private:
  SnapshotFile() = default;

  std::string bytes_;
  uint32_t format_version_ = 0;
  uint32_t feature_flags_ = 0;
  std::vector<SectionEntry> sections_;
};

// ---------------------------------------------------------------------------
// Pool snapshot layer: what WriteSnapshot/ReadSnapshot move in and out.
// ---------------------------------------------------------------------------

/// Provenance + shape summary (the meta section): what wrote the file
/// and what is inside, without deserializing the heavy sections.
/// `kernel`/`threads` record the writer's RESOLVED execution mode (the
/// concrete kernel its scans ran on, never "auto") -- provenance for
/// benchmark JSON and inspect output; the loader picks its own.
struct SnapshotMeta {
  std::string tool;
  std::string kernel;
  uint64_t threads = 1;
  uint64_t num_xtuples = 0;
  uint64_t num_tuples = 0;
  uint64_t num_sessions = 0;
  std::vector<size_t> ladder;
};

/// One session's mid-campaign progress: everything the adaptive loop
/// accumulated for it plus the draw-state (Rng, optional FaultInjector)
/// a resumed run continues from. `session_id` is the pool SessionId the
/// state belongs to.
struct CampaignSessionSnapshot {
  uint64_t session_id = 0;
  int64_t spent = 0;
  int64_t leftover = 0;
  uint64_t successes = 0;
  uint64_t rounds = 0;
  std::vector<ProbeRecord> log;
  FaultStats faults;
  std::string rng_state;  ///< Rng::SaveState of the session's probe stream
  bool has_injector = false;
  FaultInjectorState injector;  ///< meaningful iff has_injector
};

/// A paused adaptive campaign over the pool's sessions (the optional
/// campaign section; kFeatureCampaign). Resume by restoring each
/// session's Rng/injector, then RunPipelinedCleaning with
/// PipelineOptions::spent_so_far -- for deterministic planners the
/// finished campaign is bitwise the uninterrupted one.
struct CampaignSnapshot {
  int64_t budget = 0;
  std::vector<CampaignSessionSnapshot> sessions;
};

/// Serializes `pool` (and optionally a campaign) to `path`. Fails with
/// FailedPrecondition when any open session is dirty, IOError when the
/// file cannot be written.
Status WriteSnapshot(const SessionPool& pool, const std::string& path,
                     const CampaignSnapshot* campaign = nullptr);

/// What ReadSnapshot hands back: the reconstructed pool plus the
/// sidecar data the pool itself does not hold.
struct LoadedSnapshot {
  explicit LoadedSnapshot(SessionPool p) : pool(std::move(p)) {}

  SessionPool pool;
  SnapshotMeta meta;
  bool has_campaign = false;
  CampaignSnapshot campaign;
};

/// Reads and fully reconstructs a snapshot. `options` supplies the
/// loader's runtime knobs (execution mode, future-session checkpoint
/// cadence); all logical state comes from the file. DataLoss on any
/// corruption/version problem, IOError when the file cannot be read.
Result<LoadedSnapshot> ReadSnapshot(const std::string& path,
                                    const SessionPool::Options& options = {});

/// One row of `snapshot inspect`: a section-table entry plus its
/// display name.
struct SectionInfo {
  uint32_t id = 0;
  uint32_t version = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t crc = 0;
  std::string name;
};

/// Container-level report of a snapshot file (every CRC verified, no
/// pool reconstruction). `meta` is filled when a meta section is present
/// and decodes.
struct SnapshotInfo {
  uint32_t format_version = 0;
  uint32_t feature_flags = 0;
  uint64_t file_size = 0;
  std::vector<SectionInfo> sections;
  bool has_meta = false;
  SnapshotMeta meta;
};

/// Verifies the container (header, table, all section CRCs) and returns
/// the section table; DataLoss on any integrity/version failure.
Result<SnapshotInfo> InspectSnapshot(const std::string& path);

}  // namespace store

// ---------------------------------------------------------------------------
// SnapshotAccess: the one befriended doorway into the private state the
// snapshot moves (ProbabilisticDatabase, PsrEngine + SessionState,
// SessionPool). Everything here is static; the class exists so the
// granting headers need exactly one friend line each.
// ---------------------------------------------------------------------------

class SnapshotAccess {
 public:
  /// Serializes the pool (+ optional campaign) into a complete snapshot
  /// file image. The in-memory half of WriteSnapshot; tests use it to
  /// corrupt images byte-by-byte without touching the filesystem.
  static Status Serialize(const SessionPool& pool,
                          const store::CampaignSnapshot* campaign,
                          std::string* bytes);

  /// Reconstructs a pool (+ sidecar meta/campaign) from a file image.
  /// The in-memory half of ReadSnapshot.
  static Result<store::LoadedSnapshot> Deserialize(
      std::string bytes, const SessionPool::Options& options);

  /// Decodes a meta-section payload (InspectSnapshot shares it).
  static Status DecodeMeta(std::string_view payload,
                           store::SnapshotMeta* meta);

  // ----- introspection the pool's public surface does not expose,
  //       for the bitwise round-trip asserts in tests and bench -----

  /// The shared engine's checkpoint ranks, ascending.
  static std::vector<size_t> EngineCheckpointPositions(
      const SessionPool& pool);

  /// Session `id`'s private post-divergence checkpoint ranks, ascending.
  static std::vector<size_t> SessionCheckpointPositions(
      const SessionPool& pool, SessionPool::SessionId id);

 private:
  // Section payload codecs (writer half in snapshot_writer.cc, reader
  // half in snapshot_reader.cc). Friendship covers naming the granting
  // classes' private nested types in these declarations.
  static void EncodeMeta(const SessionPool& pool,
                         const store::CampaignSnapshot* campaign,
                         store::BinWriter* w);
  static void EncodeDatabase(const ProbabilisticDatabase& db,
                             store::BinWriter* w);
  static void EncodeEngine(const PsrEngine& engine, store::BinWriter* w);
  static void EncodeCheckpoint(const PsrEngine::Checkpoint& cp,
                               store::BinWriter* w);
  static void EncodeSessions(const SessionPool& pool, store::BinWriter* w);
  static void EncodeCampaign(const store::CampaignSnapshot& campaign,
                             store::BinWriter* w);

  static Status DecodeDatabase(store::BinReader* r,
                               ProbabilisticDatabase* db);
  static Status DecodeEngine(store::BinReader* r, const ExecOptions& exec,
                             const ProbabilisticDatabase& db,
                             PsrEngine* engine);
  static Status DecodeCheckpoint(store::BinReader* r, size_t num_xtuples,
                                 size_t num_tuples,
                                 PsrEngine::Checkpoint* cp);
  static Status DecodeSessions(store::BinReader* r, SessionPool* pool);
  static Status DecodeCampaign(store::BinReader* r,
                               store::CampaignSnapshot* campaign);
};

}  // namespace uclean

#endif  // UCLEAN_STORE_SNAPSHOT_H_
