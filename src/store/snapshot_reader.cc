// Reader half of the snapshot store: container verification
// (SnapshotFile::Parse), section payload decoders with full structural
// validation, ReadSnapshot/InspectSnapshot and the warm-start entry
// point SessionPool::OpenFromSnapshot. Every malformed byte -- bad
// magic, checksum mismatch, truncation, out-of-range value,
// inconsistent cross-section shape -- surfaces as Status::DataLoss; the
// reader never guesses and never reconstructs a pool it cannot prove
// bitwise-faithful to the writer's.

#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "clean/agent.h"
#include "clean/fault.h"
#include "clean/session_pool.h"
#include "common/status.h"
#include "exec/thread_pool.h"
#include "model/database.h"
#include "model/database_overlay.h"
#include "quality/tp.h"
#include "rank/kernel.h"
#include "rank/psr.h"
#include "rank/psr_engine.h"
#include "store/binstream.h"
#include "store/crc32.h"
#include "store/snapshot.h"

namespace uclean {
namespace store {

namespace {

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) {
    return Status::IOError("cannot stat '" + path + "'");
  }
  in.seekg(0, std::ios::beg);
  std::string bytes(static_cast<size_t>(size), '\0');
  in.read(bytes.data(), size);
  if (!in) {
    return Status::IOError("short read from '" + path + "'");
  }
  return bytes;
}

}  // namespace

Result<SnapshotFile> SnapshotFile::Parse(std::string bytes) {
  SnapshotFile file;
  file.bytes_ = std::move(bytes);
  const std::string_view view(file.bytes_);
  if (view.size() < kSnapshotHeaderSize) {
    return Status::DataLoss("truncated snapshot: no complete header");
  }
  if (std::memcmp(view.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::DataLoss("not a uclean snapshot (bad magic)");
  }
  BinReader header(view.substr(sizeof(kSnapshotMagic),
                               kSnapshotHeaderSize - sizeof(kSnapshotMagic)));
  uint32_t section_count = 0;
  uint64_t table_offset = 0;
  uint32_t header_crc = 0;
  UCLEAN_RETURN_IF_ERROR(header.GetU32(&file.format_version_));
  UCLEAN_RETURN_IF_ERROR(header.GetU32(&file.feature_flags_));
  UCLEAN_RETURN_IF_ERROR(header.GetU32(&section_count));
  UCLEAN_RETURN_IF_ERROR(header.GetU64(&table_offset));
  UCLEAN_RETURN_IF_ERROR(header.GetU32(&header_crc));
  if (Crc32(view.data(), kSnapshotHeaderSize - 4) != header_crc) {
    return Status::DataLoss("snapshot header checksum mismatch");
  }
  if (file.format_version_ != kSnapshotFormatVersion) {
    return Status::DataLoss(
        "unsupported snapshot format version " +
        std::to_string(file.format_version_) + " (this reader implements " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }

  if (table_offset < kSnapshotHeaderSize || table_offset > view.size()) {
    return Status::DataLoss("snapshot section-table offset out of bounds");
  }
  const uint64_t table_bytes =
      static_cast<uint64_t>(section_count) * kSectionEntrySize;
  if (view.size() - table_offset < table_bytes + 4) {
    return Status::DataLoss("truncated snapshot section table");
  }
  if (table_offset + table_bytes + 4 != view.size()) {
    return Status::DataLoss("trailing bytes after snapshot section table");
  }
  BinReader table(view.substr(table_offset, table_bytes + 4));
  file.sections_.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    SectionEntry entry;
    UCLEAN_RETURN_IF_ERROR(ParseSectionEntry(&table, &entry));
    file.sections_.push_back(entry);
  }
  uint32_t table_crc = 0;
  UCLEAN_RETURN_IF_ERROR(table.GetU32(&table_crc));
  UCLEAN_RETURN_IF_ERROR(table.ExpectEnd("snapshot section table"));
  if (Crc32(view.data() + table_offset, table_bytes) != table_crc) {
    return Status::DataLoss("snapshot section-table checksum mismatch");
  }

  // Integrity is not optional for unknown sections: skipping is a format
  // decision the POOL reader makes; the container still proves every
  // byte it carries.
  for (const SectionEntry& entry : file.sections_) {
    if (entry.offset < kSnapshotHeaderSize || entry.offset > table_offset ||
        entry.size > table_offset - entry.offset) {
      return Status::DataLoss("section '" +
                              std::string(SectionName(entry.id)) +
                              "' extends past its container");
    }
    const std::string_view payload = view.substr(entry.offset, entry.size);
    if (Crc32(payload.data(), payload.size()) != entry.crc) {
      return Status::DataLoss("section '" +
                              std::string(SectionName(entry.id)) +
                              "' checksum mismatch");
    }
  }
  return file;
}

const SectionEntry* SnapshotFile::Find(uint32_t id) const {
  for (const SectionEntry& entry : sections_) {
    if (entry.id == id) return &entry;
  }
  return nullptr;
}

namespace {

Status DecodePsrOutput(BinReader* r, size_t num_tuples, PsrOutput* out) {
  uint64_t k = 0;
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&k));
  if (k == 0) return Status::DataLoss("PSR output with k == 0");
  out->k = static_cast<size_t>(k);
  UCLEAN_RETURN_IF_ERROR(r->GetF64Array(&out->topk_prob));
  if (out->topk_prob.size() != num_tuples) {
    return Status::DataLoss("PSR top-k vector size mismatch");
  }
  uint64_t num_nonzero = 0;
  uint64_t scan_end = 0;
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&num_nonzero));
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&scan_end));
  if (num_nonzero > num_tuples || scan_end > num_tuples) {
    return Status::DataLoss("PSR scan bounds exceed the database");
  }
  out->num_nonzero = static_cast<size_t>(num_nonzero);
  out->scan_end = static_cast<size_t>(scan_end);
  UCLEAN_RETURN_IF_ERROR(r->GetF64Array(&out->best_rank_prob));
  uint64_t index_count = 0;
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&index_count));
  if (out->best_rank_prob.size() != out->k || index_count != out->k) {
    return Status::DataLoss("U-kRanks tracker size mismatch");
  }
  out->best_rank_index.resize(out->k);
  for (size_t h = 0; h < out->k; ++h) {
    int64_t index = 0;
    UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&index));
    if (index < -1 || index >= static_cast<int64_t>(num_tuples)) {
      return Status::DataLoss("U-kRanks index out of range");
    }
    out->best_rank_index[h] = static_cast<int32_t>(index);
  }
  UCLEAN_RETURN_IF_ERROR(r->GetF64Array(&out->rank_prob));
  UCLEAN_RETURN_IF_ERROR(r->GetBool(&out->has_rank_probabilities));
  const size_t expected_matrix =
      out->has_rank_probabilities ? num_tuples * out->k : 0;
  if (out->rank_prob.size() != expected_matrix) {
    return Status::DataLoss("rank-probability matrix size mismatch");
  }
  return Status::OK();
}

Status DecodeTpOutput(BinReader* r, size_t num_tuples, size_t num_xtuples,
                      TpOutput* tp) {
  UCLEAN_RETURN_IF_ERROR(r->GetF64(&tp->quality));
  UCLEAN_RETURN_IF_ERROR(r->GetF64Array(&tp->omega));
  uint64_t scan_end = 0;
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&scan_end));
  UCLEAN_RETURN_IF_ERROR(r->GetF64Array(&tp->xtuple_gain));
  UCLEAN_RETURN_IF_ERROR(r->GetF64Array(&tp->xtuple_topk_mass));
  if (tp->omega.size() != num_tuples || scan_end > num_tuples ||
      tp->xtuple_gain.size() != num_xtuples ||
      tp->xtuple_topk_mass.size() != num_xtuples) {
    return Status::DataLoss("TP state size mismatch");
  }
  tp->scan_end = static_cast<size_t>(scan_end);
  return Status::OK();
}

Status DecodeProbeRecord(BinReader* r, ProbeRecord* record) {
  int64_t xtuple = 0;
  UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&xtuple));
  if (xtuple < std::numeric_limits<XTupleId>::min() ||
      xtuple > std::numeric_limits<XTupleId>::max()) {
    return Status::DataLoss("probe record x-tuple id out of range");
  }
  record->xtuple = static_cast<XTupleId>(xtuple);
  UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&record->attempts));
  UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&record->spent));
  UCLEAN_RETURN_IF_ERROR(r->GetBool(&record->success));
  UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&record->resolved_id));
  UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&record->failures));
  UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&record->retries));
  uint64_t last_error = 0;
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&last_error));
  if (last_error > static_cast<uint64_t>(StatusCode::kDataLoss)) {
    return Status::DataLoss("probe record status code out of range");
  }
  record->last_error = static_cast<StatusCode>(last_error);
  return Status::OK();
}

Status DecodeFaultStats(BinReader* r, FaultStats* stats) {
  UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&stats->transient));
  UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&stats->timeouts));
  UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&stats->source_down));
  UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&stats->retries));
  UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&stats->failed_probes));
  UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&stats->breaker_skips));
  UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&stats->deadline_skips));
  UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&stats->budget_unspent));
  return Status::OK();
}

Status DecodeInjectorState(BinReader* r, FaultInjectorState* state) {
  UCLEAN_RETURN_IF_ERROR(r->GetString(&state->rng_state));
  UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&state->now_us));
  UCLEAN_RETURN_IF_ERROR(r->GetBool(&state->ever_opened));
  uint64_t breaker_count = 0;
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&breaker_count));
  if (breaker_count > r->remaining()) {
    return Status::DataLoss("truncated breaker table");
  }
  state->breakers.resize(breaker_count);
  for (uint64_t i = 0; i < breaker_count; ++i) {
    FaultInjectorState::BreakerEntry& breaker = state->breakers[i];
    int64_t source = 0;
    UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&source));
    breaker.source = static_cast<XTupleId>(source);
    UCLEAN_RETURN_IF_ERROR(r->GetU8(&breaker.state));
    if (breaker.state > 2) {
      return Status::DataLoss("breaker state byte out of range");
    }
    UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&breaker.consecutive_failures));
    UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&breaker.open_until_us));
  }
  uint64_t down_count = 0;
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&down_count));
  if (down_count > r->remaining()) {
    return Status::DataLoss("truncated down-source table");
  }
  state->down.resize(down_count);
  for (uint64_t i = 0; i < down_count; ++i) {
    int64_t source = 0;
    UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&source));
    state->down[i].source = static_cast<XTupleId>(source);
    UCLEAN_RETURN_IF_ERROR(r->GetBool(&state->down[i].down));
  }
  return Status::OK();
}

}  // namespace

Result<LoadedSnapshot> ReadSnapshot(const std::string& path,
                                    const SessionPool::Options& options) {
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return SnapshotAccess::Deserialize(std::move(bytes).value(), options);
}

Result<SnapshotInfo> InspectSnapshot(const std::string& path) {
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  Result<SnapshotFile> file = SnapshotFile::Parse(std::move(bytes).value());
  if (!file.ok()) return file.status();

  SnapshotInfo info;
  info.format_version = file->format_version();
  info.feature_flags = file->feature_flags();
  info.file_size = file->file_size();
  for (const SectionEntry& entry : file->sections()) {
    SectionInfo section;
    section.id = entry.id;
    section.version = entry.version;
    section.offset = entry.offset;
    section.size = entry.size;
    section.crc = entry.crc;
    section.name = SectionName(entry.id);
    info.sections.push_back(std::move(section));
  }
  const SectionEntry* meta = file->Find(kSectionMeta);
  if (meta != nullptr && meta->version <= kSectionVersion) {
    UCLEAN_RETURN_IF_ERROR(
        SnapshotAccess::DecodeMeta(file->payload(*meta), &info.meta));
    info.has_meta = true;
  }
  return info;
}

}  // namespace store

// ---------------------------------------------------------------------------
// SnapshotAccess: reader half.
// ---------------------------------------------------------------------------

Status SnapshotAccess::DecodeMeta(std::string_view payload,
                                  store::SnapshotMeta* meta) {
  store::BinReader r(payload);
  UCLEAN_RETURN_IF_ERROR(r.GetString(&meta->tool));
  UCLEAN_RETURN_IF_ERROR(r.GetString(&meta->kernel));
  UCLEAN_RETURN_IF_ERROR(r.GetVarint(&meta->threads));
  UCLEAN_RETURN_IF_ERROR(r.GetVarint(&meta->num_xtuples));
  UCLEAN_RETURN_IF_ERROR(r.GetVarint(&meta->num_tuples));
  UCLEAN_RETURN_IF_ERROR(r.GetVarint(&meta->num_sessions));
  UCLEAN_RETURN_IF_ERROR(r.GetVarintArray(&meta->ladder));
  return r.ExpectEnd("meta section");
}

Status SnapshotAccess::DecodeDatabase(store::BinReader* r,
                                      ProbabilisticDatabase* db) {
  uint64_t num_tuples = 0;
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&num_tuples));
  if (num_tuples > r->remaining()) {
    return Status::DataLoss("truncated tuple table");
  }
  db->tuples_.resize(num_tuples);
  for (uint64_t i = 0; i < num_tuples; ++i) {
    Tuple& t = db->tuples_[i];
    UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&t.id));
    uint64_t xtuple = 0;
    UCLEAN_RETURN_IF_ERROR(r->GetVarint(&xtuple));
    if (xtuple > static_cast<uint64_t>(std::numeric_limits<XTupleId>::max())) {
      return Status::DataLoss("tuple x-tuple id out of range");
    }
    t.xtuple = static_cast<XTupleId>(xtuple);
    UCLEAN_RETURN_IF_ERROR(r->GetF64(&t.score));
    UCLEAN_RETURN_IF_ERROR(r->GetF64(&t.prob));
    UCLEAN_RETURN_IF_ERROR(r->GetBool(&t.is_null));
    UCLEAN_RETURN_IF_ERROR(r->GetString(&t.label));
  }

  uint64_t num_xtuples = 0;
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&num_xtuples));
  if (num_xtuples > r->remaining()) {
    return Status::DataLoss("truncated x-tuple table");
  }
  db->members_.resize(num_xtuples);
  db->real_mass_.resize(num_xtuples);
  for (uint64_t l = 0; l < num_xtuples; ++l) {
    uint64_t member_count = 0;
    UCLEAN_RETURN_IF_ERROR(r->GetVarint(&member_count));
    if (member_count > r->remaining()) {
      return Status::DataLoss("truncated x-tuple member list");
    }
    std::vector<int32_t>& members = db->members_[l];
    members.resize(member_count);
    for (uint64_t j = 0; j < member_count; ++j) {
      uint64_t rank = 0;
      UCLEAN_RETURN_IF_ERROR(r->GetVarint(&rank));
      if (rank >= num_tuples) {
        return Status::DataLoss("x-tuple member rank index out of range");
      }
      members[j] = static_cast<int32_t>(rank);
    }
    UCLEAN_RETURN_IF_ERROR(r->GetF64(&db->real_mass_[l]));
  }
  for (const Tuple& t : db->tuples_) {
    if (static_cast<uint64_t>(t.xtuple) >= num_xtuples) {
      return Status::DataLoss("tuple references a missing x-tuple");
    }
  }

  std::string tombstones;
  UCLEAN_RETURN_IF_ERROR(r->GetString(&tombstones));
  if (!tombstones.empty() && tombstones.size() != num_tuples) {
    return Status::DataLoss("tombstone bitmap size mismatch");
  }
  db->tombstones_.assign(tombstones.begin(), tombstones.end());
  uint64_t num_tombstones = 0;
  uint64_t num_real = 0;
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&num_tombstones));
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&num_real));
  if (num_tombstones > num_tuples || num_real > num_tuples) {
    return Status::DataLoss("database tuple counters exceed the table");
  }
  db->num_tombstones_ = static_cast<size_t>(num_tombstones);
  db->num_real_ = static_cast<size_t>(num_real);
  return Status::OK();
}

Status SnapshotAccess::DecodeCheckpoint(store::BinReader* r,
                                        size_t num_xtuples, size_t num_tuples,
                                        PsrEngine::Checkpoint* cp) {
  uint64_t pos = 0;
  uint64_t live = 0;
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&pos));
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&live));
  if (pos > num_tuples || live > pos) {
    return Status::DataLoss("checkpoint position out of range");
  }
  cp->pos = static_cast<size_t>(pos);
  cp->live = static_cast<size_t>(live);
  UCLEAN_RETURN_IF_ERROR(r->GetF64Array(&cp->c));
  uint64_t active = 0;
  uint64_t saturated = 0;
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&active));
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&saturated));
  if (active > num_xtuples || saturated > num_xtuples ||
      cp->c.size() != active + 1) {
    return Status::DataLoss("checkpoint count vector inconsistent");
  }
  cp->active = static_cast<size_t>(active);
  cp->saturated = static_cast<size_t>(saturated);
  uint64_t xs_count = 0;
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&xs_count));
  if (xs_count > num_xtuples) {
    return Status::DataLoss("checkpoint tracks more x-tuples than exist");
  }
  cp->xs.resize(xs_count);
  for (uint64_t i = 0; i < xs_count; ++i) {
    PsrEngine::Checkpoint::XEntry& x = cp->xs[i];
    int64_t xtuple = 0;
    UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&xtuple));
    if (xtuple < 0 || static_cast<uint64_t>(xtuple) >= num_xtuples) {
      return Status::DataLoss("checkpoint x-tuple id out of range");
    }
    x.xtuple = static_cast<XTupleId>(xtuple);
    uint8_t state = 0;
    UCLEAN_RETURN_IF_ERROR(r->GetU8(&state));
    // Only non-inactive x-tuples are checkpointed; 0 (inactive) in the
    // stream means the writer and this reader disagree about the format.
    if (state != static_cast<uint8_t>(psr_internal::XTupleState::kActive) &&
        state !=
            static_cast<uint8_t>(psr_internal::XTupleState::kSaturated)) {
      return Status::DataLoss("checkpoint x-tuple state out of range");
    }
    x.state = static_cast<psr_internal::XTupleState>(state);
    UCLEAN_RETURN_IF_ERROR(r->GetF64(&x.q));
  }
  return Status::OK();
}

Status SnapshotAccess::DecodeEngine(store::BinReader* r,
                                    const ExecOptions& exec,
                                    const ProbabilisticDatabase& db,
                                    PsrEngine* engine) {
  engine->exec_ = exec;
  UCLEAN_RETURN_IF_ERROR(r->GetBool(&engine->options_.early_termination));
  UCLEAN_RETURN_IF_ERROR(
      r->GetBool(&engine->options_.store_rank_probabilities));
  UCLEAN_RETURN_IF_ERROR(r->GetVarintArray(&engine->ladder_.ks));
  {
    Status ladder_ok = engine->ladder_.Validate();
    if (!ladder_ok.ok()) {
      return Status::DataLoss("snapshot ladder invalid: " +
                              ladder_ok.message());
    }
  }
  uint64_t num_rungs = 0;
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&num_rungs));
  if (num_rungs != engine->ladder_.size()) {
    return Status::DataLoss("engine output count does not match the ladder");
  }
  engine->outputs_.resize(num_rungs);
  for (uint64_t j = 0; j < num_rungs; ++j) {
    UCLEAN_RETURN_IF_ERROR(store::DecodePsrOutput(r, db.num_tuples(),
                                                  &engine->outputs_[j]));
    if (engine->outputs_[j].k != engine->ladder_[j]) {
      return Status::DataLoss("engine rung k does not match the ladder");
    }
  }

  // The logical state above is the file's; the EXECUTION of future
  // replays is the loader's. Mirrors PsrEngine::Create: resolve the
  // loader's kernel choice and initialize the scan scratch -- core_
  // content never survives across public entry points (every replay
  // restores a checkpoint first), so Init is the complete reconstruction.
  Result<const psr_internal::ScanKernel*> kernel =
      SelectScanKernel(exec.kernel);
  if (!kernel.ok()) return kernel.status();
  engine->core_.Init(db.num_xtuples(), *kernel);

  uint64_t num_checkpoints = 0;
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&num_checkpoints));
  if (num_checkpoints > r->remaining()) {
    return Status::DataLoss("truncated checkpoint list");
  }
  engine->checkpoints_.resize(num_checkpoints);
  size_t prev_pos = 0;
  for (uint64_t i = 0; i < num_checkpoints; ++i) {
    UCLEAN_RETURN_IF_ERROR(DecodeCheckpoint(r, db.num_xtuples(),
                                            db.num_tuples(),
                                            &engine->checkpoints_[i]));
    if (i > 0 && engine->checkpoints_[i].pos <= prev_pos) {
      return Status::DataLoss("checkpoint positions not ascending");
    }
    prev_pos = engine->checkpoints_[i].pos;
  }
  uint64_t interval = 0;
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&interval));
  if (interval == 0) {
    return Status::DataLoss("checkpoint interval must be positive");
  }
  engine->checkpoint_interval_ = static_cast<size_t>(interval);
  return Status::OK();
}

Status SnapshotAccess::DecodeSessions(store::BinReader* r,
                                      SessionPool* pool) {
  const size_t num_tuples = pool->base().num_tuples();
  const size_t num_xtuples = pool->base().num_xtuples();
  const size_t num_rungs = pool->engine_.num_rungs();

  uint64_t base_tp_count = 0;
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&base_tp_count));
  if (base_tp_count != num_rungs) {
    return Status::DataLoss("base TP ladder does not match the engine");
  }
  pool->base_tps_.resize(num_rungs);
  for (size_t j = 0; j < num_rungs; ++j) {
    UCLEAN_RETURN_IF_ERROR(store::DecodeTpOutput(r, num_tuples, num_xtuples,
                                                 &pool->base_tps_[j]));
  }

  uint64_t slot_count = 0;
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&slot_count));
  if (slot_count > r->remaining()) {
    return Status::DataLoss("truncated session slot table");
  }
  pool->sessions_.clear();
  pool->sessions_.reserve(slot_count);
  size_t open_count = 0;
  for (uint64_t id = 0; id < slot_count; ++id) {
    SessionPool::Session session;
    UCLEAN_RETURN_IF_ERROR(r->GetBool(&session.open));
    if (!session.open) {
      pool->sessions_.push_back(std::move(session));
      continue;
    }
    ++open_count;
    uint64_t outcome_count = 0;
    UCLEAN_RETURN_IF_ERROR(r->GetVarint(&outcome_count));
    if (outcome_count > r->remaining()) {
      return Status::DataLoss("truncated session outcome list");
    }
    // The overlay is rebuilt by replaying the recorded outcomes through
    // the same public mutation the live session used -- deterministic,
    // bitwise, and every derived index (tombstones, patches, divergence
    // rank) is re-derived instead of trusted from disk.
    session.overlay = DatabaseOverlay(pool->base_.get());
    for (uint64_t i = 0; i < outcome_count; ++i) {
      int64_t xtuple = 0;
      int64_t resolved_id = 0;
      UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&xtuple));
      UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&resolved_id));
      if (xtuple < 0 || static_cast<uint64_t>(xtuple) >= num_xtuples) {
        return Status::DataLoss("session outcome x-tuple out of range");
      }
      Result<ProbabilisticDatabase::CleanOutcomeDelta> delta =
          session.overlay.ApplyCleanOutcome(static_cast<XTupleId>(xtuple),
                                            resolved_id);
      if (!delta.ok()) {
        return Status::DataLoss("session outcome replay failed: " +
                                delta.status().message());
      }
    }
    bool has_state = false;
    UCLEAN_RETURN_IF_ERROR(r->GetBool(&has_state));
    if (has_state != (outcome_count > 0)) {
      return Status::DataLoss(
          "session state presence inconsistent with its outcomes");
    }
    if (has_state) {
      PsrEngine::SessionState& scan = session.scan;
      uint64_t output_count = 0;
      UCLEAN_RETURN_IF_ERROR(r->GetVarint(&output_count));
      if (output_count != num_rungs) {
        return Status::DataLoss("session output count mismatch");
      }
      scan.outputs_.resize(num_rungs);
      for (size_t j = 0; j < num_rungs; ++j) {
        UCLEAN_RETURN_IF_ERROR(
            store::DecodePsrOutput(r, num_tuples, &scan.outputs_[j]));
      }
      uint64_t cp_count = 0;
      UCLEAN_RETURN_IF_ERROR(r->GetVarint(&cp_count));
      if (cp_count > r->remaining()) {
        return Status::DataLoss("truncated session checkpoint list");
      }
      scan.checkpoints_.resize(cp_count);
      size_t prev_pos = 0;
      for (uint64_t i = 0; i < cp_count; ++i) {
        UCLEAN_RETURN_IF_ERROR(DecodeCheckpoint(r, num_xtuples, num_tuples,
                                                &scan.checkpoints_[i]));
        if (i > 0 && scan.checkpoints_[i].pos <= prev_pos) {
          return Status::DataLoss("session checkpoints not ascending");
        }
        prev_pos = scan.checkpoints_[i].pos;
      }
      uint64_t interval = 0;
      UCLEAN_RETURN_IF_ERROR(r->GetVarint(&interval));
      if (interval == 0) {
        return Status::DataLoss("session checkpoint interval must be "
                                "positive");
      }
      scan.checkpoint_interval_ = static_cast<size_t>(interval);
      scan.core_.Init(num_xtuples, pool->engine_.core_.kernel);
      uint64_t tp_count = 0;
      UCLEAN_RETURN_IF_ERROR(r->GetVarint(&tp_count));
      if (tp_count != num_rungs) {
        return Status::DataLoss("session TP ladder size mismatch");
      }
      session.tps.resize(num_rungs);
      for (size_t j = 0; j < num_rungs; ++j) {
        UCLEAN_RETURN_IF_ERROR(store::DecodeTpOutput(
            r, num_tuples, num_xtuples, &session.tps[j]));
      }
    } else {
      // Pristine session: its fork of the base scan is bit-reproducible
      // from the (already reconstructed) engine -- a memcpy, no scan.
      session.scan = pool->engine_.ForkSession();
      session.tps = pool->base_tps_;
    }
    session.pending_replay_begin = SessionPool::kNoPending;
    pool->sessions_.push_back(std::move(session));
  }

  UCLEAN_RETURN_IF_ERROR(r->GetVarintArray(&pool->free_slots_));
  std::vector<bool> freed(pool->sessions_.size(), false);
  for (size_t slot : pool->free_slots_) {
    if (slot >= pool->sessions_.size() || pool->sessions_[slot].open ||
        freed[slot]) {
      return Status::DataLoss("free-slot list inconsistent");
    }
    freed[slot] = true;
  }
  uint64_t num_open = 0;
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&num_open));
  if (num_open != open_count ||
      pool->free_slots_.size() != pool->sessions_.size() - open_count) {
    return Status::DataLoss("session accounting inconsistent");
  }
  pool->num_open_ = open_count;
  return Status::OK();
}

Status SnapshotAccess::DecodeCampaign(store::BinReader* r,
                                      store::CampaignSnapshot* campaign) {
  UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&campaign->budget));
  uint64_t session_count = 0;
  UCLEAN_RETURN_IF_ERROR(r->GetVarint(&session_count));
  if (session_count > r->remaining()) {
    return Status::DataLoss("truncated campaign session list");
  }
  campaign->sessions.resize(session_count);
  for (uint64_t s = 0; s < session_count; ++s) {
    store::CampaignSessionSnapshot& session = campaign->sessions[s];
    UCLEAN_RETURN_IF_ERROR(r->GetVarint(&session.session_id));
    UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&session.spent));
    UCLEAN_RETURN_IF_ERROR(r->GetZigzag(&session.leftover));
    UCLEAN_RETURN_IF_ERROR(r->GetVarint(&session.successes));
    UCLEAN_RETURN_IF_ERROR(r->GetVarint(&session.rounds));
    uint64_t log_count = 0;
    UCLEAN_RETURN_IF_ERROR(r->GetVarint(&log_count));
    if (log_count > r->remaining()) {
      return Status::DataLoss("truncated campaign probe log");
    }
    session.log.resize(log_count);
    for (uint64_t i = 0; i < log_count; ++i) {
      UCLEAN_RETURN_IF_ERROR(store::DecodeProbeRecord(r, &session.log[i]));
    }
    UCLEAN_RETURN_IF_ERROR(store::DecodeFaultStats(r, &session.faults));
    UCLEAN_RETURN_IF_ERROR(r->GetString(&session.rng_state));
    UCLEAN_RETURN_IF_ERROR(r->GetBool(&session.has_injector));
    if (session.has_injector) {
      UCLEAN_RETURN_IF_ERROR(
          store::DecodeInjectorState(r, &session.injector));
    }
  }
  return Status::OK();
}

Result<store::LoadedSnapshot> SnapshotAccess::Deserialize(
    std::string bytes, const SessionPool::Options& options) {
  Result<store::SnapshotFile> file =
      store::SnapshotFile::Parse(std::move(bytes));
  if (!file.ok()) return file.status();

  const uint32_t unknown_flags =
      file->feature_flags() & ~store::kKnownFeatureFlags;
  if (unknown_flags != 0) {
    return Status::DataLoss(
        "snapshot uses feature flags this reader does not understand (0x" +
        std::to_string(unknown_flags) + ")");
  }
  for (uint32_t id : {store::kSectionMeta, store::kSectionDatabase,
                      store::kSectionEngine, store::kSectionSessions}) {
    const store::SectionEntry* entry = file->Find(id);
    if (entry == nullptr) {
      return Status::DataLoss("snapshot is missing its '" +
                              std::string(store::SectionName(id)) +
                              "' section");
    }
    if (entry->version > store::kSectionVersion) {
      return Status::DataLoss(
          "section '" + std::string(store::SectionName(id)) + "' version " +
          std::to_string(entry->version) +
          " is newer than this reader supports");
    }
  }

  store::SnapshotMeta meta;
  UCLEAN_RETURN_IF_ERROR(
      DecodeMeta(file->payload(*file->Find(store::kSectionMeta)), &meta));

  Result<ExecOptions> resolved = ResolveExec(options.exec);
  if (!resolved.ok()) return resolved.status();

  SessionPool pool;
  pool.options_ = options;
  pool.options_.exec = std::move(resolved).value();
  pool.base_ = std::make_unique<ProbabilisticDatabase>();
  {
    store::BinReader r(
        file->payload(*file->Find(store::kSectionDatabase)));
    UCLEAN_RETURN_IF_ERROR(DecodeDatabase(&r, pool.base_.get()));
    UCLEAN_RETURN_IF_ERROR(r.ExpectEnd("database section"));
  }
  if (meta.num_tuples != pool.base_->num_tuples() ||
      meta.num_xtuples != pool.base_->num_xtuples()) {
    return Status::DataLoss("meta section disagrees with the database");
  }
  {
    store::BinReader r(file->payload(*file->Find(store::kSectionEngine)));
    UCLEAN_RETURN_IF_ERROR(
        DecodeEngine(&r, pool.options_.exec, *pool.base_, &pool.engine_));
    UCLEAN_RETURN_IF_ERROR(r.ExpectEnd("engine section"));
  }
  if (meta.ladder != pool.engine_.ladder().ks) {
    return Status::DataLoss("meta section disagrees with the engine ladder");
  }
  {
    store::BinReader r(file->payload(*file->Find(store::kSectionSessions)));
    UCLEAN_RETURN_IF_ERROR(DecodeSessions(&r, &pool));
    UCLEAN_RETURN_IF_ERROR(r.ExpectEnd("sessions section"));
  }
  if (meta.num_sessions != pool.num_open_) {
    return Status::DataLoss("meta section disagrees with the session count");
  }

  store::LoadedSnapshot loaded(std::move(pool));
  loaded.meta = std::move(meta);
  if ((file->feature_flags() & store::kFeatureCampaign) != 0) {
    const store::SectionEntry* entry = file->Find(store::kSectionCampaign);
    if (entry == nullptr) {
      return Status::DataLoss(
          "campaign feature flag set but no campaign section present");
    }
    if (entry->version > store::kSectionVersion) {
      return Status::DataLoss("campaign section is newer than this reader");
    }
    store::BinReader r(file->payload(*entry));
    UCLEAN_RETURN_IF_ERROR(DecodeCampaign(&r, &loaded.campaign));
    UCLEAN_RETURN_IF_ERROR(r.ExpectEnd("campaign section"));
    for (const store::CampaignSessionSnapshot& session :
         loaded.campaign.sessions) {
      if (!loaded.pool.is_open(
              static_cast<SessionPool::SessionId>(session.session_id))) {
        return Status::DataLoss(
            "campaign references a session that is not open");
      }
    }
    loaded.has_campaign = true;
  }
  return loaded;
}

// The warm-start tier's front door, declared on SessionPool so callers
// need no store headers.
Result<SessionPool> SessionPool::OpenFromSnapshot(const std::string& path,
                                                  const Options& options) {
  Result<store::LoadedSnapshot> loaded = store::ReadSnapshot(path, options);
  if (!loaded.ok()) return loaded.status();
  return std::move(loaded->pool);
}

}  // namespace uclean
