// CRC32 (IEEE 802.3, polynomial 0xEDB88320, reflected) for the snapshot
// store's per-section checksums.
//
// Slice-by-8 table lookup: eight bytes are folded per iteration, which
// keeps the checksum pass well under the snapshot reader's deserialize
// cost (a byte-at-a-time CRC over a multi-megabyte warm-start snapshot
// would rival the parse itself). The tables are built once, lazily, under
// C++11 static-initialization guarantees -- no global constructors, no
// thread hazards.
//
// Reference vector (the standard "check" value): Crc32 over the ASCII
// bytes "123456789" must equal 0xCBF43926 (tests/store_test.cc pins it).

#ifndef UCLEAN_STORE_CRC32_H_
#define UCLEAN_STORE_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace uclean {
namespace store {

namespace crc_internal {

struct Crc32Tables {
  // table[s][b]: the CRC contribution of byte b seen s positions deep in
  // an 8-byte slice.
  std::array<std::array<uint32_t, 256>, 8> table;

  Crc32Tables() {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      table[0][b] = crc;
    }
    for (size_t s = 1; s < 8; ++s) {
      for (uint32_t b = 0; b < 256; ++b) {
        const uint32_t prev = table[s - 1][b];
        table[s][b] = (prev >> 8) ^ table[0][prev & 0xFFu];
      }
    }
  }
};

inline const Crc32Tables& Tables() {
  static const Crc32Tables tables;
  return tables;
}

}  // namespace crc_internal

/// Extends a running CRC32 (pass the previous return value as `crc`;
/// start with 0) over `size` bytes at `data`. Equivalent to zlib's
/// crc32() contract: the pre/post inversion lives inside, so chunked and
/// one-shot computations agree.
inline uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const auto& t = crc_internal::Tables().table;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (size >= 8) {
    // Fold the low CRC word through the first four bytes, then the next
    // four bytes independently -- byte-order free (no word loads).
    const uint32_t x = crc ^ (static_cast<uint32_t>(p[0]) |
                              static_cast<uint32_t>(p[1]) << 8 |
                              static_cast<uint32_t>(p[2]) << 16 |
                              static_cast<uint32_t>(p[3]) << 24);
    crc = t[7][x & 0xFFu] ^ t[6][(x >> 8) & 0xFFu] ^ t[5][(x >> 16) & 0xFFu] ^
          t[4][x >> 24] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p) & 0xFFu];
    ++p;
    --size;
  }
  return ~crc;
}

/// One-shot CRC32 of a buffer.
inline uint32_t Crc32(const void* data, size_t size) {
  return Crc32Update(0, data, size);
}

}  // namespace store
}  // namespace uclean

#endif  // UCLEAN_STORE_CRC32_H_
