// Compute kernels for the PSR scan core (rank/psr_scan_core.h): the
// element-wise arithmetic of the three hot loops -- the Bernoulli
// multiply-in (`fold_factor`, shared by Advance and RebuildCounts), the
// stable divide-out pair (`divide_out_fwd` / `divide_out_bwd`, used by
// BuildExclusion), and the emission passes (`scale` for the per-rank
// rho buffer, `update_argmax` for the U-kRanks trackers) -- packaged as
// a table of function pointers so the scan can be retargeted at runtime
// between a portable scalar path and an AVX2 path.
//
// THE BITWISE CONTRACT. Every kernel computes the exact same IEEE-754
// double operation sequence per element, so scalar and AVX2 outputs are
// bitwise equal -- not merely close -- for every input. This is what
// lets the rest of the library ignore the kernel choice entirely: the
// engine's checkpoints, replays, pooled-session overlays and shard
// boundary hand-offs all rely on different drivers reproducing identical
// state, and a kernel that drifted by even one ulp would break those
// guarantees. Concretely:
//
//  * `fold_factor` / `scale` / `update_argmax` are element-wise maps
//    with no loop-carried rounding: each output lane is the same
//    mul/add/compare sequence in both paths (AVX2 packs four lanes per
//    instruction; per-lane IEEE semantics are identical to scalar).
//    The kernel translation units are compiled with -ffp-contract=off
//    and without -mfma, so no path ever fuses a multiply-add the other
//    path rounds in two steps.
//  * The divide-out recurrences are GENUINELY SEQUENTIAL: each element
//    is a mul+sub+div chain on its predecessor, and any lane-parallel
//    evaluation would necessarily re-associate those roundings --
//    bitwise-exact vectorization is provably impossible there. Both
//    kernels therefore run the SAME scalar divide-out code (the AVX2
//    table points at the scalar functions), which keeps the contract
//    exact instead of falling back to a tolerance gate.
//
// Runtime dispatch: the AVX2 path is compiled into its own translation
// unit (kernel_avx2.cc) with -mavx2 applied to that file only -- the
// library itself carries no -march requirement and stays runnable on
// any x86-64 (or non-x86) host. SelectScanKernel picks the table from
// an exec-layer KernelKind: kAuto probes the CPU once (and honors the
// UCLEAN_DISABLE_AVX2 environment variable, the forced-scalar CI leg's
// switch); kScalar and kAvx2 force a specific path, with kAvx2 failing
// fast when the host cannot run it. An explicit kAvx2 request ignores
// the environment switch so equivalence tests can still pit both
// kernels against each other under a forced-scalar environment.

#ifndef UCLEAN_RANK_KERNEL_H_
#define UCLEAN_RANK_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "common/status.h"
#include "exec/thread_pool.h"

namespace uclean {
namespace psr_internal {

/// Minimal C++17 aligned allocator: the scan core's structure-of-arrays
/// buffers are 32-byte aligned so the AVX2 kernels start on a full
/// vector lane (unaligned intrinsics are used throughout, so alignment
/// is a performance property, never a correctness one).
template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// The scan core's double buffers (count vector, exclusion scratch,
/// emission scratch): contiguous, 32-byte aligned, value-semantics like
/// std::vector<double>.
using AlignedBuf =
    std::vector<double, AlignedAllocator<double, 32>>;

/// One retargetable kernel table. All functions tolerate the degenerate
/// sizes the scan produces (top >= 1 for fold, top >= 1 for divide-out,
/// n == 0 for the emission ops).
struct ScanKernel {
  /// The concrete kind this table implements (never kAuto) and its
  /// display name ("scalar" / "avx2", announced by the CLI).
  KernelKind kind;
  const char* name;

  /// Multiplies a Bernoulli factor (success mass q) into a count vector:
  /// writes c[0..top] from base[0..top-1], where
  ///     c[top] = base[top-1] * q
  ///     c[j]   = base[j] * (1-q) + base[j-1] * q    (j = top-1 .. 1)
  ///     c[0]   = base[0] * (1-q)
  /// Alias-safe for c == base (writes descend; every read of an index
  /// happens before any write at or below it).
  void (*fold_factor)(double* c, const double* base, std::size_t top,
                      double q);

  /// Stable divide-out, forward direction (for q <= 1/2): writes
  /// excl[0..top-1] from c[0..top-1] via
  ///     excl[0] = c[0] / (1-q)
  ///     excl[j] = max(0, (c[j] - excl[j-1] * q) / (1-q))
  /// Sequential by construction; identical scalar code in every kernel.
  void (*divide_out_fwd)(double* excl, const double* c, std::size_t top,
                         double q);

  /// Stable divide-out, backward direction (for q > 1/2): writes
  /// excl[0..top-1] from c[1..top] via the exact top seed
  ///     excl[top-1] = c[top] / q
  ///     excl[j-1]   = max(0, (c[j] - (1-q) * excl[j]) / q)
  /// Sequential by construction; identical scalar code in every kernel.
  void (*divide_out_bwd)(double* excl, const double* c, std::size_t top,
                         double q);

  /// dst[i] = e * src[i] for i in [0, n). dst and src must not overlap.
  void (*scale)(double* dst, const double* src, std::size_t n, double e);

  /// Element-wise argmax update for the U-kRanks trackers: for each i in
  /// [0, n), when rho[i] > best_prob[i] (strict), set best_prob[i] =
  /// rho[i] and best_index[i] = rank_index.
  void (*update_argmax)(double* best_prob, int32_t* best_index,
                        const double* rho, std::size_t n, int32_t rank_index);

  /// Fused emission segment: dst[i] = e * src[i] for i in [0, n) with
  /// the sequential prefix accumulation p += dst[i] folded in (ascending
  /// index order -- the prefix is part of the arithmetic lineage and
  /// must never re-associate); returns the updated prefix. When
  /// best_prob is non-null, the update_argmax pass over the same window
  /// is folded in as well (best_index, rank_index as above). The scalar
  /// kernel runs everything in ONE sweep -- which is what keeps the
  /// structure-of-arrays scan as fast as the historical fused emission
  /// loop on the scalar path -- while the AVX2 kernel runs a vectorized
  /// scale, the same sequential accumulation, and a vectorized argmax:
  /// different pass structure, identical per-element arithmetic,
  /// bitwise-equal results.
  double (*emit_segment)(double* dst, const double* src, std::size_t n,
                         double e, double p, double* best_prob,
                         int32_t* best_index, int32_t rank_index);
};

/// The shared scalar element ops (defined in kernel.cc; the AVX2 table
/// reuses the divide-out pair verbatim -- see the header note on why
/// the divide-out cannot vectorize bitwise).
void FoldFactorScalar(double* c, const double* base, std::size_t top,
                      double q);
void DivideOutFwdScalar(double* excl, const double* c, std::size_t top,
                        double q);
void DivideOutBwdScalar(double* excl, const double* c, std::size_t top,
                        double q);

/// The portable scalar kernel (always available).
const ScanKernel& ScalarScanKernel();

/// The AVX2 kernel, or null when it cannot run here (not compiled in,
/// or the CPU lacks AVX2). Deliberately IGNORES UCLEAN_DISABLE_AVX2 so
/// equivalence tests can exercise both kernels regardless of the
/// environment; use SelectScanKernel(KernelKind::kAuto) for the
/// production choice.
const ScanKernel* Avx2ScanKernelOrNull();

/// What kAuto resolves to right now (scalar, or AVX2 when supported and
/// not disabled via the environment). Never null.
const ScanKernel& DefaultScanKernel();

/// Defined in kernel_avx2.cc: the raw AVX2 table when that translation
/// unit was compiled with AVX2 support, null otherwise. Internal --
/// callers want Avx2ScanKernelOrNull, which adds the CPU probe.
const ScanKernel* Avx2ScanKernelImpl();

}  // namespace psr_internal

/// True when the AVX2 kernel was compiled into this binary.
bool Avx2CompiledIn();

/// True when the AVX2 kernel is compiled in AND this CPU reports AVX2.
bool Avx2Supported();

/// True when the UCLEAN_DISABLE_AVX2 environment variable is set to a
/// truthy value (anything but "", "0", "off", "OFF", "false"). Read on
/// every call -- never cached -- so tests can toggle it.
bool Avx2Disabled();

/// "auto" / "scalar" / "avx2".
const char* KernelKindName(KernelKind kind);

/// Resolves a KernelKind to a concrete kernel table. kAuto returns the
/// best kernel this host can run (honoring UCLEAN_DISABLE_AVX2);
/// kScalar always succeeds; kAvx2 fails with InvalidArgument when the
/// AVX2 path is unavailable on this host.
Result<const psr_internal::ScanKernel*> SelectScanKernel(KernelKind kind);

}  // namespace uclean

#endif  // UCLEAN_RANK_KERNEL_H_
