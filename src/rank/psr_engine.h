// PsrEngine: incrementally maintained PSR state for cleaning sessions.
//
// A successful pclean collapses one x-tuple to a certain tuple and leaves
// every other tuple's rank unchanged (ProbabilisticDatabase::
// ApplyCleanOutcome). The engine keeps the Poisson-binomial scan state of
// psr_scan_core.h checkpointed at intervals along the rank order; applying
// a clean restores the last checkpoint at or before the first changed rank
// and replays only the suffix of the scan, so a round of cleans costs
// O(m + suffix * (k + T)) instead of a full database rebuild plus an O(kn)
// rescan. Replayed results are bitwise identical to running ComputePsr
// from scratch over the same (tombstoned) database: the restored state is
// the exact state a fresh scan reaches at the checkpoint (the prefix is
// untouched by the clean), and the suffix executes the same arithmetic.
//
// Aggregate caveats after a replay:
//  * num_nonzero and scan_end are always maintained.
//  * best_rank_prob / best_rank_index are running argmaxes over the whole
//    scan; after a replay they are recomputed from the stored rank matrix
//    when PsrOptions::store_rank_probabilities is set, and reset to the
//    empty answer (0 / -1) otherwise -- cleaning consumers (TP, planners)
//    never read them, query serving should keep the matrix on.
//
// Lifecycle: Create -> [ApplyCleanOutcome on the db]* -> Replay, repeated;
// interleave ApplyCompaction whenever the database compacts its
// tombstones. The engine never owns the database; the caller (normally
// CleaningSession) guarantees the db passed to Replay is the one the
// engine last saw, mutated only through ApplyCleanOutcome.

#ifndef UCLEAN_RANK_PSR_ENGINE_H_
#define UCLEAN_RANK_PSR_ENGINE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "model/database.h"
#include "rank/psr.h"
#include "rank/psr_scan_core.h"

namespace uclean {

class PsrEngine {
 public:
  /// An empty engine; assign from Create before use.
  PsrEngine() = default;

  /// Runs the initial full scan over `db` and snapshots checkpoints.
  /// `checkpoint_interval` is the initial snapshot cadence in live tuples
  /// (smaller = cheaper replays, more snapshot memory; it doubles whenever
  /// the checkpoint count would exceed kMaxCheckpoints). Fails with
  /// InvalidArgument when k == 0 or the interval is 0.
  static Result<PsrEngine> Create(
      const ProbabilisticDatabase& db, size_t k,
      const PsrOptions& options = {},
      size_t checkpoint_interval = kInitialCheckpointInterval);

  /// The maintained PSR state (valid after Create and after every Replay).
  const PsrOutput& output() const { return out_; }

  size_t k() const { return out_.k; }

  /// Re-derives the PSR state after one or more ApplyCleanOutcome calls on
  /// `db`. `first_changed_rank` is the minimum CleanOutcomeDelta::
  /// first_changed_rank over the batch; pass num_tuples() for a batch of
  /// no-ops (the call is then free). Only the scan suffix from the last
  /// checkpoint at or before that rank is replayed.
  Status Replay(const ProbabilisticDatabase& db, size_t first_changed_rank);

  /// Drops the checkpoints invalidated by cleans whose shallowest change
  /// is `first_changed_rank` (their snapshots were taken below it and
  /// include pre-clean state). Replay does this implicitly; call it
  /// explicitly BEFORE compacting the database, because compaction can
  /// remap a stale checkpoint onto the replay boundary itself when every
  /// slot in between was tombstoned.
  void InvalidateBelow(size_t first_changed_rank);

  /// Rewrites all rank indices held by the engine through the old-to-new
  /// map returned by ProbabilisticDatabase::CompactTombstones. `db` is the
  /// already-compacted database.
  Status ApplyCompaction(const ProbabilisticDatabase& db,
                         const std::vector<int32_t>& old_to_new);

  /// Checkpoint cadence: every `checkpoint_interval_` live tuples, thinned
  /// (drop every other one, double the interval) when the count exceeds
  /// kMaxCheckpoints so memory stays O(kMaxCheckpoints * m).
  static constexpr size_t kInitialCheckpointInterval = 64;
  static constexpr size_t kMaxCheckpoints = 160;

 private:
  /// Scan state snapshot taken just before processing rank `pos`.
  struct Checkpoint {
    size_t pos = 0;
    std::vector<double> c;
    size_t active = 0;
    size_t saturated = 0;
    struct XEntry {
      XTupleId xtuple;
      psr_internal::XTupleState state;
      double q;
    };
    std::vector<XEntry> xs;  // every non-inactive x-tuple
  };

  void TakeCheckpoint(size_t pos);
  void RestoreCheckpoint(const Checkpoint& cp);

  /// Zeroes output from `begin` on and runs the scan loop to its stop
  /// point, taking fresh checkpoints along the way.
  void RunScan(const ProbabilisticDatabase& db, size_t begin);

  /// Recomputes num_nonzero and (from the matrix, when stored) the
  /// per-rank argmaxes after a scan.
  void FinalizeAggregates(const ProbabilisticDatabase& db, bool from_rank_0);

  PsrOptions options_;
  PsrOutput out_;
  psr_internal::ScanCore core_;
  std::vector<Checkpoint> checkpoints_;
  size_t checkpoint_interval_ = kInitialCheckpointInterval;
};

}  // namespace uclean

#endif  // UCLEAN_RANK_PSR_ENGINE_H_
