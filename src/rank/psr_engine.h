// PsrEngine: incrementally maintained PSR state for cleaning sessions,
// serving a whole ladder of k values from one shared scan.
//
// A successful pclean collapses one x-tuple to a certain tuple and leaves
// every other tuple's rank unchanged (ProbabilisticDatabase::
// ApplyCleanOutcome). The engine keeps the Poisson-binomial scan state of
// psr_scan_core.h checkpointed at intervals along the rank order; applying
// a clean restores the last checkpoint at or before the first changed rank
// and replays only the suffix of the scan, so a round of cleans costs
// O(m + suffix * (k_max + T)) instead of a full database rebuild plus an
// O(k n) rescan per served k. Replayed results are bitwise identical to
// running ComputePsr from scratch for each rung over the same
// (tombstoned) database: the restored state is the exact state a fresh
// scan reaches at the checkpoint (the prefix is untouched by the clean),
// and the suffix executes the same arithmetic.
//
// Multi-k: the scan state (count vector, per-x-tuple masses) is
// k-independent, so ONE checkpoint set serves every rung; only the
// emission cursors differ per k. Each rung stops at its own Lemma-2
// point (scan_end is ascending in k), and a replay is suffix-only PER
// RUNG: rungs whose scan already stopped at or before the replay
// boundary are left untouched -- a clean below a rung's stop point
// cannot change its output -- while deeper rungs re-emit only their own
// reachable suffix.
//
// Aggregate caveats after a replay:
//  * num_nonzero and scan_end are always maintained, per rung.
//  * best_rank_prob / best_rank_index are running argmaxes over the whole
//    scan; after a replay they are recomputed from the stored rank matrix
//    when PsrOptions::store_rank_probabilities is set, and reset to the
//    empty answer (0 / -1) otherwise -- cleaning consumers (TP, planners)
//    never read them, query serving should keep the matrix on.
//
// Lifecycle: Create -> [ApplyCleanOutcome on the db]* -> Replay, repeated;
// interleave ApplyCompaction whenever the database compacts its
// tombstones. The engine never owns the database; the caller (normally
// CleaningSession) guarantees the db passed to Replay is the one the
// engine last saw, mutated only through ApplyCleanOutcome.

#ifndef UCLEAN_RANK_PSR_ENGINE_H_
#define UCLEAN_RANK_PSR_ENGINE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "model/database.h"
#include "rank/psr.h"
#include "rank/psr_scan_core.h"

namespace uclean {

class PsrEngine {
 public:
  /// An empty engine; assign from Create before use.
  PsrEngine() = default;

  /// Runs the initial full scan over `db` and snapshots checkpoints.
  /// `checkpoint_interval` is the initial snapshot cadence in live tuples
  /// (smaller = cheaper replays, more snapshot memory; it doubles whenever
  /// the checkpoint count would exceed kMaxCheckpoints). Fails with
  /// InvalidArgument when k == 0 or the interval is 0.
  static Result<PsrEngine> Create(
      const ProbabilisticDatabase& db, size_t k,
      const PsrOptions& options = {},
      size_t checkpoint_interval = kInitialCheckpointInterval);

  /// Ladder form: one shared scan maintains a complete PsrOutput per rung
  /// of `ladder` (ascending k). Fails with InvalidArgument when the ladder
  /// is not strictly ascending and positive or the interval is 0.
  static Result<PsrEngine> Create(
      const ProbabilisticDatabase& db, const KLadder& ladder,
      const PsrOptions& options = {},
      size_t checkpoint_interval = kInitialCheckpointInterval);

  /// The ladder this engine serves (ascending).
  const KLadder& ladder() const { return ladder_; }
  size_t num_rungs() const { return outputs_.size(); }

  /// The maintained PSR state of rung `rung` (valid after Create and after
  /// every Replay).
  const PsrOutput& output(size_t rung) const {
    UCLEAN_DCHECK(rung < outputs_.size());
    return outputs_[rung];
  }
  const std::vector<PsrOutput>& outputs() const { return outputs_; }

  /// Single-k convenience: the first rung (the only one for engines built
  /// through the single-k Create).
  const PsrOutput& output() const { return outputs_.front(); }

  /// The largest served k (the only one for single-k engines).
  size_t k() const { return ladder_.max_k(); }

  /// Re-derives the PSR state after one or more ApplyCleanOutcome calls on
  /// `db`. `first_changed_rank` is the minimum CleanOutcomeDelta::
  /// first_changed_rank over the batch; pass num_tuples() for a batch of
  /// no-ops (the call is then free). Only the scan suffix from the last
  /// checkpoint at or before that rank is replayed, and only for the rungs
  /// whose own scan reaches past it.
  Status Replay(const ProbabilisticDatabase& db, size_t first_changed_rank);

  /// Drops the checkpoints invalidated by cleans whose shallowest change
  /// is `first_changed_rank` (their snapshots were taken below it and
  /// include pre-clean state). Replay does this implicitly; call it
  /// explicitly BEFORE compacting the database, because compaction can
  /// remap a stale checkpoint onto the replay boundary itself when every
  /// slot in between was tombstoned.
  void InvalidateBelow(size_t first_changed_rank);

  /// Rewrites all rank indices held by the engine through the old-to-new
  /// map returned by ProbabilisticDatabase::CompactTombstones. `db` is the
  /// already-compacted database.
  Status ApplyCompaction(const ProbabilisticDatabase& db,
                         const std::vector<int32_t>& old_to_new);

  /// Checkpoint cadence: every `checkpoint_interval_` live tuples, thinned
  /// (drop every other one, double the interval) when the count exceeds
  /// kMaxCheckpoints so memory stays O(kMaxCheckpoints * m).
  static constexpr size_t kInitialCheckpointInterval = 64;
  static constexpr size_t kMaxCheckpoints = 160;

 private:
  /// Scan state snapshot taken just before processing rank `pos`. The
  /// snapshot is k-independent, so one checkpoint set serves every rung.
  struct Checkpoint {
    size_t pos = 0;
    std::vector<double> c;
    size_t active = 0;
    size_t saturated = 0;
    struct XEntry {
      XTupleId xtuple;
      psr_internal::XTupleState state;
      double q;
    };
    std::vector<XEntry> xs;  // every non-inactive x-tuple
  };

  void TakeCheckpoint(size_t pos);
  void RestoreCheckpoint(const Checkpoint& cp);

  /// Zeroes output from `begin` on and runs the scan loop to its stop
  /// point, taking fresh checkpoints along the way. Rungs whose scan had
  /// already stopped at or before `begin` are left untouched.
  void RunScan(const ProbabilisticDatabase& db, size_t begin);

  /// Recomputes num_nonzero and (from the matrix, when stored) the
  /// per-rank argmaxes after a scan, for every rung that re-emitted.
  void FinalizeAggregates(const ProbabilisticDatabase& db, size_t begin,
                          bool from_rank_0);

  PsrOptions options_;
  KLadder ladder_;
  std::vector<PsrOutput> outputs_;  // one per rung, ascending k
  psr_internal::ScanCore core_;
  std::vector<Checkpoint> checkpoints_;
  size_t checkpoint_interval_ = kInitialCheckpointInterval;
};

}  // namespace uclean

#endif  // UCLEAN_RANK_PSR_ENGINE_H_
