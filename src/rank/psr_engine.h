// PsrEngine: incrementally maintained PSR state for cleaning sessions,
// serving a whole ladder of k values from one shared scan.
//
// A successful pclean collapses one x-tuple to a certain tuple and leaves
// every other tuple's rank unchanged (ProbabilisticDatabase::
// ApplyCleanOutcome). The engine keeps the Poisson-binomial scan state of
// psr_scan_core.h checkpointed at intervals along the rank order; applying
// a clean restores the last checkpoint at or before the first changed rank
// and replays only the suffix of the scan, so a round of cleans costs
// O(m + suffix * (k_max + T)) instead of a full database rebuild plus an
// O(k n) rescan per served k. Replayed results are bitwise identical to
// running ComputePsr from scratch for each rung over the same
// (tombstoned) database: the restored state is the exact state a fresh
// scan reaches at the checkpoint (the prefix is untouched by the clean),
// and the suffix executes the same arithmetic.
//
// Multi-k: the scan state (count vector, per-x-tuple masses) is
// k-independent, so ONE checkpoint set serves every rung; only the
// emission cursors differ per k. Each rung stops at its own Lemma-2
// point (scan_end is ascending in k), and a replay is suffix-only PER
// RUNG: rungs whose scan already stopped at or before the replay
// boundary are left untouched -- a clean below a rung's stop point
// cannot change its output -- while deeper rungs re-emit only their own
// reachable suffix.
//
// Multi-session: the same checkpoints are additionally k-independent of
// WHO is asking -- a snapshot at rank p depends only on the tuples above
// p. A SessionPool therefore forks one SessionState per concurrent
// session (a copy of the base outputs, no scan) and replays each
// session's DatabaseOverlay through ReplaySession: the shared base
// checkpoints cover the prefix above the session's own divergence rank
// (where its overlay still equals the base), and the session's private
// checkpoint list covers its post-divergence suffix, exactly the way the
// base list covers the single-session case. The shared checkpoints and
// base outputs are never written after Create (Replay is the
// single-session path and must not be mixed with ForkSession use), so any
// number of interleaved sessions can replay against them.
//
// Aggregate caveats after a replay:
//  * num_nonzero and scan_end are always maintained, per rung.
//  * best_rank_prob / best_rank_index are running argmaxes over the whole
//    scan; after a replay they are recomputed from the stored rank matrix
//    when PsrOptions::store_rank_probabilities is set, and reset to the
//    empty answer (0 / -1) otherwise -- cleaning consumers (TP, planners)
//    never read them, query serving should keep the matrix on.
//
// Parallel execution: Create with ExecOptions{num_threads > 1} and every
// scan the engine runs -- the initial full scan, Replay suffixes,
// ReplaySession suffixes -- is sharded by rank range over the shared
// ThreadPool (rank/sharded_scan.h) whenever the range justifies it, with
// per-rung argmax recomputation fanned over the same pool. Results agree
// with the sequential path to 1e-12 (bitwise wherever the shard boundary
// state comes from a checkpoint; see sharded_scan.h on rebuilt
// boundaries); checkpoint PLACEMENT may differ between the two paths,
// which changes replay cost, never replay results. Scans triggered from
// inside a pool worker (nested parallelism, e.g. SessionPool::RefreshAll
// fanning sessions) degrade to the sequential loop on that worker.
//
// Lifecycle: Create -> [ApplyCleanOutcome on the db]* -> Replay, repeated;
// interleave ApplyCompaction whenever the database compacts its
// tombstones. The engine never owns the database; the caller (normally
// CleaningSession) guarantees the db passed to Replay is the one the
// engine last saw, mutated only through ApplyCleanOutcome.
//
// Threading contract, per entry point:
//  * Replay / ApplyCompaction / InvalidateBelow MUTATE the engine:
//    serialized caller, one thread at a time, never concurrently with
//    any other engine call. Enforced as a common/serial_gate.h
//    capability on gate_: each mutator opens a ScopedSerialCall window
//    (overlap aborts in debug builds) and the Clang -Wthread-safety
//    build rejects reentrant entry statically.
//  * After Create, the shared state (checkpoints, base outputs, ladder)
//    is read-only for the pooled path: ForkSession and ReplaySession are
//    const and safe to call CONCURRENTLY from multiple threads as long
//    as (a) each concurrent ReplaySession targets a DISTINCT
//    (overlay, SessionState) pair and (b) no mutating call runs
//    meanwhile. This is exactly SessionPool::RefreshAll's fan-out: many
//    sessions replay on pool workers against one frozen engine.
//  * Any scan-running call may itself execute ON a pool worker; its
//    nested sharded scan then degrades to the sequential loop inline
//    (exec/thread_pool.h's nesting rule), never deadlocking the pool.

#ifndef UCLEAN_RANK_PSR_ENGINE_H_
#define UCLEAN_RANK_PSR_ENGINE_H_

#include <cstdint>
#include <vector>

#include "common/serial_gate.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "exec/thread_pool.h"
#include "model/database.h"
#include "model/database_overlay.h"
#include "rank/psr.h"
#include "rank/psr_scan_core.h"

namespace uclean {

class PsrEngine {
 private:
  /// Scan state snapshot taken just before processing rank `pos`. The
  /// snapshot is k-independent, so one checkpoint set serves every rung;
  /// it is also session-independent above the snapshotting session's own
  /// changes, which is what lets pooled sessions share the base set.
  struct Checkpoint {
    size_t pos = 0;
    /// Live-tuple ordinal of `pos` (count of live tuples above it):
    /// anchors the count-refresh grid across replays (see
    /// psr_scan_core.h). Invariant under compaction by construction.
    size_t live = 0;
    std::vector<double> c;
    size_t active = 0;
    size_t saturated = 0;
    struct XEntry {
      XTupleId xtuple;
      psr_internal::XTupleState state;
      double q;
    };
    std::vector<XEntry> xs;  // every non-inactive x-tuple
  };

 public:
  /// An empty engine; assign from Create before use.
  PsrEngine() = default;

  /// Runs the initial full scan over `db` and snapshots checkpoints at
  /// `request.checkpoint_interval` live tuples (smaller = cheaper
  /// replays, more snapshot memory; it doubles whenever the checkpoint
  /// count would exceed kMaxCheckpoints). `request.exec` selects the
  /// execution mode -- thread count AND compute kernel -- for this and
  /// every later scan (sequential by default; see the header note on
  /// parallel execution). Fails with InvalidArgument when the request,
  /// its exec options or its kernel choice do not validate, or when
  /// request.overlay is set: engines scan base databases and serve
  /// session overlays through ForkSession/ReplaySession instead.
  static Result<PsrEngine> Create(const ProbabilisticDatabase& db,
                                  const ScanRequest& request);

  /// The ladder this engine serves (ascending).
  const KLadder& ladder() const { return ladder_; }
  size_t num_rungs() const { return outputs_.size(); }

  /// The maintained PSR state of rung `rung` (valid after Create and after
  /// every Replay).
  const PsrOutput& output(size_t rung) const {
    UCLEAN_DCHECK(rung < outputs_.size());
    return outputs_[rung];
  }
  const std::vector<PsrOutput>& outputs() const { return outputs_; }

  /// Single-k convenience: the first rung (the only one for engines built
  /// through the single-k Create).
  const PsrOutput& output() const { return outputs_.front(); }

  /// The largest served k (the only one for single-k engines).
  size_t k() const { return ladder_.max_k(); }

  /// Re-derives the PSR state after one or more ApplyCleanOutcome calls on
  /// `db`. `first_changed_rank` is the minimum CleanOutcomeDelta::
  /// first_changed_rank over the batch; pass num_tuples() for a batch of
  /// no-ops (the call is then free). Only the scan suffix from the last
  /// checkpoint at or before that rank is replayed, and only for the rungs
  /// whose own scan reaches past it.
  Status Replay(const ProbabilisticDatabase& db, size_t first_changed_rank)
      UCLEAN_EXCLUDES(gate_);

  /// Drops the checkpoints invalidated by cleans whose shallowest change
  /// is `first_changed_rank` (their snapshots were taken below it and
  /// include pre-clean state). Replay does this implicitly; call it
  /// explicitly BEFORE compacting the database, because compaction can
  /// remap a stale checkpoint onto the replay boundary itself when every
  /// slot in between was tombstoned.
  void InvalidateBelow(size_t first_changed_rank) UCLEAN_EXCLUDES(gate_);

  /// Rewrites all rank indices held by the engine through the old-to-new
  /// map returned by ProbabilisticDatabase::CompactTombstones. `db` is the
  /// already-compacted database.
  Status ApplyCompaction(const ProbabilisticDatabase& db,
                         const std::vector<int32_t>& old_to_new)
      UCLEAN_EXCLUDES(gate_);

  /// The current checkpoint ranks, ascending (introspection: replay-cost
  /// diagnostics and the shard cut-point equivalence tests restart scans
  /// at every one of these).
  std::vector<size_t> checkpoint_positions() const {
    std::vector<size_t> positions;
    positions.reserve(checkpoints_.size());
    for (const Checkpoint& cp : checkpoints_) positions.push_back(cp.pos);
    return positions;
  }

  /// The execution options the engine was created with (the pool is
  /// shared with TP fan-out and session-refresh consumers).
  const ExecOptions& exec() const { return exec_; }

  // ----- pooled sessions over the shared scan -----

  /// One pooled session's scan state: a complete per-rung PsrOutput set
  /// plus the session's private post-divergence checkpoints. Forked from
  /// the engine, advanced only through ReplaySession. The session's
  /// divergence rank -- the bound on shared-checkpoint validity -- is
  /// read from its overlay, the single source of truth for what the
  /// session changed.
  class SessionState {
   public:
    SessionState() = default;

    const PsrOutput& output(size_t rung) const {
      UCLEAN_DCHECK(rung < outputs_.size());
      return outputs_[rung];
    }
    const std::vector<PsrOutput>& outputs() const { return outputs_; }

   private:
    friend class PsrEngine;
    friend class SnapshotAccess;  // store/snapshot.h persistence
    std::vector<PsrOutput> outputs_;       // one per rung, ascending k
    std::vector<Checkpoint> checkpoints_;  // private suffix snapshots
    psr_internal::ScanCore core_;          // session replay scratch
    size_t checkpoint_interval_ = kInitialCheckpointInterval;
  };

  /// Forks a pooled session's state: a copy of the base outputs (O(rungs
  /// * n) memcpy, NO scan -- this is why opening a pooled session is
  /// orders of magnitude cheaper than starting a dedicated one).
  SessionState ForkSession() const;

  /// Session form of Replay: re-derives `state` after ApplyCleanOutcome
  /// calls on the session's overlay `db` (a view of the database this
  /// engine was created from). Restores the deepest checkpoint still
  /// valid for the session -- its own post-divergence snapshot when one
  /// survives the change, the last shared base snapshot at or above the
  /// overlay's divergence_rank() otherwise -- and replays only the
  /// suffix, taking fresh private checkpoints along the way. Shared
  /// engine state is untouched, so interleaved sessions never observe
  /// each other.
  Status ReplaySession(const DatabaseOverlay& db, size_t first_changed_rank,
                       SessionState* state) const;

  /// Checkpoint cadence: every `checkpoint_interval_` live tuples, thinned
  /// (drop every other one, double the interval) when the count exceeds
  /// kMaxCheckpoints so memory stays O(kMaxCheckpoints * m). The default
  /// cadence is the request struct's, spelled once for the whole library.
  static constexpr size_t kInitialCheckpointInterval =
      ScanRequest::kDefaultCheckpointInterval;
  static constexpr size_t kMaxCheckpoints = 160;

 private:
  // The snapshot store (store/snapshot.h) serializes the full engine
  // state -- checkpoints, outputs, ladder, cadence -- and rebuilds it
  // without a scan; it owns the invariants a hand-assembled engine must
  // satisfy (outputs consistent with the ladder, checkpoints ascending).
  friend class SnapshotAccess;

  /// Copies the scan state into a fresh checkpoint appended to `cps`,
  /// thinning (and doubling `*interval`) at capacity. `live` is pos's
  /// live-tuple ordinal.
  static void SnapshotInto(const psr_internal::ScanCore& core, size_t pos,
                           size_t live, std::vector<Checkpoint>* cps,
                           size_t* interval);

  /// Drops every other checkpoint (always retaining the first) and
  /// doubles `*interval` -- the capacity response shared by SnapshotInto
  /// and the sharded-scan checkpoint merge.
  static void ThinCheckpoints(std::vector<Checkpoint>* cps, size_t* interval);

  static void RestoreInto(const Checkpoint& cp, psr_internal::ScanCore* core);

  /// InvalidateBelow's body, inside an already-open gate window (Replay
  /// opens one and must not re-enter the non-recursive gate).
  void InvalidateBelowLocked(size_t first_changed_rank)
      UCLEAN_REQUIRES(gate_);

  /// Zeroes `outputs` from `begin` on and runs the scan loop over `db` to
  /// its stop point, snapshotting into `cps` along the way -- sharded
  /// over `exec`'s pool when the range justifies it, sequentially
  /// otherwise. Rungs whose scan had already stopped at or before `begin`
  /// are left untouched. `Db` is ProbabilisticDatabase (base/dedicated
  /// path) or DatabaseOverlay (pooled-session path); both run identical
  /// arithmetic.
  template <typename Db>
  static void ScanFrom(const Db& db, size_t begin, size_t live_at_begin,
                       const PsrOptions& options, const ExecOptions& exec,
                       psr_internal::ScanCore* core,
                       std::vector<PsrOutput>* outputs,
                       std::vector<Checkpoint>* cps, size_t* interval);

  /// Recomputes num_nonzero and (from the matrix, when stored) the
  /// per-rank argmaxes after a scan, for every rung that re-emitted; the
  /// per-rung work fans over `exec`'s pool.
  template <typename Db>
  static void FinalizeAggregates(const Db& db, size_t begin, bool from_rank_0,
                                 const ExecOptions& exec,
                                 std::vector<PsrOutput>* outputs);

  ExecOptions exec_;
  PsrOptions options_;
  KLadder ladder_;
  std::vector<PsrOutput> outputs_;  // one per rung, ascending k
  psr_internal::ScanCore core_;
  std::vector<Checkpoint> checkpoints_;
  size_t checkpoint_interval_ = kInitialCheckpointInterval;

  // Serialized-caller capability over the mutating surface (see the
  // threading contract above). ForkSession/ReplaySession are const and
  // deliberately outside it: they are safe concurrently.
  mutable SerialGate gate_;
};

}  // namespace uclean

#endif  // UCLEAN_RANK_PSR_ENGINE_H_
