// Scalar scan kernel + runtime dispatch. This translation unit is
// compiled with -ffp-contract=off (see CMakeLists.txt) so the scalar
// element ops below round exactly as written -- no fused multiply-adds
// -- which is one half of the bitwise contract with the AVX2 kernel
// (the other half is kernel_avx2.cc being compiled without FMA).

#include "rank/kernel.h"

#include <cstdlib>
#include <cstring>

namespace uclean {
namespace psr_internal {

void FoldFactorScalar(double* c, const double* base, std::size_t top,
                      double q) {
  const double h = 1.0 - q;
  // Writes descend so every read of base[j] / base[j-1] sees the
  // pre-update value when c aliases base (Advance's in-place multiply
  // and RebuildCounts both rely on this).
  c[top] = base[top - 1] * q;
  for (std::size_t j = top - 1; j > 0; --j) {
    c[j] = base[j] * h + base[j - 1] * q;
  }
  c[0] = base[0] * h;
}

void DivideOutFwdScalar(double* excl, const double* c, std::size_t top,
                        double q) {
  const double headroom = 1.0 - q;
  excl[0] = c[0] / headroom;
  for (std::size_t j = 1; j < top; ++j) {
    const double v = (c[j] - excl[j - 1] * q) / headroom;
    excl[j] = v < 0.0 ? 0.0 : v;
  }
}

void DivideOutBwdScalar(double* excl, const double* c, std::size_t top,
                        double q) {
  excl[top - 1] = c[top] / q;
  for (std::size_t j = top - 1; j > 0; --j) {
    const double v = (c[j] - (1.0 - q) * excl[j]) / q;
    excl[j - 1] = v < 0.0 ? 0.0 : v;
  }
}

namespace {

void ScaleScalar(double* dst, const double* src, std::size_t n, double e) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = e * src[i];
}

void UpdateArgmaxScalar(double* best_prob, int32_t* best_index,
                        const double* rho, std::size_t n, int32_t rank_index) {
  for (std::size_t i = 0; i < n; ++i) {
    if (rho[i] > best_prob[i]) {
      best_prob[i] = rho[i];
      best_index[i] = rank_index;
    }
  }
}

double EmitSegmentScalar(double* dst, const double* src, std::size_t n,
                         double e, double p, double* best_prob,
                         int32_t* best_index, int32_t rank_index) {
  // One sweep, everything fused: the scalar path pays exactly what the
  // historical fused emission loop paid.
  if (best_prob == nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      const double v = e * src[i];
      dst[i] = v;
      p += v;
    }
    return p;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double v = e * src[i];
    dst[i] = v;
    p += v;
    if (v > best_prob[i]) {
      best_prob[i] = v;
      best_index[i] = rank_index;
    }
  }
  return p;
}

bool CpuHasAvx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  // The cpuid probe is invariant for the process lifetime; cache it.
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
#else
  return false;
#endif
}

}  // namespace

const ScanKernel& ScalarScanKernel() {
  static const ScanKernel kernel = {
      KernelKind::kScalar, "scalar",          FoldFactorScalar,
      DivideOutFwdScalar,  DivideOutBwdScalar, ScaleScalar,
      UpdateArgmaxScalar,  EmitSegmentScalar,
  };
  return kernel;
}

const ScanKernel* Avx2ScanKernelOrNull() {
  if (!CpuHasAvx2()) return nullptr;
  return Avx2ScanKernelImpl();
}

const ScanKernel& DefaultScanKernel() {
  if (!Avx2Disabled()) {
    const ScanKernel* avx2 = Avx2ScanKernelOrNull();
    if (avx2 != nullptr) return *avx2;
  }
  return ScalarScanKernel();
}

}  // namespace psr_internal

bool Avx2CompiledIn() { return psr_internal::Avx2ScanKernelImpl() != nullptr; }

bool Avx2Supported() { return psr_internal::Avx2ScanKernelOrNull() != nullptr; }

bool Avx2Disabled() {
  // Re-read on every call (no static): the forced-scalar CI leg and the
  // dispatch-override tests toggle the variable within one process.
  const char* value = std::getenv("UCLEAN_DISABLE_AVX2");
  if (value == nullptr || value[0] == '\0') return false;
  return std::strcmp(value, "0") != 0 && std::strcmp(value, "off") != 0 &&
         std::strcmp(value, "OFF") != 0 && std::strcmp(value, "false") != 0;
}

const char* KernelKindName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kAuto:
      return "auto";
    case KernelKind::kScalar:
      return "scalar";
    case KernelKind::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Result<const psr_internal::ScanKernel*> SelectScanKernel(KernelKind kind) {
  switch (kind) {
    case KernelKind::kAuto:
      return &psr_internal::DefaultScanKernel();
    case KernelKind::kScalar:
      return &psr_internal::ScalarScanKernel();
    case KernelKind::kAvx2: {
      const psr_internal::ScanKernel* avx2 =
          psr_internal::Avx2ScanKernelOrNull();
      if (avx2 == nullptr) {
        return Status::InvalidArgument(
            Avx2CompiledIn()
                ? "kernel 'avx2' requested but this CPU does not support AVX2"
                : "kernel 'avx2' requested but the AVX2 kernel was not "
                  "compiled into this binary");
      }
      return avx2;
    }
  }
  return Status::InvalidArgument("unknown kernel kind");
}

}  // namespace uclean
