// Sharded parallel PSR scan: rank-range decomposition of the ladder scan
// over a fixed-size ThreadPool (exec/thread_pool.h).
//
// Why rank ranges shard cleanly. The scan state at position p -- the
// Poisson-binomial count vector plus per-x-tuple above-masses -- depends
// only on the tuples ranked above p, never on k, the session, or anything
// below p (the same fact that makes PsrEngine checkpoints shareable
// across rungs and pooled sessions). A shard that holds the state at its
// range start can therefore scan its range in complete isolation; per-
// rank outputs land in disjoint index ranges and the only cross-shard
// reconciliation is for the scan-global aggregates (the per-rung Lemma-2
// stop rank, the per-rank argmax trackers, num_nonzero).
//
// Boundary states, bitwise. A replay's surviving checkpoints all sit at
// or above the replay boundary (deeper ones were invalidated by the
// clean), so shard starts inside the suffix -- and all shard starts of
// an initial full scan -- need their state produced first. Two facts
// make that cheap AND exact:
//
//  * The per-x-tuple mass bookkeeping underneath the scan (q / state /
//    active / saturated) evolves by a handful of additions per tuple --
//    orders of magnitude cheaper than the per-tuple count-vector work --
//    and is bitwise identical in every driver (same sums, same order).
//    ForwardMasses advances just that bookkeeping across a range.
//  * The scan refreshes its count vector from the bookkeeping at every
//    live-tuple ordinal divisible by kCountRefreshGridLive
//    (psr_scan_core.h). At those grid points the vector is a pure
//    function of the bookkeeping.
//
// Shard cut points are exactly such grid points. The orchestrator runs
// the cheap mass prewalk from the start state, hands each shard the
// bookkeeping at its cut (the shard's first loop iteration performs the
// grid refresh, reconstituting the count vector bit-for-bit as the
// sequential scan does there), and dispatches shards pipelined: shard s
// scans while the prewalk advances to cut s+1. Every per-position
// operation inside a shard is then the exact op sequence of the
// sequential scan on the exact same state, so PARALLEL OUTPUT IS BITWISE
// EQUAL TO SEQUENTIAL OUTPUT for any shard/thread count (tests hold
// 1e-12; in practice the arrays match bit-for-bit).
//
// Lemma-2 stops across shards. Stops latch monotonically along the scan,
// so each shard records the first position in its range where each
// rung's stop fires and the merge takes the first firing in shard order;
// a shard whose boundary state already fails every rung's stop check
// exits at its first position without scanning (deep shards past the
// ladder's stop are skipped entirely -- and the cut planner does not
// even cut past a conservative estimate of the deepest stop), and
// emission is never merged past each rung's stop rank, preserving the
// invariant that outputs are identically zero at and past scan_end.

#ifndef UCLEAN_RANK_SHARDED_SCAN_H_
#define UCLEAN_RANK_SHARDED_SCAN_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "exec/thread_pool.h"
#include "model/tuple.h"
#include "rank/psr.h"
#include "rank/psr_scan_core.h"

namespace uclean {
namespace psr_internal {

/// Most shards one scan is ever cut into; with dynamic claiming this
/// keeps late heavy shards from serializing the tail while bounding the
/// per-shard fixed costs (state copy, boundary refresh, merge).
constexpr size_t kMaxShardsPerScan = 32;

/// A candidate cut: a live position whose live ordinal is a multiple of
/// kCountRefreshGridLive (a count-refresh grid point).
struct GridPoint {
  size_t pos = 0;
  size_t live = 0;
};

/// Advances ONLY the per-x-tuple mass bookkeeping of `core` across
/// positions [from, to): the exact additions, saturation folds and
/// activation flips the scan performs, minus all count-vector work.
/// core->c goes stale; the grid refresh (RebuildCounts) reconstitutes it.
template <typename Db>
void ForwardMasses(const Db& db, size_t from, size_t to, ScanCore* core) {
  for (size_t i = from; i < to; ++i) {
    if (db.is_tombstone(i)) continue;
    const Tuple& t = db.tuple(i);
    const int32_t l = t.xtuple;
    if (core->state[l] == XTupleState::kSaturated) continue;
    const double q_new = core->q[l] + t.prob;
    core->q[l] = q_new;
    if (q_new >= kSaturationThreshold) {
      if (core->state[l] == XTupleState::kActive) --core->active;
      core->state[l] = XTupleState::kSaturated;
      ++core->saturated;
    } else if (core->state[l] == XTupleState::kInactive) {
      core->state[l] = XTupleState::kActive;
      ++core->active;
    }
  }
}

/// One cheap pass from (begin, live_at_begin) that collects the grid
/// points usable as shard cuts, stopping at a CONSERVATIVE estimate of
/// the k_max Lemma-2 stop: the first position where either k_max
/// x-tuples saturated (the stop fires there exactly) or the expected
/// contributor count mu clears k_max by a Chernoff margin that forces
/// the head mass below the stop threshold. The true stop can only be
/// EARLIER, so cuts planned inside the estimate never lose coverage --
/// shards past the true stop exit at their first position. Pass
/// early_termination=false to walk the whole range.
template <typename Db>
std::vector<GridPoint> CollectGridCuts(const Db& db, const ScanCore& at_begin,
                                       size_t begin, size_t live_at_begin,
                                       size_t k_max, bool early_termination) {
  std::vector<double> q(at_begin.q.begin(), at_begin.q.end());
  std::vector<uint8_t> saturated(q.size(), 0);
  size_t num_saturated = at_begin.saturated;
  double mu = static_cast<double>(num_saturated);
  for (size_t l = 0; l < q.size(); ++l) {
    if (at_begin.state[l] == XTupleState::kSaturated) {
      saturated[l] = 1;
    } else {
      mu += q[l];
    }
  }
  const double k = static_cast<double>(k_max);
  const size_t n = db.num_tuples();
  std::vector<GridPoint> grid;
  size_t live = live_at_begin;
  for (size_t i = begin; i < n; ++i) {
    if (early_termination) {
      if (num_saturated >= k_max) break;
      // exp(-(mu-k)^2 / 2mu) < 1e-15 once (mu-k)^2 > 72 mu.
      if (mu > k && (mu - k) * (mu - k) > mu * 72.0) break;
    }
    if (db.is_tombstone(i)) continue;
    if (live % kCountRefreshGridLive == 0 && i > begin) {
      grid.push_back({i, live});
    }
    const Tuple& t = db.tuple(i);
    const int32_t l = t.xtuple;
    if (!saturated[l]) {
      const double q_new = q[l] + t.prob;
      if (q_new >= kSaturationThreshold) {
        saturated[l] = 1;
        ++num_saturated;
        mu += 1.0 - q[l];
      } else {
        mu += t.prob;
      }
      q[l] = q_new;
    }
    ++live;
  }
  return grid;
}

/// Picks the shard boundaries: `begin` plus at most (max_shards - 1)
/// evenly spaced grid cuts plus `hard_end`. Cuts closer together than
/// min_tuples_per_shard live tuples are never produced (grid spacing is
/// kCountRefreshGridLive live tuples; the planner widens stride when a
/// larger minimum is asked for). Returns empty when fewer than two
/// shards result.
std::vector<GridPoint> PlanShardCuts(size_t begin, size_t live_at_begin,
                                     size_t hard_end,
                                     const std::vector<GridPoint>& grid,
                                     size_t num_threads,
                                     size_t min_tuples_per_shard);

/// One shard's private scan results: compact per-rung outputs indexed by
/// i - begin, plus the absolute rank where each rung's stop rule first
/// fired in this range (end = never fired here).
struct ShardResult {
  size_t begin = 0;
  size_t end = 0;
  size_t live_at_begin = 0;
  std::vector<size_t> stop_rank;
  std::vector<PsrOutput> rungs;
};

/// Sizes one compact (range-indexed) output per rung of `outs`, copying
/// k / matrix flags from the shared outputs.
inline void InitShardOutputs(const std::vector<PsrOutput*>& outs,
                             ShardResult* result) {
  const size_t range = result->end - result->begin;
  result->rungs.resize(outs.size());
  for (size_t j = 0; j < outs.size(); ++j) {
    PsrOutput& rung = result->rungs[j];
    rung.k = outs[j]->k;
    rung.topk_prob.assign(range, 0.0);
    rung.best_rank_prob.assign(rung.k, 0.0);
    rung.best_rank_index.assign(rung.k, -1);
    rung.has_rank_probabilities = outs[j]->has_rank_probabilities;
    if (rung.has_rank_probabilities) {
      rung.rank_prob.assign(range * rung.k, 0.0);
    }
  }
}

/// Scans positions [result->begin, result->end) of `db` from `core` (the
/// mass bookkeeping at begin; for every shard but the first the count
/// vector is stale and reconstituted by the grid refresh at the first
/// position, which IS a grid point by construction): the same
/// per-position operation sequence as RunLadderScan, with emission
/// indices shifted by -begin and stop ranks recorded instead of applied
/// to scan_end. `maybe_checkpoint(core, i, live)` is invoked for every
/// live position before it is processed.
template <typename Db, typename CheckpointFn>
void ScanShard(const Db& db, const PsrOptions& options, ScanCore& core,
               bool track_best, ShardResult* result,
               CheckpointFn&& maybe_checkpoint) {
  const size_t begin = result->begin;
  const size_t end = result->end;
  const size_t rungs = result->rungs.size();
  std::vector<PsrOutput*> outs;
  outs.reserve(rungs);
  for (PsrOutput& out : result->rungs) outs.push_back(&out);
  result->stop_rank.assign(rungs, end);
  size_t first_active = 0;
  size_t live = result->live_at_begin;
  for (size_t i = begin; i < end; ++i) {
    const bool is_live = !db.is_tombstone(i);
    if (is_live && live % kCountRefreshGridLive == 0) core.RebuildCounts();
    if (options.early_termination) {
      // Same pop order as the sequential loop: the stop rule fires
      // smallest-k first, so each rung's recorded rank is exactly the
      // first position where its own stop condition holds.
      while (first_active < rungs &&
             core.ShouldStop(outs[first_active]->k)) {
        result->stop_rank[first_active] = i;
        ++first_active;
      }
      if (first_active == rungs) return;
    }
    if (!is_live) continue;
    maybe_checkpoint(core, i, live);
    const Tuple& t = db.tuple(i);
    const ScanCore::Exclusion ex = core.BuildExclusion(t);
    EmitLadder(t, i - begin, core, ex, outs, first_active, track_best);
    core.Advance(t, ex);
    ++live;
  }
}

/// The sharded counterpart of RunLadderScan over the ACTIVE rungs `outs`
/// (full-size shared outputs whose scan_end fields still hold the
/// pre-scan values; arrays already wiped over the rescanned range as the
/// sequential prologue does). Plans grid-aligned cuts, pipelines
/// boundary-bookkeeping hand-off with shard dispatch on `pool`, merges
/// stops/argmaxes and copies each rung's live range back. Returns false
/// -- leaving outputs untouched -- when the range does not justify
/// sharding; the caller then runs the sequential loop.
///
/// `make_checkpoint_fn(s, num_shards)` is called on the orchestrating
/// thread, in shard order, and must return an independently usable
/// `void(const ScanCore&, size_t pos, size_t live)` snapshot hook for
/// shard s (hooks run concurrently, one per shard).
template <typename Db, typename MakeCheckpointFn>
bool RunShardedLadderScan(const Db& db, size_t begin, size_t live_at_begin,
                          const PsrOptions& options, ThreadPool* pool,
                          size_t min_tuples_per_shard,
                          const ScanCore& start_state,
                          const std::vector<PsrOutput*>& outs,
                          bool track_best,
                          MakeCheckpointFn&& make_checkpoint_fn) {
  if (pool == nullptr || pool->num_threads() < 2 || ThreadPool::InWorker() ||
      outs.empty()) {
    return false;
  }
  const size_t n = db.num_tuples();
  const size_t k_max = outs.back()->k;
  const std::vector<GridPoint> grid = CollectGridCuts(
      db, start_state, begin, live_at_begin, k_max, options.early_termination);
  const std::vector<GridPoint> cuts =
      PlanShardCuts(begin, live_at_begin, n, grid, pool->num_threads(),
                    min_tuples_per_shard);
  if (cuts.empty()) return false;
  const size_t num_shards = cuts.size() - 1;
  const size_t rungs = outs.size();

  std::vector<ShardResult> results(num_shards);
  {
    ThreadPool::TaskGroup group(pool);
    ScanCore walk = start_state;  // prewalk bookkeeping; c valid at begin
    for (size_t s = 0; s < num_shards; ++s) {
      if (s > 0) {
        // Hand-off: advance the cheap mass bookkeeping to this cut while
        // the already dispatched shards scan their ranges. The count
        // vector is left stale; the shard's first grid refresh rebuilds
        // it bit-for-bit as the sequential scan does at this ordinal.
        ForwardMasses(db, cuts[s - 1].pos, cuts[s].pos, &walk);
      }
      ShardResult& result = results[s];
      result.begin = cuts[s].pos;
      result.end = cuts[s + 1].pos;
      result.live_at_begin = cuts[s].live;
      group.Run([&db, &options, track_best, &result, core = walk,
                 checkpoint = make_checkpoint_fn(s, num_shards),
                 &outs]() mutable {
        InitShardOutputs(outs, &result);
        ScanShard(db, options, core, track_best, &result, checkpoint);
      });
    }
    group.Wait();
  }

  // Per-rung stop merge: the first firing in shard order is the rank the
  // sequential scan would have stopped at (stops latch monotonically).
  for (size_t j = 0; j < rungs; ++j) {
    PsrOutput& out = *outs[j];
    size_t scan_end = n;
    for (const ShardResult& result : results) {
      if (result.stop_rank[j] < result.end) {
        scan_end = result.stop_rank[j];
        break;
      }
    }
    out.scan_end = scan_end;
    for (const ShardResult& result : results) {
      if (result.begin >= scan_end) break;  // emission ends at the stop
      const size_t bound = std::min(result.end, scan_end);
      const PsrOutput& rung = result.rungs[j];
      std::copy(rung.topk_prob.begin(),
                rung.topk_prob.begin() + (bound - result.begin),
                out.topk_prob.begin() + result.begin);
      if (out.has_rank_probabilities) {
        std::copy(rung.rank_prob.begin(),
                  rung.rank_prob.begin() + (bound - result.begin) * out.k,
                  out.rank_prob.begin() + result.begin * out.k);
      }
      if (track_best) {
        // Strict > keeps the earliest attaining rank, exactly like the
        // sequential running tracker.
        for (size_t h = 0; h < out.k; ++h) {
          if (rung.best_rank_prob[h] > out.best_rank_prob[h]) {
            out.best_rank_prob[h] = rung.best_rank_prob[h];
            out.best_rank_index[h] = static_cast<int32_t>(
                rung.best_rank_index[h] + static_cast<int32_t>(result.begin));
          }
        }
      }
    }
  }
  return true;
}

}  // namespace psr_internal
}  // namespace uclean

#endif  // UCLEAN_RANK_SHARDED_SCAN_H_
