// Internal Poisson-binomial scan core shared by the one-shot ComputePsr /
// ComputePsrLadder and the incremental PsrEngine. All drivers run the exact
// same per-tuple arithmetic through this state machine, which is what makes
// the engine's checkpoint/replay results bitwise indistinguishable from a
// from-scratch scan over the same database.
//
// Multi-k design.
//
// The count-vector recurrence is k-independent: the distribution of "how
// many x-tuples contribute a tuple ranked above the current position"
// evolves identically for every k, and only the emission (summing the
// first k entries of the exclusion view) and the Lemma-2 stop rule depend
// on k. The core therefore exposes the per-tuple work in three stages --
// BuildExclusion (k-independent, O(T) divide-out), EmitLadder (per-k
// emission from the shared exclusion view), Advance (k-independent, O(T)
// multiply-in) -- so one scan can serve an ascending ladder of k values:
// the expensive divide-out/multiply-in pair runs once per tuple however
// many k's are served, and the per-rank probabilities rho_i(h) are shared
// verbatim across every rung with k >= h. Because the head mass
// Pr[#contributors < k] is non-decreasing in k and non-increasing along
// the scan, the stop rule fires rung by rung from the smallest k upward;
// stopped rungs simply stop emitting while the scan continues for the
// larger ones.
//
// Numerical design.
//
// Naively one truncates the count vector at k and divides an x-tuple's
// Bernoulli factor out with the forward recurrence
//
//     c_excl[j] = (c[j] - c_excl[j-1] * q) / (1 - q),
//
// but that recurrence amplifies absolute rounding error by q/(1-q) PER
// INDEX: for an x-tuple whose remaining mass 1-q is small (heavily skewed
// alternatives, e.g. Gaussian histograms with sigma much smaller than the
// interval), the error explodes as (q/(1-q))^k and the output is garbage.
//
// This implementation is exact-and-stable instead:
//  * X-tuples whose above-mass q has reached 1 (within 1e-12) are pulled
//    out of the vector as an integer SHIFT (they always contribute one
//    tuple); the vector only covers the "unsaturated" x-tuples and is kept
//    UNTRUNCATED (length = #unsaturated + 1), so top seeds are exact.
//  * Dividing out a factor uses the forward recurrence when q <= 1/2
//    (error ratio q/(1-q) <= 1) and the backward recurrence
//        c_excl[j-1] = (c[j] - (1-q) * c_excl[j]) / q
//    seeded exactly from the top (c_excl[T-1] = c[T] / q) when q > 1/2
//    (error ratio (1-q)/q < 1, division by q >= 1/2). Both directions are
//    non-amplifying, so results hold to ~ulp for any mass skew and any k.
//  * The divide/multiply error is non-amplifying in ABSOLUTE terms (at
//    the scale of the vector's bulk, ~1), not relative to the smallest
//    coefficients: across thousands of positions the tail entries --
//    head masses near the stop threshold, low counts after many
//    saturations -- accumulate a noise floor that is pure rounding
//    lineage. The scan therefore REFRESHES the vector on a fixed grid:
//    at every live tuple whose ordinal (count of live tuples since rank
//    0) is a multiple of kCountRefreshGridLive, the vector is
//    reconstituted from the per-x-tuple masses (RebuildCounts, an exact
//    product of the active factors). The grid is keyed to live ordinals,
//    which are invariant under checkpoint replay, tombstone compaction
//    and session overlays, so EVERY driver -- one-shot, engine replay,
//    pooled session, and every shard of a sharded scan -- performs the
//    refresh at the same tuples and stays bitwise identical to every
//    other. Rank-range sharding (rank/sharded_scan.h) leans on this:
//    shard cut points are grid points, so a shard's boundary state
//    (mass bookkeeping forwarded cheaply, vector rebuilt on entry) is
//    bit-for-bit the state the sequential scan has there.
//
// Cost: O(T) per tuple where T is the number of unsaturated x-tuples that
// overlap the scan position (bounded by the tuples scanned so far, which
// the Lemma-2 stop keeps small for ranked data), plus O(k_max) for
// emission across the whole ladder, plus an amortized O(T^2 /
// kCountRefreshGridLive) per tuple for the refresh grid.
//
// Kernel layout.
//
// The state is structure-of-arrays: four contiguous aligned double
// buffers (count vector `c`, exclusion scratch `c_excl`, emission
// scratch `rho`, per-x-tuple masses `q`) plus a parallel byte array of
// per-x-tuple states. All element arithmetic on those buffers is routed
// through a runtime-selected ScanKernel (rank/kernel.h): the multiply-in
// fold and the emission scale/argmax passes vectorize under AVX2, the
// divide-out recurrences stay scalar in every kernel (sequential by
// construction), and every kernel is bitwise equal to every other -- so
// the kernel choice, like the thread count, never changes a result. The
// emission loop is split accordingly: a vectorizable pass materializes
// rho[h-1] for the whole ladder into `rho`, the prefix/latch pass stays
// a strictly sequential scalar sum (re-associating it would change
// roundings), and the per-rung matrix/argmax passes are element-wise
// maps over the shared scratch.

#ifndef UCLEAN_RANK_PSR_SCAN_CORE_H_
#define UCLEAN_RANK_PSR_SCAN_CORE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "model/database.h"
#include "model/tuple.h"
#include "rank/kernel.h"
#include "rank/psr.h"

namespace uclean {
namespace psr_internal {

/// Per-x-tuple scan state.
enum class XTupleState : uint8_t {
  kInactive,   // no tuple passed yet (q == 0)
  kActive,     // 0 < q < 1: participates in the count vector
  kSaturated,  // q == 1 (within tolerance): folded into the shift
};

constexpr double kSaturationThreshold = 1.0 - 1e-12;

/// Count-vector refresh cadence in live-tuple ordinals (see the file
/// comment): every driver rebuilds the vector from the mass bookkeeping
/// at live ordinals 0, G, 2G, ... counted from rank 0. One shared
/// constant for the whole library -- scan core refresh, engine
/// checkpointing and shard-cut selection all key off it, the refresh
/// points are part of the arithmetic lineage, and changing them between
/// two drivers would break their bitwise agreement. The grid is also
/// what anchors the scalar/AVX2 kernel equivalence: at every grid point
/// the state is a pure function of the mass bookkeeping, so the kernel
/// tests can assert bitwise equality there (and everywhere else --
/// see rank/kernel.h).
constexpr size_t kCountRefreshGridLive = 4096;

/// Probabilistic generalization of the Lemma-2 stop: once the probability
/// that fewer than k tuples rank above the scan position drops below this
/// bound, every later tuple's top-k probability is below it too (p_i is at
/// most that head mass), so the scan stops. The induced quality error is
/// below n * |omega_max| * 1e-15, far inside the paper's 1e-8
/// cross-validation bar. Lemma 2 proper is the special case where the head
/// mass is exactly zero (k x-tuples saturated).
constexpr double kNegligibleHeadMass = 1e-15;

/// The k-independent scan state at one rank position, advanced tuple by
/// tuple. Structure-of-arrays: the hot buffers are contiguous aligned
/// double arrays operated on through the retargetable `kernel` table
/// (rank/kernel.h), never element-by-element in driver code.
struct ScanCore {
  // c[0..T]: distribution of the number of contributing unsaturated
  // x-tuples, where T is the current unsaturated-active count. Saturated
  // x-tuples add `saturated` contributors deterministically.
  AlignedBuf c;
  AlignedBuf c_excl;
  // Emission scratch: rho[h-1] for h = 1..k_max, materialized per tuple
  // by EmitLadder (sized lazily to the ladder's largest k).
  AlignedBuf rho;
  size_t active = 0;     // unsaturated active x-tuples (== c.size() - 1)
  size_t saturated = 0;

  AlignedBuf q;                    // per-x-tuple above-mass (frozen once
                                   // saturated; unused from then on)
  std::vector<XTupleState> state;  // per-x-tuple scan state

  /// The element-op table every hot loop routes through. Set by Init
  /// (and inherited by copies: shard walks, forked sessions); all
  /// kernels are bitwise equal, so cores with different kernels still
  /// produce identical state.
  const ScanKernel* kernel = &ScalarScanKernel();

  /// The exclusion view for one tuple: the count distribution over all
  /// OTHER x-tuples, split into a deterministic shift (saturated others)
  /// and a vector over the unsaturated others. Valid until the next
  /// BuildExclusion or Advance call on the core.
  struct Exclusion {
    size_t others_shift = 0;
    const AlignedBuf* counts = nullptr;
  };

  /// Resets to the scan-start state for `num_xtuples` x-tuples, running
  /// all element arithmetic through `k` (defaults to what kAuto resolves
  /// to on this host).
  void Init(size_t num_xtuples, const ScanKernel* k = &DefaultScanKernel()) {
    kernel = k;
    c.assign(1, 1.0);
    c_excl.clear();
    c_excl.reserve(num_xtuples + 1);
    active = 0;
    saturated = 0;
    q.assign(num_xtuples, 0.0);
    state.assign(num_xtuples, XTupleState::kInactive);
  }

  /// Reconstitutes `c` from the mass bookkeeping alone: the product of
  /// every active x-tuple's Bernoulli factor, multiplied in ascending
  /// x-tuple order with exactly the arithmetic Advance's in-place
  /// (aliased) multiply performs. A pure function of (q, state), so any
  /// two cores with identical bookkeeping rebuild identical vectors --
  /// the property the refresh grid and shard boundary hand-off rely on.
  void RebuildCounts() {
    c.assign(1, 1.0);
    size_t rebuilt = 0;
    for (size_t l = 0; l < state.size(); ++l) {
      if (state[l] != XTupleState::kActive) continue;
      const size_t top = c.size();
      c.resize(top + 1);
      // In-place fold: the kernel's descending writes keep reads of
      // c[j] / c[j-1] on pre-update values.
      kernel->fold_factor(c.data(), c.data(), top, q[l]);
      ++rebuilt;
    }
    UCLEAN_CHECK(rebuilt == active);
  }

  /// True when the (generalized) Lemma-2 rule says every tuple at or after
  /// the current position has negligible top-k probability. Monotone both
  /// along the scan (the contributor count is stochastically non-
  /// decreasing) and downward in k (the head mass only shrinks), so once a
  /// rung of a ladder stops, it stays stopped and so do all smaller rungs.
  bool ShouldStop(size_t k) const {
    if (saturated >= k) return true;  // Lemma 2 proper
    // Head mass: Pr[fewer than k x-tuples contribute above the position].
    double head = 0.0;
    const size_t head_top = std::min(k - saturated, c.size());
    for (size_t j = 0; j < head_top; ++j) head += c[j];
    return head < kNegligibleHeadMass;
  }

  /// Builds the exclusion view for tuple `t` (others = all x-tuples except
  /// t's own tau_l), dividing tau_l's Bernoulli factor out of the count
  /// vector when it is active.
  Exclusion BuildExclusion(const Tuple& t) {
    const int32_t l = t.xtuple;
    Exclusion ex;
    ex.others_shift = saturated;
    ex.counts = &c;
    switch (state[l]) {
      case XTupleState::kInactive:
        break;  // tau_l not in the vector: excl == c
      case XTupleState::kSaturated:
        // tau_l sits in the shift (possible only when its residual mass,
        // and hence t.prob, is below the saturation tolerance).
        ex.others_shift = saturated - 1;
        break;
      case XTupleState::kActive: {
        const double ql = q[l];
        const size_t top = active;  // c has indices 0..top
        c_excl.resize(top);         // exclusion has indices 0..top-1
        // Stable direction choice (see the file comment); both
        // directions are sequential recurrences and run the same scalar
        // code in every kernel.
        if (ql <= 0.5) {
          kernel->divide_out_fwd(c_excl.data(), c.data(), top, ql);
        } else {
          kernel->divide_out_bwd(c_excl.data(), c.data(), top, ql);
        }
        ex.counts = &c_excl;
        break;
      }
    }
    return ex;
  }

  /// Advances the state past `t`: tau_l's above-mass grows by t.prob. `ex`
  /// must be the exclusion view built for `t`.
  void Advance(const Tuple& t, const Exclusion& ex) {
    const int32_t l = t.xtuple;
    if (state[l] == XTupleState::kSaturated) return;  // shift absorbs it
    const double q_new = q[l] + t.prob;
    q[l] = q_new;
    if (q_new >= kSaturationThreshold) {
      // tau_l now always contributes: fold it into the shift. `ex`
      // already holds the vector without tau_l's factor.
      if (state[l] == XTupleState::kActive) {
        c.assign(ex.counts->begin(), ex.counts->end());
        --active;
      }
      state[l] = XTupleState::kSaturated;
      ++saturated;
    } else {
      // Multiply tau_l's updated Bernoulli factor into the others-vector.
      // `base` may alias `c` (inactive x-tuple: excl == c); the kernel's
      // fold is alias-safe, and base.data() is read after the resize.
      const AlignedBuf& base = *ex.counts;
      const size_t top = base.size();  // counts 0..top-1
      c.resize(top + 1);
      kernel->fold_factor(c.data(), base.data(), top, q_new);
      if (state[l] == XTupleState::kInactive) {
        state[l] = XTupleState::kActive;
        ++active;
      }
      UCLEAN_DCHECK(c.size() == active + 1);
    }
  }
};

/// Emits tuple `t` at rank index `i` into every still-active rung
/// `outs[first_active..]` (ascending k). The per-rank probabilities
/// rho_i(h) are computed once from the shared exclusion view and each
/// rung's top-k probability is the running prefix sum at its own k, so the
/// whole ladder costs one O(k_max) pass. When `track_best` is set the
/// per-rank argmax trackers are updated for every active rung (only valid
/// for a single uninterrupted scan from rank 0).
///
/// Pass structure (results identical to the historical fused per-h
/// loop, value for value):
///  1. one `emit_segment` sweep per rung segment of the exclusion
///     window, which fuses the scale rho[h-1] = e * excl[h-1-shift],
///     the strictly sequential prefix sum in h order (a parallel prefix
///     would re-associate the additions and change roundings), and --
///     on the common single-rung tracked path -- the argmax trackers.
///     The scalar kernel runs this as literally one loop; the AVX2
///     kernel vectorizes the scale and argmax around the same
///     sequential accumulation, bitwise equal either way.
///  2. only when a later pass reads rho wholesale (per-rung matrix rows
///     via contiguous copy of rho[0..k_j), or the multi-rung argmax
///     pass): the out-of-window regions are zero-filled and the rows /
///     trackers consume the materialized buffer. Skipping the fill and
///     the p += 0.0 additions otherwise is a bitwise identity -- rho is
///     nonnegative, p starts at +0.0, and a zero never beats the strict
///     argmax compare.
inline void EmitLadder(const Tuple& t, size_t i, ScanCore& core,
                       const ScanCore::Exclusion& ex,
                       const std::vector<PsrOutput*>& outs, size_t first_active,
                       bool track_best) {
  const size_t rungs = outs.size();
  if (first_active >= rungs) return;
  const double e = t.prob;
  const AlignedBuf& excl = *ex.counts;
  const size_t excl_len = excl.size();
  const size_t k_max = outs[rungs - 1]->k;
  const bool store_matrix = outs[rungs - 1]->has_rank_probabilities;
  const bool track = track_best && !t.is_null;
  const ScanKernel& kernel = *core.kernel;

  AlignedBuf& rho = core.rho;
  if (rho.size() < k_max) rho.resize(k_max);
  const size_t shift = ex.others_shift;
  const size_t lo = std::min(shift, k_max);
  const size_t hi = std::min(k_max, shift + excl_len);
  // The single-rung tracked path folds the argmax update into the
  // emission sweep itself; multi-rung tracking and matrix storage read
  // rho[0..k_j) wholesale afterwards and need the out-of-window zeros
  // materialized.
  const bool fuse_argmax = track && !store_matrix && rungs - first_active == 1;
  const bool rho_consumed = store_matrix || (track && !fuse_argmax);
  if (rho_consumed) {
    std::fill(rho.begin(), rho.begin() + lo, 0.0);
    std::fill(rho.begin() + hi, rho.begin() + k_max, 0.0);
  }

  // Walk the exclusion window once, segmented at rung boundaries: each
  // emit_segment call scales the segment into rho, folds it into the
  // running prefix in ascending h order, and each rung latches its
  // top-k probability as its boundary is crossed -- the same values, in
  // the same order, as the historical fused per-h loop (ranks outside
  // [lo, hi) contribute exact zeros and are skipped).
  double p = 0.0;
  size_t done = 0;  // ranks [0, done) already accumulated
  for (size_t next = first_active; next < rungs; ++next) {
    PsrOutput& out = *outs[next];
    const size_t a = std::max(done, lo);
    const size_t b = std::min(out.k, hi);
    if (b > a) {
      p = kernel.emit_segment(
          rho.data() + a, excl.data() + (a - shift), b - a, e, p,
          fuse_argmax ? out.best_rank_prob.data() + a : nullptr,
          fuse_argmax ? out.best_rank_index.data() + a : nullptr,
          static_cast<int32_t>(i));
    }
    done = out.k;
    out.topk_prob[i] = p;
  }

  if (!rho_consumed) return;
  // Every rung j >= first_active consumes the shared prefix rho[0..k_j):
  // rungs below first_active are stopped and receive nothing, exactly as
  // in the fused loop (their latch had already passed).
  for (size_t j = first_active; j < rungs; ++j) {
    PsrOutput& out = *outs[j];
    const size_t kj = out.k;
    if (store_matrix) {
      std::copy(rho.begin(), rho.begin() + kj, out.rank_prob.begin() + i * kj);
    }
    if (track) {
      kernel.update_argmax(out.best_rank_prob.data(),
                           out.best_rank_index.data(), rho.data(), kj,
                           static_cast<int32_t>(i));
    }
  }
}

/// Sizes and zeroes one PsrOutput per rung of `ladder` for a scan over
/// `num_tuples` rank positions (defined in psr.cc, shared with the
/// engine's Create and the overlay scan path).
void InitLadderOutputs(size_t num_tuples, const KLadder& ladder,
                       const PsrOptions& options,
                       std::vector<PsrOutput>* outputs);

/// The scan loop shared by the one-shot drivers and the engine: runs
/// positions [begin, n) of `db` through `core`, emitting into the ladder
/// `outs` (ascending k; rungs before `first_active` are already stopped
/// and keep their scan_end). `live_at_begin` is the live-tuple ordinal of
/// position `begin` (0 for full scans; checkpoints record it for
/// replays): the count vector refreshes at every live ordinal that is a
/// multiple of kCountRefreshGridLive, BEFORE that position's stop checks,
/// so every driver makes the same stop decisions from the same refreshed
/// state. `maybe_checkpoint(i, live)` is invoked for every live position
/// before it is processed -- the engine snapshots there, the one-shot
/// drivers pass a no-op. On return `first_active` reflects the rungs
/// still unstopped (scan_end == n).
///
/// `Db` is ProbabilisticDatabase or any type exposing its read interface
/// (num_tuples / tuple / is_tombstone) -- per-session DatabaseOverlay
/// views run the exact same arithmetic, which keeps pooled sessions
/// bitwise identical to dedicated ones.
template <typename Db, typename CheckpointFn>
inline void RunLadderScan(const Db& db, size_t begin, size_t live_at_begin,
                          bool early_termination, ScanCore& core,
                          const std::vector<PsrOutput*>& outs,
                          size_t& first_active, bool track_best,
                          CheckpointFn&& maybe_checkpoint) {
  const size_t n = db.num_tuples();
  const size_t rungs = outs.size();
  size_t live = live_at_begin;
  size_t i = begin;
  for (; i < n; ++i) {
    const bool is_live = !db.is_tombstone(i);
    if (is_live && live % kCountRefreshGridLive == 0) core.RebuildCounts();
    if (early_termination) {
      // The stop rule fires smallest-k first (head mass grows with k).
      while (first_active < rungs &&
             core.ShouldStop(outs[first_active]->k)) {
        outs[first_active]->scan_end = i;
        ++first_active;
      }
      if (first_active == rungs) return;
    }
    if (!is_live) continue;  // cleaning-session garbage slot
    maybe_checkpoint(i, live);
    const Tuple& t = db.tuple(i);
    const ScanCore::Exclusion ex = core.BuildExclusion(t);
    EmitLadder(t, i, core, ex, outs, first_active, track_best);
    core.Advance(t, ex);
    ++live;
  }
  for (size_t j = first_active; j < rungs; ++j) outs[j]->scan_end = n;
}

}  // namespace psr_internal
}  // namespace uclean

#endif  // UCLEAN_RANK_PSR_SCAN_CORE_H_
