// Internal Poisson-binomial scan core shared by the one-shot ComputePsr and
// the incremental PsrEngine. Both drivers run the exact same per-tuple
// arithmetic through this state machine, which is what makes the engine's
// checkpoint/replay results bitwise indistinguishable from a from-scratch
// scan over the same database.
//
// Numerical design.
//
// The scan maintains the Poisson-binomial distribution of "how many
// x-tuples contribute a tuple ranked above the current position". Naively
// one truncates this vector at k and divides an x-tuple's Bernoulli factor
// out with the forward recurrence
//
//     c_excl[j] = (c[j] - c_excl[j-1] * q) / (1 - q),
//
// but that recurrence amplifies absolute rounding error by q/(1-q) PER
// INDEX: for an x-tuple whose remaining mass 1-q is small (heavily skewed
// alternatives, e.g. Gaussian histograms with sigma much smaller than the
// interval), the error explodes as (q/(1-q))^k and the output is garbage.
//
// This implementation is exact-and-stable instead:
//  * X-tuples whose above-mass q has reached 1 (within 1e-12) are pulled
//    out of the vector as an integer SHIFT (they always contribute one
//    tuple); the vector only covers the "unsaturated" x-tuples and is kept
//    UNTRUNCATED (length = #unsaturated + 1), so top seeds are exact.
//  * Dividing out a factor uses the forward recurrence when q <= 1/2
//    (error ratio q/(1-q) <= 1) and the backward recurrence
//        c_excl[j-1] = (c[j] - (1-q) * c_excl[j]) / q
//    seeded exactly from the top (c_excl[T-1] = c[T] / q) when q > 1/2
//    (error ratio (1-q)/q < 1, division by q >= 1/2). Both directions are
//    non-amplifying, so results hold to ~ulp for any mass skew and any k.
//
// Cost: O(T) per tuple where T is the number of unsaturated x-tuples that
// overlap the scan position (bounded by the tuples scanned so far, which
// the Lemma-2 stop keeps small for ranked data), plus O(k) for emission.

#ifndef UCLEAN_RANK_PSR_SCAN_CORE_H_
#define UCLEAN_RANK_PSR_SCAN_CORE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "model/tuple.h"
#include "rank/psr.h"

namespace uclean {
namespace psr_internal {

/// Per-x-tuple scan state.
enum class XTupleState : uint8_t {
  kInactive,   // no tuple passed yet (q == 0)
  kActive,     // 0 < q < 1: participates in the count vector
  kSaturated,  // q == 1 (within tolerance): folded into the shift
};

constexpr double kSaturationThreshold = 1.0 - 1e-12;

/// Probabilistic generalization of the Lemma-2 stop: once the probability
/// that fewer than k tuples rank above the scan position drops below this
/// bound, every later tuple's top-k probability is below it too (p_i is at
/// most that head mass), so the scan stops. The induced quality error is
/// below n * |omega_max| * 1e-15, far inside the paper's 1e-8
/// cross-validation bar. Lemma 2 proper is the special case where the head
/// mass is exactly zero (k x-tuples saturated).
constexpr double kNegligibleHeadMass = 1e-15;

/// The scan state at one rank position, advanced tuple by tuple.
struct ScanCore {
  size_t k = 0;

  // c[0..T]: distribution of the number of contributing unsaturated
  // x-tuples, where T is the current unsaturated-active count. Saturated
  // x-tuples add `saturated` contributors deterministically.
  std::vector<double> c;
  std::vector<double> c_excl;
  size_t active = 0;     // unsaturated active x-tuples (== c.size() - 1)
  size_t saturated = 0;

  std::vector<double> q;           // per-x-tuple above-mass (frozen once
                                   // saturated; unused from then on)
  std::vector<XTupleState> state;  // per-x-tuple scan state

  /// Resets to the scan-start state for `num_xtuples` x-tuples.
  void Init(size_t num_xtuples, size_t k_in) {
    k = k_in;
    c.assign(1, 1.0);
    c_excl.clear();
    c_excl.reserve(num_xtuples + 1);
    active = 0;
    saturated = 0;
    q.assign(num_xtuples, 0.0);
    state.assign(num_xtuples, XTupleState::kInactive);
  }

  /// True when the (generalized) Lemma-2 rule says every tuple at or after
  /// the current position has negligible top-k probability.
  bool ShouldStop() const {
    if (saturated >= k) return true;  // Lemma 2 proper
    // Head mass: Pr[fewer than k x-tuples contribute above the position].
    double head = 0.0;
    const size_t head_top = std::min(k - saturated, c.size());
    for (size_t j = 0; j < head_top; ++j) head += c[j];
    return head < kNegligibleHeadMass;
  }

  /// Processes tuple `t` at rank index `i`: emits rho_i(h) / p_i into `out`
  /// and advances the state past `t`. When `track_best` is set the
  /// per-rank argmax trackers in `out` are updated (only valid for a
  /// single uninterrupted scan from rank 0).
  void Step(const Tuple& t, size_t i, PsrOutput* out, bool track_best) {
    const int32_t l = t.xtuple;
    const double e = t.prob;

    // --- 1. Build the exclusion view (others = all x-tuples except tau_l).
    // others_shift: deterministic contributors among the others;
    // excl: count distribution over the unsaturated others.
    size_t others_shift = saturated;
    const std::vector<double>* excl = &c;
    switch (state[l]) {
      case XTupleState::kInactive:
        break;  // tau_l not in the vector: excl == c
      case XTupleState::kSaturated:
        // tau_l sits in the shift (possible only when its residual mass,
        // and hence e, is below the saturation tolerance).
        others_shift = saturated - 1;
        break;
      case XTupleState::kActive: {
        const double ql = q[l];
        const size_t top = active;  // c has indices 0..top
        c_excl.resize(top);         // exclusion has indices 0..top-1
        if (ql <= 0.5) {
          const double headroom = 1.0 - ql;
          c_excl[0] = c[0] / headroom;
          for (size_t j = 1; j < top; ++j) {
            double v = (c[j] - c_excl[j - 1] * ql) / headroom;
            c_excl[j] = v < 0.0 ? 0.0 : v;
          }
        } else {
          c_excl[top - 1] = c[top] / ql;
          for (size_t j = top - 1; j > 0; --j) {
            double v = (c[j] - (1.0 - ql) * c_excl[j]) / ql;
            c_excl[j - 1] = v < 0.0 ? 0.0 : v;
          }
        }
        excl = &c_excl;
        break;
      }
    }

    // --- 2. Emit rho_i(h) = e * Pr[exactly h-1 others contribute above].
    double p = 0.0;
    const size_t excl_len = excl->size();
    for (size_t h = 1; h <= k; ++h) {
      const size_t count = h - 1;
      double rho = 0.0;
      if (count >= others_shift && count - others_shift < excl_len) {
        rho = e * (*excl)[count - others_shift];
      }
      p += rho;
      if (out->has_rank_probabilities) out->rank_prob[i * k + (h - 1)] = rho;
      if (track_best && !t.is_null && rho > out->best_rank_prob[h - 1]) {
        out->best_rank_prob[h - 1] = rho;
        out->best_rank_index[h - 1] = static_cast<int32_t>(i);
      }
    }
    out->topk_prob[i] = p;

    // --- 3. Advance past t_i: tau_l's above-mass grows by e.
    if (state[l] == XTupleState::kSaturated) return;  // shift absorbs it
    const double q_new = q[l] + e;
    q[l] = q_new;
    if (q_new >= kSaturationThreshold) {
      // tau_l now always contributes: fold it into the shift. `excl`
      // already holds the vector without tau_l's factor.
      if (state[l] == XTupleState::kActive) {
        c.assign(excl->begin(), excl->end());
        --active;
      }
      state[l] = XTupleState::kSaturated;
      ++saturated;
    } else {
      // Multiply tau_l's updated Bernoulli factor into the others-vector.
      const std::vector<double>& base = *excl;
      const size_t top = base.size();  // counts 0..top-1
      c.resize(top + 1);
      c[top] = base[top - 1] * q_new;
      for (size_t j = top - 1; j > 0; --j) {
        c[j] = base[j] * (1.0 - q_new) + base[j - 1] * q_new;
      }
      c[0] = base[0] * (1.0 - q_new);
      if (state[l] == XTupleState::kInactive) {
        state[l] = XTupleState::kActive;
        ++active;
      }
      UCLEAN_DCHECK(c.size() == active + 1);
    }
  }
};

}  // namespace psr_internal
}  // namespace uclean

#endif  // UCLEAN_RANK_PSR_SCAN_CORE_H_
