// Internal Poisson-binomial scan core shared by the one-shot ComputePsr /
// ComputePsrLadder and the incremental PsrEngine. All drivers run the exact
// same per-tuple arithmetic through this state machine, which is what makes
// the engine's checkpoint/replay results bitwise indistinguishable from a
// from-scratch scan over the same database.
//
// Multi-k design.
//
// The count-vector recurrence is k-independent: the distribution of "how
// many x-tuples contribute a tuple ranked above the current position"
// evolves identically for every k, and only the emission (summing the
// first k entries of the exclusion view) and the Lemma-2 stop rule depend
// on k. The core therefore exposes the per-tuple work in three stages --
// BuildExclusion (k-independent, O(T) divide-out), EmitLadder (per-k
// emission from the shared exclusion view), Advance (k-independent, O(T)
// multiply-in) -- so one scan can serve an ascending ladder of k values:
// the expensive divide-out/multiply-in pair runs once per tuple however
// many k's are served, and the per-rank probabilities rho_i(h) are shared
// verbatim across every rung with k >= h. Because the head mass
// Pr[#contributors < k] is non-decreasing in k and non-increasing along
// the scan, the stop rule fires rung by rung from the smallest k upward;
// stopped rungs simply stop emitting while the scan continues for the
// larger ones.
//
// Numerical design.
//
// Naively one truncates the count vector at k and divides an x-tuple's
// Bernoulli factor out with the forward recurrence
//
//     c_excl[j] = (c[j] - c_excl[j-1] * q) / (1 - q),
//
// but that recurrence amplifies absolute rounding error by q/(1-q) PER
// INDEX: for an x-tuple whose remaining mass 1-q is small (heavily skewed
// alternatives, e.g. Gaussian histograms with sigma much smaller than the
// interval), the error explodes as (q/(1-q))^k and the output is garbage.
//
// This implementation is exact-and-stable instead:
//  * X-tuples whose above-mass q has reached 1 (within 1e-12) are pulled
//    out of the vector as an integer SHIFT (they always contribute one
//    tuple); the vector only covers the "unsaturated" x-tuples and is kept
//    UNTRUNCATED (length = #unsaturated + 1), so top seeds are exact.
//  * Dividing out a factor uses the forward recurrence when q <= 1/2
//    (error ratio q/(1-q) <= 1) and the backward recurrence
//        c_excl[j-1] = (c[j] - (1-q) * c_excl[j]) / q
//    seeded exactly from the top (c_excl[T-1] = c[T] / q) when q > 1/2
//    (error ratio (1-q)/q < 1, division by q >= 1/2). Both directions are
//    non-amplifying, so results hold to ~ulp for any mass skew and any k.
//  * The divide/multiply error is non-amplifying in ABSOLUTE terms (at
//    the scale of the vector's bulk, ~1), not relative to the smallest
//    coefficients: across thousands of positions the tail entries --
//    head masses near the stop threshold, low counts after many
//    saturations -- accumulate a noise floor that is pure rounding
//    lineage. The scan therefore REFRESHES the vector on a fixed grid:
//    at every live tuple whose ordinal (count of live tuples since rank
//    0) is a multiple of kCountRefreshInterval, the vector is
//    reconstituted from the per-x-tuple masses (RebuildCounts, an exact
//    product of the active factors). The grid is keyed to live ordinals,
//    which are invariant under checkpoint replay, tombstone compaction
//    and session overlays, so EVERY driver -- one-shot, engine replay,
//    pooled session, and every shard of a sharded scan -- performs the
//    refresh at the same tuples and stays bitwise identical to every
//    other. Rank-range sharding (rank/sharded_scan.h) leans on this:
//    shard cut points are grid points, so a shard's boundary state
//    (mass bookkeeping forwarded cheaply, vector rebuilt on entry) is
//    bit-for-bit the state the sequential scan has there.
//
// Cost: O(T) per tuple where T is the number of unsaturated x-tuples that
// overlap the scan position (bounded by the tuples scanned so far, which
// the Lemma-2 stop keeps small for ranked data), plus O(k_max) for
// emission across the whole ladder, plus an amortized O(T^2 /
// kCountRefreshInterval) per tuple for the refresh grid.

#ifndef UCLEAN_RANK_PSR_SCAN_CORE_H_
#define UCLEAN_RANK_PSR_SCAN_CORE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "model/database.h"
#include "model/tuple.h"
#include "rank/psr.h"

namespace uclean {
namespace psr_internal {

/// Per-x-tuple scan state.
enum class XTupleState : uint8_t {
  kInactive,   // no tuple passed yet (q == 0)
  kActive,     // 0 < q < 1: participates in the count vector
  kSaturated,  // q == 1 (within tolerance): folded into the shift
};

constexpr double kSaturationThreshold = 1.0 - 1e-12;

/// Count-vector refresh cadence in live-tuple ordinals (see the file
/// comment): every driver rebuilds the vector from the mass bookkeeping
/// at live ordinals 0, G, 2G, ... counted from rank 0. One shared
/// constant for the whole library -- the refresh points are part of the
/// arithmetic lineage, and changing them between two drivers would break
/// their bitwise agreement.
constexpr size_t kCountRefreshInterval = 4096;

/// Probabilistic generalization of the Lemma-2 stop: once the probability
/// that fewer than k tuples rank above the scan position drops below this
/// bound, every later tuple's top-k probability is below it too (p_i is at
/// most that head mass), so the scan stops. The induced quality error is
/// below n * |omega_max| * 1e-15, far inside the paper's 1e-8
/// cross-validation bar. Lemma 2 proper is the special case where the head
/// mass is exactly zero (k x-tuples saturated).
constexpr double kNegligibleHeadMass = 1e-15;

/// The k-independent scan state at one rank position, advanced tuple by
/// tuple.
struct ScanCore {
  // c[0..T]: distribution of the number of contributing unsaturated
  // x-tuples, where T is the current unsaturated-active count. Saturated
  // x-tuples add `saturated` contributors deterministically.
  std::vector<double> c;
  std::vector<double> c_excl;
  size_t active = 0;     // unsaturated active x-tuples (== c.size() - 1)
  size_t saturated = 0;

  std::vector<double> q;           // per-x-tuple above-mass (frozen once
                                   // saturated; unused from then on)
  std::vector<XTupleState> state;  // per-x-tuple scan state

  /// The exclusion view for one tuple: the count distribution over all
  /// OTHER x-tuples, split into a deterministic shift (saturated others)
  /// and a vector over the unsaturated others. Valid until the next
  /// BuildExclusion or Advance call on the core.
  struct Exclusion {
    size_t others_shift = 0;
    const std::vector<double>* counts = nullptr;
  };

  /// Resets to the scan-start state for `num_xtuples` x-tuples.
  void Init(size_t num_xtuples) {
    c.assign(1, 1.0);
    c_excl.clear();
    c_excl.reserve(num_xtuples + 1);
    active = 0;
    saturated = 0;
    q.assign(num_xtuples, 0.0);
    state.assign(num_xtuples, XTupleState::kInactive);
  }

  /// Reconstitutes `c` from the mass bookkeeping alone: the product of
  /// every active x-tuple's Bernoulli factor, multiplied in ascending
  /// x-tuple order with exactly the arithmetic Advance's in-place
  /// (aliased) multiply performs. A pure function of (q, state), so any
  /// two cores with identical bookkeeping rebuild identical vectors --
  /// the property the refresh grid and shard boundary hand-off rely on.
  void RebuildCounts() {
    c.assign(1, 1.0);
    size_t rebuilt = 0;
    for (size_t l = 0; l < state.size(); ++l) {
      if (state[l] != XTupleState::kActive) continue;
      const double ql = q[l];
      const size_t top = c.size();
      c.resize(top + 1);
      // Reads of c[j] and c[j - 1] see pre-update values: writes descend.
      c[top] = c[top - 1] * ql;
      for (size_t j = top - 1; j > 0; --j) {
        c[j] = c[j] * (1.0 - ql) + c[j - 1] * ql;
      }
      c[0] = c[0] * (1.0 - ql);
      ++rebuilt;
    }
    UCLEAN_CHECK(rebuilt == active);
  }

  /// True when the (generalized) Lemma-2 rule says every tuple at or after
  /// the current position has negligible top-k probability. Monotone both
  /// along the scan (the contributor count is stochastically non-
  /// decreasing) and downward in k (the head mass only shrinks), so once a
  /// rung of a ladder stops, it stays stopped and so do all smaller rungs.
  bool ShouldStop(size_t k) const {
    if (saturated >= k) return true;  // Lemma 2 proper
    // Head mass: Pr[fewer than k x-tuples contribute above the position].
    double head = 0.0;
    const size_t head_top = std::min(k - saturated, c.size());
    for (size_t j = 0; j < head_top; ++j) head += c[j];
    return head < kNegligibleHeadMass;
  }

  /// Builds the exclusion view for tuple `t` (others = all x-tuples except
  /// t's own tau_l), dividing tau_l's Bernoulli factor out of the count
  /// vector when it is active.
  Exclusion BuildExclusion(const Tuple& t) {
    const int32_t l = t.xtuple;
    Exclusion ex;
    ex.others_shift = saturated;
    ex.counts = &c;
    switch (state[l]) {
      case XTupleState::kInactive:
        break;  // tau_l not in the vector: excl == c
      case XTupleState::kSaturated:
        // tau_l sits in the shift (possible only when its residual mass,
        // and hence t.prob, is below the saturation tolerance).
        ex.others_shift = saturated - 1;
        break;
      case XTupleState::kActive: {
        const double ql = q[l];
        const size_t top = active;  // c has indices 0..top
        c_excl.resize(top);         // exclusion has indices 0..top-1
        if (ql <= 0.5) {
          const double headroom = 1.0 - ql;
          c_excl[0] = c[0] / headroom;
          for (size_t j = 1; j < top; ++j) {
            double v = (c[j] - c_excl[j - 1] * ql) / headroom;
            c_excl[j] = v < 0.0 ? 0.0 : v;
          }
        } else {
          c_excl[top - 1] = c[top] / ql;
          for (size_t j = top - 1; j > 0; --j) {
            double v = (c[j] - (1.0 - ql) * c_excl[j]) / ql;
            c_excl[j - 1] = v < 0.0 ? 0.0 : v;
          }
        }
        ex.counts = &c_excl;
        break;
      }
    }
    return ex;
  }

  /// Advances the state past `t`: tau_l's above-mass grows by t.prob. `ex`
  /// must be the exclusion view built for `t`.
  void Advance(const Tuple& t, const Exclusion& ex) {
    const int32_t l = t.xtuple;
    if (state[l] == XTupleState::kSaturated) return;  // shift absorbs it
    const double q_new = q[l] + t.prob;
    q[l] = q_new;
    if (q_new >= kSaturationThreshold) {
      // tau_l now always contributes: fold it into the shift. `ex`
      // already holds the vector without tau_l's factor.
      if (state[l] == XTupleState::kActive) {
        c.assign(ex.counts->begin(), ex.counts->end());
        --active;
      }
      state[l] = XTupleState::kSaturated;
      ++saturated;
    } else {
      // Multiply tau_l's updated Bernoulli factor into the others-vector.
      const std::vector<double>& base = *ex.counts;
      const size_t top = base.size();  // counts 0..top-1
      c.resize(top + 1);
      c[top] = base[top - 1] * q_new;
      for (size_t j = top - 1; j > 0; --j) {
        c[j] = base[j] * (1.0 - q_new) + base[j - 1] * q_new;
      }
      c[0] = base[0] * (1.0 - q_new);
      if (state[l] == XTupleState::kInactive) {
        state[l] = XTupleState::kActive;
        ++active;
      }
      UCLEAN_DCHECK(c.size() == active + 1);
    }
  }
};

/// Emits tuple `t` at rank index `i` into every still-active rung
/// `outs[first_active..]` (ascending k). The per-rank probabilities
/// rho_i(h) are computed once from the shared exclusion view and each
/// rung's top-k probability is the running prefix sum at its own k, so the
/// whole ladder costs one O(k_max) pass. When `track_best` is set the
/// per-rank argmax trackers are updated for every active rung (only valid
/// for a single uninterrupted scan from rank 0).
inline void EmitLadder(const Tuple& t, size_t i, const ScanCore::Exclusion& ex,
                       const std::vector<PsrOutput*>& outs, size_t first_active,
                       bool track_best) {
  const size_t rungs = outs.size();
  if (first_active >= rungs) return;
  const double e = t.prob;
  const std::vector<double>& excl = *ex.counts;
  const size_t excl_len = excl.size();
  const size_t k_max = outs[rungs - 1]->k;
  const bool store_matrix = outs[rungs - 1]->has_rank_probabilities;
  const bool track = track_best && !t.is_null;

  double p = 0.0;
  size_t next = first_active;  // rung whose k the prefix sum reaches next
  for (size_t h = 1; h <= k_max; ++h) {
    const size_t count = h - 1;
    double rho = 0.0;
    if (count >= ex.others_shift && count - ex.others_shift < excl_len) {
      rho = e * excl[count - ex.others_shift];
    }
    p += rho;
    // Every rung at or past `next` has k >= h; rho is the same for all.
    if (store_matrix) {
      for (size_t j = next; j < rungs; ++j) {
        outs[j]->rank_prob[i * outs[j]->k + (h - 1)] = rho;
      }
    }
    if (track) {
      for (size_t j = next; j < rungs; ++j) {
        if (rho > outs[j]->best_rank_prob[h - 1]) {
          outs[j]->best_rank_prob[h - 1] = rho;
          outs[j]->best_rank_index[h - 1] = static_cast<int32_t>(i);
        }
      }
    }
    while (next < rungs && outs[next]->k == h) {
      outs[next]->topk_prob[i] = p;
      ++next;
    }
  }
}

/// Sizes and zeroes one PsrOutput per rung of `ladder` for a scan over
/// `db` (defined in psr.cc, shared with the engine's Create).
void InitLadderOutputs(const ProbabilisticDatabase& db, const KLadder& ladder,
                       const PsrOptions& options,
                       std::vector<PsrOutput>* outputs);

/// The scan loop shared by the one-shot drivers and the engine: runs
/// positions [begin, n) of `db` through `core`, emitting into the ladder
/// `outs` (ascending k; rungs before `first_active` are already stopped
/// and keep their scan_end). `live_at_begin` is the live-tuple ordinal of
/// position `begin` (0 for full scans; checkpoints record it for
/// replays): the count vector refreshes at every live ordinal that is a
/// multiple of kCountRefreshInterval, BEFORE that position's stop checks,
/// so every driver makes the same stop decisions from the same refreshed
/// state. `maybe_checkpoint(i, live)` is invoked for every live position
/// before it is processed -- the engine snapshots there, the one-shot
/// drivers pass a no-op. On return `first_active` reflects the rungs
/// still unstopped (scan_end == n).
///
/// `Db` is ProbabilisticDatabase or any type exposing its read interface
/// (num_tuples / tuple / is_tombstone) -- per-session DatabaseOverlay
/// views run the exact same arithmetic, which keeps pooled sessions
/// bitwise identical to dedicated ones.
template <typename Db, typename CheckpointFn>
inline void RunLadderScan(const Db& db, size_t begin, size_t live_at_begin,
                          bool early_termination, ScanCore& core,
                          const std::vector<PsrOutput*>& outs,
                          size_t& first_active, bool track_best,
                          CheckpointFn&& maybe_checkpoint) {
  const size_t n = db.num_tuples();
  const size_t rungs = outs.size();
  size_t live = live_at_begin;
  size_t i = begin;
  for (; i < n; ++i) {
    const bool is_live = !db.is_tombstone(i);
    if (is_live && live % kCountRefreshInterval == 0) core.RebuildCounts();
    if (early_termination) {
      // The stop rule fires smallest-k first (head mass grows with k).
      while (first_active < rungs &&
             core.ShouldStop(outs[first_active]->k)) {
        outs[first_active]->scan_end = i;
        ++first_active;
      }
      if (first_active == rungs) return;
    }
    if (!is_live) continue;  // cleaning-session garbage slot
    maybe_checkpoint(i, live);
    const Tuple& t = db.tuple(i);
    const ScanCore::Exclusion ex = core.BuildExclusion(t);
    EmitLadder(t, i, ex, outs, first_active, track_best);
    core.Advance(t, ex);
    ++live;
  }
  for (size_t j = first_active; j < rungs; ++j) outs[j]->scan_end = n;
}

}  // namespace psr_internal
}  // namespace uclean

#endif  // UCLEAN_RANK_PSR_SCAN_CORE_H_
