// PSR: rank-probability computation for probabilistic top-k queries.
//
// Computes, for every tuple t_i of a rank-sorted x-tuple database, the
// rank-h probabilities rho_i(h) (Definition 2) and the top-k probability
// p_i = sum_h rho_i(h) (Definition 3) in O(kn) total time, following the
// dynamic-programming approach of Bernecker et al. (TKDE 2010) that the
// paper adopts (Section IV-B).
//
// Sketch: scan tuples in descending rank order, maintaining the
// Poisson-binomial distribution c[j] = Pr[exactly j x-tuples contribute a
// tuple ranked above the current position], where x-tuple tau_l contributes
// with probability q_l = (mass of tau_l above the position). For tuple t_i
// in tau_l, conditioning on t_i's existence excludes the rest of tau_l, so
// tau_l's Bernoulli factor is divided out of c, giving
// rho_i(h) = e_i * c_excl[h-1]. After emitting t_i, q_l grows by e_i and
// the factor is multiplied back in.
//
// Numerically, the divide-out is performed in a provably stable direction
// (forward for q_l <= 1/2, backward from an exact untruncated top seed for
// q_l > 1/2), and x-tuples whose above-mass reaches 1 are folded into an
// exact integer shift; see the implementation notes in psr_scan_core.h.
// Results therefore hold to ~ulp precision for arbitrarily skewed
// alternative masses and arbitrarily large k.
//
// Early termination (Lemma 2): once at least k x-tuples are saturated
// (q_l = 1, i.e. they certainly contribute a higher-ranked tuple), every
// later tuple has zero top-k probability and the scan stops.
//
// Incremental recomputation: adaptive cleaning sessions re-derive rank
// probabilities after every pclean success. A successful clean collapses
// one x-tuple tau_l to a certain tuple while leaving every other tuple's
// rank unchanged, so the scan state at every position ranked above tau_l's
// best alternative is untouched -- tau_l was still inactive there. The
// PsrEngine (psr_engine.h) exploits this: it checkpoints the scan state at
// intervals during the initial pass, and on a clean restores the last
// checkpoint at or before the collapsed x-tuple's first member and replays
// only the suffix. Within the replay the collapsed x-tuple's certain tuple
// saturates on contact and is folded straight into the integer shift, and
// its old Bernoulli factor never enters the count vector (the restored
// checkpoint predates the x-tuple's activation), so no explicit divide-out
// is needed and the replayed suffix is bitwise identical to a from-scratch
// scan of the cleaned database. Tuples are addressed by rank index
// throughout; tombstoned slots (ProbabilisticDatabase::ApplyCleanOutcome)
// are skipped by both the one-shot scan and the engine.

#ifndef UCLEAN_RANK_PSR_H_
#define UCLEAN_RANK_PSR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "exec/thread_pool.h"
#include "model/database.h"

namespace uclean {

class DatabaseOverlay;

/// An ascending ladder of k values served by one shared PSR scan. The
/// count-vector recurrence of the scan is k-independent until emission, so
/// a whole ladder of top-k queries (Figure 5's sharing effect, taken
/// across k) costs one pass: the per-rank probabilities rho_i(h) are
/// computed once and each rung reads its own prefix sum.
struct KLadder {
  /// Strictly ascending, all >= 1. Use Of() to build from arbitrary input.
  std::vector<size_t> ks;

  /// Validates, sorts and dedups `ks`. Fails with InvalidArgument when the
  /// list is empty or contains a zero.
  static Result<KLadder> Of(std::vector<size_t> ks);

  /// Checks the invariant every consumer relies on (non-empty, strictly
  /// ascending, positive) -- holds by construction for ladders built with
  /// Of(), but hand-assembled ones go through the scan drivers too.
  Status Validate() const;

  size_t size() const { return ks.size(); }
  size_t max_k() const { return ks.back(); }
  size_t operator[](size_t i) const { return ks[i]; }

  /// Index of `k` in the ladder, or npos when absent.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t IndexOf(size_t k) const;

  /// "{5, 10, 25, 50}".
  std::string ToString() const;
};

/// Tuning knobs for the PSR scan.
struct PsrOptions {
  /// Apply the Lemma-2 stop rule (on by default; results are identical
  /// either way, later tuples provably have p_i = 0).
  bool early_termination = true;

  /// Keep the full n-by-k rank-probability matrix. Costs O(nk) memory;
  /// only the brute-force validation tests and small examples need it —
  /// query evaluation uses the incrementally tracked per-rank argmaxes.
  bool store_rank_probabilities = false;
};

/// Rank-probability information for one database and one k.
struct PsrOutput {
  size_t k = 0;

  /// p_i per rank index (includes materialized null tuples; zero for every
  /// tuple after the Lemma-2 stop point).
  std::vector<double> topk_prob;

  /// Number of tuples with strictly positive top-k probability.
  size_t num_nonzero = 0;

  /// Rank index at which the Lemma-2 rule stopped the scan (== num_tuples
  /// when the whole database was scanned).
  size_t scan_end = 0;

  /// For each h in 1..k: the highest rho_i(h) over *real* tuples, and the
  /// rank index attaining it (-1 if no real tuple can take rank h). This is
  /// exactly the U-kRanks answer (Section III-B).
  std::vector<double> best_rank_prob;
  std::vector<int32_t> best_rank_index;

  /// Flattened n-by-k matrix rho[i*k + (h-1)] when
  /// PsrOptions::store_rank_probabilities is set; empty otherwise.
  std::vector<double> rank_prob;
  bool has_rank_probabilities = false;

  /// rho_i(h) from the stored matrix. Requires has_rank_probabilities,
  /// rank_index < num_tuples and h in [1, k].
  double rank_probability(size_t rank_index, size_t h) const {
    UCLEAN_DCHECK(has_rank_probabilities);
    UCLEAN_DCHECK(h >= 1 && h <= k);
    UCLEAN_DCHECK(rank_index * k + (h - 1) < rank_prob.size());
    return rank_prob[rank_index * k + (h - 1)];
  }
};

/// Everything one PSR scan needs, in one request-shaped value: the rung
/// ladder, the scan knobs, the execution knobs (threads AND compute
/// kernel -- ExecOptions::kernel), an optional session overlay to scan
/// instead of the base database, and the checkpoint cadence for engine
/// consumers. This is THE way to ask for a scan: ComputePsrLadder and
/// PsrEngine::Create take it directly.
struct ScanRequest {
  /// Engine checkpoint cadence default, in live tuples (see
  /// PsrEngine::kInitialCheckpointInterval, which aliases this).
  static constexpr size_t kDefaultCheckpointInterval = 64;

  /// The k rungs served by the scan (ascending; build with KLadder::Of).
  KLadder ladder;

  /// Scan knobs (early termination, rank-probability matrix).
  PsrOptions psr;

  /// Execution knobs: thread count, shared pool, compute kernel.
  ExecOptions exec;

  /// When set, the scan runs over this copy-on-write session view
  /// instead of the base database (one-shot scans only; engines fork
  /// sessions through PsrEngine::ForkSession/ReplaySession). The
  /// overlay's base() must be the database the request is issued
  /// against, and it must outlive the call.
  const DatabaseOverlay* overlay = nullptr;

  /// Engine snapshot cadence in live tuples (PsrEngine::Create only;
  /// one-shot scans keep no checkpoints and ignore it).
  size_t checkpoint_interval = kDefaultCheckpointInterval;

  /// A single-rung request for a plain top-k query -- the 1-rung ladder
  /// IS the single-k path. Fails with InvalidArgument when k == 0.
  static Result<ScanRequest> ForK(size_t k, const PsrOptions& psr = {});

  /// A request for `ks` (validated, sorted, deduped via KLadder::Of).
  static Result<ScanRequest> ForLadder(std::vector<size_t> ks,
                                       const PsrOptions& psr = {});

  /// The invariants every scan driver relies on: a valid ladder and a
  /// positive checkpoint interval. (Exec and kernel are resolved -- and
  /// validated -- per call by ResolveExec/SelectScanKernel.)
  Status Validate() const;
};

/// The result of one requested scan: a complete PsrOutput per rung of the
/// request's ladder (ascending k), plus the concrete kernel the scan ran
/// on (what KernelKind::kAuto resolved to; never kAuto).
struct ScanResult {
  std::vector<PsrOutput> outputs;
  KernelKind kernel = KernelKind::kScalar;

  size_t num_rungs() const { return outputs.size(); }

  /// The output of rung `rung` -- `output()` is the single-k accessor.
  const PsrOutput& output(size_t rung = 0) const {
    UCLEAN_DCHECK(rung < outputs.size());
    return outputs[rung];
  }
};

/// Runs ONE shared PSR scan serving every rung of `request.ladder`:
/// output j holds the complete PsrOutput for k = ladder[j], identical
/// (to rounding) to an independent single-k run, at roughly the cost of
/// the largest rung alone -- the count-vector work is shared and each
/// rung stops emitting at its own Lemma-2 point.
///
/// Parallelism: with ExecOptions{num_threads > 1} the scan is sharded by
/// rank range (rank/sharded_scan.h); results agree with the sequential
/// form to 1e-12 for any thread/shard count (bitwise in practice).
/// Kernels: the scan runs on the kernel ExecOptions::kernel resolves to;
/// every kernel is bitwise equal to every other (rank/kernel.h), so this
/// knob never changes results either.
///
/// Fails with InvalidArgument when the request, its exec options or its
/// kernel choice do not validate, or when request.overlay is set but its
/// base() is not `db`.
Result<ScanResult> ComputePsrLadder(const ProbabilisticDatabase& db,
                                    const ScanRequest& request);

/// Cost probe for the serving front-end's plan selection
/// (serve/cost_model.h): predicts the live prefix depth -- the Lemma-2
/// stop point, i.e. how many rank positions a top-k scan would actually
/// touch -- for an arbitrary k, from the measured stop points of rungs an
/// engine or pool has already scanned. Depth is monotone in k, so the
/// probe interpolates piecewise-linearly between the known (k, scan_end)
/// anchors, pins depth(0) = 0 below the first rung, extrapolates the last
/// segment's slope above the top rung, and clamps to [0, num_tuples].
/// Pure value; safe to copy and read from any thread.
struct ScanDepthProbe {
  size_t num_tuples = 0;
  /// (k, measured scan_end) anchors, strictly ascending in k.
  std::vector<std::pair<size_t, size_t>> rungs;

  /// Anchors from an already-scanned ladder's outputs. `outputs[j]` must
  /// be rung j of `ladder` (PsrEngine / ScanResult order).
  static ScanDepthProbe FromOutputs(const KLadder& ladder,
                                    const std::vector<const PsrOutput*>& outputs,
                                    size_t num_tuples);

  /// Estimated scan depth for a top-k scan at `k`.
  size_t EstimateDepth(size_t k) const;
};

}  // namespace uclean

#endif  // UCLEAN_RANK_PSR_H_
