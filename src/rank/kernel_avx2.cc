// AVX2 scan kernel. This is the ONLY translation unit compiled with
// -mavx2 (CMake applies it per-file when the compiler supports the
// flag), so the library binary stays runnable on any x86-64 host:
// whether this code ever executes is decided at runtime by
// SelectScanKernel's CPU probe. Compiled with -ffp-contract=off and
// without -mfma: per-lane packed mul/add round exactly like the scalar
// kernel's separate mul and add, which is what keeps the two kernels
// bitwise equal (see the contract in kernel.h).

#include "rank/kernel.h"

#if defined(UCLEAN_HAVE_AVX2)

#include <immintrin.h>

namespace uclean {
namespace psr_internal {
namespace {

void FoldFactorAvx2(double* c, const double* base, std::size_t top,
                    double q) {
  const double h = 1.0 - q;
  c[top] = base[top - 1] * q;
  const __m256d vh = _mm256_set1_pd(h);
  const __m256d vq = _mm256_set1_pd(q);
  // Same descending order as the scalar kernel: a chunk writes
  // c[j-3..j] from loads of base[j-4..j], and every later load index is
  // strictly below every earlier store index, so the in-place (c ==
  // base) case stays alias-safe exactly as in the scalar loop.
  std::size_t j = top - 1;
  while (j >= 4) {
    const __m256d hi = _mm256_loadu_pd(base + j - 3);
    const __m256d lo = _mm256_loadu_pd(base + j - 4);
    const __m256d r =
        _mm256_add_pd(_mm256_mul_pd(hi, vh), _mm256_mul_pd(lo, vq));
    _mm256_storeu_pd(c + j - 3, r);
    j -= 4;
  }
  for (; j > 0; --j) {
    c[j] = base[j] * h + base[j - 1] * q;
  }
  c[0] = base[0] * h;
}

void ScaleAvx2(double* dst, const double* src, std::size_t n, double e) {
  const __m256d ve = _mm256_set1_pd(e);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_mul_pd(ve, _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] = e * src[i];
}

void UpdateArgmaxAvx2(double* best_prob, int32_t* best_index,
                      const double* rho, std::size_t n, int32_t rank_index) {
  const __m128i vi = _mm_set1_epi32(rank_index);
  // Compresses the four 64-bit compare-mask lanes into four 32-bit
  // lanes (low dword of each) so the int32 index array can blend on the
  // same predicate as the double array.
  const __m256i pick = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d r = _mm256_loadu_pd(rho + i);
    const __m256d b = _mm256_loadu_pd(best_prob + i);
    // Strict greater-than, ordered: the exact predicate of the scalar
    // tracker (NaNs never occur; probabilities are finite).
    const __m256d gt = _mm256_cmp_pd(r, b, _CMP_GT_OQ);
    if (_mm256_movemask_pd(gt) == 0) continue;
    _mm256_storeu_pd(best_prob + i, _mm256_blendv_pd(b, r, gt));
    const __m128i m32 = _mm256_castsi256_si128(
        _mm256_permutevar8x32_epi32(_mm256_castpd_si256(gt), pick));
    const __m128i cur =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(best_index + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(best_index + i),
                     _mm_blendv_epi8(cur, vi, m32));
  }
  for (; i < n; ++i) {
    if (rho[i] > best_prob[i]) {
      best_prob[i] = rho[i];
      best_index[i] = rank_index;
    }
  }
}

double EmitSegmentAvx2(double* dst, const double* src, std::size_t n,
                       double e, double p, double* best_prob,
                       int32_t* best_index, int32_t rank_index) {
  // Vectorized scale, then the prefix accumulation as the same strictly
  // sequential scalar sum the fused scalar sweep performs (a packed
  // horizontal reduction would re-associate it), then the vectorized
  // argmax over the freshly written window. Three passes where the
  // scalar kernel makes one -- but each element sees the exact same
  // mul, add and compare, so the results are bitwise equal.
  ScaleAvx2(dst, src, n, e);
  for (std::size_t i = 0; i < n; ++i) p += dst[i];
  if (best_prob != nullptr) {
    UpdateArgmaxAvx2(best_prob, best_index, dst, n, rank_index);
  }
  return p;
}

}  // namespace

const ScanKernel* Avx2ScanKernelImpl() {
  // The divide-out recurrences are sequential mul+sub+div chains; a
  // lane-parallel evaluation cannot reproduce their roundings, so the
  // AVX2 table reuses the scalar pair verbatim (kernel.h explains why
  // this is exact rather than a compromise).
  static const ScanKernel kernel = {
      KernelKind::kAvx2,  "avx2",             FoldFactorAvx2,
      DivideOutFwdScalar, DivideOutBwdScalar, ScaleAvx2,
      UpdateArgmaxAvx2,   EmitSegmentAvx2,
  };
  return &kernel;
}

}  // namespace psr_internal
}  // namespace uclean

#else  // !UCLEAN_HAVE_AVX2

namespace uclean {
namespace psr_internal {

const ScanKernel* Avx2ScanKernelImpl() { return nullptr; }

}  // namespace psr_internal
}  // namespace uclean

#endif  // UCLEAN_HAVE_AVX2
