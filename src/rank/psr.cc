#include "rank/psr.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "model/database_overlay.h"
#include "rank/kernel.h"
#include "rank/psr_scan_core.h"
#include "rank/sharded_scan.h"

namespace uclean {

// The per-tuple arithmetic (exclusion build, ladder emission, advance) and
// its numerical-stability notes live in psr_scan_core.h, shared with the
// incremental PsrEngine so all drivers always agree bitwise.

Result<KLadder> KLadder::Of(std::vector<size_t> ks) {
  if (ks.empty()) {
    return Status::InvalidArgument("k-ladder must not be empty");
  }
  std::sort(ks.begin(), ks.end());
  ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
  if (ks.front() == 0) {
    return Status::InvalidArgument("every k in a ladder must be positive");
  }
  KLadder ladder;
  ladder.ks = std::move(ks);
  return ladder;
}

Status KLadder::Validate() const {
  if (ks.empty() || ks.front() == 0 || !std::is_sorted(ks.begin(), ks.end()) ||
      std::adjacent_find(ks.begin(), ks.end()) != ks.end()) {
    return Status::InvalidArgument(
        "k-ladder must be non-empty, strictly ascending and positive "
        "(build it with KLadder::Of)");
  }
  return Status::OK();
}

size_t KLadder::IndexOf(size_t k) const {
  const auto it = std::lower_bound(ks.begin(), ks.end(), k);
  if (it == ks.end() || *it != k) return npos;
  return static_cast<size_t>(it - ks.begin());
}

std::string KLadder::ToString() const {
  std::string out = "{";
  for (size_t j = 0; j < ks.size(); ++j) {
    if (j > 0) out += ", ";
    out += std::to_string(ks[j]);
  }
  return out + "}";
}

Result<ScanRequest> ScanRequest::ForK(size_t k, const PsrOptions& psr) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  ScanRequest request;
  request.ladder.ks = {k};
  request.psr = psr;
  return request;
}

Result<ScanRequest> ScanRequest::ForLadder(std::vector<size_t> ks,
                                           const PsrOptions& psr) {
  Result<KLadder> ladder = KLadder::Of(std::move(ks));
  if (!ladder.ok()) return ladder.status();
  ScanRequest request;
  request.ladder = *std::move(ladder);
  request.psr = psr;
  return request;
}

Status ScanRequest::Validate() const {
  UCLEAN_RETURN_IF_ERROR(ladder.Validate());
  if (checkpoint_interval == 0) {
    return Status::InvalidArgument("checkpoint_interval must be positive");
  }
  return Status::OK();
}

namespace psr_internal {

void InitLadderOutputs(size_t num_tuples, const KLadder& ladder,
                       const PsrOptions& options,
                       std::vector<PsrOutput>* outputs) {
  outputs->clear();
  outputs->resize(ladder.size());
  for (size_t j = 0; j < ladder.size(); ++j) {
    PsrOutput& out = (*outputs)[j];
    out.k = ladder[j];
    out.topk_prob.assign(num_tuples, 0.0);
    out.best_rank_prob.assign(out.k, 0.0);
    out.best_rank_index.assign(out.k, -1);
    if (options.store_rank_probabilities) {
      out.rank_prob.assign(num_tuples * out.k, 0.0);
      out.has_rank_probabilities = true;
    }
  }
}

}  // namespace psr_internal

namespace {

// The one-shot ladder scan, generic over the scanned view (`Db` is
// ProbabilisticDatabase or DatabaseOverlay -- both expose num_tuples /
// num_xtuples / tuple / is_tombstone). Request/exec/kernel validation
// happened in the caller; `kernel` is the concrete resolved table.
template <typename Db>
Result<ScanResult> ScanRequested(const Db& db, const ScanRequest& request,
                                 const ExecOptions& resolved,
                                 const psr_internal::ScanKernel* kernel) {
  ScanResult result;
  result.kernel = kernel->kind;
  psr_internal::InitLadderOutputs(db.num_tuples(), request.ladder, request.psr,
                                  &result.outputs);
  std::vector<PsrOutput*> outs;
  outs.reserve(result.outputs.size());
  for (PsrOutput& out : result.outputs) outs.push_back(&out);

  psr_internal::ScanCore core;
  core.Init(db.num_xtuples(), kernel);
  bool sharded = false;
  if (resolved.parallel()) {
    // One-shot scans keep no checkpoints: the snapshot hook is a no-op.
    const auto no_checkpoints = [](size_t, size_t) {
      return [](const psr_internal::ScanCore&, size_t, size_t) {};
    };
    sharded = psr_internal::RunShardedLadderScan(
        db, 0, 0, request.psr, resolved.pool.get(),
        resolved.min_tuples_per_shard, core, outs, /*track_best=*/true,
        no_checkpoints);
  }
  if (!sharded) {
    size_t first_active = 0;
    psr_internal::RunLadderScan(db, 0, 0, request.psr.early_termination, core,
                                outs, first_active, /*track_best=*/true,
                                [](size_t, size_t) {});
  }
  ExecParallelFor(resolved, result.outputs.size(), [&result](size_t j) {
    PsrOutput& out = result.outputs[j];
    out.num_nonzero = 0;
    for (double p : out.topk_prob) {
      if (p > 0.0) ++out.num_nonzero;
    }
  });
  return result;
}

}  // namespace

Result<ScanResult> ComputePsrLadder(const ProbabilisticDatabase& db,
                                    const ScanRequest& request) {
  UCLEAN_RETURN_IF_ERROR(request.Validate());
  Result<ExecOptions> resolved = ResolveExec(request.exec);
  if (!resolved.ok()) return resolved.status();
  Result<const psr_internal::ScanKernel*> kernel =
      SelectScanKernel(resolved->kernel);
  if (!kernel.ok()) return kernel.status();
  if (request.overlay != nullptr) {
    if (&request.overlay->base() != &db) {
      return Status::InvalidArgument(
          "request.overlay must be a view over the database the request "
          "is issued against");
    }
    return ScanRequested(*request.overlay, request, *resolved, *kernel);
  }
  return ScanRequested(db, request, *resolved, *kernel);
}

ScanDepthProbe ScanDepthProbe::FromOutputs(
    const KLadder& ladder, const std::vector<const PsrOutput*>& outputs,
    size_t num_tuples) {
  UCLEAN_CHECK(ladder.size() == outputs.size());
  ScanDepthProbe probe;
  probe.num_tuples = num_tuples;
  probe.rungs.reserve(ladder.size());
  for (size_t j = 0; j < ladder.size(); ++j) {
    probe.rungs.emplace_back(ladder[j], outputs[j]->scan_end);
  }
  return probe;
}

size_t ScanDepthProbe::EstimateDepth(size_t k) const {
  if (rungs.empty()) return num_tuples;  // no anchors: assume a full scan
  const auto interpolate = [](size_t k0, size_t d0, size_t k1, size_t d1,
                              size_t k) -> double {
    if (k1 <= k0) return static_cast<double>(d1);
    const double t = static_cast<double>(k - k0) /
                     static_cast<double>(k1 - k0);
    return static_cast<double>(d0) +
           t * (static_cast<double>(d1) - static_cast<double>(d0));
  };
  double depth = 0.0;
  if (k <= rungs.front().first) {
    // Below the first anchor: a k = 0 scan touches nothing.
    depth = interpolate(0, 0, rungs.front().first, rungs.front().second, k);
  } else if (k >= rungs.back().first) {
    // Above the top anchor: extend the last segment's slope (a single
    // anchor extends flat -- the only depth signal there is).
    const auto [k1, d1] = rungs.back();
    const auto [k0, d0] =
        rungs.size() > 1 ? rungs[rungs.size() - 2] : std::make_pair(k1, d1);
    const double slope = k1 > k0 ? (static_cast<double>(d1) -
                                    static_cast<double>(d0)) /
                                       static_cast<double>(k1 - k0)
                                 : 0.0;
    depth = static_cast<double>(d1) +
            slope * static_cast<double>(k - k1);
  } else {
    for (size_t j = 1; j < rungs.size(); ++j) {
      if (k <= rungs[j].first) {
        depth = interpolate(rungs[j - 1].first, rungs[j - 1].second,
                            rungs[j].first, rungs[j].second, k);
        break;
      }
    }
  }
  if (depth < 0.0) depth = 0.0;
  const double cap = static_cast<double>(num_tuples);
  if (depth > cap) depth = cap;
  return static_cast<size_t>(depth);
}

}  // namespace uclean
