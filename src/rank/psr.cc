#include "rank/psr.h"

#include "rank/psr_scan_core.h"

namespace uclean {

// The per-tuple arithmetic (exclusion build, emission, advance) and its
// numerical-stability notes live in psr_scan_core.h, shared with the
// incremental PsrEngine so the two always agree bitwise.

Result<PsrOutput> ComputePsr(const ProbabilisticDatabase& db, size_t k,
                             const PsrOptions& options) {
  if (k == 0) return Status::InvalidArgument("k must be positive");

  const size_t n = db.num_tuples();

  PsrOutput out;
  out.k = k;
  out.topk_prob.assign(n, 0.0);
  out.best_rank_prob.assign(k, 0.0);
  out.best_rank_index.assign(k, -1);
  if (options.store_rank_probabilities) {
    out.rank_prob.assign(n * k, 0.0);
    out.has_rank_probabilities = true;
  }

  psr_internal::ScanCore core;
  core.Init(db.num_xtuples(), k);

  size_t i = 0;
  for (; i < n; ++i) {
    if (options.early_termination && core.ShouldStop()) break;
    if (db.is_tombstone(i)) continue;  // cleaning-session garbage slot
    core.Step(db.tuple(i), i, &out, /*track_best=*/true);
  }
  out.scan_end = i;
  for (double p : out.topk_prob) {
    if (p > 0.0) ++out.num_nonzero;
  }
  return out;
}

}  // namespace uclean
