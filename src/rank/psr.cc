#include "rank/psr.h"

#include <algorithm>

#include "common/strings.h"
#include "rank/psr_scan_core.h"
#include "rank/sharded_scan.h"

namespace uclean {

// The per-tuple arithmetic (exclusion build, ladder emission, advance) and
// its numerical-stability notes live in psr_scan_core.h, shared with the
// incremental PsrEngine so all drivers always agree bitwise.

Result<KLadder> KLadder::Of(std::vector<size_t> ks) {
  if (ks.empty()) {
    return Status::InvalidArgument("k-ladder must not be empty");
  }
  std::sort(ks.begin(), ks.end());
  ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
  if (ks.front() == 0) {
    return Status::InvalidArgument("every k in a ladder must be positive");
  }
  KLadder ladder;
  ladder.ks = std::move(ks);
  return ladder;
}

Status KLadder::Validate() const {
  if (ks.empty() || ks.front() == 0 || !std::is_sorted(ks.begin(), ks.end()) ||
      std::adjacent_find(ks.begin(), ks.end()) != ks.end()) {
    return Status::InvalidArgument(
        "k-ladder must be non-empty, strictly ascending and positive "
        "(build it with KLadder::Of)");
  }
  return Status::OK();
}

size_t KLadder::IndexOf(size_t k) const {
  const auto it = std::lower_bound(ks.begin(), ks.end(), k);
  if (it == ks.end() || *it != k) return npos;
  return static_cast<size_t>(it - ks.begin());
}

std::string KLadder::ToString() const {
  std::string out = "{";
  for (size_t j = 0; j < ks.size(); ++j) {
    if (j > 0) out += ", ";
    out += std::to_string(ks[j]);
  }
  return out + "}";
}

namespace psr_internal {

void InitLadderOutputs(const ProbabilisticDatabase& db, const KLadder& ladder,
                       const PsrOptions& options,
                       std::vector<PsrOutput>* outputs) {
  const size_t n = db.num_tuples();
  outputs->clear();
  outputs->resize(ladder.size());
  for (size_t j = 0; j < ladder.size(); ++j) {
    PsrOutput& out = (*outputs)[j];
    out.k = ladder[j];
    out.topk_prob.assign(n, 0.0);
    out.best_rank_prob.assign(out.k, 0.0);
    out.best_rank_index.assign(out.k, -1);
    if (options.store_rank_probabilities) {
      out.rank_prob.assign(n * out.k, 0.0);
      out.has_rank_probabilities = true;
    }
  }
}

}  // namespace psr_internal

Result<std::vector<PsrOutput>> ComputePsrLadder(const ProbabilisticDatabase& db,
                                                const KLadder& ladder,
                                                const PsrOptions& options) {
  return ComputePsrLadder(db, ladder, options, ExecOptions());
}

Result<std::vector<PsrOutput>> ComputePsrLadder(const ProbabilisticDatabase& db,
                                                const KLadder& ladder,
                                                const PsrOptions& options,
                                                const ExecOptions& exec) {
  UCLEAN_RETURN_IF_ERROR(ladder.Validate());
  Result<ExecOptions> resolved = ResolveExec(exec);
  if (!resolved.ok()) return resolved.status();

  std::vector<PsrOutput> outputs;
  psr_internal::InitLadderOutputs(db, ladder, options, &outputs);
  std::vector<PsrOutput*> outs;
  outs.reserve(outputs.size());
  for (PsrOutput& out : outputs) outs.push_back(&out);

  psr_internal::ScanCore core;
  core.Init(db.num_xtuples());
  bool sharded = false;
  if (resolved->parallel()) {
    // One-shot scans keep no checkpoints: the snapshot hook is a no-op.
    const auto no_checkpoints = [](size_t, size_t) {
      return [](const psr_internal::ScanCore&, size_t, size_t) {};
    };
    sharded = psr_internal::RunShardedLadderScan(
        db, 0, 0, options, resolved->pool.get(),
        resolved->min_tuples_per_shard, core, outs, /*track_best=*/true,
        no_checkpoints);
  }
  if (!sharded) {
    size_t first_active = 0;
    psr_internal::RunLadderScan(db, 0, 0, options.early_termination, core,
                                outs, first_active, /*track_best=*/true,
                                [](size_t, size_t) {});
  }
  ExecParallelFor(*resolved, outputs.size(), [&outputs](size_t j) {
    PsrOutput& out = outputs[j];
    out.num_nonzero = 0;
    for (double p : out.topk_prob) {
      if (p > 0.0) ++out.num_nonzero;
    }
  });
  return outputs;
}

Result<PsrOutput> ComputePsr(const ProbabilisticDatabase& db, size_t k,
                             const PsrOptions& options) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  KLadder ladder;
  ladder.ks = {k};
  Result<std::vector<PsrOutput>> outputs =
      ComputePsrLadder(db, ladder, options);
  if (!outputs.ok()) return outputs.status();
  return std::move((*outputs)[0]);
}

}  // namespace uclean
