#include "rank/sharded_scan.h"

#include <algorithm>

namespace uclean {
namespace psr_internal {

std::vector<GridPoint> PlanShardCuts(size_t begin, size_t live_at_begin,
                                     size_t hard_end,
                                     const std::vector<GridPoint>& grid,
                                     size_t num_threads,
                                     size_t min_tuples_per_shard) {
  if (grid.empty()) return {};
  // 4x oversubscription: per-position cost grows along the scan (more
  // active x-tuples), so equal-width shards are unequal work; extra
  // shards + dynamic claiming keep the tail from serializing.
  size_t shards = std::min(num_threads * 4, kMaxShardsPerScan);
  if (min_tuples_per_shard > 0) {
    // Grid spacing is kCountRefreshGridLive live tuples; honor a larger
    // requested minimum by capping the shard count against the walked
    // range (measured in live tuples, the unit shard work scales with).
    const size_t live_range =
        grid.back().live + kCountRefreshGridLive - live_at_begin;
    shards = std::min(shards, std::max<size_t>(1, live_range /
                                                      min_tuples_per_shard));
  }
  shards = std::min(shards, grid.size() + 1);
  if (shards < 2) return {};

  std::vector<GridPoint> cuts;
  cuts.reserve(shards + 1);
  cuts.push_back({begin, live_at_begin});
  size_t last_index = static_cast<size_t>(-1);
  for (size_t s = 1; s < shards; ++s) {
    // Evenly spaced over the collected grid; duplicates collapse when
    // the grid is sparser than the requested shard count.
    const size_t index = s * grid.size() / shards;
    if (index == last_index) continue;
    last_index = index;
    cuts.push_back(grid[index]);
  }
  cuts.push_back({hard_end, 0});  // end sentinel; live unused
  if (cuts.size() < 3) return {};
  return cuts;
}

}  // namespace psr_internal
}  // namespace uclean
