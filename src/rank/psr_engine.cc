#include "rank/psr_engine.h"

#include <algorithm>

#include "common/check.h"

namespace uclean {

Result<PsrEngine> PsrEngine::Create(const ProbabilisticDatabase& db, size_t k,
                                    const PsrOptions& options,
                                    size_t checkpoint_interval) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (checkpoint_interval == 0) {
    return Status::InvalidArgument("checkpoint interval must be positive");
  }

  PsrEngine engine;
  engine.options_ = options;
  engine.checkpoint_interval_ = checkpoint_interval;
  engine.out_.k = k;
  engine.out_.topk_prob.assign(db.num_tuples(), 0.0);
  engine.out_.best_rank_prob.assign(k, 0.0);
  engine.out_.best_rank_index.assign(k, -1);
  if (options.store_rank_probabilities) {
    engine.out_.rank_prob.assign(db.num_tuples() * k, 0.0);
    engine.out_.has_rank_probabilities = true;
  }
  engine.core_.Init(db.num_xtuples(), k);
  engine.RunScan(db, 0);
  return engine;
}

void PsrEngine::TakeCheckpoint(size_t pos) {
  if (checkpoints_.size() >= kMaxCheckpoints) {
    // Thin: keep every other checkpoint (always retaining the rank-0 one)
    // and double the interval, bounding memory while preserving coverage.
    size_t kept = 0;
    for (size_t j = 0; j < checkpoints_.size(); j += 2) {
      checkpoints_[kept++] = std::move(checkpoints_[j]);
    }
    checkpoints_.resize(kept);
    checkpoint_interval_ *= 2;
  }
  Checkpoint cp;
  cp.pos = pos;
  cp.c = core_.c;
  cp.active = core_.active;
  cp.saturated = core_.saturated;
  for (size_t l = 0; l < core_.state.size(); ++l) {
    if (core_.state[l] == psr_internal::XTupleState::kInactive) continue;
    cp.xs.push_back({static_cast<XTupleId>(l), core_.state[l], core_.q[l]});
  }
  checkpoints_.push_back(std::move(cp));
}

void PsrEngine::RestoreCheckpoint(const Checkpoint& cp) {
  core_.c = cp.c;
  core_.active = cp.active;
  core_.saturated = cp.saturated;
  std::fill(core_.q.begin(), core_.q.end(), 0.0);
  std::fill(core_.state.begin(), core_.state.end(),
            psr_internal::XTupleState::kInactive);
  for (const Checkpoint::XEntry& x : cp.xs) {
    core_.q[x.xtuple] = x.q;
    core_.state[x.xtuple] = x.state;
  }
}

void PsrEngine::RunScan(const ProbabilisticDatabase& db, size_t begin) {
  const size_t n = db.num_tuples();
  const size_t k = out_.k;
  std::fill(out_.topk_prob.begin() + begin, out_.topk_prob.end(), 0.0);
  if (out_.has_rank_probabilities) {
    std::fill(out_.rank_prob.begin() + begin * k, out_.rank_prob.end(), 0.0);
  }
  if (begin == 0) {
    checkpoints_.clear();
    TakeCheckpoint(0);
  }

  // Running argmaxes are only meaningful over a whole scan; a partial
  // replay rebuilds them from the stored matrix in FinalizeAggregates.
  const bool track_best = begin == 0;
  size_t since_checkpoint = 0;
  size_t i = begin;
  for (; i < n; ++i) {
    if (options_.early_termination && core_.ShouldStop()) break;
    if (db.is_tombstone(i)) continue;
    if (since_checkpoint >= checkpoint_interval_) {
      TakeCheckpoint(i);
      since_checkpoint = 0;
    }
    core_.Step(db.tuple(i), i, &out_, track_best);
    ++since_checkpoint;
  }
  out_.scan_end = i;
  FinalizeAggregates(db, begin == 0);
}

void PsrEngine::FinalizeAggregates(const ProbabilisticDatabase& db,
                                   bool from_rank_0) {
  out_.num_nonzero = 0;
  for (double p : out_.topk_prob) {
    if (p > 0.0) ++out_.num_nonzero;
  }
  const size_t k = out_.k;
  if (!out_.has_rank_probabilities) {
    if (!from_rank_0) {
      // Tracked argmaxes are stale and the matrix is off: reset to the
      // empty answer rather than serve wrong ones (see header).
      std::fill(out_.best_rank_prob.begin(), out_.best_rank_prob.end(), 0.0);
      std::fill(out_.best_rank_index.begin(), out_.best_rank_index.end(), -1);
    }
    return;
  }
  std::fill(out_.best_rank_prob.begin(), out_.best_rank_prob.end(), 0.0);
  std::fill(out_.best_rank_index.begin(), out_.best_rank_index.end(), -1);
  for (size_t i = 0; i < out_.scan_end; ++i) {
    const Tuple& t = db.tuple(i);
    if (t.is_null || db.is_tombstone(i)) continue;
    for (size_t h = 0; h < k; ++h) {
      const double rho = out_.rank_prob[i * k + h];
      if (rho > out_.best_rank_prob[h]) {
        out_.best_rank_prob[h] = rho;
        out_.best_rank_index[h] = static_cast<int32_t>(i);
      }
    }
  }
}

void PsrEngine::InvalidateBelow(size_t first_changed_rank) {
  while (!checkpoints_.empty() &&
         checkpoints_.back().pos > first_changed_rank) {
    checkpoints_.pop_back();
  }
}

Status PsrEngine::Replay(const ProbabilisticDatabase& db,
                         size_t first_changed_rank) {
  if (out_.topk_prob.size() != db.num_tuples()) {
    return Status::FailedPrecondition(
        "PsrEngine state does not match the database (was the engine "
        "created from it, and ApplyCompaction called after compaction?)");
  }
  if (first_changed_rank >= db.num_tuples()) return Status::OK();  // no-op
  InvalidateBelow(first_changed_rank);  // snapshots past the change are stale
  if (checkpoints_.empty()) {
    return Status::FailedPrecondition("PsrEngine was not initialized");
  }

  // Resume from the last remaining checkpoint (the rank-0 one always
  // survives, so the list is never empty here).
  const size_t replay_begin = checkpoints_.back().pos;
  RestoreCheckpoint(checkpoints_.back());
  RunScan(db, replay_begin);
  return Status::OK();
}

Status PsrEngine::ApplyCompaction(const ProbabilisticDatabase& db,
                                  const std::vector<int32_t>& old_to_new) {
  if (old_to_new.empty()) return Status::OK();  // compaction was a no-op
  const size_t old_n = old_to_new.size();
  if (out_.topk_prob.size() != old_n) {
    return Status::FailedPrecondition(
        "compaction map does not match the engine's tuple count");
  }
  const size_t new_n = db.num_tuples();
  const size_t k = out_.k;

  // new_pos[p] = number of surviving slots before old position p; the new
  // index of a surviving slot, and the natural remap for scan positions
  // (checkpoint pos, scan_end) which may sit on erased slots.
  std::vector<size_t> new_pos(old_n + 1, 0);
  for (size_t i = 0; i < old_n; ++i) {
    new_pos[i + 1] = new_pos[i] + (old_to_new[i] >= 0 ? 1 : 0);
  }
  UCLEAN_DCHECK(new_pos[old_n] == new_n);

  std::vector<double> topk(new_n, 0.0);
  for (size_t i = 0; i < old_n; ++i) {
    if (old_to_new[i] >= 0) topk[old_to_new[i]] = out_.topk_prob[i];
  }
  out_.topk_prob = std::move(topk);
  if (out_.has_rank_probabilities) {
    std::vector<double> matrix(new_n * k, 0.0);
    for (size_t i = 0; i < old_n; ++i) {
      if (old_to_new[i] < 0) continue;
      std::copy(out_.rank_prob.begin() + i * k,
                out_.rank_prob.begin() + (i + 1) * k,
                matrix.begin() + static_cast<size_t>(old_to_new[i]) * k);
    }
    out_.rank_prob = std::move(matrix);
  }
  for (int32_t& idx : out_.best_rank_index) {
    if (idx >= 0) idx = old_to_new[idx];  // may go stale (-1); Replay fixes
  }
  out_.scan_end = new_pos[std::min(out_.scan_end, old_n)];
  for (Checkpoint& cp : checkpoints_) {
    cp.pos = new_pos[std::min(cp.pos, old_n)];
  }
  return Status::OK();
}

}  // namespace uclean
