#include "rank/psr_engine.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "rank/sharded_scan.h"

namespace uclean {

Result<PsrEngine> PsrEngine::Create(const ProbabilisticDatabase& db,
                                    const ScanRequest& request) {
  UCLEAN_RETURN_IF_ERROR(request.Validate());
  if (request.overlay != nullptr) {
    return Status::InvalidArgument(
        "engines are created over base databases; serve session overlays "
        "through ForkSession/ReplaySession");
  }
  Result<ExecOptions> resolved = ResolveExec(request.exec);
  if (!resolved.ok()) return resolved.status();
  Result<const psr_internal::ScanKernel*> kernel =
      SelectScanKernel(resolved->kernel);
  if (!kernel.ok()) return kernel.status();

  PsrEngine engine;
  engine.exec_ = std::move(resolved).value();
  engine.options_ = request.psr;
  engine.checkpoint_interval_ = request.checkpoint_interval;
  engine.ladder_ = request.ladder;
  psr_internal::InitLadderOutputs(db.num_tuples(), request.ladder, request.psr,
                                  &engine.outputs_);
  engine.core_.Init(db.num_xtuples(), *kernel);
  ScanFrom(db, 0, 0, engine.options_, engine.exec_, &engine.core_,
           &engine.outputs_, &engine.checkpoints_,
           &engine.checkpoint_interval_);
  return engine;
}

void PsrEngine::ThinCheckpoints(std::vector<Checkpoint>* cps,
                                size_t* interval) {
  // Keep every other checkpoint (always retaining the first one) and
  // double the interval, bounding memory while preserving coverage.
  size_t kept = 0;
  for (size_t j = 0; j < cps->size(); j += 2) {
    // Guard the j == kept case: self-move-assignment empties the kept
    // checkpoint's vectors (corrupting the always-retained rank-0 one).
    if (kept != j) (*cps)[kept] = std::move((*cps)[j]);
    ++kept;
  }
  cps->resize(kept);
  *interval *= 2;
}

void PsrEngine::SnapshotInto(const psr_internal::ScanCore& core, size_t pos,
                             size_t live, std::vector<Checkpoint>* cps,
                             size_t* interval) {
  if (cps->size() >= kMaxCheckpoints) ThinCheckpoints(cps, interval);
  Checkpoint cp;
  cp.pos = pos;
  cp.live = live;
  cp.c.assign(core.c.begin(), core.c.end());
  cp.active = core.active;
  cp.saturated = core.saturated;
  for (size_t l = 0; l < core.state.size(); ++l) {
    if (core.state[l] == psr_internal::XTupleState::kInactive) continue;
    cp.xs.push_back({static_cast<XTupleId>(l), core.state[l], core.q[l]});
  }
  cps->push_back(std::move(cp));
}

void PsrEngine::RestoreInto(const Checkpoint& cp,
                            psr_internal::ScanCore* core) {
  core->c.assign(cp.c.begin(), cp.c.end());
  core->active = cp.active;
  core->saturated = cp.saturated;
  std::fill(core->q.begin(), core->q.end(), 0.0);
  std::fill(core->state.begin(), core->state.end(),
            psr_internal::XTupleState::kInactive);
  for (const Checkpoint::XEntry& x : cp.xs) {
    core->q[x.xtuple] = x.q;
    core->state[x.xtuple] = x.state;
  }
}

template <typename Db>
void PsrEngine::ScanFrom(const Db& db, size_t begin, size_t live_at_begin,
                         const PsrOptions& options, const ExecOptions& exec,
                         psr_internal::ScanCore* core,
                         std::vector<PsrOutput>* outputs,
                         std::vector<Checkpoint>* cps, size_t* interval) {
  // A rung whose scan already stopped at or before `begin` cannot be
  // affected: its output beyond scan_end is identically zero and the state
  // that produced its stop decision is prefix-only. Everything deeper
  // re-emits (scan_end is ascending in k, so the replaying rungs are a
  // suffix of the ladder).
  size_t first_active = 0;
  if (begin > 0) {
    while (first_active < outputs->size() &&
           (*outputs)[first_active].scan_end <= begin) {
      ++first_active;
    }
  }
  std::vector<PsrOutput*> outs;
  outs.reserve(outputs->size());
  for (PsrOutput& out : *outputs) outs.push_back(&out);
  for (size_t j = first_active; j < outputs->size(); ++j) {
    PsrOutput& out = (*outputs)[j];
    // Everything at or past the rung's previous scan end is already zero
    // (scans only ever write below their stop point), so the wipe is
    // bounded by the old scanned range, not the database size.
    const size_t wipe_end = std::max(begin, out.scan_end);
    std::fill(out.topk_prob.begin() + begin, out.topk_prob.begin() + wipe_end,
              0.0);
    if (out.has_rank_probabilities) {
      std::fill(out.rank_prob.begin() + begin * out.k,
                out.rank_prob.begin() + wipe_end * out.k, 0.0);
    }
    if (begin == 0) {
      // A from-rank-0 scan re-runs the argmax trackers; clear the maxima a
      // previous scan left behind (a replay of the whole range restores
      // the rank-0 checkpoint but reuses the output buffers).
      std::fill(out.best_rank_prob.begin(), out.best_rank_prob.end(), 0.0);
      std::fill(out.best_rank_index.begin(), out.best_rank_index.end(), -1);
    }
  }
  if (begin == 0) {
    cps->clear();
    SnapshotInto(*core, 0, 0, cps, interval);
  }

  // Running argmaxes are only meaningful over a whole scan; a partial
  // replay rebuilds them from the stored matrix in FinalizeAggregates.
  const bool track_best = begin == 0;

  // Parallel path: shard the active rungs' range over the pool. Shard s
  // snapshots into its own list (its rebuilt boundary state first, then
  // on the usual live-tuple cadence); the lists merge in shard order and
  // thin to capacity, so checkpoint PLACEMENT differs from the
  // sequential path while every snapshot remains a valid restore point.
  bool sharded = false;
  if (exec.parallel()) {
    struct ShardCheckpoints {
      std::vector<Checkpoint> cps;
      size_t interval = 0;
      size_t since = 0;
      bool snapshot_first = false;
    };
    std::vector<ShardCheckpoints> shard_cps;
    const size_t base_interval = *interval;
    const auto make_checkpoint_fn = [&shard_cps, base_interval](
                                        size_t s, size_t num_shards) {
      if (shard_cps.empty()) shard_cps.resize(num_shards);
      ShardCheckpoints* local = &shard_cps[s];
      local->interval = base_interval;
      local->snapshot_first = s > 0;
      return [local](const psr_internal::ScanCore& core, size_t pos,
                     size_t live) {
        if (local->snapshot_first || local->since >= local->interval) {
          SnapshotInto(core, pos, live, &local->cps, &local->interval);
          local->snapshot_first = false;
          local->since = 0;
        }
        ++local->since;
      };
    };
    std::vector<PsrOutput*> active_outs(outs.begin() + first_active,
                                        outs.end());
    sharded = psr_internal::RunShardedLadderScan(
        db, begin, live_at_begin, options, exec.pool.get(),
        exec.min_tuples_per_shard, *core, active_outs, track_best,
        make_checkpoint_fn);
    if (sharded) {
      for (ShardCheckpoints& local : shard_cps) {
        for (Checkpoint& cp : local.cps) cps->push_back(std::move(cp));
        *interval = std::max(*interval, local.interval);
      }
      while (cps->size() > kMaxCheckpoints) ThinCheckpoints(cps, interval);
    }
  }
  if (!sharded) {
    size_t since_checkpoint = 0;
    psr_internal::RunLadderScan(
        db, begin, live_at_begin, options.early_termination, *core, outs,
        first_active, track_best,
        [core, cps, interval, &since_checkpoint](size_t i, size_t live) {
          if (since_checkpoint >= *interval) {
            SnapshotInto(*core, i, live, cps, interval);
            since_checkpoint = 0;
          }
          ++since_checkpoint;
        });
  }
  FinalizeAggregates(db, begin, begin == 0, exec, outputs);
}

template <typename Db>
void PsrEngine::FinalizeAggregates(const Db& db, size_t begin,
                                   bool from_rank_0, const ExecOptions& exec,
                                   std::vector<PsrOutput>* outputs) {
  // Each rung's recount/argmax rebuild touches only that rung's output,
  // so the per-rung work fans over the pool verbatim.
  ExecParallelFor(exec, outputs->size(), [&](size_t j) {
    PsrOutput& out = (*outputs)[j];
    // Untouched rungs (stopped at or before the replay boundary) keep
    // every aggregate; recounting them would be wasted work.
    if (!from_rank_0 && out.scan_end <= begin) return;
    out.num_nonzero = 0;
    for (size_t i = 0; i < out.scan_end; ++i) {  // zero past the stop point
      if (out.topk_prob[i] > 0.0) ++out.num_nonzero;
    }
    const size_t k = out.k;
    if (!out.has_rank_probabilities) {
      if (!from_rank_0) {
        // Tracked argmaxes are stale and the matrix is off: reset to the
        // empty answer rather than serve wrong ones (see header).
        std::fill(out.best_rank_prob.begin(), out.best_rank_prob.end(), 0.0);
        std::fill(out.best_rank_index.begin(), out.best_rank_index.end(), -1);
      }
      return;
    }
    if (from_rank_0) return;  // running argmaxes are exact for full scans
    std::fill(out.best_rank_prob.begin(), out.best_rank_prob.end(), 0.0);
    std::fill(out.best_rank_index.begin(), out.best_rank_index.end(), -1);
    for (size_t i = 0; i < out.scan_end; ++i) {
      const Tuple& t = db.tuple(i);
      if (t.is_null || db.is_tombstone(i)) continue;
      for (size_t h = 0; h < k; ++h) {
        const double rho = out.rank_prob[i * k + h];
        if (rho > out.best_rank_prob[h]) {
          out.best_rank_prob[h] = rho;
          out.best_rank_index[h] = static_cast<int32_t>(i);
        }
      }
    }
  });
}

void PsrEngine::InvalidateBelowLocked(size_t first_changed_rank) {
  while (!checkpoints_.empty() &&
         checkpoints_.back().pos > first_changed_rank) {
    checkpoints_.pop_back();
  }
}

void PsrEngine::InvalidateBelow(size_t first_changed_rank) {
  ScopedSerialCall guard(gate_);
  InvalidateBelowLocked(first_changed_rank);
}

Status PsrEngine::Replay(const ProbabilisticDatabase& db,
                         size_t first_changed_rank) {
  ScopedSerialCall guard(gate_);
  if (outputs_.empty()) {
    return Status::FailedPrecondition("PsrEngine was not initialized");
  }
  if (outputs_.front().topk_prob.size() != db.num_tuples()) {
    return Status::FailedPrecondition(
        "PsrEngine state does not match the database (was the engine "
        "created from it, and ApplyCompaction called after compaction?)");
  }
  if (first_changed_rank >= db.num_tuples()) return Status::OK();  // no-op
  // Snapshots past the change are stale.
  InvalidateBelowLocked(first_changed_rank);
  if (checkpoints_.empty()) {
    return Status::FailedPrecondition("PsrEngine was not initialized");
  }

  // Resume from the last remaining checkpoint (the rank-0 one always
  // survives, so the list is never empty here).
  const size_t replay_begin = checkpoints_.back().pos;
  RestoreInto(checkpoints_.back(), &core_);
  ScanFrom(db, replay_begin, checkpoints_.back().live, options_, exec_,
           &core_, &outputs_, &checkpoints_, &checkpoint_interval_);
  return Status::OK();
}

PsrEngine::SessionState PsrEngine::ForkSession() const {
  SessionState state;
  // Copy only each rung's live prefix onto a zeroed buffer: every output
  // entry at or past scan_end is identically zero (scans never write past
  // their stop point), and for ranked data the stop leaves the bulk of
  // the array cold -- this is what keeps opening a pooled session an
  // order of magnitude cheaper than a dedicated scan.
  state.outputs_.resize(outputs_.size());
  for (size_t j = 0; j < outputs_.size(); ++j) {
    const PsrOutput& src = outputs_[j];
    PsrOutput& dst = state.outputs_[j];
    dst.k = src.k;
    dst.num_nonzero = src.num_nonzero;
    dst.scan_end = src.scan_end;
    dst.topk_prob.assign(src.topk_prob.size(), 0.0);
    std::copy(src.topk_prob.begin(), src.topk_prob.begin() + src.scan_end,
              dst.topk_prob.begin());
    dst.best_rank_prob = src.best_rank_prob;
    dst.best_rank_index = src.best_rank_index;
    dst.has_rank_probabilities = src.has_rank_probabilities;
    if (src.has_rank_probabilities) {
      dst.rank_prob.assign(src.rank_prob.size(), 0.0);
      std::copy(src.rank_prob.begin(),
                src.rank_prob.begin() + src.scan_end * src.k,
                dst.rank_prob.begin());
    }
  }
  // Sessions inherit the engine's kernel: mixing kernels would be safe
  // (they are bitwise equal) but pointless.
  state.core_.Init(core_.q.size(), core_.kernel);
  state.checkpoint_interval_ = checkpoint_interval_;
  return state;
}

Status PsrEngine::ReplaySession(const DatabaseOverlay& db,
                                size_t first_changed_rank,
                                SessionState* state) const {
  if (outputs_.empty() || checkpoints_.empty()) {
    return Status::FailedPrecondition("PsrEngine was not initialized");
  }
  if (state == nullptr || state->outputs_.size() != outputs_.size()) {
    return Status::FailedPrecondition(
        "session state was not forked from this engine");
  }
  if (state->outputs_.front().topk_prob.size() != db.num_tuples()) {
    return Status::FailedPrecondition(
        "session state does not match the overlay's base database");
  }
  if (first_changed_rank >= db.num_tuples()) return Status::OK();  // no-op
  // The overlay is the single source of truth for how shallow the
  // session's changes reach: every recorded outcome is reflected there,
  // so a shared snapshot at or above its divergence rank is valid no
  // matter what `first_changed_rank` the caller batched up (passing a
  // conservatively shallow rank merely pops more private snapshots).
  const size_t divergence = db.divergence_rank();

  // The session's own snapshots taken past the change hold pre-clean
  // state; drop them, same as InvalidateBelow on the single-session path.
  while (!state->checkpoints_.empty() &&
         state->checkpoints_.back().pos > first_changed_rank) {
    state->checkpoints_.pop_back();
  }

  // Deepest restore point still valid for this session: a shared base
  // snapshot is valid wherever the overlay still equals the base (at or
  // above the divergence rank -- a snapshot at pos depends only on tuples
  // ranked above pos); a surviving private snapshot is valid by the
  // invalidation above. The shared rank-0 snapshot always qualifies.
  const Checkpoint* restore = nullptr;
  for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend(); ++it) {
    if (it->pos <= divergence) {
      restore = &*it;
      break;
    }
  }
  if (!state->checkpoints_.empty() &&
      (restore == nullptr || state->checkpoints_.back().pos >= restore->pos)) {
    restore = &state->checkpoints_.back();
  }
  UCLEAN_CHECK(restore != nullptr);

  const size_t replay_begin = restore->pos;
  RestoreInto(*restore, &state->core_);
  ScanFrom(db, replay_begin, restore->live, options_, exec_, &state->core_,
           &state->outputs_, &state->checkpoints_,
           &state->checkpoint_interval_);
  return Status::OK();
}

Status PsrEngine::ApplyCompaction(const ProbabilisticDatabase& db,
                                  const std::vector<int32_t>& old_to_new) {
  ScopedSerialCall guard(gate_);
  if (old_to_new.empty()) return Status::OK();  // compaction was a no-op
  const size_t old_n = old_to_new.size();
  if (outputs_.front().topk_prob.size() != old_n) {
    return Status::FailedPrecondition(
        "compaction map does not match the engine's tuple count");
  }
  const size_t new_n = db.num_tuples();

  // new_pos[p] = number of surviving slots before old position p; the new
  // index of a surviving slot, and the natural remap for scan positions
  // (checkpoint pos, scan_end) which may sit on erased slots.
  std::vector<size_t> new_pos(old_n + 1, 0);
  for (size_t i = 0; i < old_n; ++i) {
    new_pos[i + 1] = new_pos[i] + (old_to_new[i] >= 0 ? 1 : 0);
  }
  UCLEAN_DCHECK(new_pos[old_n] == new_n);

  for (PsrOutput& out : outputs_) {
    const size_t k = out.k;
    std::vector<double> topk(new_n, 0.0);
    for (size_t i = 0; i < old_n; ++i) {
      if (old_to_new[i] >= 0) topk[old_to_new[i]] = out.topk_prob[i];
    }
    out.topk_prob = std::move(topk);
    if (out.has_rank_probabilities) {
      std::vector<double> matrix(new_n * k, 0.0);
      for (size_t i = 0; i < old_n; ++i) {
        if (old_to_new[i] < 0) continue;
        std::copy(out.rank_prob.begin() + i * k,
                  out.rank_prob.begin() + (i + 1) * k,
                  matrix.begin() + static_cast<size_t>(old_to_new[i]) * k);
      }
      out.rank_prob = std::move(matrix);
    }
    for (int32_t& idx : out.best_rank_index) {
      if (idx >= 0) idx = old_to_new[idx];  // may go stale (-1); Replay fixes
    }
    out.scan_end = new_pos[std::min(out.scan_end, old_n)];
  }
  for (Checkpoint& cp : checkpoints_) {
    cp.pos = new_pos[std::min(cp.pos, old_n)];
  }
  return Status::OK();
}

}  // namespace uclean
