#include "rank/psr_engine.h"

#include <algorithm>

#include "common/check.h"

namespace uclean {

Result<PsrEngine> PsrEngine::Create(const ProbabilisticDatabase& db, size_t k,
                                    const PsrOptions& options,
                                    size_t checkpoint_interval) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  KLadder ladder;
  ladder.ks = {k};
  return Create(db, ladder, options, checkpoint_interval);
}

Result<PsrEngine> PsrEngine::Create(const ProbabilisticDatabase& db,
                                    const KLadder& ladder,
                                    const PsrOptions& options,
                                    size_t checkpoint_interval) {
  UCLEAN_RETURN_IF_ERROR(ladder.Validate());
  if (checkpoint_interval == 0) {
    return Status::InvalidArgument("checkpoint interval must be positive");
  }

  PsrEngine engine;
  engine.options_ = options;
  engine.checkpoint_interval_ = checkpoint_interval;
  engine.ladder_ = ladder;
  psr_internal::InitLadderOutputs(db, ladder, options, &engine.outputs_);
  engine.core_.Init(db.num_xtuples());
  engine.RunScan(db, 0);
  return engine;
}

void PsrEngine::TakeCheckpoint(size_t pos) {
  if (checkpoints_.size() >= kMaxCheckpoints) {
    // Thin: keep every other checkpoint (always retaining the rank-0 one)
    // and double the interval, bounding memory while preserving coverage.
    size_t kept = 0;
    for (size_t j = 0; j < checkpoints_.size(); j += 2) {
      // Guard the j == kept case: self-move-assignment empties the kept
      // checkpoint's vectors (corrupting the always-retained rank-0 one).
      if (kept != j) checkpoints_[kept] = std::move(checkpoints_[j]);
      ++kept;
    }
    checkpoints_.resize(kept);
    checkpoint_interval_ *= 2;
  }
  Checkpoint cp;
  cp.pos = pos;
  cp.c = core_.c;
  cp.active = core_.active;
  cp.saturated = core_.saturated;
  for (size_t l = 0; l < core_.state.size(); ++l) {
    if (core_.state[l] == psr_internal::XTupleState::kInactive) continue;
    cp.xs.push_back({static_cast<XTupleId>(l), core_.state[l], core_.q[l]});
  }
  checkpoints_.push_back(std::move(cp));
}

void PsrEngine::RestoreCheckpoint(const Checkpoint& cp) {
  core_.c = cp.c;
  core_.active = cp.active;
  core_.saturated = cp.saturated;
  std::fill(core_.q.begin(), core_.q.end(), 0.0);
  std::fill(core_.state.begin(), core_.state.end(),
            psr_internal::XTupleState::kInactive);
  for (const Checkpoint::XEntry& x : cp.xs) {
    core_.q[x.xtuple] = x.q;
    core_.state[x.xtuple] = x.state;
  }
}

void PsrEngine::RunScan(const ProbabilisticDatabase& db, size_t begin) {
  // A rung whose scan already stopped at or before `begin` cannot be
  // affected: its output beyond scan_end is identically zero and the state
  // that produced its stop decision is prefix-only. Everything deeper
  // re-emits (scan_end is ascending in k, so the replaying rungs are a
  // suffix of the ladder).
  size_t first_active = 0;
  if (begin > 0) {
    while (first_active < outputs_.size() &&
           outputs_[first_active].scan_end <= begin) {
      ++first_active;
    }
  }
  std::vector<PsrOutput*> outs;
  outs.reserve(outputs_.size());
  for (PsrOutput& out : outputs_) outs.push_back(&out);
  for (size_t j = first_active; j < outputs_.size(); ++j) {
    PsrOutput& out = outputs_[j];
    // Everything at or past the rung's previous scan end is already zero
    // (scans only ever write below their stop point), so the wipe is
    // bounded by the old scanned range, not the database size.
    const size_t wipe_end = std::max(begin, out.scan_end);
    std::fill(out.topk_prob.begin() + begin,
              out.topk_prob.begin() + wipe_end, 0.0);
    if (out.has_rank_probabilities) {
      std::fill(out.rank_prob.begin() + begin * out.k,
                out.rank_prob.begin() + wipe_end * out.k, 0.0);
    }
    if (begin == 0) {
      // A from-rank-0 scan re-runs the argmax trackers; clear the maxima a
      // previous scan left behind (a replay of the whole range restores
      // the rank-0 checkpoint but reuses the output buffers).
      std::fill(out.best_rank_prob.begin(), out.best_rank_prob.end(), 0.0);
      std::fill(out.best_rank_index.begin(), out.best_rank_index.end(), -1);
    }
  }
  if (begin == 0) {
    checkpoints_.clear();
    TakeCheckpoint(0);
  }

  // Running argmaxes are only meaningful over a whole scan; a partial
  // replay rebuilds them from the stored matrix in FinalizeAggregates.
  const bool track_best = begin == 0;
  size_t since_checkpoint = 0;
  psr_internal::RunLadderScan(
      db, begin, options_.early_termination, core_, outs, first_active,
      track_best, [this, &since_checkpoint](size_t i) {
        if (since_checkpoint >= checkpoint_interval_) {
          TakeCheckpoint(i);
          since_checkpoint = 0;
        }
        ++since_checkpoint;
      });
  FinalizeAggregates(db, begin, begin == 0);
}

void PsrEngine::FinalizeAggregates(const ProbabilisticDatabase& db,
                                   size_t begin, bool from_rank_0) {
  for (size_t j = 0; j < outputs_.size(); ++j) {
    PsrOutput& out = outputs_[j];
    // Untouched rungs (stopped at or before the replay boundary) keep
    // every aggregate; recounting them would be wasted work.
    if (!from_rank_0 && out.scan_end <= begin) continue;
    out.num_nonzero = 0;
    for (size_t i = 0; i < out.scan_end; ++i) {  // zero past the stop point
      if (out.topk_prob[i] > 0.0) ++out.num_nonzero;
    }
    const size_t k = out.k;
    if (!out.has_rank_probabilities) {
      if (!from_rank_0) {
        // Tracked argmaxes are stale and the matrix is off: reset to the
        // empty answer rather than serve wrong ones (see header).
        std::fill(out.best_rank_prob.begin(), out.best_rank_prob.end(), 0.0);
        std::fill(out.best_rank_index.begin(), out.best_rank_index.end(), -1);
      }
      continue;
    }
    if (from_rank_0) continue;  // running argmaxes are exact for full scans
    std::fill(out.best_rank_prob.begin(), out.best_rank_prob.end(), 0.0);
    std::fill(out.best_rank_index.begin(), out.best_rank_index.end(), -1);
    for (size_t i = 0; i < out.scan_end; ++i) {
      const Tuple& t = db.tuple(i);
      if (t.is_null || db.is_tombstone(i)) continue;
      for (size_t h = 0; h < k; ++h) {
        const double rho = out.rank_prob[i * k + h];
        if (rho > out.best_rank_prob[h]) {
          out.best_rank_prob[h] = rho;
          out.best_rank_index[h] = static_cast<int32_t>(i);
        }
      }
    }
  }
}

void PsrEngine::InvalidateBelow(size_t first_changed_rank) {
  while (!checkpoints_.empty() &&
         checkpoints_.back().pos > first_changed_rank) {
    checkpoints_.pop_back();
  }
}

Status PsrEngine::Replay(const ProbabilisticDatabase& db,
                         size_t first_changed_rank) {
  if (outputs_.front().topk_prob.size() != db.num_tuples()) {
    return Status::FailedPrecondition(
        "PsrEngine state does not match the database (was the engine "
        "created from it, and ApplyCompaction called after compaction?)");
  }
  if (first_changed_rank >= db.num_tuples()) return Status::OK();  // no-op
  InvalidateBelow(first_changed_rank);  // snapshots past the change are stale
  if (checkpoints_.empty()) {
    return Status::FailedPrecondition("PsrEngine was not initialized");
  }

  // Resume from the last remaining checkpoint (the rank-0 one always
  // survives, so the list is never empty here).
  const size_t replay_begin = checkpoints_.back().pos;
  RestoreCheckpoint(checkpoints_.back());
  RunScan(db, replay_begin);
  return Status::OK();
}

Status PsrEngine::ApplyCompaction(const ProbabilisticDatabase& db,
                                  const std::vector<int32_t>& old_to_new) {
  if (old_to_new.empty()) return Status::OK();  // compaction was a no-op
  const size_t old_n = old_to_new.size();
  if (outputs_.front().topk_prob.size() != old_n) {
    return Status::FailedPrecondition(
        "compaction map does not match the engine's tuple count");
  }
  const size_t new_n = db.num_tuples();

  // new_pos[p] = number of surviving slots before old position p; the new
  // index of a surviving slot, and the natural remap for scan positions
  // (checkpoint pos, scan_end) which may sit on erased slots.
  std::vector<size_t> new_pos(old_n + 1, 0);
  for (size_t i = 0; i < old_n; ++i) {
    new_pos[i + 1] = new_pos[i] + (old_to_new[i] >= 0 ? 1 : 0);
  }
  UCLEAN_DCHECK(new_pos[old_n] == new_n);

  for (PsrOutput& out : outputs_) {
    const size_t k = out.k;
    std::vector<double> topk(new_n, 0.0);
    for (size_t i = 0; i < old_n; ++i) {
      if (old_to_new[i] >= 0) topk[old_to_new[i]] = out.topk_prob[i];
    }
    out.topk_prob = std::move(topk);
    if (out.has_rank_probabilities) {
      std::vector<double> matrix(new_n * k, 0.0);
      for (size_t i = 0; i < old_n; ++i) {
        if (old_to_new[i] < 0) continue;
        std::copy(out.rank_prob.begin() + i * k,
                  out.rank_prob.begin() + (i + 1) * k,
                  matrix.begin() + static_cast<size_t>(old_to_new[i]) * k);
      }
      out.rank_prob = std::move(matrix);
    }
    for (int32_t& idx : out.best_rank_index) {
      if (idx >= 0) idx = old_to_new[idx];  // may go stale (-1); Replay fixes
    }
    out.scan_end = new_pos[std::min(out.scan_end, old_n)];
  }
  for (Checkpoint& cp : checkpoints_) {
    cp.pos = new_pos[std::min(cp.pos, old_n)];
  }
  return Status::OK();
}

}  // namespace uclean
