#include "serve/frontend.h"

#include <algorithm>
#include <string>

#include "clean/agent.h"
#include "common/check.h"
#include "quality/tp.h"

namespace uclean {
namespace serve {
namespace {

/// Golden-ratio stride keeps per-client seeds far apart for any base.
constexpr uint64_t kSeedStride = 0x9E3779B97F4A7C15ULL;

}  // namespace

Result<Frontend> Frontend::Create(SessionPool pool,
                                  std::optional<CleaningProfile> profile,
                                  const FrontendOptions& options) {
  if (options.max_batch < 1) {
    return Status::InvalidArgument("max_batch must be >= 1");
  }
  if (profile.has_value()) {
    UCLEAN_RETURN_IF_ERROR(profile->Validate(pool.base().num_xtuples()));
  }
  return Frontend(std::move(pool), std::move(profile), options);
}

Frontend::Frontend(SessionPool pool, std::optional<CleaningProfile> profile,
                   FrontendOptions options)
    : pool_(std::move(pool)),
      profile_(std::move(profile)),
      options_(options) {
  std::vector<const PsrOutput*> outputs;
  outputs.reserve(pool_.num_rungs());
  for (size_t j = 0; j < pool_.num_rungs(); ++j) {
    outputs.push_back(&pool_.base_psr(j));
  }
  depth_probe_ = ScanDepthProbe::FromOutputs(pool_.ladder(), outputs,
                                             pool_.base().num_tuples());
}

uint64_t Frontend::ClientSeed(uint64_t seed, size_t client_index) {
  return seed ^ (kSeedStride * (static_cast<uint64_t>(client_index) + 1));
}

Frontend::ClientId Frontend::Connect() {
  ClientId id = clients_.size();
  for (size_t i = 0; i < clients_.size(); ++i) {
    if (!clients_[i].open) {
      id = i;
      break;
    }
  }
  if (id == clients_.size()) clients_.emplace_back();
  Client& client = clients_[id];
  client.open = true;
  client.session = pool_.OpenSession();
  client.rng =
      std::make_unique<Rng>(ClientSeed(options_.seed, num_connects_++));
  client.dirty_view = false;
  ++num_open_;
  return id;
}

Status Frontend::Disconnect(ClientId client) {
  if (client >= clients_.size() || !clients_[client].open) {
    return Status::InvalidArgument("no open client " + std::to_string(client));
  }
  UCLEAN_RETURN_IF_ERROR(pool_.Close(clients_[client].session));
  clients_[client].open = false;
  clients_[client].rng.reset();
  --num_open_;
  return Status::OK();
}

const Frontend::Client& Frontend::Slot(ClientId client) const {
  UCLEAN_CHECK(client < clients_.size() && clients_[client].open);
  return clients_[client];
}

uint64_t Frontend::RngFingerprint(ClientId client) const {
  const std::string state = Slot(client).rng->SaveState();
  return Fnv1a64(state.data(), state.size());
}

CostInputs Frontend::InputsFor(size_t k, size_t rung_count) const {
  CostInputs inputs;
  inputs.num_tuples = pool_.base().num_tuples();
  inputs.scan_depth = depth_probe_.EstimateDepth(k);
  inputs.rung_count = rung_count;
  inputs.pool_occupancy = pool_.num_open();
  inputs.num_threads = pool_.exec().num_threads;
  inputs.replay_available = pool_.ladder().IndexOf(k) != KLadder::npos;
  return inputs;
}

Result<PlanRecord> Frontend::DecidePlan(const Request& request,
                                        size_t rung_count) {
  const CostInputs inputs = InputsFor(request.k, rung_count);
  PlanRecord record;
  std::optional<PlanKind> forced =
      request.plan.has_value() ? request.plan : options_.forced_plan;
  if (forced.has_value()) {
    record.forced = true;
    record.chosen = *forced;
    // Forced strategies must be mechanically executable; an impossible
    // pin is a structured error, not a silent fallback.
    if (*forced == PlanKind::kReplay && !inputs.replay_available) {
      return Status::FailedPrecondition(
          "plan=replay: k=" + std::to_string(request.k) +
          " is not on the warm ladder " + pool_.ladder().ToString());
    }
    if (*forced == PlanKind::kSharded && inputs.num_threads <= 1) {
      return Status::FailedPrecondition(
          "plan=shard: the pool is running single-threaded");
    }
  } else {
    record.chosen = options_.cost.Choose(inputs);
  }
  record.executed = record.chosen;
  record.estimate_ns = options_.cost.Estimate(record.chosen, inputs);
  return record;
}

void Frontend::FillTopk(const PsrOutput& psr, Reply* reply) const {
  reply->num_nonzero = psr.num_nonzero;
  reply->scan_end = psr.scan_end;
  reply->fingerprint = HashDoubles(psr.topk_prob);
  reply->top_index = -1;
  reply->top_id = -1;
  reply->top_prob = 0.0;
  for (size_t i = 0; i < psr.topk_prob.size(); ++i) {
    if (psr.topk_prob[i] > reply->top_prob) {
      reply->top_prob = psr.topk_prob[i];
      reply->top_index = static_cast<int32_t>(i);
    }
  }
  if (reply->top_index >= 0) {
    reply->top_id = pool_.base().tuple(static_cast<size_t>(reply->top_index)).id;
  }
}

void Frontend::ExecuteReplay(const Client& client, const Request& request,
                             PlanRecord record, Reply* reply) {
  const size_t rung = pool_.ladder().IndexOf(request.k);
  UCLEAN_CHECK(rung != KLadder::npos);
  record.threads = 1;
  reply->plan = record;
  if (request.verb == Verb::kTopk) {
    FillTopk(pool_.psr(client.session, rung), reply);
  } else {
    reply->quality = pool_.quality(client.session, rung);
  }
}

void Frontend::ExecuteSingle(const Client& client, const Request& request,
                             PlanRecord record, Reply* reply) {
  Result<ScanRequest> scan_request = ScanRequest::ForK(request.k);
  if (!scan_request.ok()) {
    reply->status = scan_request.status();
    return;
  }
  if (record.executed == PlanKind::kSharded ||
      record.executed == PlanKind::kLadderShared) {
    scan_request->exec = pool_.exec();
  } else {
    scan_request->exec.num_threads = 1;
    scan_request->exec.kernel = pool_.exec().kernel;
  }
  record.threads = scan_request->exec.num_threads;
  if (client.dirty_view) {
    scan_request->overlay = &pool_.overlay(client.session);
  }
  Result<ScanResult> scan = ComputePsrLadder(pool_.base(), *scan_request);
  if (!scan.ok()) {
    reply->status = scan.status();
    return;
  }
  reply->plan = record;
  if (request.verb == Verb::kTopk) {
    FillTopk(scan->output(), reply);
    return;
  }
  Result<TpOutput> tp =
      client.dirty_view
          ? ComputeTpQuality(pool_.overlay(client.session), scan->output())
          : ComputeTpQuality(pool_.base(), scan->output());
  if (!tp.ok()) {
    reply->status = tp.status();
    return;
  }
  reply->quality = tp->quality;
}

Reply Frontend::ExecuteClean(ClientId client_id, const Request& request) {
  Reply reply;
  reply.verb = Verb::kClean;
  reply.xtuple = request.xtuple;
  const Client& client = Slot(client_id);
  if (!profile_.has_value()) {
    reply.status = Status::FailedPrecondition(
        "clean: no cleaning profile loaded (serve --profile)");
    return reply;
  }
  const size_t num_xtuples = pool_.base().num_xtuples();
  if (static_cast<size_t>(request.xtuple) >= num_xtuples) {
    reply.status = Status::InvalidArgument(
        "clean: x-tuple " + std::to_string(request.xtuple) +
        " out of range (database has " + std::to_string(num_xtuples) + ")");
    return reply;
  }
  std::vector<int64_t> probes(num_xtuples, 0);
  probes[static_cast<size_t>(request.xtuple)] = 1;
  Result<ProbeDraws> draws = DrawProbes(pool_.overlay(client.session),
                                        *profile_, probes, client.rng.get());
  if (!draws.ok()) {
    reply.status = draws.status();
    return reply;
  }
  if (!draws->outcomes.empty()) {
    Status commit = CommitProbeDraws(&pool_, client.session, *draws);
    if (!commit.ok()) {
      reply.status = commit;
      return reply;
    }
    Status refresh = pool_.Refresh(client.session);
    if (!refresh.ok()) {
      reply.status = refresh;
      return reply;
    }
    clients_[client_id].dirty_view = true;
  }
  if (!draws->report.log.empty()) {
    const ProbeRecord& record = draws->report.log.front();
    reply.success = record.success;
    reply.resolved_id = record.resolved_id;
    reply.spent = record.spent;
  }
  reply.quality = pool_.quality(client.session, pool_.num_rungs() - 1);
  reply.rng_fingerprint = RngFingerprint(client_id);
  return reply;
}

Reply Frontend::ExecuteStats() const {
  Reply reply;
  reply.verb = Verb::kStats;
  reply.num_tuples = pool_.base().num_tuples();
  reply.open_sessions = pool_.num_open();
  reply.ladder = pool_.ladder().ToString();
  return reply;
}

Reply Frontend::Execute(ClientId client, const Request& request) {
  return ExecuteRound({{client, request}}).front();
}

std::vector<Reply> Frontend::ExecuteRound(
    const std::vector<std::pair<ClientId, Request>>& round) {
  std::vector<Reply> replies(round.size());
  std::vector<size_t> queries;
  queries.reserve(round.size());

  // Pass 1: immediate verbs (cleans mutate only the issuing client's
  // session, so executing them before the round's queries cannot change
  // any OTHER request's view; per-client order is the caller's queue).
  for (size_t i = 0; i < round.size(); ++i) {
    const auto& [client_id, request] = round[i];
    (void)Slot(client_id);  // hard check: ids are owned capabilities
    switch (request.verb) {
      case Verb::kStats:
        replies[i] = ExecuteStats();
        break;
      case Verb::kClean:
        replies[i] = ExecuteClean(client_id, request);
        break;
      case Verb::kTopk:
      case Verb::kQuality:
        replies[i].verb = request.verb;
        replies[i].k = request.k;
        queries.push_back(i);
        break;
    }
  }

  // Pass 2: batch candidacy. Compatible = same database view (pristine
  // session = the shared base) and not pinned away from ladder sharing.
  std::vector<char> candidate(round.size(), 0);
  std::vector<size_t> candidate_ks;
  if (options_.batching) {
    size_t admitted = 0;
    for (size_t i : queries) {
      const auto& [client_id, request] = round[i];
      if (admitted >= options_.max_batch) break;
      if (Slot(client_id).dirty_view) continue;
      std::optional<PlanKind> forced =
          request.plan.has_value() ? request.plan : options_.forced_plan;
      if (forced.has_value() && *forced != PlanKind::kLadderShared) continue;
      candidate[i] = 1;
      candidate_ks.push_back(request.k);
      ++admitted;
    }
  }
  std::sort(candidate_ks.begin(), candidate_ks.end());
  candidate_ks.erase(std::unique(candidate_ks.begin(), candidate_ks.end()),
                     candidate_ks.end());
  const size_t rung_count = std::max<size_t>(candidate_ks.size(), 1);

  // Pass 3: plan each query; ladder-chosen candidates pool into the
  // merged scan, everything else executes now.
  std::vector<size_t> batch;
  std::vector<PlanRecord> batch_records;
  for (size_t i : queries) {
    const auto& [client_id, request] = round[i];
    Result<PlanRecord> record =
        DecidePlan(request, candidate[i] != 0 ? rung_count : 1);
    if (!record.ok()) {
      replies[i].status = record.status();
      continue;
    }
    if (record->chosen == PlanKind::kLadderShared && candidate[i] != 0) {
      batch.push_back(i);
      batch_records.push_back(*record);
      continue;
    }
    const Client& client = Slot(client_id);
    if (record->chosen == PlanKind::kReplay) {
      ExecuteReplay(client, request, *record, &replies[i]);
    } else {
      ExecuteSingle(client, request, *record, &replies[i]);
    }
  }

  // Pass 4: the merged scan. A batch of one degrades to a per-request
  // scan (recorded: chosen=ladder, executed=seq/shard) -- the model
  // promised sharing the round did not deliver.
  if (batch.size() == 1) {
    const size_t i = batch.front();
    const auto& [client_id, request] = round[i];
    PlanRecord record = batch_records.front();
    const CostInputs inputs = InputsFor(request.k, 1);
    record.executed =
        options_.cost.Estimate(PlanKind::kSharded, inputs) <
                options_.cost.Estimate(PlanKind::kSequential, inputs)
            ? PlanKind::kSharded
            : PlanKind::kSequential;
    ExecuteSingle(Slot(client_id), request, record, &replies[i]);
  } else if (batch.size() > 1) {
    std::vector<size_t> ks;
    ks.reserve(batch.size());
    for (size_t i : batch) ks.push_back(round[i].second.k);
    Result<ScanRequest> scan_request = ScanRequest::ForLadder(std::move(ks));
    UCLEAN_CHECK(scan_request.ok());  // ks are validated, non-empty
    scan_request->exec = pool_.exec();
    Result<ScanResult> scan = ComputePsrLadder(pool_.base(), *scan_request);
    for (size_t b = 0; b < batch.size(); ++b) {
      const size_t i = batch[b];
      const auto& [client_id, request] = round[i];
      Reply* reply = &replies[i];
      if (!scan.ok()) {
        reply->status = scan.status();
        continue;
      }
      PlanRecord record = batch_records[b];
      record.executed = PlanKind::kLadderShared;
      record.batch_size = batch.size();
      record.threads = pool_.exec().num_threads;
      reply->plan = record;
      const size_t rung = scan_request->ladder.IndexOf(request.k);
      UCLEAN_CHECK(rung != KLadder::npos);
      const PsrOutput& psr = scan->output(rung);
      if (request.verb == Verb::kTopk) {
        FillTopk(psr, reply);
      } else {
        Result<TpOutput> tp = ComputeTpQuality(pool_.base(), psr);
        if (!tp.ok()) {
          reply->status = tp.status();
          continue;
        }
        reply->quality = tp->quality;
      }
    }
  }
  return replies;
}

}  // namespace serve
}  // namespace uclean
