// Serving front-end: admission, batching, cost-based plan selection and
// execution of top-k / quality / clean requests over one warm SessionPool.
//
// Every connected client owns one pooled cleaning session (its private
// copy-on-write view of the shared base) plus one seeded Rng for its
// probes. Requests execute in ADMISSION ROUNDS: the I/O loop
// (serve/server.h) hands ExecuteRound at most one request per client, in
// arrival order, and gets one reply per request back. Client state is
// pairwise disjoint (a clean touches only its own overlay; a query reads
// only its own view), so any interleaving of rounds produces results
// bitwise equal to running each client's stream alone through the
// one-shot APIs -- the determinism keystone tests/serve_test.cc holds
// across thread counts and batching modes.
//
// The ADMISSION BATCHER generalizes multi-k ladder sharing to strangers:
// all compatible top-k/quality requests of a round -- same database view,
// i.e. clients whose sessions are still pristine -- merge their distinct
// ks into one on-the-fly KLadder and share a single scan; each request
// then reads its own rung. A rung of a merged scan is bitwise the output
// of a dedicated single-k scan (the count-vector recurrence is
// k-independent and untruncated, emission latches per rung, the Lemma-2
// stop fires per rung), so batching never changes an answer, only its
// latency.
//
// Plan selection (serve/cost_model.h) picks per request between the four
// bitwise-equal strategies -- sequential, sharded, ladder-shared, replay
// from the pool's checkpointed state -- and records the decision in the
// reply's PlanRecord. FrontendOptions::forced_plan / a request's "plan="
// token pin a strategy (the testing seam); a forced strategy the request
// cannot execute (replay off the warm ladder, sharding without threads)
// yields a kFailedPrecondition reply.
//
// Threading: SERIALIZED CALLER, like the pool it drives. One I/O loop
// thread calls Connect/Disconnect/Execute*; hardware parallelism is
// applied THROUGH the pool's ExecOptions (sharded scans, fanned
// refreshes), never by calling the front-end concurrently.

#ifndef UCLEAN_SERVE_FRONTEND_H_
#define UCLEAN_SERVE_FRONTEND_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "clean/problem.h"
#include "clean/session_pool.h"
#include "common/rng.h"
#include "common/status.h"
#include "rank/psr.h"
#include "serve/cost_model.h"
#include "serve/protocol.h"

namespace uclean {
namespace serve {

struct FrontendOptions {
  /// Merge compatible same-view top-k/quality requests of a round into
  /// one shared ladder scan. Off = every request executes alone (the
  /// bench's per-request baseline). Answers are identical either way.
  bool batching = true;

  /// Upper bound on requests sharing one merged scan.
  size_t max_batch = 64;

  /// Pin every query to one strategy (CLI --plan); per-request "plan="
  /// tokens override this. Empty = cost model decides.
  std::optional<PlanKind> forced_plan;

  /// Base seed of the per-client probe Rngs (ClientSeed below).
  uint64_t seed = 2026;

  /// Calibration constants; see CostModel::Measure for measured ones.
  CostModel cost;
};

class Frontend {
 public:
  using ClientId = size_t;

  /// Takes ownership of a warm pool (Create or OpenFromSnapshot).
  /// `profile` supplies probe costs/sc-probabilities for clean requests;
  /// without one every clean yields a kFailedPrecondition reply.
  static Result<Frontend> Create(SessionPool pool,
                                 std::optional<CleaningProfile> profile,
                                 const FrontendOptions& options);

  /// Per-client probe-stream seed: connection order fully determines
  /// every client's randomness (shared with the serial test oracle).
  static uint64_t ClientSeed(uint64_t seed, size_t client_index);

  /// Admits a client: opens a pooled session and seeds its Rng with
  /// ClientSeed(options.seed, <number of connects so far>).
  ClientId Connect();

  /// Closes a client's session. Requires an open id.
  Status Disconnect(ClientId client);

  /// Executes one admission round: at most one request per client (the
  /// caller's per-connection queues guarantee per-client order), replies
  /// in `round` order. Never fails as a whole -- per-request problems
  /// come back as error replies.
  std::vector<Reply> ExecuteRound(
      const std::vector<std::pair<ClientId, Request>>& round);

  /// Single-request convenience (a round of one).
  Reply Execute(ClientId client, const Request& request);

  /// Fingerprint of the client's Rng state (Fnv1a64 over the engine's
  /// portable encoding): equal fingerprints = identical future streams.
  /// Requires an open id (hard check).
  uint64_t RngFingerprint(ClientId client) const;

  size_t num_clients() const { return num_open_; }
  const SessionPool& pool() const { return pool_; }
  const FrontendOptions& options() const { return options_; }

 private:
  struct Client {
    bool open = false;
    SessionPool::SessionId session = 0;
    std::unique_ptr<Rng> rng;
    /// True once any clean outcome landed in this client's overlay; its
    /// queries then run over the overlay view and leave the batcher.
    bool dirty_view = false;
  };

  Frontend(SessionPool pool, std::optional<CleaningProfile> profile,
           FrontendOptions options);

  const Client& Slot(ClientId client) const;
  CostInputs InputsFor(size_t k, size_t rung_count) const;

  /// Decides the plan for one query (forced seam included). Not-OK means
  /// an infeasible forced plan.
  Result<PlanRecord> DecidePlan(const Request& request, size_t rung_count);

  /// Executes one query alone (kSequential / kSharded / 1-rung forced
  /// ladder) over `client`'s view and fills `reply`.
  void ExecuteSingle(const Client& client, const Request& request,
                     PlanRecord record, Reply* reply);

  /// Serves a query from the pool's maintained rung state (kReplay).
  void ExecuteReplay(const Client& client, const Request& request,
                     PlanRecord record, Reply* reply);

  Reply ExecuteClean(ClientId client_id, const Request& request);
  Reply ExecuteStats() const;

  void FillTopk(const PsrOutput& psr, Reply* reply) const;

  SessionPool pool_;
  std::optional<CleaningProfile> profile_;
  FrontendOptions options_;
  ScanDepthProbe depth_probe_;
  std::vector<Client> clients_;
  size_t num_open_ = 0;
  size_t num_connects_ = 0;  ///< total ever, drives ClientSeed
};

}  // namespace serve
}  // namespace uclean

#endif  // UCLEAN_SERVE_FRONTEND_H_
