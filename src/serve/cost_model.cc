#include "serve/cost_model.h"

#include <algorithm>

#include "common/check.h"
#include "common/stopwatch.h"
#include "rank/psr.h"

namespace uclean {
namespace serve {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kSequential:
      return "seq";
    case PlanKind::kSharded:
      return "shard";
    case PlanKind::kLadderShared:
      return "ladder";
    case PlanKind::kReplay:
      return "replay";
  }
  UCLEAN_CHECK(false);
  return "";
}

Result<PlanKind> ParsePlanKind(std::string_view name) {
  if (name == "seq") return PlanKind::kSequential;
  if (name == "shard") return PlanKind::kSharded;
  if (name == "ladder") return PlanKind::kLadderShared;
  if (name == "replay") return PlanKind::kReplay;
  return Status::InvalidArgument("unknown plan '" + std::string(name) +
                                 "' (want seq|shard|ladder|replay)");
}

double CostModel::Estimate(PlanKind kind, const CostInputs& inputs) const {
  const double depth = static_cast<double>(inputs.scan_depth);
  const double admission = session_ns * static_cast<double>(inputs.pool_occupancy);
  switch (kind) {
    case PlanKind::kSequential:
      return admission + tuple_ns * depth;
    case PlanKind::kSharded: {
      if (inputs.num_threads <= 1) return kInfeasible;
      const double speed =
          1.0 + shard_efficiency * static_cast<double>(inputs.num_threads - 1);
      return admission + shard_setup_ns + tuple_ns * depth / speed;
    }
    case PlanKind::kLadderShared: {
      if (inputs.rung_count <= 1) return kInfeasible;
      const double rungs = static_cast<double>(inputs.rung_count);
      // One shared scan (the deepest rung's depth dominates; `depth` is
      // this request's own estimate, a lower bound) plus per-rung
      // emission, amortized over the batch.
      return admission + (tuple_ns * depth + rung_emit_ns * rungs) / rungs;
    }
    case PlanKind::kReplay:
      if (!inputs.replay_available) return kInfeasible;
      return admission + replay_read_ns;
  }
  UCLEAN_CHECK(false);
  return kInfeasible;
}

PlanKind CostModel::Choose(const CostInputs& inputs) const {
  PlanKind best = PlanKind::kSequential;
  double best_cost = Estimate(best, inputs);
  for (PlanKind kind : {PlanKind::kSharded, PlanKind::kLadderShared,
                        PlanKind::kReplay}) {
    const double cost = Estimate(kind, inputs);
    if (cost < best_cost) {
      best = kind;
      best_cost = cost;
    }
  }
  return best;
}

CostModel CostModel::Measure(const ProbabilisticDatabase& db) {
  CostModel model;
  Result<ScanRequest> request = ScanRequest::ForK(8);
  UCLEAN_CHECK(request.ok());
  Stopwatch timer;
  Result<ScanResult> scan = ComputePsrLadder(db, *request);
  const double elapsed_ns = timer.ElapsedSeconds() * 1e9;
  if (scan.ok() && scan->output().scan_end > 0) {
    const double measured =
        elapsed_ns / static_cast<double>(scan->output().scan_end);
    // Clamp: a cold first scan or a timer blip must not produce a model
    // that believes scans are free or astronomically expensive.
    model.tuple_ns = std::min(std::max(measured, 1.0), 100000.0);
  }
  return model;
}

std::string PlanRecord::ToString() const {
  std::string out = "plan=";
  out += PlanKindName(chosen);
  out += " exec=";
  out += PlanKindName(executed);
  out += " forced=";
  out += forced ? '1' : '0';
  out += " batch=" + std::to_string(batch_size);
  out += " threads=" + std::to_string(threads);
  return out;
}

}  // namespace serve
}  // namespace uclean
