// Newline-delimited request protocol of the serving front-end.
//
// One request per line, space-separated tokens, replies one line per
// request in admission order on the client's connection:
//
//   topk <k> [plan=seq|shard|ladder|replay]
//   quality <k> [plan=seq|shard|ladder|replay]
//   clean <xtuple>
//   stats
//
// Successful replies start with "ok", errors with "error":
//
//   ok verb=topk k=25 plan=ladder exec=ladder forced=0 batch=4 threads=2
//      nonzero=37 scan_end=412 fp=9a1b... top=t17@3:0.9931...
//   ok verb=quality k=25 ... quality=-12.345678901234567
//   ok verb=clean xtuple=12 success=1 resolved=t123 spent=3
//      quality=-11.5... rngfp=5c77...
//   ok verb=stats tuples=4000 open=3 ladder={20, 100}
//   error code=InvalidArgument msg="topk: bad k 'abc'"
//
// Every floating-point field is rendered with round-trip precision
// (common/strings.h FormatDouble) and fp=/rngfp= are FNV-1a 64 hashes of
// the raw result bytes, so two reply lines agree exactly iff the
// underlying results are bitwise equal -- the property the traffic-replay
// bench and the request-mix tests gate on. Malformed input never kills a
// connection: parsing yields a structured kInvalidArgument reply and the
// loop keeps serving (tests/serve_protocol_test.cc).
//
// Threading: pure value types and pure functions; safe from any thread.

#ifndef UCLEAN_SERVE_PROTOCOL_H_
#define UCLEAN_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "model/tuple.h"
#include "serve/cost_model.h"

namespace uclean {
namespace serve {

/// The request shapes the front-end serves.
enum class Verb : uint8_t {
  kTopk = 0,
  kQuality = 1,
  kClean = 2,
  kStats = 3,
};

/// "topk", "quality", "clean", "stats".
const char* VerbName(Verb verb);

/// One parsed request line.
struct Request {
  Verb verb = Verb::kTopk;
  size_t k = 0;            ///< topk / quality
  XTupleId xtuple = 0;     ///< clean
  /// Forced execution strategy ("plan=" token); empty = cost model.
  std::optional<PlanKind> plan;
};

/// Parses one protocol line (without the trailing newline). Fails with
/// InvalidArgument on unknown verbs, bad argument counts and unparsable
/// or out-of-range numbers; the caller turns that into an error reply.
Result<Request> ParseRequest(std::string_view line);

/// One reply line's worth of result. `status` not-OK makes this an error
/// reply and every other field is ignored.
struct Reply {
  Status status;
  Verb verb = Verb::kTopk;
  size_t k = 0;
  PlanRecord plan;

  // topk
  size_t num_nonzero = 0;
  size_t scan_end = 0;
  uint64_t fingerprint = 0;  ///< HashDoubles over the rung's topk_prob
  TupleId top_id = -1;       ///< argmax top-k probability (first wins)
  int32_t top_index = -1;
  double top_prob = 0.0;

  // quality
  double quality = 0.0;

  // clean
  XTupleId xtuple = 0;
  bool success = false;
  TupleId resolved_id = -1;
  int64_t spent = 0;
  uint64_t rng_fingerprint = 0;  ///< hash of the session Rng state after

  // stats
  size_t num_tuples = 0;
  size_t open_sessions = 0;
  std::string ladder;
};

/// Renders the one-line wire form (no trailing newline).
std::string FormatReply(const Reply& reply);

/// FNV-1a 64-bit over raw bytes.
uint64_t Fnv1a64(const void* data, size_t size);

/// Fingerprint of a double vector's raw IEEE-754 bytes: equal hashes are
/// (modulo collisions) bitwise-equal results.
uint64_t HashDoubles(const std::vector<double>& values);

}  // namespace serve
}  // namespace uclean

#endif  // UCLEAN_SERVE_PROTOCOL_H_
