#include "serve/protocol.h"

#include <cstdio>
#include <limits>

#include "common/check.h"
#include "common/strings.h"

namespace uclean {
namespace serve {
namespace {

/// Largest accepted k: far above any useful rung, small enough that a
/// hostile "topk 999999999999" cannot allocate per-rank arrays at will.
constexpr int64_t kMaxK = 10'000'000;

/// Splits on runs of spaces/tabs (no empty tokens).
std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t begin = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > begin) tokens.push_back(line.substr(begin, i - begin));
  }
  return tokens;
}

Result<size_t> ParseK(Verb verb, std::string_view token) {
  Result<int64_t> k = ParseInt(token);
  if (!k.ok() || *k < 1 || *k > kMaxK) {
    return Status::InvalidArgument(std::string(VerbName(verb)) + ": bad k '" +
                                   std::string(token) + "' (want 1.." +
                                   std::to_string(kMaxK) + ")");
  }
  return static_cast<size_t>(*k);
}

/// Consumes an optional trailing "plan=<name>" token.
Status ParsePlanToken(const std::vector<std::string_view>& tokens,
                      size_t index, Request* request) {
  if (tokens.size() <= index) return Status::OK();
  std::string_view token = tokens[index];
  constexpr std::string_view kPrefix = "plan=";
  if (tokens.size() > index + 1 || token.substr(0, kPrefix.size()) != kPrefix) {
    return Status::InvalidArgument(
        std::string(VerbName(request->verb)) +
        ": unexpected trailing arguments (only 'plan=<seq|shard|ladder|"
        "replay>' may follow)");
  }
  Result<PlanKind> plan = ParsePlanKind(token.substr(kPrefix.size()));
  if (!plan.ok()) return plan.status();
  request->plan = *plan;
  return Status::OK();
}

}  // namespace

const char* VerbName(Verb verb) {
  switch (verb) {
    case Verb::kTopk:
      return "topk";
    case Verb::kQuality:
      return "quality";
    case Verb::kClean:
      return "clean";
    case Verb::kStats:
      return "stats";
  }
  UCLEAN_CHECK(false);
  return "";
}

Result<Request> ParseRequest(std::string_view line) {
  const std::vector<std::string_view> tokens = Tokenize(line);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty request line");
  }
  Request request;
  const std::string_view verb = tokens[0];
  if (verb == "topk" || verb == "quality") {
    request.verb = verb == "topk" ? Verb::kTopk : Verb::kQuality;
    if (tokens.size() < 2) {
      return Status::InvalidArgument(std::string(verb) + ": missing k");
    }
    Result<size_t> k = ParseK(request.verb, tokens[1]);
    if (!k.ok()) return k.status();
    request.k = *k;
    UCLEAN_RETURN_IF_ERROR(ParsePlanToken(tokens, 2, &request));
    return request;
  }
  if (verb == "clean") {
    request.verb = Verb::kClean;
    if (tokens.size() != 2) {
      return Status::InvalidArgument("clean: want exactly one x-tuple id");
    }
    Result<int64_t> xtuple = ParseInt(tokens[1]);
    if (!xtuple.ok() || *xtuple < 0 ||
        *xtuple > std::numeric_limits<int32_t>::max()) {
      return Status::InvalidArgument("clean: bad x-tuple id '" +
                                     std::string(tokens[1]) + "'");
    }
    request.xtuple = static_cast<XTupleId>(*xtuple);
    return request;
  }
  if (verb == "stats") {
    request.verb = Verb::kStats;
    if (tokens.size() != 1) {
      return Status::InvalidArgument("stats: takes no arguments");
    }
    return request;
  }
  return Status::InvalidArgument("unknown verb '" + std::string(verb) +
                                 "' (want topk|quality|clean|stats)");
}

std::string FormatReply(const Reply& reply) {
  if (!reply.status.ok()) {
    std::string msg = reply.status.message();
    for (char& c : msg) {
      if (c == '\n' || c == '\r' || c == '"') c = ' ';
    }
    return std::string("error code=") + StatusCodeName(reply.status.code()) +
           " msg=\"" + msg + "\"";
  }
  std::string out = "ok verb=";
  out += VerbName(reply.verb);
  switch (reply.verb) {
    case Verb::kTopk: {
      char fp[32];
      std::snprintf(fp, sizeof(fp), "%016llx",
                    static_cast<unsigned long long>(reply.fingerprint));
      out += " k=" + std::to_string(reply.k);
      out += ' ' + reply.plan.ToString();
      out += " nonzero=" + std::to_string(reply.num_nonzero);
      out += " scan_end=" + std::to_string(reply.scan_end);
      out += std::string(" fp=") + fp;
      out += " top=t" + std::to_string(reply.top_id) + "@" +
             std::to_string(reply.top_index) + ":" +
             FormatDouble(reply.top_prob);
      break;
    }
    case Verb::kQuality:
      out += " k=" + std::to_string(reply.k);
      out += ' ' + reply.plan.ToString();
      out += " quality=" + FormatDouble(reply.quality);
      break;
    case Verb::kClean: {
      char fp[32];
      std::snprintf(fp, sizeof(fp), "%016llx",
                    static_cast<unsigned long long>(reply.rng_fingerprint));
      out += " xtuple=" + std::to_string(reply.xtuple);
      out += " success=" + std::to_string(reply.success ? 1 : 0);
      out += " resolved=t" + std::to_string(reply.resolved_id);
      out += " spent=" + std::to_string(reply.spent);
      out += " quality=" + FormatDouble(reply.quality);
      out += std::string(" rngfp=") + fp;
      break;
    }
    case Verb::kStats:
      out += " tuples=" + std::to_string(reply.num_tuples);
      out += " open=" + std::to_string(reply.open_sessions);
      out += " ladder=" + reply.ladder;
      break;
  }
  return out;
}

uint64_t Fnv1a64(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 1469598103934665603ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

uint64_t HashDoubles(const std::vector<double>& values) {
  return Fnv1a64(values.data(), values.size() * sizeof(double));
}

}  // namespace serve
}  // namespace uclean
