#include "serve/server.h"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "common/check.h"

namespace uclean {
namespace serve {

LineServer::LineServer(Frontend* frontend, const ServerOptions& options)
    : frontend_(frontend), options_(options) {
  UCLEAN_CHECK(frontend_ != nullptr);
  UCLEAN_CHECK(options_.max_line_bytes >= 16);
}

Result<size_t> LineServer::AddClient(int read_fd, int write_fd) {
  if (read_fd < 0 || write_fd < 0) {
    return Status::InvalidArgument("AddClient: negative fd");
  }
  Connection conn;
  conn.read_fd = read_fd;
  conn.write_fd = write_fd;
  conn.client = frontend_->Connect();
  connections_.push_back(std::move(conn));
  return connections_.size() - 1;
}

void LineServer::EnqueueLine(Connection* conn, std::string_view line) {
  // Tolerate CRLF clients and skip blank lines (they are not requests).
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  bool blank = true;
  for (char c : line) {
    if (c != ' ' && c != '\t') {
      blank = false;
      break;
    }
  }
  if (blank) return;
  Result<Request> request = ParseRequest(line);
  if (request.ok()) {
    conn->pending.push_back(*request);
    conn->order.push_back('r');
  } else {
    Reply error;
    error.status = request.status();
    conn->parse_errors.push_back(std::move(error));
    conn->order.push_back('e');
  }
}

void LineServer::EnqueueOversizeError(Connection* conn) {
  Reply error;
  error.status = Status::InvalidArgument(
      "request line exceeds " + std::to_string(options_.max_line_bytes) +
      " bytes");
  conn->parse_errors.push_back(std::move(error));
  conn->order.push_back('e');
}

void LineServer::ParseBuffered(Connection* conn, bool at_eof) {
  size_t begin = 0;
  while (true) {
    const size_t newline = conn->buffer.find('\n', begin);
    if (newline == std::string::npos) break;
    if (conn->discarding) {
      // The tail of an oversized line: drop it, resynchronize.
      conn->discarding = false;
    } else if (newline - begin > options_.max_line_bytes) {
      // The whole oversized line arrived in one read. The cap must not
      // depend on arrival granularity, so it applies per line, not per
      // residual buffer.
      EnqueueOversizeError(conn);
    } else {
      EnqueueLine(conn, std::string_view(conn->buffer)
                            .substr(begin, newline - begin));
    }
    begin = newline + 1;
  }
  conn->buffer.erase(0, begin);
  if (conn->discarding) {
    conn->buffer.clear();
  } else if (conn->buffer.size() > options_.max_line_bytes) {
    EnqueueOversizeError(conn);
    conn->buffer.clear();
    conn->discarding = true;
  }
  if (at_eof && !conn->buffer.empty() && !conn->discarding) {
    // A truncated final line (no newline before EOF) still counts.
    EnqueueLine(conn, conn->buffer);
    conn->buffer.clear();
  }
}

Status LineServer::WriteReply(Connection* conn, const Reply& reply) {
  const std::string line = FormatReply(reply) + "\n";
  size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        write(conn->write_fd, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A client that closed its end mid-stream loses its replies; the
      // server keeps serving everyone else.
      CloseConnection(conn);
      return Status::OK();
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

void LineServer::CloseConnection(Connection* conn) {
  if (!conn->open) return;
  conn->open = false;
  conn->pending.clear();
  conn->parse_errors.clear();
  conn->order.clear();
  Status closed = frontend_->Disconnect(conn->client);
  UCLEAN_CHECK(closed.ok());
  close(conn->read_fd);
  if (conn->write_fd != conn->read_fd) close(conn->write_fd);
  conn->read_fd = -1;
  conn->write_fd = -1;
}

Status LineServer::Run() {
  // A reply can race a client that already closed its end; the write()
  // below must come back as EPIPE, not as a process-killing SIGPIPE, or
  // one dead client takes down every other connection.
  signal(SIGPIPE, SIG_IGN);
  std::vector<char> chunk(4096);
  while (true) {
    bool any_open = false;
    bool any_pending = false;
    bool any_readable = false;
    std::vector<pollfd> fds;
    std::vector<size_t> fd_conn;
    for (size_t c = 0; c < connections_.size(); ++c) {
      Connection& conn = connections_[c];
      if (!conn.open) continue;
      any_open = true;
      if (!conn.order.empty()) any_pending = true;
      if (!conn.saw_eof) {
        any_readable = true;
        fds.push_back(pollfd{conn.read_fd, POLLIN, 0});
        fd_conn.push_back(c);
      }
    }
    if (!any_open) return Status::OK();
    if (!any_readable && !any_pending) {
      // Only EOF'd-and-drained connections remain: close them out.
      for (Connection& conn : connections_) {
        if (conn.open) CloseConnection(&conn);
      }
      return Status::OK();
    }

    if (!fds.empty()) {
      // Block only when there is nothing to execute; otherwise just
      // sweep for newly arrived requests so the next round admits them.
      const int ready = poll(fds.data(), fds.size(), any_pending ? 0 : -1);
      if (ready < 0 && errno != EINTR) {
        return Status::IOError(std::string("poll: ") + std::strerror(errno));
      }
      for (size_t j = 0; j < fds.size(); ++j) {
        if (ready <= 0) break;
        if ((fds[j].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        Connection& conn = connections_[fd_conn[j]];
        // One read per poll readiness: the fd is blocking, so a second
        // read could park the loop mid-round; leftover bytes make the
        // next poll() return immediately instead.
        ssize_t n;
        do {
          n = read(conn.read_fd, chunk.data(), chunk.size());
        } while (n < 0 && errno == EINTR);
        if (n > 0) {
          conn.buffer.append(chunk.data(), static_cast<size_t>(n));
        } else {
          // n == 0 is EOF; a read error past EINTR (ECONNRESET from a
          // peer that closed with replies unread) is end-of-stream too,
          // or the dead fd stays in the poll set and spins the loop.
          conn.saw_eof = true;
        }
        ParseBuffered(&conn, conn.saw_eof);
      }
    }

    // Admission round: the head of every connection's queue.
    std::vector<std::pair<Frontend::ClientId, Request>> round;
    std::vector<size_t> round_conn;
    for (size_t c = 0; c < connections_.size(); ++c) {
      Connection& conn = connections_[c];
      if (!conn.open || conn.order.empty()) continue;
      if (conn.order.front() == 'e') {
        conn.order.pop_front();
        Reply error = std::move(conn.parse_errors.front());
        conn.parse_errors.pop_front();
        UCLEAN_RETURN_IF_ERROR(WriteReply(&conn, error));
        continue;
      }
      conn.order.pop_front();
      round.emplace_back(conn.client, conn.pending.front());
      conn.pending.pop_front();
      round_conn.push_back(c);
    }
    if (!round.empty()) {
      const std::vector<Reply> replies = frontend_->ExecuteRound(round);
      for (size_t j = 0; j < replies.size(); ++j) {
        Connection& conn = connections_[round_conn[j]];
        if (!conn.open) continue;
        UCLEAN_RETURN_IF_ERROR(WriteReply(&conn, replies[j]));
      }
    }

    // Close connections that are done (EOF seen, everything served).
    for (Connection& conn : connections_) {
      if (conn.open && conn.saw_eof && conn.order.empty() &&
          conn.buffer.empty()) {
        CloseConnection(&conn);
      }
    }
  }
}

}  // namespace serve
}  // namespace uclean
