// LineServer: the persistent request loop of the serving front-end.
//
// Drives the newline-delimited protocol (serve/protocol.h) over plain
// file descriptors: the CLI's `uclean_cli serve` attaches stdin/stdout as
// one client, tests and the traffic-replay bench attach one socketpair
// end per simulated client. The loop poll(2)s every connection, splits
// complete lines out of per-connection buffers, and runs ADMISSION
// ROUNDS: at most one pending request per client per round, handed to
// Frontend::ExecuteRound in arrival order, one reply line written back
// per request on its own connection. Under load many clients have a
// pending head-of-queue request, so rounds are exactly where the
// admission batcher finds strangers to share a scan with.
//
// Hardening (tests/serve_protocol_test.cc): a malformed line -- unknown
// verb, bad k, junk arguments -- becomes a structured kInvalidArgument
// error reply IN ORDER on that connection and the loop keeps serving. A
// line longer than options.max_line_bytes is answered with one error
// reply and discarded up to its terminating newline (the connection
// resynchronizes). EOF flushes a trailing unterminated line as a final
// request, then drains the connection's queue and closes its session.
// Replies preserve per-connection request order unconditionally.
//
// This file (src/serve/) is the ONLY place in the library allowed to
// touch socket/fd primitives -- poll/read/write and friends are confined
// here by tools/check_contracts.py rule 7.
//
// Threading: SERIALIZED CALLER -- one thread owns Run(). Concurrency
// comes from the clients (other processes/threads writing the fds) and
// from the pool's exec options inside the scans, never from the loop.
//
// Write path: Run() ignores SIGPIPE process-wide, so a client that
// closed its end mid-stream turns into an EPIPE on write() and ONLY
// that connection is torn down -- likewise a read error past EINTR
// (e.g. ECONNRESET) drains and closes just that connection. Replies
// are still written with blocking write() from the serving thread: a
// LIVE client that stops draining its socket stalls the loop once the
// kernel buffer fills, freezing the other connections (head-of-line
// blocking). The intended clients -- the CLI's stdout, the tests and
// the bench harness -- always drain; a deployment facing hostile
// clients needs per-connection output buffers flushed under POLLOUT.

#ifndef UCLEAN_SERVE_SERVER_H_
#define UCLEAN_SERVE_SERVER_H_

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/frontend.h"
#include "serve/protocol.h"

namespace uclean {
namespace serve {

struct ServerOptions {
  /// Longest accepted request line, bytes (newline excluded). Longer
  /// lines get one error reply and are discarded to the next newline.
  size_t max_line_bytes = 1 << 16;
};

class LineServer {
 public:
  /// `frontend` must outlive the server (hard check on null).
  LineServer(Frontend* frontend, const ServerOptions& options);

  /// Attaches a connection: requests are read from `read_fd`, replies
  /// written to `write_fd` (equal fds -- a socketpair end -- are fine).
  /// The server closes both on disconnect. Opens a front-end client, so
  /// attach order determines each connection's probe seed.
  Result<size_t> AddClient(int read_fd, int write_fd);

  /// Serves until every connection reached EOF and drained. Per-request
  /// problems become error replies; only transport-level failures (a
  /// poll that cannot be retried) surface as a status.
  Status Run();

  size_t num_connections() const { return connections_.size(); }

 private:
  struct Connection {
    int read_fd = -1;
    int write_fd = -1;
    Frontend::ClientId client = 0;
    std::string buffer;
    /// Parsed-but-unserved requests; parse failures ride along as error
    /// replies so per-connection reply order holds.
    std::deque<Reply> parse_errors;
    std::deque<Request> pending;
    /// Interleaving order of pending/parse_errors: 'r' request, 'e' error.
    std::deque<char> order;
    bool discarding = false;  ///< inside an oversized line
    bool saw_eof = false;
    bool open = true;
  };

  /// Consumes complete lines from the connection's buffer.
  void ParseBuffered(Connection* conn, bool at_eof);
  void EnqueueLine(Connection* conn, std::string_view line);
  void EnqueueOversizeError(Connection* conn);
  Status WriteReply(Connection* conn, const Reply& reply);
  void CloseConnection(Connection* conn);

  Frontend* frontend_;
  ServerOptions options_;
  std::vector<Connection> connections_;
};

}  // namespace serve
}  // namespace uclean

#endif  // UCLEAN_SERVE_SERVER_H_
