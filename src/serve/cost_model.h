// Cost-based plan selection for the serving front-end (serve/frontend.h).
//
// Every admitted top-k / quality request can be executed four ways, and
// all four produce bitwise-identical answers (the scan is deterministic
// for any thread count, kernel and ladder composition), so plan choice is
// purely a latency decision -- a timing-driven model can never change a
// result:
//
//  * kSequential    one single-threaded scan for this request alone;
//  * kSharded       the same scan, rank-range sharded over the exec pool
//                   (rank/sharded_scan.h);
//  * kLadderShared  the request joins the admission batcher's on-the-fly
//                   KLadder and shares ONE scan with every compatible
//                   request in the round (generalizing multi-k sharing to
//                   strangers);
//  * kReplay        no scan at all: the answer is read from the warm
//                   SessionPool's maintained per-rung state
//                   (replay-from-checkpoint serving, PsrEngine
//                   checkpoints + suffix replays keep it current).
//
// The model is a handful of measured calibration constants applied to the
// request's CostInputs (tuple count, estimated live prefix depth, rung
// count of the candidate batch, pool occupancy, exec width). Estimate()
// returns kInfeasible for strategies the inputs cannot execute (sharding
// without threads, ladder sharing without a batch, replay off the warm
// ladder); Choose() picks the cheapest feasible strategy. A forced plan
// (--plan / per-request "plan=") bypasses Choose() entirely -- that seam
// is what the cost-model unit tests pin each strategy with -- and every
// decision is recorded in the reply as a PlanRecord (chosen vs executed,
// ScanResult-style), so plan selection stays observable and testable.
//
// Threading: CostModel and the helper types are plain immutable values;
// const use from any thread is safe. Measure() runs a scan and must not
// race with other users of its database.

#ifndef UCLEAN_SERVE_COST_MODEL_H_
#define UCLEAN_SERVE_COST_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "model/database.h"

namespace uclean {
namespace serve {

/// The four execution strategies the front-end picks between.
enum class PlanKind : uint8_t {
  kSequential = 0,
  kSharded = 1,
  kLadderShared = 2,
  kReplay = 3,
};

inline constexpr size_t kNumPlanKinds = 4;

/// Short wire/CLI name: "seq", "shard", "ladder", "replay".
const char* PlanKindName(PlanKind kind);

/// Parses a PlanKindName spelling. Fails with InvalidArgument on anything
/// else ("auto" is not a PlanKind -- callers map it to "no forced plan").
Result<PlanKind> ParsePlanKind(std::string_view name);

/// Everything the model knows about one candidate execution.
struct CostInputs {
  size_t num_tuples = 0;       ///< tuple count of the served database
  size_t scan_depth = 0;       ///< estimated live prefix depth for this k
  size_t rung_count = 1;       ///< distinct ks in the candidate batch
  size_t pool_occupancy = 0;   ///< open sessions on the warm pool
  size_t num_threads = 1;      ///< resolved exec width
  bool replay_available = false;  ///< k on the warm ladder, state current
};

/// Calibration constants + the estimate/choice functions. The defaults
/// are honest same-order figures for the scan core; Measure() replaces
/// the per-position constant with one timed on the actual database.
struct CostModel {
  /// Cost per live-prefix position of the count-vector recurrence, ns.
  double tuple_ns = 40.0;
  /// Fixed fan-out/merge overhead of a sharded scan, ns.
  double shard_setup_ns = 50000.0;
  /// Fraction of extra threads that turns into speedup (boundary-state
  /// rebuilds and the final merge are sequential).
  double shard_efficiency = 0.7;
  /// Per-rung emission cost a ladder adds to the shared scan, ns.
  double rung_emit_ns = 2000.0;
  /// Cost of serving straight from maintained pool state, ns.
  double replay_read_ns = 1500.0;
  /// Per-open-session admission bookkeeping, ns.
  double session_ns = 100.0;

  /// Estimate() result for a strategy `inputs` cannot execute.
  static constexpr double kInfeasible = 1e300;

  /// Estimated per-request latency of `kind` under `inputs`, in ns
  /// (ladder sharing amortizes the scan over the batch). kInfeasible when
  /// the strategy does not apply.
  double Estimate(PlanKind kind, const CostInputs& inputs) const;

  /// The cheapest feasible strategy (kSequential is always feasible;
  /// ties break toward the smaller enum value).
  PlanKind Choose(const CostInputs& inputs) const;

  /// Times one small calibration scan of `db` and returns a model whose
  /// tuple_ns matches the measured per-position cost (other constants
  /// keep their defaults). Plan choice may then depend on the timing;
  /// answers never do -- every strategy is bitwise-equal by construction.
  static CostModel Measure(const ProbabilisticDatabase& db);
};

/// ScanResult-style record of one plan decision, carried in every reply:
/// what the model (or the override) chose, what actually ran -- a chosen
/// kLadderShared degrades to a per-request scan when the round leaves the
/// request alone in its batch -- and the context of the decision.
struct PlanRecord {
  PlanKind chosen = PlanKind::kSequential;
  PlanKind executed = PlanKind::kSequential;
  bool forced = false;      ///< chosen came from --plan / "plan=", not Choose
  size_t batch_size = 1;    ///< requests sharing the executed scan
  size_t threads = 1;       ///< exec width of the executed scan
  double estimate_ns = 0.0; ///< Estimate(chosen) at decision time

  /// "plan=ladder exec=ladder forced=0 batch=4 threads=2".
  std::string ToString() const;
};

}  // namespace serve
}  // namespace uclean

#endif  // UCLEAN_SERVE_COST_MODEL_H_
