#include "query/topk_queries.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace uclean {

UkRanksAnswer EvaluateUkRanks(const ProbabilisticDatabase& db,
                              const PsrOutput& psr) {
  UkRanksAnswer answer;
  answer.per_rank.resize(psr.k);
  for (size_t h = 1; h <= psr.k; ++h) {
    AnswerEntry& entry = answer.per_rank[h - 1];
    entry.rank_index = psr.best_rank_index[h - 1];
    entry.probability = psr.best_rank_prob[h - 1];
    entry.tuple_id =
        entry.rank_index >= 0 ? db.tuple(entry.rank_index).id : -1;
  }
  return answer;
}

Result<PtkAnswer> EvaluatePtk(const ProbabilisticDatabase& db,
                              const PsrOutput& psr, double threshold) {
  if (!(threshold > 0.0) || threshold > 1.0) {
    return Status::InvalidArgument("PT-k threshold must be in (0, 1]");
  }
  PtkAnswer answer;
  answer.threshold = threshold;
  // Only tuples before the Lemma-2 stop point can qualify; they are already
  // in descending rank order.
  for (size_t i = 0; i < psr.scan_end; ++i) {
    const Tuple& t = db.tuple(i);
    if (t.is_null) continue;
    if (psr.topk_prob[i] >= threshold) {
      answer.tuples.push_back(AnswerEntry{
          t.id, static_cast<int32_t>(i), psr.topk_prob[i]});
    }
  }
  return answer;
}

GlobalTopkAnswer EvaluateGlobalTopk(const ProbabilisticDatabase& db,
                                    const PsrOutput& psr) {
  GlobalTopkAnswer answer;
  std::vector<int32_t> candidates;
  candidates.reserve(psr.num_nonzero);
  for (size_t i = 0; i < psr.scan_end; ++i) {
    if (!db.tuple(i).is_null && psr.topk_prob[i] > 0.0) {
      candidates.push_back(static_cast<int32_t>(i));
    }
  }
  const size_t take = std::min(psr.k, candidates.size());
  // Descending top-k probability, ties toward the higher-ranked (smaller
  // rank index) tuple.
  std::partial_sort(candidates.begin(), candidates.begin() + take,
                    candidates.end(), [&](int32_t a, int32_t b) {
                      if (psr.topk_prob[a] != psr.topk_prob[b]) {
                        return psr.topk_prob[a] > psr.topk_prob[b];
                      }
                      return a < b;
                    });
  for (size_t j = 0; j < take; ++j) {
    const int32_t i = candidates[j];
    answer.tuples.push_back(
        AnswerEntry{db.tuple(i).id, i, psr.topk_prob[i]});
  }
  return answer;
}

std::string AnswerToString(const ProbabilisticDatabase& db,
                           const std::vector<AnswerEntry>& entries) {
  std::ostringstream os;
  os << "{";
  for (size_t j = 0; j < entries.size(); ++j) {
    if (j > 0) os << ", ";
    if (entries[j].rank_index < 0) {
      os << "-";
      continue;
    }
    const Tuple& t = db.tuple(entries[j].rank_index);
    if (!t.label.empty()) {
      os << t.label;
    } else {
      os << "t" << t.id;
    }
  }
  os << "}";
  return os.str();
}

}  // namespace uclean
