// The three probabilistic top-k query semantics the paper supports
// (Section III-B), each evaluated from PSR rank-probability information so
// one scan feeds both the query answer and the quality score (Section IV-C,
// Figure 1(b)).
//
// * U-kRanks (Soliman et al., ICDE 2007): for each rank h = 1..k, the tuple
//   most likely to occupy exactly rank h.
// * PT-k (Hua et al., SIGMOD 2008): every tuple whose top-k probability
//   reaches a threshold T.
// * Global-topk (Zhang & Chomicki, ICDE workshops 2008): the k tuples with
//   the highest top-k probabilities.
//
// Null-completion tuples never appear in answers (they are not database
// entities), though they participate in the underlying probability math.

#ifndef UCLEAN_QUERY_TOPK_QUERIES_H_
#define UCLEAN_QUERY_TOPK_QUERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/database.h"
#include "rank/psr.h"

namespace uclean {

/// One answer row shared by all three semantics.
struct AnswerEntry {
  TupleId tuple_id = 0;       ///< user key of the returned tuple
  int32_t rank_index = -1;    ///< position in the database's rank order
  double probability = 0.0;   ///< the probability that earned the spot
};

/// U-kRanks: entry h-1 answers rank h (tuple_id == -1 when no real tuple
/// can occupy that rank, e.g. k exceeds the number of entities).
struct UkRanksAnswer {
  std::vector<AnswerEntry> per_rank;
};

/// PT-k: qualifying tuples in descending rank order with their top-k
/// probabilities.
struct PtkAnswer {
  double threshold = 0.0;
  std::vector<AnswerEntry> tuples;
};

/// Global-topk: the k best tuples by top-k probability (descending;
/// probability ties broken toward the higher-ranked tuple).
struct GlobalTopkAnswer {
  std::vector<AnswerEntry> tuples;
};

/// Evaluates U-kRanks from a PSR pass over the same database and k.
UkRanksAnswer EvaluateUkRanks(const ProbabilisticDatabase& db,
                              const PsrOutput& psr);

/// Evaluates PT-k with threshold `threshold` (must be in (0, 1]).
Result<PtkAnswer> EvaluatePtk(const ProbabilisticDatabase& db,
                              const PsrOutput& psr, double threshold);

/// Evaluates Global-topk.
GlobalTopkAnswer EvaluateGlobalTopk(const ProbabilisticDatabase& db,
                                    const PsrOutput& psr);

/// Renders an answer as a one-line set such as "{t1, t2, t5}".
std::string AnswerToString(const ProbabilisticDatabase& db,
                           const std::vector<AnswerEntry>& entries);

}  // namespace uclean

#endif  // UCLEAN_QUERY_TOPK_QUERIES_H_
