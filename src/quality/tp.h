// TP: quality computation via the tuple-form expression (Theorem 1).
//
//   S(D,Q) = sum_i omega_i * p_i
//
// where p_i is the top-k probability (from PSR) and omega_i depends only on
// the existential probabilities of t_i's own x-tuple members ranked at or
// above it (Eq. 6). With Y(x) = x log2 x and E_i the at-or-above mass of
// t_i's x-tuple (Eq. 7):
//
//   omega_i = log2 e_i + (1/e_i) * (Y(1 - E_i) - Y(1 - E_i + e_i))
//
// The E_i values follow incrementally from one pass over the rank order
// (Eq. 9), so given a PSR pass TP adds only O(n) work -- this is the
// computation-sharing effect Figure 5 measures. Tuples at or after the PSR
// scan's Lemma-2 stop point have p_i = 0 and contribute nothing.
//
// Multi-k sharing: omega_i is k-INDEPENDENT -- only the top-k
// probabilities p_i it is paired with depend on k. The ladder forms below
// therefore run the E/omega recurrence once and reuse the values for
// every rung of a k-ladder served by one shared PSR scan
// (ComputePsrLadder / the ladder PsrEngine), so quality for a whole
// ladder costs one omega pass plus a cheap per-rung accumulation.
//
// TP also exposes the per-x-tuple aggregates g(l,D) = sum_{t_i in tau_l}
// omega_i p_i: the quality score is sum_l g(l,D), and -g(l,D) is exactly the
// expected quality improvement of cleaning tau_l with certainty (Theorem 2),
// which is what every cleaning planner consumes.

#ifndef UCLEAN_QUALITY_TP_H_
#define UCLEAN_QUALITY_TP_H_

#include <vector>

#include "common/status.h"
#include "exec/thread_pool.h"
#include "model/database.h"
#include "model/database_overlay.h"
#include "rank/psr.h"

namespace uclean {

/// Output of the TP quality computation.
struct TpOutput {
  /// PWS-quality score S(D,Q).
  double quality = 0.0;

  /// omega_i per rank index (zero beyond the PSR scan end).
  std::vector<double> omega;

  /// The PSR scan end the omegas were computed under: every entry at or
  /// past it is zero, which lets the delta pass bound its suffix work.
  size_t scan_end = 0;

  /// g(l,D) per x-tuple: its summed omega_i * p_i contribution (always
  /// <= 0 up to rounding; sums to `quality`).
  std::vector<double> xtuple_gain;

  /// Per-x-tuple sum of member top-k probabilities (RandP's selection
  /// weights; sums to k over the database when every world has >= k tuples).
  std::vector<double> xtuple_topk_mass;
};

/// Computes quality from a PSR pass. `psr` must have been produced from
/// `db` (same tuple order) with the same k. Tombstoned slots (in-place
/// cleaning sessions) are skipped.
Result<TpOutput> ComputeTpQuality(const ProbabilisticDatabase& db,
                                  const PsrOutput& psr);

/// Overlay form for the serving front-end (src/serve/): quality of one
/// session's copy-on-write view (base + its own outcomes) from a PSR
/// pass over the same view. The TP pass is view-templated, so this is
/// the exact arithmetic of the database form -- results are bitwise what
/// the materialized cleaned database would produce.
Result<TpOutput> ComputeTpQuality(const DatabaseOverlay& db,
                                  const PsrOutput& psr);

/// Convenience: runs PSR (with default options) and TP in sequence.
Result<TpOutput> ComputeTpQuality(const ProbabilisticDatabase& db, size_t k);

/// Ladder form: one TpOutput per rung of a shared PSR scan over `db`
/// (ComputePsrLadder / PsrEngine ladder outputs, ascending k). The
/// k-independent omega recurrence runs ONCE for the deepest rung's scan
/// range; each rung then pairs the shared omegas with its own top-k
/// probabilities. Results are identical to calling ComputeTpQuality per
/// rung. `exec` fans the per-rung masking/accumulation over a shared
/// pool (each rung touches only its own TpOutput, so parallel results
/// are bitwise equal to sequential ones); the default runs inline.
Result<std::vector<TpOutput>> ComputeTpQualityLadder(
    const ProbabilisticDatabase& db, const std::vector<PsrOutput>& psrs,
    const ExecOptions& exec = {});

/// Delta overload for incremental cleaning sessions: brings `tp`
/// (previously computed for `db` + the engine's PSR state) up to date
/// after clean outcomes whose PSR replay started at rank `replay_begin`.
/// The omega prefix [0, replay_begin) is reused as-is -- a clean never
/// touches tuples ranked above the collapsed x-tuple's best member -- and
/// only the suffix up to the deeper of the old and new scan ends is
/// recomputed: each touched x-tuple's at-or-above mass E is re-seeded
/// from its (unchanged) members above the boundary and advanced across
/// the suffix exactly as the full pass would. The per-x-tuple aggregates
/// and the quality sum are then re-accumulated in scan order from the
/// stored per-tuple state, so the result is bitwise identical to
/// ComputeTpQuality(db, psr) at a fraction of the cost.
///
/// `psr` must be the engine state already replayed for the same outcomes.
Status UpdateTpQuality(const ProbabilisticDatabase& db, const PsrOutput& psr,
                       size_t replay_begin, TpOutput* tp);

/// Ladder form of the delta pass: updates one TpOutput per rung after a
/// shared-engine replay, running the omega suffix recurrence once for all
/// rungs. Rungs whose scan never reaches the replay boundary are
/// untouched (a clean below a rung's stop point cannot change it).
/// `exec` fans the per-rung wipe/mask/accumulate suffix work over a
/// shared pool, bitwise equal to the inline default.
Status UpdateTpQualityLadder(const ProbabilisticDatabase& db,
                             const std::vector<PsrOutput>& psrs,
                             size_t replay_begin, std::vector<TpOutput>* tps,
                             const ExecOptions& exec = {});

/// Pooled-session form: the same delta pass over one session's
/// copy-on-write overlay of a shared base database (the PSR ladder being
/// the session's replayed PsrEngine::SessionState outputs). Identical
/// arithmetic, so a pooled session's TP state stays bitwise equal to a
/// dedicated session's.
Status UpdateTpQualityLadder(const DatabaseOverlay& db,
                             const std::vector<PsrOutput>& psrs,
                             size_t replay_begin, std::vector<TpOutput>* tps,
                             const ExecOptions& exec = {});

}  // namespace uclean

#endif  // UCLEAN_QUALITY_TP_H_
