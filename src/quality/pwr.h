// PWR: quality computation by direct pw-result enumeration (Algorithm 1).
//
// Scans tuples in descending rank order, enumerating for each tuple whether
// it exists, with two short-circuit rules: a tuple whose x-tuple already has
// a member in the partial result cannot exist (mutual exclusion), and the
// lowest-ranked member of an otherwise-excluded x-tuple must exist (exactly
// one alternative per x-tuple exists in a world). A branch terminates as
// soon as k tuples are chosen; the chosen prefix is a pw-result and its
// probability follows from Lemma 1 without visiting any possible world.
// Every pw-result is reached on exactly one branch, so the entropy of
// Definition 4 accumulates leaf by leaf.
//
// Complexity O(n^{k+1}) worst case: polynomial in the database size but
// exponential in k, which is exactly the regime Figure 4(e)/(f) probes; the
// options provide result-count and wall-clock guards so harnesses can
// report "did not finish" points the way the paper's plots cut off.

#ifndef UCLEAN_QUALITY_PWR_H_
#define UCLEAN_QUALITY_PWR_H_

#include <cstdint>

#include "common/status.h"
#include "model/database.h"
#include "pworld/pw_result.h"

namespace uclean {

/// Tuning knobs for PWR.
struct PwrOptions {
  /// Keep the full pw-result distribution (Figures 2-3). Costs memory
  /// proportional to the number of pw-results; the quality score itself
  /// never needs it.
  bool collect_results = true;

  /// Abort with ResourceExhausted after this many pw-results (0 = no bound).
  uint64_t max_results = 0;

  /// Abort with ResourceExhausted after this much wall-clock time
  /// (0 = no bound). Checked every few thousand leaves.
  double time_limit_seconds = 0.0;
};

/// Output of PWR.
struct PwrOutput {
  /// PWS-quality score S(D,Q).
  double quality = 0.0;

  /// Number of distinct pw-results enumerated.
  uint64_t num_results = 0;

  /// The distribution R(D,Q) when PwrOptions::collect_results is set.
  PwResultSet results;
};

/// Runs PWR for a top-k query on `db`.
Result<PwrOutput> ComputePwrQuality(const ProbabilisticDatabase& db, size_t k,
                                    const PwrOptions& options = {});

}  // namespace uclean

#endif  // UCLEAN_QUALITY_PWR_H_
