#include "quality/evaluation.h"

#include "common/stopwatch.h"

namespace uclean {

Result<EvaluationReport> EvaluateTopk(const ProbabilisticDatabase& db,
                                      const EvaluationOptions& options) {
  EvaluationReport report;
  Stopwatch timer;

  Result<ScanRequest> request = ScanRequest::ForK(options.k, options.psr);
  if (!request.ok()) return request.status();
  Result<ScanResult> scan = ComputePsrLadder(db, *request);
  if (!scan.ok()) return scan.status();
  report.psr = std::move(scan->outputs[0]);
  report.psr_seconds = timer.ElapsedSeconds();

  timer.Reset();
  if (options.ukranks) {
    report.ukranks = EvaluateUkRanks(db, report.psr);
  }
  if (options.ptk) {
    Result<PtkAnswer> ptk = EvaluatePtk(db, report.psr, options.ptk_threshold);
    if (!ptk.ok()) return ptk.status();
    report.ptk = std::move(ptk).value();
  }
  if (options.global_topk) {
    report.global_topk = EvaluateGlobalTopk(db, report.psr);
  }
  report.query_seconds = timer.ElapsedSeconds();

  timer.Reset();
  if (options.quality) {
    Result<TpOutput> quality = ComputeTpQuality(db, report.psr);
    if (!quality.ok()) return quality.status();
    report.quality = std::move(quality).value();
  }
  report.quality_seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace uclean
