#include "quality/tp.h"

#include <algorithm>

#include "common/entropy_math.h"

namespace uclean {

namespace {

/// omega_i (Eq. 6) for a tuple with existential probability `e` whose
/// x-tuple has at-or-above mass `e_at_or_above` at the tuple's rank.
inline double Omega(double e, double e_at_or_above) {
  return Log2Safe(e) +
         (YLog2(1.0 - e_at_or_above) - YLog2(1.0 - e_at_or_above + e)) / e;
}

/// Re-derives quality and the per-x-tuple aggregates from the per-tuple
/// state (omega + PSR top-k probabilities), accumulating in scan order so
/// every caller produces bitwise-identical sums.
void AccumulateAggregates(const ProbabilisticDatabase& db,
                          const PsrOutput& psr, TpOutput* out) {
  std::fill(out->xtuple_gain.begin(), out->xtuple_gain.end(), 0.0);
  std::fill(out->xtuple_topk_mass.begin(), out->xtuple_topk_mass.end(), 0.0);
  double quality = 0.0;
  for (size_t i = 0; i < psr.scan_end; ++i) {
    if (db.is_tombstone(i)) continue;
    const Tuple& t = db.tuple(i);
    const double p = psr.topk_prob[i];
    out->xtuple_topk_mass[t.xtuple] += p;
    if (p <= 0.0) continue;  // omega * 0 contributes nothing (Lemma 5 logic)
    const double term = out->omega[i] * p;
    out->xtuple_gain[t.xtuple] += term;
    quality += term;
  }
  out->quality = quality;
}

}  // namespace

Result<TpOutput> ComputeTpQuality(const ProbabilisticDatabase& db,
                                  const PsrOutput& psr) {
  const size_t n = db.num_tuples();
  if (psr.topk_prob.size() != n) {
    return Status::InvalidArgument(
        "PSR output does not match the database (tuple count mismatch)");
  }
  TpOutput out;
  out.omega.assign(n, 0.0);
  out.xtuple_gain.assign(db.num_xtuples(), 0.0);
  out.xtuple_topk_mass.assign(db.num_xtuples(), 0.0);

  // E_run[l] accumulates E_{i,l} (Eq. 9): the mass of tau_l ranked at or
  // above the scan position.
  std::vector<double> e_run(db.num_xtuples(), 0.0);

  for (size_t i = 0; i < psr.scan_end; ++i) {
    if (db.is_tombstone(i)) continue;
    const Tuple& t = db.tuple(i);
    const double e = t.prob;
    const double e_at_or_above = e_run[t.xtuple] + e;  // E_{i,x_i}
    e_run[t.xtuple] = e_at_or_above;

    if (psr.topk_prob[i] <= 0.0) continue;
    out.omega[i] = Omega(e, e_at_or_above);
  }
  AccumulateAggregates(db, psr, &out);
  return out;
}

Result<TpOutput> ComputeTpQuality(const ProbabilisticDatabase& db, size_t k) {
  Result<PsrOutput> psr = ComputePsr(db, k);
  if (!psr.ok()) return psr.status();
  return ComputeTpQuality(db, *psr);
}

Status UpdateTpQuality(const ProbabilisticDatabase& db, const PsrOutput& psr,
                       size_t replay_begin, TpOutput* tp) {
  const size_t n = db.num_tuples();
  if (psr.topk_prob.size() != n || tp->omega.size() != n) {
    return Status::InvalidArgument(
        "TP/PSR state does not match the database (tuple count mismatch)");
  }
  if (tp->xtuple_gain.size() != db.num_xtuples()) {
    return Status::InvalidArgument(
        "TP state does not match the database (x-tuple count mismatch)");
  }

  // Recompute the per-tuple omega suffix. E_run for an x-tuple first seen
  // inside the suffix is seeded from its members ranked above the
  // boundary: those are untouched by any clean with first_changed_rank >=
  // replay_begin, and xtuple_members() lists them best rank first, so the
  // seed accumulates the exact additions the full pass performed.
  std::vector<double> e_run(db.num_xtuples(), 0.0);
  std::vector<uint8_t> seeded(db.num_xtuples(), 0);
  for (size_t i = replay_begin; i < n; ++i) {
    tp->omega[i] = 0.0;
    if (i >= psr.scan_end || db.is_tombstone(i)) continue;
    const Tuple& t = db.tuple(i);
    if (!seeded[t.xtuple]) {
      seeded[t.xtuple] = 1;
      double above = 0.0;
      for (int32_t idx : db.xtuple_members(t.xtuple)) {
        if (static_cast<size_t>(idx) >= replay_begin) break;
        above += db.tuple(idx).prob;
      }
      e_run[t.xtuple] = above;
    }
    const double e = t.prob;
    const double e_at_or_above = e_run[t.xtuple] + e;
    e_run[t.xtuple] = e_at_or_above;

    if (psr.topk_prob[i] <= 0.0) continue;
    tp->omega[i] = Omega(e, e_at_or_above);
  }
  AccumulateAggregates(db, psr, tp);
  return Status::OK();
}

}  // namespace uclean
