#include "quality/tp.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/entropy_math.h"

namespace uclean {

namespace {

/// omega_i (Eq. 6) for a tuple with existential probability `e` whose
/// x-tuple has at-or-above mass `e_at_or_above` at the tuple's rank.
inline double Omega(double e, double e_at_or_above) {
  return Log2Safe(e) +
         (YLog2(1.0 - e_at_or_above) - YLog2(1.0 - e_at_or_above + e)) / e;
}

/// Re-derives quality and the per-x-tuple aggregates from the per-tuple
/// state (omega + PSR top-k probabilities), accumulating in scan order so
/// every caller produces bitwise-identical sums. `Db` is
/// ProbabilisticDatabase or a per-session DatabaseOverlay view of one;
/// both run the same arithmetic (see database_overlay.h).
template <typename Db>
void AccumulateAggregates(const Db& db, const PsrOutput& psr, TpOutput* out) {
  std::fill(out->xtuple_gain.begin(), out->xtuple_gain.end(), 0.0);
  std::fill(out->xtuple_topk_mass.begin(), out->xtuple_topk_mass.end(), 0.0);
  double quality = 0.0;
  for (size_t i = 0; i < psr.scan_end; ++i) {
    if (db.is_tombstone(i)) continue;
    const Tuple& t = db.tuple(i);
    const double p = psr.topk_prob[i];
    out->xtuple_topk_mass[t.xtuple] += p;
    if (p <= 0.0) continue;  // omega * 0 contributes nothing (Lemma 5 logic)
    const double term = out->omega[i] * p;
    out->xtuple_gain[t.xtuple] += term;
    quality += term;
  }
  out->quality = quality;
}

/// Shared implementation behind both Compute forms: omega is k-independent
/// (Eq. 6 never mentions k), so the E/omega recurrence runs once over the
/// deepest rung's scan range and every rung reuses the values. The
/// per-rung masking/accumulation fans over `exec` (disjoint outputs, so
/// parallel results are bitwise equal).
template <typename Db>
Result<std::vector<TpOutput>> ComputeImpl(const Db& db,
                                          const PsrOutput* const* psrs,
                                          size_t rungs,
                                          const ExecOptions& exec) {
  const size_t n = db.num_tuples();
  size_t max_end = 0;
  for (size_t j = 0; j < rungs; ++j) {
    if (psrs[j]->topk_prob.size() != n) {
      return Status::InvalidArgument(
          "PSR output does not match the database (tuple count mismatch)");
    }
    max_end = std::max(max_end, psrs[j]->scan_end);
  }

  // One pass of the E recurrence (Eq. 9): shared_omega[i] is omega_i for
  // every rung; rungs differ only in which entries pair with a nonzero p.
  std::vector<double> shared_omega(max_end, 0.0);
  std::vector<double> e_run(db.num_xtuples(), 0.0);
  for (size_t i = 0; i < max_end; ++i) {
    if (db.is_tombstone(i)) continue;
    const Tuple& t = db.tuple(i);
    const double e_at_or_above = e_run[t.xtuple] + t.prob;  // E_{i,x_i}
    e_run[t.xtuple] = e_at_or_above;
    shared_omega[i] = Omega(t.prob, e_at_or_above);
  }

  std::vector<TpOutput> outs(rungs);
  ExecParallelFor(exec, rungs, [&](size_t j) {
    const PsrOutput& psr = *psrs[j];
    TpOutput& out = outs[j];
    out.omega.assign(n, 0.0);
    out.scan_end = psr.scan_end;
    out.xtuple_gain.assign(db.num_xtuples(), 0.0);
    out.xtuple_topk_mass.assign(db.num_xtuples(), 0.0);
    for (size_t i = 0; i < psr.scan_end; ++i) {
      if (db.is_tombstone(i) || psr.topk_prob[i] <= 0.0) continue;
      out.omega[i] = shared_omega[i];
    }
    AccumulateAggregates(db, psr, &out);
  });
  return outs;
}

/// Shared implementation behind both Update forms: re-derives the omega
/// suffix once and re-masks/re-accumulates per rung, fanning the
/// per-rung suffix work over `exec` (disjoint outputs, bitwise equal).
template <typename Db>
Status UpdateImpl(const Db& db, const PsrOutput* const* psrs,
                  TpOutput* const* tps, size_t rungs, size_t replay_begin,
                  const ExecOptions& exec) {
  const size_t n = db.num_tuples();
  size_t max_end = replay_begin;
  for (size_t j = 0; j < rungs; ++j) {
    if (psrs[j]->topk_prob.size() != n || tps[j]->omega.size() != n) {
      return Status::InvalidArgument(
          "TP/PSR state does not match the database (tuple count mismatch)");
    }
    if (tps[j]->xtuple_gain.size() != db.num_xtuples()) {
      return Status::InvalidArgument(
          "TP state does not match the database (x-tuple count mismatch)");
    }
    max_end = std::max({max_end, psrs[j]->scan_end, tps[j]->scan_end});
  }

  // Recompute the shared omega suffix. E_run for an x-tuple first seen
  // inside the suffix is seeded from its members ranked above the
  // boundary: those are untouched by any clean with first_changed_rank >=
  // replay_begin, and xtuple_members() lists them best rank first, so the
  // seed accumulates the exact additions the full pass performed.
  std::vector<double> shared_omega(max_end, 0.0);
  std::vector<double> e_run(db.num_xtuples(), 0.0);
  std::vector<uint8_t> seeded(db.num_xtuples(), 0);
  for (size_t i = replay_begin; i < max_end; ++i) {
    if (db.is_tombstone(i)) continue;
    const Tuple& t = db.tuple(i);
    if (!seeded[t.xtuple]) {
      seeded[t.xtuple] = 1;
      double above = 0.0;
      for (int32_t idx : db.xtuple_members(t.xtuple)) {
        if (static_cast<size_t>(idx) >= replay_begin) break;
        above += db.tuple(idx).prob;
      }
      e_run[t.xtuple] = above;
    }
    const double e_at_or_above = e_run[t.xtuple] + t.prob;
    e_run[t.xtuple] = e_at_or_above;
    shared_omega[i] = Omega(t.prob, e_at_or_above);
  }

  ExecParallelFor(exec, rungs, [&](size_t j) {
    const PsrOutput& psr = *psrs[j];
    TpOutput* tp = tps[j];
    // Every stored omega lives below the scan end it was computed under,
    // and a replay only rewrites [replay_begin, psr.scan_end), so work is
    // bounded by the deeper of the two ends. A rung whose scans never
    // reach the boundary is untouched (the clean cannot affect it).
    //
    // The wipe below runs to the DEEPER end on purpose: when a replay
    // moves the rung's scan_end backward (a clean that saturates an
    // x-tuple earlier fires the Lemma-2 stop sooner), the entries in
    // [psr.scan_end, tp->scan_end) must be zeroed or later delta passes
    // -- whose wipe is bounded by the new, shallower scan_end -- would
    // resurrect them once the scan grows again. This maintains the
    // invariant that omega is identically zero at and past scan_end
    // (regression-tested in ladder_test.cc).
    const size_t end = std::max(tp->scan_end, psr.scan_end);
    if (end <= replay_begin) return;  // omega and scan_end stay valid
    std::fill(tp->omega.begin() + replay_begin, tp->omega.begin() + end, 0.0);
    for (size_t i = replay_begin; i < psr.scan_end; ++i) {
      if (db.is_tombstone(i) || psr.topk_prob[i] <= 0.0) continue;
      tp->omega[i] = shared_omega[i];
    }
    tp->scan_end = psr.scan_end;
    AccumulateAggregates(db, psr, tp);
  });
  return Status::OK();
}

}  // namespace

Result<TpOutput> ComputeTpQuality(const ProbabilisticDatabase& db,
                                  const PsrOutput& psr) {
  const PsrOutput* ptr = &psr;
  Result<std::vector<TpOutput>> outs = ComputeImpl(db, &ptr, 1, {});
  if (!outs.ok()) return outs.status();
  return std::move((*outs)[0]);
}

Result<TpOutput> ComputeTpQuality(const DatabaseOverlay& db,
                                  const PsrOutput& psr) {
  const PsrOutput* ptr = &psr;
  Result<std::vector<TpOutput>> outs = ComputeImpl(db, &ptr, 1, {});
  if (!outs.ok()) return outs.status();
  return std::move((*outs)[0]);
}

Result<TpOutput> ComputeTpQuality(const ProbabilisticDatabase& db, size_t k) {
  Result<ScanRequest> request = ScanRequest::ForK(k);
  if (!request.ok()) return request.status();
  Result<ScanResult> scan = ComputePsrLadder(db, *request);
  if (!scan.ok()) return scan.status();
  return ComputeTpQuality(db, scan->output());
}

Result<std::vector<TpOutput>> ComputeTpQualityLadder(
    const ProbabilisticDatabase& db, const std::vector<PsrOutput>& psrs,
    const ExecOptions& exec) {
  if (psrs.empty()) {
    return Status::InvalidArgument("quality ladder must not be empty");
  }
  std::vector<const PsrOutput*> ptrs;
  ptrs.reserve(psrs.size());
  for (const PsrOutput& psr : psrs) ptrs.push_back(&psr);
  return ComputeImpl(db, ptrs.data(), ptrs.size(), exec);
}

Status UpdateTpQuality(const ProbabilisticDatabase& db, const PsrOutput& psr,
                       size_t replay_begin, TpOutput* tp) {
  const PsrOutput* psr_ptr = &psr;
  return UpdateImpl(db, &psr_ptr, &tp, 1, replay_begin, {});
}

namespace {

/// Shared ladder plumbing behind the database and overlay overloads.
template <typename Db>
Status UpdateLadderImpl(const Db& db, const std::vector<PsrOutput>& psrs,
                        size_t replay_begin, std::vector<TpOutput>* tps,
                        const ExecOptions& exec) {
  if (psrs.size() != tps->size() || psrs.empty()) {
    return Status::InvalidArgument(
        "PSR and TP ladders must be non-empty and the same length");
  }
  std::vector<const PsrOutput*> psr_ptrs;
  std::vector<TpOutput*> tp_ptrs;
  psr_ptrs.reserve(psrs.size());
  tp_ptrs.reserve(psrs.size());
  for (size_t j = 0; j < psrs.size(); ++j) {
    psr_ptrs.push_back(&psrs[j]);
    tp_ptrs.push_back(&(*tps)[j]);
  }
  return UpdateImpl(db, psr_ptrs.data(), tp_ptrs.data(), psrs.size(),
                    replay_begin, exec);
}

}  // namespace

Status UpdateTpQualityLadder(const ProbabilisticDatabase& db,
                             const std::vector<PsrOutput>& psrs,
                             size_t replay_begin, std::vector<TpOutput>* tps,
                             const ExecOptions& exec) {
  return UpdateLadderImpl(db, psrs, replay_begin, tps, exec);
}

Status UpdateTpQualityLadder(const DatabaseOverlay& db,
                             const std::vector<PsrOutput>& psrs,
                             size_t replay_begin, std::vector<TpOutput>* tps,
                             const ExecOptions& exec) {
  return UpdateLadderImpl(db, psrs, replay_begin, tps, exec);
}

}  // namespace uclean
