#include "quality/tp.h"

#include "common/entropy_math.h"

namespace uclean {

Result<TpOutput> ComputeTpQuality(const ProbabilisticDatabase& db,
                                  const PsrOutput& psr) {
  const size_t n = db.num_tuples();
  if (psr.topk_prob.size() != n) {
    return Status::InvalidArgument(
        "PSR output does not match the database (tuple count mismatch)");
  }
  TpOutput out;
  out.omega.assign(n, 0.0);
  out.xtuple_gain.assign(db.num_xtuples(), 0.0);
  out.xtuple_topk_mass.assign(db.num_xtuples(), 0.0);

  // E_run[l] accumulates E_{i,l} (Eq. 9): the mass of tau_l ranked at or
  // above the scan position.
  std::vector<double> e_run(db.num_xtuples(), 0.0);

  double quality = 0.0;
  for (size_t i = 0; i < psr.scan_end; ++i) {
    const Tuple& t = db.tuple(i);
    const double e = t.prob;
    const double e_at_or_above = e_run[t.xtuple] + e;  // E_{i,x_i}
    e_run[t.xtuple] = e_at_or_above;

    const double p = psr.topk_prob[i];
    out.xtuple_topk_mass[t.xtuple] += p;
    if (p <= 0.0) continue;  // omega * 0 contributes nothing (Lemma 5 logic)

    const double omega =
        Log2Safe(e) +
        (YLog2(1.0 - e_at_or_above) - YLog2(1.0 - e_at_or_above + e)) / e;
    out.omega[i] = omega;
    const double term = omega * p;
    out.xtuple_gain[t.xtuple] += term;
    quality += term;
  }
  out.quality = quality;
  return out;
}

Result<TpOutput> ComputeTpQuality(const ProbabilisticDatabase& db, size_t k) {
  Result<PsrOutput> psr = ComputePsr(db, k);
  if (!psr.ok()) return psr.status();
  return ComputeTpQuality(db, *psr);
}

}  // namespace uclean
