#include "quality/pwr.h"

#include <vector>

#include "common/check.h"
#include "common/entropy_math.h"
#include "common/stopwatch.h"

namespace uclean {

namespace {

/// Depth-first enumerator over pw-results with an explicit trail stack, so
/// recursion depth never depends on the database size (branches can pass
/// over every tuple once, which would be ~n stack frames if recursive).
class PwrEnumerator {
 public:
  PwrEnumerator(const ProbabilisticDatabase& db, size_t k,
                const PwrOptions& options)
      : db_(db),
        k_(k),
        options_(options),
        n_(static_cast<int32_t>(db.num_tuples())),
        in_result_(db.num_xtuples(), false),
        mass_above_(db.num_xtuples(), 0.0),
        is_last_member_(db.num_tuples(), false) {
    for (size_t l = 0; l < db.num_xtuples(); ++l) {
      const auto& members = db.xtuple_members(static_cast<XTupleId>(l));
      is_last_member_[members.back()] = true;
    }
  }

  Status Run(PwrOutput* out) {
    Stopwatch timer;
    int32_t i = 0;
    while (true) {
      // Descend: walk tuples forward, applying Algorithm 1's case analysis,
      // until the partial result completes (or input is exhausted).
      while (result_.size() < k_ && i < n_) {
        const Tuple& t = db_.tuple(i);
        if (in_result_[t.xtuple]) {
          Pass(i);  // Step 8: mutual exclusion, t_i cannot exist
        } else if (is_last_member_[i]) {
          Include(i, /*decision=*/false);  // Step 10: t_i is forced to exist
        } else {
          Include(i, /*decision=*/true);  // Step 12: branch; existence first
        }
        ++i;
      }
      UCLEAN_RETURN_IF_ERROR(EmitLeaf(out, timer));

      // Backtrack: revisit the deepest open decision and take its
      // "t_i does not exist" branch.
      if (decision_points_.empty()) break;
      const size_t dpos = decision_points_.back();
      decision_points_.pop_back();
      while (trail_.size() > dpos + 1) UndoLast();
      const int32_t j = trail_.back().index;
      UndoLast();
      Pass(j);
      i = j + 1;
    }
    out->quality = options_.collect_results
                       ? PwsQualityFromResults(out->results)
                       : entropy_accum_;
    out->num_results = leaves_;
    return Status::OK();
  }

 private:
  struct TrailEntry {
    int32_t index;
    bool included;
    double old_prob;  // product before this step (exact undo, no division)
    bool first_touch; // this step made the x-tuple's above-mass positive
  };

  void Pass(int32_t i) {
    const Tuple& t = db_.tuple(i);
    const bool first = mass_above_[t.xtuple] == 0.0;
    if (first) touched_.push_back(t.xtuple);
    mass_above_[t.xtuple] += t.prob;
    trail_.push_back(TrailEntry{i, false, prob_, first});
  }

  void Include(int32_t i, bool decision) {
    const Tuple& t = db_.tuple(i);
    const bool first = mass_above_[t.xtuple] == 0.0;
    if (first) touched_.push_back(t.xtuple);
    mass_above_[t.xtuple] += t.prob;
    trail_.push_back(TrailEntry{i, true, prob_, first});
    if (decision) decision_points_.push_back(trail_.size() - 1);
    result_.push_back(i);
    in_result_[t.xtuple] = true;
    prob_ *= t.prob;
  }

  void UndoLast() {
    const TrailEntry& entry = trail_.back();
    const Tuple& t = db_.tuple(entry.index);
    mass_above_[t.xtuple] -= t.prob;
    if (entry.first_touch) {
      mass_above_[t.xtuple] = 0.0;  // cancel rounding residue exactly
      UCLEAN_DCHECK(touched_.back() == t.xtuple);
      touched_.pop_back();
    }
    if (entry.included) {
      UCLEAN_DCHECK(!result_.empty() && result_.back() == entry.index);
      result_.pop_back();
      in_result_[t.xtuple] = false;
    }
    prob_ = entry.old_prob;
    trail_.pop_back();
  }

  Status EmitLeaf(PwrOutput* out, const Stopwatch& timer) {
    // Lemma 1: multiply in, for every x-tuple with mass ranked above the
    // result's last tuple but no member in the result, the probability that
    // it contributes nothing that high.
    double p = prob_;
    for (XTupleId l : touched_) {
      if (!in_result_[l]) p *= 1.0 - mass_above_[l];
    }
    ++leaves_;
    if (options_.collect_results) {
      out->results[result_] += p;
    } else {
      entropy_accum_ += YLog2(p);
    }
    if (options_.max_results > 0 && leaves_ > options_.max_results) {
      return Status::ResourceExhausted(
          "PWR exceeded max_results = " +
          std::to_string(options_.max_results));
    }
    if (options_.time_limit_seconds > 0.0 && (leaves_ & 0xFFF) == 0 &&
        timer.ElapsedSeconds() > options_.time_limit_seconds) {
      return Status::ResourceExhausted("PWR exceeded its time limit");
    }
    return Status::OK();
  }

  const ProbabilisticDatabase& db_;
  const size_t k_;
  const PwrOptions& options_;
  const int32_t n_;

  std::vector<int32_t> result_;         // partial pw-result (rank indices)
  std::vector<bool> in_result_;         // per x-tuple: has a member in result_
  std::vector<double> mass_above_;      // per x-tuple: mass of passed tuples
  std::vector<XTupleId> touched_;       // x-tuples with mass_above_ > 0
  std::vector<bool> is_last_member_;    // per tuple: lowest-ranked in x-tuple
  std::vector<TrailEntry> trail_;
  std::vector<size_t> decision_points_; // trail positions of open branches
  double prob_ = 1.0;                   // product of included tuples' probs

  double entropy_accum_ = 0.0;
  uint64_t leaves_ = 0;
};

}  // namespace

Result<PwrOutput> ComputePwrQuality(const ProbabilisticDatabase& db, size_t k,
                                    const PwrOptions& options) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  PwrOutput out;
  PwrEnumerator enumerator(db, k, options);
  UCLEAN_RETURN_IF_ERROR(enumerator.Run(&out));
  return out;
}

}  // namespace uclean
