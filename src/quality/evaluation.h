// One-pass query + quality evaluation (Section IV-C / Figure 1(b)).
//
// A single PSR scan yields the rank-probability information from which all
// three query semantics derive their answers, and TP then turns the same
// information into the PWS-quality score. The report carries a timing
// breakdown so callers (and the Figure-5 bench) can quantify how little the
// quality computation adds on top of query evaluation.

#ifndef UCLEAN_QUALITY_EVALUATION_H_
#define UCLEAN_QUALITY_EVALUATION_H_

#include "common/status.h"
#include "model/database.h"
#include "quality/tp.h"
#include "query/topk_queries.h"
#include "rank/psr.h"

namespace uclean {

/// Which artifacts EvaluateTopk should produce.
struct EvaluationOptions {
  size_t k = 15;              ///< paper default (Section VI)
  double ptk_threshold = 0.1; ///< paper default PT-k threshold
  bool ukranks = true;
  bool ptk = true;
  bool global_topk = true;
  bool quality = true;
  PsrOptions psr;
};

/// Answers, quality, and the timing breakdown of one shared evaluation.
struct EvaluationReport {
  PsrOutput psr;
  UkRanksAnswer ukranks;
  PtkAnswer ptk;
  GlobalTopkAnswer global_topk;
  TpOutput quality;

  double psr_seconds = 0.0;      ///< the shared rank-probability pass
  double query_seconds = 0.0;    ///< deriving the requested answers
  double quality_seconds = 0.0;  ///< the TP pass (the *extra* cost of quality)
};

/// Runs the shared pipeline on `db`.
Result<EvaluationReport> EvaluateTopk(const ProbabilisticDatabase& db,
                                      const EvaluationOptions& options = {});

}  // namespace uclean

#endif  // UCLEAN_QUALITY_EVALUATION_H_
