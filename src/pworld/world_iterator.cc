#include "pworld/world_iterator.h"

#include <algorithm>

#include "common/check.h"

namespace uclean {

PossibleWorldIterator::PossibleWorldIterator(const ProbabilisticDatabase& db)
    : db_(db),
      odometer_(db.num_xtuples(), 0),
      chosen_(db.num_xtuples(), 0),
      done_(false) {
  for (size_t l = 0; l < db_.num_xtuples(); ++l) {
    const auto& members = db_.xtuple_members(static_cast<XTupleId>(l));
    UCLEAN_CHECK(!members.empty());
    chosen_[l] = members[0];
  }
}

void PossibleWorldIterator::Next() {
  UCLEAN_DCHECK(!done_);
  for (size_t l = 0; l < odometer_.size(); ++l) {
    const auto& members = db_.xtuple_members(static_cast<XTupleId>(l));
    if (++odometer_[l] < members.size()) {
      chosen_[l] = members[odometer_[l]];
      return;
    }
    odometer_[l] = 0;
    chosen_[l] = members[0];
  }
  done_ = true;  // odometer wrapped: all worlds visited
}

double PossibleWorldIterator::probability() const {
  double p = 1.0;
  for (int32_t idx : chosen_) p *= db_.tuple(idx).prob;
  return p;
}

std::vector<int32_t> DeterministicTopK(const std::vector<int32_t>& chosen,
                                       size_t k) {
  std::vector<int32_t> result(chosen);
  if (result.size() > k) {
    std::nth_element(result.begin(), result.begin() + k, result.end());
    result.resize(k);
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace uclean
