#include "pworld/pw_quality.h"

#include <string>

#include "pworld/world_iterator.h"

namespace uclean {

Result<PwOutput> ComputePwQuality(const ProbabilisticDatabase& db, size_t k,
                                  const PwOptions& options) {
  if (k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  const double worlds = db.NumPossibleWorlds();
  if (options.max_worlds > 0 && worlds > options.max_worlds) {
    return Status::ResourceExhausted(
        "database has " + std::to_string(worlds) +
        " possible worlds, above the configured PW limit of " +
        std::to_string(options.max_worlds));
  }
  PwOutput out;
  out.num_worlds = worlds;
  for (PossibleWorldIterator it(db); !it.Done(); it.Next()) {
    PwResult r = DeterministicTopK(it.chosen_rank_indices(), k);
    out.results[r] += it.probability();
  }
  out.quality = PwsQualityFromResults(out.results);
  return out;
}

}  // namespace uclean
