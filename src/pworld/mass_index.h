// Per-x-tuple prefix masses over the global rank order.
//
// Several algorithms need, for an x-tuple tau_l and a rank position,
// "the total existential probability of tau_l's tuples ranked strictly
// higher" (the inner sums of Lemma 1 and Eqs. 6-7). This index answers that
// in O(log |tau_l|) after O(n) construction.

#ifndef UCLEAN_PWORLD_MASS_INDEX_H_
#define UCLEAN_PWORLD_MASS_INDEX_H_

#include <vector>

#include "model/database.h"

namespace uclean {

/// Prefix-mass index over a database's rank order.
class XTupleMassIndex {
 public:
  /// Builds the index for `db`. The database must outlive the index.
  explicit XTupleMassIndex(const ProbabilisticDatabase& db);

  /// Total existential mass of tuples of x-tuple `l` whose rank index is
  /// strictly smaller than `rank_index` (i.e., ranked strictly higher).
  double MassRankedAbove(XTupleId l, int32_t rank_index) const;

  /// Mass of tuples of `l` ranked at or above `rank_index` (the paper's
  /// E_{i,l} of Eq. 7 when rank_index holds a member of tau_l).
  double MassRankedAtOrAbove(XTupleId l, int32_t rank_index) const;

 private:
  const ProbabilisticDatabase& db_;
  // For x-tuple l: prefix_[l][j] = sum of probs of its first j members in
  // rank order (prefix_[l][0] = 0).
  std::vector<std::vector<double>> prefix_;
};

}  // namespace uclean

#endif  // UCLEAN_PWORLD_MASS_INDEX_H_
