// Exhaustive possible-world enumeration (Step 1 of the paper's Figure 1)
// and deterministic top-k evaluation inside a world (Step 2).
//
// A possible world draws exactly one alternative (real or null) from every
// x-tuple; its probability is the product of the drawn alternatives'
// existential probabilities. Enumeration is an odometer over the per-x-tuple
// alternative lists. The world count is exponential, so this machinery only
// backs the PW baseline, brute-force test oracles, and tiny examples.

#ifndef UCLEAN_PWORLD_WORLD_ITERATOR_H_
#define UCLEAN_PWORLD_WORLD_ITERATOR_H_

#include <vector>

#include "model/database.h"

namespace uclean {

/// Iterates over every possible world of a database.
///
///     for (PossibleWorldIterator it(db); !it.Done(); it.Next()) {
///       double p = it.probability();
///       const std::vector<int32_t>& chosen = it.chosen_rank_indices();
///     }
class PossibleWorldIterator {
 public:
  /// Positions the iterator at the first world. The database must outlive
  /// the iterator.
  explicit PossibleWorldIterator(const ProbabilisticDatabase& db);

  /// True when every world has been visited.
  bool Done() const { return done_; }

  /// Advances to the next world (odometer increment).
  void Next();

  /// The rank index drawn from each x-tuple in the current world
  /// (element l corresponds to x-tuple l).
  const std::vector<int32_t>& chosen_rank_indices() const { return chosen_; }

  /// Probability of the current world (product of drawn probabilities).
  double probability() const;

 private:
  const ProbabilisticDatabase& db_;
  std::vector<size_t> odometer_;   // per-x-tuple alternative cursor
  std::vector<int32_t> chosen_;    // chosen_[l] = rank index drawn from l
  bool done_;
};

/// Deterministic top-k inside a world: the k highest-ranked of the drawn
/// tuples, as ascending rank indices (best first). Returns fewer than k
/// entries only when the world holds fewer than k tuples (m < k).
std::vector<int32_t> DeterministicTopK(const std::vector<int32_t>& chosen,
                                       size_t k);

}  // namespace uclean

#endif  // UCLEAN_PWORLD_WORLD_ITERATOR_H_
