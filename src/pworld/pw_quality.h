// PW: the naive PWS-quality baseline (Section III-C).
//
// Expands every possible world, evaluates the deterministic top-k query in
// each, aggregates identical pw-results, and applies Definition 4. Runtime
// is exponential in the number of x-tuples; the paper measures 36 minutes at
// just 10 x-tuples. PW exists as the ground-truth oracle that PWR and TP are
// validated against (the paper's own 1e-8 cross-check) and as the slowest
// series of Figure 4(d).

#ifndef UCLEAN_PWORLD_PW_QUALITY_H_
#define UCLEAN_PWORLD_PW_QUALITY_H_

#include "common/status.h"
#include "model/database.h"
#include "pworld/pw_result.h"

namespace uclean {

/// Tuning knobs for the PW baseline.
struct PwOptions {
  /// Refuse to run when the world count exceeds this bound (the run would
  /// not terminate in practical time). 0 disables the guard.
  double max_worlds = 1e8;
};

/// Output of the PW baseline.
struct PwOutput {
  /// PWS-quality score S(D,Q) (Definition 4).
  double quality = 0.0;
  /// The full pw-result distribution (Figures 2-3 of the paper).
  PwResultSet results;
  /// Number of possible worlds expanded.
  double num_worlds = 0.0;
};

/// Runs the PW baseline for a top-k query on `db`.
///
/// Returns ResourceExhausted without running when the database's world count
/// exceeds `options.max_worlds`.
Result<PwOutput> ComputePwQuality(const ProbabilisticDatabase& db, size_t k,
                                  const PwOptions& options = {});

}  // namespace uclean

#endif  // UCLEAN_PWORLD_PW_QUALITY_H_
