// pw-results (Definition 1) and their probability distribution.
//
// A pw-result is the ordered top-k answer some possible world produces:
// here, ascending rank indices (best rank first). The distribution over
// pw-results is what the PWS-quality metric takes the entropy of
// (Definition 4), and Lemma 1 gives each pw-result's probability in closed
// form without touching possible worlds.

#ifndef UCLEAN_PWORLD_PW_RESULT_H_
#define UCLEAN_PWORLD_PW_RESULT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/database.h"
#include "pworld/mass_index.h"

namespace uclean {

/// One pw-result: rank indices of the returned tuples, ascending (the list
/// is ordered by the ranking function as Definition 1 requires).
using PwResult = std::vector<int32_t>;

/// Hash functor so pw-results can key an unordered_map.
struct PwResultHash {
  size_t operator()(const PwResult& r) const {
    // FNV-1a over the index words.
    uint64_t h = 1469598103934665603ull;
    for (int32_t v : r) {
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(v));
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

/// The distribution R(D,Q): pw-result -> probability.
using PwResultSet = std::unordered_map<PwResult, double, PwResultHash>;

/// PWS-quality of a pw-result distribution (Definition 4):
/// sum over results of Pr(r) * log2 Pr(r). Always <= 0; 0 iff the
/// distribution is a point mass.
double PwsQualityFromResults(const PwResultSet& results);

/// Closed-form probability of one pw-result (Lemma 1): the product of the
/// result members' existential probabilities times, for every unrepresented
/// x-tuple, the probability that it contributes nothing ranked above the
/// result's last tuple.
double PwResultProbability(const ProbabilisticDatabase& db,
                           const XTupleMassIndex& mass_index,
                           const PwResult& result);

/// Pretty-prints a pw-result as "(t1, t2, ...)" using tuple labels when
/// present, ids otherwise.
std::string PwResultToString(const ProbabilisticDatabase& db,
                             const PwResult& result);

}  // namespace uclean

#endif  // UCLEAN_PWORLD_PW_RESULT_H_
