#include "pworld/mass_index.h"

#include <algorithm>

namespace uclean {

XTupleMassIndex::XTupleMassIndex(const ProbabilisticDatabase& db) : db_(db) {
  prefix_.resize(db.num_xtuples());
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    const auto& members = db.xtuple_members(static_cast<XTupleId>(l));
    prefix_[l].resize(members.size() + 1);
    prefix_[l][0] = 0.0;
    for (size_t j = 0; j < members.size(); ++j) {
      prefix_[l][j + 1] = prefix_[l][j] + db.tuple(members[j]).prob;
    }
  }
}

double XTupleMassIndex::MassRankedAbove(XTupleId l, int32_t rank_index) const {
  const auto& members = db_.xtuple_members(l);
  // Members are stored in ascending rank-index order; count those < rank_index.
  size_t j = std::lower_bound(members.begin(), members.end(), rank_index) -
             members.begin();
  return prefix_[l][j];
}

double XTupleMassIndex::MassRankedAtOrAbove(XTupleId l,
                                            int32_t rank_index) const {
  const auto& members = db_.xtuple_members(l);
  size_t j = std::upper_bound(members.begin(), members.end(), rank_index) -
             members.begin();
  return prefix_[l][j];
}

}  // namespace uclean
