#include "pworld/pw_result.h"

#include <sstream>
#include <unordered_set>

#include "common/entropy_math.h"

namespace uclean {

double PwsQualityFromResults(const PwResultSet& results) {
  double quality = 0.0;
  for (const auto& [result, prob] : results) {
    quality += YLog2(prob);
  }
  return quality;
}

double PwResultProbability(const ProbabilisticDatabase& db,
                           const XTupleMassIndex& mass_index,
                           const PwResult& result) {
  if (result.empty()) return 1.0;  // degenerate: no tuples at all
  double p = 1.0;
  std::unordered_set<XTupleId> represented;
  represented.reserve(result.size() * 2);
  for (int32_t idx : result) {
    p *= db.tuple(idx).prob;
    represented.insert(db.tuple(idx).xtuple);
  }
  const int32_t last = result.back();
  // Every x-tuple with no member in the result must contribute nothing
  // ranked above result.back(). X-tuples whose best member already ranks
  // below `last` contribute factor 1; only x-tuples with a member ranked
  // above `last` matter, and all such members have rank index < last, so it
  // suffices to scan rank positions 0..last-1 for distinct x-tuples.
  std::unordered_set<XTupleId> handled;
  for (int32_t i = 0; i < last; ++i) {
    XTupleId l = db.tuple(i).xtuple;
    if (represented.count(l) || !handled.insert(l).second) continue;
    p *= 1.0 - mass_index.MassRankedAbove(l, last);
  }
  return p;
}

std::string PwResultToString(const ProbabilisticDatabase& db,
                             const PwResult& result) {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < result.size(); ++i) {
    if (i > 0) os << ", ";
    const Tuple& t = db.tuple(result[i]);
    if (t.is_null) {
      os << "null[" << t.xtuple << "]";
    } else if (!t.label.empty()) {
      os << t.label;
    } else {
      os << "t" << t.id;
    }
  }
  os << ")";
  return os.str();
}

}  // namespace uclean
