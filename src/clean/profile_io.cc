#include "clean/profile_io.h"

#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/strings.h"

namespace uclean {

namespace {
constexpr char kHeader[] = "xtuple,cost,sc_prob";
}  // namespace

Status WriteProfileCsv(const CleaningProfile& profile, std::ostream* os) {
  if (profile.costs.size() != profile.sc_probs.size()) {
    return Status::InvalidArgument("profile vectors disagree on size");
  }
  *os << kHeader << "\n";
  for (size_t l = 0; l < profile.costs.size(); ++l) {
    *os << l << ',' << profile.costs[l] << ','
        << FormatDouble(profile.sc_probs[l]) << "\n";
  }
  if (!*os) return Status::IOError("write failed");
  return Status::OK();
}

Status WriteProfileCsvFile(const CleaningProfile& profile,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  return WriteProfileCsv(profile, &out);
}

Result<CleaningProfile> ReadProfileCsv(std::istream* is) {
  std::string line;
  bool saw_header = false;
  size_t line_no = 0;
  struct Row {
    int64_t cost;
    double sc;
  };
  std::vector<Row> rows;
  std::vector<bool> seen;
  while (std::getline(*is, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    if (!saw_header) {
      if (stripped != kHeader) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": expected header '" + kHeader + "'");
      }
      saw_header = true;
      continue;
    }
    std::vector<std::string> fields = SplitString(stripped, ',');
    if (fields.size() != 3) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected 3 fields");
    }
    Result<int64_t> xtuple = ParseInt(fields[0]);
    Result<int64_t> cost = ParseInt(fields[1]);
    Result<double> sc = ParseDouble(fields[2]);
    for (const Status& s : {xtuple.status(), cost.status(), sc.status()}) {
      if (!s.ok()) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": " + s.message());
      }
    }
    if (*xtuple < 0) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": negative x-tuple id");
    }
    const size_t l = static_cast<size_t>(*xtuple);
    if (l >= rows.size()) {
      rows.resize(l + 1, Row{0, 0.0});
      seen.resize(l + 1, false);
    }
    if (seen[l]) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": duplicate x-tuple " +
                                     std::to_string(l));
    }
    seen[l] = true;
    rows[l] = Row{*cost, *sc};
  }
  if (!saw_header) return Status::InvalidArgument("empty CSV: no header");
  for (size_t l = 0; l < seen.size(); ++l) {
    if (!seen[l]) {
      return Status::InvalidArgument("missing row for x-tuple " +
                                     std::to_string(l));
    }
  }
  CleaningProfile profile;
  for (const Row& row : rows) {
    profile.costs.push_back(row.cost);
    profile.sc_probs.push_back(row.sc);
  }
  UCLEAN_RETURN_IF_ERROR(profile.Validate(profile.costs.size()));
  return profile;
}

Result<CleaningProfile> ReadProfileCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  return ReadProfileCsv(&in);
}

}  // namespace uclean
