#include "clean/pipeline.h"

#include <string>
#include <utility>
#include <vector>

#include "clean/fault.h"
#include "clean/problem.h"

namespace uclean {

namespace {

/// Per-session probe options: the shared knobs plus this session's test
/// jitter.
ProbeOptions SessionProbeOptions(const PipelineOptions& options, size_t s) {
  ProbeOptions probe = options.probe;
  if (s < options.session_latency_jitter.size()) {
    probe.latency += options.session_latency_jitter[s];
  }
  return probe;
}

}  // namespace

Result<PipelineReport> RunPipelinedCleaning(
    SessionPool* pool, const std::vector<SessionPool::SessionId>& ids,
    const CleaningProfile& profile, int64_t budget, std::vector<Rng>* rngs,
    const PipelineOptions& options) {
  if (pool == nullptr) {
    return Status::InvalidArgument("RunPipelinedCleaning requires a pool");
  }
  if (rngs == nullptr || rngs->size() != ids.size()) {
    return Status::InvalidArgument(
        "RunPipelinedCleaning requires one Rng per session");
  }
  for (SessionPool::SessionId id : ids) {
    if (!pool->is_open(id)) {
      return Status::InvalidArgument("session " + std::to_string(id) +
                                     " is not open");
    }
    if (pool->dirty(id)) {
      return Status::FailedPrecondition(
          "session " + std::to_string(id) +
          " is dirty; Refresh before starting the pipeline");
    }
  }

  const size_t n = ids.size();
  ThreadPool* exec = options.overlap ? pool->exec().pool.get() : nullptr;

  // Per-session fault injectors, seeded `fault.seed + s` like the probe
  // Rngs. Each one is consumed only by its own session's draw loop (the
  // in-flight contract of clean/agent.h), so batches stay race-free and
  // serial and pipelined campaigns draw identical fault streams. A
  // caller passing PipelineOptions::injectors substitutes its own
  // identically-constructed set (so it can read their state after the
  // call -- the snapshot store's mid-campaign save).
  std::vector<FaultInjector> owned_injectors;
  std::vector<FaultInjector>* injectors = options.injectors;
  if (options.fault.enabled) {
    UCLEAN_RETURN_IF_ERROR(options.fault.Validate());
    if (injectors != nullptr) {
      if (injectors->size() != n) {
        return Status::InvalidArgument(
            "PipelineOptions::injectors must hold one injector per session");
      }
    } else {
      owned_injectors.reserve(n);
      for (size_t s = 0; s < n; ++s) {
        FaultOptions session_fault = options.fault;
        session_fault.seed = options.fault.seed + s;
        owned_injectors.emplace_back(session_fault);
      }
      injectors = &owned_injectors;
    }
  }

  PipelineReport report;
  report.sessions.resize(n);
  std::vector<int64_t> remaining(n, budget);
  if (!options.spent_so_far.empty()) {
    if (options.spent_so_far.size() != n) {
      return Status::InvalidArgument(
          "PipelineOptions::spent_so_far must hold one entry per session");
    }
    for (size_t s = 0; s < n; ++s) remaining[s] -= options.spent_so_far[s];
  }
  std::vector<bool> done(n, false);

  // One slot per session and round: the in-flight future (overlap mode)
  // or the already-drawn result (serial mode). Both modes run the same
  // plan / draw / commit / refresh sequence -- overlap only moves WHERE
  // the draw loop runs, never what it computes.
  std::vector<ProbeBatch> batches(n);
  std::vector<Result<ProbeDraws>> inline_draws(
      n, Result<ProbeDraws>(Status::Internal("no draw this round")));
  std::vector<bool> in_flight(n, false);

  for (size_t round = 0; round < options.max_rounds; ++round) {
    // ---- plan + submit: batches start drawing while later sessions plan.
    bool submitted_any = false;
    bool waiting_any = false;
    for (size_t s = 0; s < n; ++s) {
      in_flight[s] = false;
      if (done[s] || remaining[s] <= 0) continue;
      FaultInjector* injector =
          options.fault.enabled ? &(*injectors)[s] : nullptr;
      Result<CleaningProblem> problem = MakeCleaningProblem(
          pool->tps(ids[s]), options.plan_weights, profile, remaining[s]);
      if (!problem.ok()) return problem.status();
      // Degradation: mask sources this session's open breakers block, so
      // the plan reinvests its budget in members that can still answer.
      MaskUnavailableSources(injector, &*problem);
      Result<CleaningPlan> plan = RunPlanner(options.planner, *problem,
                                             &(*rngs)[s], options.dp_options);
      if (!plan.ok()) return plan.status();
      if (plan->total_cost == 0 || plan->expected_improvement <= 0.0) {
        // Nothing probeable. Breakers cooling down are a temporary
        // condition: wait one cooldown out (simulated) and re-plan next
        // round; otherwise this session's campaign is done.
        if (injector != nullptr && injector->num_open_sources() > 0) {
          injector->AdvanceClock(options.fault.breaker.cooldown_us);
          waiting_any = true;
        } else {
          done[s] = true;
        }
        continue;
      }
      ProbeOptions probe = SessionProbeOptions(options, s);
      probe.fault = injector;
      if (options.overlap) {
        Result<ProbeBatch> batch =
            SubmitProbes(*pool, ids[s], profile, std::move(plan->probes),
                         &(*rngs)[s], probe, exec);
        if (!batch.ok()) return batch.status();
        batches[s] = std::move(batch).value();
      } else {
        inline_draws[s] = DrawProbes(pool->overlay(ids[s]), profile,
                                     plan->probes, &(*rngs)[s], probe);
      }
      in_flight[s] = true;
      submitted_any = true;
    }
    if (!submitted_any) {
      if (waiting_any) continue;  // breakers cooling down; re-plan
      break;
    }
    report.rounds = round + 1;

    // ---- wait + commit, fixed session order: completion order of the
    // batches never matters, which is the determinism keystone.
    bool progressed = false;
    for (size_t s = 0; s < n; ++s) {
      if (!in_flight[s]) continue;
      Result<ProbeDraws> draws = options.overlap
                                     ? batches[s].Take()
                                     : std::move(inline_draws[s]);
      if (!draws.ok()) return draws.status();
      UCLEAN_RETURN_IF_ERROR(CommitProbeDraws(pool, ids[s], *draws));
      PipelineSessionReport& session = report.sessions[s];
      session.spent += draws->report.spent;
      session.leftover += draws->report.leftover;
      session.successes += draws->report.successes;
      session.log.insert(session.log.end(), draws->report.log.begin(),
                         draws->report.log.end());
      session.faults += draws->report.faults;
      // A session that spent nothing and had nothing blocked by faults is
      // finished; a fault-blocked one keeps its unspent budget and stays
      // in the campaign (its sources may recover).
      if (draws->report.spent == 0 &&
          draws->report.faults.BlockedProbes() == 0) {
        done[s] = true;
        continue;
      }
      if (draws->report.spent > 0) {
        remaining[s] -= draws->report.spent;
        ++session.rounds;
      }
      progressed = true;
    }

    // ---- one concurrent RefreshAll commits the round's state.
    UCLEAN_RETURN_IF_ERROR(pool->RefreshAll());
    if (!progressed) break;
  }

  for (size_t s = 0; s < n; ++s) {
    PipelineSessionReport& session = report.sessions[s];
    session.final_quality.clear();
    for (size_t rung = 0; rung < pool->num_rungs(); ++rung) {
      session.final_quality.push_back(pool->quality(ids[s], rung));
    }
  }
  return report;
}

}  // namespace uclean
