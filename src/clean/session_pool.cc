#include "clean/session_pool.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

namespace uclean {

Result<SessionPool> SessionPool::Create(ProbabilisticDatabase base, size_t k,
                                        const Options& options) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  KLadder ladder;
  ladder.ks = {k};
  return Create(std::move(base), ladder, options);
}

Result<SessionPool> SessionPool::Create(ProbabilisticDatabase base,
                                        const KLadder& ladder,
                                        const Options& options) {
  // Overlays key their copy-on-write state by rank index, so the shared
  // base must not carry garbage slots that a later compaction would
  // renumber under them.
  base.CompactTombstones();

  SessionPool pool;
  pool.options_ = options;
  // Resolve the executor ONCE: the engine's sharded scans, every TP
  // pass and RefreshAll's session fan-out all share this pool.
  Result<ExecOptions> exec = ResolveExec(options.exec);
  if (!exec.ok()) return exec.status();
  pool.options_.exec = std::move(exec).value();
  pool.base_ = std::make_unique<ProbabilisticDatabase>(std::move(base));

  ScanRequest request;
  request.ladder = ladder;
  request.psr = options.psr;
  request.exec = pool.options_.exec;
  request.checkpoint_interval = options.checkpoint_interval;
  Result<PsrEngine> engine = PsrEngine::Create(*pool.base_, request);
  if (!engine.ok()) return engine.status();
  pool.engine_ = std::move(engine).value();

  Result<std::vector<TpOutput>> tps = ComputeTpQualityLadder(
      *pool.base_, pool.engine_.outputs(), pool.options_.exec);
  if (!tps.ok()) return tps.status();
  pool.base_tps_ = std::move(tps).value();
  return pool;
}

SessionPool::SessionId SessionPool::OpenSession() {
  ScopedSerialCall guard(gate_);
  SessionId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    id = sessions_.size();
    sessions_.emplace_back();
  }
  Session& session = sessions_[id];
  session.open = true;
  session.overlay = DatabaseOverlay(base_.get());
  session.scan = engine_.ForkSession();
  // Fork the base TP ladder the same way the engine forks its outputs:
  // omega is identically zero at and past each rung's scan_end, so only
  // the live prefix is copied onto a zeroed buffer.
  session.tps.resize(base_tps_.size());
  for (size_t j = 0; j < base_tps_.size(); ++j) {
    const TpOutput& src = base_tps_[j];
    TpOutput& dst = session.tps[j];
    dst.quality = src.quality;
    dst.scan_end = src.scan_end;
    dst.omega.assign(src.omega.size(), 0.0);
    std::copy(src.omega.begin(), src.omega.begin() + src.scan_end,
              dst.omega.begin());
    dst.xtuple_gain = src.xtuple_gain;
    dst.xtuple_topk_mass = src.xtuple_topk_mass;
  }
  session.pending_replay_begin = kNoPending;
  ++num_open_;
  return id;
}

Status SessionPool::CheckOpen(SessionId id) const {
  if (id >= sessions_.size() || !sessions_[id].open) {
    return Status::InvalidArgument("session " + std::to_string(id) +
                                   " is not open");
  }
  return Status::OK();
}

Status SessionPool::ApplyCleanOutcome(SessionId id, XTupleId xtuple,
                                      TupleId resolved_id) {
  ScopedSerialCall guard(gate_);
  UCLEAN_RETURN_IF_ERROR(CheckOpen(id));
  Session& session = sessions_[id];
  Result<ProbabilisticDatabase::CleanOutcomeDelta> delta =
      session.overlay.ApplyCleanOutcome(xtuple, resolved_id);
  if (!delta.ok()) return delta.status();
  if (delta->first_changed_rank >= base_->num_tuples()) {
    return Status::OK();  // outcome was already materialized
  }
  const size_t begin = delta->first_changed_rank;
  if (session.pending_replay_begin == kNoPending ||
      begin < session.pending_replay_begin) {
    session.pending_replay_begin = begin;
  }
  return Status::OK();
}

Status SessionPool::RefreshSession(Session* session) {
  if (session->pending_replay_begin == kNoPending) return Status::OK();
  const size_t replay_begin = session->pending_replay_begin;
  UCLEAN_RETURN_IF_ERROR(
      engine_.ReplaySession(session->overlay, replay_begin, &session->scan));
  UCLEAN_RETURN_IF_ERROR(UpdateTpQualityLadder(
      session->overlay, session->scan.outputs(), replay_begin, &session->tps,
      options_.exec));
  session->pending_replay_begin = kNoPending;
  return Status::OK();
}

Status SessionPool::Refresh(SessionId id) {
  ScopedSerialCall guard(gate_);
  UCLEAN_RETURN_IF_ERROR(CheckOpen(id));
  return RefreshSession(&sessions_[id]);
}

Status SessionPool::RefreshAll() {
  ScopedSerialCall guard(gate_);
  std::vector<Session*> pending;
  for (Session& session : sessions_) {
    if (session.open && session.pending_replay_begin != kNoPending) {
      pending.push_back(&session);
    }
  }
  // Fan whole sessions across the pool: each task reads only the shared
  // engine (immutable after Create) and writes only its own session, so
  // per-session results are bitwise what Refresh(id) would produce. A
  // session's own replay degrades to its sequential path on the worker
  // (nested parallelism runs inline), which is exactly the right shape:
  // the parallelism budget is spent across sessions.
  std::vector<Status> statuses(pending.size(), Status::OK());
  ExecParallelFor(options_.exec, pending.size(), [&](size_t i) {
    // Workers run inside the window this call opened; the caller blocks
    // in ExecParallelFor until every task is done, so the gate stays
    // held for the whole fan-out.
    gate_.AssertHeld();
    statuses[i] = RefreshSession(pending[i]);
  });
  for (Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return Status::OK();
}

Result<ProbabilisticDatabase> SessionPool::CloseAndMerge(SessionId id) {
  ProbabilisticDatabase merged;
  {
    // Materialization reads the session's overlay, so it must sit
    // inside the guarded window; scoped because Close takes the
    // (non-recursive) guard itself.
    ScopedSerialCall guard(gate_);
    UCLEAN_RETURN_IF_ERROR(CheckOpen(id));
    merged = sessions_[id].overlay.MaterializeCleaned();
  }
  UCLEAN_RETURN_IF_ERROR(Close(id));
  return merged;
}

Status SessionPool::Close(SessionId id) {
  ScopedSerialCall guard(gate_);
  UCLEAN_RETURN_IF_ERROR(CheckOpen(id));
  // Free the slot's heavy state eagerly; the slot is reused by the next
  // OpenSession.
  sessions_[id] = Session();
  free_slots_.push_back(id);
  --num_open_;
  return Status::OK();
}

}  // namespace uclean
