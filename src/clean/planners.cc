#include "clean/planners.h"

namespace uclean {

const char* PlannerKindName(PlannerKind kind) {
  switch (kind) {
    case PlannerKind::kDp:
      return "DP";
    case PlannerKind::kGreedy:
      return "Greedy";
    case PlannerKind::kRandP:
      return "RandP";
    case PlannerKind::kRandU:
      return "RandU";
  }
  return "Unknown";
}

Result<CleaningPlan> RunPlanner(PlannerKind kind,
                                const CleaningProblem& problem, Rng* rng,
                                const DpOptions& dp_options) {
  switch (kind) {
    case PlannerKind::kDp:
      return PlanDp(problem, dp_options);
    case PlannerKind::kGreedy:
      return PlanGreedy(problem);
    case PlannerKind::kRandP:
      return PlanRandP(problem, rng);
    case PlannerKind::kRandU:
      return PlanRandU(problem, rng);
  }
  return Status::InvalidArgument("unknown planner kind");
}

}  // namespace uclean
