// Fault-tolerant probe execution: deterministic fault injection, retry
// policy with seeded exponential backoff, simulated deadlines, and
// per-source circuit breakers for the cleaning agent's probe loop.
//
// The paper's cleaning agent probes external sources (sensors, crowd
// workers, curated feeds); no real source answers every time. This module
// models the three failure shapes such sources exhibit:
//
//  * TRANSIENT: the attempt errors quickly; an immediate or backed-off
//    retry usually succeeds.
//  * TIMEOUT: the attempt hangs until the per-probe deadline and returns
//    nothing; retries may succeed but each one is expensive in time.
//  * SOURCE DOWN: the source is unreachable for good (drawn once per
//    source); every attempt fails until the campaign routes around it.
//
// DETERMINISM KEYSTONE. Faults are drawn from a DEDICATED per-session
// fault Rng stream, never from the probe Rng: the probe value stream
// (success draws + revealed outcomes) is untouched by any fault draw, so
//
//  * with an all-zero FaultProfile every code path is bitwise identical
//    to fault-free execution (zero-probability draws never consume the
//    engine -- Rng::Bernoulli short-circuits), and
//  * for any fail rate, serial, pooled and pipelined execution with equal
//    seeds commit identical clean outcomes: the injector is per-session
//    state consumed in plan order, exactly like the session's probe Rng
//    (tests/pipeline_test.cc extends the bitwise-equivalence suite to the
//    faulted regime).
//
// Deadlines run on the injector's SIMULATED clock (microseconds advanced
// by attempt latencies, timeouts and backoffs), never on the wall clock:
// a probe's fate must not depend on scheduler noise, or the pipelined and
// serial loops would commit different outcomes.
//
// Threading: a FaultInjector is per-session mutable state with the same
// contract as the session's Rng -- one plan/draw at a time touches it; for
// pooled sessions the submission rules of clean/agent.h apply verbatim
// (the caller must not touch a session's injector while its batch is in
// flight). The contract is enforced as a common/serial_gate.h capability
// on the mutating draw/clock/breaker surface: overlapping calls abort in
// debug builds, reentrant entry fails the Clang -Wthread-safety build.

#ifndef UCLEAN_CLEAN_FAULT_H_
#define UCLEAN_CLEAN_FAULT_H_

#include <cstdint>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/serial_gate.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "model/tuple.h"

namespace uclean {

struct CleaningProblem;

/// What can happen to one probe attempt before its result is known.
enum class FaultKind {
  kNone = 0,        ///< the attempt completed; the probe value stream runs
  kTransient = 1,   ///< fast error; retry after backoff
  kTimeout = 2,     ///< attempt burned the per-probe deadline, no answer
  kSourceDown = 3,  ///< the source is unreachable (permanent this campaign)
};

/// Failure-shape configuration of the simulated sources.
struct FaultProfile {
  /// Per-attempt probability that the attempt faults (before the probe
  /// value stream is consulted). 0 disables transient faults and, because
  /// zero-probability draws never consume the fault engine, keeps the
  /// injector entirely passive.
  double fail_rate = 0.0;

  /// Of the faulted attempts, the fraction that are timeouts (burning the
  /// per-probe deadline) instead of fast transient errors.
  double timeout_share = 0.5;

  /// Per-source probability of being DOWN, drawn lazily once per source
  /// from the fault stream on first contact. A down source fails every
  /// attempt; only the circuit breaker stops the bleeding.
  double down_rate = 0.0;

  Status Validate() const;
};

/// Retry/backoff/deadline knobs of the probe loop.
struct RetryPolicy {
  /// Total tries per planned probe (1 = no retry). Attempts past the
  /// first are preceded by exponential backoff with seeded jitter.
  int64_t max_attempts = 3;

  /// Base backoff before retry r (doubling per retry: base << (r-1)),
  /// simulated microseconds.
  int64_t backoff_us = 100;

  /// Multiplicative jitter amplitude in [0, 1): each backoff is scaled by
  /// a factor drawn uniformly from [1 - jitter, 1 + jitter) out of the
  /// fault stream (seeded -- two runs draw identical jitter).
  double jitter = 0.1;

  /// Per-probe deadline (simulated us) across all of a probe's attempts
  /// and backoffs; a timeout fault burns exactly this much. 0 = none.
  int64_t probe_deadline_us = 0;

  /// Per-plan deadline (simulated us): once a plan execution's simulated
  /// clock passes it, remaining probes are abandoned (reported, unspent).
  /// 0 = none.
  int64_t plan_deadline_us = 0;

  Status Validate() const;
};

/// Circuit-breaker knobs, per source (x-tuple).
struct BreakerOptions {
  /// Consecutive failed probes (retries exhausted, timeouts, down) that
  /// trip the breaker open.
  int64_t threshold = 5;

  /// Simulated time an open breaker blocks its source before one
  /// half-open trial probe is admitted.
  int64_t cooldown_us = 20000;

  Status Validate() const;
};

/// Everything the loops need to stand up fault handling; `enabled = false`
/// (the default) keeps every code path fault-free and bitwise identical
/// to the pre-fault library.
struct FaultOptions {
  bool enabled = false;
  FaultProfile profile;
  RetryPolicy retry;
  BreakerOptions breaker;
  /// Seed of the dedicated fault stream. Loops over many sessions seed
  /// session s with `seed + s`, mirroring the probe Rng convention.
  uint64_t seed = 0;

  Status Validate() const;
};

/// Fault bookkeeping of one plan execution (or an aggregate of several);
/// every counter is deterministic under the determinism keystone.
struct FaultStats {
  int64_t transient = 0;      ///< attempts that failed fast
  int64_t timeouts = 0;       ///< attempts that burned the probe deadline
  int64_t source_down = 0;    ///< attempts against unreachable sources
  int64_t retries = 0;        ///< extra attempts after a faulted one
  int64_t failed_probes = 0;  ///< probes with no answer after all retries
  int64_t breaker_skips = 0;  ///< planned probes skipped: breaker open
  int64_t deadline_skips = 0; ///< planned probes abandoned: plan deadline
  /// Planned budget the failures above left unspent -- what the adaptive
  /// re-planner reinvests next round.
  int64_t budget_unspent = 0;

  /// Total faulted attempts.
  int64_t FaultedAttempts() const {
    return transient + timeouts + source_down;
  }
  /// Planned probes that never produced an answer (failed, skipped or
  /// abandoned): nonzero means the plan execution was partial and the
  /// loop should keep going even when nothing was spent.
  int64_t BlockedProbes() const {
    return failed_probes + breaker_skips + deadline_skips;
  }

  FaultStats& operator+=(const FaultStats& other);

  friend bool operator==(const FaultStats& a, const FaultStats& b) {
    return a.transient == b.transient && a.timeouts == b.timeouts &&
           a.source_down == b.source_down && a.retries == b.retries &&
           a.failed_probes == b.failed_probes &&
           a.breaker_skips == b.breaker_skips &&
           a.deadline_skips == b.deadline_skips &&
           a.budget_unspent == b.budget_unspent;
  }
};

/// The complete portable state of a FaultInjector mid-campaign, for the
/// snapshot store (store/snapshot.h): the dedicated fault stream, the
/// simulated clock and every breaker/down entry. Map entries are listed
/// sorted by source so equal injectors always save equal states (the
/// injector's own behavior never depends on map iteration order: it only
/// looks sources up and counts open entries). Restoring a SaveState
/// capture into an injector built from the SAME FaultOptions resumes the
/// exact campaign: every later draw, backoff and breaker decision is
/// bitwise the one the saved injector would have made.
struct FaultInjectorState {
  std::string rng_state;  ///< Rng::SaveState of the dedicated stream
  int64_t now_us = 0;
  bool ever_opened = false;

  struct BreakerEntry {
    XTupleId source = 0;
    uint8_t state = 0;  ///< BreakerState underlying value (0, 1, 2)
    int64_t consecutive_failures = 0;
    int64_t open_until_us = 0;
  };
  std::vector<BreakerEntry> breakers;  ///< sorted by source

  struct DownEntry {
    XTupleId source = 0;
    bool down = false;
  };
  std::vector<DownEntry> down;  ///< sorted by source
};

/// Per-source circuit-breaker state machine: kClosed admits probes and
/// counts consecutive failures; `threshold` failures trip it to kOpen,
/// which blocks the source for `cooldown_us` simulated time; the first
/// admission afterwards runs as a kHalfOpen trial -- success closes the
/// breaker, failure reopens it for another cooldown.
enum class BreakerState { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

/// Deterministic, seeded fault source + per-source breaker registry +
/// simulated clock for one session's probe executions. Mutating members
/// follow the session-Rng threading contract (header note).
class FaultInjector {
 public:
  /// `options.Validate()` must hold; UCLEAN_CHECKed.
  explicit FaultInjector(const FaultOptions& options);

  /// Draws the fate of one attempt against `source` from the dedicated
  /// fault stream. All-zero profiles never consume the engine.
  FaultKind DrawAttemptFault(XTupleId source) UCLEAN_EXCLUDES(gate_);

  /// True when `source` may be probed now: breaker closed, in a half-open
  /// trial, or open with the cooldown elapsed. Pure.
  bool SourceAvailable(XTupleId source) const;

  /// Gate of the probe loop: like SourceAvailable, but an open breaker
  /// whose cooldown elapsed transitions to kHalfOpen (the trial starts).
  bool AdmitProbe(XTupleId source) UCLEAN_EXCLUDES(gate_);

  /// Reports one probe's final fate (after retries) to `source`'s
  /// breaker: completed probes close it, failures count toward the
  /// threshold and reopen half-open trials.
  void RecordProbeOutcome(XTupleId source, bool completed)
      UCLEAN_EXCLUDES(gate_);

  /// Backoff before retry `retry_index` (1-based), with seeded jitter
  /// drawn from the fault stream. Also advances the simulated clock.
  int64_t BackoffWithJitter(int64_t retry_index) UCLEAN_EXCLUDES(gate_);

  /// Simulated clock (microseconds since construction).
  int64_t now_us() const { return now_us_; }
  void AdvanceClock(int64_t us) UCLEAN_EXCLUDES(gate_) {
    ScopedSerialCall guard(gate_);
    now_us_ += us;
  }

  BreakerState breaker_state(XTupleId source) const;
  /// Sources currently blocked (breaker open, cooldown pending).
  size_t num_open_sources() const;
  /// True once ANY breaker has ever tripped open -- the fast-path guard
  /// that keeps planner masking free for fault-free campaigns.
  bool ever_opened() const { return ever_opened_; }

  const RetryPolicy& retry() const { return retry_; }
  const FaultProfile& profile() const { return profile_; }

  /// Engine state of the dedicated fault stream -- the strictest
  /// fingerprint for the determinism tests (equal engines mean two runs
  /// drew exactly the same fault randomness).
  const std::mt19937_64& engine() const { return rng_.engine(); }

  /// Captures the injector's complete mid-campaign state (header note on
  /// FaultInjectorState); pair with an injector built from the same
  /// FaultOptions to resume bitwise.
  FaultInjectorState SaveState() const;

  /// Restores a SaveState capture. Fails with DataLoss when the state is
  /// malformed (invalid rng encoding, out-of-range breaker state); the
  /// injector is then unusable until a successful restore.
  Status RestoreState(const FaultInjectorState& state)
      UCLEAN_EXCLUDES(gate_);

 private:
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    int64_t consecutive_failures = 0;
    int64_t open_until_us = 0;
  };

  FaultProfile profile_;
  RetryPolicy retry_;
  BreakerOptions breaker_options_;
  mutable Rng rng_;
  int64_t now_us_ = 0;
  bool ever_opened_ = false;
  std::unordered_map<XTupleId, Breaker> breakers_;
  std::unordered_map<XTupleId, bool> down_;

  // Serialized-caller capability over the mutating draw/clock/breaker
  // surface (see the header comment). Const readers stay outside it:
  // they are only legal when nothing is mutating anyway.
  mutable SerialGate gate_;
};

/// Planner-side degradation: zeroes the gain of every source `fault`
/// currently blocks (open breaker, cooling down), so the re-planner
/// reinvests the budget around unavailable members instead of burning it
/// on probes the loop would skip anyway. No-op for a null `fault`.
void MaskUnavailableSources(const FaultInjector* fault,
                            CleaningProblem* problem);

}  // namespace uclean

#endif  // UCLEAN_CLEAN_FAULT_H_
