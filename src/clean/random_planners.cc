// RandU and RandP (Sections V-D.2 / V-D.3): draw x-tuples from the
// candidate set Z with replacement -- uniformly, or weighted by top-k
// probability mass -- spending one probe per draw until the budget cannot
// afford any further x-tuple.
//
// Draws are restricted to currently affordable x-tuples. X-tuples are
// bucketed by cost with per-bucket cumulative weights, so each draw costs
// O(log n) and the affordable set shrinks at most (#distinct costs) times.

#include <algorithm>
#include <vector>

#include "clean/planners.h"
#include "common/check.h"

namespace uclean {

namespace {

struct CostBucket {
  int64_t cost = 0;
  std::vector<int32_t> xtuples;
  std::vector<double> cumulative;  // inclusive prefix sums of weights
  double total = 0.0;
};

/// Groups x-tuples with positive weight by cost and builds per-bucket
/// cumulative weight tables.
std::vector<CostBucket> BuildBuckets(const CleaningProblem& problem,
                                     const std::vector<double>& weights) {
  std::vector<std::pair<int64_t, int32_t>> by_cost;  // (cost, xtuple)
  for (size_t l = 0; l < problem.num_xtuples(); ++l) {
    if (weights[l] > 0.0) {
      by_cost.emplace_back(problem.cost[l], static_cast<int32_t>(l));
    }
  }
  std::sort(by_cost.begin(), by_cost.end());
  std::vector<CostBucket> buckets;
  for (const auto& [cost, l] : by_cost) {
    if (buckets.empty() || buckets.back().cost != cost) {
      buckets.push_back(CostBucket{cost, {}, {}, 0.0});
    }
    CostBucket& bucket = buckets.back();
    bucket.xtuples.push_back(l);
    bucket.total += weights[l];
    bucket.cumulative.push_back(bucket.total);
  }
  return buckets;
}

Result<CleaningPlan> PlanRandom(const CleaningProblem& problem,
                                const std::vector<double>& weights, Rng* rng) {
  UCLEAN_RETURN_IF_ERROR(problem.Validate());
  if (rng == nullptr) {
    return Status::InvalidArgument("random planners require an Rng");
  }

  CleaningPlan plan;
  plan.probes.assign(problem.num_xtuples(), 0);

  std::vector<CostBucket> buckets = BuildBuckets(problem, weights);
  // Buckets are sorted by ascending cost; `live` marks how many are
  // affordable (a prefix, since budget only decreases).
  size_t live = buckets.size();
  int64_t remaining = problem.budget;

  while (remaining > 0) {
    while (live > 0 && buckets[live - 1].cost > remaining) --live;
    if (live == 0) break;
    double affordable_weight = 0.0;
    for (size_t b = 0; b < live; ++b) affordable_weight += buckets[b].total;
    UCLEAN_DCHECK(affordable_weight > 0.0);

    double target = rng->Uniform(0.0, affordable_weight);
    size_t chosen_bucket = live - 1;
    for (size_t b = 0; b < live; ++b) {
      if (target < buckets[b].total) {
        chosen_bucket = b;
        break;
      }
      target -= buckets[b].total;
    }
    const CostBucket& bucket = buckets[chosen_bucket];
    const size_t pos =
        std::lower_bound(bucket.cumulative.begin(), bucket.cumulative.end(),
                         std::min(target, bucket.total)) -
        bucket.cumulative.begin();
    const int32_t l = bucket.xtuples[std::min(pos, bucket.xtuples.size() - 1)];

    ++plan.probes[l];
    remaining -= bucket.cost;
  }

  plan.total_cost = problem.budget - remaining;
  plan.expected_improvement = ExpectedImprovement(problem, plan.probes);
  return plan;
}

}  // namespace

Result<CleaningPlan> PlanRandU(const CleaningProblem& problem, Rng* rng) {
  // Uniform over the candidate set Z (Section V-C: x-tuples with nonzero
  // g(l,D); the others provably cannot improve the query, Lemma 5). Beyond
  // membership in Z, RandU ignores every signal -- the paper's fairness
  // baseline.
  std::vector<double> weights(problem.num_xtuples(), 0.0);
  for (size_t l = 0; l < problem.num_xtuples(); ++l) {
    if (problem.gain[l] < 0.0) weights[l] = 1.0;
  }
  return PlanRandom(problem, weights, rng);
}

Result<CleaningPlan> PlanRandP(const CleaningProblem& problem, Rng* rng) {
  if (problem.topk_mass.size() != problem.num_xtuples()) {
    return Status::InvalidArgument(
        "RandP requires per-x-tuple top-k probability masses");
  }
  return PlanRandom(problem, problem.topk_mass, rng);
}

}  // namespace uclean
