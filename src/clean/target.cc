#include "clean/target.h"

#include <utility>

#include "clean/problem.h"
#include "quality/tp.h"

namespace uclean {

Result<BudgetSearchReport> MinimalBudgetForTarget(
    const ProbabilisticDatabase& db, size_t k, const CleaningProfile& profile,
    double target_quality, int64_t max_budget, const DpOptions& dp_options) {
  if (max_budget < 0) {
    return Status::InvalidArgument("max_budget must be >= 0");
  }
  if (target_quality > 0.0) {
    return Status::InvalidArgument("a PWS-quality target must be <= 0");
  }

  // One expensive pass: the g(l,D) table does not depend on the budget, so
  // build the problem once at max_budget and re-scope it per probe.
  Result<CleaningProblem> base =
      MakeCleaningProblem(db, k, profile, max_budget);
  if (!base.ok()) return base.status();

  Result<TpOutput> tp = ComputeTpQuality(db, k);
  if (!tp.ok()) return tp.status();

  BudgetSearchReport report;
  report.current_quality = tp->quality;

  auto expected_quality_at = [&](int64_t budget) -> Result<CleaningPlan> {
    CleaningProblem scoped = *base;
    scoped.budget = budget;
    return PlanDp(scoped, dp_options);
  };

  if (report.current_quality >= target_quality) {
    // Already satisfied without cleaning.
    report.attainable = true;
    report.minimal_budget = 0;
    report.expected_quality = report.current_quality;
    Result<CleaningPlan> empty = expected_quality_at(0);
    if (!empty.ok()) return empty.status();
    report.plan = std::move(empty).value();
    return report;
  }

  Result<CleaningPlan> at_max = expected_quality_at(max_budget);
  if (!at_max.ok()) return at_max.status();
  const double best_quality =
      report.current_quality + at_max->expected_improvement;
  if (best_quality < target_quality) {
    report.attainable = false;
    report.minimal_budget = max_budget;
    report.expected_quality = best_quality;
    report.plan = std::move(at_max).value();
    return report;
  }

  // I*(C) is nondecreasing in C: binary search the threshold.
  int64_t lo = 0, hi = max_budget;  // invariant: hi attains, lo does not
  CleaningPlan plan_at_hi = std::move(at_max).value();
  while (lo + 1 < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    Result<CleaningPlan> plan = expected_quality_at(mid);
    if (!plan.ok()) return plan.status();
    if (report.current_quality + plan->expected_improvement >=
        target_quality) {
      hi = mid;
      plan_at_hi = std::move(plan).value();
    } else {
      lo = mid;
    }
  }
  report.attainable = true;
  report.minimal_budget = hi;
  report.expected_quality =
      report.current_quality + plan_at_hi.expected_improvement;
  report.plan = std::move(plan_at_hi);
  return report;
}

}  // namespace uclean
