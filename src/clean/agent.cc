#include "clean/agent.h"

#include <string>
#include <thread>
#include <utility>

namespace uclean {

namespace {

/// Shared precondition checks, run before any copying or probing.
Status ValidateProbeInputs(size_t num_xtuples, const CleaningProfile& profile,
                           const std::vector<int64_t>& probes, Rng* rng) {
  UCLEAN_RETURN_IF_ERROR(profile.Validate(num_xtuples));
  if (probes.size() != num_xtuples) {
    return Status::InvalidArgument("probes vector size mismatch");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("ExecutePlan requires an Rng");
  }
  return Status::OK();
}

/// Fault-aware execution of x-tuple `l`'s planned probes: each planned
/// probe gets up to RetryPolicy::max_attempts tries with backed-off
/// retries, gated by the plan deadline, the per-probe deadline and `l`'s
/// circuit breaker. Only completed probes spend budget and consume the
/// probe Rng (one success draw); every fault decision comes from the
/// injector's dedicated stream, in plan order. Sets `record->success`
/// when `l` was cleaned (the caller then reveals the outcome from `rng`).
void RunFaultedProbes(const CleaningProfile& profile, XTupleId l,
                      int64_t planned, Rng* rng, const ProbeOptions& options,
                      ProbeRecord* record, FaultStats* stats) {
  FaultInjector& fault = *options.fault;
  const RetryPolicy& retry = fault.retry();
  const int64_t cost = profile.costs[l];
  const int64_t latency_us = options.latency.count();
  for (int64_t p = 0; p < planned; ++p) {
    if (retry.plan_deadline_us > 0 &&
        fault.now_us() >= retry.plan_deadline_us) {
      stats->deadline_skips += planned - p;
      stats->budget_unspent += (planned - p) * cost;
      record->last_error = StatusCode::kDeadlineExceeded;
      return;
    }
    if (!fault.AdmitProbe(l)) {
      stats->breaker_skips += planned - p;
      stats->budget_unspent += (planned - p) * cost;
      record->last_error = StatusCode::kUnavailable;
      return;
    }
    const int64_t probe_start_us = fault.now_us();
    bool completed = false;
    StatusCode probe_error = StatusCode::kUnavailable;
    for (int64_t tries = 1; tries <= retry.max_attempts; ++tries) {
      // The backoff wait is part of the retry, so the per-probe deadline
      // is enforced both after it and after each attempt's own latency.
      if (tries > 1) {
        ++record->retries;
        ++stats->retries;
        fault.BackoffWithJitter(tries - 1);
      }
      if (retry.probe_deadline_us > 0 &&
          fault.now_us() - probe_start_us >= retry.probe_deadline_us) {
        probe_error = StatusCode::kDeadlineExceeded;
        break;
      }
      const FaultKind kind = fault.DrawAttemptFault(l);
      if (kind == FaultKind::kNone) {
        fault.AdvanceClock(latency_us);
        if (options.latency.count() > 0) {
          std::this_thread::sleep_for(options.latency);
        }
        completed = true;
        break;
      }
      switch (kind) {
        case FaultKind::kTransient:
          ++stats->transient;
          fault.AdvanceClock(latency_us);
          break;
        case FaultKind::kTimeout:
          ++stats->timeouts;
          // A timeout burns the whole per-probe deadline (the attempt
          // latency when no deadline is configured).
          fault.AdvanceClock(retry.probe_deadline_us > 0
                                 ? retry.probe_deadline_us
                                 : latency_us);
          break;
        case FaultKind::kSourceDown:
          ++stats->source_down;
          fault.AdvanceClock(latency_us);
          break;
        case FaultKind::kNone:
          break;
      }
      if (kind == FaultKind::kSourceDown) break;  // retrying is pointless
    }
    fault.RecordProbeOutcome(l, completed);
    if (!completed) {
      ++record->failures;
      ++stats->failed_probes;
      stats->budget_unspent += cost;
      record->last_error = probe_error;
      continue;  // the next planned probe tries again (breaker permitting)
    }
    ++record->attempts;
    record->spent += cost;
    if (rng->Bernoulli(profile.sc_probs[l])) {
      record->success = true;
      return;
    }
  }
}

/// The probe loop shared by every form: spends budget, draws successes
/// and revealed outcomes, and RECORDS each success instead of applying
/// it. Draws from `rng` in a fixed order, and reads only the probed
/// x-tuple's own members/probabilities -- state no other x-tuple's
/// collapse can touch -- so the stream is identical whether outcomes are
/// applied between probes (inline ExecutePlan) or all at the end
/// (draw/commit, pipelined). `Db` is ProbabilisticDatabase or a pooled
/// session's DatabaseOverlay view. Inputs must have passed
/// ValidateProbeInputs.
template <typename Db>
Result<ProbeDraws> RunDraws(const Db& db, const CleaningProfile& profile,
                            const std::vector<int64_t>& probes, Rng* rng,
                            const ProbeOptions& options) {
  ProbeDraws draws;
  int64_t planned_cost = 0;
  for (size_t l = 0; l < probes.size(); ++l) {
    if (probes[l] <= 0) continue;
    planned_cost += probes[l] * profile.costs[l];

    ProbeRecord record;
    record.xtuple = static_cast<XTupleId>(l);
    if (options.fault != nullptr) {
      RunFaultedProbes(profile, static_cast<XTupleId>(l), probes[l], rng,
                       options, &record, &draws.report.faults);
    } else {
      for (int64_t attempt = 0; attempt < probes[l]; ++attempt) {
        ++record.attempts;
        record.spent += profile.costs[l];
        // The field operation itself: a probe takes `latency` before its
        // result is known. Sleeping (not spinning) is the point -- waiting
        // probes release the core, which is what the pipelined driver
        // overlaps.
        if (options.latency.count() > 0) {
          std::this_thread::sleep_for(options.latency);
        }
        if (rng->Bernoulli(profile.sc_probs[l])) {
          record.success = true;
          break;  // the agent stops probing once the entity is cleaned
        }
      }
    }
    if (record.success) {
      // Reveal the true state: one alternative (possibly the null outcome),
      // drawn with its existential probability.
      const auto& members = db.xtuple_members(static_cast<XTupleId>(l));
      std::vector<double> weights;
      weights.reserve(members.size());
      for (int32_t idx : members) weights.push_back(db.tuple(idx).prob);
      const Tuple& revealed = db.tuple(members[rng->Discrete(weights)]);
      record.resolved_id = revealed.id;
      draws.outcomes.emplace_back(static_cast<XTupleId>(l), revealed.id);
      ++draws.report.successes;
    }
    draws.report.spent += record.spent;
    draws.report.log.push_back(std::move(record));
  }
  draws.report.leftover = planned_cost - draws.report.spent;
  return draws;
}

/// Applies a draw's recorded outcomes in order through `apply`.
template <typename ApplyOutcomeFn>
Status ApplyDraws(const ProbeDraws& draws, ApplyOutcomeFn apply) {
  for (const auto& [xtuple, resolved_id] : draws.outcomes) {
    UCLEAN_RETURN_IF_ERROR(apply(xtuple, resolved_id));
  }
  return Status::OK();
}

}  // namespace

Result<ProbeDraws> DrawProbes(const ProbabilisticDatabase& db,
                              const CleaningProfile& profile,
                              const std::vector<int64_t>& probes, Rng* rng,
                              const ProbeOptions& options) {
  UCLEAN_RETURN_IF_ERROR(
      ValidateProbeInputs(db.num_xtuples(), profile, probes, rng));
  return RunDraws(db, profile, probes, rng, options);
}

Result<ProbeDraws> DrawProbes(const DatabaseOverlay& view,
                              const CleaningProfile& profile,
                              const std::vector<int64_t>& probes, Rng* rng,
                              const ProbeOptions& options) {
  UCLEAN_RETURN_IF_ERROR(
      ValidateProbeInputs(view.num_xtuples(), profile, probes, rng));
  return RunDraws(view, profile, probes, rng, options);
}

Status CommitProbeDraws(SessionPool* pool, SessionPool::SessionId id,
                        const ProbeDraws& draws) {
  if (pool == nullptr) {
    return Status::InvalidArgument("CommitProbeDraws requires a pool");
  }
  if (!pool->is_open(id)) {
    return Status::InvalidArgument("session " + std::to_string(id) +
                                   " is not open");
  }
  return ApplyDraws(draws,
                    [pool, id](XTupleId l, TupleId resolved_id) -> Status {
                      return pool->ApplyCleanOutcome(id, l, resolved_id);
                    });
}

// ----------------------------------------------------------- ProbeBatch

// `draws` is declared BEFORE `group` so destruction waits the group (and
// with it the task writing `draws`) before the slot goes away.
struct ProbeBatch::State {
  explicit State(ThreadPool* pool)
      : draws(Status::Internal("probe batch still in flight")), group(pool) {}

  Result<ProbeDraws> draws;
  ThreadPool::TaskGroup group;
};

ProbeBatch::ProbeBatch() = default;
ProbeBatch::~ProbeBatch() = default;
ProbeBatch::ProbeBatch(ProbeBatch&&) noexcept = default;
ProbeBatch& ProbeBatch::operator=(ProbeBatch&&) noexcept = default;

bool ProbeBatch::done() const {
  UCLEAN_CHECK(state_ != nullptr);
  return state_->group.Finished();
}

const Result<ProbeDraws>& ProbeBatch::Wait() {
  UCLEAN_CHECK(state_ != nullptr);
  state_->group.Wait();
  return state_->draws;
}

Result<ProbeDraws> ProbeBatch::Take() {
  Wait();
  Result<ProbeDraws> out = std::move(state_->draws);
  state_.reset();
  return out;
}

Result<ProbeBatch> SubmitProbes(const SessionPool& pool,
                                SessionPool::SessionId id,
                                const CleaningProfile& profile,
                                std::vector<int64_t> probes, Rng* rng,
                                const ProbeOptions& options,
                                ThreadPool* exec) {
  if (!pool.is_open(id)) {
    return Status::InvalidArgument("session " + std::to_string(id) +
                                   " is not open");
  }
  // Resolve the view and validate on the caller thread, so the task body
  // is the pure draw loop and submission errors surface synchronously.
  const DatabaseOverlay& view = pool.overlay(id);
  UCLEAN_RETURN_IF_ERROR(
      ValidateProbeInputs(view.num_xtuples(), profile, probes, rng));

  ProbeBatch batch;
  batch.state_ = std::make_unique<ProbeBatch::State>(exec);
  ProbeBatch::State* state = batch.state_.get();
  // The closure reads the overlay, the profile and the session's Rng --
  // all owned by the caller, all guaranteed stable until Wait() by the
  // submission contract in the header. State sits on the heap, so moving
  // the ProbeBatch handle never moves the result slot under the task.
  state->group.Run([state, &view, &profile, probes = std::move(probes), rng,
                    options] {
    state->draws = RunDraws(view, profile, probes, rng, options);
  });
  return batch;
}

// ---------------------------------------------------------- ExecutePlan

Result<ExecutionReport> ExecutePlan(const ProbabilisticDatabase& db,
                                    const CleaningProfile& profile,
                                    const std::vector<int64_t>& probes,
                                    Rng* rng, const ProbeOptions& options) {
  UCLEAN_RETURN_IF_ERROR(
      ValidateProbeInputs(db.num_xtuples(), profile, probes, rng));
  // Collapse outcomes on a copy in place: rank order is untouched by a
  // collapse, so the historical DatabaseBuilder round-trip (re-validate +
  // re-sort) is pure overhead.
  Result<ProbeDraws> draws = RunDraws(db, profile, probes, rng, options);
  if (!draws.ok()) return draws.status();
  ExecutionReport report;
  report.cleaned_db = db;
  UCLEAN_RETURN_IF_ERROR(ApplyDraws(
      *draws, [&report](XTupleId l, TupleId resolved_id) -> Status {
        Result<ProbabilisticDatabase::CleanOutcomeDelta> delta =
            report.cleaned_db.ApplyCleanOutcome(l, resolved_id);
        return delta.status();
      }));
  report.cleaned_db.CompactTombstones();
  report.spent = draws->report.spent;
  report.leftover = draws->report.leftover;
  report.successes = draws->report.successes;
  report.log = std::move(draws->report.log);
  report.faults = draws->report.faults;
  return report;
}

Result<SessionExecutionReport> ExecutePlan(CleaningSession* session,
                                           const CleaningProfile& profile,
                                           const std::vector<int64_t>& probes,
                                           Rng* rng,
                                           const ProbeOptions& options) {
  if (session == nullptr) {
    return Status::InvalidArgument("ExecutePlan requires a session");
  }
  UCLEAN_RETURN_IF_ERROR(
      ValidateProbeInputs(session->db().num_xtuples(), profile, probes, rng));
  Result<ProbeDraws> draws =
      RunDraws(session->db(), profile, probes, rng, options);
  if (!draws.ok()) return draws.status();
  UCLEAN_RETURN_IF_ERROR(ApplyDraws(
      *draws, [session](XTupleId l, TupleId resolved_id) -> Status {
        return session->ApplyCleanOutcome(l, resolved_id);
      }));
  return std::move(draws->report);
}

Result<SessionExecutionReport> ExecutePlan(SessionPool* pool,
                                           SessionPool::SessionId id,
                                           const CleaningProfile& profile,
                                           const std::vector<int64_t>& probes,
                                           Rng* rng,
                                           const ProbeOptions& options) {
  if (pool == nullptr) {
    return Status::InvalidArgument("ExecutePlan requires a pool");
  }
  if (!pool->is_open(id)) {
    return Status::InvalidArgument("session " + std::to_string(id) +
                                   " is not open");
  }
  Result<ProbeDraws> draws =
      DrawProbes(pool->overlay(id), profile, probes, rng, options);
  if (!draws.ok()) return draws.status();
  UCLEAN_RETURN_IF_ERROR(CommitProbeDraws(pool, id, *draws));
  return std::move(draws->report);
}

}  // namespace uclean
