#include "clean/agent.h"

namespace uclean {

Result<ExecutionReport> ExecutePlan(const ProbabilisticDatabase& db,
                                    const CleaningProfile& profile,
                                    const std::vector<int64_t>& probes,
                                    Rng* rng) {
  UCLEAN_RETURN_IF_ERROR(profile.Validate(db.num_xtuples()));
  if (probes.size() != db.num_xtuples()) {
    return Status::InvalidArgument("probes vector size mismatch");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("ExecutePlan requires an Rng");
  }

  ExecutionReport report;
  int64_t planned_cost = 0;
  DatabaseBuilder builder = DatabaseBuilder::FromDatabase(db);
  for (size_t l = 0; l < probes.size(); ++l) {
    if (probes[l] <= 0) continue;
    planned_cost += probes[l] * profile.costs[l];

    ProbeRecord record;
    record.xtuple = static_cast<XTupleId>(l);
    for (int64_t attempt = 0; attempt < probes[l]; ++attempt) {
      ++record.attempts;
      record.spent += profile.costs[l];
      if (rng->Bernoulli(profile.sc_probs[l])) {
        record.success = true;
        break;  // the agent stops probing once the entity is cleaned
      }
    }
    if (record.success) {
      // Reveal the true state: one alternative (possibly the null outcome),
      // drawn with its existential probability.
      const auto& members = db.xtuple_members(static_cast<XTupleId>(l));
      std::vector<double> weights;
      weights.reserve(members.size());
      for (int32_t idx : members) weights.push_back(db.tuple(idx).prob);
      const Tuple& revealed = db.tuple(members[rng->Discrete(weights)]);
      record.resolved_id = revealed.id;
      UCLEAN_RETURN_IF_ERROR(builder.ReplaceWithCertain(
          static_cast<XTupleId>(l), revealed.is_null ? nullptr : &revealed));
      ++report.successes;
    }
    report.spent += record.spent;
    report.log.push_back(record);
  }

  Result<ProbabilisticDatabase> cleaned = std::move(builder).Finish();
  if (!cleaned.ok()) return cleaned.status();
  report.cleaned_db = std::move(cleaned).value();
  report.leftover = planned_cost - report.spent;
  return report;
}

}  // namespace uclean
