#include "clean/agent.h"

#include <string>
#include <utility>

namespace uclean {

namespace {

/// Shared precondition checks, run before any copying or probing.
Status ValidateProbeInputs(size_t num_xtuples, const CleaningProfile& profile,
                           const std::vector<int64_t>& probes, Rng* rng) {
  UCLEAN_RETURN_IF_ERROR(profile.Validate(num_xtuples));
  if (probes.size() != num_xtuples) {
    return Status::InvalidArgument("probes vector size mismatch");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("ExecutePlan requires an Rng");
  }
  return Status::OK();
}

/// The probe loop shared by every ExecutePlan form: spends budget, draws
/// successes and revealed outcomes, and hands each success to `apply`
/// (which collapses the x-tuple in its respective target). Draws from
/// `rng` in a fixed order so all forms consume identical streams. `Db` is
/// ProbabilisticDatabase or a pooled session's DatabaseOverlay view.
/// Inputs must have passed ValidateProbeInputs.
template <typename Db, typename ApplyOutcomeFn>
Result<SessionExecutionReport> RunProbes(const Db& db,
                                         const CleaningProfile& profile,
                                         const std::vector<int64_t>& probes,
                                         Rng* rng, ApplyOutcomeFn apply) {
  SessionExecutionReport report;
  int64_t planned_cost = 0;
  for (size_t l = 0; l < probes.size(); ++l) {
    if (probes[l] <= 0) continue;
    planned_cost += probes[l] * profile.costs[l];

    ProbeRecord record;
    record.xtuple = static_cast<XTupleId>(l);
    for (int64_t attempt = 0; attempt < probes[l]; ++attempt) {
      ++record.attempts;
      record.spent += profile.costs[l];
      if (rng->Bernoulli(profile.sc_probs[l])) {
        record.success = true;
        break;  // the agent stops probing once the entity is cleaned
      }
    }
    if (record.success) {
      // Reveal the true state: one alternative (possibly the null outcome),
      // drawn with its existential probability.
      const auto& members = db.xtuple_members(static_cast<XTupleId>(l));
      std::vector<double> weights;
      weights.reserve(members.size());
      for (int32_t idx : members) weights.push_back(db.tuple(idx).prob);
      const Tuple& revealed = db.tuple(members[rng->Discrete(weights)]);
      record.resolved_id = revealed.id;
      UCLEAN_RETURN_IF_ERROR(apply(static_cast<XTupleId>(l), revealed));
      ++report.successes;
    }
    report.spent += record.spent;
    report.log.push_back(std::move(record));
  }
  report.leftover = planned_cost - report.spent;
  return report;
}

}  // namespace

Result<ExecutionReport> ExecutePlan(const ProbabilisticDatabase& db,
                                    const CleaningProfile& profile,
                                    const std::vector<int64_t>& probes,
                                    Rng* rng) {
  UCLEAN_RETURN_IF_ERROR(
      ValidateProbeInputs(db.num_xtuples(), profile, probes, rng));
  // Collapse outcomes on a copy in place: rank order is untouched by a
  // collapse, so the historical DatabaseBuilder round-trip (re-validate +
  // re-sort) is pure overhead.
  ExecutionReport report;
  report.cleaned_db = db;
  Result<SessionExecutionReport> probe_result = RunProbes(
      db, profile, probes, rng,
      [&report](XTupleId l, const Tuple& revealed) -> Status {
        Result<ProbabilisticDatabase::CleanOutcomeDelta> delta =
            report.cleaned_db.ApplyCleanOutcome(l, revealed.id);
        return delta.status();
      });
  if (!probe_result.ok()) return probe_result.status();
  report.cleaned_db.CompactTombstones();
  report.spent = probe_result->spent;
  report.leftover = probe_result->leftover;
  report.successes = probe_result->successes;
  report.log = std::move(probe_result->log);
  return report;
}

Result<SessionExecutionReport> ExecutePlan(CleaningSession* session,
                                           const CleaningProfile& profile,
                                           const std::vector<int64_t>& probes,
                                           Rng* rng) {
  if (session == nullptr) {
    return Status::InvalidArgument("ExecutePlan requires a session");
  }
  UCLEAN_RETURN_IF_ERROR(
      ValidateProbeInputs(session->db().num_xtuples(), profile, probes, rng));
  return RunProbes(session->db(), profile, probes, rng,
                   [session](XTupleId l, const Tuple& revealed) -> Status {
                     return session->ApplyCleanOutcome(l, revealed.id);
                   });
}

Result<SessionExecutionReport> ExecutePlan(SessionPool* pool,
                                           SessionPool::SessionId id,
                                           const CleaningProfile& profile,
                                           const std::vector<int64_t>& probes,
                                           Rng* rng) {
  if (pool == nullptr) {
    return Status::InvalidArgument("ExecutePlan requires a pool");
  }
  if (!pool->is_open(id)) {
    return Status::InvalidArgument("session " + std::to_string(id) +
                                   " is not open");
  }
  const DatabaseOverlay& view = pool->overlay(id);
  UCLEAN_RETURN_IF_ERROR(
      ValidateProbeInputs(view.num_xtuples(), profile, probes, rng));
  return RunProbes(view, profile, probes, rng,
                   [pool, id](XTupleId l, const Tuple& revealed) -> Status {
                     return pool->ApplyCleanOutcome(id, l, revealed.id);
                   });
}

}  // namespace uclean
