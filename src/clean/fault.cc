#include "clean/fault.h"

#include <algorithm>
#include <string>

#include "clean/problem.h"
#include "common/check.h"

namespace uclean {

namespace {

Status CheckProbability(double value, const char* name) {
  if (!(value >= 0.0 && value <= 1.0)) {
    return Status::InvalidArgument(std::string(name) +
                                   " must be a probability in [0, 1]");
  }
  return Status::OK();
}

Status CheckNonNegative(int64_t value, const char* name) {
  if (value < 0) {
    return Status::InvalidArgument(std::string(name) +
                                   " must be non-negative");
  }
  return Status::OK();
}

}  // namespace

Status FaultProfile::Validate() const {
  UCLEAN_RETURN_IF_ERROR(CheckProbability(fail_rate, "fail_rate"));
  UCLEAN_RETURN_IF_ERROR(CheckProbability(timeout_share, "timeout_share"));
  UCLEAN_RETURN_IF_ERROR(CheckProbability(down_rate, "down_rate"));
  return Status::OK();
}

Status RetryPolicy::Validate() const {
  if (max_attempts < 1) {
    return Status::InvalidArgument(
        "max_attempts must be >= 1 (1 = no retries)");
  }
  UCLEAN_RETURN_IF_ERROR(CheckNonNegative(backoff_us, "backoff_us"));
  if (!(jitter >= 0.0 && jitter < 1.0)) {
    return Status::InvalidArgument("jitter must be in [0, 1)");
  }
  UCLEAN_RETURN_IF_ERROR(
      CheckNonNegative(probe_deadline_us, "probe_deadline_us"));
  UCLEAN_RETURN_IF_ERROR(
      CheckNonNegative(plan_deadline_us, "plan_deadline_us"));
  return Status::OK();
}

Status BreakerOptions::Validate() const {
  if (threshold < 1) {
    return Status::InvalidArgument("breaker threshold must be >= 1");
  }
  UCLEAN_RETURN_IF_ERROR(CheckNonNegative(cooldown_us, "cooldown_us"));
  return Status::OK();
}

Status FaultOptions::Validate() const {
  UCLEAN_RETURN_IF_ERROR(profile.Validate());
  UCLEAN_RETURN_IF_ERROR(retry.Validate());
  UCLEAN_RETURN_IF_ERROR(breaker.Validate());
  return Status::OK();
}

FaultStats& FaultStats::operator+=(const FaultStats& other) {
  transient += other.transient;
  timeouts += other.timeouts;
  source_down += other.source_down;
  retries += other.retries;
  failed_probes += other.failed_probes;
  breaker_skips += other.breaker_skips;
  deadline_skips += other.deadline_skips;
  budget_unspent += other.budget_unspent;
  return *this;
}

FaultInjector::FaultInjector(const FaultOptions& options)
    : profile_(options.profile),
      retry_(options.retry),
      breaker_options_(options.breaker),
      rng_(options.seed) {
  UCLEAN_CHECK(options.Validate().ok());
}

FaultKind FaultInjector::DrawAttemptFault(XTupleId source) {
  ScopedSerialCall guard(gate_);
  // Down-ness is drawn lazily, once per source, from the same dedicated
  // stream; a down source fails every attempt without further draws, so
  // the stream stays deterministic in plan order.
  if (profile_.down_rate > 0.0) {
    auto [it, inserted] = down_.try_emplace(source, false);
    if (inserted) it->second = rng_.Bernoulli(profile_.down_rate);
    if (it->second) return FaultKind::kSourceDown;
  }
  if (!rng_.Bernoulli(profile_.fail_rate)) return FaultKind::kNone;
  return rng_.Bernoulli(profile_.timeout_share) ? FaultKind::kTimeout
                                                : FaultKind::kTransient;
}

bool FaultInjector::SourceAvailable(XTupleId source) const {
  auto it = breakers_.find(source);
  if (it == breakers_.end()) return true;
  const Breaker& breaker = it->second;
  switch (breaker.state) {
    case BreakerState::kClosed:
    case BreakerState::kHalfOpen:
      return true;
    case BreakerState::kOpen:
      return now_us_ >= breaker.open_until_us;
  }
  return true;
}

bool FaultInjector::AdmitProbe(XTupleId source) {
  ScopedSerialCall guard(gate_);
  if (breakers_.empty()) return true;  // fault-free fast path
  auto it = breakers_.find(source);
  if (it == breakers_.end()) return true;
  Breaker& breaker = it->second;
  switch (breaker.state) {
    case BreakerState::kClosed:
    case BreakerState::kHalfOpen:
      return true;
    case BreakerState::kOpen:
      if (now_us_ < breaker.open_until_us) return false;
      breaker.state = BreakerState::kHalfOpen;  // the trial begins
      return true;
  }
  return true;
}

void FaultInjector::RecordProbeOutcome(XTupleId source, bool completed) {
  ScopedSerialCall guard(gate_);
  if (completed) {
    // Fast path: a completed probe against an untracked source changes
    // nothing -- materializing a closed breaker per source would make the
    // zero-fault regime pay a hash insert per probe for no information.
    if (breakers_.empty()) return;
    auto it = breakers_.find(source);
    if (it == breakers_.end()) return;
    it->second.state = BreakerState::kClosed;
    it->second.consecutive_failures = 0;
    return;
  }
  Breaker& breaker = breakers_[source];
  ++breaker.consecutive_failures;
  // A failed half-open trial reopens immediately; a closed breaker trips
  // once the consecutive-failure threshold is met.
  if (breaker.state == BreakerState::kHalfOpen ||
      breaker.consecutive_failures >= breaker_options_.threshold) {
    breaker.state = BreakerState::kOpen;
    breaker.open_until_us = now_us_ + breaker_options_.cooldown_us;
    ever_opened_ = true;
  }
}

int64_t FaultInjector::BackoffWithJitter(int64_t retry_index) {
  ScopedSerialCall guard(gate_);
  UCLEAN_CHECK(retry_index >= 1);
  // Exponential base, capped at 2^20 doublings to keep the shift defined.
  const int64_t doublings =
      std::min<int64_t>(retry_index - 1, 20);
  const int64_t base = retry_.backoff_us << doublings;
  int64_t backoff = base;
  if (retry_.jitter > 0.0 && base > 0) {
    const double factor =
        rng_.Uniform(1.0 - retry_.jitter, 1.0 + retry_.jitter);
    backoff = static_cast<int64_t>(static_cast<double>(base) * factor);
  }
  // Advance the clock directly: AdvanceClock is a guarded public entry
  // point and the gate is non-recursive.
  now_us_ += backoff;
  return backoff;
}

FaultInjectorState FaultInjector::SaveState() const {
  FaultInjectorState state;
  state.rng_state = rng_.SaveState();
  state.now_us = now_us_;
  state.ever_opened = ever_opened_;
  state.breakers.reserve(breakers_.size());
  for (const auto& [source, breaker] : breakers_) {
    state.breakers.push_back({source, static_cast<uint8_t>(breaker.state),
                              breaker.consecutive_failures,
                              breaker.open_until_us});
  }
  std::sort(state.breakers.begin(), state.breakers.end(),
            [](const FaultInjectorState::BreakerEntry& a,
               const FaultInjectorState::BreakerEntry& b) {
              return a.source < b.source;
            });
  state.down.reserve(down_.size());
  for (const auto& [source, is_down] : down_) {
    state.down.push_back({source, is_down});
  }
  std::sort(state.down.begin(), state.down.end(),
            [](const FaultInjectorState::DownEntry& a,
               const FaultInjectorState::DownEntry& b) {
              return a.source < b.source;
            });
  return state;
}

Status FaultInjector::RestoreState(const FaultInjectorState& state) {
  ScopedSerialCall guard(gate_);
  UCLEAN_RETURN_IF_ERROR(rng_.RestoreState(state.rng_state));
  now_us_ = state.now_us;
  ever_opened_ = state.ever_opened;
  breakers_.clear();
  for (const FaultInjectorState::BreakerEntry& entry : state.breakers) {
    if (entry.state > static_cast<uint8_t>(BreakerState::kHalfOpen)) {
      return Status::DataLoss("breaker state byte out of range");
    }
    Breaker& breaker = breakers_[entry.source];
    breaker.state = static_cast<BreakerState>(entry.state);
    breaker.consecutive_failures = entry.consecutive_failures;
    breaker.open_until_us = entry.open_until_us;
  }
  down_.clear();
  for (const FaultInjectorState::DownEntry& entry : state.down) {
    down_[entry.source] = entry.down;
  }
  return Status::OK();
}

BreakerState FaultInjector::breaker_state(XTupleId source) const {
  auto it = breakers_.find(source);
  return it == breakers_.end() ? BreakerState::kClosed : it->second.state;
}

size_t FaultInjector::num_open_sources() const {
  size_t open = 0;
  for (const auto& [source, breaker] : breakers_) {
    if (breaker.state == BreakerState::kOpen &&
        now_us_ < breaker.open_until_us) {
      ++open;
    }
  }
  return open;
}

void MaskUnavailableSources(const FaultInjector* fault,
                            CleaningProblem* problem) {
  if (fault == nullptr || problem == nullptr) return;
  // Until some breaker has tripped, every source is available and the
  // per-source scan below would be a pure per-round tax on the zero-fault
  // regime (the overhead guard bench_faults gates).
  if (!fault->ever_opened()) return;
  for (size_t l = 0; l < problem->gain.size(); ++l) {
    if (!fault->SourceAvailable(static_cast<XTupleId>(l))) {
      problem->gain[l] = 0.0;  // no expected improvement: never selected
    }
  }
}

}  // namespace uclean
