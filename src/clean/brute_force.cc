#include "clean/brute_force.h"

#include <cmath>

#include "quality/tp.h"

namespace uclean {

namespace {

/// One selected x-tuple's outcome space: "cleaning failed" plus one entry
/// per alternative the x-tuple could collapse to.
struct OutcomeSpace {
  XTupleId xtuple = 0;
  double fail_prob = 0.0;               // (1 - P_l)^{M_l}
  std::vector<int32_t> members;         // rank indices (includes null)
  std::vector<double> member_probs;     // e_i * (1 - fail_prob)
};

}  // namespace

Result<double> ExpectedImprovementBruteForce(const ProbabilisticDatabase& db,
                                             size_t k,
                                             const CleaningProfile& profile,
                                             const std::vector<int64_t>& probes,
                                             uint64_t max_outcomes) {
  UCLEAN_RETURN_IF_ERROR(profile.Validate(db.num_xtuples()));
  if (probes.size() != db.num_xtuples()) {
    return Status::InvalidArgument("probes vector size mismatch");
  }

  std::vector<OutcomeSpace> spaces;
  double total_outcomes = 1.0;
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    if (probes[l] <= 0) continue;
    OutcomeSpace space;
    space.xtuple = static_cast<XTupleId>(l);
    space.fail_prob = std::pow(1.0 - profile.sc_probs[l],
                               static_cast<double>(probes[l]));
    for (int32_t idx : db.xtuple_members(static_cast<XTupleId>(l))) {
      space.members.push_back(idx);
      space.member_probs.push_back(db.tuple(idx).prob *
                                   (1.0 - space.fail_prob));
    }
    total_outcomes *= static_cast<double>(space.members.size() + 1);
    spaces.push_back(std::move(space));
  }
  if (total_outcomes > static_cast<double>(max_outcomes)) {
    return Status::ResourceExhausted(
        "brute-force improvement would enumerate " +
        std::to_string(total_outcomes) + " outcome databases");
  }

  Result<TpOutput> base = ComputeTpQuality(db, k);
  if (!base.ok()) return base.status();
  if (spaces.empty()) return 0.0;

  // Odometer over outcomes; position 0 of each space means "clean failed".
  std::vector<size_t> odometer(spaces.size(), 0);
  double expected_quality = 0.0;
  while (true) {
    double outcome_prob = 1.0;
    DatabaseBuilder builder = DatabaseBuilder::FromDatabase(db);
    for (size_t s = 0; s < spaces.size(); ++s) {
      const OutcomeSpace& space = spaces[s];
      if (odometer[s] == 0) {
        outcome_prob *= space.fail_prob;
      } else {
        const size_t member = odometer[s] - 1;
        outcome_prob *= space.member_probs[member];
        const Tuple& chosen = db.tuple(space.members[member]);
        UCLEAN_RETURN_IF_ERROR(
            builder.ReplaceWithCertain(space.xtuple, &chosen));
      }
    }
    if (outcome_prob > 0.0) {
      Result<ProbabilisticDatabase> cleaned = std::move(builder).Finish();
      if (!cleaned.ok()) return cleaned.status();
      Result<TpOutput> quality = ComputeTpQuality(*cleaned, k);
      if (!quality.ok()) return quality.status();
      expected_quality += outcome_prob * quality->quality;
    }

    size_t s = 0;
    for (; s < spaces.size(); ++s) {
      if (++odometer[s] <= spaces[s].members.size()) break;
      odometer[s] = 0;
    }
    if (s == spaces.size()) break;
  }
  return expected_quality - base->quality;
}

namespace {

struct ExhaustiveSearch {
  const CleaningProblem& problem;
  uint64_t max_states;
  uint64_t states = 0;
  std::vector<int64_t> current;
  std::vector<int64_t> best;
  double best_value = 0.0;
  bool exhausted_states = false;

  explicit ExhaustiveSearch(const CleaningProblem& p, uint64_t max)
      : problem(p), max_states(max) {
    current.assign(p.num_xtuples(), 0);
    best = current;
  }

  void Recurse(size_t l, int64_t remaining, double value) {
    if (exhausted_states) return;
    if (++states > max_states) {
      exhausted_states = true;
      return;
    }
    if (value > best_value) {
      best_value = value;
      best = current;
    }
    if (l == problem.num_xtuples()) return;
    // Probe count 0 first, then every affordable count.
    Recurse(l + 1, remaining, value);
    const int64_t cost = problem.cost[l];
    for (int64_t m = 1; m * cost <= remaining; ++m) {
      current[l] = m;
      Recurse(l + 1, remaining - m * cost,
              value - problem.XTupleImprovement(l, 0) +
                  problem.XTupleImprovement(l, m));
      current[l] = 0;
    }
  }
};

}  // namespace

Result<CleaningPlan> PlanExhaustive(const CleaningProblem& problem,
                                    uint64_t max_states) {
  UCLEAN_RETURN_IF_ERROR(problem.Validate());
  ExhaustiveSearch search(problem, max_states);
  search.Recurse(0, problem.budget, 0.0);
  if (search.exhausted_states) {
    return Status::ResourceExhausted(
        "exhaustive plan search exceeded its state limit");
  }
  CleaningPlan plan;
  plan.probes = search.best;
  plan.total_cost = PlanCost(problem, plan.probes);
  plan.expected_improvement = ExpectedImprovement(problem, plan.probes);
  return plan;
}

}  // namespace uclean
