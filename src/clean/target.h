// Minimal-budget search: the inverse of the paper's cleaning problem.
//
// The conclusion lists "use minimal cost to attain a given quality score"
// as future work (Section VII). Because the DP planner's optimal expected
// improvement I*(C) is nondecreasing in the budget C (a larger budget can
// always replay a smaller budget's plan), the smallest budget whose
// expected post-cleaning quality S(D,Q) + I*(C) reaches a target is found
// by binary search over C.

#ifndef UCLEAN_CLEAN_TARGET_H_
#define UCLEAN_CLEAN_TARGET_H_

#include <cstdint>

#include "clean/planners.h"
#include "common/status.h"
#include "model/database.h"

namespace uclean {

/// Result of the minimal-budget search.
struct BudgetSearchReport {
  bool attainable = false;        ///< target reachable within max_budget
  int64_t minimal_budget = 0;     ///< smallest sufficient C (if attainable)
  double current_quality = 0.0;   ///< S(D,Q) before cleaning
  double expected_quality = 0.0;  ///< S + I*(C) at the reported budget
  CleaningPlan plan;              ///< the optimal plan at that budget
};

/// Finds the smallest budget C <= max_budget whose optimal expected
/// post-cleaning quality reaches `target_quality` (a PWS-quality, <= 0).
/// When unattainable, reports the best expected quality at max_budget.
///
/// Threading: pure function of its arguments (reads `db`, writes
/// nothing); concurrent calls on databases nobody is mutating are safe.
Result<BudgetSearchReport> MinimalBudgetForTarget(
    const ProbabilisticDatabase& db, size_t k, const CleaningProfile& profile,
    double target_quality, int64_t max_budget,
    const DpOptions& dp_options = {});

}  // namespace uclean

#endif  // UCLEAN_CLEAN_TARGET_H_
