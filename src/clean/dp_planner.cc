// Exact dynamic-programming planner (Section V-D.1) with two engines:
// the paper's item-by-item knapsack and a concave-group divide-and-conquer
// optimization (see planners.h).

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "clean/planners.h"
#include "common/check.h"

namespace uclean {

namespace {

/// Budgets beyond this would allocate unreasonable DP tables; the paper's
/// largest sweep point is 10^5.
constexpr int64_t kMaxDpBudget = 10'000'000;

/// An x-tuple that can contribute value: probe count cap and the concave
/// cumulative-value table G[M] (Section V-B).
struct Group {
  int32_t xtuple = 0;
  int64_t cost = 1;
  std::vector<double> cumulative;  // cumulative[M] = G(l, M), M = 0..J
};

/// Builds the per-x-tuple groups, applying the Lemma-5 exclusion (zero-gain
/// x-tuples cannot help) and the optional value-epsilon tail truncation.
std::vector<Group> BuildGroups(const CleaningProblem& problem,
                               const DpOptions& options) {
  std::vector<Group> groups;
  const int64_t budget = problem.budget;
  for (size_t l = 0; l < problem.num_xtuples(); ++l) {
    const double value_base = -problem.gain[l];  // >= 0
    const double p = problem.sc_prob[l];
    const int64_t c = problem.cost[l];
    if (value_base <= 0.0 || p <= 0.0 || c > budget) continue;

    int64_t max_probes = budget / c;
    if (p >= 1.0) {
      max_probes = std::min<int64_t>(max_probes, 1);
    } else if (options.value_epsilon > 0.0) {
      // b(l,j) = value_base * p * (1-p)^{j-1} < eps  for
      // j > 1 + log(eps / (value_base * p)) / log(1-p).
      const double first = value_base * p;
      if (first < options.value_epsilon) continue;
      const double tail =
          1.0 + std::log(options.value_epsilon / first) / std::log1p(-p);
      if (tail < static_cast<double>(max_probes)) {
        max_probes = std::max<int64_t>(1, static_cast<int64_t>(tail) + 1);
      }
    }
    if (max_probes <= 0) continue;

    Group g;
    g.xtuple = static_cast<int32_t>(l);
    g.cost = c;
    g.cumulative.resize(max_probes + 1);
    g.cumulative[0] = 0.0;
    double marginal = value_base * p;  // b(l,1)
    for (int64_t j = 1; j <= max_probes; ++j) {
      g.cumulative[j] = g.cumulative[j - 1] + marginal;
      marginal *= 1.0 - p;
    }
    groups.push_back(std::move(g));
  }
  return groups;
}

/// The paper's engine: try every probe count for the group at every budget.
/// O(C * J_l) per group, i.e. O(C^2 |Z| / c) overall.
void SweepGroupItems(const Group& g, const std::vector<double>& dp,
                     std::vector<double>* new_dp,
                     std::vector<int32_t>* choice) {
  const int64_t budget = static_cast<int64_t>(dp.size()) - 1;
  const int64_t max_probes = static_cast<int64_t>(g.cumulative.size()) - 1;
  for (int64_t b = 0; b <= budget; ++b) {
    double best = dp[b];
    int32_t best_m = 0;
    const int64_t cap = std::min(max_probes, b / g.cost);
    for (int64_t m = 1; m <= cap; ++m) {
      const double v = dp[b - m * g.cost] + g.cumulative[m];
      if (v > best) {
        best = v;
        best_m = static_cast<int32_t>(m);
      }
    }
    (*new_dp)[b] = best;
    (*choice)[b] = best_m;
  }
}

/// Concave engine: per residue class modulo the group's cost, the update is
/// a (max,+) convolution of dp with the concave sequence G, whose row-wise
/// argmax is monotone (inverse Monge). Divide-and-conquer recovers every
/// argmax in O(len log len) per residue.
class ConcaveSweep {
 public:
  ConcaveSweep(const Group& g, const std::vector<double>& dp,
               std::vector<double>* new_dp, std::vector<int32_t>* choice)
      : g_(g), dp_(dp), new_dp_(new_dp), choice_(choice) {}

  void Run() {
    const int64_t budget = static_cast<int64_t>(dp_.size()) - 1;
    for (int64_t residue = 0; residue < g_.cost && residue <= budget;
         ++residue) {
      residue_ = residue;
      const int64_t len = (budget - residue) / g_.cost + 1;  // rows 0..len-1
      Solve(0, len - 1, 0, len - 1);
    }
  }

 private:
  int64_t Position(int64_t i) const { return residue_ + i * g_.cost; }

  /// Value of filling row i from source column j (taking i-j probes).
  double Value(int64_t i, int64_t j) const {
    return dp_[Position(j)] + g_.cumulative[i - j];
  }

  void Solve(int64_t row_lo, int64_t row_hi, int64_t col_lo, int64_t col_hi) {
    if (row_lo > row_hi) return;
    const int64_t mid = row_lo + (row_hi - row_lo) / 2;
    const int64_t max_probes = static_cast<int64_t>(g_.cumulative.size()) - 1;
    const int64_t j_lo = std::max(col_lo, mid - max_probes);
    const int64_t j_hi = std::min(col_hi, mid);
    UCLEAN_DCHECK(j_lo <= j_hi);
    double best = -std::numeric_limits<double>::infinity();
    int64_t best_j = j_lo;
    for (int64_t j = j_lo; j <= j_hi; ++j) {
      const double v = Value(mid, j);
      if (v >= best) {  // rightmost argmax: fewest probes on value ties
        best = v;
        best_j = j;
      }
    }
    (*new_dp_)[Position(mid)] = best;
    (*choice_)[Position(mid)] = static_cast<int32_t>(mid - best_j);
    Solve(row_lo, mid - 1, col_lo, best_j);
    Solve(mid + 1, row_hi, best_j, col_hi);
  }

  const Group& g_;
  const std::vector<double>& dp_;
  std::vector<double>* new_dp_;
  std::vector<int32_t>* choice_;
  int64_t residue_ = 0;
};

}  // namespace

Result<CleaningPlan> PlanDp(const CleaningProblem& problem,
                            const DpOptions& options) {
  UCLEAN_RETURN_IF_ERROR(problem.Validate());
  if (problem.budget > kMaxDpBudget) {
    return Status::ResourceExhausted(
        "budget " + std::to_string(problem.budget) +
        " exceeds the DP planner limit of " + std::to_string(kMaxDpBudget));
  }

  CleaningPlan plan;
  plan.probes.assign(problem.num_xtuples(), 0);

  std::vector<Group> groups = BuildGroups(problem, options);
  const int64_t budget = problem.budget;
  std::vector<double> dp(budget + 1, 0.0);
  std::vector<double> new_dp(budget + 1, 0.0);
  // choices[g][b]: probes of group g in the optimum over groups 0..g at
  // budget b.
  std::vector<std::vector<int32_t>> choices(groups.size());

  for (size_t gi = 0; gi < groups.size(); ++gi) {
    choices[gi].assign(budget + 1, 0);
    if (options.mode == DpMode::kItems) {
      SweepGroupItems(groups[gi], dp, &new_dp, &choices[gi]);
    } else {
      ConcaveSweep(groups[gi], dp, &new_dp, &choices[gi]).Run();
    }
    dp.swap(new_dp);
  }

  // Reconstruct the per-x-tuple probe counts from the choice tables.
  int64_t b = budget;
  for (size_t gi = groups.size(); gi-- > 0;) {
    const int32_t m = choices[gi][b];
    plan.probes[groups[gi].xtuple] = m;
    b -= static_cast<int64_t>(m) * groups[gi].cost;
    UCLEAN_DCHECK(b >= 0);
  }

  plan.total_cost = PlanCost(problem, plan.probes);
  plan.expected_improvement = ExpectedImprovement(problem, plan.probes);
  return plan;
}

}  // namespace uclean
