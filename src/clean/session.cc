#include "clean/session.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace uclean {

Result<CleaningSession> CleaningSession::Start(ProbabilisticDatabase db,
                                               size_t k,
                                               const Options& options) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  KLadder ladder;
  ladder.ks = {k};
  return Start(std::move(db), ladder, options);
}

Result<CleaningSession> CleaningSession::Start(ProbabilisticDatabase db,
                                               const KLadder& ladder,
                                               const Options& options) {
  CleaningSession session;
  session.options_ = options;
  session.db_ = std::move(db);

  ScanRequest request;
  request.ladder = ladder;
  request.psr = options.psr;
  request.exec = options.exec;
  request.checkpoint_interval = options.checkpoint_interval;
  Result<PsrEngine> engine = PsrEngine::Create(session.db_, request);
  if (!engine.ok()) return engine.status();
  session.engine_ = std::move(engine).value();

  // The engine resolved the exec options (building the shared pool when
  // asked to); every TP pass fans over that same pool.
  Result<std::vector<TpOutput>> tps = ComputeTpQualityLadder(
      session.db_, session.engine_.outputs(), session.engine_.exec());
  if (!tps.ok()) return tps.status();
  session.tps_ = std::move(tps).value();
  return session;
}

Status CleaningSession::ApplyCleanOutcome(XTupleId xtuple,
                                          TupleId resolved_id) {
  ScopedSerialCall guard(gate_);
  Result<ProbabilisticDatabase::CleanOutcomeDelta> delta =
      db_.ApplyCleanOutcome(xtuple, resolved_id);
  if (!delta.ok()) return delta.status();
  if (delta->first_changed_rank >= db_.num_tuples()) {
    return Status::OK();  // outcome was already materialized
  }
  const size_t begin = delta->first_changed_rank;
  if (pending_replay_begin_ == kNoPending || begin < pending_replay_begin_) {
    pending_replay_begin_ = begin;
  }
  return Status::OK();
}

Status CleaningSession::Refresh() {
  ScopedSerialCall guard(gate_);
  if (!dirty()) return Status::OK();
  size_t replay_begin = pending_replay_begin_;

  // Lazy compaction: reclaim tombstones before the replay so the scan
  // never revisits them. Checkpoints past the replay boundary must be
  // dropped BEFORE the remap: they hold pre-clean state, and compaction
  // can move one onto the boundary itself when every slot in between was
  // tombstoned, where the replay would wrongly resume from it.
  engine_.InvalidateBelow(replay_begin);
  if (db_.num_tombstones() >= options_.compact_min_tombstones &&
      static_cast<double>(db_.num_tombstones()) >=
          options_.compact_min_fraction *
              static_cast<double>(db_.num_tuples())) {
    const size_t old_n = db_.num_tuples();
    std::vector<int32_t> old_to_new = db_.CompactTombstones();
    UCLEAN_RETURN_IF_ERROR(engine_.ApplyCompaction(db_, old_to_new));
    // Remap the replay boundary and every rung's omega prefix (the delta
    // TP pass reuses it; suffix entries are about to be rewritten anyway).
    // The per-rung TP scan ends equal the engine's pre-replay scan ends,
    // which ApplyCompaction just remapped -- copy them across.
    size_t new_begin = 0;
    for (size_t i = 0; i < replay_begin && i < old_n; ++i) {
      if (old_to_new[i] >= 0) ++new_begin;
    }
    for (size_t rung = 0; rung < tps_.size(); ++rung) {
      TpOutput& tp = tps_[rung];
      std::vector<double> omega(db_.num_tuples(), 0.0);
      for (size_t i = 0; i < old_n; ++i) {
        if (old_to_new[i] >= 0) omega[old_to_new[i]] = tp.omega[i];
      }
      tp.omega = std::move(omega);
      tp.scan_end = engine_.output(rung).scan_end;
    }
    replay_begin = new_begin;
  }

  UCLEAN_RETURN_IF_ERROR(engine_.Replay(db_, replay_begin));
  UCLEAN_RETURN_IF_ERROR(UpdateTpQualityLadder(
      db_, engine_.outputs(), replay_begin, &tps_, engine_.exec()));
  pending_replay_begin_ = kNoPending;
  return Status::OK();
}

ProbabilisticDatabase CleaningSession::TakeDatabase() && {
  ScopedSerialCall guard(gate_);
  db_.CompactTombstones();
  return std::move(db_);
}

}  // namespace uclean
