// Adaptive (multi-round) cleaning: plan, execute, re-plan with the budget
// early successes left unspent.
//
// The paper plans once, before any cleaning, and explicitly defers "how to
// update the list so that the rest of the resources can be used" to future
// work (Section V-A). This module implements that extension: after each
// executed round, the cleaned database's fresh g(l,D) table and the
// remaining budget seed the next round, until the budget is gone or no
// x-tuple can still improve the query. The ablation bench quantifies the
// realized-quality advantage over one-shot planning.
//
// The loop runs on the incremental CleaningSession: the database is
// mutated in place (no per-round copy or builder round-trip), each round
// costs at most one partial PSR replay + delta TP pass, and that one
// refreshed TP state feeds both the round's quality report and the next
// round's CleaningProblem. bench_incremental measures the win over the
// historical copy-rebuild-rescan loop.
//
// Multi-k: with AdaptiveOptions::k_ladder the session serves a whole
// ladder of top-k queries from one shared scan, the planner optimizes a
// weighted aggregate of the per-rung gain tables (uniform by default, or
// plan_weights to focus on chosen rungs), and the report carries per-rung
// quality trajectories. bench_multik measures the win over running one
// single-k session per rung.

#ifndef UCLEAN_CLEAN_ADAPTIVE_H_
#define UCLEAN_CLEAN_ADAPTIVE_H_

#include <cstdint>
#include <vector>

#include "clean/agent.h"
#include "clean/planners.h"
#include "common/rng.h"
#include "common/status.h"
#include "exec/thread_pool.h"
#include "model/database.h"
#include "rank/psr.h"

namespace uclean {

/// Options for the adaptive loop.
struct AdaptiveOptions {
  size_t k = 15;

  /// When non-empty, serve this k-ladder from one shared session instead
  /// of the single `k` (which is then ignored).
  std::vector<size_t> k_ladder;

  /// Per-rung planning weights for the aggregated objective
  /// sum_j w_j S_j(D,Q); empty = uniform. Must match the ladder length
  /// and bind positionally to the ASCENDING ladder -- a k_ladder that
  /// needs reordering is rejected when weights are given, so a weight
  /// never lands on the wrong rung silently.
  std::vector<double> plan_weights;

  PlannerKind planner = PlannerKind::kGreedy;
  DpOptions dp_options;
  size_t max_rounds = 64;

  /// Execution mode for the session's scans, replays and TP passes
  /// (CleaningSession::Options::exec); the sequential default and any
  /// thread count produce bitwise-identical state.
  ExecOptions exec;

  /// Fault injection + retry/deadline/breaker policy for the probe loop
  /// (clean/fault.h). Disabled by default; when enabled the loop degrades
  /// gracefully instead of failing: failed probes leave their budget
  /// unspent, the planner masks sources with open breakers, and an
  /// all-blocked round waits out one breaker cooldown (simulated) before
  /// re-planning.
  FaultOptions fault;
};

/// One round's summary.
struct AdaptiveRound {
  int64_t budget_before = 0;
  double predicted_improvement = 0.0;
  int64_t spent = 0;
  size_t successes = 0;
  /// Quality of the planning objective (the weighted ladder aggregate;
  /// the plain quality for single-k runs).
  double quality_after = 0.0;
  /// Per-rung qualities, ladder order (one entry for single-k runs).
  std::vector<double> quality_after_per_k;
  /// Fault/retry/breaker counters of this round's execution (all zero
  /// unless AdaptiveOptions::fault is enabled).
  FaultStats faults;
};

/// Outcome of an adaptive cleaning session.
struct AdaptiveReport {
  ProbabilisticDatabase final_db;
  /// The served ladder (a single rung for single-k runs).
  std::vector<size_t> ladder;
  /// Planning-objective qualities (weighted ladder aggregate; the plain
  /// quality for single-k runs).
  double initial_quality = 0.0;
  double final_quality = 0.0;
  /// Per-rung qualities, ladder order.
  std::vector<double> initial_quality_per_k;
  std::vector<double> final_quality_per_k;
  int64_t total_spent = 0;
  std::vector<AdaptiveRound> rounds;
  /// Campaign-wide fault aggregate (sum of the per-round counters).
  FaultStats faults;
};

/// Runs the adaptive plan/execute loop on `db` with total budget `budget`.
/// The rvalue overload moves the database into the session instead of
/// copying it; prefer it when the caller is done with `db`.
///
/// Threading: a pure function of its arguments -- concurrent calls on
/// DISTINCT (db, rng) pairs are safe; two calls must never share an Rng.
/// Parallelism stays inside the call (options.exec shards the session's
/// scans); the probe loop itself runs inline. For overlapping probe
/// waiting with planning across many concurrent sessions, use the pooled
/// driver in clean/pipeline.h instead.
Result<AdaptiveReport> RunAdaptiveCleaning(ProbabilisticDatabase&& db,
                                           const CleaningProfile& profile,
                                           int64_t budget,
                                           const AdaptiveOptions& options,
                                           Rng* rng);
Result<AdaptiveReport> RunAdaptiveCleaning(const ProbabilisticDatabase& db,
                                           const CleaningProfile& profile,
                                           int64_t budget,
                                           const AdaptiveOptions& options,
                                           Rng* rng);

}  // namespace uclean

#endif  // UCLEAN_CLEAN_ADAPTIVE_H_
