// SessionPool: N concurrent cleaning sessions over ONE shared base
// database and ONE ladder PsrEngine checkpoint set.
//
// A dedicated CleaningSession per analyst pays, per session, a full
// database copy, a full O(k n) PSR scan, a checkpoint set and a full TP
// pass before the first probe lands. The paper's cleaning loop assumes
// one analyst per database (Sec. V); serving many concurrent users that
// way multiplies the whole start-up cost by the user count. The pool
// amortizes it instead:
//
//  * ONE base ProbabilisticDatabase, never mutated. Each session's clean
//    outcomes live in its own copy-on-write DatabaseOverlay
//    (model/database_overlay.h): overlay tombstones + patched resolved
//    tuples, rank indices stable, base untouched.
//  * ONE ladder PsrEngine over the base, scanned and checkpointed once.
//    Opening a session forks the engine's outputs (PsrEngine::
//    ForkSession -- a memcpy, no scan) and copies the base TP ladder.
//  * Refreshing a session replays ONLY that session's suffix
//    (PsrEngine::ReplaySession): the shared checkpoints cover the prefix
//    above the session's divergence rank, the session's private
//    checkpoints cover its own post-divergence suffix, and the shared
//    delta TP pass (UpdateTpQualityLadder over the overlay) brings its
//    per-rung quality state forward. The shared prefix is never
//    recomputed for anybody.
//
// Every session's maintained PSR/TP state is bitwise identical to a
// dedicated CleaningSession fed the same outcomes (same scan arithmetic,
// same restored snapshots -- pool_test.cc holds this to 1e-12 under
// interleaved cleans, compaction and churn; bench_pool measures the
// amortization win over N dedicated sessions).
//
// Threading: SERIALIZED CALLER. Sessions are logically concurrent:
// opens, applies, refreshes and closes interleave freely and never
// observe each other. The pool itself is NOT thread-safe; callers
// serialize access (the replay scratch is per-session, but open/close
// mutate shared tables). That contract is ENFORCED twice over, as a
// common/serial_gate.h capability: every mutating entry point opens a
// ScopedSerialCall window on gate_ (debug builds turn two overlapping
// calls -- the misuse the lines above forbid -- into a hard UCLEAN_CHECK
// failure instead of silent state corruption; death-tested in
// pool_test.cc), and the Clang -Wthread-safety build statically rejects
// reentrant entry and any new code path that reaches the guarded refresh
// internals without the gate.
//
// The sanctioned way to apply hardware parallelism is THROUGH the pool,
// not around it: Options::exec shards the shared scan and every
// session's suffix replay by rank range (rank/sharded_scan.h), and
// RefreshAll runs many dirty sessions' refreshes concurrently on the
// same ThreadPool from one caller thread -- each session's scratch,
// overlay and TP state are private, and the shared engine state is
// read-only after Create, so sessions fan out without locks while the
// serialized-caller contract stays intact.
//
// The same reasoning admits ASYNC PROBE BATCHES (clean/agent.h's
// SubmitProbes + clean/pipeline.h): a batch is a pure read of one
// session's overlay running on a pool worker. While a session has a
// batch in flight, the (single) caller thread may keep using the pool
// -- plan, apply/commit to OTHER sessions, wait batches -- but must not
// mutate, refresh or close the in-flight session itself, and must not
// open/close ANY session (slot-table growth could move overlays) until
// every in-flight batch is waited. Refresh/RefreshAll the committed
// outcomes only after the round's batches are all committed.
//
// Reading a dirty session (outcomes applied, not yet refreshed) is a hard
// failure in every build type, matching CleaningSession.

#ifndef UCLEAN_CLEAN_SESSION_POOL_H_
#define UCLEAN_CLEAN_SESSION_POOL_H_

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/serial_gate.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "exec/thread_pool.h"
#include "model/database.h"
#include "model/database_overlay.h"
#include "quality/tp.h"
#include "rank/psr.h"
#include "rank/psr_engine.h"

namespace uclean {

class SessionPool {
 public:
  /// Session handle: an index into the pool's slot table. Slots are
  /// reused after Close, so a stale id may alias a newer session; treat
  /// ids as owned capabilities, not stable names.
  using SessionId = size_t;

  struct Options {
    PsrOptions psr;

    /// Execution mode: num_threads > 1 shards the base scan and every
    /// session replay by rank range, fans the TP passes per rung, and
    /// lets RefreshAll run whole sessions concurrently -- all on ONE
    /// shared pool. Per-session state stays bitwise identical to the
    /// sequential default.
    ExecOptions exec;

    /// Initial PSR checkpoint cadence of the shared scan (see
    /// PsrEngine::Create).
    size_t checkpoint_interval = PsrEngine::kInitialCheckpointInterval;
  };

  /// Runs the one shared scan + TP pass over `base` (compacting it first
  /// if it carries tombstones) and readies the pool for OpenSession.
  static Result<SessionPool> Create(ProbabilisticDatabase base,
                                    const KLadder& ladder,
                                    const Options& options);
  static Result<SessionPool> Create(ProbabilisticDatabase base,
                                    const KLadder& ladder) {
    return Create(std::move(base), ladder, Options());
  }

  /// Single-k convenience.
  static Result<SessionPool> Create(ProbabilisticDatabase base, size_t k,
                                    const Options& options);
  static Result<SessionPool> Create(ProbabilisticDatabase base, size_t k) {
    return Create(std::move(base), k, Options());
  }

  /// Warm start: reconstructs a serving pool from a snapshot file written
  /// by store/snapshot.h's WriteSnapshot, with ZERO scans -- the base
  /// database, the engine's checkpointed scan state and every saved
  /// session come back bitwise identical to the saved pool. Only
  /// `options.exec` (and the checkpoint cadence for sessions opened
  /// later) is taken from `options`; the logical state -- ladder, PSR
  /// options, checkpoint contents -- comes from the file. Fails with
  /// DataLoss on a truncated, corrupt or version-mismatched file.
  /// (Defined in src/store/snapshot_reader.cc; this declaration keeps the
  /// pool header free of store dependencies.)
  static Result<SessionPool> OpenFromSnapshot(const std::string& path,
                                              const Options& options);
  static Result<SessionPool> OpenFromSnapshot(const std::string& path) {
    return OpenFromSnapshot(path, Options());
  }

  /// The shared base database (never mutated while the pool lives).
  const ProbabilisticDatabase& base() const { return *base_; }

  /// The served ladder (a single rung for single-k pools).
  const KLadder& ladder() const { return engine_.ladder(); }
  size_t num_rungs() const { return engine_.num_rungs(); }

  /// The base TP state of rung `rung` (what a fresh session starts from).
  const TpOutput& base_tp(size_t rung = 0) const { return base_tps_[rung]; }

  /// Admission hooks for the serving front-end (src/serve/): the shared
  /// engine's maintained PSR output for rung `rung`. For a pristine
  /// session this IS the session's state (ForkSession is a memcpy), so
  /// replay-from-checkpoint serving reads base queries straight from
  /// here with zero scans; the rung scan_ends also anchor the cost
  /// model's ScanDepthProbe. Read-only after Create/OpenFromSnapshot.
  const PsrOutput& base_psr(size_t rung = 0) const {
    return engine_.output(rung);
  }

  /// The resolved execution options (Options::exec after ResolveExec):
  /// the ONE executor shared by the base scan, session replays, RefreshAll
  /// and -- through clean/pipeline.h -- in-flight probe batches.
  const ExecOptions& exec() const { return options_.exec; }

  /// Opens a session: forks the shared scan state (a memcpy, no scan).
  /// Never fails on a live pool; returns a handle for every other call.
  SessionId OpenSession() UCLEAN_EXCLUDES(gate_);

  /// Number of currently open sessions.
  size_t num_open() const { return num_open_; }

  /// True when `id` names a currently open session.
  bool is_open(SessionId id) const {
    return id < sessions_.size() && sessions_[id].open;
  }

  /// Collapses `xtuple` to `resolved_id` (negative = entity absent) in
  /// session `id`'s overlay only. State refresh is deferred to Refresh.
  Status ApplyCleanOutcome(SessionId id, XTupleId xtuple, TupleId resolved_id)
      UCLEAN_EXCLUDES(gate_);

  /// Brings session `id`'s PSR + TP state up to date for every outcome
  /// applied since its last Refresh: one suffix replay from the deepest
  /// valid (shared or private) checkpoint + one delta TP pass. No-op when
  /// the session is clean.
  Status Refresh(SessionId id) UCLEAN_EXCLUDES(gate_);

  /// Refreshes EVERY dirty open session, running the per-session
  /// replay + TP work concurrently on Options::exec's pool (sequentially
  /// without one). Sessions only read the shared engine state and write
  /// their own, so the fan-out is race-free by construction and each
  /// session's result is bitwise the result of calling Refresh(id)
  /// itself. Returns the first error encountered (remaining sessions
  /// are still attempted; a failed session stays dirty).
  Status RefreshAll() UCLEAN_EXCLUDES(gate_);

  /// True when outcomes were applied to `id` since its last Refresh.
  bool dirty(SessionId id) const {
    return Slot(id).pending_replay_begin != kNoPending;
  }

  // Accessors mirror CleaningSession: reading a dirty session is a hard
  // failure in every build type (a dirty session would silently serve its
  // pre-clean state).

  /// Session `id`'s view of the database (base + its own outcomes).
  const DatabaseOverlay& overlay(SessionId id) const {
    return Slot(id).overlay;
  }

  /// Maintained PSR state of rung `rung`. Requires !dirty(id).
  const PsrOutput& psr(SessionId id, size_t rung = 0) const {
    const Session& s = Slot(id);
    UCLEAN_CHECK(s.pending_replay_begin == kNoPending);
    return s.scan.output(rung);
  }

  /// Maintained TP quality state of rung `rung`. Requires !dirty(id).
  const TpOutput& tp(SessionId id, size_t rung = 0) const {
    const Session& s = Slot(id);
    UCLEAN_CHECK(s.pending_replay_begin == kNoPending);
    UCLEAN_DCHECK(rung < s.tps.size());
    return s.tps[rung];
  }

  /// All per-rung TP states, ladder order. Requires !dirty(id).
  const std::vector<TpOutput>& tps(SessionId id) const {
    const Session& s = Slot(id);
    UCLEAN_CHECK(s.pending_replay_begin == kNoPending);
    return s.tps;
  }

  /// Current PWS-quality S(D,Q) at rung `rung`. Requires !dirty(id).
  double quality(SessionId id, size_t rung = 0) const {
    const Session& s = Slot(id);
    UCLEAN_CHECK(s.pending_replay_begin == kNoPending);
    UCLEAN_DCHECK(rung < s.tps.size());
    return s.tps[rung].quality;
  }

  /// Materializes the session's outcomes into a standalone compacted
  /// database (base + this session's cleans) and closes the session. The
  /// pool and every other session are unaffected. Works on dirty sessions
  /// (materialization needs only the recorded outcomes).
  Result<ProbabilisticDatabase> CloseAndMerge(SessionId id)
      UCLEAN_EXCLUDES(gate_);

  /// Discards the session's overlay and state, freeing the slot.
  Status Close(SessionId id) UCLEAN_EXCLUDES(gate_);

 private:
  // The snapshot store (store/snapshot.h) serializes the whole pool --
  // base, engine, slot table, free list -- and reassembles it for
  // OpenFromSnapshot without touching the public (scanning) Create path.
  friend class SnapshotAccess;

  static constexpr size_t kNoPending = static_cast<size_t>(-1);

  struct Session {
    bool open = false;
    DatabaseOverlay overlay;
    PsrEngine::SessionState scan;
    std::vector<TpOutput> tps;
    size_t pending_replay_begin = kNoPending;
  };

  SessionPool() = default;

  /// Refresh body inside a caller-opened gate window, shared by Refresh
  /// and RefreshAll's fan-out (whose worker tasks run under the caller's
  /// window and state that fact with gate_.AssertHeld()). Touches only
  /// `session`'s state plus the read-only shared engine.
  Status RefreshSession(Session* session) UCLEAN_REQUIRES(gate_);

  const Session& Slot(SessionId id) const {
    UCLEAN_CHECK(id < sessions_.size() && sessions_[id].open);
    return sessions_[id];
  }

  /// OK iff `id` names an open session (Status form for mutating calls).
  Status CheckOpen(SessionId id) const;

  // The base lives behind a stable pointer so the overlays' back-pointers
  // survive moves of the pool itself.
  std::unique_ptr<ProbabilisticDatabase> base_;
  PsrEngine engine_;
  std::vector<TpOutput> base_tps_;
  std::vector<Session> sessions_;    // slot table; closed slots are reused
  std::vector<size_t> free_slots_;
  size_t num_open_ = 0;
  Options options_;

  // Serialized-caller capability (see the header comment): every
  // mutating public call opens a ScopedSerialCall window; two
  // overlapping calls trip a hard UCLEAN_CHECK in debug builds and the
  // Clang thread-safety build rejects reentrant entry statically.
  mutable SerialGate gate_;
};

}  // namespace uclean

#endif  // UCLEAN_CLEAN_SESSION_POOL_H_
