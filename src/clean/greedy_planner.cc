// Greedy value-per-cost planner (Section V-D.4): a heap of the next
// marginal probe of every x-tuple, ordered by gamma_{l,j} = b(l,j) / c_l.
// Because b(l,j) decreases in j (Lemma 4), pushing probe j+1 only after
// taking probe j keeps the heap's top the globally best remaining item.

#include <queue>
#include <vector>

#include "clean/planners.h"

namespace uclean {

namespace {

struct HeapItem {
  double score = 0.0;     // gamma_{l,j}
  double marginal = 0.0;  // b(l,j)
  int32_t xtuple = 0;
  int64_t probe = 1;      // j

  bool operator<(const HeapItem& other) const {
    return score < other.score;  // max-heap on gamma
  }
};

}  // namespace

Result<CleaningPlan> PlanGreedy(const CleaningProblem& problem) {
  UCLEAN_RETURN_IF_ERROR(problem.Validate());

  CleaningPlan plan;
  plan.probes.assign(problem.num_xtuples(), 0);

  std::priority_queue<HeapItem> heap;
  for (size_t l = 0; l < problem.num_xtuples(); ++l) {
    if (problem.cost[l] > problem.budget) continue;
    const double b1 = problem.MarginalValue(l, 1);
    if (b1 <= 0.0) continue;  // Lemma 5: zero-gain x-tuples cannot help
    heap.push(HeapItem{b1 / static_cast<double>(problem.cost[l]), b1,
                       static_cast<int32_t>(l), 1});
  }

  int64_t remaining = problem.budget;
  while (!heap.empty() && remaining > 0) {
    const HeapItem item = heap.top();
    heap.pop();
    const int64_t cost = problem.cost[item.xtuple];
    if (cost > remaining) continue;  // never affordable again: drop for good
    remaining -= cost;
    plan.probes[item.xtuple] = item.probe;
    plan.expected_improvement += item.marginal;

    const double next = item.marginal * (1.0 - problem.sc_prob[item.xtuple]);
    if (next > 0.0) {
      heap.push(HeapItem{next / static_cast<double>(cost), next, item.xtuple,
                         item.probe + 1});
    }
  }

  plan.total_cost = problem.budget - remaining;
  // Recompute through the closed form for a drift-free report.
  plan.expected_improvement = ExpectedImprovement(problem, plan.probes);
  return plan;
}

}  // namespace uclean
