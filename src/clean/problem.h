// The budgeted cleaning problem (Section V).
//
// A cleaning operation pclean(tau_l) (Definition 5) costs c_l units and
// succeeds with sc-probability P_l; success collapses tau_l to one certain
// tuple drawn from its existential distribution. Performing it M_l times
// succeeds with probability 1 - (1-P_l)^{M_l}, and by Theorem 2 the expected
// quality improvement of a whole plan decomposes per x-tuple:
//
//   I(X, M, D, Q) = - sum_{tau_l in X} (1 - (1-P_l)^{M_l}) * g(l, D)
//
// with g(l,D) = sum_{t_i in tau_l} omega_i p_i from the TP quality pass.
// The j-th probe of tau_l therefore contributes the marginal value
// b(l,j) = -(1-P_l)^{j-1} P_l g(l,D) (Eq. 21), which decreases
// geometrically in j (Lemma 4) -- the structure every planner exploits.
//
// Threading: plain value types and pure functions. MakeCleaningProblem
// only reads its inputs; concurrent calls are safe as long as nobody is
// mutating the database/TP state they read (for pooled sessions: call it
// under the pool's serialized-caller rule, the way clean/pipeline.h
// does on the caller thread between submissions).

#ifndef UCLEAN_CLEAN_PROBLEM_H_
#define UCLEAN_CLEAN_PROBLEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/database.h"
#include "quality/tp.h"

namespace uclean {

/// Per-x-tuple cleaning cost and success probability.
struct CleaningProfile {
  std::vector<int64_t> costs;    ///< c_l >= 1, integer (Section V-A)
  std::vector<double> sc_probs;  ///< P_l in [0, 1]

  /// Checks the profile matches a database with `num_xtuples` x-tuples and
  /// every entry is in range.
  Status Validate(size_t num_xtuples) const;
};

/// A self-contained instance of the cleaning optimization problem
/// (Definition 7): everything a planner needs, detached from the database.
struct CleaningProblem {
  /// g(l,D) per x-tuple (<= 0); -gain is the expected improvement of
  /// cleaning the x-tuple with certainty.
  std::vector<double> gain;

  /// Per-x-tuple summed top-k probability of its members (RandP's
  /// selection weights, Section V-D.3).
  std::vector<double> topk_mass;

  std::vector<int64_t> cost;    ///< c_l per x-tuple
  std::vector<double> sc_prob;  ///< P_l per x-tuple
  int64_t budget = 0;           ///< C

  size_t num_xtuples() const { return gain.size(); }

  /// Validates sizes, ranges and budget non-negativity.
  Status Validate() const;

  /// Marginal value of the j-th probe of x-tuple l (Eq. 21), j >= 1.
  double MarginalValue(size_t l, int64_t j) const;

  /// Expected improvement of probing x-tuple l exactly `probes` times
  /// (the term G(l,D,j) of Section V-B).
  double XTupleImprovement(size_t l, int64_t probes) const;
};

/// A solution: how many times to probe each x-tuple.
struct CleaningPlan {
  std::vector<int64_t> probes;          ///< M_l per x-tuple (0 = untouched)
  double expected_improvement = 0.0;    ///< I(X, M, D, Q), Theorem 2
  int64_t total_cost = 0;               ///< sum of M_l * c_l

  /// Number of x-tuples with at least one probe (|X|).
  size_t num_selected() const;

  std::string ToString() const;
};

/// Theorem-2 closed form: expected improvement of `probes` on `problem`.
double ExpectedImprovement(const CleaningProblem& problem,
                           const std::vector<int64_t>& probes);

/// Total cost of `probes` under the problem's cost vector.
int64_t PlanCost(const CleaningProblem& problem,
                 const std::vector<int64_t>& probes);

/// Builds a CleaningProblem for a top-k query on `db`: runs the PSR + TP
/// pipeline to obtain the g(l,D) table and per-x-tuple top-k masses
/// (the paper's precomputed lookup table, Section VI-C).
Result<CleaningProblem> MakeCleaningProblem(const ProbabilisticDatabase& db,
                                            size_t k,
                                            const CleaningProfile& profile,
                                            int64_t budget);

/// Builds a CleaningProblem from an already-computed TP pass (e.g. the
/// state a CleaningSession maintains incrementally), so adaptive rounds
/// never re-run PSR just to plan. `tp` must describe the database the
/// profile was generated for.
Result<CleaningProblem> MakeCleaningProblem(const TpOutput& tp,
                                            const CleaningProfile& profile,
                                            int64_t budget);

/// Weight of rung `j` in the ladder-aggregate objective sum_j w_j S_j:
/// uniform 1/rungs when `weights` is empty, weights[j] otherwise. The one
/// shared definition behind the planner aggregate (the ladder
/// MakeCleaningProblem below) and every quality report (adaptive loop,
/// session-pool CLI), so the optimized objective and the reported number
/// can never drift.
double LadderRungWeight(const std::vector<double>& weights, size_t rungs,
                        size_t j);

/// Ladder form: plans against a weighted aggregate of the per-rung gain
/// tables of a k-ladder session. With weights w_j >= 0 the aggregated gain
/// g(l) = sum_j w_j g_j(l) is the expected improvement of the weighted
/// ladder objective sum_j w_j S_j(D,Q) -- Theorem 2 is linear in the
/// quality, so the per-x-tuple decomposition survives aggregation and
/// every planner applies unchanged. Pass empty `weights` for the uniform
/// mean (each rung weighted 1/L); a single-rung ladder with uniform
/// weights degenerates to the single-k problem exactly. Fails with
/// InvalidArgument when `tps` is empty, weights mismatch or are negative,
/// or all weights are zero.
Result<CleaningProblem> MakeCleaningProblem(const std::vector<TpOutput>& tps,
                                            const std::vector<double>& weights,
                                            const CleaningProfile& profile,
                                            int64_t budget);

}  // namespace uclean

#endif  // UCLEAN_CLEAN_PROBLEM_H_
