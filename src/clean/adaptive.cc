#include "clean/adaptive.h"

#include <optional>
#include <utility>

#include "clean/fault.h"
#include "clean/session.h"
#include "quality/tp.h"

namespace uclean {

namespace {

/// The planning-objective quality: the same weighted aggregate of per-rung
/// qualities the planner optimizes (LadderRungWeight is the single shared
/// weight definition), so predicted improvements and realized quality
/// deltas are directly comparable. Reduces to the plain quality for
/// single-k runs under uniform weights.
double AggregateQuality(const CleaningSession& session,
                        const std::vector<double>& weights) {
  const size_t rungs = session.num_rungs();
  double total = 0.0;
  for (size_t j = 0; j < rungs; ++j) {
    total += LadderRungWeight(weights, rungs, j) * session.quality(j);
  }
  return total;
}

void FillPerRung(const CleaningSession& session, std::vector<double>* out) {
  out->clear();
  for (size_t j = 0; j < session.num_rungs(); ++j) {
    out->push_back(session.quality(j));
  }
}

}  // namespace

Result<AdaptiveReport> RunAdaptiveCleaning(ProbabilisticDatabase&& db,
                                           const CleaningProfile& profile,
                                           int64_t budget,
                                           const AdaptiveOptions& options,
                                           Rng* rng) {
  UCLEAN_RETURN_IF_ERROR(profile.Validate(db.num_xtuples()));

  Result<KLadder> ladder = KLadder::Of(
      options.k_ladder.empty() ? std::vector<size_t>{options.k}
                               : options.k_ladder);
  if (!ladder.ok()) return ladder.status();
  if (!options.plan_weights.empty()) {
    // Weights bind positionally to the NORMALIZED (ascending, deduped)
    // ladder; reject input Of() had to reorder or shrink, where the
    // caller's positional intent would silently land on the wrong rungs.
    if (!options.k_ladder.empty() && options.k_ladder != ladder->ks) {
      return Status::InvalidArgument(
          "plan weights require a strictly ascending k-ladder (weights "
          "bind by position; ladder " +
          ladder->ToString() + " was reordered from the input)");
    }
    if (options.plan_weights.size() != ladder->size()) {
      return Status::InvalidArgument(
          "plan weights must match the k-ladder length");
    }
  }

  std::optional<FaultInjector> injector;
  ProbeOptions probe_options;
  if (options.fault.enabled) {
    UCLEAN_RETURN_IF_ERROR(options.fault.Validate());
    injector.emplace(options.fault);
    probe_options.fault = &*injector;
  }

  CleaningSession::Options session_options;
  session_options.exec = options.exec;
  Result<CleaningSession> session =
      CleaningSession::Start(std::move(db), *ladder, session_options);
  if (!session.ok()) return session.status();

  AdaptiveReport report;
  report.ladder = ladder->ks;
  report.initial_quality = AggregateQuality(*session, options.plan_weights);
  report.final_quality = report.initial_quality;
  FillPerRung(*session, &report.initial_quality_per_k);
  report.final_quality_per_k = report.initial_quality_per_k;

  int64_t remaining = budget;
  for (size_t round = 0; round < options.max_rounds && remaining > 0;
       ++round) {
    // The session's TP state serves double duty: it is this round's
    // planning table AND the previous round's quality report, so the
    // whole round performs at most one (partial) PSR pass however many
    // rungs the ladder has.
    Result<CleaningProblem> problem = MakeCleaningProblem(
        session->tps(), options.plan_weights, profile, remaining);
    if (!problem.ok()) return problem.status();
    // Degradation: sources with an open breaker cannot answer this round,
    // so their gain is masked and the planner reinvests the budget in the
    // members that can still improve the query.
    MaskUnavailableSources(probe_options.fault, &*problem);
    Result<CleaningPlan> plan =
        RunPlanner(options.planner, *problem, rng, options.dp_options);
    if (!plan.ok()) return plan.status();
    if (plan->total_cost == 0 || plan->expected_improvement <= 0.0) {
      // Nothing probeable right now. If that is only because breakers are
      // cooling down, wait one cooldown out (simulated) and re-plan; with
      // no blocked sources the campaign is genuinely done.
      if (injector && injector->num_open_sources() > 0) {
        injector->AdvanceClock(options.fault.breaker.cooldown_us);
        continue;
      }
      break;
    }

    Result<SessionExecutionReport> executed =
        ExecutePlan(&*session, profile, plan->probes, rng, probe_options);
    if (!executed.ok()) return executed.status();
    // A round that spent nothing AND had nothing blocked by faults made no
    // progress and never will; a blocked round keeps going -- its budget
    // is still unspent and the blocked sources may recover.
    if (executed->spent == 0 && executed->faults.BlockedProbes() == 0) break;

    UCLEAN_RETURN_IF_ERROR(session->Refresh());
    remaining -= executed->spent;
    report.total_spent += executed->spent;
    report.final_quality = AggregateQuality(*session, options.plan_weights);
    FillPerRung(*session, &report.final_quality_per_k);

    AdaptiveRound summary;
    summary.budget_before = remaining + executed->spent;
    summary.predicted_improvement = plan->expected_improvement;
    summary.spent = executed->spent;
    summary.successes = executed->successes;
    summary.quality_after = report.final_quality;
    summary.quality_after_per_k = report.final_quality_per_k;
    summary.faults = executed->faults;
    report.faults += executed->faults;
    report.rounds.push_back(summary);
  }
  report.final_db = std::move(*session).TakeDatabase();
  return report;
}

Result<AdaptiveReport> RunAdaptiveCleaning(const ProbabilisticDatabase& db,
                                           const CleaningProfile& profile,
                                           int64_t budget,
                                           const AdaptiveOptions& options,
                                           Rng* rng) {
  return RunAdaptiveCleaning(ProbabilisticDatabase(db), profile, budget,
                             options, rng);
}

}  // namespace uclean
