#include "clean/adaptive.h"

#include <utility>

#include "clean/session.h"
#include "quality/tp.h"

namespace uclean {

Result<AdaptiveReport> RunAdaptiveCleaning(ProbabilisticDatabase&& db,
                                           const CleaningProfile& profile,
                                           int64_t budget,
                                           const AdaptiveOptions& options,
                                           Rng* rng) {
  UCLEAN_RETURN_IF_ERROR(profile.Validate(db.num_xtuples()));

  Result<CleaningSession> session =
      CleaningSession::Start(std::move(db), options.k);
  if (!session.ok()) return session.status();

  AdaptiveReport report;
  report.initial_quality = session->quality();
  report.final_quality = report.initial_quality;

  int64_t remaining = budget;
  for (size_t round = 0; round < options.max_rounds && remaining > 0;
       ++round) {
    // The session's TP state serves double duty: it is this round's
    // planning table AND the previous round's quality report, so the
    // whole round performs at most one (partial) PSR pass.
    Result<CleaningProblem> problem =
        MakeCleaningProblem(session->tp(), profile, remaining);
    if (!problem.ok()) return problem.status();
    Result<CleaningPlan> plan =
        RunPlanner(options.planner, *problem, rng, options.dp_options);
    if (!plan.ok()) return plan.status();
    if (plan->total_cost == 0 || plan->expected_improvement <= 0.0) break;

    Result<SessionExecutionReport> executed =
        ExecutePlan(&*session, profile, plan->probes, rng);
    if (!executed.ok()) return executed.status();
    if (executed->spent == 0) break;  // nothing was affordable after all

    UCLEAN_RETURN_IF_ERROR(session->Refresh());
    remaining -= executed->spent;
    report.total_spent += executed->spent;
    report.final_quality = session->quality();

    AdaptiveRound summary;
    summary.budget_before = remaining + executed->spent;
    summary.predicted_improvement = plan->expected_improvement;
    summary.spent = executed->spent;
    summary.successes = executed->successes;
    summary.quality_after = report.final_quality;
    report.rounds.push_back(summary);
  }
  report.final_db = std::move(*session).TakeDatabase();
  return report;
}

Result<AdaptiveReport> RunAdaptiveCleaning(const ProbabilisticDatabase& db,
                                           const CleaningProfile& profile,
                                           int64_t budget,
                                           const AdaptiveOptions& options,
                                           Rng* rng) {
  return RunAdaptiveCleaning(ProbabilisticDatabase(db), profile, budget,
                             options, rng);
}

}  // namespace uclean
