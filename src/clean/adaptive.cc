#include "clean/adaptive.h"

#include "quality/tp.h"

namespace uclean {

Result<AdaptiveReport> RunAdaptiveCleaning(const ProbabilisticDatabase& db,
                                           const CleaningProfile& profile,
                                           int64_t budget,
                                           const AdaptiveOptions& options,
                                           Rng* rng) {
  AdaptiveReport report;
  Result<TpOutput> initial = ComputeTpQuality(db, options.k);
  if (!initial.ok()) return initial.status();
  report.initial_quality = initial->quality;
  report.final_quality = initial->quality;

  ProbabilisticDatabase current = db;
  int64_t remaining = budget;
  for (size_t round = 0; round < options.max_rounds && remaining > 0;
       ++round) {
    Result<CleaningProblem> problem =
        MakeCleaningProblem(current, options.k, profile, remaining);
    if (!problem.ok()) return problem.status();
    Result<CleaningPlan> plan =
        RunPlanner(options.planner, *problem, rng, options.dp_options);
    if (!plan.ok()) return plan.status();
    if (plan->total_cost == 0 || plan->expected_improvement <= 0.0) break;

    Result<ExecutionReport> executed =
        ExecutePlan(current, profile, plan->probes, rng);
    if (!executed.ok()) return executed.status();
    if (executed->spent == 0) break;  // nothing was affordable after all

    current = std::move(executed->cleaned_db);
    remaining -= executed->spent;
    report.total_spent += executed->spent;

    Result<TpOutput> quality = ComputeTpQuality(current, options.k);
    if (!quality.ok()) return quality.status();
    report.final_quality = quality->quality;

    AdaptiveRound summary;
    summary.budget_before = remaining + executed->spent;
    summary.predicted_improvement = plan->expected_improvement;
    summary.spent = executed->spent;
    summary.successes = executed->successes;
    summary.quality_after = quality->quality;
    report.rounds.push_back(summary);
  }
  report.final_db = std::move(current);
  return report;
}

}  // namespace uclean
