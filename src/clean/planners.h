// The four cleaning planners of Section V-D.
//
// All planners return a CleaningPlan whose total cost never exceeds the
// problem's budget.
//
// * PlanDp      -- exact optimum. The problem is a 0/1 knapsack over the
//                  marginal probe items (l, j) with value b(l,j) and cost
//                  c_l (Theorem 3). Two exact engines are provided:
//                  kItems replays the paper's item-by-item dynamic program
//                  (O(C^2 |Z|) as measured in Figure 6(d)); kConcave
//                  exploits that every x-tuple's value sequence is concave
//                  (Lemma 4), so each x-tuple group is a concave (max,+)
//                  convolution solvable with divide-and-conquer argmax
//                  monotonicity in O(C log C) per group -- same optimum,
//                  orders of magnitude faster at large budgets (this is our
//                  extension; the ablation bench quantifies it).
// * PlanGreedy  -- value-per-cost heap (gamma_{l,j} = b(l,j)/c_l);
//                  close-to-optimal knapsack heuristic, O(C|Z| log |Z|).
// * PlanRandP   -- random probes over the candidate set Z, x-tuples
//                  weighted by their top-k probability mass; with
//                  replacement until the budget is spent.
// * PlanRandU   -- random probes, uniform over the candidate set Z; the
//                  fairness baseline.
//
// The random planners draw only among currently *affordable* x-tuples
// (cost <= remaining budget); they stop when nothing is affordable. This
// realizes the paper's "with replacement until the budget is exhausted"
// without non-terminating rejection loops.
//
// Threading: every planner is a pure function of (problem, rng) --
// concurrent calls on distinct arguments are safe, and a call may run on
// an exec pool worker. Two calls must never share an Rng: the randomized
// planners advance it, and even the deterministic ones sit in loops
// (clean/pipeline.h) whose per-session stream ordering is part of the
// reproducibility contract.

#ifndef UCLEAN_CLEAN_PLANNERS_H_
#define UCLEAN_CLEAN_PLANNERS_H_

#include "clean/problem.h"
#include "common/rng.h"
#include "common/status.h"

namespace uclean {

/// Exact-DP engine selection.
enum class DpMode {
  kItems,    ///< the paper's O(C^2 |Z|) item dynamic program
  kConcave,  ///< concave-group divide-and-conquer, O(|Z| C log C), same optimum
};

/// Options for PlanDp.
struct DpOptions {
  DpMode mode = DpMode::kConcave;

  /// Drop marginal items with b(l,j) below this value. 0 keeps everything
  /// (fully exact); a tiny epsilon (e.g. 1e-12) bounds the error by
  /// N*epsilon while capping the geometric item tails, which is what makes
  /// the paper's C = 10^5 sweep tractable for the kItems engine.
  double value_epsilon = 0.0;
};

/// Optimal plan (Section V-D.1). Fails only on invalid problems.
Result<CleaningPlan> PlanDp(const CleaningProblem& problem,
                            const DpOptions& options = {});

/// Greedy value-per-cost plan (Section V-D.4).
Result<CleaningPlan> PlanGreedy(const CleaningProblem& problem);

/// Uniform random plan (Section V-D.2). Deterministic given `rng`'s seed.
Result<CleaningPlan> PlanRandU(const CleaningProblem& problem, Rng* rng);

/// Top-k-probability weighted random plan (Section V-D.3).
Result<CleaningPlan> PlanRandP(const CleaningProblem& problem, Rng* rng);

/// Planner selector used by harnesses that sweep all four algorithms.
enum class PlannerKind { kDp, kGreedy, kRandP, kRandU };

/// Human-readable planner name ("DP", "Greedy", ...).
const char* PlannerKindName(PlannerKind kind);

/// Dispatches to the chosen planner (rng may be nullptr for DP/Greedy).
Result<CleaningPlan> RunPlanner(PlannerKind kind,
                                const CleaningProblem& problem, Rng* rng,
                                const DpOptions& dp_options = {});

}  // namespace uclean

#endif  // UCLEAN_CLEAN_PLANNERS_H_
