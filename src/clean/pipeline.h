// Pipelined adaptive cleaning over a SessionPool: overlap agent probes
// with planning and commit each round through one concurrent RefreshAll.
//
// The paper's adaptive loop (Section V-A) is strictly serial per analyst:
// plan -> probe -> refresh, repeat. After the sharded-scan work a round's
// state refresh is a sub-millisecond suffix replay, which leaves probe
// LATENCY -- the agent waiting on sources in the field -- as the round's
// wall clock. This driver restructures one pool round so that waiting
// overlaps with everything else:
//
//   1. PLAN + SUBMIT, session order: plan session s from its refreshed
//      state, then hand the probe batch to the exec pool (SubmitProbes)
//      and move on. While the caller plans session s+1, batches
//      0..s are already drawing on workers -- probes are pure draws
//      against each session's own DatabaseOverlay, so batches for all
//      sessions run concurrently, race-free by construction.
//   2. WAIT + COMMIT, fixed session order: take each batch's draws and
//      apply them on the caller thread under the pool's
//      serialized-caller contract. Waiting on batch s overlaps with
//      batches s+1..N-1 still drawing.
//   3. One RefreshAll commits the round: every dirty session's suffix
//      replay + delta TP pass, fanned over the same executor.
//
// DETERMINISM. Pipelined state is BITWISE equal to the serial loop
// (PipelineOptions::overlap = false), whatever the completion order of
// the in-flight batches:
//  * every session draws from its own seeded Rng stream, consumed in the
//    same order as inline execution (plan draws, then probe draws, per
//    round -- see clean/agent.h on why deferring commits does not move
//    the stream);
//  * a draw reads only its session's overlay, which nothing mutates
//    while the batch is in flight;
//  * commits and refreshes run in fixed session order on the caller.
// tests/pipeline_test.cc holds per-session quality, probe logs and Rng
// engine state bitwise equal under seeded shuffles of completion order;
// bench_pipeline measures the overlap win on the probe-latency regime.
//
// Threading contract: RunPipelinedCleaning is a serialized-caller entry
// point like every SessionPool mutator -- one thread drives it, and the
// pool must not be touched by anyone else until it returns. All
// parallelism (probe batches, sharded replays, RefreshAll fan-out) stays
// INSIDE the call, on the pool's own executor.

#ifndef UCLEAN_CLEAN_PIPELINE_H_
#define UCLEAN_CLEAN_PIPELINE_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "clean/adaptive.h"
#include "clean/agent.h"
#include "clean/planners.h"
#include "clean/session_pool.h"
#include "common/rng.h"
#include "common/status.h"

namespace uclean {

/// Options for the pipelined pool round loop.
struct PipelineOptions {
  PlannerKind planner = PlannerKind::kGreedy;
  DpOptions dp_options;

  /// Per-session round cap; defaults to the adaptive loop's own cap
  /// (read from it, not duplicated) so pooled and dedicated paths can
  /// never drift apart.
  size_t max_rounds = AdaptiveOptions().max_rounds;

  /// Per-rung planning weights for the ladder aggregate (empty =
  /// uniform), positional on the pool's ladder.
  std::vector<double> plan_weights;

  /// True (default) overlaps probe batches with planning as described in
  /// the header; false runs the exact same code path with every draw
  /// inline on the caller -- the serial reference the equivalence tests
  /// and bench compare against.
  bool overlap = true;

  /// Probe-loop knobs (simulated per-probe latency) applied to every
  /// session's batches. ProbeOptions::fault is ignored here: fault
  /// injection is configured through `fault` below, which gives every
  /// session its own injector (a shared one would couple the sessions'
  /// fault streams and break the serial/pipelined equivalence).
  ProbeOptions probe;

  /// Fault injection + retry/deadline/breaker policy (clean/fault.h).
  /// When enabled, session s draws faults from a dedicated injector
  /// seeded `fault.seed + s` -- the same per-session stream convention as
  /// the probe Rngs -- so serial and pipelined campaigns with equal seeds
  /// commit identical outcomes at any fail rate.
  FaultOptions fault;

  /// Caller-owned injectors, one per session id, overriding the internal
  /// fault.seed + s construction above (used with fault.enabled; must
  /// then have exactly one entry per id). The loop consumes them exactly
  /// as it would its own, and they survive the call -- which is what lets
  /// the snapshot store capture mid-campaign breaker/clock/stream state:
  /// run part of a campaign with external injectors, save their
  /// SaveState alongside the session Rngs, and a resumed run (restored
  /// injectors + spent_so_far below) continues the exact fault stream.
  /// Not owned; must outlive the call.
  std::vector<FaultInjector>* injectors = nullptr;

  /// Budget already spent per session (positional on `ids`; empty means
  /// none). Session s probes with `budget - spent_so_far[s]` remaining,
  /// which is how a resumed campaign carries differing per-session
  /// spends forward. The returned report still counts only THIS call's
  /// activity; the resuming caller merges it with the saved progress.
  /// For deterministic planners (greedy, DP) a save/resume split at a
  /// round boundary commits bitwise the outcomes of the uninterrupted
  /// run; the randomized planners (randu, randp) would consume one extra
  /// planning draw on sessions that finish before the split, so resumed
  /// determinism is only guaranteed for the deterministic planners.
  std::vector<int64_t> spent_so_far;

  /// Test hook: extra per-probe latency added for session s (index into
  /// this vector; missing entries add nothing). Seeded shuffles of this
  /// vector permute batch COMPLETION order without touching any session's
  /// draw stream -- how pipeline_test drives the determinism claim.
  std::vector<std::chrono::microseconds> session_latency_jitter;
};

/// One session's campaign summary.
struct PipelineSessionReport {
  int64_t spent = 0;
  int64_t leftover = 0;
  size_t successes = 0;
  size_t rounds = 0;  ///< rounds in which this session executed probes
  /// Concatenated probe log, round order (the equivalence fingerprint).
  std::vector<ProbeRecord> log;
  /// Final per-rung qualities, ladder order (refreshed).
  std::vector<double> final_quality;
  /// Campaign-wide fault counters of this session's probe loop (all zero
  /// unless PipelineOptions::fault is enabled).
  FaultStats faults;
};

/// Outcome of a pipelined (or serial-reference) pool campaign.
struct PipelineReport {
  size_t rounds = 0;  ///< rounds in which any session executed probes
  std::vector<PipelineSessionReport> sessions;  ///< one per id, in order
};

/// Runs the adaptive plan/probe/refresh loop for the open sessions `ids`
/// of `pool`, each with its own budget `budget` and its own Rng
/// (*rngs)[s] -- rngs must have one entry per id and outlives the call.
/// Sessions must be open and clean (refreshed); they are left open and
/// clean, so the caller can inspect pool state or CloseAndMerge
/// afterwards. Probe batches run on the pool's own executor
/// (SessionPool::exec()); with a sequential executor the overlap mode
/// degrades to inline draws.
Result<PipelineReport> RunPipelinedCleaning(
    SessionPool* pool, const std::vector<SessionPool::SessionId>& ids,
    const CleaningProfile& profile, int64_t budget, std::vector<Rng>* rngs,
    const PipelineOptions& options);

}  // namespace uclean

#endif  // UCLEAN_CLEAN_PIPELINE_H_
