// CleaningSession: the mutable view of a database under adaptive cleaning.
//
// The paper's adaptive loop (Section V-A extension) re-plans after every
// round of probes. A naive round deep-copies the database, rebuilds it
// through DatabaseBuilder (O(n log n)) and re-runs the full O(kn) PSR scan
// twice -- once to build the next CleaningProblem and once for the quality
// report. A successful pclean is however a tiny update: one x-tuple
// collapses to a certain tuple and no other tuple's rank moves. The
// session therefore owns one database mutated in place
// (ApplyCleanOutcome, tombstone + lazy compaction), one PsrEngine whose
// checkpointed scan replays only the suffix below the shallowest change,
// and one TpOutput brought forward by the delta pass (UpdateTpQuality).
//
// Outcomes are applied eagerly to the database but state refresh is
// batched: a round of cleans costs one partial PSR replay + one delta TP
// pass, however many x-tuples were cleaned. Call Refresh() after the
// round (the psr()/tp()/quality() accessors require a clean state), then
// read tp() to plan the next round -- MakeCleaningProblem has an overload
// that consumes it directly, so the adaptive loop runs at most one
// (partial) PSR pass per round. All maintained state is bitwise identical
// to recomputing from scratch on the cleaned database.

#ifndef UCLEAN_CLEAN_SESSION_H_
#define UCLEAN_CLEAN_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/check.h"
#include "common/status.h"
#include "model/database.h"
#include "quality/tp.h"
#include "rank/psr.h"
#include "rank/psr_engine.h"

namespace uclean {

class CleaningSession {
 public:
  struct Options {
    PsrOptions psr;

    /// Initial PSR checkpoint cadence (see PsrEngine::Create).
    size_t checkpoint_interval = PsrEngine::kInitialCheckpointInterval;

    /// Lazy-compaction trigger: tombstoned slots are reclaimed during
    /// Refresh once their count exceeds `compact_min_tombstones` AND the
    /// fraction `compact_min_fraction` of all slots. Compaction is pure
    /// bookkeeping (a monotone index remap); results are unaffected.
    size_t compact_min_tombstones = 1024;
    double compact_min_fraction = 0.25;
  };

  /// Starts a session over `db` (one full PSR + TP pass). Move the
  /// database in when the caller no longer needs its copy.
  static Result<CleaningSession> Start(ProbabilisticDatabase db, size_t k,
                                       const Options& options);
  static Result<CleaningSession> Start(ProbabilisticDatabase db, size_t k) {
    return Start(std::move(db), k, Options());
  }

  /// The session database. May contain tombstoned slots between rounds;
  /// rank indices are stable until compaction (which only Refresh and
  /// TakeDatabase perform).
  const ProbabilisticDatabase& db() const { return db_; }

  size_t k() const { return engine_.k(); }

  /// True when outcomes were applied since the last Refresh.
  bool dirty() const { return pending_replay_begin_ != kNoPending; }

  /// Maintained PSR state. Requires !dirty().
  const PsrOutput& psr() const {
    UCLEAN_DCHECK(!dirty());
    return engine_.output();
  }

  /// Maintained TP quality state. Requires !dirty().
  const TpOutput& tp() const {
    UCLEAN_DCHECK(!dirty());
    return tp_;
  }

  /// Current PWS-quality S(D,Q). Requires !dirty().
  double quality() const {
    UCLEAN_DCHECK(!dirty());
    return tp_.quality;
  }

  /// Collapses `xtuple` to the certain outcome `resolved_id` (negative =
  /// entity absent) in place; see ProbabilisticDatabase::ApplyCleanOutcome.
  /// State refresh is deferred to Refresh().
  Status ApplyCleanOutcome(XTupleId xtuple, TupleId resolved_id);

  /// Brings PSR + TP state up to date for every outcome applied since the
  /// last Refresh: at most one compaction, one partial PSR replay and one
  /// delta TP pass. No-op when !dirty().
  Status Refresh();

  /// Compacts and returns the database, ending the session.
  ProbabilisticDatabase TakeDatabase() &&;

 private:
  static constexpr size_t kNoPending = static_cast<size_t>(-1);

  CleaningSession() = default;

  ProbabilisticDatabase db_;
  PsrEngine engine_;
  TpOutput tp_;
  Options options_;
  size_t pending_replay_begin_ = kNoPending;
};

}  // namespace uclean

#endif  // UCLEAN_CLEAN_SESSION_H_
