// CleaningSession: the mutable view of a database under adaptive cleaning,
// serving one k or a whole ladder of k values from one shared engine.
//
// The paper's adaptive loop (Section V-A extension) re-plans after every
// round of probes. A naive round deep-copies the database, rebuilds it
// through DatabaseBuilder (O(n log n)) and re-runs the full O(kn) PSR scan
// twice -- once to build the next CleaningProblem and once for the quality
// report. A successful pclean is however a tiny update: one x-tuple
// collapses to a certain tuple and no other tuple's rank moves. The
// session therefore owns one database mutated in place
// (ApplyCleanOutcome, tombstone + lazy compaction), one PsrEngine whose
// checkpointed scan replays only the suffix below the shallowest change,
// and one TpOutput per rung brought forward by the delta pass
// (UpdateTpQualityLadder).
//
// Multi-k: a session started with a KLadder maintains per-rung PSR and TP
// state from ONE shared scan -- the count-vector recurrence is
// k-independent, so serving four k's costs barely more than serving the
// largest alone, where four single-k sessions would each pay their own
// database copy, engine, scan and quality pass. Per-rung accessors take a
// rung index into ladder(); the rung-less accessors serve single-k
// sessions (rung 0).
//
// Outcomes are applied eagerly to the database but state refresh is
// batched: a round of cleans costs one partial PSR replay + one shared
// delta TP pass, however many x-tuples were cleaned and however many k's
// are served. Call Refresh() after the round (the psr()/tp()/quality()
// accessors require a clean state), then read tp() to plan the next round
// -- MakeCleaningProblem has overloads that consume one rung or an
// aggregate over all of them, so the adaptive loop runs at most one
// (partial) PSR pass per round. All maintained state is bitwise identical
// to recomputing from scratch on the cleaned database at every rung.
//
// Threading: SERIALIZED CALLER. One thread drives a session at a time
// (mutators and accessors alike); the session is not internally
// synchronized. Options::exec parallelism stays INSIDE calls -- a
// Start/Refresh may shard its scan over the pool, but the session's
// public surface must still be entered by one thread. A whole session
// may run on a pool worker (SessionPool::RefreshAll does this with its
// per-session state), in which case its nested scans degrade to the
// sequential path inline. The contract is enforced as a
// common/serial_gate.h capability: every mutator opens a
// ScopedSerialCall window on gate_, so overlapping calls abort in debug
// builds and reentrant entry fails the Clang -Wthread-safety build.

#ifndef UCLEAN_CLEAN_SESSION_H_
#define UCLEAN_CLEAN_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/serial_gate.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "exec/thread_pool.h"
#include "model/database.h"
#include "quality/tp.h"
#include "rank/psr.h"
#include "rank/psr_engine.h"

namespace uclean {

class CleaningSession {
 public:
  struct Options {
    PsrOptions psr;

    /// Execution mode: num_threads > 1 shards the initial scan and every
    /// replay by rank range and fans the delta TP pass per rung, all on
    /// one shared pool (see rank/sharded_scan.h -- maintained state is
    /// bitwise identical to the sequential default).
    ExecOptions exec;

    /// Initial PSR checkpoint cadence (see PsrEngine::Create).
    size_t checkpoint_interval = PsrEngine::kInitialCheckpointInterval;

    /// Lazy-compaction trigger: tombstoned slots are reclaimed during
    /// Refresh once their count exceeds `compact_min_tombstones` AND the
    /// fraction `compact_min_fraction` of all slots. Compaction is pure
    /// bookkeeping (a monotone index remap); results are unaffected.
    size_t compact_min_tombstones = 1024;
    double compact_min_fraction = 0.25;
  };

  /// Starts a session over `db` (one full PSR + TP pass). Move the
  /// database in when the caller no longer needs its copy.
  static Result<CleaningSession> Start(ProbabilisticDatabase db, size_t k,
                                       const Options& options);
  static Result<CleaningSession> Start(ProbabilisticDatabase db, size_t k) {
    return Start(std::move(db), k, Options());
  }

  /// Ladder form: one shared scan serves every rung of `ladder`.
  static Result<CleaningSession> Start(ProbabilisticDatabase db,
                                       const KLadder& ladder,
                                       const Options& options);
  static Result<CleaningSession> Start(ProbabilisticDatabase db,
                                       const KLadder& ladder) {
    return Start(std::move(db), ladder, Options());
  }

  /// The session database. May contain tombstoned slots between rounds;
  /// rank indices are stable until compaction (which only Refresh and
  /// TakeDatabase perform).
  const ProbabilisticDatabase& db() const { return db_; }

  /// The served ladder (a single rung for single-k sessions).
  const KLadder& ladder() const { return engine_.ladder(); }
  size_t num_rungs() const { return engine_.num_rungs(); }

  /// The largest served k (the only one for single-k sessions).
  size_t k() const { return engine_.k(); }

  /// True when outcomes were applied since the last Refresh.
  bool dirty() const { return pending_replay_begin_ != kNoPending; }

  // Reading a dirty session is a HARD failure in every build type (not a
  // DCHECK): a dirty session holds pre-clean PSR/TP state, and serving it
  // silently -- which is exactly what a compiled-out assertion would do in
  // Release -- corrupts every planning and reporting consumer downstream.
  // Call Refresh() after a round of ApplyCleanOutcome.

  /// Maintained PSR state of rung `rung`. Requires !dirty().
  const PsrOutput& psr(size_t rung = 0) const {
    UCLEAN_CHECK(!dirty());
    return engine_.output(rung);
  }

  /// Maintained TP quality state of rung `rung`. Requires !dirty().
  const TpOutput& tp(size_t rung = 0) const {
    UCLEAN_CHECK(!dirty());
    UCLEAN_DCHECK(rung < tps_.size());
    return tps_[rung];
  }

  /// All per-rung TP states, ladder order. Requires !dirty().
  const std::vector<TpOutput>& tps() const {
    UCLEAN_CHECK(!dirty());
    return tps_;
  }

  /// Current PWS-quality S(D,Q) at rung `rung`. Requires !dirty().
  double quality(size_t rung = 0) const {
    UCLEAN_CHECK(!dirty());
    UCLEAN_DCHECK(rung < tps_.size());
    return tps_[rung].quality;
  }

  /// Collapses `xtuple` to the certain outcome `resolved_id` (negative =
  /// entity absent) in place; see ProbabilisticDatabase::ApplyCleanOutcome.
  /// State refresh is deferred to Refresh().
  Status ApplyCleanOutcome(XTupleId xtuple, TupleId resolved_id)
      UCLEAN_EXCLUDES(gate_);

  /// Brings PSR + TP state up to date for every outcome applied since the
  /// last Refresh: at most one compaction, one partial PSR replay and one
  /// shared delta TP pass across all rungs. No-op when !dirty().
  Status Refresh() UCLEAN_EXCLUDES(gate_);

  /// Compacts and returns the database, ending the session.
  ProbabilisticDatabase TakeDatabase() && UCLEAN_EXCLUDES(gate_);

 private:
  static constexpr size_t kNoPending = static_cast<size_t>(-1);

  CleaningSession() = default;

  ProbabilisticDatabase db_;
  PsrEngine engine_;
  std::vector<TpOutput> tps_;  // one per rung, ladder order
  Options options_;
  size_t pending_replay_begin_ = kNoPending;

  // Serialized-caller capability (see the header comment): one window
  // per mutating call; overlap aborts in debug builds, reentrancy fails
  // the Clang thread-safety build.
  mutable SerialGate gate_;
};

}  // namespace uclean

#endif  // UCLEAN_CLEAN_SESSION_H_
