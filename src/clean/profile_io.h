// CSV (de)serialization of cleaning profiles (per-x-tuple costs and
// sc-probabilities), so campaigns can be configured outside the binary.
//
// Format (header required, '#' comments allowed):
//
//     xtuple,cost,sc_prob
//     0,3,0.75
//
// Rows must cover x-tuples 0..m-1 exactly once each (any order).
//
// Threading: stateless serialization; concurrent calls are safe on
// distinct streams/paths (the functions add no synchronization around
// a shared stream).

#ifndef UCLEAN_CLEAN_PROFILE_IO_H_
#define UCLEAN_CLEAN_PROFILE_IO_H_

#include <iosfwd>
#include <string>

#include "clean/problem.h"
#include "common/status.h"

namespace uclean {

/// Writes `profile` as CSV to `os`.
Status WriteProfileCsv(const CleaningProfile& profile, std::ostream* os);

/// Writes `profile` to the file at `path`.
Status WriteProfileCsvFile(const CleaningProfile& profile,
                           const std::string& path);

/// Parses a profile from CSV text on `is`. The result covers x-tuples
/// 0..m-1 where m is the number of rows; missing or duplicate x-tuple
/// rows are errors.
Result<CleaningProfile> ReadProfileCsv(std::istream* is);

/// Reads a profile from the file at `path`.
Result<CleaningProfile> ReadProfileCsvFile(const std::string& path);

}  // namespace uclean

#endif  // UCLEAN_CLEAN_PROFILE_IO_H_
