// CleaningAgent: executes a cleaning plan against a database.
//
// The planners decide *what to probe*; the agent models what the paper's
// "cleaning agent" then does in the field (Section V-A): probe each
// selected x-tuple up to its assigned count, where every probe spends its
// cost and succeeds with the x-tuple's sc-probability. On success the
// entity's true state is revealed -- drawn from its existential
// distribution (Definition 5), possibly the null outcome -- the x-tuple
// collapses to that certain state, and remaining probes for it are skipped,
// leaving budget unspent (the leftovers adaptive re-planning reinvests).
//
// Synchronous and asynchronous forms. The ExecutePlan overloads run the
// probe loop inline and apply outcomes to their target before returning.
// The async form splits a plan execution into two phases whose separation
// is what makes probe batches overlappable (clean/pipeline.h):
//
//  * DRAW (SubmitProbes / DrawProbes): run the probe loop against a fixed
//    read-only view of the session's database, recording successes instead
//    of applying them. A draw touches only the view, the profile and the
//    session's own Rng, so draws for DIFFERENT sessions of one pool are
//    race-free by construction and run concurrently on an exec TaskGroup
//    while the caller keeps planning.
//  * COMMIT (CommitProbeDraws): apply the recorded outcomes to the pooled
//    session, on the caller thread, under the pool's serialized-caller
//    contract.
//
// Every form consumes the SAME per-session random stream in the same
// order (the probe loop reads only the probed x-tuple's own members, which
// no other x-tuple's collapse can touch), so a drawn-then-committed batch
// is bitwise identical to an inline ExecutePlan -- the equivalence the
// pipelined adaptive loop rests on (tests/pipeline_test.cc).
//
// Threading contracts:
//  * ExecutePlan / DrawProbes / CommitProbeDraws: not thread-safe on
//    shared arguments; call them the way you would any mutating member of
//    the target (for pooled sessions: under SessionPool's
//    serialized-caller rule).
//  * SubmitProbes: call on the pool's caller thread. Until the returned
//    batch is waited, the submitting caller must keep the pool, session,
//    profile and Rng alive, must not mutate, refresh or close THAT
//    session (other sessions are fine -- their state is disjoint), must
//    not open/close any pool session (slot-table growth could move the
//    overlay), and must not touch that session's Rng or FaultInjector
//    (both are per-session draw state the in-flight loop consumes).
//    ProbeBatch::Wait runs queued work inline while draining, so it may
//    execute other batches' draw loops on the calling thread.
//
// Fault tolerance (clean/fault.h). With ProbeOptions::fault set, every
// attempt first consults the session's FaultInjector: faulted attempts
// retry under the injector's RetryPolicy (exponential backoff with seeded
// jitter on the SIMULATED clock), probes whose retries exhaust or whose
// deadline passes fail WITHOUT spending budget, open circuit breakers
// skip their source outright, and a plan past its deadline abandons the
// rest. Execution still returns OK: degradation is partial completion,
// reported through ProbeRecord::last_error and the reports' FaultStats,
// never an error status. Faults draw from the injector's dedicated
// stream, so the probe value stream -- and with it every bitwise
// equivalence above -- is untouched; a null `fault` (the default) is the
// exact pre-fault code path.

#ifndef UCLEAN_CLEAN_AGENT_H_
#define UCLEAN_CLEAN_AGENT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "clean/fault.h"
#include "clean/problem.h"
#include "clean/session.h"
#include "clean/session_pool.h"
#include "common/rng.h"
#include "common/status.h"
#include "exec/thread_pool.h"
#include "model/database.h"
#include "model/database_overlay.h"

namespace uclean {

/// What happened to one selected x-tuple during plan execution.
struct ProbeRecord {
  XTupleId xtuple = 0;
  int64_t attempts = 0;      ///< probes that got an answer (<= planned)
  int64_t spent = 0;         ///< completed probes * cost
  bool success = false;
  TupleId resolved_id = -1;  ///< the revealed tuple (negative: null outcome)
  int64_t failures = 0;      ///< probes with no answer after all retries
  int64_t retries = 0;       ///< extra attempts after faulted ones
  /// kOk: every planned probe ran (or stopped early on success).
  /// kUnavailable: retries exhausted / source down / breaker open.
  /// kDeadlineExceeded: the probe or plan deadline cut this x-tuple off.
  StatusCode last_error = StatusCode::kOk;

  friend bool operator==(const ProbeRecord& a, const ProbeRecord& b) {
    return a.xtuple == b.xtuple && a.attempts == b.attempts &&
           a.spent == b.spent && a.success == b.success &&
           a.resolved_id == b.resolved_id && a.failures == b.failures &&
           a.retries == b.retries && a.last_error == b.last_error;
  }
};

/// Outcome of executing a plan.
struct ExecutionReport {
  ProbabilisticDatabase cleaned_db;
  int64_t spent = 0;          ///< total budget consumed
  /// Plan cost minus spent: early successes plus, under faults, the
  /// budget of failed/skipped/abandoned probes (reinvestable).
  int64_t leftover = 0;
  size_t successes = 0;       ///< x-tuples actually cleaned
  std::vector<ProbeRecord> log;
  FaultStats faults;          ///< all zero without a FaultInjector
};

/// Outcome of executing a plan inside a cleaning session: like
/// ExecutionReport, but the cleaned database lives in the session (no
/// copy is made) and its PSR/TP refresh is deferred to
/// CleaningSession::Refresh.
struct SessionExecutionReport {
  int64_t spent = 0;
  int64_t leftover = 0;
  size_t successes = 0;
  std::vector<ProbeRecord> log;
  FaultStats faults;
};

/// Knobs of the probe loop itself (not of what is probed).
struct ProbeOptions {
  /// Simulated per-probe field latency: every probe attempt takes this
  /// long before its result is known (the agent contacts a source, a
  /// sensor, a person). 0 -- the default -- draws back-to-back. The knob
  /// models the regime the async pipeline targets: once a round's state
  /// refresh is sub-millisecond, waiting on probes IS the round.
  std::chrono::microseconds latency{0};

  /// Per-session fault injector (clean/fault.h), or null for the exact
  /// fault-free code path. NOT owned; must outlive the call (for
  /// submitted batches: until Wait). Mutated by the probe loop under the
  /// same contract as the session's Rng.
  FaultInjector* fault = nullptr;
};

/// A drawn-but-uncommitted plan execution: the full report plus the
/// successful outcomes in draw order, ready for CommitProbeDraws.
struct ProbeDraws {
  SessionExecutionReport report;
  std::vector<std::pair<XTupleId, TupleId>> outcomes;
};

/// Runs the probe loop against a fixed view without applying anything.
/// Pure except for `rng` (advanced) and the simulated latency; never
/// touches the view. The overlay form is the pooled-session draw phase;
/// the database form serves dedicated sessions and tests.
Result<ProbeDraws> DrawProbes(const ProbabilisticDatabase& db,
                              const CleaningProfile& profile,
                              const std::vector<int64_t>& probes, Rng* rng,
                              const ProbeOptions& options = {});
Result<ProbeDraws> DrawProbes(const DatabaseOverlay& view,
                              const CleaningProfile& profile,
                              const std::vector<int64_t>& probes, Rng* rng,
                              const ProbeOptions& options = {});

/// Applies a draw's outcomes to pooled session `id`, in draw order. Call
/// on the pool's caller thread (serialized-caller contract); the session
/// stays dirty until the next Refresh/RefreshAll.
Status CommitProbeDraws(SessionPool* pool, SessionPool::SessionId id,
                        const ProbeDraws& draws);

/// A future for one in-flight probe draw: the handle SubmitProbes returns.
/// Move-only. Destroying an unwaited batch blocks until the draw finished
/// (the underlying task must not outlive its result slot).
class ProbeBatch {
 public:
  ProbeBatch();
  ~ProbeBatch();
  ProbeBatch(ProbeBatch&&) noexcept;
  ProbeBatch& operator=(ProbeBatch&&) noexcept;
  ProbeBatch(const ProbeBatch&) = delete;
  ProbeBatch& operator=(const ProbeBatch&) = delete;

  /// True when this batch holds (or held) a submitted draw.
  bool valid() const { return state_ != nullptr; }

  /// Non-blocking completion poll. Requires valid().
  bool done() const;

  /// Blocks until the draw finished and returns it; idempotent. While
  /// draining, the calling thread may execute other queued work inline.
  /// Requires valid().
  const Result<ProbeDraws>& Wait();

  /// Wait() + move the draws out; the batch becomes invalid.
  Result<ProbeDraws> Take();

 private:
  friend Result<ProbeBatch> SubmitProbes(const SessionPool& pool,
                                         SessionPool::SessionId id,
                                         const CleaningProfile& profile,
                                         std::vector<int64_t> probes,
                                         Rng* rng,
                                         const ProbeOptions& options,
                                         ThreadPool* exec);
  struct State;
  std::unique_ptr<State> state_;
};

/// Starts the draw phase for pooled session `id` on `exec` and returns
/// immediately; the probe loop runs against the session's overlay on a
/// pool worker (inline when `exec` is null or single-threaded -- the
/// sequential path). Validation happens here, on the caller thread. See
/// the header note for what the caller must (not) do while the batch is
/// in flight.
Result<ProbeBatch> SubmitProbes(const SessionPool& pool,
                                SessionPool::SessionId id,
                                const CleaningProfile& profile,
                                std::vector<int64_t> probes, Rng* rng,
                                const ProbeOptions& options, ThreadPool* exec);

/// Executes `plan.probes` on `db` with per-x-tuple costs/sc-probabilities
/// from `profile`, drawing success and revealed values from `rng`. The
/// cleaned database is an in-place-collapsed copy of `db` (compacted;
/// identical to the historical builder round-trip, minus the rebuild).
Result<ExecutionReport> ExecutePlan(const ProbabilisticDatabase& db,
                                    const CleaningProfile& profile,
                                    const std::vector<int64_t>& probes,
                                    Rng* rng,
                                    const ProbeOptions& options = {});

/// Session form: applies each successful outcome to `session` in place
/// and leaves the state refresh to the caller. Draws the same random
/// stream as the database overload, so a from-scratch and an incremental
/// run with equal seeds execute identical probe sequences.
Result<SessionExecutionReport> ExecutePlan(CleaningSession* session,
                                           const CleaningProfile& profile,
                                           const std::vector<int64_t>& probes,
                                           Rng* rng,
                                           const ProbeOptions& options = {});

/// Pooled-session form: probes against session `id`'s own overlay view
/// (base + its previous outcomes) and records each success in that
/// overlay only; the shared base and every other session are untouched.
/// Same fixed random-stream order as the other overloads; implemented as
/// DrawProbes + CommitProbeDraws, so an inline execution and a pipelined
/// one are the same arithmetic by construction.
Result<SessionExecutionReport> ExecutePlan(SessionPool* pool,
                                           SessionPool::SessionId id,
                                           const CleaningProfile& profile,
                                           const std::vector<int64_t>& probes,
                                           Rng* rng,
                                           const ProbeOptions& options = {});

}  // namespace uclean

#endif  // UCLEAN_CLEAN_AGENT_H_
