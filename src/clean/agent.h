// CleaningAgent: executes a cleaning plan against a database.
//
// The planners decide *what to probe*; the agent models what the paper's
// "cleaning agent" then does in the field (Section V-A): probe each
// selected x-tuple up to its assigned count, where every probe spends its
// cost and succeeds with the x-tuple's sc-probability. On success the
// entity's true state is revealed -- drawn from its existential
// distribution (Definition 5), possibly the null outcome -- the x-tuple
// collapses to that certain state, and remaining probes for it are skipped,
// leaving budget unspent (the leftovers adaptive re-planning reinvests).

#ifndef UCLEAN_CLEAN_AGENT_H_
#define UCLEAN_CLEAN_AGENT_H_

#include <cstdint>
#include <vector>

#include "clean/problem.h"
#include "clean/session.h"
#include "clean/session_pool.h"
#include "common/rng.h"
#include "common/status.h"
#include "model/database.h"

namespace uclean {

/// What happened to one selected x-tuple during plan execution.
struct ProbeRecord {
  XTupleId xtuple = 0;
  int64_t attempts = 0;      ///< probes actually performed (<= planned)
  int64_t spent = 0;         ///< attempts * cost
  bool success = false;
  TupleId resolved_id = -1;  ///< the revealed tuple (negative: null outcome)
};

/// Outcome of executing a plan.
struct ExecutionReport {
  ProbabilisticDatabase cleaned_db;
  int64_t spent = 0;          ///< total budget consumed
  int64_t leftover = 0;       ///< plan cost minus spent (early successes)
  size_t successes = 0;       ///< x-tuples actually cleaned
  std::vector<ProbeRecord> log;
};

/// Outcome of executing a plan inside a cleaning session: like
/// ExecutionReport, but the cleaned database lives in the session (no
/// copy is made) and its PSR/TP refresh is deferred to
/// CleaningSession::Refresh.
struct SessionExecutionReport {
  int64_t spent = 0;
  int64_t leftover = 0;
  size_t successes = 0;
  std::vector<ProbeRecord> log;
};

/// Executes `plan.probes` on `db` with per-x-tuple costs/sc-probabilities
/// from `profile`, drawing success and revealed values from `rng`. The
/// cleaned database is an in-place-collapsed copy of `db` (compacted;
/// identical to the historical builder round-trip, minus the rebuild).
Result<ExecutionReport> ExecutePlan(const ProbabilisticDatabase& db,
                                    const CleaningProfile& profile,
                                    const std::vector<int64_t>& probes,
                                    Rng* rng);

/// Session form: applies each successful outcome to `session` in place
/// and leaves the state refresh to the caller. Draws the same random
/// stream as the database overload, so a from-scratch and an incremental
/// run with equal seeds execute identical probe sequences.
Result<SessionExecutionReport> ExecutePlan(CleaningSession* session,
                                           const CleaningProfile& profile,
                                           const std::vector<int64_t>& probes,
                                           Rng* rng);

/// Pooled-session form: probes against session `id`'s own overlay view
/// (base + its previous outcomes) and records each success in that
/// overlay only; the shared base and every other session are untouched.
/// Same fixed random-stream order as the other overloads.
Result<SessionExecutionReport> ExecutePlan(SessionPool* pool,
                                           SessionPool::SessionId id,
                                           const CleaningProfile& profile,
                                           const std::vector<int64_t>& probes,
                                           Rng* rng);

}  // namespace uclean

#endif  // UCLEAN_CLEAN_AGENT_H_
