#include "clean/problem.h"

#include <cmath>
#include <sstream>

#include "quality/tp.h"

namespace uclean {

Status CleaningProfile::Validate(size_t num_xtuples) const {
  if (costs.size() != num_xtuples || sc_probs.size() != num_xtuples) {
    return Status::InvalidArgument(
        "cleaning profile size does not match the database (" +
        std::to_string(costs.size()) + " costs, " +
        std::to_string(sc_probs.size()) + " sc-probs, " +
        std::to_string(num_xtuples) + " x-tuples)");
  }
  for (size_t l = 0; l < num_xtuples; ++l) {
    if (costs[l] < 1) {
      return Status::InvalidArgument("cleaning cost of x-tuple " +
                                     std::to_string(l) + " must be >= 1");
    }
    if (!(sc_probs[l] >= 0.0) || sc_probs[l] > 1.0) {
      return Status::InvalidArgument("sc-probability of x-tuple " +
                                     std::to_string(l) +
                                     " must be in [0, 1]");
    }
  }
  return Status::OK();
}

Status CleaningProblem::Validate() const {
  const size_t m = gain.size();
  if (topk_mass.size() != m || cost.size() != m || sc_prob.size() != m) {
    return Status::InvalidArgument("cleaning problem vectors disagree on m");
  }
  if (budget < 0) return Status::InvalidArgument("budget must be >= 0");
  for (size_t l = 0; l < m; ++l) {
    if (cost[l] < 1) {
      return Status::InvalidArgument("cost of x-tuple " + std::to_string(l) +
                                     " must be >= 1");
    }
    if (!(sc_prob[l] >= 0.0) || sc_prob[l] > 1.0) {
      return Status::InvalidArgument("sc-probability of x-tuple " +
                                     std::to_string(l) +
                                     " must be in [0, 1]");
    }
    if (gain[l] > 1e-12) {
      return Status::InvalidArgument("gain g(l,D) of x-tuple " +
                                     std::to_string(l) +
                                     " must be <= 0 (got " +
                                     std::to_string(gain[l]) + ")");
    }
  }
  return Status::OK();
}

double CleaningProblem::MarginalValue(size_t l, int64_t j) const {
  if (j <= 0) return 0.0;
  const double p = sc_prob[l];
  return -std::pow(1.0 - p, static_cast<double>(j - 1)) * p * gain[l];
}

double CleaningProblem::XTupleImprovement(size_t l, int64_t probes) const {
  if (probes <= 0) return 0.0;
  const double p = sc_prob[l];
  return -(1.0 - std::pow(1.0 - p, static_cast<double>(probes))) * gain[l];
}

size_t CleaningPlan::num_selected() const {
  size_t count = 0;
  for (int64_t m : probes) {
    if (m > 0) ++count;
  }
  return count;
}

std::string CleaningPlan::ToString() const {
  std::ostringstream os;
  os << "CleaningPlan{I=" << expected_improvement << ", cost=" << total_cost
     << ", probes={";
  bool first = true;
  for (size_t l = 0; l < probes.size(); ++l) {
    if (probes[l] == 0) continue;
    if (!first) os << ", ";
    os << "x" << l << ":" << probes[l];
    first = false;
  }
  os << "}}";
  return os.str();
}

double ExpectedImprovement(const CleaningProblem& problem,
                           const std::vector<int64_t>& probes) {
  double total = 0.0;
  for (size_t l = 0; l < probes.size(); ++l) {
    total += problem.XTupleImprovement(l, probes[l]);
  }
  return total;
}

int64_t PlanCost(const CleaningProblem& problem,
                 const std::vector<int64_t>& probes) {
  int64_t total = 0;
  for (size_t l = 0; l < probes.size(); ++l) {
    total += probes[l] * problem.cost[l];
  }
  return total;
}

Result<CleaningProblem> MakeCleaningProblem(const ProbabilisticDatabase& db,
                                            size_t k,
                                            const CleaningProfile& profile,
                                            int64_t budget) {
  // Cheap checks before the O(kn) pass.
  UCLEAN_RETURN_IF_ERROR(profile.Validate(db.num_xtuples()));
  if (budget < 0) return Status::InvalidArgument("budget must be >= 0");
  Result<TpOutput> tp = ComputeTpQuality(db, k);
  if (!tp.ok()) return tp.status();
  return MakeCleaningProblem(*tp, profile, budget);
}

Result<CleaningProblem> MakeCleaningProblem(const TpOutput& tp,
                                            const CleaningProfile& profile,
                                            int64_t budget) {
  UCLEAN_RETURN_IF_ERROR(profile.Validate(tp.xtuple_gain.size()));
  if (budget < 0) return Status::InvalidArgument("budget must be >= 0");

  CleaningProblem problem;
  problem.gain = tp.xtuple_gain;
  // Clamp away positive rounding residue so Validate() and the planners can
  // rely on gain <= 0 (mathematically g(l,D) is a sum of entropy terms <= 0).
  for (double& g : problem.gain) {
    if (g > 0.0) g = 0.0;
  }
  problem.topk_mass = tp.xtuple_topk_mass;
  problem.cost = profile.costs;
  problem.sc_prob = profile.sc_probs;
  problem.budget = budget;
  return problem;
}

double LadderRungWeight(const std::vector<double>& weights, size_t rungs,
                        size_t j) {
  return weights.empty() ? 1.0 / static_cast<double>(rungs) : weights[j];
}

Result<CleaningProblem> MakeCleaningProblem(const std::vector<TpOutput>& tps,
                                            const std::vector<double>& weights,
                                            const CleaningProfile& profile,
                                            int64_t budget) {
  if (tps.empty()) {
    return Status::InvalidArgument("quality ladder must not be empty");
  }
  const size_t rungs = tps.size();
  if (!weights.empty() && weights.size() != rungs) {
    return Status::InvalidArgument(
        "plan weights must match the ladder (" +
        std::to_string(weights.size()) + " weights, " +
        std::to_string(rungs) + " rungs)");
  }
  double weight_sum = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0)) {
      return Status::InvalidArgument("plan weights must be >= 0");
    }
    weight_sum += w;
  }
  if (!weights.empty() && weight_sum <= 0.0) {
    return Status::InvalidArgument("plan weights must not all be zero");
  }
  const size_t num_xtuples = tps[0].xtuple_gain.size();
  for (const TpOutput& tp : tps) {
    if (tp.xtuple_gain.size() != num_xtuples) {
      return Status::InvalidArgument(
          "ladder TP states disagree on the x-tuple count");
    }
  }
  UCLEAN_RETURN_IF_ERROR(profile.Validate(num_xtuples));
  if (budget < 0) return Status::InvalidArgument("budget must be >= 0");

  CleaningProblem problem;
  problem.gain.assign(num_xtuples, 0.0);
  problem.topk_mass.assign(num_xtuples, 0.0);
  for (size_t j = 0; j < rungs; ++j) {
    const double w = LadderRungWeight(weights, rungs, j);
    for (size_t l = 0; l < num_xtuples; ++l) {
      problem.gain[l] += w * tps[j].xtuple_gain[l];
      problem.topk_mass[l] += w * tps[j].xtuple_topk_mass[l];
    }
  }
  for (double& g : problem.gain) {
    if (g > 0.0) g = 0.0;  // same rounding-residue clamp as the single form
  }
  problem.cost = profile.costs;
  problem.sc_prob = profile.sc_probs;
  problem.budget = budget;
  return problem;
}

}  // namespace uclean
