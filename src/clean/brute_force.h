// Brute-force reference implementations for the cleaning machinery.
//
// These evaluate the *definitions* (Eq. 14-18 and Definition 7) directly,
// with exponential cost. They exist as ground-truth oracles for the
// closed-form Theorem-2 evaluator and the DP/Greedy planners, and are only
// usable on small instances.
//
// Threading: pure functions of their arguments; concurrent calls on
// databases/problems nobody is mutating are safe.

#ifndef UCLEAN_CLEAN_BRUTE_FORCE_H_
#define UCLEAN_CLEAN_BRUTE_FORCE_H_

#include <cstdint>
#include <vector>

#include "clean/problem.h"
#include "common/status.h"
#include "model/database.h"

namespace uclean {

/// Expected quality improvement of probing x-tuple l `probes[l]` times, by
/// the definition: enumerate every cleaned-database outcome x0 in
/// z_1 x ... x z_|X| with its probability (Eq. 14-16), evaluate the quality
/// of each outcome database exactly, and take the expectation (Eq. 17-18).
///
/// Cost is exponential in the number of selected x-tuples; refuses to run
/// past `max_outcomes` combinations.
Result<double> ExpectedImprovementBruteForce(const ProbabilisticDatabase& db,
                                             size_t k,
                                             const CleaningProfile& profile,
                                             const std::vector<int64_t>& probes,
                                             uint64_t max_outcomes = 1000000);

/// Exhaustive search over every feasible (X, M) assignment (Definition 7).
/// Exponential; refuses to run past `max_states` search states.
Result<CleaningPlan> PlanExhaustive(const CleaningProblem& problem,
                                    uint64_t max_states = 50000000);

}  // namespace uclean

#endif  // UCLEAN_CLEAN_BRUTE_FORCE_H_
