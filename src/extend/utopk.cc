#include "extend/utopk.h"

#include <algorithm>

namespace uclean {

Result<UTopkAnswer> EvaluateUTopk(const ProbabilisticDatabase& db, size_t k,
                                  size_t top_results,
                                  const PwrOptions& options) {
  PwrOptions pwr_options = options;
  pwr_options.collect_results = true;  // U-Topk needs the distribution
  Result<PwrOutput> pwr = ComputePwrQuality(db, k, pwr_options);
  if (!pwr.ok()) return pwr.status();

  UTopkAnswer answer;
  answer.quality = pwr->quality;
  answer.num_results = pwr->num_results;

  std::vector<RankedResult> all;
  all.reserve(pwr->results.size());
  for (const auto& [result, prob] : pwr->results) {
    all.push_back(RankedResult{result, prob});
  }
  const size_t take = std::min(top_results, all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end(),
                    [](const RankedResult& a, const RankedResult& b) {
                      if (a.probability != b.probability) {
                        return a.probability > b.probability;
                      }
                      return a.result < b.result;  // deterministic ties
                    });
  all.resize(take);
  if (!all.empty()) answer.best = all.front();
  answer.top = std::move(all);
  return answer;
}

}  // namespace uclean
