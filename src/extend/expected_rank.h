// Expected-rank semantics (Cormode, Li, Yi -- ICDE 2009).
//
// Another classic the paper lists for future study (Section II). The
// expected rank of tuple t_i is
//
//   er(t_i) = sum over worlds W of Pr(W) * rank_W(t_i),
//
// where rank_W counts the real tuples of W ranked above t_i when t_i is
// present, and is the bottom rank (the number of real tuples in W) when
// t_i is absent -- Cormode et al.'s convention that missing tuples sit at
// the bottom of the world. An expected-rank top-k query returns the k
// tuples with the smallest expected ranks.
//
// Everything derives from one full-depth PSR pass: rank-h probabilities
// give the present-case expectation (nulls rank below every real tuple,
// so "tuples above" counts reals only), and the absent case contributes
// (1 - e_i) times the expected number of real tuples in a world, which is
// the sum of the x-tuple masses.

#ifndef UCLEAN_EXTEND_EXPECTED_RANK_H_
#define UCLEAN_EXTEND_EXPECTED_RANK_H_

#include <vector>

#include "common/status.h"
#include "model/database.h"
#include "query/topk_queries.h"

namespace uclean {

/// Expected ranks of every tuple, plus the induced top-k answer.
struct ExpectedRankOutput {
  /// Expected rank per rank index (1-based ranks; includes null tuples,
  /// whose values are only meaningful as world-size ballast).
  std::vector<double> expected_rank;

  /// The k real tuples with the smallest expected ranks, ascending.
  std::vector<AnswerEntry> topk;
};

/// Computes expected ranks on `db` and the expected-rank top-k answer.
/// Cost: one PSR pass at full depth, O(n * min(n, overlap) + n^2-ish) in
/// the worst case; intended for the moderate database sizes the semantics
/// is used at.
Result<ExpectedRankOutput> ComputeExpectedRanks(
    const ProbabilisticDatabase& db, size_t k);

}  // namespace uclean

#endif  // UCLEAN_EXTEND_EXPECTED_RANK_H_
