// Monte-Carlo PWS-quality estimation.
//
// A sampling baseline that sits between PW (exact, exponential) and TP
// (exact, needs Theorem 1): sample possible worlds, evaluate the
// deterministic top-k in each, and estimate the entropy of the empirical
// pw-result distribution. Useful as an independent sanity check of the
// closed-form algorithms on databases too large for PW/PWR, and as a
// pedagogical baseline in the ablation bench (it converges slowly and the
// plug-in entropy estimator is biased toward zero entropy -- quality
// estimates are biased *upward* -- which the bench makes visible).
//
// The estimator applies the Miller-Madow bias correction
// (+ (observed_results - 1) / (2 N ln 2) bits of entropy, i.e. the same
// amount subtracted from the quality score) by default.

#ifndef UCLEAN_EXTEND_MONTE_CARLO_H_
#define UCLEAN_EXTEND_MONTE_CARLO_H_

#include <cstdint>

#include "common/status.h"
#include "model/database.h"
#include "pworld/pw_result.h"

namespace uclean {

/// Options for the sampler.
struct MonteCarloOptions {
  uint64_t samples = 10000;
  uint64_t seed = 1;
  bool miller_madow_correction = true;
  /// Keep the empirical distribution in the output (costs memory).
  bool collect_results = false;
};

/// Output of the sampler.
struct MonteCarloOutput {
  /// Estimated PWS-quality (negated empirical entropy, bias-corrected
  /// when enabled).
  double quality_estimate = 0.0;

  /// Distinct pw-results observed across the samples.
  uint64_t distinct_results = 0;

  /// Empirical distribution when MonteCarloOptions::collect_results.
  PwResultSet results;
};

/// Estimates the PWS-quality of a top-k query on `db` from sampled worlds.
Result<MonteCarloOutput> EstimateQualityMonteCarlo(
    const ProbabilisticDatabase& db, size_t k,
    const MonteCarloOptions& options = {});

}  // namespace uclean

#endif  // UCLEAN_EXTEND_MONTE_CARLO_H_
