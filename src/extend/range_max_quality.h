// PWS-quality for range and max queries -- the Cheng/Chen/Xie [16]
// setting the paper generalizes to top-k.
//
// The paper's related work contrasts itself with [16], which computes
// PWS-quality for range and max queries; implementing both here gives the
// library the combined query surface and lets the two papers' settings be
// compared on the same data.
//
// * Range query Q[lo, hi]: in each world the answer is the set of present
//   tuples with score in [lo, hi]. Because x-tuples are independent and an
//   answer decomposes per x-tuple (each contributes its chosen in-range
//   alternative or nothing), the answer distribution is a product
//   distribution and its entropy is the SUM of per-x-tuple entropies --
//   an O(n) closed form, mirroring [16]'s efficient range score.
// * Max query: the answer is the single highest-ranked present tuple,
//   which is exactly a top-1 query: its quality is TP at k = 1.

#ifndef UCLEAN_EXTEND_RANGE_MAX_QUALITY_H_
#define UCLEAN_EXTEND_RANGE_MAX_QUALITY_H_

#include <vector>

#include "common/status.h"
#include "model/database.h"

namespace uclean {

/// Quality report for a range query.
struct RangeQualityOutput {
  /// PWS-quality of the range answer distribution (<= 0).
  double quality = 0.0;

  /// Per-x-tuple entropy contribution (quality = -sum of these).
  std::vector<double> xtuple_entropy;

  /// Number of tuples whose score lies in [lo, hi].
  size_t tuples_in_range = 0;
};

/// PWS-quality of the range query [lo, hi] on `db` (requires lo <= hi).
Result<RangeQualityOutput> ComputeRangeQuality(const ProbabilisticDatabase& db,
                                               double lo, double hi);

/// PWS-quality of the max query on `db` (top-1 by the ranking function);
/// computed through the paper's TP algorithm at k = 1.
Result<double> ComputeMaxQuality(const ProbabilisticDatabase& db);

}  // namespace uclean

#endif  // UCLEAN_EXTEND_RANGE_MAX_QUALITY_H_
