#include "extend/range_max_quality.h"

#include <cmath>

#include "common/entropy_math.h"
#include "quality/tp.h"

namespace uclean {

Result<RangeQualityOutput> ComputeRangeQuality(const ProbabilisticDatabase& db,
                                               double lo, double hi) {
  if (!(lo <= hi) || std::isnan(lo) || std::isnan(hi)) {
    return Status::InvalidArgument("range query requires lo <= hi");
  }
  RangeQualityOutput out;
  out.xtuple_entropy.assign(db.num_xtuples(), 0.0);

  // Per x-tuple: outcomes are "alternative t (in range)" with probability
  // e_t, plus one lumped "contributes nothing" outcome whose probability
  // is the total mass of out-of-range alternatives (null included).
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    double nothing = 0.0;
    double entropy = 0.0;
    for (int32_t idx : db.xtuple_members(static_cast<XTupleId>(l))) {
      const Tuple& t = db.tuple(idx);
      const bool in_range = !t.is_null && t.score >= lo && t.score <= hi;
      if (in_range) {
        entropy += EntropyTerm(t.prob);
        ++out.tuples_in_range;
      } else {
        nothing += t.prob;
      }
    }
    entropy += EntropyTerm(nothing);
    out.xtuple_entropy[l] = entropy;
    out.quality -= entropy;  // independence: entropies add up
  }
  return out;
}

Result<double> ComputeMaxQuality(const ProbabilisticDatabase& db) {
  Result<TpOutput> tp = ComputeTpQuality(db, /*k=*/1);
  if (!tp.ok()) return tp.status();
  return tp->quality;
}

}  // namespace uclean
