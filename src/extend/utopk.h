// U-Topk query semantics (Soliman et al., ICDE 2007).
//
// The paper's quality algorithms cover U-kRanks, PT-k and Global-topk and
// leave the remaining classic semantics as future study (Section II). This
// module adds U-Topk: the most probable *complete top-k answer sequence*,
// i.e. the pw-result r maximizing Pr(r) (Definition 1). Because PWR
// already enumerates the pw-result distribution exactly, U-Topk falls out
// of the same machinery -- including its quality score, which is the same
// PWS-quality (the metric depends on the pw-result distribution only, not
// on the aggregation semantics).

#ifndef UCLEAN_EXTEND_UTOPK_H_
#define UCLEAN_EXTEND_UTOPK_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "model/database.h"
#include "pworld/pw_result.h"
#include "quality/pwr.h"

namespace uclean {

/// One candidate answer sequence with its probability.
struct RankedResult {
  PwResult result;
  double probability = 0.0;
};

/// U-Topk output: the best sequences in descending probability.
struct UTopkAnswer {
  /// The winner (empty only for an empty database).
  RankedResult best;

  /// The `top_results` most probable sequences, winner first.
  std::vector<RankedResult> top;

  /// PWS-quality of the underlying pw-result distribution.
  double quality = 0.0;

  /// Total number of distinct pw-results.
  uint64_t num_results = 0;
};

/// Evaluates U-Topk for a top-k query on `db`, returning the
/// `top_results` most probable complete answers. Inherits PWR's cost
/// profile and guards (`options`).
Result<UTopkAnswer> EvaluateUTopk(const ProbabilisticDatabase& db, size_t k,
                                  size_t top_results = 1,
                                  const PwrOptions& options = {});

}  // namespace uclean

#endif  // UCLEAN_EXTEND_UTOPK_H_
