#include "extend/expected_rank.h"

#include <algorithm>

#include "rank/psr.h"

namespace uclean {

Result<ExpectedRankOutput> ComputeExpectedRanks(
    const ProbabilisticDatabase& db, size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  const size_t n = db.num_tuples();
  ExpectedRankOutput out;
  out.expected_rank.assign(n, 0.0);
  if (n == 0) return out;

  // Full-depth PSR: rho_i(h) for every achievable rank h = 1..m. Early
  // termination must stay off -- expected ranks need the whole database.
  PsrOptions options;
  options.store_rank_probabilities = true;
  options.early_termination = false;
  const size_t full_depth = db.num_xtuples();
  Result<ScanRequest> request = ScanRequest::ForK(full_depth, options);
  if (!request.ok()) return request.status();
  Result<ScanResult> scan = ComputePsrLadder(db, *request);
  if (!scan.ok()) return scan.status();
  const PsrOutput* psr = &scan->output();

  // Expected number of real tuples in a world (the bottom rank for an
  // absent tuple, per Cormode et al.).
  double expected_world_size = 0.0;
  for (size_t l = 0; l < db.num_xtuples(); ++l) {
    expected_world_size += db.xtuple_real_mass(static_cast<XTupleId>(l));
  }

  for (size_t i = 0; i < n; ++i) {
    const Tuple& t = db.tuple(i);
    // Present case: sum over h of (h - 1) * rho_i(h) counts the tuples
    // ranked above t_i (nulls sort below every real tuple, so for real
    // tuples this is exactly the real-tuples-above count). Ranks are
    // 0-based in Cormode et al.; we keep that convention.
    double present = 0.0;
    for (size_t h = 1; h <= full_depth; ++h) {
      present += static_cast<double>(h - 1) * psr->rank_probability(i, h);
    }
    // Absent case: the bottom rank is the number of real tuples in the
    // world *conditioned on t_i being absent* -- t_i's own x-tuple then
    // produces a real tuple with probability (s_l - e_i) / (1 - e_i)
    // (uniformly correct for the null alternative too, where e_i = 1-s_l).
    double absent = 0.0;
    if (t.prob < 1.0) {
      const double s_l = db.xtuple_real_mass(t.xtuple);
      const double own_real = t.is_null ? 0.0 : t.prob;
      const double conditional_world = expected_world_size - s_l +
                                       (s_l - own_real) / (1.0 - t.prob);
      absent = (1.0 - t.prob) * conditional_world;
    }
    out.expected_rank[i] = present + absent;
  }

  // Expected-rank top-k: k smallest expected ranks among real tuples,
  // ties toward the higher-ranked tuple.
  std::vector<int32_t> candidates;
  candidates.reserve(db.num_real_tuples());
  for (size_t i = 0; i < n; ++i) {
    if (!db.tuple(i).is_null) candidates.push_back(static_cast<int32_t>(i));
  }
  const size_t take = std::min(k, candidates.size());
  std::partial_sort(candidates.begin(), candidates.begin() + take,
                    candidates.end(), [&](int32_t a, int32_t b) {
                      if (out.expected_rank[a] != out.expected_rank[b]) {
                        return out.expected_rank[a] < out.expected_rank[b];
                      }
                      return a < b;
                    });
  for (size_t j = 0; j < take; ++j) {
    const int32_t i = candidates[j];
    out.topk.push_back(
        AnswerEntry{db.tuple(i).id, i, out.expected_rank[i]});
  }
  return out;
}

}  // namespace uclean
