#include "extend/monte_carlo.h"

#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/entropy_math.h"
#include "common/rng.h"
#include "pworld/world_iterator.h"

namespace uclean {

Result<MonteCarloOutput> EstimateQualityMonteCarlo(
    const ProbabilisticDatabase& db, size_t k,
    const MonteCarloOptions& options) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (options.samples == 0) {
    return Status::InvalidArgument("need at least one sample");
  }

  // Per-x-tuple cumulative alternative masses for O(log) world sampling.
  const size_t m = db.num_xtuples();
  std::vector<std::vector<double>> cumulative(m);
  for (size_t l = 0; l < m; ++l) {
    double acc = 0.0;
    for (int32_t idx : db.xtuple_members(static_cast<XTupleId>(l))) {
      acc += db.tuple(idx).prob;
      cumulative[l].push_back(acc);
    }
  }

  Rng rng(options.seed);
  std::unordered_map<PwResult, uint64_t, PwResultHash> counts;
  std::vector<int32_t> chosen(m);
  for (uint64_t s = 0; s < options.samples; ++s) {
    for (size_t l = 0; l < m; ++l) {
      const auto& cum = cumulative[l];
      const double u = rng.Uniform(0.0, cum.back());
      const size_t pick =
          std::lower_bound(cum.begin(), cum.end(), u) - cum.begin();
      chosen[l] = db.xtuple_members(static_cast<XTupleId>(l))
          [std::min(pick, cum.size() - 1)];
    }
    ++counts[DeterministicTopK(chosen, k)];
  }

  MonteCarloOutput out;
  out.distinct_results = counts.size();
  const double n = static_cast<double>(options.samples);
  double entropy_bits = 0.0;
  for (const auto& [result, count] : counts) {
    const double p = static_cast<double>(count) / n;
    entropy_bits += EntropyTerm(p);
    if (options.collect_results) out.results[result] = p;
  }
  if (options.miller_madow_correction && counts.size() > 1) {
    entropy_bits +=
        (static_cast<double>(counts.size()) - 1.0) / (2.0 * n * std::log(2.0));
  }
  out.quality_estimate = -entropy_bits;
  return out;
}

}  // namespace uclean
