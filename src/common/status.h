// Status and Result<T>: exception-free error handling for the uclean library.
//
// Follows the RocksDB/absl idiom: every fallible public operation returns a
// Status (or a Result<T> when it also produces a value). Exceptions are not
// used across library boundaries.

#ifndef UCLEAN_COMMON_STATUS_H_
#define UCLEAN_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace uclean {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller-supplied input violates a precondition.
  kNotFound = 2,          ///< A referenced entity (tuple, x-tuple) is missing.
  kOutOfRange = 3,        ///< An index/parameter is outside its legal domain.
  /// The object is not in a state that allows the call.
  kFailedPrecondition = 4,
  kResourceExhausted = 5, ///< A configured limit (worlds, budget) was exceeded.
  kInternal = 6,          ///< An invariant inside the library was violated.
  kIOError = 7,           ///< File/stream input or output failed.
  /// An external dependency (a probe source, a service) is not reachable
  /// right now; retrying later may succeed.
  kUnavailable = 8,
  /// A configured deadline elapsed before the operation completed.
  kDeadlineExceeded = 9,
  /// Stored data is unrecoverably damaged: a checksum mismatch, a
  /// truncated file, or a format the reader cannot understand. Distinct
  /// from kIOError (the medium failed) -- here the bytes arrived but
  /// cannot be trusted.
  kDataLoss = 10,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Outcome of an operation: success (ok) or an error code plus message.
///
/// Statuses are cheap to copy for the ok case and carry an explanatory
/// message otherwise. Typical use:
///
///     Status s = builder.Finish(&db);
///     if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an ok status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns an ok status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error category (kOk on success).
  StatusCode code() const { return code_; }

  /// The error message (empty on success).
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value or an error: the return type of fallible value-producing calls.
///
/// Accessing the value of a failed Result aborts in debug builds; callers
/// must check ok() first (or use value_or()).
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs a failed result from a non-ok status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-ok status");
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status (ok iff a value is present).
  const Status& status() const { return status_; }

  /// The held value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// The held value, or `fallback` if this result failed.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace uclean

/// Propagates a non-ok Status out of the current function.
#define UCLEAN_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::uclean::Status _uclean_status = (expr);       \
    if (!_uclean_status.ok()) return _uclean_status;\
  } while (false)

#endif  // UCLEAN_COMMON_STATUS_H_
