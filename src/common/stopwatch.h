// Wall-clock stopwatch used by the benchmark harnesses that report the
// paper's time-vs-parameter series.

#ifndef UCLEAN_COMMON_STOPWATCH_H_
#define UCLEAN_COMMON_STOPWATCH_H_

#include <chrono>

namespace uclean {

/// Measures elapsed wall-clock time with steady_clock resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace uclean

#endif  // UCLEAN_COMMON_STOPWATCH_H_
